package datascalar

// The repository-level benchmarks regenerate every table and figure of
// the paper's evaluation and print the reproduced rows. Each benchmark is
// deterministic, so one iteration is enough:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// EXPERIMENTS.md records paper-versus-measured values for each.

import (
	"context"
	"testing"
)

// benchOpts are the standard experiment sizes (see sim.DefaultOptions);
// absolute numbers in EXPERIMENTS.md were produced with these.
func benchOpts() ExperimentOptions { return DefaultExperimentOptions() }

// BenchmarkTable1Traffic regenerates Table 1: the fraction of off-chip
// traffic (bytes) and transactions that ESP eliminates across the
// fourteen SPEC95-analogue benchmarks.
func BenchmarkTable1Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table1(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			var bytesFrac, txnFrac float64
			for _, row := range res.Rows {
				bytesFrac += row.TrafficEliminated
				txnFrac += row.TransactionsEliminated
			}
			b.ReportMetric(bytesFrac/float64(len(res.Rows))*100, "mean-traffic-eliminated-%")
			b.ReportMetric(txnFrac/float64(len(res.Rows))*100, "mean-transactions-eliminated-%")
		}
	}
}

// BenchmarkTable2Datathreads regenerates Table 2: datathread-length
// approximations for a four-processor system.
func BenchmarkTable2Datathreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table2(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkFigure7IPC regenerates Figure 7: IPC for the perfect cache,
// DataScalar at two and four nodes, and the traditional machines with
// one half and one quarter of memory on-chip, over the six timing
// benchmarks.
func BenchmarkFigure7IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			var ds4, t4 float64
			for _, row := range res.Rows {
				ds4 += row.DS4IPC
				t4 += row.Trad4IPC
			}
			b.ReportMetric(ds4/t4, "DS4-vs-trad4-speedup")
		}
	}
}

// BenchmarkTable3Broadcast regenerates Table 3: late broadcasts, BSHR
// squashes, and data found waiting in the BSHR, from the DataScalar
// timing runs.
func BenchmarkTable3Broadcast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f7, err := Figure7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		res := Table3(f7)
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkFigure8Sensitivity regenerates Figure 8: IPC sensitivity of
// go and compress to cache size, memory access time, bus clock, bus
// width, and RUU entries, for all five systems. The serial and parallel
// sub-benchmarks run the identical 250-job sweep at 1 and 4 workers; the
// engine guarantees byte-identical results, so the wall-clock ratio is
// the experiment engine's speedup.
func BenchmarkFigure8Sensitivity(b *testing.B) {
	run := func(b *testing.B, parallel int, logTables bool) {
		opts := benchOpts()
		opts.Parallel = parallel
		for i := 0; i < b.N; i++ {
			res, err := Figure8(context.Background(), opts)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 && logTables {
				for _, t := range res.Tables() {
					b.Logf("\n%s", t.String())
				}
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, true) })
	b.Run("parallel4", func(b *testing.B) { run(b, 4, false) })
}

// BenchmarkFigure1MMM regenerates Figure 1: the synchronous ESP Massive
// Memory Machine timeline with its two lead changes.
func BenchmarkFigure1MMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, table, err := Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", table.String())
			b.ReportMetric(float64(res.Cycles), "cycles")
			b.ReportMetric(float64(res.LeadChanges), "lead-changes")
		}
	}
}

// BenchmarkFigure3Crossings regenerates Figure 3: serialized off-chip
// crossings for a dependent four-operand chain — DataScalar's two versus
// the traditional system's eight — plus measured cycles per chain lap on
// the timing models.
func BenchmarkFigure3Crossings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			b.ReportMetric(res.TradCyclesPerLap/res.DSCyclesPerLap, "DS-vs-trad-lap-speedup")
		}
	}
}

// BenchmarkAblationResultComm measures the Section 5.1 result-
// communication extension: private block reductions executed only at
// their owners, with operand broadcasts replaced by result flow.
func BenchmarkAblationResultComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationResultComm(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			r := res.Rows[0]
			b.ReportMetric(r.OnIPC/r.OffIPC, "resultcomm-speedup")
			b.ReportMetric(float64(r.OffBroadcasts)/float64(r.OnBroadcasts), "broadcast-reduction-x")
		}
	}
}

// BenchmarkAblationInterconnect compares the global bus against a
// unidirectional ring (paper Section 4.4).
func BenchmarkAblationInterconnect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationInterconnect(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkAblationWritePolicy measures the ESP broadcast bytes saved by
// the paper's write-no-allocate policy choice.
func BenchmarkAblationWritePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationWritePolicy(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkAblationSyncESP measures the lock-step (Massive Memory
// Machine) cost of each benchmark's miss stream — the slowdown
// asynchronous datathreading exists to reclaim.
func BenchmarkAblationSyncESP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationSyncESP(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkAblationLatencies sweeps the BSHR and broadcast-queue access
// latencies the paper fixes by assumption.
func BenchmarkAblationLatencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationLatencies(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkAblationPlacement measures profile-guided page placement
// against round-robin distribution — the software form of the paper's
// "special support to increase datathread length".
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationPlacement(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			r := res.Rows[0] // swim
			b.ReportMetric(r.OptThreadMean/r.RRThreadMean, "swim-thread-lengthening-x")
		}
	}
}

// BenchmarkCostEffectiveness runs the Wood-Hill speedup-versus-costup
// analysis the paper's Section 4.4 sketches: DataScalar is cost-effective
// exactly when memory dominates system cost.
func BenchmarkCostEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f7, err := Figure7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		res := CostEffectiveness(f7)
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
		}
	}
}

// BenchmarkScaling extends the paper's 2-and-4-node comparison to eight
// nodes on both interconnects: DataScalar's IPC stays nearly flat while
// the traditional system collapses with the shrinking on-chip fraction.
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Scaling(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			for _, row := range res.Rows {
				if row.Benchmark == "compress" {
					first, last := row.Points[0], row.Points[len(row.Points)-1]
					b.ReportMetric(first.DSBus/last.DSBus, "DS-2to8-slowdown-x")
					b.ReportMetric(first.Trad/last.Trad, "trad-2to8-slowdown-x")
				}
			}
		}
	}
}

// BenchmarkMachineRun measures raw timing-simulator throughput — the
// metric the next-event scheduler and the hot-path work exist to improve.
// It runs the compress kernel to the standard timing bound on the
// two-node DataScalar machine and the traditional baseline, with and
// without an observer attached, reporting simulated cycles and guest
// instructions retired per wall-clock second.
func BenchmarkMachineRun(b *testing.B) {
	w, ok := WorkloadByName("compress")
	if !ok {
		b.Fatal("compress workload not registered")
	}
	p, err := w.Program(1)
	if err != nil {
		b.Fatal(err)
	}
	ff, ok := p.Labels["bench_main"]
	if !ok {
		b.Fatal("compress has no bench_main label")
	}
	pt, err := Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	const maxInstr = 300_000 // DefaultExperimentOptions().TimingInstr
	report := func(b *testing.B, cycles, instrs uint64) {
		sec := b.Elapsed().Seconds()
		if sec > 0 {
			b.ReportMetric(float64(cycles)/sec, "sim-cycles/sec")
			b.ReportMetric(float64(instrs)/sec/1e6, "guest-MIPS")
		}
	}
	runDS := func(observed bool) func(b *testing.B) {
		return func(b *testing.B) {
			var cycles, instrs uint64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(2)
				cfg.MaxInstr = maxInstr
				cfg.FastForwardPC = ff
				if observed {
					cfg.Observer = NewMetrics(10_000)
					cfg.SampleInterval = 10_000
				}
				m, err := NewMachine(cfg, p, pt)
				if err != nil {
					b.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
				instrs += r.Instructions
			}
			report(b, cycles, instrs)
		}
	}
	runTrad := func(observed bool) func(b *testing.B) {
		return func(b *testing.B) {
			var cycles, instrs uint64
			for i := 0; i < b.N; i++ {
				cfg := DefaultTraditionalConfig(2)
				cfg.MaxInstr = maxInstr
				cfg.FastForwardPC = ff
				if observed {
					cfg.Observer = NewMetrics(10_000)
				}
				m, err := NewTraditional(cfg, p, pt)
				if err != nil {
					b.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
				instrs += r.Instructions
			}
			report(b, cycles, instrs)
		}
	}
	b.Run("DS2", runDS(false))
	b.Run("DS2/observed", runDS(true))
	b.Run("trad2", runTrad(false))
	b.Run("trad2/observed", runTrad(true))
	// The 64-node mesh point exercises what the topology layer exists
	// for: the sparse machine loop (only nodes with pending work pay
	// per-cycle cost) and multi-hop broadcast trees, at the Scaling
	// harness's per-point instruction budget for this size. The
	// parallel4 variant partitions the same run across four worker
	// goroutines (core.Config.ParallelNodes); results are bit-identical,
	// so the pair measures pure intra-run speedup (flat on one core —
	// the conservative windows add coordination, not work).
	runDS64 := func(parallelNodes int) func(b *testing.B) {
		return func(b *testing.B) {
			pt64, err := Partition{NumNodes: 64, BlockPages: 1, ReplicateText: true}.Build(p)
			if err != nil {
				b.Fatal(err)
			}
			var cycles, instrs uint64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(64)
				cfg.Topology.Kind = TopoMesh
				cfg.MaxInstr = maxInstr * 8 / 64
				cfg.FastForwardPC = ff
				cfg.ParallelNodes = parallelNodes
				m, err := NewMachine(cfg, p, pt64)
				if err != nil {
					b.Fatal(err)
				}
				r, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles
				instrs += r.Instructions * 64
			}
			report(b, cycles, instrs)
		}
	}
	b.Run("DS64/mesh", runDS64(1))
	b.Run("DS64/mesh/parallel4", runDS64(4))
}

// BenchmarkEmuStep measures the functional emulator's per-instruction
// hot path (fetch from predecoded text, execute, single-page memory fast
// path) in guest MIPS. Every timing run pays this path once per
// instruction per node, plus again during fast-forward warmup.
func BenchmarkEmuStep(b *testing.B) {
	p, err := Assemble("bench", `
        .data
buf:    .space 16384
        .text
        li   r5, 100000000    # effectively infinite for the benchmark
outer:  la   r1, buf
        li   r2, 2048
loop:   sd   r2, 0(r1)
        ld   r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        addi r5, r5, -1
        bne  r5, zero, outer
        halt
`)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewEmulator(p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(20_000); err != nil { // touch every page once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec/1e6, "guest-MIPS")
	}
}

// BenchmarkAblationReplication sweeps the static replication fraction:
// the paper's Section 3 lever, trading per-node capacity for eliminated
// broadcasts.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := AblationReplication(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", res.Table().String())
			row := res.Rows[0] // compress
			base, half := row.Points[0], row.Points[len(row.Points)-1]
			b.ReportMetric(half.IPC/base.IPC, "compress-50pct-repl-speedup")
		}
	}
}
