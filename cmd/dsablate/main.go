// Command dsablate runs the ablation studies of the DataScalar design
// choices DESIGN.md §6 calls out: bus versus ring interconnect,
// write-allocate versus write-no-allocate under ESP, synchronous versus
// asynchronous ESP, result communication, and BSHR/broadcast-queue
// latencies.
//
// Usage:
//
//	dsablate [-scale N] [-only name]
//
// Names: interconnect, writepolicy, syncesp, resultcomm, latencies,
// placement, scaling, replication.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsablate: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	only := flag.String("only", "", "run a single ablation by name")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel

	type ablation struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	ablations := []ablation{
		{"interconnect", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationInterconnect(ctx, opts)
			return r.Table(), err
		}},
		{"writepolicy", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationWritePolicy(ctx, opts)
			return r.Table(), err
		}},
		{"syncesp", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationSyncESP(ctx, opts)
			return r.Table(), err
		}},
		{"resultcomm", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationResultComm(ctx, opts)
			return r.Table(), err
		}},
		{"latencies", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationLatencies(ctx, opts)
			return r.Table(), err
		}},
		{"placement", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationPlacement(ctx, opts)
			return r.Table(), err
		}},
		{"scaling", func() (fmt.Stringer, error) {
			r, err := datascalar.Scaling(ctx, opts)
			return r.Table(), err
		}},
		{"replication", func() (fmt.Stringer, error) {
			r, err := datascalar.AblationReplication(ctx, opts)
			return r.Table(), err
		}},
	}

	ran := 0
	for _, a := range ablations {
		if *only != "" && a.name != *only {
			continue
		}
		table, err := a.run()
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		if ran > 0 {
			fmt.Println()
		}
		fmt.Fprint(os.Stdout, table.String())
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown ablation %q", *only)
	}
}
