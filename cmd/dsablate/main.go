// Command dsablate runs the ablation studies of the DataScalar design
// choices DESIGN.md §6 calls out: bus versus ring interconnect,
// write-allocate versus write-no-allocate under ESP, synchronous versus
// asynchronous ESP, result communication, and BSHR/broadcast-queue
// latencies.
//
// Usage:
//
//	dsablate [-scale N] [-instr N] [-only name] [-json FILE]
//
// Names: interconnect, writepolicy, syncesp, resultcomm, latencies,
// placement, scaling, replication.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsablate: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "measured instructions per timing run (0 = default)")
	only := flag.String("only", "", "run a single ablation by name")
	jsonOut := flag.String("json", "", "also write the structured results of the ablations run as JSON to this file (\"-\" = stdout)")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	if *instr != 0 {
		opts.TimingInstr = *instr
	}

	type ablation struct {
		name string
		run  func() (fmt.Stringer, any, error)
	}
	ablations := []ablation{
		{"interconnect", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationInterconnect(ctx, opts)
			return r.Table(), r, err
		}},
		{"writepolicy", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationWritePolicy(ctx, opts)
			return r.Table(), r, err
		}},
		{"syncesp", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationSyncESP(ctx, opts)
			return r.Table(), r, err
		}},
		{"resultcomm", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationResultComm(ctx, opts)
			return r.Table(), r, err
		}},
		{"latencies", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationLatencies(ctx, opts)
			return r.Table(), r, err
		}},
		{"placement", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationPlacement(ctx, opts)
			return r.Table(), r, err
		}},
		{"scaling", func() (fmt.Stringer, any, error) {
			r, err := datascalar.Scaling(ctx, opts)
			return r.Table(), r, err
		}},
		{"replication", func() (fmt.Stringer, any, error) {
			r, err := datascalar.AblationReplication(ctx, opts)
			return r.Table(), r, err
		}},
	}

	ran := 0
	artifact := map[string]any{}
	for _, a := range ablations {
		if *only != "" && a.name != *only {
			continue
		}
		table, result, err := a.run()
		if err != nil {
			log.Fatalf("%s: %v", a.name, err)
		}
		if ran > 0 {
			fmt.Println()
		}
		fmt.Fprint(os.Stdout, table.String())
		artifact[a.name] = result
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown ablation %q", *only)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, artifact); err != nil {
			log.Fatal(err)
		}
	}
}

func writeJSON(path string, v any) error {
	if path == "-" {
		return datascalar.WriteResultJSON(os.Stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
