// Command dsasm assembles, validates, and disassembles programs in the
// bundled assembly dialect.
//
// Usage:
//
//	dsasm prog.s                 # assemble and report segment sizes
//	dsasm -d prog.s              # assemble then disassemble the text
//	dsasm -run prog.s [-instr N] # assemble and execute functionally
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/prog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsasm: ")
	disasm := flag.Bool("d", false, "disassemble the text segment")
	run := flag.Bool("run", false, "execute the program functionally")
	instr := flag.Uint64("instr", 0, "instruction limit for -run (0 = none)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		log.Fatal(err)
	}
	p, err := datascalar.Assemble(file, string(src))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %d instructions (%d bytes of text), %d bytes of data, %d pages\n",
		file, len(p.Text), len(p.Text)*8, len(p.Data), len(p.Pages()))
	if len(p.Labels) > 0 {
		fmt.Printf("labels: %d (entry 0x%x)\n", len(p.Labels), p.EntryPC())
	}

	if *disasm {
		for i, in := range p.Text {
			pc := prog.IndexToPC(i)
			label := ""
			for name, addr := range p.Labels {
				if addr == pc {
					label = name + ":"
					break
				}
			}
			fmt.Printf("%08x  %-12s %s\n", pc, label, in)
		}
	}

	if *run {
		m, err := datascalar.NewEmulator(p)
		if err != nil {
			log.Fatal(err)
		}
		n, err := m.Run(*instr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executed %d instructions, halted=%v\n", n, m.Halted())
		for r := uint8(1); r < 32; r++ {
			if v := m.Reg(r); v != 0 {
				fmt.Printf("  r%-2d = %d (0x%x)\n", r, int64(v), v)
			}
		}
	}
}
