// Command dsfault runs the deterministic fault-injection campaign: a
// sweep over (workload × fault scenario × seed) on the DataScalar
// machine that classifies every run — clean, recovered, halted-clean,
// corrupted, watchdog — and aggregates detection coverage, detection
// latency, and retry overhead per scenario (see docs/ROBUSTNESS.md).
//
// Usage:
//
//	dsfault [-workloads compress,mgrid,go] [-seeds 3] [-nodes 2]
//	        [-topology bus|ring|mesh|torus] [-deaths K] [-parallel-nodes N]
//	        [-instr N] [-scale N] [-parallel N] [-runs] [-json out.json]
//
// -deaths K swaps the default scenario grid for the cascade family:
// sequential owner deaths of depth 1..K with recovery enabled, reported
// as a survival curve (survived fraction and post-death IPC per depth).
//
// Campaigns are bit-reproducible: the same flags produce the same table
// and JSON artifact at any -parallel or -parallel-nodes setting.
//
// Exit codes: 0 on success (including campaigns whose runs halted or
// were corrupted — those are the campaign's findings, not its failure),
// 1 on errors, 2 on bad usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/cli"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsfault", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloads := fs.String("workloads", "", "comma-separated workload names (default compress,mgrid,go)")
	seeds := fs.Int("seeds", 0, "fault seeds per (workload, scenario) cell (default 3)")
	nodes := fs.Int("nodes", 0, "DataScalar node count (default 2, or deaths+1 for cascades)")
	topology := fs.String("topology", "bus", "interconnect for every run: bus, ring, mesh, torus")
	deaths := fs.Int("deaths", 0, "run the cascade scenario family up to this many sequential deaths instead of the default grid")
	instr := fs.Uint64("instr", 0, "measured instructions per run (default: sweep size)")
	scale := fs.Int("scale", 1, "workload scale factor")
	parallel := fs.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	parallelNodes := fs.Int("parallel-nodes", 0, "worker goroutines partitioning the nodes inside each run (results are bit-identical at any setting; 0 or 1 = serial node loop)")
	runs := fs.Bool("runs", false, "also print every individual run")
	jsonOut := fs.String("json", "", "write the campaign result as JSON to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "dsfault: unexpected arguments %q\n", fs.Args())
		return cli.ExitUsage
	}

	topo, err := datascalar.ParseTopologyKind(*topology)
	if err != nil {
		fmt.Fprintf(stderr, "dsfault: %v\n", err)
		return cli.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel

	cc := datascalar.FaultCampaignConfig{
		Seeds: *seeds, Nodes: *nodes, MaxInstr: *instr,
		Topology: topo, ParallelNodes: *parallelNodes, Deaths: *deaths,
	}
	if *workloads != "" {
		cc.Workloads = strings.Split(*workloads, ",")
	}

	res, err := datascalar.FaultCampaign(ctx, opts, cc)
	if err != nil {
		fmt.Fprintf(stderr, "dsfault: %v\n", err)
		return cli.ExitCode(err)
	}
	res.Table().Render(stdout)
	if st := res.SurvivalTable(); st != nil {
		fmt.Fprintln(stdout)
		st.Render(stdout)
	}
	if *runs {
		fmt.Fprintln(stdout)
		for _, r := range res.Runs {
			fmt.Fprintf(stdout, "%-10s %-14s seed=%016x  %-12s", r.Workload, r.Scenario, r.Seed, r.Outcome)
			if r.Detail != "" {
				fmt.Fprintf(stdout, "  %s", r.Detail)
			} else {
				fmt.Fprintf(stdout, "  cycles=%d (+%.1f%%) injected=%d detected=%d retries=%d",
					r.Cycles, r.OverheadPct, r.Injected, r.Detected, r.Retries)
			}
			fmt.Fprintln(stdout)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stdout, res); err != nil {
			fmt.Fprintf(stderr, "dsfault: %v\n", err)
			return cli.ExitFailure
		}
	}
	return cli.ExitOK
}

func writeJSON(path string, stdout io.Writer, v any) error {
	if path == "-" {
		return datascalar.WriteResultJSON(stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
