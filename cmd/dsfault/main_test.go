package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/cli"
)

func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := run("-no-such-flag"); code != cli.ExitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", code, cli.ExitUsage)
	}
	if code, _, stderr := run("stray"); code != cli.ExitUsage || !strings.Contains(stderr, "unexpected arguments") {
		t.Fatalf("stray argument: exit %d, stderr %q", code, stderr)
	}
}

// TestTinyCampaign runs a one-seed, one-workload campaign and checks the
// table renders every scenario and the JSON artifact parses.
func TestTinyCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign run in -short mode")
	}
	code, stdout, stderr := run("-workloads", "compress", "-seeds", "1", "-instr", "5000", "-json", "-")
	if code != cli.ExitOK {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr)
	}
	for _, s := range []string{"drop-1%", "delay-10%", "flip-fp", "death-recover"} {
		if !strings.Contains(stdout, s) {
			t.Errorf("table lacks scenario %q", s)
		}
	}
	i := strings.Index(stdout, "{")
	if i < 0 {
		t.Fatalf("no JSON in stdout:\n%s", stdout)
	}
	var res struct {
		Runs []struct {
			Outcome string `json:"outcome"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout[i:]), &res); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("artifact has no runs")
	}
}
