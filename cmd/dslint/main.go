// Command dslint statically checks guest programs: it builds the
// control-flow graph, runs the dataflow analyses of internal/analysis,
// and prints file:line diagnostics for the defect classes that bite when
// writing kernels by hand — uninitialized register reads, unreachable
// code, bad branch targets, statically out-of-segment or misaligned
// memory accesses, dead stores, missing halts, and broken JAL/RA call
// discipline.
//
// Usage:
//
//	dslint [-scale N] [-json] [-json-out FILE] [file.s ...]
//
// With no arguments every bundled workload kernel is checked.
// Diagnostics from all programs are aggregated and printed sorted by
// (file, line, class) — the same stable-output contract as dsvet — so
// the text output is byte-identical across runs regardless of argument
// order. Exit status is 1 when any diagnostic of severity warning or
// higher is reported, 2 on usage or assembly errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/wisc-arch/datascalar/internal/analysis"
	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// target is one named program to lint.
type target struct {
	name string // display name (file path or kernel name)
	p    *prog.Program
}

// lintLine is one diagnostic tagged with the program it came from, the
// unit of the aggregated (file, line, class) sort.
type lintLine struct {
	name string
	d    analysis.Diagnostic
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable body: it parses args, lints every target,
// and returns the process exit code (0 clean / 1 findings / 2 usage).
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "workload scale factor for bundled kernels")
	jsonOut := fs.Bool("json", false, "emit the combined report as JSON on stdout")
	jsonFile := fs.String("json-out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	targets, err := resolveTargets(fs.Args(), *scale)
	if err != nil {
		fmt.Fprintf(stderr, "dslint: %v\n", err)
		return 2
	}

	var reports []*analysis.Report
	var lines []lintLine
	findings := 0
	for _, tg := range targets {
		r := analysis.Analyze(tg.p)
		r.Program = tg.name
		reports = append(reports, r)
		findings += r.Count(analysis.Warning)
		for _, d := range r.Diags {
			lines = append(lines, lintLine{name: tg.name, d: d})
		}
	}
	// The JSON report and the text output share one order: programs by
	// name, diagnostics by (file, line, class), index and message as
	// tie-breaks for same-line findings.
	sort.SliceStable(reports, func(i, j int) bool {
		return reports[i].Program < reports[j].Program
	})
	sort.SliceStable(lines, func(i, j int) bool {
		a, b := lines[i], lines[j]
		if a.name != b.name {
			return a.name < b.name
		}
		if a.d.Line != b.d.Line {
			return a.d.Line < b.d.Line
		}
		if a.d.Class != b.d.Class {
			return a.d.Class < b.d.Class
		}
		if a.d.Index != b.d.Index {
			return a.d.Index < b.d.Index
		}
		return a.d.Msg < b.d.Msg
	})
	if !*jsonOut {
		for _, ln := range lines {
			fmt.Fprintf(stdout, "%s:%s\n", ln.name, ln.d)
		}
	}

	blob, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "dslint: %v\n", err)
		return 2
	}
	if *jsonOut {
		fmt.Fprintf(stdout, "%s\n", blob)
	}
	if *jsonFile != "" {
		if err := os.WriteFile(*jsonFile, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "dslint: %v\n", err)
			return 2
		}
	}

	if !*jsonOut {
		fmt.Fprintf(stdout, "dslint: %d program(s) checked, %d finding(s)\n", len(targets), findings)
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// resolveTargets assembles the requested .s files, or every bundled
// kernel when no files are named.
func resolveTargets(args []string, scale int) ([]target, error) {
	if len(args) == 0 {
		var out []target
		for _, w := range workload.All() {
			p, err := w.Program(scale)
			if err != nil {
				return nil, fmt.Errorf("kernel %s: %v", w.Name, err)
			}
			out = append(out, target{name: w.Name + ".s", p: p})
		}
		return out, nil
	}
	var out []target
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		p, err := asm.Assemble(path, string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		out = append(out, target{name: path, p: p})
	}
	return out, nil
}
