// Command dslint statically checks guest programs: it builds the
// control-flow graph, runs the dataflow analyses of internal/analysis,
// and prints file:line diagnostics for the defect classes that bite when
// writing kernels by hand — uninitialized register reads, unreachable
// code, bad branch targets, statically out-of-segment or misaligned
// memory accesses, dead stores, missing halts, and broken JAL/RA call
// discipline.
//
// Usage:
//
//	dslint [-scale N] [-json] [-json-out FILE] [file.s ...]
//
// With no arguments every bundled workload kernel is checked. Exit
// status is 1 when any diagnostic of severity warning or higher is
// reported, 2 on usage or assembly errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/wisc-arch/datascalar/internal/analysis"
	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// target is one named program to lint.
type target struct {
	name string // display name (file path or kernel name)
	p    *prog.Program
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dslint: ")
	scale := flag.Int("scale", 1, "workload scale factor for bundled kernels")
	jsonOut := flag.Bool("json", false, "emit the combined report as JSON on stdout")
	jsonFile := flag.String("json-out", "", "also write the JSON report to FILE")
	flag.Parse()

	targets, err := resolveTargets(flag.Args(), *scale)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	var reports []*analysis.Report
	findings := 0
	for _, tg := range targets {
		r := analysis.Analyze(tg.p)
		r.Program = tg.name
		reports = append(reports, r)
		findings += r.Count(analysis.Warning)
		if !*jsonOut {
			for _, d := range r.Diags {
				fmt.Printf("%s:%s\n", tg.name, d)
			}
		}
	}

	blob, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	if *jsonOut {
		fmt.Printf("%s\n", blob)
	}
	if *jsonFile != "" {
		if err := os.WriteFile(*jsonFile, append(blob, '\n'), 0o644); err != nil {
			log.Print(err)
			os.Exit(2)
		}
	}

	if !*jsonOut {
		fmt.Printf("dslint: %d program(s) checked, %d finding(s)\n", len(targets), findings)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// resolveTargets assembles the requested .s files, or every bundled
// kernel when no files are named.
func resolveTargets(args []string, scale int) ([]target, error) {
	if len(args) == 0 {
		var out []target
		for _, w := range workload.All() {
			p, err := w.Program(scale)
			if err != nil {
				return nil, fmt.Errorf("kernel %s: %v", w.Name, err)
			}
			out = append(out, target{name: w.Name + ".s", p: p})
		}
		return out, nil
	}
	var out []target
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		p, err := asm.Assemble(path, string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		out = append(out, target{name: path, p: p})
	}
	return out, nil
}
