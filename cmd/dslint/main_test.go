package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPinnedDiagnosticOrder feeds the seeded fixtures in reverse
// alphabetical order and pins the exact aggregated output: diagnostics
// sorted by (file, line, class) regardless of argument order, the
// stable-output contract shared with dsvet.
func TestPinnedDiagnosticOrder(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"testdata/zeta.s", "testdata/alpha.s"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	want := strings.Join([]string{
		"testdata/alpha.s:2: warning: value computed into r1 is never read (dead store) [dead-store]",
		"testdata/alpha.s:2: error: r2 may be read before any write reaches this point [uninit-read]",
		"testdata/alpha.s:2: error: r3 may be read before any write reaches this point [uninit-read]",
		"testdata/zeta.s:2: warning: value computed into r1 is never read (dead store) [dead-store]",
		"testdata/zeta.s:4: warning: unreachable instruction [unreachable]",
		"dslint: 2 program(s) checked, 5 finding(s)",
		"",
	}, "\n")
	if out.String() != want {
		t.Errorf("output not pinned:\n got:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestArgumentOrderInvariance: both argument orders produce
// byte-identical text output.
func TestArgumentOrderInvariance(t *testing.T) {
	var a, b, errb bytes.Buffer
	realMain([]string{"testdata/alpha.s", "testdata/zeta.s"}, &a, &errb)
	realMain([]string{"testdata/zeta.s", "testdata/alpha.s"}, &b, &errb)
	if a.String() != b.String() {
		t.Errorf("output depends on argument order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestBundledKernelsClean: the committed workload suite must lint
// clean — the same gate CI applies.
func TestBundledKernelsClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain(nil, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Errorf("summary line missing: %q", out.String())
	}
}

// TestUsageErrors: bad flags and unreadable files exit 2.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := realMain([]string{"no-such-file.s"}, &out, &errb); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// TestJSONReportsSorted: -json emits per-program reports ordered by
// program name even when arguments arrive shuffled.
func TestJSONReportsSorted(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-json", "testdata/zeta.s", "testdata/alpha.s"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var reports []struct {
		Program string `json:"program"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("stdout is not JSON: %v", err)
	}
	if len(reports) != 2 || reports[0].Program != "testdata/alpha.s" || reports[1].Program != "testdata/zeta.s" {
		t.Errorf("reports not sorted by program: %+v", reports)
	}
}
