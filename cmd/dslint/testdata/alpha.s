        .text
        add  r1, r2, r3
        halt
