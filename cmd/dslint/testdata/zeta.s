        .text
        li   r1, 1
        b    done
        li   r2, 2
done:   halt
