// Command dsprof measures and compares CPI stacks: the exhaustive
// per-node cycle attribution every timing machine maintains (see
// docs/OBSERVABILITY.md).
//
// Profile mode runs the chosen workloads across the five Figure 7
// systems (perfect cache, DataScalar at 2 and 4 nodes, traditional with
// 1/2 and 1/4 of memory on-chip) and prints one CPI-stack table per
// workload:
//
//	dsprof -workloads compress,mgrid -instr 30000
//	dsprof -json profile.json            # artifact for -diff
//
// Diff mode compares two profile artifacts bucket by bucket. The
// simulator is deterministic, so the artifacts are bit-reproducible
// across machines and any difference is a real behavioral change; the
// thresholds decide which changes fail. CI uses this as the
// performance-regression gate against the committed BENCH_baseline.json:
//
//	dsprof -diff BENCH_baseline.json BENCH_new.json
//	dsprof -diff -threshold 0.05 -min-share 0.01 old.json new.json
//
// A bucket regresses when it grows more than -threshold relative to the
// old profile and holds at least -min-share of either run's cycles
// (total cycles and instruction counts are always gated). Exit codes:
// 0 success / no regression; 1 regression detected or generic failure;
// 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsprof: ")
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main minus the process boundary, so the CLI tests can run
// the binary in-process and assert on exit codes.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloads := fs.String("workloads", "", "comma-separated workload names (empty = the six timing benchmarks)")
	instr := fs.Uint64("instr", 30_000, "measured instructions per run")
	scale := fs.Int("scale", 1, "workload scale factor")
	parallel := fs.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := fs.String("json", "", "write the profile (or diff) as JSON to this file (\"-\" = stdout)")
	diff := fs.Bool("diff", false, "compare two profile artifacts: dsprof -diff old.json new.json")
	threshold := fs.Float64("threshold", 0.10, "relative per-bucket growth that fails the diff")
	minShare := fs.Float64("min-share", 0.02, "ignore buckets below this share of cycles in both runs")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dsprof: %v\n", err)
		return cli.ExitCode(err)
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "dsprof: "+format+"\n", args...)
		return cli.ExitUsage
	}

	if *diff {
		if fs.NArg() != 2 {
			return usage("-diff needs exactly two artifacts: dsprof -diff old.json new.json")
		}
		return runDiff(fs.Arg(0), fs.Arg(1), datascalar.CPIDiffOptions{
			Threshold: *threshold, MinShare: *minShare,
		}, *jsonOut, stdout, stderr)
	}
	if fs.NArg() != 0 {
		return usage("unexpected arguments %q", fs.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	opts.TimingInstr = *instr
	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}
	prof, err := datascalar.CPIProfile(ctx, opts, names)
	if err != nil {
		return fail(err)
	}
	for i, t := range prof.Tables() {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		t.Render(stdout)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, stdout, prof); err != nil {
			return fail(err)
		}
	}
	return cli.ExitOK
}

// runDiff loads two profile artifacts and renders their comparison;
// regressions (or lost coverage) exit nonzero so CI can gate on it.
func runDiff(oldPath, newPath string, o datascalar.CPIDiffOptions, jsonOut string, stdout, stderr io.Writer) int {
	old, err := readProfile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "dsprof: %v\n", err)
		return cli.ExitFailure
	}
	cur, err := readProfile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "dsprof: %v\n", err)
		return cli.ExitFailure
	}
	d, err := datascalar.CompareCPIProfiles(old, cur, o)
	if err != nil {
		fmt.Fprintf(stderr, "dsprof: %v\n", err)
		return cli.ExitFailure
	}
	if len(d.Entries) == 0 {
		fmt.Fprintf(stdout, "dsprof: profiles identical (%d rows)\n", len(old.Rows))
	} else {
		d.Table().Render(stdout)
	}
	for _, m := range d.Missing {
		fmt.Fprintf(stdout, "dsprof: row %s missing from %s\n", m, newPath)
	}
	for _, a := range d.Added {
		fmt.Fprintf(stdout, "dsprof: row %s only in %s\n", a, newPath)
	}
	if jsonOut != "" {
		if err := writeJSON(jsonOut, stdout, d); err != nil {
			fmt.Fprintf(stderr, "dsprof: %v\n", err)
			return cli.ExitFailure
		}
	}
	if !d.OK() {
		fmt.Fprintf(stdout, "dsprof: FAIL: %d regressed buckets, %d missing rows\n",
			d.Regressions, len(d.Missing))
		return cli.ExitFailure
	}
	fmt.Fprintf(stdout, "dsprof: OK: no regressions beyond %.0f%% (min share %.0f%%)\n",
		100*orDefault(o.Threshold, 0.10), 100*orDefault(o.MinShare, 0.02))
	return cli.ExitOK
}

func orDefault(v, d float64) float64 {
	if v == 0 {
		return d
	}
	return v
}

func readProfile(path string) (datascalar.CPIProfileResult, error) {
	var p datascalar.CPIProfileResult
	data, err := os.ReadFile(path)
	if err != nil {
		return p, err
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func writeJSON(path string, stdout io.Writer, v any) error {
	if path == "-" {
		return datascalar.WriteResultJSON(stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
