package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/cli"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// run invokes the CLI in-process and returns (exit code, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-flag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"stray-args", []string{"stray"}, "unexpected arguments"},
		{"diff-too-few", []string{"-diff", "only-one.json"}, "exactly two artifacts"},
		{"diff-too-many", []string{"-diff", "a.json", "b.json", "c.json"}, "exactly two artifacts"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := run(t, tc.args...)
			if code != cli.ExitUsage {
				t.Fatalf("exit = %d, want %d\n%s%s", code, cli.ExitUsage, stdout, stderr)
			}
			if !strings.Contains(stdout+stderr, tc.want) {
				t.Fatalf("output lacks %q\n%s%s", tc.want, stdout, stderr)
			}
		})
	}
	if code, _, stderr := run(t, "-workloads", "nope"); code != cli.ExitFailure ||
		!strings.Contains(stderr, "unknown workload") {
		t.Fatalf("unknown workload: exit %d, stderr %q", code, stderr)
	}
}

// TestProfileAndDiff is the end-to-end gate: profile a workload, self-diff
// (must pass), tamper with a bucket (must fail with exit 1).
func TestProfileAndDiff(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	code, stdout, stderr := run(t, "-workloads", "compress", "-instr", "5000", "-json", base)
	if code != cli.ExitOK {
		t.Fatalf("profile: exit %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "CPI stack: compress") {
		t.Fatalf("profile output lacks the CPI table:\n%s", stdout)
	}

	code, stdout, _ = run(t, "-diff", base, base)
	if code != cli.ExitOK || !strings.Contains(stdout, "profiles identical") {
		t.Fatalf("self-diff: exit %d\n%s", code, stdout)
	}

	// Inflate one material bucket well past the 10% threshold.
	var prof datascalar.CPIProfileResult
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &prof); err != nil {
		t.Fatal(err)
	}
	tampered := false
	for i := range prof.Rows {
		row := &prof.Rows[i]
		if row.System != "DS2" {
			continue
		}
		for j := range row.Stacks {
			row.Stacks[j][obs.StallESPSerial] += row.Cycles / 2
		}
		row.Cycles += row.Cycles / 2
		tampered = true
	}
	if !tampered {
		t.Fatal("no DS2 row to tamper with")
	}
	cur := filepath.Join(dir, "cur.json")
	out, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, out, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = run(t, "-diff", base, cur)
	if code != cli.ExitFailure {
		t.Fatalf("tampered diff: exit %d, want %d\n%s", code, cli.ExitFailure, stdout)
	}
	if !strings.Contains(stdout, "REGRESSED") || !strings.Contains(stdout, "FAIL") {
		t.Fatalf("tampered diff output lacks verdicts:\n%s", stdout)
	}
	// The reverse direction is an improvement, not a regression.
	if code, stdout, _ = run(t, "-diff", cur, base); code != cli.ExitOK {
		t.Fatalf("improvement flagged as regression: exit %d\n%s", code, stdout)
	}
}

func TestDiffMissingArtifact(t *testing.T) {
	code, _, stderr := run(t, "-diff", "no-such-old.json", "no-such-new.json")
	if code != cli.ExitFailure || !strings.Contains(stderr, "no-such-old.json") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}
