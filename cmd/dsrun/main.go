// Command dsrun executes a program — a bundled SPEC95-analogue workload
// or an assembly file — on a chosen machine model and reports timing and
// protocol statistics.
//
// Usage:
//
//	dsrun -workload compress -system ds -nodes 2 [-instr N] [-scale N]
//	dsrun -asm prog.s -system traditional -nodes 4
//	dsrun -workload li -system emu            # functional run only
//
// Systems: ds (DataScalar), traditional, perfect, emu.
//
// Fault injection (ds only; see docs/ROBUSTNESS.md): the -fault-* flags
// build a seeded, deterministic fault plan — broadcast drops, delivery
// delays, payload corruption, a permanent node death — plus the
// detection machinery (BSHR retry timeouts, the commit-fingerprint
// exchange) and degraded-mode recovery:
//
//	dsrun -workload compress -system ds -nodes 2 -fault-drop 0.01
//	dsrun -workload compress -system ds -nodes 2 \
//	      -fault-death-cycle 50000 -fault-dead-node 1 -fault-recover
//
// Exit codes: 0 success; 1 generic failure; 2 usage error; 3 the
// commit-progress watchdog fired (protocol deadlock); 4 the machine
// detected a fault and halted with a structured report.
//
// Observability (see docs/OBSERVABILITY.md):
//
//	dsrun -workload compress -system ds -nodes 2 \
//	      -trace-out trace.json -metrics-out metrics.json -interval 10000
//	dsrun -workload compress -system ds -nodes 2 -json -      # result to stdout
//
// -trace-out writes a Chrome trace-event file (load it at
// ui.perfetto.dev), -metrics-out a JSON interval time series plus the
// final counters and the run's cpiStack section, and -json the full
// Result as JSON ("-" = stdout, anything else = file path). Observation
// never changes the simulation: cycle counts and counters are identical
// with or without these flags. -cpi prints the per-node CPI-stack table
// (exhaustive cycle attribution; see cmd/dsprof for cross-run diffing).
//
// Profiling (see docs/PERFORMANCE.md): -cpuprofile and -memprofile write
// pprof profiles of the run for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/cli"
)

// startProfiles starts CPU profiling and arranges the end-of-run heap
// profile; the returned stop function must run before exit (fatal-error
// paths skip it — a failed run's profile is not useful).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}
	}, nil
}

// runArtifact is the -json envelope: enough run identity to tell
// artifacts apart, plus the model's full result.
type runArtifact struct {
	System   string `json:"system"`
	Workload string `json:"workload,omitempty"`
	AsmFile  string `json:"asm_file,omitempty"`
	Nodes    int    `json:"nodes"`
	Scale    int    `json:"scale"`
	Topology string `json:"topology,omitempty"`
	Result   any    `json:"result"`
}

// observability bundles the sink flags and the observers built from
// them.
type observability struct {
	traceOut   string
	metricsOut string
	interval   uint64
	trace      *datascalar.Trace
	metrics    *datascalar.Metrics
	stderr     io.Writer
}

// observer returns the combined observer (nil when no sink was
// requested, which disables observation entirely).
func (o *observability) observer() datascalar.Observer {
	var obs []datascalar.Observer
	if o.traceOut != "" {
		o.trace = datascalar.NewTrace()
		obs = append(obs, o.trace)
	}
	if o.metricsOut != "" {
		o.metrics = datascalar.NewMetrics(o.interval)
		obs = append(obs, o.metrics)
	}
	return datascalar.MultiObserver(obs...)
}

// setCPI attaches the run's cycle-attribution stacks to the metrics
// sink so the artifact carries a cpiStack section.
func (o *observability) setCPI(stacks []datascalar.CPIStack, instructions uint64) {
	if o.metrics != nil {
		o.metrics.SetCPIStacks(stacks, instructions)
	}
}

// write flushes the requested sink files; final is embedded in the
// metrics file as the end-of-run counter snapshot.
func (o *observability) write(final any) error {
	if o.trace != nil {
		if err := o.trace.WriteChromeTraceFile(o.traceOut); err != nil {
			return err
		}
		fmt.Fprintf(o.stderr, "dsrun: wrote %d trace events, %d samples to %s\n",
			o.trace.NumEvents(), o.trace.NumSamples(), o.traceOut)
	}
	if o.metrics != nil {
		if err := o.metrics.WriteFile(o.metricsOut, final); err != nil {
			return err
		}
		fmt.Fprintf(o.stderr, "dsrun: wrote %d sampled intervals to %s\n",
			o.metrics.NumIntervals(), o.metricsOut)
	}
	return nil
}

// writeArtifact emits the -json envelope to stdout ("-") or a file.
func writeArtifact(path string, stdout io.Writer, a runArtifact) error {
	if path == "-" {
		return datascalar.WriteResultJSON(stdout, a)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsrun: ")
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main minus the process boundary, so the CLI tests can run
// the binary in-process and assert on exit codes (see cli.ExitCode for
// the convention).
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadName := fs.String("workload", "", "bundled workload name (see -list)")
	asmFile := fs.String("asm", "", "assembly source file to run instead of a workload")
	system := fs.String("system", "ds", "machine model: ds, traditional, perfect, emu")
	nodes := fs.Int("nodes", 2, "node/chip count for ds and traditional")
	topology := fs.String("topology", "bus", "interconnect for ds and traditional: bus, ring, mesh, torus")
	parallelNodes := fs.Int("parallel-nodes", 1, "worker goroutines partitioning the nodes inside a ds run (results are bit-identical at any setting; 1 = serial node loop)")
	scale := fs.Int("scale", 1, "workload scale factor")
	instr := fs.Uint64("instr", 0, "max measured instructions (0 = run to completion)")
	watchdog := fs.Uint64("watchdog", 0, "cycles without commit progress before the deadlock watchdog fires (0 = default)")
	list := fs.Bool("list", false, "list bundled workloads and exit")
	report := fs.Bool("report", false, "print full statistics tables after DataScalar runs")
	cpi := fs.Bool("cpi", false, "print the CPI-stack table (per-node cycle attribution) after the run")
	jsonOut := fs.String("json", "", "write the full result as JSON to this file (\"-\" = stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	var faults cli.FaultFlags
	faults.Register(fs)
	var ob observability
	ob.stderr = stderr
	fs.StringVar(&ob.traceOut, "trace-out", "", "write a Chrome trace-event file (Perfetto-loadable) to this path")
	fs.StringVar(&ob.metricsOut, "metrics-out", "", "write an interval metrics JSON time series to this path")
	fs.Uint64Var(&ob.interval, "interval", 10000, "metrics sampling interval in cycles (ds only)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dsrun: %v\n", err)
		return cli.ExitCode(err)
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "dsrun: "+format+"\n", args...)
		return cli.ExitUsage
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProfiles()

	if *list {
		for _, w := range datascalar.Workloads() {
			timing := ""
			if w.Timing {
				timing = "  [timing set]"
			}
			fmt.Fprintf(stdout, "%-9s (%s)%s\n  %s\n", w.Name, w.Class, timing, w.Regime)
		}
		return cli.ExitOK
	}

	p, ff, err := loadProgram(*workloadName, *asmFile, *scale)
	if err != nil {
		return usage("%v", err)
	}
	if (ob.traceOut != "" || ob.metricsOut != "") && *system != "ds" && *system != "traditional" {
		return usage("-trace-out/-metrics-out require -system ds or traditional (got %q)", *system)
	}
	if ob.metricsOut != "" && ob.interval == 0 {
		return usage("-metrics-out needs a sampling interval; pass -interval > 0")
	}
	if faults.Active() && *system != "ds" {
		return usage("-fault-* flags require -system ds (got %q)", *system)
	}
	if *cpi && *system == "emu" {
		return usage("-cpi needs a timing model (got -system emu)")
	}
	topo, err := datascalar.ParseTopologyKind(*topology)
	if err != nil {
		return usage("%v", err)
	}
	if topo != datascalar.TopoBus && *system != "ds" && *system != "traditional" {
		return usage("-topology requires -system ds or traditional (got %q)", *system)
	}
	if *parallelNodes > 1 && *system != "ds" {
		return usage("-parallel-nodes requires -system ds (got %q)", *system)
	}

	artifact := runArtifact{
		System: *system, Workload: *workloadName, AsmFile: *asmFile,
		Nodes: *nodes, Scale: *scale, Topology: topo.String(),
	}
	var artifactErr error
	emitJSON := func(result any) {
		if *jsonOut == "" {
			return
		}
		artifact.Result = result
		artifactErr = writeArtifact(*jsonOut, stdout, artifact)
	}

	switch *system {
	case "emu":
		m, err := datascalar.NewEmulator(p)
		if err != nil {
			return fail(err)
		}
		n, err := m.Run(*instr)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "executed %d instructions, halted=%v, pages touched=%d\n",
			n, m.Halted(), m.Mem().PageCount())
		emitJSON(map[string]any{
			"instructions": n, "halted": m.Halted(), "pages_touched": m.Mem().PageCount(),
		})

	case "perfect":
		r, err := datascalar.RunPerfectCache(datascalar.DefaultCoreConfig(), p, *instr, ff)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "perfect cache: %d instructions in %d cycles, IPC %.2f\n",
			r.Instructions, r.Cycles, r.IPC)
		emitJSON(r)
		if *cpi {
			fmt.Fprintln(stdout)
			datascalar.CPIStackTable("CPI stack (perfect cache)",
				[]datascalar.CPIStack{r.CPIStack}, r.Instructions).Render(stdout)
		}

	case "ds":
		pt, err := datascalar.Partition{NumNodes: *nodes, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			return fail(err)
		}
		cfg := datascalar.DefaultConfig(*nodes)
		cfg.Topology.Kind = topo
		cfg.MaxInstr = *instr
		cfg.FastForwardPC = ff
		cfg.WatchdogCycles = *watchdog
		cfg.ParallelNodes = *parallelNodes
		cfg.Fault = faults.Config()
		cfg.Observer = ob.observer()
		if cfg.Observer != nil {
			cfg.SampleInterval = ob.interval
		}
		m, err := datascalar.NewMachine(cfg, p, pt)
		if err != nil {
			return fail(err)
		}
		r, err := m.Run()
		if err != nil {
			// A structured halt (exit codes 3 and 4) still reports what
			// the machine learned before stopping.
			if fstats := m.FaultStats(); fstats != nil && fstats.Detections > 0 {
				fmt.Fprintf(stderr, "dsrun: fault detections before halt: %d (mean latency %.0f cycles)\n",
					fstats.Detections, fstats.MeanDetectLatency())
			}
			return fail(err)
		}
		ob.setCPI(r.CPIStacks, r.Instructions)
		if err := ob.write(r); err != nil {
			return fail(err)
		}
		emitJSON(r)
		fmt.Fprintf(stdout, "DataScalar %d nodes: %d instructions in %d cycles, IPC %.2f, correspondence=%v\n",
			*nodes, r.Instructions, r.Cycles, r.IPC, r.CorrespondenceOK)
		var bcast, late uint64
		for _, ns := range r.Nodes {
			bcast += ns.Broadcasts.Value()
			late += ns.LateBroadcasts.Value()
		}
		// Busy percent is per transfer resource: the one shared bus, or
		// the topology's aggregate link count for point-to-point kinds.
		links := float64(topo.Links(*nodes))
		fmt.Fprintf(stdout, "broadcasts=%d (late %d), net bytes=%d, link busy %.0f%%\n",
			bcast, late, r.BusStats.Bytes.Value(),
			100*float64(r.BusStats.BusyCycles.Value())/(float64(r.Cycles)*links))
		if f := r.Fault; f != nil {
			fmt.Fprintf(stdout, "faults: injected drops=%d delays=%d flips=%d, timeouts=%d retries=%d, detections=%d",
				f.InjectedDrops, f.InjectedDelays, f.InjectedFlips, f.Timeouts, f.Retries, f.Detections)
			if f.Degraded {
				fmt.Fprintf(stdout, ", degraded (node %d dead, %d pages remapped to node %d)",
					f.DeadNode, f.RemappedPages, f.SuccessorNode)
			}
			fmt.Fprintln(stdout)
		}
		if *cpi {
			fmt.Fprintln(stdout)
			datascalar.CPIStackTable(fmt.Sprintf("CPI stack (DataScalar %d nodes)", *nodes),
				r.CPIStacks, r.Instructions).Render(stdout)
		}
		if *report {
			for _, table := range r.Report() {
				fmt.Fprintln(stdout)
				fmt.Fprint(stdout, table.String())
			}
		}

	case "traditional":
		pt, err := datascalar.Partition{NumNodes: *nodes, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			return fail(err)
		}
		cfg := datascalar.DefaultTraditionalConfig(*nodes)
		cfg.Topology.Kind = topo
		cfg.MaxInstr = *instr
		cfg.FastForwardPC = ff
		cfg.Observer = ob.observer()
		m, err := datascalar.NewTraditional(cfg, p, pt)
		if err != nil {
			return fail(err)
		}
		r, err := m.Run()
		if err != nil {
			return fail(err)
		}
		ob.setCPI([]datascalar.CPIStack{r.CPIStack}, r.Instructions)
		if err := ob.write(r); err != nil {
			return fail(err)
		}
		emitJSON(r)
		fmt.Fprintf(stdout, "traditional 1/%d on-chip: %d instructions in %d cycles, IPC %.2f\n",
			*nodes, r.Instructions, r.Cycles, r.IPC)
		fmt.Fprintf(stdout, "off-chip loads=%d, off-chip stores=%d, writebacks off-chip=%d, bus bytes=%d\n",
			r.Mem.OffChipLoads.Value(), r.Mem.StoresOff.Value(),
			r.Mem.WritebacksOff.Value(), r.BusStats.Bytes.Value())
		if *cpi {
			fmt.Fprintln(stdout)
			datascalar.CPIStackTable(fmt.Sprintf("CPI stack (traditional 1/%d on-chip)", *nodes),
				[]datascalar.CPIStack{r.CPIStack}, r.Instructions).Render(stdout)
		}

	default:
		return usage("unknown system %q (want ds, traditional, perfect, emu)", *system)
	}
	if artifactErr != nil {
		return fail(artifactErr)
	}
	return cli.ExitOK
}

func loadProgram(workloadName, asmFile string, scale int) (*datascalar.Program, uint64, error) {
	switch {
	case workloadName != "" && asmFile != "":
		return nil, 0, fmt.Errorf("use either -workload or -asm, not both")
	case workloadName != "":
		w, ok := datascalar.WorkloadByName(workloadName)
		if !ok {
			return nil, 0, fmt.Errorf("unknown workload %q (try -list)", workloadName)
		}
		p, err := w.Program(scale)
		if err != nil {
			return nil, 0, err
		}
		return p, p.Labels["bench_main"], nil
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, 0, err
		}
		p, err := datascalar.Assemble(asmFile, string(src))
		if err != nil {
			return nil, 0, err
		}
		// Honor a bench_main label if the source defines one.
		return p, p.Labels["bench_main"], nil
	default:
		return nil, 0, fmt.Errorf("specify -workload or -asm (or -list)")
	}
}
