// Command dsrun executes a program — a bundled SPEC95-analogue workload
// or an assembly file — on a chosen machine model and reports timing and
// protocol statistics.
//
// Usage:
//
//	dsrun -workload compress -system ds -nodes 2 [-instr N] [-scale N]
//	dsrun -asm prog.s -system traditional -nodes 4
//	dsrun -workload li -system emu            # functional run only
//
// Systems: ds (DataScalar), traditional, perfect, emu.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsrun: ")
	workloadName := flag.String("workload", "", "bundled workload name (see -list)")
	asmFile := flag.String("asm", "", "assembly source file to run instead of a workload")
	system := flag.String("system", "ds", "machine model: ds, traditional, perfect, emu")
	nodes := flag.Int("nodes", 2, "node/chip count for ds and traditional")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "max measured instructions (0 = run to completion)")
	list := flag.Bool("list", false, "list bundled workloads and exit")
	report := flag.Bool("report", false, "print full statistics tables after DataScalar runs")
	flag.Parse()

	if *list {
		for _, w := range datascalar.Workloads() {
			timing := ""
			if w.Timing {
				timing = "  [timing set]"
			}
			fmt.Printf("%-9s (%s)%s\n  %s\n", w.Name, w.Class, timing, w.Regime)
		}
		return
	}

	p, ff, err := loadProgram(*workloadName, *asmFile, *scale)
	if err != nil {
		log.Fatal(err)
	}

	switch *system {
	case "emu":
		m, err := datascalar.NewEmulator(p)
		if err != nil {
			log.Fatal(err)
		}
		n, err := m.Run(*instr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("executed %d instructions, halted=%v, pages touched=%d\n",
			n, m.Halted(), m.Mem().PageCount())

	case "perfect":
		r, err := datascalar.RunPerfectCache(datascalar.DefaultCoreConfig(), p, *instr, ff)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("perfect cache: %d instructions in %d cycles, IPC %.2f\n",
			r.Instructions, r.Cycles, r.IPC)

	case "ds":
		pt, err := datascalar.Partition{NumNodes: *nodes, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			log.Fatal(err)
		}
		cfg := datascalar.DefaultConfig(*nodes)
		cfg.MaxInstr = *instr
		cfg.FastForwardPC = ff
		m, err := datascalar.NewMachine(cfg, p, pt)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DataScalar %d nodes: %d instructions in %d cycles, IPC %.2f, correspondence=%v\n",
			*nodes, r.Instructions, r.Cycles, r.IPC, r.CorrespondenceOK)
		var bcast, late uint64
		for _, ns := range r.Nodes {
			bcast += ns.Broadcasts.Value()
			late += ns.LateBroadcasts.Value()
		}
		fmt.Printf("broadcasts=%d (late %d), bus bytes=%d, bus busy %.0f%%\n",
			bcast, late, r.BusStats.Bytes.Value(),
			100*float64(r.BusStats.BusyCycles.Value())/float64(r.Cycles))
		if *report {
			for _, table := range r.Report() {
				fmt.Println()
				fmt.Print(table.String())
			}
		}

	case "traditional":
		pt, err := datascalar.Partition{NumNodes: *nodes, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			log.Fatal(err)
		}
		cfg := datascalar.DefaultTraditionalConfig(*nodes)
		cfg.MaxInstr = *instr
		cfg.FastForwardPC = ff
		m, err := datascalar.NewTraditional(cfg, p, pt)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("traditional 1/%d on-chip: %d instructions in %d cycles, IPC %.2f\n",
			*nodes, r.Instructions, r.Cycles, r.IPC)
		fmt.Printf("off-chip loads=%d, off-chip stores=%d, writebacks off-chip=%d, bus bytes=%d\n",
			r.Mem.OffChipLoads.Value(), r.Mem.StoresOff.Value(),
			r.Mem.WritebacksOff.Value(), r.BusStats.Bytes.Value())

	default:
		log.Fatalf("unknown system %q (want ds, traditional, perfect, emu)", *system)
	}
}

func loadProgram(workloadName, asmFile string, scale int) (*datascalar.Program, uint64, error) {
	switch {
	case workloadName != "" && asmFile != "":
		return nil, 0, fmt.Errorf("use either -workload or -asm, not both")
	case workloadName != "":
		w, ok := datascalar.WorkloadByName(workloadName)
		if !ok {
			return nil, 0, fmt.Errorf("unknown workload %q (try -list)", workloadName)
		}
		p, err := w.Program(scale)
		if err != nil {
			return nil, 0, err
		}
		return p, p.Labels["bench_main"], nil
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, 0, err
		}
		p, err := datascalar.Assemble(asmFile, string(src))
		if err != nil {
			return nil, 0, err
		}
		// Honor a bench_main label if the source defines one.
		return p, p.Labels["bench_main"], nil
	default:
		return nil, 0, fmt.Errorf("specify -workload or -asm (or -list)")
	}
}
