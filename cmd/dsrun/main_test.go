package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/cli"
)

// run invokes the CLI in-process and returns (exit code, stdout, stderr).
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		code int
		want string // substring of stdout+stderr
	}{
		{"usage/no-program", nil, cli.ExitUsage, "specify -workload"},
		{"usage/unknown-flag", []string{"-no-such-flag"}, cli.ExitUsage, "flag provided but not defined"},
		{"usage/unknown-workload", []string{"-workload", "nope"}, cli.ExitUsage, "unknown workload"},
		{"usage/unknown-system", []string{"-workload", "compress", "-system", "bogus"}, cli.ExitUsage, "unknown system"},
		{"usage/fault-on-traditional", []string{"-workload", "compress", "-system", "traditional", "-fault-drop", "0.1"},
			cli.ExitUsage, "-fault-* flags require -system ds"},
		{"ok/clean-run", []string{"-workload", "compress", "-instr", "5000"},
			cli.ExitOK, "correspondence=true"},
		{"ok/faulty-run-recovers", []string{"-workload", "compress", "-instr", "5000",
			"-fault-drop", "0.02", "-fault-retry-timeout", "1000"},
			cli.ExitOK, "faults: injected drops="},
		{"deadlock/watchdog", []string{"-workload", "compress", "-instr", "5000", "-watchdog", "1"},
			cli.ExitDeadlock, "core: deadlock: no commit progress"},
		{"fault/death-halt", []string{"-workload", "compress", "-instr", "50000",
			"-fault-death-cycle", "2000", "-fault-dead-node", "1",
			"-fault-retry-timeout", "500", "-fault-retries", "2"},
			cli.ExitFault, "fault: death: node 1"},
		{"ok/death-recover", []string{"-workload", "compress", "-instr", "50000",
			"-fault-death-cycle", "2000", "-fault-dead-node", "1", "-fault-recover",
			"-fault-retry-timeout", "500", "-fault-retries", "2"},
			cli.ExitOK, "degraded (node 1 dead"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := run(t, tc.args...)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					code, tc.code, stdout, stderr)
			}
			if !strings.Contains(stdout+stderr, tc.want) {
				t.Fatalf("output lacks %q\nstdout:\n%s\nstderr:\n%s", tc.want, stdout, stderr)
			}
		})
	}
}

// TestJSONArtifactWithFaults: a faulty run's -json artifact embeds the
// fault counters; a fault-free run's artifact stays byte-identical to
// one from a build that never heard of faults (no fault keys at all).
func TestJSONArtifactWithFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	code, _, stderr := run(t, "-workload", "compress", "-instr", "5000",
		"-fault-drop", "0.02", "-fault-retry-timeout", "1000", "-json", path)
	if code != cli.ExitOK {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	var artifact struct {
		Result struct {
			Fault *struct {
				InjectedDrops uint64 `json:"injectedDrops"`
			} `json:"Fault"`
		} `json:"result"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &artifact); err != nil {
		t.Fatal(err)
	}
	if artifact.Result.Fault == nil || artifact.Result.Fault.InjectedDrops == 0 {
		t.Fatalf("artifact lacks fault stats:\n%s", data)
	}

	// Zero-rate: no "Fault" key may appear in the artifact.
	code, _, stderr = run(t, "-workload", "compress", "-instr", "5000", "-json", path)
	if code != cli.ExitOK {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"Fault"`)) {
		t.Fatalf("fault-free artifact mentions faults:\n%s", data)
	}
}
