// Command dssense regenerates the paper's Figure 8: IPC sensitivity of
// the go and compress analogues to cache size, memory access time, bus
// clock, bus width, and RUU entries, for all five systems Figure 7
// compares. -nodes resizes the larger DataScalar/traditional pair and
// -topology swaps the interconnect, so the sweep can be repeated on
// mesh or torus machines.
//
// Usage:
//
//	dssense [-scale N] [-instr N] [-nodes N]
//	        [-topology bus|ring|mesh|torus] [-parallel N]
//
// Exit codes: 0 on success, 1 on errors, 2 on bad usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dssense: ")
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main minus the process boundary, so the CLI tests can run
// the binary in-process and assert on exit codes.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dssense", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "workload scale factor")
	instr := fs.Uint64("instr", 0, "measured instructions per sweep point (0 = default)")
	nodes := fs.Int("nodes", 4, "size of the larger DataScalar/traditional pair (the paper's is 4)")
	topology := fs.String("topology", "bus", "interconnect for every run: bus, ring, mesh, torus")
	parallel := fs.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "dssense: unexpected arguments %q\n", fs.Args())
		return cli.ExitUsage
	}
	if *nodes < 2 {
		fmt.Fprintf(stderr, "dssense: -nodes %d: need at least 2\n", *nodes)
		return cli.ExitUsage
	}
	topo, err := datascalar.ParseTopologyKind(*topology)
	if err != nil {
		fmt.Fprintf(stderr, "dssense: %v\n", err)
		return cli.ExitUsage
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	opts.Topology = topo
	if *instr != 0 {
		opts.SweepInstr = *instr
	}

	res, err := datascalar.Figure8At(ctx, opts, *nodes)
	if err != nil {
		fmt.Fprintf(stderr, "dssense: %v\n", err)
		return cli.ExitCode(err)
	}
	for i, t := range res.Tables() {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		t.Render(stdout)
	}
	return cli.ExitOK
}
