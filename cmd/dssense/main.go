// Command dssense regenerates the paper's Figure 8: IPC sensitivity of
// the go and compress analogues to cache size, memory access time, bus
// clock, bus width, and RUU entries, for all five systems Figure 7
// compares.
//
// Usage:
//
//	dssense [-scale N] [-instr N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dssense: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "measured instructions per sweep point (0 = default)")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	if *instr != 0 {
		opts.SweepInstr = *instr
	}

	res, err := datascalar.Figure8(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	for i, t := range res.Tables() {
		if i > 0 {
			fmt.Println()
		}
		t.Render(os.Stdout)
	}
}
