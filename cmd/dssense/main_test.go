package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/cli"
)

func run(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUsageErrors gates every malformed invocation behind ExitUsage
// before any simulation starts.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := run("-no-such-flag"); code != cli.ExitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", code, cli.ExitUsage)
	}
	if code, _, stderr := run("stray"); code != cli.ExitUsage || !strings.Contains(stderr, "unexpected arguments") {
		t.Fatalf("stray argument: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := run("-topology", "hypercube"); code != cli.ExitUsage || !strings.Contains(stderr, "unknown topology") {
		t.Fatalf("bad topology: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := run("-nodes", "1"); code != cli.ExitUsage || !strings.Contains(stderr, "at least 2") {
		t.Fatalf("bad nodes: exit %d, stderr %q", code, stderr)
	}
}

// TestTinySweep runs a minimal sensitivity sweep on a mesh at a
// non-default size and checks the -nodes/-topology wiring reaches the
// rendered tables.
func TestTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run in -short mode")
	}
	code, stdout, stderr := run("-instr", "1000", "-nodes", "8", "-topology", "mesh")
	if code != cli.ExitOK {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr)
	}
	for _, want := range []string{"Figure 8", "DS 8-node", "trad 1/8"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}
