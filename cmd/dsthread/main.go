// Command dsthread regenerates the paper's Table 2: approximate
// datathread lengths for a four-processor DataScalar system, after
// profiling-driven page replication and round-robin block distribution.
//
// Usage:
//
//	dsthread [-scale N] [-instr N]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsthread: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "max instructions per benchmark (0 = default)")
	parallel := flag.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	if *instr != 0 {
		opts.RefInstr = *instr
	}

	res, err := datascalar.Table2(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Render(os.Stdout)
}
