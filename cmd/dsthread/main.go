// Command dsthread regenerates the paper's Table 2: approximate
// datathread lengths for a four-processor DataScalar system, after
// profiling-driven page replication and round-robin block distribution.
//
// Usage:
//
//	dsthread [-scale N] [-instr N]
package main

import (
	"flag"
	"log"
	"os"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dsthread: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "max instructions per benchmark (0 = default)")
	flag.Parse()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	if *instr != 0 {
		opts.RefInstr = *instr
	}

	res, err := datascalar.Table2(opts)
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Render(os.Stdout)
}
