// Command dstiming regenerates the paper's Figure 7 (IPC of a perfect
// data cache, DataScalar at two and four nodes, and traditional machines
// with one half and one quarter of memory on-chip) and Table 3 (broadcast
// statistics) over the six timing benchmarks.
//
// Usage:
//
//	dstiming [-scale N] [-instr N] [-bshr]
//
// Profiling (see docs/PERFORMANCE.md): -cpuprofile and -memprofile write
// pprof profiles of the run for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	datascalar "github.com/wisc-arch/datascalar"
)

// startProfiles starts CPU profiling and arranges the end-of-run heap
// profile; the returned stop function must run before exit (fatal-error
// paths skip it — a failed run's profile is not useful).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}
	}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dstiming: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "measured instructions per run (0 = default)")
	bshr := flag.Bool("bshr", true, "also print Table 3 (broadcast statistics)")
	cost := flag.Bool("cost", false, "also print the Wood-Hill cost-effectiveness analysis (paper §4.4)")
	jsonOut := flag.String("json", "", "also write results as JSON to this file (\"-\" = stdout)")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProfiles()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	if *instr != 0 {
		opts.TimingInstr = *instr
	}

	f7, err := datascalar.Figure7(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	f7.Table().Render(os.Stdout)
	if *bshr {
		fmt.Println()
		datascalar.Table3(f7).Table().Render(os.Stdout)
	}
	if *cost {
		fmt.Println()
		datascalar.CostEffectiveness(f7).Table().Render(os.Stdout)
	}
	if *jsonOut != "" {
		artifact := map[string]any{"figure7": f7, "table3": datascalar.Table3(f7)}
		if err := writeJSON(*jsonOut, artifact); err != nil {
			log.Fatal(err)
		}
	}
}

func writeJSON(path string, v any) error {
	if path == "-" {
		return datascalar.WriteResultJSON(os.Stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
