// Command dstiming regenerates the paper's Figure 7 (IPC of a perfect
// data cache, DataScalar at two and four nodes, and traditional machines
// with one half and one quarter of memory on-chip) and Table 3 (broadcast
// statistics) over the six timing benchmarks.
//
// Usage:
//
//	dstiming [-scale N] [-instr N] [-topology bus|ring|mesh|torus] [-parallel-nodes N] [-bshr] [-cpi]
//
// Fault injection (see docs/ROBUSTNESS.md): the -fault-* flags apply a
// seeded deterministic fault plan to every DataScalar run of the sweep,
// measuring how the timing results degrade under faults:
//
//	dstiming -fault-drop 0.01 -instr 50000
//
// Exit codes: 0 success; 1 generic failure; 2 usage error; 3 a run hit
// the deadlock watchdog; 4 a run halted with a structured fault report.
//
// Profiling (see docs/PERFORMANCE.md): -cpuprofile and -memprofile write
// pprof profiles of the run for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/cli"
)

// startProfiles starts CPU profiling and arranges the end-of-run heap
// profile; the returned stop function must run before exit (fatal-error
// paths skip it — a failed run's profile is not useful).
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				log.Print(err)
				return
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
			f.Close()
		}
	}, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dstiming: ")
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main minus the process boundary, so the CLI tests can run
// the binary in-process and assert on exit codes.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dstiming", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "workload scale factor")
	instr := fs.Uint64("instr", 0, "measured instructions per run (0 = default)")
	topology := fs.String("topology", "bus", "interconnect for every timing run: bus, ring, mesh, torus")
	bshr := fs.Bool("bshr", true, "also print Table 3 (broadcast statistics)")
	cpi := fs.Bool("cpi", false, "also print per-benchmark CPI-stack tables for the DataScalar runs")
	cost := fs.Bool("cost", false, "also print the Wood-Hill cost-effectiveness analysis (paper §4.4)")
	jsonOut := fs.String("json", "", "also write results as JSON to this file (\"-\" = stdout)")
	parallel := fs.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	parallelNodes := fs.Int("parallel-nodes", 0, "worker goroutines partitioning the nodes inside each DataScalar run (results are bit-identical at any setting; 0 or 1 = serial node loop)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	var faults cli.FaultFlags
	faults.Register(fs)
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "dstiming: unexpected arguments %q\n", fs.Args())
		return cli.ExitUsage
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "dstiming: %v\n", err)
		return cli.ExitCode(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return fail(err)
	}
	defer stopProfiles()

	topo, err := datascalar.ParseTopologyKind(*topology)
	if err != nil {
		fmt.Fprintf(stderr, "dstiming: %v\n", err)
		return cli.ExitUsage
	}

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	opts.ParallelNodes = *parallelNodes
	opts.Fault = faults.Config()
	opts.Topology = topo
	if *instr != 0 {
		opts.TimingInstr = *instr
	}

	f7, err := datascalar.Figure7(ctx, opts)
	if err != nil {
		return fail(err)
	}
	f7.Table().Render(stdout)
	if *bshr {
		fmt.Fprintln(stdout)
		datascalar.Table3(f7).Table().Render(stdout)
	}
	if *cost {
		fmt.Fprintln(stdout)
		datascalar.CostEffectiveness(f7).Table().Render(stdout)
	}
	if *cpi {
		for _, row := range f7.Rows {
			fmt.Fprintln(stdout)
			datascalar.CPIStackTable(fmt.Sprintf("CPI stack: %s DS 2-node", row.Benchmark),
				row.DS2Detail.CPIStacks, row.DS2Detail.Instructions).Render(stdout)
			fmt.Fprintln(stdout)
			datascalar.CPIStackTable(fmt.Sprintf("CPI stack: %s DS 4-node", row.Benchmark),
				row.DS4Detail.CPIStacks, row.DS4Detail.Instructions).Render(stdout)
		}
	}
	if *jsonOut != "" {
		artifact := map[string]any{"figure7": f7, "table3": datascalar.Table3(f7)}
		if err := writeJSON(*jsonOut, stdout, artifact); err != nil {
			return fail(err)
		}
	}
	return cli.ExitOK
}

func writeJSON(path string, stdout io.Writer, v any) error {
	if path == "-" {
		return datascalar.WriteResultJSON(stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
