package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/cli"
)

// The full Figure 7 sweep is too expensive for unit tests; these cover
// only the CLI surface (flag parsing and usage exit codes).
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != cli.ExitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", code, cli.ExitUsage)
	}
	errb.Reset()
	if code := realMain([]string{"stray"}, &out, &errb); code != cli.ExitUsage {
		t.Fatalf("stray argument: exit %d, want %d", code, cli.ExitUsage)
	}
	if !strings.Contains(errb.String(), "unexpected arguments") {
		t.Fatalf("stderr %q lacks usage message", errb.String())
	}
}
