// Command dstrace records a workload's memory reference stream to a
// compact binary trace file, and replays trace files through the paper's
// analyses.
//
// Usage:
//
//	dstrace -record compress -o compress.dstr [-instr N] [-scale N] [-noinstr]
//	dstrace -analyze compress.dstr -mode traffic
//	dstrace -analyze compress.dstr -mode thread -nodes 4
//	dstrace -analyze compress.dstr -mode stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	datascalar "github.com/wisc-arch/datascalar"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/trace"
	"github.com/wisc-arch/datascalar/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dstrace: ")
	record := flag.String("record", "", "workload to record")
	out := flag.String("o", "", "output trace file for -record")
	analyze := flag.String("analyze", "", "trace file to analyze")
	mode := flag.String("mode", "stats", "analysis: traffic, thread, stats")
	nodes := flag.Int("nodes", 4, "node count for -mode thread")
	instr := flag.Uint64("instr", 2_000_000, "max instructions to record")
	scale := flag.Int("scale", 1, "workload scale factor")
	noInstr := flag.Bool("noinstr", false, "omit instruction-fetch references")
	flag.Parse()

	switch {
	case *record != "" && *analyze != "":
		log.Fatal("use either -record or -analyze")
	case *record != "":
		if *out == "" {
			log.Fatal("-record needs -o FILE")
		}
		doRecord(*record, *out, *scale, *instr, !*noInstr)
	case *analyze != "":
		doAnalyze(*analyze, *mode, *nodes)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(name, out string, scale int, instr uint64, includeInstr bool) {
	w, ok := workload.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}
	p, err := w.Program(scale)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := trace.Record(f, p, p.Labels["bench_main"], instr, includeInstr)
	if err != nil {
		log.Fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d references (%.2f bytes/ref) to %s\n",
		n, float64(info.Size())/float64(n), out)
}

func doAnalyze(file, mode string, nodes int) {
	f, err := os.Open(file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}

	switch mode {
	case "traffic":
		a := trace.NewTrafficAnalyzer(trace.DefaultTrafficConfig())
		err := rd.ForEach(func(r trace.Ref) error {
			if r.Instr {
				return nil
			}
			return a.Observe(r)
		})
		if err != nil {
			log.Fatal(err)
		}
		res := a.Finish()
		fmt.Printf("accesses=%d misses=%d writebacks=%d\n", res.Accesses, res.Misses, res.Writebacks)
		fmt.Printf("conventional: %d bytes, %d transactions\n",
			res.ConventionalBytes, res.ConventionalTransactions)
		fmt.Printf("ESP:          %d bytes, %d transactions\n", res.ESPBytes, res.ESPTransactions)
		fmt.Printf("eliminated:   %.0f%% of bytes, %.0f%% of transactions\n",
			res.TrafficEliminated()*100, res.TransactionsEliminated()*100)

	case "thread":
		// Reconstruct a page table covering the trace's footprint.
		pt := mem.NewPageTable(nodes)
		// First pass is impossible on a stream; assign ownership lazily
		// round-robin by page number, the distribution the timing runs
		// use.
		filter := trace.DefaultMissFilter()
		an := trace.NewDatathreadAnalyzer(pt)
		seen := map[uint64]bool{}
		err := rd.ForEach(func(r trace.Ref) error {
			pg := prog.PageOf(r.Addr)
			if !seen[pg] {
				seen[pg] = true
				if prog.SegmentOf(r.Addr) == prog.SegText {
					pt.SetReplicated(pg)
				} else {
					pt.SetOwner(pg, int(pg)%nodes)
				}
			}
			if filter.Observe(r) {
				an.Observe(r.Addr, r.Instr)
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		res := an.Finish()
		fmt.Printf("datathreads: %d, mean length all=%.1f text=%.1f data=%.1f repl=%.1f\n",
			res.Threads, res.AllMean, res.TextMean, res.DataMean, res.ReplMean)

	case "stats":
		var refs, loads, stores, ifetch uint64
		pages := map[uint64]bool{}
		err := rd.ForEach(func(r trace.Ref) error {
			refs++
			pages[prog.PageOf(r.Addr)] = true
			switch {
			case r.Instr:
				ifetch++
			case r.Store:
				stores++
			default:
				loads++
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("references=%d (ifetch=%d loads=%d stores=%d), pages touched=%d (%.0f KB)\n",
			refs, ifetch, loads, stores, len(pages),
			float64(len(pages))*float64(datascalar.PageSize)/1024)

	default:
		log.Fatalf("unknown mode %q", mode)
	}
}
