// Command dstraffic regenerates the paper's Table 1: the fraction of
// off-chip traffic (bytes) and transactions that ESP eliminates for each
// of the fourteen SPEC95-analogue benchmarks.
//
// Usage:
//
//	dstraffic [-scale N] [-instr N] [-detail]
//
// With -nodes set, dstraffic also runs the timing set on a concrete
// DataScalar machine of that size (and -topology) and prints the
// interconnect traffic it measured — the machine-measured counterpart
// of Table 1's analytic accounting:
//
//	dstraffic -nodes 64 -topology torus
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dstraffic: ")
	scale := flag.Int("scale", 1, "workload scale factor")
	instr := flag.Uint64("instr", 0, "max instructions per benchmark (0 = default)")
	detail := flag.Bool("detail", false, "print per-benchmark miss and writeback counts")
	nodes := flag.Int("nodes", 0, "also measure traffic on a DS machine with this many nodes (0 = analytic Table 1 only)")
	topology := flag.String("topology", "bus", "interconnect for the -nodes measurement: bus, ring, mesh, torus")
	jsonOut := flag.String("json", "", "also write the Table 1 result as JSON to this file (\"-\" = stdout)")
	parallel := flag.Int("parallel", 0, "analysis worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	topo, err := datascalar.ParseTopologyKind(*topology)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := datascalar.DefaultExperimentOptions()
	opts.Scale = *scale
	opts.Parallel = *parallel
	if *instr != 0 {
		opts.RefInstr = *instr
	}

	res, err := datascalar.Table1(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Render(os.Stdout)
	if *detail {
		fmt.Println()
		for _, row := range res.Rows {
			d := row.Detail
			fmt.Printf("%-9s accesses=%-9d misses=%-8d writebacks=%-7d conv=%dB/%dtx esp=%dB/%dtx\n",
				row.Benchmark, d.Accesses, d.Misses, d.Writebacks,
				d.ConventionalBytes, d.ConventionalTransactions, d.ESPBytes, d.ESPTransactions)
		}
	}
	var measured *datascalar.MeasuredTrafficResult
	if *nodes != 0 {
		m, err := datascalar.MeasuredTraffic(ctx, opts, *nodes, topo)
		if err != nil {
			log.Fatal(err)
		}
		measured = &m
		fmt.Println()
		m.Table().Render(os.Stdout)
	}
	if *jsonOut != "" {
		artifact := any(res)
		if measured != nil {
			artifact = map[string]any{"table1": res, "measured": measured}
		}
		if err := writeJSON(*jsonOut, artifact); err != nil {
			log.Fatal(err)
		}
	}
}

func writeJSON(path string, v any) error {
	if path == "-" {
		return datascalar.WriteResultJSON(os.Stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := datascalar.WriteResultJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
