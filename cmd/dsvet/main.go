// Command dsvet statically checks the simulator's own Go source for
// violations of the invariants behind its byte-identical-results
// guarantee: map-iteration order leaking into output, wall-clock or
// unseeded randomness in timing paths, allocation-prone constructs in
// //dsvet:hotpath functions, non-exhaustive switches over //dsvet:enum
// taxonomies, concurrency outside the allowlisted files, and
// os.Exit/log.Fatal outside internal/cli. It is the host-side sibling
// of dslint (which checks guest programs); see docs/ANALYSIS.md for the
// diagnostic classes and the //dsvet:ok annotation grammar.
//
// Usage:
//
//	dsvet [-C dir] [-json] [-json-out FILE] [packages ...]
//
// Packages default to ./... under the module root (found by walking up
// from -C, default the working directory). Diagnostics print as
// "file:line:col: msg [class]", sorted by (file, line, col, class) — the
// same stable-output contract as dslint. Exit status is 0 when clean, 1
// when any diagnostic is reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/wisc-arch/datascalar/internal/vet"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable body: it parses args, runs the suite, and
// returns the process exit code (0 clean / 1 findings / 2 usage).
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", "", "directory to locate the module from (default: working directory)")
	jsonOut := fs.Bool("json", false, "emit the combined report as JSON on stdout")
	jsonFile := fs.String("json-out", "", "also write the JSON report to FILE")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	modDir, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintf(stderr, "dsvet: %v\n", err)
		return 2
	}
	loader, err := vet.NewLoader(modDir)
	if err != nil {
		fmt.Fprintf(stderr, "dsvet: %v\n", err)
		return 2
	}
	reports, err := vet.Vet(loader, fs.Args(), vet.DefaultConfig())
	if err != nil {
		fmt.Fprintf(stderr, "dsvet: %v\n", err)
		return 2
	}

	findings := vet.Count(reports)
	if !*jsonOut {
		for _, r := range reports {
			for _, d := range r.Diags {
				fmt.Fprintf(stdout, "%s\n", d)
			}
		}
		fmt.Fprintf(stdout, "dsvet: %d package(s) checked, %d finding(s)\n",
			len(reports), findings)
	}
	blob, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "dsvet: %v\n", err)
		return 2
	}
	if *jsonOut {
		fmt.Fprintf(stdout, "%s\n", blob)
	}
	if *jsonFile != "" {
		if err := os.WriteFile(*jsonFile, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "dsvet: %v\n", err)
			return 2
		}
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
