package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir is the seeded-violation module under internal/vet.
func fixtureDir(t *testing.T) string {
	t.Helper()
	d, err := filepath.Abs(filepath.Join("..", "..", "internal", "vet", "testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func repoRoot(t *testing.T) string {
	t.Helper()
	d, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestExitCleanRepo: the committed tree has zero findings → exit 0.
func TestExitCleanRepo(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-C", repoRoot(t), "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "0 finding(s)") {
		t.Errorf("summary line missing: %q", out.String())
	}
}

// TestExitSeededViolations: the fixture module is riddled with seeded
// violations → exit 1, one line per diagnostic plus the summary.
func TestExitSeededViolations(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-C", fixtureDir(t), "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[exhaustive-switch]") ||
		!strings.Contains(out.String(), "[hotpath-alloc]") {
		t.Errorf("expected diagnostics missing from output:\n%s", out.String())
	}
}

// TestExitUsageErrors: bad flags, missing module, and bad patterns all
// exit 2 — the load-error discipline shared with internal/cli.
func TestExitUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := realMain([]string{"-C", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("no go.mod: exit %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	if code := realMain([]string{"-C", repoRoot(t), "./no/such/pkg"}, &out, &errb); code != 2 {
		t.Errorf("missing package dir: exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// TestJSONOutput: -json emits a machine-readable report array whose
// totals match the text summary, and -json-out writes the same bytes
// to a file (the CI artifact path).
func TestJSONOutput(t *testing.T) {
	artifact := filepath.Join(t.TempDir(), "dsvet.json")
	var out, errb bytes.Buffer
	code := realMain([]string{"-C", fixtureDir(t), "-json", "-json-out", artifact, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var reports []struct {
		Package string `json:"package"`
		Diags   []struct {
			Class string `json:"class"`
			File  string `json:"file"`
			Line  int    `json:"line"`
		} `json:"diags"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 9 {
		t.Errorf("got %d package reports, want 9", len(reports))
	}
	total := 0
	for _, r := range reports {
		if r.Diags == nil {
			t.Errorf("%s: diags marshalled as null, want []", r.Package)
		}
		total += len(r.Diags)
	}
	if total == 0 {
		t.Error("JSON report carries no diagnostics")
	}
	disk, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(disk), bytes.TrimSpace(out.Bytes())) {
		t.Error("-json-out file differs from -json stdout")
	}
}
