// Package datascalar is a library-grade reproduction of "DataScalar
// Architectures" (Burger, Kaxiras, Goodman — ISCA 1997): an execution
// model that runs one sequential program redundantly across several
// processor+memory nodes, broadcasts each owned operand instead of ever
// requesting it (asynchronous ESP), and keeps the nodes' caches
// correspondent by updating tags only at commit.
//
// The package is a stable facade over the internal implementation:
//
//   - Machines: NewMachine (the DataScalar system, the paper's
//     contribution), NewTraditional (the request/response baseline), and
//     RunPerfectCache (the perfect-data-cache bound).
//   - Programs: Assemble compiles the bundled RISC assembly dialect;
//     Workloads exposes the SPEC95-analogue benchmark suite.
//   - Partitioning: Partition distributes a program's pages across nodes
//     (replicated versus communicated, round-robin blocks), the paper's
//     memory model.
//   - Experiments: the sim.* functions re-exported here regenerate every
//     table and figure of the paper's evaluation (see EXPERIMENTS.md).
//
// Quick start (see examples/quickstart for the full program):
//
//	p, _ := datascalar.Assemble("demo", src)
//	pt, _ := datascalar.Partition{NumNodes: 2, ReplicateText: true}.Build(p)
//	m, _ := datascalar.NewMachine(datascalar.DefaultConfig(2), p, pt)
//	res, _ := m.Run()
//	fmt.Println(res.IPC, res.CorrespondenceOK)
package datascalar

import (
	"context"
	"io"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/mmm"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/sim"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/traditional"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// ---------------------------------------------------------------------------
// Programs and workloads.

// Program is an assembled executable image for the bundled ISA.
type Program = prog.Program

// PageSize is the virtual page size (8 KB), the paper's replication and
// distribution granularity.
const PageSize = prog.PageSize

// Assemble compiles the bundled assembly dialect (see internal/asm for
// the syntax) into a runnable program.
func Assemble(name, source string) (*Program, error) {
	return asm.Assemble(name, source)
}

// Workload is one SPEC95-analogue benchmark.
type Workload = workload.Workload

// Workloads returns the full benchmark suite (the fourteen Table 1
// benchmarks plus go).
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks a benchmark up by its SPEC95 name.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// TimingWorkloads returns the six benchmarks of the paper's timing
// studies: applu, compress, go, mgrid, turb3d, wave5.
func TimingWorkloads() []Workload { return workload.TimingSet() }

// Emulator is the functional (architectural) machine; use it to run
// programs without timing simulation.
type Emulator = emu.Machine

// NewEmulator loads a program into a fresh functional machine.
func NewEmulator(p *Program) (*Emulator, error) { return emu.New(p) }

// ---------------------------------------------------------------------------
// Memory partitioning.

// Partition distributes a program's pages across nodes: replicated pages
// live at every node, communicated pages are dealt round-robin in blocks
// and owned by exactly one node.
type Partition = mem.Partition

// PageTable is the resulting ownership map.
type PageTable = mem.PageTable

// ---------------------------------------------------------------------------
// The DataScalar machine (the paper's contribution).

// Config parameterizes a DataScalar machine; DefaultConfig matches the
// paper's simulated implementation.
type Config = core.Config

// Machine is an N-node DataScalar system.
type Machine = core.Machine

// Result summarizes a DataScalar run: cycles, IPC, per-node ESP and BSHR
// statistics, bus traffic, and the cache-correspondence verdict.
type Result = core.Result

// DefaultConfig returns the paper's parameters for an n-node machine:
// 8-way out-of-order cores with 256-entry RUUs, 16 KB direct-mapped
// write-back write-no-allocate L1s updated at commit, 8-cycle on-chip
// memory banks, and an 8-byte global broadcast bus.
func DefaultConfig(n int) Config { return core.DefaultConfig(n) }

// NewMachine builds a DataScalar machine executing p under partition pt.
func NewMachine(cfg Config, p *Program, pt *PageTable) (*Machine, error) {
	return core.NewMachine(cfg, p, pt)
}

// ---------------------------------------------------------------------------
// Baselines.

// TraditionalConfig parameterizes the request/response baseline (one CPU
// chip with 1/N memory on-chip, memory chips behind the bus).
type TraditionalConfig = traditional.Config

// Traditional is the baseline machine.
type Traditional = traditional.Machine

// TraditionalResult summarizes a baseline run.
type TraditionalResult = traditional.Result

// DefaultTraditionalConfig returns the baseline matching DefaultConfig(n).
func DefaultTraditionalConfig(chips int) TraditionalConfig {
	return traditional.DefaultConfig(chips)
}

// NewTraditional builds the baseline machine.
func NewTraditional(cfg TraditionalConfig, p *Program, pt *PageTable) (*Traditional, error) {
	return traditional.NewMachine(cfg, p, pt)
}

// CoreConfig parameterizes the shared out-of-order core.
type CoreConfig = ooo.Config

// DefaultCoreConfig returns the paper's core parameters.
func DefaultCoreConfig() CoreConfig { return ooo.DefaultConfig() }

// RunPerfectCache runs p on the shared core with the paper's perfect
// data cache (single-cycle access to any operand), bounded by maxInstr
// (0 = completion) after fast-forwarding to ffPC (0 = none).
func RunPerfectCache(cfg CoreConfig, p *Program, maxInstr, ffPC uint64) (TraditionalResult, error) {
	return traditional.RunPerfect(cfg, p, maxInstr, ffPC)
}

// ---------------------------------------------------------------------------
// Observability (docs/OBSERVABILITY.md).

// Observer receives protocol events and interval samples from a running
// machine; set it on Config.Observer (DataScalar) or
// TraditionalConfig.Observer. A nil Observer disables observation at
// zero cost, and an attached one never perturbs timing: cycle counts and
// every statistics counter are bit-identical with observation on or off.
type Observer = obs.Observer

// ObsEvent is one timestamped protocol event (broadcast, BSHR, cache,
// correspondence, or interconnect activity).
type ObsEvent = obs.Event

// ObsEventKind identifies an event's place in the taxonomy (see
// docs/OBSERVABILITY.md).
type ObsEventKind = obs.EventKind

// ObsSample is one interval metrics snapshot (IPC, bus utilization,
// broadcast rate, BSHR occupancy, L1 miss rate) for one node; enable
// sampling with Config.SampleInterval.
type ObsSample = obs.Sample

// Trace collects events and samples and writes them as a Chrome
// trace-event file loadable in Perfetto (ui.perfetto.dev).
type Trace = obs.Trace

// NewTrace returns an empty trace sink.
func NewTrace() *Trace { return obs.NewTrace() }

// Metrics collects interval samples and writes them as a JSON time
// series alongside a final counter snapshot.
type Metrics = obs.Metrics

// NewMetrics returns a metrics sink expecting samples every
// intervalCycles cycles.
func NewMetrics(intervalCycles uint64) *Metrics { return obs.NewMetrics(intervalCycles) }

// MultiObserver fans events and samples out to several observers (nils
// are dropped; the result is nil when none remain).
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// StallKind is one leaf cause of the cycle-attribution taxonomy: every
// simulated cycle of every node is charged to exactly one kind (see
// docs/OBSERVABILITY.md).
type StallKind = obs.StallKind

// CPIStack is one node's exhaustive cycle attribution; per-node stacks
// appear on Result.CPIStacks and TraditionalResult.CPIStack, and always
// sum exactly to the run's cycle count.
type CPIStack = obs.CPIStack

// StallKindNames returns the taxonomy names in canonical stack order.
func StallKindNames() []string { return obs.StallKindNames() }

// SumCPIStacks adds per-node stacks into one machine-wide stack.
func SumCPIStacks(stacks []CPIStack) CPIStack { return obs.SumStacks(stacks) }

// CPIStackTable renders per-node CPI stacks as an aligned text table
// (the -cpi output of dsrun and dstiming).
func CPIStackTable(title string, stacks []CPIStack, instructions uint64) *ResultTable {
	return sim.CPITable(title, stacks, instructions)
}

// WriteResultJSON serializes any machine or experiment result as
// indented JSON — the machine-readable counterpart of Result.Report().
func WriteResultJSON(w io.Writer, v any) error { return sim.WriteJSON(w, v) }

// ---------------------------------------------------------------------------
// The synchronous ancestor (Massive Memory Machine).

// MMMConfig parameterizes the lock-step ESP machine of paper Figure 1.
type MMMConfig = mmm.Config

// MMMResult is its simulation outcome.
type MMMResult = mmm.Result

// SimulateMMM runs a word reference string through the synchronous ESP
// Massive Memory Machine.
func SimulateMMM(cfg MMMConfig, refs []uint64, owner map[uint64]int) (MMMResult, error) {
	return mmm.Simulate(cfg, refs, owner)
}

// ---------------------------------------------------------------------------
// Experiments: the paper's tables and figures.

// ExperimentOptions bound experiment cost; the zero value selects the
// standard sizes. Every experiment takes a context for cancellation and
// runs its independent simulations on Parallel workers (default
// GOMAXPROCS); results are assembled in job order, so output is
// bit-identical at any worker count.
type ExperimentOptions = sim.Options

// DefaultExperimentOptions returns the standard experiment sizes.
func DefaultExperimentOptions() ExperimentOptions { return sim.DefaultOptions() }

// Experiment results, one per table/figure in the paper's evaluation.
type (
	Table1Result  = sim.Table1Result
	Table2Result  = sim.Table2Result
	Figure7Result = sim.Figure7Result
	Table3Result  = sim.Table3Result
	Figure8Result = sim.Figure8Result
	Figure3Result = sim.Figure3Result
)

// Table1 measures the off-chip traffic ESP eliminates (paper Table 1).
func Table1(ctx context.Context, opts ExperimentOptions) (Table1Result, error) {
	return sim.Table1(ctx, opts)
}

// Table2 measures datathread lengths on a four-node system (paper
// Table 2).
func Table2(ctx context.Context, opts ExperimentOptions) (Table2Result, error) {
	return sim.Table2(ctx, opts)
}

// Figure7 runs the timing comparison: perfect cache vs DataScalar (2 and
// 4 nodes) vs traditional (1/2 and 1/4 on-chip).
func Figure7(ctx context.Context, opts ExperimentOptions) (Figure7Result, error) {
	return sim.Figure7(ctx, opts)
}

// Table3 derives the broadcast statistics from a Figure7 result.
func Table3(f7 Figure7Result) Table3Result { return sim.Table3(f7) }

// Figure8 runs the sensitivity analysis on go and compress.
func Figure8(ctx context.Context, opts ExperimentOptions) (Figure8Result, error) {
	return sim.Figure8(ctx, opts)
}

// Figure8At runs the sensitivity analysis with the larger DS and
// traditional systems at nodes instead of the paper's four.
func Figure8At(ctx context.Context, opts ExperimentOptions, nodes int) (Figure8Result, error) {
	return sim.Figure8At(ctx, opts, nodes)
}

// ResultTable is a rendered, aligned text table.
type ResultTable = stats.Table

// Figure1 reproduces the MMM timeline example (paper Figure 1).
func Figure1() (MMMResult, *ResultTable, error) { return sim.Figure1() }

// Figure3 reproduces the serialized off-chip crossing comparison for a
// dependent operand chain (paper Figure 3).
func Figure3() (Figure3Result, error) { return sim.Figure3() }

// CountCrossings computes Figure 3's analytic crossing counts for an
// arbitrary chain of operand owners.
func CountCrossings(chainOwners []int, cpuChip int) (ds, trad int) {
	return sim.CountCrossings(chainOwners, cpuChip)
}

// ---------------------------------------------------------------------------
// Ablations: design choices the paper discusses (DESIGN.md §6).

// Ablation results, one per study.
type (
	InterconnectResult = sim.InterconnectResult
	WritePolicyResult  = sim.WritePolicyResult
	SyncESPResult      = sim.SyncESPResult
	ResultCommResult   = sim.ResultCommResult
	LatencyResult      = sim.LatencyResult
)

// AblationInterconnect compares the global bus against a unidirectional
// ring (paper Section 4.4 discusses both).
func AblationInterconnect(ctx context.Context, opts ExperimentOptions) (InterconnectResult, error) {
	return sim.AblationInterconnect(ctx, opts)
}

// AblationWritePolicy measures the ESP traffic saved by the paper's
// write-no-allocate choice.
func AblationWritePolicy(ctx context.Context, opts ExperimentOptions) (WritePolicyResult, error) {
	return sim.AblationWritePolicy(ctx, opts)
}

// AblationSyncESP measures what lock-step (Massive Memory Machine) ESP
// would cost on each timing benchmark's miss stream — the gap
// asynchronous datathreading closes.
func AblationSyncESP(ctx context.Context, opts ExperimentOptions) (SyncESPResult, error) {
	return sim.AblationSyncESP(ctx, opts)
}

// AblationResultComm measures the Section 5.1 result-communication
// optimization on a private block-reduction workload.
func AblationResultComm(ctx context.Context, opts ExperimentOptions) (ResultCommResult, error) {
	return sim.AblationResultComm(ctx, opts)
}

// AblationLatencies sweeps the BSHR and broadcast-queue latencies.
func AblationLatencies(ctx context.Context, opts ExperimentOptions) (LatencyResult, error) {
	return sim.AblationLatencies(ctx, opts)
}

// PlacementResult compares round-robin and profile-guided page placement.
type PlacementResult = sim.PlacementResult

// AblationPlacement measures profile-guided page placement (clustering
// pages that miss consecutively onto one node) against round-robin — the
// software form of the paper's "special support to increase datathread
// length".
func AblationPlacement(ctx context.Context, opts ExperimentOptions) (PlacementResult, error) {
	return sim.AblationPlacement(ctx, opts)
}

// TransitionProfile accumulates page-to-page miss transitions for
// profile-guided placement.
type TransitionProfile = mem.TransitionProfile

// NewTransitionProfile returns an empty transition profile.
func NewTransitionProfile() *TransitionProfile { return mem.NewTransitionProfile() }

// CostResult is the Wood-Hill cost-effectiveness analysis (paper §4.4).
type CostResult = sim.CostResult

// CostEffectiveness derives speedup-versus-costup from a Figure 7 run.
func CostEffectiveness(f7 Figure7Result) CostResult { return sim.CostEffectiveness(f7) }

// Costup computes the Wood-Hill costup of an n-node DataScalar system at
// the given processor share of single-system cost.
func Costup(n int, procFrac float64) float64 { return sim.Costup(n, procFrac) }

// ScalingResult is the node-count scaling extension (2..256 nodes
// across all four topologies, with an analytic owner-compute bound).
type ScalingResult = sim.ScalingResult

// Scaling sweeps node counts beyond the paper's evaluation.
func Scaling(ctx context.Context, opts ExperimentOptions) (ScalingResult, error) {
	return sim.Scaling(ctx, opts)
}

// MeasuredTrafficResult is the measured interconnect traffic of the
// timing benchmarks on a concrete machine size and topology.
type MeasuredTrafficResult = sim.MeasuredTrafficResult

// MeasuredTraffic runs the timing set on a DS machine of the given size
// and topology and reports the traffic the interconnect carried — the
// machine-measured counterpart of Table 1's analytic accounting.
func MeasuredTraffic(ctx context.Context, opts ExperimentOptions, nodes int, topo TopologyKind) (MeasuredTrafficResult, error) {
	return sim.MeasuredTraffic(ctx, opts, nodes, topo)
}

// ReplicationResult sweeps the static replication fraction (paper §3).
type ReplicationResult = sim.ReplicationResult

// AblationReplication measures the broadcast traffic eliminated (and
// capacity paid) as the hottest data pages are statically replicated.
func AblationReplication(ctx context.Context, opts ExperimentOptions) (ReplicationResult, error) {
	return sim.AblationReplication(ctx, opts)
}

// CPIProfileResult is the dsprof artifact: per-(benchmark, system) CPI
// stacks across the five Figure 7 systems.
type CPIProfileResult = sim.CPIProfileResult

// CPIDiffOptions bound what `dsprof -diff` counts as a regression.
type CPIDiffOptions = sim.CPIDiffOptions

// CPIDiffResult is the outcome of comparing two CPI profiles.
type CPIDiffResult = sim.CPIDiffResult

// CPIProfile measures CPI stacks for the named workloads (empty = the
// six timing benchmarks) across the five Figure 7 systems.
func CPIProfile(ctx context.Context, opts ExperimentOptions, workloads []string) (CPIProfileResult, error) {
	return sim.CPIProfile(ctx, opts, workloads)
}

// CompareCPIProfiles diffs two CPI-profile artifacts bucket by bucket;
// the simulator is deterministic, so any difference is a real
// behavioral change.
func CompareCPIProfiles(old, cur CPIProfileResult, o CPIDiffOptions) (CPIDiffResult, error) {
	return sim.CompareCPIProfiles(old, cur, o)
}

// Topology selects and parameterizes the interconnect; set it on
// Config.Topology or TraditionalConfig.Topology.
type Topology = bus.Topology

// TopologyKind enumerates the interconnect families.
type TopologyKind = bus.TopologyKind

// The four interconnects a machine can be built on.
const (
	TopoBus   = bus.TopoBus
	TopoRing  = bus.TopoRing
	TopoMesh  = bus.TopoMesh
	TopoTorus = bus.TopoTorus
)

// DefaultTopology returns the paper's shared-bus interconnect with
// default link parameters for the multi-hop alternatives.
func DefaultTopology() Topology { return bus.DefaultTopology() }

// ParseTopologyKind parses a -topology flag value ("bus", "ring",
// "mesh", "torus").
func ParseTopologyKind(s string) (TopologyKind, error) { return bus.ParseTopologyKind(s) }

// LinkConfig parameterizes the per-link datapath of the multi-hop
// topologies (ring, mesh, torus); set it on Config.Topology.Link.
type LinkConfig = bus.LinkConfig

// RingConfig is the former name of LinkConfig, kept for callers of the
// pre-topology API.
type RingConfig = bus.RingConfig

// DefaultRingConfig returns ring links matching the default bus.
func DefaultRingConfig() RingConfig { return bus.DefaultRingConfig() }

// ---------------------------------------------------------------------------
// Resilience: deterministic fault injection, divergence detection, and
// degraded-mode recovery (docs/ROBUSTNESS.md).

// FaultConfig is the seeded fault plan for a DataScalar machine; set it
// on Config.Fault (or ExperimentOptions.Fault for whole sweeps). The
// zero value builds no fault layer at all — results are byte-identical
// to a machine without the resilience subsystem.
type FaultConfig = fault.Config

// FaultStats counts injections, detections, retries, and recovery
// actions; completed runs carry a snapshot in Result.Fault.
type FaultStats = fault.Stats

// FaultReport is the structured error a machine halts with when it
// detects an unrecoverable fault (a dead owner without recovery enabled,
// or a commit-fingerprint divergence): which node, which fault class, at
// which cycle.
type FaultReport = fault.Report

// FaultClass labels a fault or detection event.
type FaultClass = fault.Class

// The fault classes a plan can inject and a report can name.
const (
	FaultDrop       = fault.ClassDrop
	FaultDelay      = fault.ClassDelay
	FaultFlip       = fault.ClassFlip
	FaultDeath      = fault.ClassDeath
	FaultDivergence = fault.ClassDivergence
	FaultLost       = fault.ClassLost
)

// DeadlockError is the structured watchdog diagnosis: per-node commit
// progress, pending BSHR tags, and interconnect queue depths at the
// moment progress stopped.
type DeadlockError = core.DeadlockError

// FaultScenario is one fault class at one intensity in a campaign grid.
type FaultScenario = sim.FaultScenario

// FaultCampaignConfig bounds a fault-injection campaign.
type FaultCampaignConfig = sim.FaultCampaignConfig

// FaultCampaignResult aggregates a campaign: every run's classified
// outcome plus per-scenario coverage, detection latency, and overhead.
type FaultCampaignResult = sim.FaultCampaignResult

// DefaultFaultScenarios returns the standard campaign grid.
func DefaultFaultScenarios() []FaultScenario { return sim.DefaultFaultScenarios() }

// FaultCampaign sweeps (workload x fault scenario x seed), classifying
// every outcome; campaigns are bit-reproducible at any Parallel setting.
func FaultCampaign(ctx context.Context, opts ExperimentOptions, cc FaultCampaignConfig) (FaultCampaignResult, error) {
	return sim.FaultCampaign(ctx, opts, cc)
}
