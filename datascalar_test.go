package datascalar

import (
	"context"
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as a downstream user
// would, guarding against the facade drifting from the internals.

const facadeKernel = `
        .data
arr:    .space 32768
        .text
        la   r1, arr
        li   r2, 4096
        li   r4, 2
init:   sd   r4, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, init
bench_main:
        la   r1, arr
        li   r2, 4096
        li   r3, 0
sum:    ld   r5, 0(r1)
        add  r3, r3, r5
        sd   r3, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, sum
        halt
`

func TestPublicAPIRoundTrip(t *testing.T) {
	p, err := Assemble("facade", facadeKernel)
	if err != nil {
		t.Fatal(err)
	}

	// Functional execution.
	em, err := NewEmulator(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.Run(0); err != nil {
		t.Fatal(err)
	}
	if !em.Halted() {
		t.Fatal("program did not halt")
	}

	// DataScalar run.
	pt, err := Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.FastForwardPC = p.Labels["bench_main"]
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CorrespondenceOK || res.IPC <= 0 {
		t.Fatalf("result = %+v", res)
	}

	// Baseline run.
	tcfg := DefaultTraditionalConfig(2)
	tcfg.FastForwardPC = p.Labels["bench_main"]
	tm, err := NewTraditional(tcfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.IPC <= 0 {
		t.Fatalf("traditional result = %+v", tr)
	}

	// Perfect bound.
	pf, err := RunPerfectCache(DefaultCoreConfig(), p, 0, p.Labels["bench_main"])
	if err != nil {
		t.Fatal(err)
	}
	if pf.IPC < res.IPC || pf.IPC < tr.IPC {
		t.Fatalf("perfect %.2f below a real system (%0.2f, %0.2f)", pf.IPC, res.IPC, tr.IPC)
	}
}

func TestPublicWorkloadRegistry(t *testing.T) {
	if len(Workloads()) != 15 {
		t.Fatalf("workloads = %d", len(Workloads()))
	}
	if len(TimingWorkloads()) != 6 {
		t.Fatalf("timing workloads = %d", len(TimingWorkloads()))
	}
	w, ok := WorkloadByName("compress")
	if !ok {
		t.Fatal("compress missing")
	}
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Labels["bench_main"]; !ok {
		t.Fatal("bench_main missing")
	}
}

func TestPublicMMM(t *testing.T) {
	res, err := SimulateMMM(MMMConfig{Processors: 2, BroadcastDelay: 2},
		[]uint64{1, 2, 3}, map[uint64]int{1: 0, 2: 1, 3: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeadChanges != 2 {
		t.Fatalf("lead changes = %d", res.LeadChanges)
	}
}

func TestPublicCrossingCounts(t *testing.T) {
	ds, trad := CountCrossings([]int{1, 1, 1, 2}, 0)
	if ds != 2 || trad != 8 {
		t.Fatalf("crossings = %d, %d", ds, trad)
	}
}

func TestPublicTopologyOption(t *testing.T) {
	p, err := Assemble("facade", facadeKernel)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range []TopologyKind{TopoRing, TopoMesh, TopoTorus} {
		cfg := DefaultConfig(2)
		cfg.Topology.Kind = topo
		cfg.FastForwardPC = p.Labels["bench_main"]
		m, err := NewMachine(cfg, p, pt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.CorrespondenceOK {
			t.Fatalf("%s run violated correspondence", topo)
		}
	}
}

func TestPublicFigure1(t *testing.T) {
	res, table, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 13 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	if !strings.Contains(table.String(), "lead change") {
		t.Fatal("table render broken")
	}
}

// TestFacadeExperiments exercises every experiment wrapper end to end at
// reduced sizes, keeping the facade honest.
func TestFacadeExperiments(t *testing.T) {
	opts := ExperimentOptions{
		Scale:       1,
		TimingInstr: 40_000,
		RefInstr:    150_000,
		SweepInstr:  20_000,
	}
	if d := DefaultExperimentOptions(); d.TimingInstr == 0 {
		t.Fatal("default options empty")
	}

	t1, err := Table1(context.Background(), opts)
	if err != nil || len(t1.Rows) != 14 {
		t.Fatalf("Table1: %v (%d rows)", err, len(t1.Rows))
	}
	t2, err := Table2(context.Background(), opts)
	if err != nil || len(t2.Rows) != 14 {
		t.Fatalf("Table2: %v (%d rows)", err, len(t2.Rows))
	}
	f7, err := Figure7(context.Background(), opts)
	if err != nil || len(f7.Rows) != 6 {
		t.Fatalf("Figure7: %v (%d rows)", err, len(f7.Rows))
	}
	if t3 := Table3(f7); len(t3.Rows) != 6 {
		t.Fatalf("Table3 rows = %d", len(t3.Rows))
	}
	if c := CostEffectiveness(f7); len(c.Rows) != 12 {
		t.Fatalf("CostEffectiveness rows = %d", len(c.Rows))
	}
	if Costup(4, 0.25) != 1.75 {
		t.Fatal("Costup wrong")
	}
	f3, err := Figure3()
	if err != nil || f3.DSCrossings != 2 || f3.TradCrossings != 8 {
		t.Fatalf("Figure3: %v %+v", err, f3)
	}
}

// TestFacadeAblations exercises the ablation wrappers at reduced sizes.
func TestFacadeAblations(t *testing.T) {
	opts := ExperimentOptions{
		Scale:       1,
		TimingInstr: 40_000,
		RefInstr:    150_000,
		SweepInstr:  20_000,
	}
	if r, err := AblationInterconnect(context.Background(), opts); err != nil || len(r.Rows) == 0 {
		t.Fatalf("interconnect: %v", err)
	}
	if r, err := AblationWritePolicy(context.Background(), opts); err != nil || len(r.Rows) == 0 {
		t.Fatalf("writepolicy: %v", err)
	}
	if r, err := AblationSyncESP(context.Background(), opts); err != nil || len(r.Rows) == 0 {
		t.Fatalf("syncesp: %v", err)
	}
	if r, err := AblationResultComm(context.Background(), opts); err != nil || len(r.Rows) == 0 {
		t.Fatalf("resultcomm: %v", err)
	}
	if r, err := AblationLatencies(context.Background(), opts); err != nil || len(r.Rows) == 0 {
		t.Fatalf("latencies: %v", err)
	}
	if r, err := AblationPlacement(context.Background(), opts); err != nil || len(r.Rows) == 0 {
		t.Fatalf("placement: %v", err)
	}
	if NewTransitionProfile() == nil {
		t.Fatal("transition profile constructor")
	}
}

// TestFacadeFigure8 exercises the sensitivity sweep wrapper with a tiny
// budget (it is the most expensive experiment).
func TestFacadeFigure8(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := ExperimentOptions{SweepInstr: 15_000, TimingInstr: 15_000, RefInstr: 50_000, Scale: 1}
	r, err := Figure8(context.Background(), opts)
	if err != nil || len(r.Series) != 10 {
		t.Fatalf("Figure8: %v (%d series)", err, len(r.Series))
	}
}
