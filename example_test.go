package datascalar_test

import (
	"fmt"
	"log"

	datascalar "github.com/wisc-arch/datascalar"
)

// Assemble a program, run it functionally, and read a register back.
func ExampleAssemble() {
	p, err := datascalar.Assemble("sum", `
        .text
        li   r1, 10
        li   r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, zero, loop
        halt
`)
	if err != nil {
		log.Fatal(err)
	}
	m, err := datascalar.NewEmulator(p)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Reg(2))
	// Output: 55
}

// Build a two-node DataScalar machine and verify the properties ESP
// guarantees: no requests, no write traffic, correspondent caches.
func ExampleNewMachine() {
	p, err := datascalar.Assemble("demo", `
        .data
arr:    .space 32768
        .text
        la   r1, arr
        li   r2, 4096
loop:   ld   r3, 0(r1)
        addi r3, r3, 1
        sd   r3, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        halt
`)
	if err != nil {
		log.Fatal(err)
	}
	pt, err := datascalar.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	m, err := datascalar.NewMachine(datascalar.DefaultConfig(2), p, pt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correspondence:", res.CorrespondenceOK)
	fmt.Println("requests on the bus:", res.BusStats.ByKindMsgs[1].Value())
	fmt.Println("responses on the bus:", res.BusStats.ByKindMsgs[2].Value())
	// Output:
	// correspondence: true
	// requests on the bus: 0
	// responses on the bus: 0
}

// The synchronous ancestor: Figure 1's lock-step ESP timeline.
func ExampleSimulateMMM() {
	refs := []uint64{1, 2, 3, 4, 5}
	owner := map[uint64]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 0}
	res, err := datascalar.SimulateMMM(datascalar.MMMConfig{Processors: 2, BroadcastDelay: 2}, refs, owner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycles:", res.Cycles)
	fmt.Println("lead changes:", res.LeadChanges)
	// Output:
	// cycles: 9
	// lead changes: 2
}

// Figure 3's analytic comparison: serialized off-chip crossings for a
// dependent operand chain.
func ExampleCountCrossings() {
	ds, trad := datascalar.CountCrossings([]int{1, 1, 1, 2}, 0)
	fmt.Println("DataScalar:", ds)
	fmt.Println("Traditional:", trad)
	// Output:
	// DataScalar: 2
	// Traditional: 8
}
