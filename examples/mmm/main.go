// MMM reproduces the paper's Figure 1: the synchronous ESP Massive
// Memory Machine (the DataScalar ancestor) broadcasting a word reference
// string in lock-step, stalling at every lead change — and shows how the
// penalty scales with ownership fragmentation, the problem DataScalar's
// asynchronous ESP and concurrent datathreads attack.
//
//	go run ./examples/mmm
package main

import (
	"fmt"
	"log"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)

	// The exact Figure 1 example.
	_, table, err := datascalar.Figure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table.String())

	// Sweep ownership block size for a long reference string: smaller
	// blocks mean more lead changes and a larger slowdown over the
	// one-word-per-cycle ideal.
	fmt.Println("\nLead-change cost vs ownership block size (1024 sequential words, 4 machines):")
	refs := make([]uint64, 1024)
	for i := range refs {
		refs[i] = uint64(i)
	}
	cfg := datascalar.MMMConfig{Processors: 4, BroadcastDelay: 2}
	for _, block := range []uint64{1, 4, 16, 64, 256} {
		owner := make(map[uint64]int, len(refs))
		for w := range refs {
			owner[uint64(w)] = int(uint64(w)/block) % cfg.Processors
		}
		res, err := datascalar.SimulateMMM(cfg, refs, owner)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  block %4d words: %4d cycles (%.2fx ideal), %3d lead changes, mean datathread %.1f\n",
			block, res.Cycles, res.Slowdown(), res.LeadChanges, res.MeanDatathreadLength())
	}
}
