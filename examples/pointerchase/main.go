// Pointerchase demonstrates datathreading (paper Figure 3): a dependent
// chain of operands where three live on one node and the fourth on
// another. DataScalar resolves the co-located operands locally and
// pipelines their broadcasts, paying two serialized off-chip crossings
// where a traditional system pays a request/response pair per operand —
// eight.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"log"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)

	// The analytic counts for the paper's example chain: x1..x3 owned by
	// chip 1, x4 by chip 2, with the traditional CPU on chip 0.
	ds, trad := datascalar.CountCrossings([]int{1, 1, 1, 2}, 0)
	fmt.Printf("chain x1..x3 on one node, x4 on another:\n")
	fmt.Printf("  DataScalar serialized off-chip crossings:  %d\n", ds)
	fmt.Printf("  Traditional serialized off-chip crossings: %d\n\n", trad)

	// Worst case: ownership alternates on every dependent operand, so
	// every access migrates the datathread.
	ds, trad = datascalar.CountCrossings([]int{1, 2, 1, 2}, 0)
	fmt.Printf("alternating ownership (no datathreads):\n")
	fmt.Printf("  DataScalar: %d, Traditional: %d\n\n", ds, trad)

	// Now measure it on the timing models.
	res, err := datascalar.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table().String())
	fmt.Printf("\nDataScalar finishes each chain lap %.2fx faster.\n",
		res.TradCyclesPerLap/res.DSCyclesPerLap)
}
