// Quickstart: assemble a small program, distribute its memory across two
// DataScalar nodes, run it, and compare against the traditional baseline
// and the perfect-cache bound.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	datascalar "github.com/wisc-arch/datascalar"
)

// A read-modify-write kernel: initialize a 64 KB array, then sum it while
// doubling each element in place. The array spans eight pages, so a
// two-node run distributes it round-robin: every other page's lines
// arrive by broadcast, and — the headline ESP effect — none of the
// stores or writebacks ever touch the bus.
const source = `
        .data
arr:    .space 65536
        .text
        la   r1, arr
        li   r2, 8192
        li   r4, 3
init:   sd   r4, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, init
bench_main:
        la   r1, arr
        li   r2, 8192
        li   r3, 0
sum:    ld   r5, 0(r1)
        add  r3, r3, r5
        slli r6, r5, 1
        sd   r6, 0(r1)           # in-place update: write traffic for the
        addi r1, r1, 8           # baseline, free under ESP
        addi r2, r2, -1
        bne  r2, zero, sum
        halt
`

func main() {
	log.SetFlags(0)

	p, err := datascalar.Assemble("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}
	ff := p.Labels["bench_main"]

	// Functional check first: the sum must be 3 * 8192.
	emu, err := datascalar.NewEmulator(p)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := emu.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional result: r3 = %d (want %d)\n\n", emu.Reg(3), 3*8192)

	// DataScalar, two nodes: pages dealt round-robin, text replicated.
	pt, err := datascalar.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := datascalar.DefaultConfig(2)
	cfg.FastForwardPC = ff
	m, err := datascalar.NewMachine(cfg, p, pt)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DataScalar (2 nodes):   IPC %.2f over %d cycles, correspondence ok=%v\n",
		ds.IPC, ds.Cycles, ds.CorrespondenceOK)
	fmt.Printf("  ESP traffic: %d broadcasts, 0 requests, 0 write transfers\n",
		ds.BusStats.Messages.Value())

	// Traditional baseline: half the memory on-chip, half across the bus.
	tcfg := datascalar.DefaultTraditionalConfig(2)
	tcfg.FastForwardPC = ff
	tm, err := datascalar.NewTraditional(tcfg, p, pt)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := tm.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Traditional (1/2 chip): IPC %.2f over %d cycles\n", tr.IPC, tr.Cycles)
	fmt.Printf("  request/response traffic: %d messages\n", tr.BusStats.Messages.Value())

	// Perfect data cache: the upper bound.
	perfect, err := datascalar.RunPerfectCache(datascalar.DefaultCoreConfig(), p, 0, ff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Perfect data cache:     IPC %.2f over %d cycles\n", perfect.IPC, perfect.Cycles)
}
