// Resultcomm demonstrates the paper's Section 5.1 optimization: a
// processor can "temporarily deviate from the ESP model and execute a
// private computation, broadcasting only the result — not the operands".
//
// The kernel reduces sixteen 8 KB blocks. Inside a privb/prive region,
// the node owning the block's pages computes its sum with uncached local
// accesses and no broadcasts; every other node skips the region and
// picks the per-block results up through ordinary ESP when a final
// shared pass reads them.
//
//	go run ./examples/resultcomm
package main

import (
	"fmt"
	"log"

	datascalar "github.com/wisc-arch/datascalar"
)

const source = `
        .data
blocks: .space 131072            # 16 blocks of 8 KB, round-robin distributed
        .space 288
sums:   .space 1024              # per-block results (shared)
        .text
        la   r1, blocks
        li   r2, 16384
        li   r3, 1
init:   sd   r3, 0(r1)
        addi r3, r3, 1
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, init
bench_main:
        la   r10, blocks
        la   r11, sums
        li   r12, 16
blk:    privb 0(r10)             # region owner = owner of this block
        li   r2, 1024
        li   r3, 0
        mov  r1, r10
red:    ld   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, red
        sd   r3, 0(r11)          # the region's result
        prive
        addi r10, r10, 8192
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, blk
        la   r11, sums           # shared pass: ordinary ESP
        li   r12, 16
        li   r20, 0
tot:    ld   r4, 0(r11)
        add  r20, r20, r4
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, tot
        halt
`

func main() {
	log.SetFlags(0)

	p, err := datascalar.Assemble("resultcomm", source)
	if err != nil {
		log.Fatal(err)
	}
	pt, err := datascalar.Partition{NumNodes: 4, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		log.Fatal(err)
	}

	runWith := func(enable bool) datascalar.Result {
		cfg := datascalar.DefaultConfig(4)
		cfg.FastForwardPC = p.Labels["bench_main"]
		cfg.ResultComm = enable
		m, err := datascalar.NewMachine(cfg, p, pt)
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		if !r.CorrespondenceOK {
			log.Fatal("cache correspondence violated")
		}
		return r
	}

	off := runWith(false)
	on := runWith(true)

	fmt.Println("block reduction over 16 distributed blocks, 4 nodes:")
	fmt.Printf("\n  plain ESP:            %7d cycles, IPC %.2f, %5d broadcasts\n",
		off.Cycles, off.IPC, off.BusStats.Messages.Value())
	fmt.Printf("  result communication: %7d cycles, IPC %.2f, %5d broadcasts\n",
		on.Cycles, on.IPC, on.BusStats.Messages.Value())
	var skipped uint64
	for _, ns := range on.Nodes {
		skipped += ns.SkippedInstr.Value()
	}
	fmt.Printf("\n  %.1fx faster; each node skipped ~%d remote-region instructions;\n",
		float64(off.Cycles)/float64(on.Cycles), skipped/4)
	fmt.Println("  only the 16 result lines ever crossed the interconnect.")
}
