// Trafficstudy walks one benchmark's memory reference stream through the
// paper's Table 1 analysis, showing exactly which traffic classes ESP
// eliminates: every request (loads become one-way broadcasts) and every
// write and writeback (stores complete at the owning node).
//
//	go run ./examples/trafficstudy [workload]
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	datascalar "github.com/wisc-arch/datascalar"
)

func main() {
	log.SetFlags(0)

	name := "compress"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := datascalar.WorkloadByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}

	opts := datascalar.DefaultExperimentOptions()
	res, err := datascalar.Table1(context.Background(), opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, row := range res.Rows {
		if row.Benchmark != w.Name {
			continue
		}
		d := row.Detail
		fmt.Printf("%s — %s\n\n", w.Name, w.Regime)
		fmt.Printf("data accesses:            %d\n", d.Accesses)
		fmt.Printf("L1 misses:                %d\n", d.Misses)
		fmt.Printf("writebacks:               %d\n\n", d.Writebacks)
		fmt.Printf("conventional off-chip traffic: %8d bytes in %d transactions\n",
			d.ConventionalBytes, d.ConventionalTransactions)
		fmt.Printf("  requests:   %d x %d bytes\n", d.Misses, 8)
		fmt.Printf("  responses:  %d x %d bytes\n", d.Misses, 8+32)
		fmt.Printf("  writebacks: %d x %d bytes\n", d.Writebacks, 8+32)
		fmt.Printf("ESP off-chip traffic:          %8d bytes in %d transactions\n",
			d.ESPBytes, d.ESPTransactions)
		fmt.Printf("  broadcasts: %d x %d bytes (requests and writes never leave the chip)\n\n",
			d.Misses, 8+32)
		fmt.Printf("eliminated: %.0f%% of bytes, %.0f%% of transactions\n",
			row.TrafficEliminated*100, row.TransactionsEliminated*100)
		return
	}
	log.Fatalf("workload %q is not part of the Table 1 suite", name)
}
