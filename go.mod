module github.com/wisc-arch/datascalar

go 1.22
