package analysis

import (
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Static page affinity: the profile-free input to placement. The
// interval analysis recovers which pages each load/store can touch;
// consecutive accesses then vote for their page pairs to live on the
// same DataScalar node, weighted by loop depth (an access in a loop
// nest runs ~10^depth times as often as straight-line code). The result
// feeds mem.PlaceStaticAffinity, giving the paper's "special support to
// increase datathread length" without running the program first.

// PageAffinity is a statically-estimated page-reference graph.
type PageAffinity struct {
	// Touches maps page number (prog.PageOf) -> estimated reference
	// weight.
	Touches map[uint64]uint64
	// Edges maps normalized (low, high) page-number pairs -> estimated
	// consecutive-reference weight.
	Edges map[[2]uint64]uint64
}

// maxAffinityFan bounds how many pages one access may vote for. An
// access whose interval spans more pages (typically a widened pointer
// the analysis could not pin down) contributes touches but no edges —
// spreading a vote over hundreds of pages is noise.
const maxAffinityFan = 64

// maxAffinityDepth caps the loop-depth exponent so weights stay well
// inside uint64.
const maxAffinityDepth = 6

// pow10 returns 10^min(d, maxAffinityDepth).
func pow10(d int) uint64 {
	if d > maxAffinityDepth {
		d = maxAffinityDepth
	}
	w := uint64(1)
	for i := 0; i < d; i++ {
		w *= 10
	}
	return w
}

// objectRegions returns the label-delimited object extents of the data
// segment plus the heap and stack reservation, sorted by base. The
// analysis has no branch refinement, so a pointer marched through a loop
// widens to an unbounded interval — but its *base* stays precise, and
// the symbol table says how big the object at that base is. Affinity
// therefore resolves each access to the object containing its lower
// bound rather than to the (useless) widened interval.
func objectRegions(p *prog.Program) []addrSpan {
	var cuts []uint64
	for _, addr := range p.Labels {
		if addr >= prog.DataBase && addr < p.DataEnd() {
			cuts = append(cuts, addr)
		}
	}
	cuts = append(cuts, prog.DataBase, p.DataEnd())
	sortUint64s(cuts)
	var out []addrSpan
	for i := 0; i+1 < len(cuts); i++ {
		if cuts[i] < cuts[i+1] {
			out = append(out, addrSpan{cuts[i], cuts[i+1]})
		}
	}
	if p.HeapBytes > 0 {
		out = append(out, addrSpan{prog.HeapBase, prog.HeapBase + p.HeapBytes})
	}
	out = append(out, addrSpan{stackReserveBase(p), prog.StackTop})
	return out
}

func sortUint64s(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// accessPages resolves one access to the page run of the object its
// base address lands in. ok is false when the base is unknown, outside
// every object, or the object is too large to vote with.
func accessPages(ea value, regions []addrSpan) (pages []uint64, ok bool) {
	if ea.k != vRange || ea.lo < 0 {
		return nil, false
	}
	base := uint64(ea.lo)
	for _, reg := range regions {
		if base < reg.lo || base >= reg.hi {
			continue
		}
		for pg := prog.PageOf(reg.lo); pg <= prog.PageOf(reg.hi-1); pg++ {
			pages = append(pages, pg)
			if len(pages) > maxAffinityFan {
				return nil, false
			}
		}
		return pages, true
	}
	return nil, false
}

// ComputePageAffinity runs the interval analysis over p and returns the
// estimated page-reference graph. Accesses vote for edges between
// consecutive references — within a block, and from a block's last
// access to each successor's first — with weight 10^loopDepth split
// across the page-pair candidates.
func ComputePageAffinity(p *prog.Program) *PageAffinity {
	c := BuildCFG(p)
	states := constprop(c)
	regions := objectRegions(p)
	aff := &PageAffinity{
		Touches: make(map[uint64]uint64),
		Edges:   make(map[[2]uint64]uint64),
	}

	bump := func(a, b, w uint64) {
		if a == b {
			return
		}
		key := [2]uint64{a, b}
		if a > b {
			key = [2]uint64{b, a}
		}
		aff.Edges[key] += w
	}
	// addEdge votes for page pairs touched by two consecutive accesses.
	// Two accesses resolving to equally-sized page runs are assumed to
	// march in lockstep (u[i] and v[i] share the induction variable), so
	// they vote pairwise at aligned positions with full weight — that is
	// the correlation that makes datathreads long. Differently-sized runs
	// (a scalar against an array, say) fall back to a diluted cross
	// product; votes that dilute to zero are noise and are dropped.
	addEdge := func(from, to []uint64, w uint64) {
		if len(from) == 0 || len(to) == 0 {
			return
		}
		if len(from) == len(to) {
			for i := range from {
				bump(from[i], to[i], w)
			}
			return
		}
		share := w / uint64(len(from)*len(to))
		if share == 0 {
			return
		}
		for _, a := range from {
			for _, b := range to {
				bump(a, b, share)
			}
		}
	}

	// seqDiscount is the sequential-walk prior: an access in a loop
	// marches through its object, so consecutive pages of that object
	// follow each other — but only once per page's worth of references
	// (~PageSize/lineSize misses). These edges are deliberately much
	// weaker than lockstep edges: stripes across objects merge first,
	// then consecutive stripes coalesce until cluster capacity is hit.
	const seqDiscount = 128

	// first/last hold each block's first and last resolvable access, for
	// cross-block edges.
	first := make([][]uint64, len(c.Blocks))
	last := make([][]uint64, len(c.Blocks))
	for _, b := range c.Blocks {
		if !b.Reachable {
			continue
		}
		w := pow10(b.LoopDepth)
		st := states[b.ID]
		var prev []uint64
		for i := b.Start; i < b.End; i++ {
			in := p.Text[i]
			if in.Op.IsMem() {
				ea := addV(st.get(in.Rs1), vconst(in.Imm))
				if pages, ok := accessPages(ea, regions); ok {
					share := w / uint64(len(pages))
					if share == 0 {
						share = 1
					}
					for _, pg := range pages {
						aff.Touches[pg] += share
					}
					if b.LoopDepth > 0 {
						seq := w / seqDiscount
						if seq == 0 {
							seq = 1
						}
						for j := 0; j+1 < len(pages); j++ {
							bump(pages[j], pages[j+1], seq)
						}
					}
					addEdge(prev, pages, w)
					if first[b.ID] == nil {
						first[b.ID] = pages
					}
					prev = pages
				}
			}
			cpTransfer(p, i, &st)
		}
		last[b.ID] = prev
	}

	// Cross-block: the last access before an edge flows into the first
	// access after it. Weight by the shallower side: a loop exit edge
	// runs once per loop, not once per iteration.
	for _, b := range c.Blocks {
		if !b.Reachable || len(last[b.ID]) == 0 {
			continue
		}
		for _, s := range b.Succs {
			sb := c.Blocks[s]
			if !sb.Reachable || len(first[s]) == 0 {
				continue
			}
			d := b.LoopDepth
			if sb.LoopDepth < d {
				d = sb.LoopDepth
			}
			addEdge(last[b.ID], first[s], pow10(d))
		}
	}
	return aff
}
