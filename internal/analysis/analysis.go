// Package analysis is a static-analysis framework over decoded guest
// programs (prog.Program). It builds a basic-block control-flow graph
// with an inferred call graph, runs classic dataflow passes over it —
// liveness, possibly-uninitialized registers, and constant/interval
// propagation — and emits typed diagnostics for the defect classes that
// actually bite when writing kernels by hand: reads of never-written
// registers, unreachable code, branch targets outside .text, statically
// out-of-segment or misaligned memory accesses, dead register writes,
// falling off the end of .text, and broken JAL/RA call discipline.
//
// The same machinery powers a profile-free placement policy: constant
// propagation recovers which pages each load/store can touch, and
// PageAffinity turns that into the page-transition graph that
// mem.PlaceStaticAffinity clusters across DataScalar nodes (the paper's
// "special support to increase datathread length", provided statically).
//
// Everything here is best-effort and sound in the lint direction:
// malformed programs never make Analyze fail — they make it report.
package analysis

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/prog"
)

// Class identifies a diagnostic class. The set is closed and documented
// in docs/ANALYSIS.md; dslint golden tests cover one program per class.
type Class string

// Diagnostic classes.
const (
	// ClassUninitRead: a register is read on some path before any write
	// to it. The emulator zeroes registers, so the read is deterministic
	// — and almost always a typo'd register number or a missing init.
	ClassUninitRead Class = "uninit-read"
	// ClassUnreachable: a block can never execute.
	ClassUnreachable Class = "unreachable"
	// ClassBadTarget: a branch or jump target lies outside .text or in
	// the middle of an instruction.
	ClassBadTarget Class = "bad-target"
	// ClassOutOfSegment: a memory access with a statically-known address
	// falls outside the program's declared footprint (or writes .text).
	ClassOutOfSegment Class = "out-of-segment"
	// ClassMisaligned: a memory access with a statically-known address
	// is not aligned to its access width (the emulator faults on these).
	ClassMisaligned Class = "misaligned"
	// ClassDeadStore: a register write that no path ever reads, or a
	// write to the hardwired-zero register.
	ClassDeadStore Class = "dead-store"
	// ClassMissingHalt: control can fall off the end of .text.
	ClassMissingHalt Class = "missing-halt"
	// ClassCallDiscipline: JAL/RA discipline violations — returning
	// through a clobbered ra, or indirect transfers the analysis cannot
	// follow.
	ClassCallDiscipline Class = "call-discipline"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities, in increasing order.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// MarshalJSON renders severities as their names.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Severity returns the default severity of a diagnostic class. Errors
// are defects that change or crash execution; warnings are code that
// executes fine but cannot mean what it says (or that the analysis
// cannot follow).
func (c Class) Severity() Severity {
	switch c {
	case ClassUninitRead, ClassBadTarget, ClassOutOfSegment, ClassMisaligned, ClassMissingHalt:
		return Error
	case ClassUnreachable, ClassDeadStore, ClassCallDiscipline:
		return Warning
	}
	return Warning
}

// Diagnostic is one finding, anchored to an instruction.
type Diagnostic struct {
	Class    Class    `json:"class"`
	Severity Severity `json:"severity"`
	// Index is the instruction index in Text; PC its address.
	Index int    `json:"index"`
	PC    uint64 `json:"pc"`
	// Line is the 1-based source line when the program carries line
	// information (assembled with internal/asm), 0 otherwise.
	Line int    `json:"line,omitempty"`
	Msg  string `json:"msg"`
}

// String renders "name:line: severity: msg [class]", falling back to the
// PC when no source line is known.
func (d Diagnostic) String() string {
	pos := fmt.Sprintf("0x%x", d.PC)
	if d.Line > 0 {
		pos = fmt.Sprintf("%d", d.Line)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Msg, d.Class)
}

// Report is the result of analyzing one program.
type Report struct {
	Program string       `json:"program"`
	Diags   []Diagnostic `json:"diags"`
	// Blocks and Funcs summarize the CFG the diagnostics came from.
	Blocks int `json:"blocks"`
	Funcs  int `json:"funcs"`
}

// Count returns how many diagnostics have severity at least s.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity >= s {
			n++
		}
	}
	return n
}

// ByClass returns the diagnostics of one class, in program order.
func (r *Report) ByClass(c Class) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Class == c {
			out = append(out, d)
		}
	}
	return out
}

// Analyze runs every analyzer over p and returns the combined report,
// sorted by instruction index. It never fails: a malformed program
// yields diagnostics, not errors.
func Analyze(p *prog.Program) *Report {
	c := BuildCFG(p)
	r := &Report{Program: p.Name, Blocks: len(c.Blocks), Funcs: len(c.Funcs)}
	r.Diags = append(r.Diags, c.diags...)
	if len(c.Blocks) == 0 {
		return r // empty .text: nothing to analyze
	}
	r.Diags = append(r.Diags, checkUnreachable(c)...)
	r.Diags = append(r.Diags, checkUninit(c)...)
	r.Diags = append(r.Diags, checkDeadStores(c)...)
	r.Diags = append(r.Diags, checkCallDiscipline(c)...)
	r.Diags = append(r.Diags, checkMemory(c, constprop(c))...)
	sort.SliceStable(r.Diags, func(i, j int) bool {
		if r.Diags[i].Index != r.Diags[j].Index {
			return r.Diags[i].Index < r.Diags[j].Index
		}
		return r.Diags[i].Class < r.Diags[j].Class
	})
	return r
}
