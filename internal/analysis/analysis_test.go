package analysis

import (
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// analyze assembles src and runs every pass over it.
func analyze(t *testing.T, src string) *Report {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Analyze(p)
}

// wantClass asserts the report contains at least one diagnostic of class
// c whose message contains frag, and returns the first one.
func wantClass(t *testing.T, r *Report, c Class, frag string) Diagnostic {
	t.Helper()
	ds := r.ByClass(c)
	if len(ds) == 0 {
		t.Fatalf("no %s diagnostic; got %v", c, r.Diags)
	}
	for _, d := range ds {
		if strings.Contains(d.Msg, frag) {
			return d
		}
	}
	t.Fatalf("no %s diagnostic mentioning %q; got %v", c, frag, ds)
	return Diagnostic{}
}

// One crafted bad program per diagnostic class. Each exercises exactly
// the defect under test; line numbers are asserted so dslint's file:line
// output stays trustworthy.

func TestGoldenUninitRead(t *testing.T) {
	r := analyze(t, `
        .text
        add  r1, r2, r3
        halt
`)
	d := wantClass(t, r, ClassUninitRead, "r2")
	if d.Severity != Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	if d.Line != 3 {
		t.Errorf("line = %d, want 3", d.Line)
	}
	wantClass(t, r, ClassUninitRead, "r3")
}

func TestGoldenUninitReadPathSensitive(t *testing.T) {
	// r1 is written on only one arm of the diamond: a may-uninit read.
	r := analyze(t, `
        .text
        li   r2, 1
        beq  r2, zero, skip
        li   r1, 7
skip:   add  r3, r1, r2
        sd   r3, 0(r2)
        halt
`)
	wantClass(t, r, ClassUninitRead, "r1")
}

func TestGoldenUnreachable(t *testing.T) {
	r := analyze(t, `
        .text
        li   r1, 1
        b    done
        li   r2, 2
        li   r3, 3
done:   halt
`)
	d := wantClass(t, r, ClassUnreachable, "2 instructions")
	if d.Line != 5 {
		t.Errorf("line = %d, want 5", d.Line)
	}
}

func TestGoldenBadTarget(t *testing.T) {
	// The assembler refuses unresolved labels, so a bad target needs a
	// hand-built program: a jump into the middle of an instruction.
	p := &prog.Program{
		Name: "bad-target",
		Text: []isa.Instr{
			{Op: isa.OpJ, Target: prog.TextBase + isa.InstrBytes/2},
			{Op: isa.OpHALT},
		},
	}
	r := Analyze(p)
	d := wantClass(t, r, ClassBadTarget, "outside .text or mid-instruction")
	if d.Severity != Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	// The dropped edge leaves the halt unreachable — also reported.
	wantClass(t, r, ClassUnreachable, "unreachable")
}

func TestGoldenOutOfSegment(t *testing.T) {
	r := analyze(t, `
        .data
x:      .space 64
        .text
        li   r1, 0x50000000
        ld   r2, 0(r1)
        sd   r2, 0(r1)
        halt
`)
	ds := r.ByClass(ClassOutOfSegment)
	if len(ds) != 2 {
		t.Fatalf("got %d out-of-segment diags, want 2: %v", len(ds), ds)
	}
	wantClass(t, r, ClassOutOfSegment, "outside the program's declared footprint")
}

func TestGoldenStoreIntoText(t *testing.T) {
	r := analyze(t, `
        .text
entry:  la   r1, entry
        sd   r2, 0(r1)
        halt
`)
	wantClass(t, r, ClassOutOfSegment, "store into .text")
}

func TestGoldenOutOfSegmentInterval(t *testing.T) {
	// A loop marches r1 from an out-of-segment base; the whole interval
	// stays outside the footprint, so even the widened range is flagged.
	r := analyze(t, `
        .text
        li   r1, 0x40000000
        li   r2, 8
loop:   ld   r3, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        halt
`)
	wantClass(t, r, ClassOutOfSegment, "outside the program's declared footprint")
}

func TestGoldenMisaligned(t *testing.T) {
	r := analyze(t, `
        .data
x:      .space 64
        .text
        la   r1, x
        ld   r2, 4(r1)
        halt
`)
	d := wantClass(t, r, ClassMisaligned, "8-byte access")
	if d.Severity != Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
}

func TestGoldenDeadStore(t *testing.T) {
	r := analyze(t, `
        .data
x:      .space 8
        .text
        la   r1, x
        li   r2, 5
        li   r2, 6
        sd   r2, 0(r1)
        halt
`)
	d := wantClass(t, r, ClassDeadStore, "never read")
	if d.Line != 6 {
		t.Errorf("line = %d, want 6 (the first li r2)", d.Line)
	}
}

func TestGoldenDeadStoreZeroReg(t *testing.T) {
	r := analyze(t, `
        .text
        li   r1, 1
        add  zero, r1, r1
        halt
`)
	wantClass(t, r, ClassDeadStore, "hardwired-zero")
}

func TestGoldenMissingHalt(t *testing.T) {
	r := analyze(t, `
        .text
        li   r1, 1
        addi r1, r1, 1
`)
	d := wantClass(t, r, ClassMissingHalt, "falls off the end")
	if d.Severity != Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
}

func TestGoldenCallDiscipline(t *testing.T) {
	// f calls g without saving ra, then returns: the jr in f can only
	// return through g's return address — an infinite loop at runtime.
	r := analyze(t, `
        .text
        jal  f
        halt
f:      jal  g
        jr   ra
g:      li   r9, 1
        jr   ra
`)
	d := wantClass(t, r, ClassCallDiscipline, "jal g")
	if d.Line != 6 {
		t.Errorf("line = %d, want 6 (f's jr ra)", d.Line)
	}
	// g itself returns correctly: no diagnostic on line 8.
	for _, x := range r.ByClass(ClassCallDiscipline) {
		if x.Line == 8 {
			t.Errorf("false positive on g's own return: %v", x)
		}
	}
}

func TestCallDisciplineCleanNesting(t *testing.T) {
	// Proper save/restore around the nested call: no diagnostics. The
	// analysis treats a restored ra as trusted (raUnknown).
	r := analyze(t, `
        .data
save:   .space 8
        .text
        jal  f
        halt
f:      la   r1, save
        sd   ra, 0(r1)
        jal  g
        la   r1, save
        ld   ra, 0(r1)
        jr   ra
g:      li   r9, 2
        jr   ra
`)
	if ds := r.ByClass(ClassCallDiscipline); len(ds) != 0 {
		t.Errorf("unexpected call-discipline diags: %v", ds)
	}
}

func TestCFGFunctionsAndLoops(t *testing.T) {
	src := `
        .text
        li   r1, 4
        li   r2, 0
loop:   addi r2, r2, 1
        jal  f
        addi r1, r1, -1
        bne  r1, zero, loop
        halt
f:      li   r9, 1
        jr   ra
`
	p, err := asm.Assemble("cfgtest", src)
	if err != nil {
		t.Fatal(err)
	}
	c := BuildCFG(p)
	if len(c.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2 (entry + f)", len(c.Funcs))
	}
	var f *Func
	for _, fn := range c.Funcs {
		if fn.Name == "f" {
			f = fn
		}
	}
	if f == nil {
		t.Fatalf("no function named f: %+v", c.Funcs)
	}
	if len(f.CallSites) != 1 {
		t.Errorf("f call sites = %v, want one", f.CallSites)
	}
	// The loop body (including the called function's blocks, which run
	// inside the loop) must have depth >= 1; the entry must not.
	if c.Blocks[c.EntryBlock].LoopDepth != 0 {
		t.Errorf("entry loop depth = %d, want 0", c.Blocks[c.EntryBlock].LoopDepth)
	}
	loopIdx, err := p.PCToIndex(p.Labels["loop"])
	if err != nil {
		t.Fatal(err)
	}
	if d := c.BlockOf(loopIdx).LoopDepth; d != 1 {
		t.Errorf("loop body depth = %d, want 1", d)
	}
}

// TestKernelsAnalyzeClean is the clean-run gate: every bundled kernel
// must produce zero diagnostics. A finding here is either a real kernel
// defect (fix the kernel) or an analyzer false positive (fix the
// analyzer) — never something to suppress.
func TestKernelsAnalyzeClean(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			r := Analyze(p)
			for _, d := range r.Diags {
				t.Errorf("%s.s:%s", w.Name, d)
			}
		})
	}
}

func TestAnalyzeEmptyProgram(t *testing.T) {
	r := Analyze(&prog.Program{Name: "empty"})
	if len(r.Diags) != 0 {
		t.Fatalf("empty program diags: %v", r.Diags)
	}
}

func TestPageAffinityLockstep(t *testing.T) {
	// Two arrays of 3 pages each, walked in lockstep. The affinity graph
	// must pair aligned pages (a_i with b_i) more heavily than anything
	// else, and the sequential prior must connect consecutive pages
	// within each array more weakly.
	src := `
        .data
a:      .space 24576
b:      .space 24576
        .text
        la   r1, a
        la   r2, b
        li   r3, 3072
loop:   ld   r4, 0(r1)
        sd   r4, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, -1
        bne  r3, zero, loop
        halt
`
	p, err := asm.Assemble("lockstep", src)
	if err != nil {
		t.Fatal(err)
	}
	aff := ComputePageAffinity(p)
	aPage := prog.PageOf(p.Labels["a"])
	bPage := prog.PageOf(p.Labels["b"])
	for i := uint64(0); i < 3; i++ {
		aligned := aff.Edges[[2]uint64{aPage + i, bPage + i}]
		if aligned == 0 {
			t.Fatalf("no aligned edge for page pair %d: %v", i, aff.Edges)
		}
		if i+1 < 3 {
			seq := aff.Edges[[2]uint64{aPage + i, aPage + i + 1}]
			if seq == 0 {
				t.Errorf("no sequential edge within array a at page %d", i)
			}
			if seq >= aligned {
				t.Errorf("sequential edge (%d) not weaker than aligned edge (%d)", seq, aligned)
			}
		}
	}
	if aff.Touches[aPage] == 0 || aff.Touches[bPage] == 0 {
		t.Errorf("missing touches: %v", aff.Touches)
	}
}
