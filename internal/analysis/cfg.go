package analysis

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Block is one basic block: a maximal straight-line run of instructions
// entered only at Start and left only at End-1.
type Block struct {
	ID         int
	Start, End int   // instruction index range [Start, End)
	Succs      []int // successor block IDs (interprocedural: calls + returns)
	Preds      []int // predecessor block IDs
	// Reachable reports whether the block can execute, starting from the
	// program entry and following calls and returns.
	Reachable bool
	// LoopDepth is the natural-loop nesting depth (0 = not in a loop).
	LoopDepth int
	// Funcs lists the IDs of every function whose body contains this
	// block (normally one; shared tails can belong to several).
	Funcs []int
}

// Func is one inferred function: the program entry, or any JAL target.
type Func struct {
	ID    int
	Entry int    // entry block ID
	Name  string // best-matching text label, or "entry"
	// CallSites are the instruction indices of JALs targeting Entry.
	CallSites []int
	// Blocks is the body: blocks reachable from Entry stepping over calls
	// (a call continues at its fall-through) and stopping at `jr ra`.
	Blocks []int
}

// CFG is the control-flow graph of a program, including the inferred
// call graph. Construction never fails: malformed control flow (targets
// outside .text, mid-instruction targets, indirect jumps) is recorded as
// diagnostics and the offending edges are dropped.
type CFG struct {
	Prog   *prog.Program
	Blocks []*Block
	Funcs  []*Func
	// EntryBlock is the block executing first.
	EntryBlock int

	blockOf []int // instruction index -> block ID
	diags   []Diagnostic
}

// BlockOf returns the block containing instruction index i.
func (c *CFG) BlockOf(i int) *Block { return c.Blocks[c.blockOf[i]] }

// target resolves instruction i's control target to an instruction
// index, recording a diagnostic when it is malformed.
func (c *CFG) resolveTarget(i int, in isa.Instr) (int, bool) {
	t, err := c.Prog.PCToIndex(in.Target)
	if err != nil {
		c.diags = append(c.diags, c.diag(ClassBadTarget, i,
			"%s target 0x%x is outside .text or mid-instruction", in.Op, in.Target))
		return 0, false
	}
	return t, true
}

func (c *CFG) diag(cl Class, idx int, format string, args ...any) Diagnostic {
	return Diagnostic{
		Class:    cl,
		Severity: cl.Severity(),
		Index:    idx,
		PC:       prog.IndexToPC(idx),
		Line:     c.Prog.LineOf(idx),
		Msg:      fmt.Sprintf(format, args...),
	}
}

// branchOutcome classifies a conditional branch whose outcome is known
// statically because it compares a register against itself (the `b`
// pseudo-instruction assembles to `beq zero, zero`).
// Returns (alwaysTaken, neverTaken).
func branchOutcome(in isa.Instr) (always, never bool) {
	if in.Rs1 != in.Rs2 {
		return false, false
	}
	switch in.Op {
	case isa.OpBEQ, isa.OpBGE, isa.OpBGEU:
		return true, false
	case isa.OpBNE, isa.OpBLT, isa.OpBLTU:
		return false, true
	}
	return false, false
}

// BuildCFG constructs the CFG, call graph, reachability, and loop depths
// for p. Structural diagnostics (bad targets, unanalyzable indirect
// jumps, missing halt) accumulate in the returned graph.
func BuildCFG(p *prog.Program) *CFG {
	c := &CFG{Prog: p}
	n := len(p.Text)
	if n == 0 {
		return c
	}

	entryIdx := 0
	if idx, err := p.PCToIndex(p.EntryPC()); err == nil {
		entryIdx = idx
	} else {
		c.diags = append(c.diags, c.diag(ClassBadTarget, 0,
			"entry point 0x%x is outside .text; analyzing from the first instruction", p.EntryPC()))
	}

	// Pass 1: leaders.
	leader := make([]bool, n)
	leader[0] = true
	leader[entryIdx] = true
	for i, in := range p.Text {
		if !in.Op.IsControl() {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		switch in.Op.Format() {
		case isa.FmtBranch, isa.FmtJump:
			if t, err := p.PCToIndex(in.Target); err == nil {
				leader[t] = true
			}
		}
	}

	// Pass 2: blocks.
	c.blockOf = make([]int, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := &Block{ID: len(c.Blocks), Start: i, End: j}
		for k := i; k < j; k++ {
			c.blockOf[k] = b.ID
		}
		c.Blocks = append(c.Blocks, b)
		i = j
	}
	c.EntryBlock = c.blockOf[entryIdx]

	// Pass 3: edges. Calls (JAL) get an edge into the callee; the edge
	// back to the call's fall-through is added with the return edges
	// below, so a callee that never returns leaves the continuation
	// unreachable, as it should.
	addEdge := func(from, to int) {
		for _, s := range c.Blocks[from].Succs {
			if s == to {
				return
			}
		}
		c.Blocks[from].Succs = append(c.Blocks[from].Succs, to)
		c.Blocks[to].Preds = append(c.Blocks[to].Preds, from)
	}
	// callFall[b] is the fall-through block of a block ending in a call.
	callFall := make(map[int]int)
	for _, b := range c.Blocks {
		last := b.End - 1
		in := p.Text[last]
		fallthru := func() {
			if b.End < n {
				addEdge(b.ID, c.blockOf[b.End])
			} else if in.Op.FallsThrough() {
				c.diags = append(c.diags, c.diag(ClassMissingHalt, last,
					"control falls off the end of .text; add a halt or an explicit jump"))
			}
		}
		switch in.Op.Format() {
		case isa.FmtBranch:
			always, never := branchOutcome(in)
			if !never {
				if t, ok := c.resolveTarget(last, in); ok {
					addEdge(b.ID, c.blockOf[t])
				}
			}
			if !always {
				fallthru()
			}
		case isa.FmtJump:
			t, ok := c.resolveTarget(last, in)
			switch {
			case in.Op == isa.OpJAL:
				if ok {
					addEdge(b.ID, c.blockOf[t])
					if b.End < n {
						callFall[b.ID] = c.blockOf[b.End]
					} else {
						c.diags = append(c.diags, c.diag(ClassMissingHalt, last,
							"call at the end of .text has no instruction to return to"))
					}
				} else {
					fallthru() // keep analyzing past the broken call
				}
			case ok:
				addEdge(b.ID, c.blockOf[t])
			}
		case isa.FmtJReg:
			switch {
			case in.Op == isa.OpJALR:
				c.diags = append(c.diags, c.diag(ClassCallDiscipline, last,
					"jalr: indirect call target is not statically analyzable; assuming it returns"))
				fallthru()
				if b.End < n {
					callFall[b.ID] = c.blockOf[b.End]
				}
			case in.Rs1 != isa.RegRA:
				c.diags = append(c.diags, c.diag(ClassCallDiscipline, last,
					"jr r%d: indirect jump through a register other than ra is not statically analyzable", in.Rs1))
			}
			// jr ra: return edges added after function discovery.
		default:
			if in.Op == isa.OpHALT {
				break
			}
			fallthru()
		}
	}

	// Pass 4: function discovery. Entries: the program entry plus every
	// JAL target. Bodies: blocks reachable from the entry, stepping over
	// calls (continue at the fall-through) and stopping at `jr ra`.
	callSites := make(map[int][]int) // entry block -> JAL instruction indices
	for i, in := range p.Text {
		if in.Op == isa.OpJAL {
			if t, err := p.PCToIndex(in.Target); err == nil {
				eb := c.blockOf[t]
				callSites[eb] = append(callSites[eb], i)
			}
		}
	}
	entryBlocks := []int{c.EntryBlock}
	for eb := range callSites {
		if eb != c.EntryBlock {
			entryBlocks = append(entryBlocks, eb)
		}
	}
	sort.Ints(entryBlocks[1:])
	for _, eb := range entryBlocks {
		f := &Func{ID: len(c.Funcs), Entry: eb, Name: c.labelFor(eb), CallSites: callSites[eb]}
		sort.Ints(f.CallSites)
		seen := map[int]bool{eb: true}
		work := []int{eb}
		for len(work) > 0 {
			bid := work[len(work)-1]
			work = work[:len(work)-1]
			f.Blocks = append(f.Blocks, bid)
			b := c.Blocks[bid]
			b.Funcs = append(b.Funcs, f.ID)
			var next []int
			if b.endsWithCall(p) {
				if ft, ok := callFall[bid]; ok && ft >= 0 {
					next = []int{ft}
				}
			} else if !b.endsWithReturn(p) {
				next = b.Succs
			}
			for _, s := range next {
				if !seen[s] {
					seen[s] = true
					work = append(work, s)
				}
			}
		}
		sort.Ints(f.Blocks)
		c.Funcs = append(c.Funcs, f)
	}

	// Pass 5: return edges. A `jr ra` in function f may return to the
	// fall-through of any call site of f.
	for _, b := range c.Blocks {
		if !b.endsWithReturn(p) {
			continue
		}
		for _, fid := range b.Funcs {
			for _, cs := range c.Funcs[fid].CallSites {
				if cs+1 < n {
					addEdge(b.ID, c.blockOf[cs+1])
				}
			}
		}
	}

	// Pass 6: reachability from the entry over the full edge set.
	work := []int{c.EntryBlock}
	c.Blocks[c.EntryBlock].Reachable = true
	for len(work) > 0 {
		bid := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range c.Blocks[bid].Succs {
			if !c.Blocks[s].Reachable {
				c.Blocks[s].Reachable = true
				work = append(work, s)
			}
		}
	}

	c.computeLoopDepths()
	return c
}

// endsWithCall reports whether the block's terminator is a call.
func (b *Block) endsWithCall(p *prog.Program) bool {
	return p.Text[b.End-1].Op.IsCall()
}

// endsWithReturn reports whether the block ends with `jr ra`.
func (b *Block) endsWithReturn(p *prog.Program) bool {
	in := p.Text[b.End-1]
	return in.Op == isa.OpJR && in.Rs1 == isa.RegRA
}

// labelFor returns a text label pointing at block eb's first instruction.
func (c *CFG) labelFor(eb int) string {
	pc := prog.IndexToPC(c.Blocks[eb].Start)
	best := ""
	for name, addr := range c.Prog.Labels {
		if addr == pc && (best == "" || name < best) {
			best = name
		}
	}
	if best == "" {
		if eb == c.EntryBlock {
			return "entry"
		}
		return fmt.Sprintf("fn@0x%x", pc)
	}
	return best
}

// computeLoopDepths finds natural loops (back edges to a dominator) on
// the reachable subgraph and records each block's nesting depth.
func (c *CFG) computeLoopDepths() {
	nb := len(c.Blocks)
	if nb == 0 {
		return
	}
	// Iterative dominator computation (simple dataflow formulation; the
	// graphs here are tiny). dom[b] is a bitset of b's dominators.
	full := newBitset(nb)
	for i := 0; i < nb; i++ {
		full.set(i)
	}
	dom := make([]bitset, nb)
	for i := range dom {
		if i == c.EntryBlock {
			dom[i] = newBitset(nb)
			dom[i].set(i)
		} else {
			dom[i] = full.clone()
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			if !b.Reachable || b.ID == c.EntryBlock {
				continue
			}
			nd := full.clone()
			any := false
			for _, p := range b.Preds {
				if c.Blocks[p].Reachable {
					nd.intersect(dom[p])
					any = true
				}
			}
			if !any {
				nd = newBitset(nb)
			}
			nd.set(b.ID)
			if !nd.equal(dom[b.ID]) {
				dom[b.ID] = nd
				changed = true
			}
		}
	}

	// Back edge u -> v with v ∈ dom(u): natural loop is v plus all
	// blocks that reach u without passing through v.
	type loop struct {
		header int
		body   map[int]bool
	}
	loops := map[int]*loop{} // header -> merged loop body
	for _, u := range c.Blocks {
		if !u.Reachable {
			continue
		}
		for _, v := range u.Succs {
			if !dom[u.ID].has(v) {
				continue
			}
			l := loops[v]
			if l == nil {
				l = &loop{header: v, body: map[int]bool{v: true}}
				loops[v] = l
			}
			// Walk backwards from u.
			stack := []int{u.ID}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.body[x] {
					continue
				}
				l.body[x] = true
				for _, p := range c.Blocks[x].Preds {
					if c.Blocks[p].Reachable {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, l := range loops {
		for bid := range l.body {
			c.Blocks[bid].LoopDepth++
		}
	}
}

// bitset is a simple variable-width bitset used by the dominator pass.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (s bitset) set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s bitset) has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }

func (s bitset) clone() bitset {
	out := make(bitset, len(s))
	copy(out, s)
	return out
}

func (s bitset) intersect(o bitset) {
	for i := range s {
		s[i] &= o[i]
	}
}

func (s bitset) equal(o bitset) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}
