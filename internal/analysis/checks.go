package analysis

import (
	"sort"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// checkUnreachable reports maximal runs of unreachable blocks, one
// diagnostic per run.
func checkUnreachable(c *CFG) []Diagnostic {
	var out []Diagnostic
	for i := 0; i < len(c.Blocks); {
		if c.Blocks[i].Reachable {
			i++
			continue
		}
		j := i
		for j+1 < len(c.Blocks) && !c.Blocks[j+1].Reachable {
			j++
		}
		n := c.Blocks[j].End - c.Blocks[i].Start
		if n == 1 {
			out = append(out, c.diag(ClassUnreachable, c.Blocks[i].Start,
				"unreachable instruction"))
		} else {
			out = append(out, c.diag(ClassUnreachable, c.Blocks[i].Start,
				"unreachable code (%d instructions)", n))
		}
		i = j + 1
	}
	return out
}

// checkUninit reports reads of registers that may never have been
// written on some path from the entry.
func checkUninit(c *CFG) []Diagnostic {
	states := maybeUninit(c)
	var out []Diagnostic
	var scratch []isa.RegRef
	for _, b := range c.Blocks {
		if !b.Reachable {
			continue
		}
		st := states[b.ID]
		for i := b.Start; i < b.End; i++ {
			in := c.Prog.Text[i]
			scratch = in.SrcRegs(scratch[:0])
			for _, s := range scratch {
				if !s.FP && s.Num == isa.RegZero {
					continue
				}
				if st.has(s) {
					out = append(out, c.diag(ClassUninitRead, i,
						"%s may be read before any write reaches this point", s))
				}
			}
			if d, ok := in.DstReg(); ok {
				st = st.without(d)
			}
		}
	}
	return out
}

// checkDeadStores reports register writes no path ever reads, plus
// writes to the hardwired-zero register.
func checkDeadStores(c *CFG) []Diagnostic {
	_, liveOut := liveness(c)
	var out []Diagnostic
	var scratch []isa.RegRef
	for _, b := range c.Blocks {
		if !b.Reachable {
			continue
		}
		live := liveOut[b.ID]
		for i := b.End - 1; i >= b.Start; i-- {
			in := c.Prog.Text[i]
			if d, ok := in.DstReg(); ok {
				if !live.has(d) && !in.Op.IsCall() {
					verb := "computed into"
					if in.Op.IsLoad() {
						verb = "loaded into"
					}
					out = append(out, c.diag(ClassDeadStore, i,
						"value %s %s is never read (dead store)", verb, d))
				}
				live = live.without(d)
			} else if raw, isW := in.DstRegRaw(); isW && !raw.FP && raw.Num == isa.RegZero {
				out = append(out, c.diag(ClassDeadStore, i,
					"write to hardwired-zero register r0 is discarded"))
			}
			scratch = in.SrcRegs(scratch[:0])
			for _, s := range scratch {
				if !s.FP && s.Num == isa.RegZero {
					continue
				}
				live = live.with(s)
			}
		}
	}
	// Report in program order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Index < out[j-1].Index; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// raProvenance tokens: call-site instruction indices, or one of the two
// sentinels below.
const (
	raFromEntry = -1 // the loader's initial (never-written) ra
	raUnknown   = -2 // written by a non-call instruction (restore, li, ...)
)

// checkCallDiscipline verifies JAL/RA discipline: every `jr ra` must
// return through a return address written by a call to a function that
// actually contains the jr. A nested, unsaved `jal` inside a function
// body trips this — the inner call's return address reaches the outer
// return.
func checkCallDiscipline(c *CFG) []Diagnostic {
	nb := len(c.Blocks)
	in := make([]map[int]bool, nb)
	for i := range in {
		in[i] = map[int]bool{}
	}
	in[c.EntryBlock][raFromEntry] = true

	// raOut computes the block's outgoing provenance set from ins.
	writesRA := func(i int) (tok int, writes bool) {
		inst := c.Prog.Text[i]
		d, ok := inst.DstRegRaw()
		if !ok || d.FP || d.Num != isa.RegRA {
			return 0, false
		}
		if inst.Op == isa.OpJAL {
			return i, true
		}
		return raUnknown, true
	}
	blockOut := func(bid int) map[int]bool {
		st := in[bid]
		for i := c.Blocks[bid].Start; i < c.Blocks[bid].End; i++ {
			if tok, w := writesRA(i); w {
				st = map[int]bool{tok: true}
			}
		}
		return st
	}
	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			if !b.Reachable {
				continue
			}
			out := blockOut(b.ID)
			for _, s := range b.Succs {
				for tok := range out {
					if !in[s][tok] {
						in[s][tok] = true
						changed = true
					}
				}
			}
		}
	}

	funcByEntry := map[int]int{}
	for _, f := range c.Funcs {
		funcByEntry[f.Entry] = f.ID
	}
	var out []Diagnostic
	for _, b := range c.Blocks {
		if !b.Reachable || !b.endsWithReturn(c.Prog) {
			continue
		}
		// Provenance at the terminator: apply in-block ra writes.
		st := in[b.ID]
		for i := b.Start; i < b.End-1; i++ {
			if tok, w := writesRA(i); w {
				st = map[int]bool{tok: true}
			}
		}
		// Walk the provenance tokens in sorted order: several writers can
		// reach one terminator, and the diagnostics they produce share an
		// instruction index, so iteration order would otherwise leak into
		// dslint's output.
		toks := make([]int, 0, len(st))
		for tok := range st {
			toks = append(toks, tok)
		}
		sort.Ints(toks)
		for _, tok := range toks {
			if tok < 0 {
				continue // entry-ra is the uninit check's job; unknown is trusted
			}
			tgt, err := c.Prog.PCToIndex(c.Prog.Text[tok].Target)
			if err != nil {
				continue
			}
			fid, ok := funcByEntry[c.blockOf[tgt]]
			if !ok {
				continue
			}
			inFunc := false
			for _, f := range b.Funcs {
				if f == fid {
					inFunc = true
					break
				}
			}
			if !inFunc {
				out = append(out, c.diag(ClassCallDiscipline, b.End-1,
					"jr ra may return through the address written by `jal %s` (line %d); save and restore ra around nested calls",
					c.Funcs[fid].Name, c.Prog.LineOf(tok)))
			}
		}
	}
	return out
}

// addrSpan is a half-open address range.
type addrSpan struct{ lo, hi uint64 }

// footprint returns the page-rounded address ranges the program may
// legally touch, mirroring prog.Pages.
func footprint(p *prog.Program) []addrSpan {
	var out []addrSpan
	add := func(base, length uint64) {
		if length == 0 {
			return
		}
		out = append(out, addrSpan{prog.PageBase(base), prog.PageBase(base+length-1) + prog.PageSize})
	}
	add(prog.TextBase, uint64(len(p.Text))*isa.InstrBytes)
	add(prog.DataBase, uint64(len(p.Data)))
	add(prog.HeapBase, p.HeapBytes)
	add(stackReserveBase(p), prog.StackTop-stackReserveBase(p))
	return out
}

func spansContain(spans []addrSpan, lo, hi uint64) bool {
	for _, s := range spans {
		if lo >= s.lo && hi <= s.hi {
			return true
		}
	}
	return false
}

func spansOverlap(spans []addrSpan, lo, hi uint64) bool {
	for _, s := range spans {
		if lo < s.hi && hi > s.lo {
			return true
		}
	}
	return false
}

// checkMemory verifies statically-resolvable memory accesses: inside the
// declared footprint, not writing .text, and aligned to the access
// width.
func checkMemory(c *CFG, states []cpState) []Diagnostic {
	spans := footprint(c.Prog)
	textEnd := c.Prog.TextEnd()
	var out []Diagnostic
	for _, b := range c.Blocks {
		if !b.Reachable {
			continue
		}
		st := states[b.ID]
		for i := b.Start; i < b.End; i++ {
			in := c.Prog.Text[i]
			if in.Op.IsMem() || in.Op == isa.OpPRIVB {
				width := uint64(in.Op.MemBytes())
				if width == 0 {
					width = 1 // PRIVB names an address, not a sized access
				}
				ea := addV(st.get(in.Rs1), vconst(in.Imm))
				switch {
				case ea.isConst():
					a := uint64(ea.lo)
					if !spansContain(spans, a, a+width) {
						out = append(out, c.diag(ClassOutOfSegment, i,
							"access to 0x%x is outside the program's declared footprint", a))
					} else if a >= prog.TextBase && a < textEnd {
						if in.Op.IsStore() {
							out = append(out, c.diag(ClassOutOfSegment, i,
								"store into .text at 0x%x", a))
						} else {
							out = append(out, c.diag(ClassOutOfSegment, i,
								"load from .text at 0x%x (instruction memory holds no data)", a))
						}
					}
					if w := uint64(in.Op.MemBytes()); w > 1 && a%w != 0 {
						out = append(out, c.diag(ClassMisaligned, i,
							"%d-byte access to 0x%x is misaligned (the emulator faults here)", w, a))
					}
				case ea.k == vRange:
					switch {
					case ea.hi < 0:
						out = append(out, c.diag(ClassOutOfSegment, i,
							"access address is always negative ([%d, %d])", ea.lo, ea.hi))
					case ea.lo >= 0:
						lo, hi := uint64(ea.lo), uint64(ea.hi)
						if hi > ^uint64(0)-width {
							hi = ^uint64(0)
						} else {
							hi += width
						}
						if !spansOverlap(spans, lo, hi) {
							out = append(out, c.diag(ClassOutOfSegment, i,
								"access range [0x%x, 0x%x) lies entirely outside the program's declared footprint",
								lo, hi))
						}
					}
				}
			}
			cpTransfer(c.Prog, i, &st)
		}
	}
	return out
}
