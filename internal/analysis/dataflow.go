package analysis

import (
	"math"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// regSet is a bitset over the combined register space (isa.RegRef.Index:
// int registers 0-31, FP registers 32-63).
type regSet uint64

func (s regSet) has(r isa.RegRef) bool       { return s&(1<<r.Index()) != 0 }
func (s regSet) with(r isa.RegRef) regSet    { return s | 1<<r.Index() }
func (s regSet) without(r isa.RegRef) regSet { return s &^ (1 << r.Index()) }

// liveness computes per-block live-in/live-out register sets over the
// interprocedural CFG (backward may-analysis). The hardwired zero
// register is never live.
func liveness(c *CFG) (liveIn, liveOut []regSet) {
	nb := len(c.Blocks)
	liveIn = make([]regSet, nb)
	liveOut = make([]regSet, nb)
	use := make([]regSet, nb)
	def := make([]regSet, nb)
	var scratch []isa.RegRef
	for _, b := range c.Blocks {
		for i := b.End - 1; i >= b.Start; i-- {
			in := c.Prog.Text[i]
			if d, ok := in.DstReg(); ok {
				def[b.ID] = def[b.ID].with(d)
				use[b.ID] = use[b.ID].without(d)
			}
			scratch = in.SrcRegs(scratch[:0])
			for _, s := range scratch {
				if !s.FP && s.Num == isa.RegZero {
					continue
				}
				use[b.ID] = use[b.ID].with(s)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for bid := nb - 1; bid >= 0; bid-- {
			b := c.Blocks[bid]
			var out regSet
			for _, s := range b.Succs {
				out |= liveIn[s]
			}
			in := use[bid] | (out &^ def[bid])
			if out != liveOut[bid] || in != liveIn[bid] {
				liveOut[bid], liveIn[bid] = out, in
				changed = true
			}
		}
	}
	return liveIn, liveOut
}

// initializedAtEntry is the register set the loader defines before the
// first instruction runs: the hardwired zero, the stack pointer, and the
// global pointer (emu.New sets all three; every other register merely
// happens to be zero).
func initializedAtEntry() regSet {
	var s regSet
	s = s.with(isa.IntReg(isa.RegZero))
	s = s.with(isa.IntReg(isa.RegSP))
	s = s.with(isa.IntReg(isa.RegGP))
	return s
}

// maybeUninit computes, per block, the set of registers that may still
// be unwritten when the block is entered (forward may-analysis, join =
// union), considering only reachable blocks.
func maybeUninit(c *CFG) []regSet {
	nb := len(c.Blocks)
	const allRegs = ^regSet(0)
	// Start at bottom (empty = "everything written") everywhere except
	// the entry and grow to the least fixpoint, so only registers that
	// are genuinely unwritten along some real path survive.
	in := make([]regSet, nb)
	entryState := allRegs &^ initializedAtEntry()
	in[c.EntryBlock] = entryState
	// Transfer: a block removes every register it writes.
	kill := make([]regSet, nb)
	for _, b := range c.Blocks {
		for i := b.Start; i < b.End; i++ {
			if d, ok := c.Prog.Text[i].DstReg(); ok {
				kill[b.ID] = kill[b.ID].with(d)
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range c.Blocks {
			if !b.Reachable {
				continue
			}
			st := regSet(0)
			if b.ID == c.EntryBlock {
				st = entryState
			}
			for _, p := range b.Preds {
				if c.Blocks[p].Reachable {
					st |= in[p] &^ kill[p]
				}
			}
			if st != in[b.ID] {
				in[b.ID] = st
				changed = true
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Constant / interval propagation.

type vkind uint8

const (
	vBottom vkind = iota // unreached
	vRange               // lo <= value <= hi (lo == hi: constant)
	vTop                 // unknown
)

// value is an element of the interval lattice over int64.
type value struct {
	k      vkind
	lo, hi int64
}

var top = value{k: vTop}

func vconst(x int64) value { return value{k: vRange, lo: x, hi: x} }

func vrange(lo, hi int64) value {
	if lo > hi {
		return top
	}
	return value{k: vRange, lo: lo, hi: hi}
}

func (v value) isConst() bool { return v.k == vRange && v.lo == v.hi }

func joinV(a, b value) value {
	switch {
	case a.k == vBottom:
		return b
	case b.k == vBottom:
		return a
	case a.k == vTop || b.k == vTop:
		return top
	}
	return vrange(min64(a.lo, b.lo), max64(a.hi, b.hi))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// addSat returns a+b with saturation at the int64 extremes. Bounds
// widened to ±inf must survive further arithmetic (a widened pointer
// keeps marching), so overflow saturates rather than dropping to top.
func addSat(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s >= 0 {
		return math.MinInt64
	}
	return s
}

func addV(a, b value) value {
	if a.k != vRange || b.k != vRange {
		return top
	}
	return vrange(addSat(a.lo, b.lo), addSat(a.hi, b.hi))
}

func subV(a, b value) value {
	if a.k != vRange || b.k != vRange || b.hi == math.MinInt64 || b.lo == math.MinInt64 {
		return top
	}
	return vrange(addSat(a.lo, -b.hi), addSat(a.hi, -b.lo))
}

func mulV(a, b value) value {
	// Constants only; interval multiplication adds noise for no checker.
	if !a.isConst() || !b.isConst() {
		return top
	}
	p := a.lo * b.lo
	if a.lo != 0 && (p/a.lo != b.lo) {
		return top
	}
	return vconst(p)
}

func shlV(a value, sh int64) value {
	if a.k != vRange || sh < 0 || sh > 62 || a.lo < 0 {
		return top
	}
	hi := a.hi << sh
	if hi>>sh != a.hi || hi < 0 {
		return top
	}
	return vrange(a.lo<<sh, hi)
}

func shrV(a value, sh int64) value {
	if a.k != vRange || sh < 0 || sh > 63 || a.lo < 0 {
		return top
	}
	return vrange(a.lo>>sh, a.hi>>sh)
}

func andMaskV(a value, mask int64) value {
	if mask < 0 {
		return top
	}
	if a.k == vRange && a.lo >= 0 && a.hi <= mask {
		return a
	}
	return vrange(0, mask)
}

func remV(a, b value) value {
	if !b.isConst() || b.lo <= 0 {
		return top
	}
	if a.k == vRange && a.lo >= 0 {
		if a.hi < b.lo {
			return a
		}
		return vrange(0, b.lo-1)
	}
	return vrange(-(b.lo - 1), b.lo-1)
}

// cpState is the constant-propagation state: one lattice value per
// integer register. FP registers are not tracked (they never form
// addresses).
type cpState [isa.NumIntRegs]value

func (s *cpState) get(r uint8) value {
	if r == isa.RegZero {
		return vconst(0)
	}
	return s[r]
}

func (s *cpState) set(r uint8, v value) {
	if r != isa.RegZero {
		s[r] = v
	}
}

func joinState(a, b *cpState) (cpState, bool) {
	var out cpState
	changed := false
	for i := range out {
		out[i] = joinV(a[i], b[i])
		if out[i] != a[i] {
			changed = true
		}
	}
	return out, changed
}

// cpTransfer applies instruction i to st.
func cpTransfer(p *prog.Program, i int, st *cpState) {
	in := p.Text[i]
	switch in.Op {
	case isa.OpLI:
		st.set(in.Rd, vconst(in.Imm))
	case isa.OpADDI:
		st.set(in.Rd, addV(st.get(in.Rs1), vconst(in.Imm)))
	case isa.OpADD:
		st.set(in.Rd, addV(st.get(in.Rs1), st.get(in.Rs2)))
	case isa.OpSUB:
		st.set(in.Rd, subV(st.get(in.Rs1), st.get(in.Rs2)))
	case isa.OpMUL:
		st.set(in.Rd, mulV(st.get(in.Rs1), st.get(in.Rs2)))
	case isa.OpSLLI:
		st.set(in.Rd, shlV(st.get(in.Rs1), in.Imm))
	case isa.OpSRLI, isa.OpSRAI:
		st.set(in.Rd, shrV(st.get(in.Rs1), in.Imm))
	case isa.OpSLL:
		if v := st.get(in.Rs2); v.isConst() {
			st.set(in.Rd, shlV(st.get(in.Rs1), v.lo))
		} else {
			st.set(in.Rd, top)
		}
	case isa.OpSRL, isa.OpSRA:
		if v := st.get(in.Rs2); v.isConst() {
			st.set(in.Rd, shrV(st.get(in.Rs1), v.lo))
		} else {
			st.set(in.Rd, top)
		}
	case isa.OpANDI:
		st.set(in.Rd, andMaskV(st.get(in.Rs1), in.Imm))
	case isa.OpAND:
		a, b := st.get(in.Rs1), st.get(in.Rs2)
		switch {
		case b.isConst():
			st.set(in.Rd, andMaskV(a, b.lo))
		case a.isConst():
			st.set(in.Rd, andMaskV(b, a.lo))
		default:
			st.set(in.Rd, top)
		}
	case isa.OpREM:
		st.set(in.Rd, remV(st.get(in.Rs1), st.get(in.Rs2)))
	case isa.OpSLT, isa.OpSLTU, isa.OpSLTI, isa.OpFEQ, isa.OpFLT, isa.OpFLE:
		st.set(in.Rd, vrange(0, 1))
	case isa.OpJAL:
		st.set(isa.RegRA, vconst(int64(prog.IndexToPC(i)+isa.InstrBytes)))
	case isa.OpJALR:
		st.set(in.Rd, vconst(int64(prog.IndexToPC(i)+isa.InstrBytes)))
	default:
		if d, ok := in.DstRegRaw(); ok && !d.FP {
			st.set(d.Num, top)
		}
	}
}

// widenAfter is the number of visits to a block before joins start
// widening grown bounds to object/segment boundaries.
const widenAfter = 3

// constprop runs the forward interval analysis to a fixpoint and returns
// the entry state of every block. Widening snaps growing bounds to the
// program's object boundaries (data labels) and segment boundaries, so a
// pointer marched through an array converges to that array's extent —
// precise enough to place the array's pages (see PageAffinity) without
// claiming more than the footprint allows.
func constprop(c *CFG) []cpState {
	nb := len(c.Blocks)
	states := make([]cpState, nb)
	for i := range states {
		for r := range states[i] {
			states[i][r] = value{k: vBottom}
		}
	}
	var entry cpState
	for r := range entry {
		entry[r] = top
	}
	entry[isa.RegZero] = vconst(0)
	entry[isa.RegSP] = vconst(int64(prog.StackTop - 16))
	entry[isa.RegGP] = vconst(int64(prog.DataBase))
	states[c.EntryBlock] = entry

	bounds := boundCandidates(c.Prog)
	visits := make([]int, nb)
	work := []int{c.EntryBlock}
	inWork := make([]bool, nb)
	inWork[c.EntryBlock] = true
	for len(work) > 0 {
		bid := work[0]
		work = work[1:]
		inWork[bid] = false
		b := c.Blocks[bid]
		visits[bid]++
		out := states[bid]
		for i := b.Start; i < b.End; i++ {
			cpTransfer(c.Prog, i, &out)
		}
		for _, s := range b.Succs {
			joined, changed := joinState(&states[s], &out)
			if !changed {
				continue
			}
			if visits[s] >= widenAfter {
				widenState(&states[s], &joined, bounds)
			}
			if joined != states[s] {
				states[s] = joined
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return states
}

// boundCandidates returns the sorted address boundaries widening may
// snap to: segment edges plus every data label (object starts).
func boundCandidates(p *prog.Program) []int64 {
	set := make(map[int64]bool)
	for _, b := range []uint64{
		0, prog.TextBase, p.TextEnd(), prog.DataBase, p.DataEnd(),
		prog.HeapBase, prog.HeapBase + p.HeapBytes, stackReserveBase(p), prog.StackTop,
	} {
		set[int64(b)] = true
	}
	for _, addr := range p.Labels {
		if addr >= prog.DataBase && addr < p.DataEnd() {
			set[int64(addr)] = true
		}
	}
	out := make([]int64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sortInt64s(out)
	return out
}

// stackReserveBase mirrors prog.Pages' stack reservation default.
func stackReserveBase(p *prog.Program) uint64 {
	stack := p.StackBytes
	if stack == 0 {
		stack = 64 * 1024
	}
	return prog.StackTop - stack
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// widenState widens every register whose bounds grew since the last
// visit: a grown upper bound snaps to the smallest boundary past the
// stable lower bound that covers it (the end of the object being walked,
// else the segment end, else +inf), and symmetrically for lower bounds.
func widenState(old, joined *cpState, bounds []int64) {
	for r := range joined {
		ov, jv := old[r], joined[r]
		if jv.k != vRange || ov.k != vRange {
			continue
		}
		lo, hi := jv.lo, jv.hi
		if jv.hi > ov.hi {
			hi = widenHi(jv.lo, jv.hi, bounds)
		}
		if jv.lo < ov.lo {
			lo = widenLo(jv.lo, jv.hi, bounds)
		}
		joined[r] = vrange(lo, hi)
	}
}

func widenHi(lo, hi int64, bounds []int64) int64 {
	for _, b := range bounds {
		if b > lo && b-1 >= hi {
			return b - 1
		}
	}
	return math.MaxInt64
}

func widenLo(lo, hi int64, bounds []int64) int64 {
	for i := len(bounds) - 1; i >= 0; i-- {
		if bounds[i] <= lo {
			return bounds[i]
		}
	}
	return math.MinInt64
}
