// Package asm implements a two-pass assembler for the ISA in internal/isa.
//
// The workload suite (internal/workload) is written in this assembly
// language, playing the role the SPEC95 binaries played in the paper. The
// syntax is MIPS-flavored:
//
//	        .text
//	entry:  li    r1, 100          # comment
//	loop:   ld    r2, 0(r3)
//	        add   r4, r4, r2
//	        addi  r1, r1, -1
//	        bne   r1, zero, loop
//	        halt
//
//	        .data
//	arr:    .space 800
//	vals:   .word  1, 2, -3
//	pi:     .double 3.14159
//	msg:    .byte  1, 2, 3
//	        .align 8
//
// Supported directives: .text, .data, .word (8 bytes each), .byte,
// .double (8-byte IEEE 754), .space N, .align N, .entry LABEL.
//
// Pseudo-instructions: la rd, label (expands to li with the label's
// address), mov rd, rs (add rd, rs, r0), b label (beq r0, r0, label).
// Register aliases: zero (r0), sp (r29), gp (r30), ra (r31).
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Error is an assembly error with source position and, when one token is
// at fault, the offending token.
type Error struct {
	Line int
	Tok  string // offending source token, "" when the whole statement is at fault
	Msg  string
}

func (e *Error) Error() string {
	if e.Tok != "" {
		return fmt.Sprintf("asm: line %d: %s (at %q)", e.Line, e.Msg, e.Tok)
	}
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// errt is errf carrying the offending token.
func errt(line int, tok, format string, args ...any) error {
	return &Error{Line: line, Tok: tok, Msg: fmt.Sprintf(format, args...)}
}

// Assemble assembles source into a program named name.
func Assemble(name, source string) (*prog.Program, error) {
	a := &assembler{
		name:   name,
		labels: make(map[string]uint64),
	}
	if err := a.pass1(source); err != nil {
		return nil, err
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	p := &prog.Program{
		Name:   name,
		Text:   a.text,
		Data:   a.data,
		Entry:  a.entry,
		Labels: a.labels,
		Lines:  a.lines,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

// stmt is one parsed statement awaiting pass 2.
type stmt struct {
	line int
	op   string
	args []string
}

type assembler struct {
	name   string
	labels map[string]uint64

	// pass 1 outputs
	stmts  []stmt // instruction statements in text order
	data   []byte
	fixups []fixup // .word values referencing labels, resolved in pass 2
	entry  uint64

	// pass 2 outputs
	text  []isa.Instr
	lines []int // source line of each text instruction
}

// pass1 scans the source, expanding data directives immediately (their
// sizes are known) and recording instruction statements and label
// addresses for pass 2.
func (a *assembler) pass1(source string) error {
	section := ".text"
	var entryLabel string
	entryLine := 0

	for lineNo, raw := range strings.Split(source, "\n") {
		line := lineNo + 1
		s := raw
		if i := strings.IndexByte(s, '#'); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}

		// Peel leading labels (possibly several on one line).
		for {
			i := strings.IndexByte(s, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(s[:i])
			if !isIdent(label) {
				break // ':' inside an operand is impossible in this syntax, but be safe
			}
			if _, dup := a.labels[label]; dup {
				return errt(line, label, "duplicate label")
			}
			switch section {
			case ".text":
				a.labels[label] = prog.IndexToPC(len(a.stmts))
			case ".data":
				a.labels[label] = prog.DataBase + uint64(len(a.data))
			}
			s = strings.TrimSpace(s[i+1:])
			if s == "" {
				break
			}
		}
		if s == "" {
			continue
		}

		op, rest := splitOp(s)
		switch {
		case op == ".text" || op == ".data":
			section = op
		case op == ".entry":
			entryLabel = strings.TrimSpace(rest)
			entryLine = line
			if entryLabel == "" {
				return errf(line, ".entry needs a label")
			}
		case strings.HasPrefix(op, "."):
			if section != ".data" {
				return errt(line, op, "directive outside .data section")
			}
			if err := a.dataDirective(line, op, rest); err != nil {
				return err
			}
		default:
			if section != ".text" {
				return errt(line, op, "instruction in .data section")
			}
			a.stmts = append(a.stmts, stmt{line: line, op: op, args: splitArgs(rest)})
		}
	}

	if entryLabel != "" {
		addr, ok := a.labels[entryLabel]
		if !ok {
			return errt(entryLine, entryLabel, ".entry: undefined label")
		}
		a.entry = addr
	}
	return nil
}

func (a *assembler) dataDirective(line int, op, rest string) error {
	args := splitArgs(rest)
	switch op {
	case ".word":
		for _, arg := range args {
			v, err := parseInt(arg)
			if err != nil {
				// Possibly a label (maybe a forward reference): reserve
				// space now and resolve in pass 2.
				a.fixups = append(a.fixups, fixup{line: line, off: len(a.data), expr: arg})
				v = 0
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			a.data = append(a.data, b[:]...)
		}
	case ".byte":
		for _, arg := range args {
			v, err := a.constExpr(line, arg)
			if err != nil {
				return err
			}
			if v < -128 || v > 255 {
				return errt(line, arg, ".byte value %d out of range", v)
			}
			a.data = append(a.data, byte(v))
		}
	case ".double":
		for _, arg := range args {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return errt(line, arg, ".double: %v", err)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
			a.data = append(a.data, b[:]...)
		}
	case ".space":
		if len(args) != 1 {
			return errf(line, ".space needs one size argument")
		}
		n, err := a.constExpr(line, args[0])
		if err != nil {
			return err
		}
		if n < 0 || n > 1<<28 {
			return errt(line, args[0], ".space size %d out of range", n)
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		if len(args) != 1 {
			return errf(line, ".align needs one argument")
		}
		n, err := a.constExpr(line, args[0])
		if err != nil {
			return err
		}
		if n <= 0 || n&(n-1) != 0 {
			return errt(line, args[0], ".align %d not a positive power of two", n)
		}
		for uint64(len(a.data))%uint64(n) != 0 {
			a.data = append(a.data, 0)
		}
	default:
		return errt(line, op, "unknown directive")
	}
	return nil
}

// fixup is a .word cell whose value is a label expression, resolved once
// all labels are known.
type fixup struct {
	line int
	off  int
	expr string
}

// pass2 encodes instruction statements now that all labels are known, and
// resolves deferred data fixups.
func (a *assembler) pass2() error {
	for _, fx := range a.fixups {
		v, err := a.constExpr(fx.line, fx.expr)
		if err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(a.data[fx.off:], uint64(v))
	}
	a.text = make([]isa.Instr, 0, len(a.stmts))
	a.lines = make([]int, 0, len(a.stmts))
	for _, st := range a.stmts {
		in, err := a.encode(st)
		if err != nil {
			return err
		}
		a.text = append(a.text, in)
		a.lines = append(a.lines, st.line)
	}
	return nil
}

func (a *assembler) encode(st stmt) (isa.Instr, error) {
	line := st.line
	need := func(n int) error {
		if len(st.args) != n {
			return errt(line, st.op, "want %d operands, got %d", n, len(st.args))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch st.op {
	case "la":
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		rd, err := intReg(line, st.args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		addr, ok := a.labels[st.args[1]]
		if !ok {
			return isa.Instr{}, errt(line, st.args[1], "la: undefined label")
		}
		return isa.Instr{Op: isa.OpLI, Rd: rd, Imm: int64(addr)}, nil
	case "mov":
		if err := need(2); err != nil {
			return isa.Instr{}, err
		}
		rd, err := intReg(line, st.args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs, err := intReg(line, st.args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpADD, Rd: rd, Rs1: rs, Rs2: isa.RegZero}, nil
	case "b":
		if err := need(1); err != nil {
			return isa.Instr{}, err
		}
		tgt, err := a.target(line, st.args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.OpBEQ, Rs1: isa.RegZero, Rs2: isa.RegZero, Target: tgt}, nil
	}

	op := isa.OpByName(st.op)
	if op == isa.OpInvalid {
		return isa.Instr{}, errt(line, st.op, "unknown mnemonic")
	}

	var in isa.Instr
	in.Op = op
	var err error
	switch op.Format() {
	case isa.FmtNone:
		err = need(0)
	case isa.FmtRRR:
		if err = need(3); err == nil {
			in.Rd, in.Rs1, in.Rs2, err = reg3(line, st.args, intReg)
		}
	case isa.FmtRRI:
		if err = need(3); err == nil {
			if in.Rd, err = intReg(line, st.args[0]); err == nil {
				if in.Rs1, err = intReg(line, st.args[1]); err == nil {
					in.Imm, err = a.constExpr(line, st.args[2])
				}
			}
		}
	case isa.FmtRI:
		if err = need(2); err == nil {
			if in.Rd, err = intReg(line, st.args[0]); err == nil {
				in.Imm, err = a.constExpr(line, st.args[1])
			}
		}
	case isa.FmtLoad, isa.FmtFLoad, isa.FmtStore, isa.FmtFStore:
		if err = need(2); err == nil {
			in, err = a.memOperand(line, in, st.args)
		}
	case isa.FmtFRR:
		if err = need(3); err == nil {
			in.Rd, in.Rs1, in.Rs2, err = reg3(line, st.args, fpReg)
		}
	case isa.FmtFR:
		if err = need(2); err == nil {
			if in.Rd, err = fpReg(line, st.args[0]); err == nil {
				in.Rs1, err = fpReg(line, st.args[1])
			}
		}
	case isa.FmtF2I:
		if err = need(2); err == nil {
			if in.Rd, err = intReg(line, st.args[0]); err == nil {
				in.Rs1, err = fpReg(line, st.args[1])
			}
		}
	case isa.FmtI2F:
		if err = need(2); err == nil {
			if in.Rd, err = fpReg(line, st.args[0]); err == nil {
				in.Rs1, err = intReg(line, st.args[1])
			}
		}
	case isa.FmtFCmp:
		if err = need(3); err == nil {
			if in.Rd, err = intReg(line, st.args[0]); err == nil {
				if in.Rs1, err = fpReg(line, st.args[1]); err == nil {
					in.Rs2, err = fpReg(line, st.args[2])
				}
			}
		}
	case isa.FmtBranch:
		if err = need(3); err == nil {
			if in.Rs1, err = intReg(line, st.args[0]); err == nil {
				if in.Rs2, err = intReg(line, st.args[1]); err == nil {
					in.Target, err = a.target(line, st.args[2])
				}
			}
		}
	case isa.FmtJump:
		if err = need(1); err == nil {
			in.Target, err = a.target(line, st.args[0])
		}
	case isa.FmtRegion:
		if err = need(1); err == nil {
			in, err = a.addrOperand(line, in, st.args[0])
		}
	case isa.FmtJReg:
		if op == isa.OpJALR {
			if err = need(2); err == nil {
				if in.Rd, err = intReg(line, st.args[0]); err == nil {
					in.Rs1, err = intReg(line, st.args[1])
				}
			}
		} else {
			if err = need(1); err == nil {
				in.Rs1, err = intReg(line, st.args[0])
			}
		}
	default:
		err = errf(line, "unhandled format for %s", op)
	}
	if err != nil {
		return isa.Instr{}, err
	}
	return in, nil
}

// addrOperand parses "offset(base)" into Imm and Rs1.
func (a *assembler) addrOperand(line int, in isa.Instr, memArg string) (isa.Instr, error) {
	open := strings.IndexByte(memArg, '(')
	closeP := strings.IndexByte(memArg, ')')
	if open < 0 || closeP < open {
		return in, errt(line, memArg, "bad memory operand, want offset(base)")
	}
	offStr := strings.TrimSpace(memArg[:open])
	baseStr := strings.TrimSpace(memArg[open+1 : closeP])
	var err error
	if offStr == "" {
		in.Imm = 0
	} else if in.Imm, err = a.constExpr(line, offStr); err != nil {
		return in, err
	}
	if in.Rs1, err = intReg(line, baseStr); err != nil {
		return in, err
	}
	return in, nil
}

// memOperand parses "reg, offset(base)" for loads and stores.
func (a *assembler) memOperand(line int, in isa.Instr, args []string) (isa.Instr, error) {
	regArg := args[0]
	in, err := a.addrOperand(line, in, args[1])
	if err != nil {
		return in, err
	}
	regParse := intReg
	if in.Op.Format() == isa.FmtFLoad || in.Op.Format() == isa.FmtFStore {
		regParse = fpReg
	}
	r, err := regParse(line, regArg)
	if err != nil {
		return in, err
	}
	if in.Op.IsLoad() {
		in.Rd = r
	} else {
		in.Rs2 = r
	}
	return in, nil
}

// target resolves a branch/jump target: a label or a numeric address.
func (a *assembler) target(line int, arg string) (uint64, error) {
	if addr, ok := a.labels[arg]; ok {
		return addr, nil
	}
	if v, err := parseInt(arg); err == nil {
		return uint64(v), nil
	}
	return 0, errt(line, arg, "undefined branch or jump target")
}

// constExpr evaluates an immediate: a number, a data/text label address, or
// label+offset / label-offset.
func (a *assembler) constExpr(line int, arg string) (int64, error) {
	if v, err := parseInt(arg); err == nil {
		return v, nil
	}
	// label, label+N, label-N
	for i := 1; i < len(arg); i++ {
		if arg[i] == '+' || arg[i] == '-' {
			base, ok := a.labels[arg[:i]]
			if !ok {
				continue
			}
			off, err := parseInt(arg[i:])
			if err != nil {
				return 0, errt(line, arg, "bad offset in label expression")
			}
			return int64(base) + off, nil
		}
	}
	if addr, ok := a.labels[arg]; ok {
		return int64(addr), nil
	}
	return 0, errt(line, arg, "bad immediate")
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

var regAliases = map[string]uint8{
	"zero": isa.RegZero,
	"sp":   isa.RegSP,
	"gp":   isa.RegGP,
	"ra":   isa.RegRA,
}

func intReg(line int, s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if n, ok := regAliases[s]; ok {
		return n, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.NumIntRegs {
			return uint8(n), nil
		}
	}
	return 0, errt(line, s, "bad integer register")
}

func fpReg(line int, s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == 'f' {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.NumFPRegs {
			return uint8(n), nil
		}
	}
	return 0, errt(line, s, "bad fp register")
}

func reg3(line int, args []string, parse func(int, string) (uint8, error)) (uint8, uint8, uint8, error) {
	a, err := parse(line, args[0])
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := parse(line, args[1])
	if err != nil {
		return 0, 0, 0, err
	}
	c, err := parse(line, args[2])
	if err != nil {
		return 0, 0, 0, err
	}
	return a, b, c, nil
}

func splitOp(s string) (op, rest string) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return strings.ToLower(s[:i]), s[i+1:]
		}
	}
	return strings.ToLower(s), ""
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
