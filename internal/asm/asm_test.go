package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
        .text
start:  li    r1, 10
        li    r2, 0
loop:   add   r2, r2, r1
        addi  r1, r1, -1
        bne   r1, zero, loop
        halt
`)
	if len(p.Text) != 6 {
		t.Fatalf("text len = %d, want 6", len(p.Text))
	}
	if p.Text[0].Op != isa.OpLI || p.Text[0].Rd != 1 || p.Text[0].Imm != 10 {
		t.Errorf("instr 0 = %v", p.Text[0])
	}
	bne := p.Text[4]
	if bne.Op != isa.OpBNE || bne.Target != prog.IndexToPC(2) {
		t.Errorf("bne = %v, want target 0x%x", bne, prog.IndexToPC(2))
	}
	if p.Labels["loop"] != prog.IndexToPC(2) {
		t.Errorf("label loop = 0x%x", p.Labels["loop"])
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
        .data
w:      .word  1, -2, 0x10
b:      .byte  7, 255
        .align 8
d:      .double 1.5
sp1:    .space 16
        .text
        la    r1, w
        la    r2, d
        halt
`)
	if p.Labels["w"] != prog.DataBase {
		t.Errorf("w = 0x%x", p.Labels["w"])
	}
	if got := int64(binary.LittleEndian.Uint64(p.Data[8:16])); got != -2 {
		t.Errorf("word[1] = %d, want -2", got)
	}
	if p.Data[24] != 7 || p.Data[25] != 255 {
		t.Errorf("bytes = %d,%d", p.Data[24], p.Data[25])
	}
	dOff := p.Labels["d"] - prog.DataBase
	if dOff%8 != 0 {
		t.Errorf("d not aligned: off %d", dOff)
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(p.Data[dOff : dOff+8]))
	if f != 1.5 {
		t.Errorf("double = %v", f)
	}
	spOff := p.Labels["sp1"] - prog.DataBase
	if uint64(len(p.Data)) != spOff+16 {
		t.Errorf("space sizing: len=%d want %d", len(p.Data), spOff+16)
	}
	// la expands to li with the absolute address.
	if p.Text[0].Op != isa.OpLI || uint64(p.Text[0].Imm) != p.Labels["w"] {
		t.Errorf("la = %v", p.Text[0])
	}
}

func TestMemOperands(t *testing.T) {
	p := mustAssemble(t, `
        .text
        ld    r1, 8(r2)
        sd    r3, -16(r4)
        fld   f1, 0(r5)
        fsd   f2, 24(r6)
        lw    r7, (r8)
        halt
`)
	ld := p.Text[0]
	if ld.Op != isa.OpLD || ld.Rd != 1 || ld.Rs1 != 2 || ld.Imm != 8 {
		t.Errorf("ld = %+v", ld)
	}
	sd := p.Text[1]
	if sd.Op != isa.OpSD || sd.Rs2 != 3 || sd.Rs1 != 4 || sd.Imm != -16 {
		t.Errorf("sd = %+v", sd)
	}
	fld := p.Text[2]
	if fld.Op != isa.OpFLD || fld.Rd != 1 || fld.Rs1 != 5 {
		t.Errorf("fld = %+v", fld)
	}
	fsd := p.Text[3]
	if fsd.Op != isa.OpFSD || fsd.Rs2 != 2 || fsd.Rs1 != 6 || fsd.Imm != 24 {
		t.Errorf("fsd = %+v", fsd)
	}
	lw := p.Text[4]
	if lw.Op != isa.OpLW || lw.Imm != 0 || lw.Rs1 != 8 {
		t.Errorf("lw = %+v", lw)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
        .text
top:    mov   r1, r2
        b     top
        halt
`)
	if p.Text[0].Op != isa.OpADD || p.Text[0].Rs2 != isa.RegZero {
		t.Errorf("mov = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpBEQ || p.Text[1].Target != prog.IndexToPC(0) {
		t.Errorf("b = %v", p.Text[1])
	}
}

func TestEntryDirective(t *testing.T) {
	p := mustAssemble(t, `
        .text
        nop
main:   halt
        .entry main
`)
	if p.EntryPC() != prog.IndexToPC(1) {
		t.Errorf("entry = 0x%x, want 0x%x", p.EntryPC(), prog.IndexToPC(1))
	}
}

func TestFPAndJumps(t *testing.T) {
	p := mustAssemble(t, `
        .text
        fadd  f1, f2, f3
        fneg  f4, f1
        feq   r1, f1, f4
        fcvtdw f5, r1
        fcvtwd r2, f5
        jal   fn
        halt
fn:     jr    ra
`)
	if p.Text[0].Op != isa.OpFADD {
		t.Errorf("fadd = %v", p.Text[0])
	}
	if p.Text[5].Op != isa.OpJAL || p.Text[5].Target != prog.IndexToPC(7) {
		t.Errorf("jal = %v", p.Text[5])
	}
	if p.Text[7].Op != isa.OpJR || p.Text[7].Rs1 != isa.RegRA {
		t.Errorf("jr = %v", p.Text[7])
	}
}

func TestLabelArithmetic(t *testing.T) {
	p := mustAssemble(t, `
        .data
arr:    .space 64
        .text
        li    r1, arr+8
        li    r2, arr-8
        halt
`)
	if uint64(p.Text[0].Imm) != p.Labels["arr"]+8 {
		t.Errorf("arr+8 = 0x%x", p.Text[0].Imm)
	}
	if uint64(p.Text[1].Imm) != p.Labels["arr"]-8 {
		t.Errorf("arr-8 = 0x%x", p.Text[1].Imm)
	}
}

func TestWordForwardReference(t *testing.T) {
	p := mustAssemble(t, `
        .data
head:   .word next          # forward reference
next:   .word head          # backward reference
        .text
        halt
`)
	got := binary.LittleEndian.Uint64(p.Data[0:8])
	if got != p.Labels["next"] {
		t.Errorf("forward ref = 0x%x, want 0x%x", got, p.Labels["next"])
	}
	got = binary.LittleEndian.Uint64(p.Data[8:16])
	if got != p.Labels["head"] {
		t.Errorf("backward ref = 0x%x, want 0x%x", got, p.Labels["head"])
	}
}

func TestWordUndefinedLabelRejected(t *testing.T) {
	if _, err := Assemble("bad", "\t.data\nx:\t.word nowhere\n\t.text\n\thalt"); err == nil {
		t.Fatal("undefined .word label accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
# full-line comment

        .text
        nop      # trailing comment
        halt
`)
	if len(p.Text) != 2 {
		t.Fatalf("text len = %d", len(p.Text))
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p := mustAssemble(t, `
        .text
a: b:   nop
        halt
`)
	if p.Labels["a"] != p.Labels["b"] || p.Labels["a"] != prog.IndexToPC(0) {
		t.Errorf("labels a=0x%x b=0x%x", p.Labels["a"], p.Labels["b"])
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":   "\t.text\n\tfrob r1, r2\n\thalt",
		"undefined label":    "\t.text\n\tj nowhere\n\thalt",
		"duplicate label":    "\t.text\nx: nop\nx: halt",
		"bad register":       "\t.text\n\tadd r1, r2, r99\n\thalt",
		"bad fp register":    "\t.text\n\tfadd f1, f2, r3\n\thalt",
		"wrong operands":     "\t.text\n\tadd r1, r2\n\thalt",
		"bad mem operand":    "\t.text\n\tld r1, r2\n\thalt",
		"instr in data":      "\t.data\n\tnop",
		"directive in text":  "\t.text\n\t.word 4\n\thalt",
		"bad byte range":     "\t.data\n\t.byte 300\n\t.text\n\thalt",
		"bad align":          "\t.data\n\t.align 3\n\t.text\n\thalt",
		"bad space":          "\t.data\n\t.space -1\n\t.text\n\thalt",
		"bad entry":          "\t.text\n\thalt\n\t.entry missing",
		"empty entry":        "\t.text\n\thalt\n\t.entry",
		"bad immediate":      "\t.text\n\tli r1, frobnitz\n\thalt",
		"unknown directive":  "\t.data\n\t.quux 1\n\t.text\n\thalt",
		"jalr operand count": "\t.text\n\tjalr r1\n\thalt",
	}
	for name, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), "line") && !strings.Contains(err.Error(), "asm") {
			t.Errorf("%s: error lacks context: %v", name, err)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("bad", "\t.text\n\tnop\n\tfrob r1\n\thalt")
	if err == nil {
		t.Fatal("accepted bad program")
	}
	var ae *Error
	if !asError(err, &ae) {
		t.Fatalf("error type %T, want *Error", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// Round trip: every mnemonic that the disassembler prints should reassemble
// to the same instruction (for formats with unambiguous text).
func TestDisasmReassembleRoundTrip(t *testing.T) {
	src := `
        .text
        add   r1, r2, r3
        addi  r4, r5, -6
        li    r7, 123456789
        ld    r8, 16(r9)
        sd    r10, 8(r11)
        fld   f1, 0(r2)
        fsd   f3, 8(r4)
        fadd  f5, f6, f7
        fmul  f8, f9, f10
        feq   r12, f1, f2
        slt   r13, r14, r15
        halt
`
	p := mustAssemble(t, src)
	var lines []string
	lines = append(lines, ".text")
	for _, in := range p.Text {
		lines = append(lines, in.String())
	}
	p2 := mustAssemble(t, strings.Join(lines, "\n"))
	if len(p2.Text) != len(p.Text) {
		t.Fatalf("reassembled %d instrs, want %d", len(p2.Text), len(p.Text))
	}
	for i := range p.Text {
		if p.Text[i] != p2.Text[i] {
			t.Errorf("instr %d: %v != %v", i, p.Text[i], p2.Text[i])
		}
	}
}

func TestRegionMarkers(t *testing.T) {
	p := mustAssemble(t, `
        .text
        privb 16(r3)
        prive
        halt
`)
	if p.Text[0].Op != isa.OpPRIVB || p.Text[0].Rs1 != 3 || p.Text[0].Imm != 16 {
		t.Fatalf("privb = %+v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpPRIVE {
		t.Fatalf("prive = %+v", p.Text[1])
	}
	if _, err := Assemble("bad", "\t.text\n\tprivb r1\n\thalt"); err == nil {
		t.Fatal("privb without address operand accepted")
	}
}

func TestErrorCarriesToken(t *testing.T) {
	cases := []struct {
		name, src, tok string
		line           int
	}{
		{"bad register", "\t.text\n\tadd r1, rq7, r2\n", "rq7", 2},
		{"unknown mnemonic", "\t.text\n\tfrobnicate r1\n", "frobnicate", 2},
		{"undefined target", "\t.text\n\tnop\n\tj nowhere\n", "nowhere", 3},
		{"bad immediate", "\t.text\n\tli r1, banana\n", "banana", 2},
		{"duplicate label", "\t.text\nx:\tnop\nx:\tnop\n", "x", 3},
		{"unknown directive", "\t.data\n\t.quadword 3\n", ".quadword", 2},
		{"bad memory operand", "\t.text\n\tld r1, r2\n", "r2", 2},
		{"operand count", "\t.text\n\tadd r1, r2\n", "add", 2},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.name, tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var ae *Error
		if !asError(err, &ae) {
			t.Errorf("%s: error type %T, want *Error", tc.name, err)
			continue
		}
		if ae.Line != tc.line {
			t.Errorf("%s: line = %d, want %d (%v)", tc.name, ae.Line, tc.line, err)
		}
		if ae.Tok != tc.tok {
			t.Errorf("%s: tok = %q, want %q (%v)", tc.name, ae.Tok, tc.tok, err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("%q", tc.tok)) {
			t.Errorf("%s: rendered error lacks token: %v", tc.name, err)
		}
	}
}

func TestSourceLinesThreaded(t *testing.T) {
	src := "\t.text\n" + // line 1
		"start:\tli r1, 4\n" + // line 2
		"\n" + // line 3
		"loop:\taddi r1, r1, -1\n" + // line 4
		"\tbne r1, zero, loop\n" + // line 5
		"\thalt\n" // line 6
	p, err := Assemble("lines", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 5, 6}
	if len(p.Lines) != len(p.Text) {
		t.Fatalf("Lines len = %d, Text len = %d", len(p.Lines), len(p.Text))
	}
	for i, w := range want {
		if p.LineOf(i) != w {
			t.Errorf("LineOf(%d) = %d, want %d", i, p.LineOf(i), w)
		}
	}
	if p.LineOf(-1) != 0 || p.LineOf(len(p.Text)) != 0 {
		t.Error("out-of-range LineOf not 0")
	}
}
