package bus

import "testing"

// TestBusTickZeroAllocs: Tick runs once per machine cycle, so the
// arbitrate/deliver path must not allocate — queue heads are consumed by
// reslicing, never by copying. Messages are enqueued before measurement
// (Enqueue may grow the per-source queues); the measured window covers
// both busy progress and post-drain idle ticks.
func TestBusTickZeroAllocs(t *testing.T) {
	b := New(DefaultConfig(), 4)
	for i := 0; i < 256; i++ {
		b.Enqueue(Message{
			Kind: Broadcast, Src: i % 4,
			Addr: 0x1000 + uint64(i)*64, PayloadBytes: 32,
			ReadyAt: uint64(i),
		})
	}
	now := uint64(0)
	for ; now < 100; now++ { // warmup: first grants, steady rotation
		b.Tick(now)
	}
	if allocs := testing.AllocsPerRun(10_000, func() {
		b.Tick(now)
		now++
	}); allocs != 0 {
		t.Fatalf("Bus.Tick allocated %.3f times per cycle", allocs)
	}
}

// TestRingTickZeroAllocs: the ring reuses its flight and arrival scratch
// buffers across cycles; after a warmup drain that grows them to their
// high-water marks, per-cycle ticking must be allocation-free.
func TestRingTickZeroAllocs(t *testing.T) {
	r := NewRing(DefaultRingConfig(), 4)
	enqueue := func(base uint64) {
		for i := 0; i < 64; i++ {
			r.Enqueue(Message{
				Kind: Broadcast, Src: i % 4,
				Addr: base + uint64(i)*64, PayloadBytes: 32,
				ReadyAt: uint64(i),
			})
		}
	}
	now := uint64(0)
	enqueue(0x1000)
	for ; now < 5_000; now++ { // warmup: drain fully, grow scratch buffers
		r.Tick(now)
	}
	enqueue(0x100000) // refill outside the measured closure
	if allocs := testing.AllocsPerRun(10_000, func() {
		r.Tick(now)
		now++
	}); allocs != 0 {
		t.Fatalf("Ring.Tick allocated %.3f times per cycle", allocs)
	}
}

// TestMeshTickZeroAllocs: the mesh double-buffers its branch set and
// reuses the arrival scratch; after a warmup drain grows them (and the
// spawn path's high-water mark), per-cycle ticking and the DataPhase
// query must be allocation-free. Message headers are allocated in
// Enqueue, off the per-cycle path.
func TestMeshTickZeroAllocs(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		var ms *Mesh
		if wrap {
			ms = NewTorus(DefaultLinkConfig(), 9)
		} else {
			ms = NewMesh(DefaultLinkConfig(), 9)
		}
		enqueue := func(base uint64) {
			for i := 0; i < 64; i++ {
				ms.Enqueue(Message{
					Kind: Broadcast, Src: i % 9,
					Addr: base + uint64(i)*64, PayloadBytes: 32,
					ReadyAt: uint64(i),
				})
			}
		}
		now := uint64(0)
		enqueue(0x1000)
		for ; now < 10_000; now++ { // warmup: drain fully, grow all buffers
			ms.Tick(now)
		}
		enqueue(0x100000) // refill outside the measured closure
		if allocs := testing.AllocsPerRun(10_000, func() {
			ms.Tick(now)
			ms.DataPhase(0x100040, 8, now)
			now++
		}); allocs != 0 {
			t.Fatalf("wrap=%v: Mesh.Tick allocated %.3f times per cycle", wrap, allocs)
		}
	}
}
