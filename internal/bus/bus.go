// Package bus models the global interconnect connecting the IRAM chips:
// a single split-transaction bus with configurable width and clock
// divisor, round-robin arbitration among chips, and free broadcast (every
// transaction is observed by all chips, as on a physical bus — the
// property that makes buses the natural DataScalar interconnect).
//
// The same bus carries three message kinds:
//
//   - Broadcast: a DataScalar owner pushing a loaded line (with its
//     address tag) to every other node. No request ever precedes it.
//   - Request:  a traditional CPU chip asking an off-chip memory for a
//     line (header-sized message).
//   - Response: the off-chip memory returning the line.
//
// Writebacks in the traditional machine are modeled as Request-kind
// messages carrying a full line (address + data, no response needed).
package bus

import (
	"fmt"
	"math"

	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// NoEvent is returned by NextDeliveryCycle when the interconnect holds no
// messages: nothing will ever happen without a new Enqueue.
const NoEvent = math.MaxUint64

// HeaderBytes is the address/tag overhead carried by every message.
// Asynchronous ESP requires tags on broadcasts (unlike the synchronous
// MMM, where total order made them inferable).
const HeaderBytes = 8

// Kind classifies messages.
type Kind uint8

const (
	// Broadcast is an ESP data push, delivered to every node but the
	// sender.
	Broadcast Kind = iota
	// Request is a point-to-point message that expects a response (or a
	// writeback, which expects none).
	Request
	// Response is a point-to-point data return.
	Response
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Broadcast:
		return "broadcast"
	case Request:
		return "request"
	case Response:
		return "response"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Ctl sub-classifies control messages the resilience layer puts on the
// interconnect. Ordinary data traffic carries CtlNone (the zero value),
// so existing senders are unaffected.
type Ctl uint8

const (
	// CtlNone marks ordinary data traffic.
	CtlNone Ctl = iota
	// CtlRetryReq is a directed re-request: a node whose BSHR wait timed
	// out asks the line's owner to resend (header-only message).
	CtlRetryReq
	// CtlRetryResp is the owner's directed resend of the requested line.
	CtlRetryResp
	// CtlFingerprint is a commit-fingerprint broadcast: Addr carries the
	// fingerprint interval index and Seq the fingerprint value.
	CtlFingerprint
	// CtlWarmFill is a re-replication push: after an owner death, the
	// page's new owner sends a warm copy of an inherited page to a
	// standby node (Addr = page base address, Dst = standby).
	CtlWarmFill
)

// Message is one bus transaction.
type Message struct {
	Kind Kind
	Src  int
	Dst  int // ignored for Broadcast
	Addr uint64
	// PayloadBytes is the data size excluding the header (0 for bare
	// requests, line size for data-bearing messages).
	PayloadBytes int
	// ReadyAt is the first cycle the message may arbitrate for the bus
	// (senders fold their network-interface/broadcast-queue penalty in
	// here).
	ReadyAt uint64
	// Seq tags the message for correlation by receivers (e.g. reparative
	// broadcasts versus the original commit order).
	Seq uint64
	// Reparative marks a late (commit-time) broadcast issued to repair a
	// false hit, for Table 3 accounting.
	Reparative bool
	// Ctl sub-classifies resilience-layer control traffic (retry
	// requests/responses, fingerprint broadcasts); CtlNone for data.
	Ctl Ctl
}

// WireBytes is the total size on the wire.
func (m Message) WireBytes() int { return HeaderBytes + m.PayloadBytes }

// Config describes the bus.
type Config struct {
	// WidthBytes is the datapath width (the paper's global bus is 8
	// bytes wide).
	WidthBytes int
	// ClockDivisor is CPU cycles per bus cycle (a 100 MHz bus under a
	// 1 GHz core has divisor 10).
	ClockDivisor uint64
}

// Validate checks structural soundness.
func (c Config) Validate() error {
	if c.WidthBytes <= 0 {
		return fmt.Errorf("bus: width must be positive")
	}
	if c.ClockDivisor == 0 {
		return fmt.Errorf("bus: clock divisor must be positive")
	}
	return nil
}

// DefaultConfig returns the paper's global-bus parameters: 8 bytes wide at
// half the core clock (the paper's target is a high-integration module where the global bus runs near core speed; the sensitivity analysis sweeps the divisor).
func DefaultConfig() Config { return Config{WidthBytes: 8, ClockDivisor: 2} }

// TransferCycles returns the bus occupancy in CPU cycles for a message of
// the given wire size.
func (c Config) TransferCycles(wireBytes int) uint64 {
	beats := (wireBytes + c.WidthBytes - 1) / c.WidthBytes
	if beats == 0 {
		beats = 1
	}
	return uint64(beats) * c.ClockDivisor
}

// Stats counts bus activity.
type Stats struct {
	Messages    stats.Counter
	Bytes       stats.Counter
	BusyCycles  stats.Counter
	ByKindMsgs  [3]stats.Counter
	ByKindBytes [3]stats.Counter
	ArbWaits    stats.Counter // messages that waited for a busy bus
	MaxQueueLen int           // high-water mark across all source queues
	TotalQueued stats.Counter // messages ever enqueued
}

// Bus is the interconnect instance. Drive it cycle by cycle: enqueue
// messages at any time, then call Tick once per CPU cycle; deliveries
// come back from Tick at transfer completion.
type Bus struct {
	cfg     Config
	queues  [][]Message // per-source FIFOs
	rrNext  int
	busy    bool
	doneAt  uint64
	current Message
	stats   Stats
	obs     obs.Observer
	// arrivals is the scratch buffer TickArrivals returns; reused so the
	// per-cycle delivery path is allocation-free in steady state.
	arrivals []Arrival
}

// SetObserver attaches an observer emitting a bus.grant event each time
// arbitration starts a transfer (nil detaches).
func (b *Bus) SetObserver(o obs.Observer) { b.obs = o }

// New builds a bus connecting numNodes chips. It panics on invalid
// configuration (experiment-setup error).
func New(cfg Config, numNodes int) *Bus {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if numNodes <= 0 {
		panic("bus: need at least one node")
	}
	return &Bus{cfg: cfg, queues: make([][]Message, numNodes)}
}

// Config returns the bus configuration.
func (b *Bus) Config() Config { return b.cfg }

// Stats returns the bus counters.
func (b *Bus) Stats() *Stats { return &b.stats }

// Enqueue submits a message from its source chip's network interface.
func (b *Bus) Enqueue(m Message) {
	if m.Src < 0 || m.Src >= len(b.queues) {
		panic(fmt.Sprintf("bus: bad source %d", m.Src))
	}
	b.queues[m.Src] = append(b.queues[m.Src], m)
	b.stats.TotalQueued.Inc()
	if n := len(b.queues[m.Src]); n > b.stats.MaxQueueLen {
		b.stats.MaxQueueLen = n
	}
}

// Pending returns the number of queued (not yet delivered) messages,
// including the one in flight.
func (b *Bus) Pending() int {
	n := 0
	for _, q := range b.queues {
		n += len(q)
	}
	if b.busy {
		n++
	}
	return n
}

// SourcePending returns the number of undelivered messages node src has
// on the interconnect (its queue plus any transfer of its in flight) —
// watchdog and fault diagnostics.
func (b *Bus) SourcePending(src int) int {
	if src < 0 || src >= len(b.queues) {
		return 0
	}
	n := len(b.queues[src])
	if b.busy && b.current.Src == src {
		n++
	}
	return n
}

// PurgeSource removes every message node src has enqueued but not yet
// arbitrated onto the bus, returning the count. The fault layer calls it
// when src dies permanently: a dead chip's network-interface queue dies
// with it, while a transfer already granted the bus completes (the wire
// was already driven). Purged messages stay counted in TotalQueued —
// they were genuinely offered to the interconnect.
func (b *Bus) PurgeSource(src int) int {
	if src < 0 || src >= len(b.queues) {
		return 0
	}
	n := len(b.queues[src])
	b.queues[src] = b.queues[src][:0]
	return n
}

// Tick advances the bus to CPU cycle now. It returns the message whose
// transfer completed this cycle, if any. Call with strictly increasing
// cycle numbers.
//
// Tick runs once per machine cycle; the steady-state machine loop is
// allocation-free (TestMachineRunSteadyStateAllocs, TestBusTickZeroAllocs).
//
//dsvet:hotpath
func (b *Bus) Tick(now uint64) (Message, bool) {
	var delivered Message
	var ok bool
	if b.busy && now >= b.doneAt {
		delivered, ok = b.current, true
		b.busy = false
	}
	if !b.busy {
		b.arbitrate(now)
	}
	return delivered, ok
}

// NextDeliveryCycle reports the earliest cycle > nothing-happens-before
// which Tick could change bus state: the in-flight transfer's completion,
// or — when idle — the earliest cycle a queued head becomes eligible to
// arbitrate. Ticks at any cycle before the returned value are no-ops, so
// a scheduler may skip them. Call it only after Tick(now) has run for the
// current cycle. NoEvent means the bus is empty.
func (b *Bus) NextDeliveryCycle(now uint64) uint64 {
	if b.busy {
		if b.doneAt <= now {
			return now + 1 // delivery already due; next Tick acts immediately
		}
		return b.doneAt
	}
	next := uint64(NoEvent)
	for _, q := range b.queues {
		if len(q) == 0 {
			continue
		}
		at := q[0].ReadyAt
		if at <= now {
			at = now + 1
		}
		if at < next {
			next = at
		}
	}
	return next
}

// arbitrate grants the bus to the next ready message in round-robin
// order, starting after the last grantee's source.
func (b *Bus) arbitrate(now uint64) {
	n := len(b.queues)
	for i := 0; i < n; i++ {
		src := (b.rrNext + i) % n
		q := b.queues[src]
		if len(q) == 0 || q[0].ReadyAt > now {
			continue
		}
		m := q[0]
		// Shift rather than re-slice so the queue's backing array keeps
		// its full capacity; q[1:] would bleed capacity off the front and
		// force Enqueue to reallocate steadily. Queues stay short (see
		// MaxQueueLen), so the copy is cheap.
		b.queues[src] = q[:copy(q, q[1:])]
		b.rrNext = (src + 1) % n
		b.busy = true
		cycles := b.cfg.TransferCycles(m.WireBytes())
		b.doneAt = now + cycles
		b.current = m
		b.stats.Messages.Inc()
		b.stats.Bytes.Add(uint64(m.WireBytes()))
		b.stats.BusyCycles.Add(cycles)
		b.stats.ByKindMsgs[m.Kind].Inc()
		b.stats.ByKindBytes[m.Kind].Add(uint64(m.WireBytes()))
		if m.ReadyAt < now {
			b.stats.ArbWaits.Inc()
		}
		if b.obs != nil {
			b.obs.Event(obs.Event{
				Cycle: now, Node: m.Src, Kind: obs.EvBusGrant,
				Addr: m.Addr, Arg: uint64(m.WireBytes()),
			})
		}
		return
	}
}

// Drain advances the bus until all queued messages are delivered,
// returning them in delivery order along with the cycle the last delivery
// completed. Used by tests and end-of-run cleanup.
func (b *Bus) Drain(now uint64) ([]Message, uint64) {
	var out []Message
	for b.Pending() > 0 {
		if m, ok := b.Tick(now); ok {
			out = append(out, m)
		}
		now++
	}
	return out, now
}
