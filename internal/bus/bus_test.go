package bus

import (
	"testing"
	"testing/quick"
)

func TestTransferCycles(t *testing.T) {
	c := Config{WidthBytes: 8, ClockDivisor: 10}
	cases := []struct {
		bytes int
		want  uint64
	}{
		{0, 10},  // minimum one beat
		{1, 10},  // partial beat rounds up
		{8, 10},  // exactly one beat
		{9, 20},  // spills into second beat
		{40, 50}, // header + 32B line = 5 beats
		{64, 80}, //
	}
	for _, cse := range cases {
		if got := c.TransferCycles(cse.bytes); got != cse.want {
			t.Errorf("TransferCycles(%d) = %d, want %d", cse.bytes, got, cse.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{WidthBytes: 0, ClockDivisor: 1}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if err := (Config{WidthBytes: 8, ClockDivisor: 0}).Validate(); err == nil {
		t.Error("zero divisor accepted")
	}
}

func TestKindString(t *testing.T) {
	if Broadcast.String() != "broadcast" || Request.String() != "request" || Response.String() != "response" {
		t.Error("kind names")
	}
}

func TestSingleTransfer(t *testing.T) {
	b := New(Config{WidthBytes: 8, ClockDivisor: 2}, 2)
	m := Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 5}
	b.Enqueue(m)

	// Before ReadyAt nothing happens.
	for now := uint64(0); now < 5; now++ {
		if _, ok := b.Tick(now); ok {
			t.Fatalf("delivery before ReadyAt at cycle %d", now)
		}
	}
	// Granted at 5; 40 wire bytes = 5 beats * 2 = 10 cycles; done at 15.
	var got Message
	var ok bool
	var when uint64
	for now := uint64(5); now <= 20 && !ok; now++ {
		got, ok = b.Tick(now)
		when = now
	}
	if !ok {
		t.Fatal("message never delivered")
	}
	if when != 15 {
		t.Fatalf("delivered at %d, want 15", when)
	}
	if got.Addr != 0x100 {
		t.Fatalf("delivered %+v", got)
	}
	if b.Pending() != 0 {
		t.Fatal("pending after delivery")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	b := New(Config{WidthBytes: 8, ClockDivisor: 1}, 3)
	// Each node enqueues two header-only messages, all ready at 0.
	for src := 0; src < 3; src++ {
		for k := 0; k < 2; k++ {
			b.Enqueue(Message{Kind: Request, Src: src, Seq: uint64(src*10 + k)})
		}
	}
	var order []int
	now := uint64(0)
	for b.Pending() > 0 {
		if m, ok := b.Tick(now); ok {
			order = append(order, m.Src)
		}
		now++
	}
	want := []int{0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("delivered %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", order, want)
		}
	}
}

func TestPerSourceFIFO(t *testing.T) {
	b := New(DefaultConfig(), 2)
	for i := 0; i < 5; i++ {
		b.Enqueue(Message{Kind: Broadcast, Src: 0, Seq: uint64(i), PayloadBytes: 32})
	}
	msgs, _ := b.Drain(0)
	for i, m := range msgs {
		if m.Seq != uint64(i) {
			t.Fatalf("per-source order violated: %v", msgs)
		}
	}
}

func TestStats(t *testing.T) {
	b := New(Config{WidthBytes: 8, ClockDivisor: 1}, 2)
	b.Enqueue(Message{Kind: Broadcast, Src: 0, PayloadBytes: 32})
	b.Enqueue(Message{Kind: Request, Src: 1})
	b.Drain(0)
	s := b.Stats()
	if s.Messages.Value() != 2 {
		t.Fatalf("messages = %d", s.Messages.Value())
	}
	if s.Bytes.Value() != 40+8 {
		t.Fatalf("bytes = %d", s.Bytes.Value())
	}
	if s.ByKindMsgs[Broadcast].Value() != 1 || s.ByKindMsgs[Request].Value() != 1 {
		t.Fatal("per-kind counts")
	}
	if s.BusyCycles.Value() != 5+1 {
		t.Fatalf("busy = %d", s.BusyCycles.Value())
	}
	if s.MaxQueueLen != 1 {
		t.Fatalf("max queue = %d", s.MaxQueueLen)
	}
}

func TestArbWaitAccounting(t *testing.T) {
	b := New(Config{WidthBytes: 8, ClockDivisor: 10}, 2)
	b.Enqueue(Message{Kind: Broadcast, Src: 0, PayloadBytes: 32})
	b.Enqueue(Message{Kind: Broadcast, Src: 1, PayloadBytes: 32})
	b.Drain(0)
	if b.Stats().ArbWaits.Value() != 1 {
		t.Fatalf("arb waits = %d, want 1 (second message waited)", b.Stats().ArbWaits.Value())
	}
}

func TestEnqueuePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad source accepted")
		}
	}()
	New(DefaultConfig(), 2).Enqueue(Message{Src: 7})
}

func TestWireBytes(t *testing.T) {
	if (Message{PayloadBytes: 32}).WireBytes() != 40 {
		t.Fatal("WireBytes wrong")
	}
	if (Message{}).WireBytes() != HeaderBytes {
		t.Fatal("bare message WireBytes wrong")
	}
}

// Property: all enqueued messages are eventually delivered exactly once,
// and the bus is never occupied by two messages at the same time.
func TestBusConservationQuick(t *testing.T) {
	f := func(specs []struct {
		Src     uint8
		Payload uint8
		Ready   uint8
	}) bool {
		if len(specs) > 40 {
			specs = specs[:40]
		}
		b := New(Config{WidthBytes: 4, ClockDivisor: 3}, 4)
		for i, s := range specs {
			b.Enqueue(Message{
				Kind:         Broadcast,
				Src:          int(s.Src % 4),
				PayloadBytes: int(s.Payload % 64),
				ReadyAt:      uint64(s.Ready),
				Seq:          uint64(i),
			})
		}
		msgs, _ := b.Drain(0)
		if len(msgs) != len(specs) {
			return false
		}
		seen := make(map[uint64]bool)
		for _, m := range msgs {
			if seen[m.Seq] {
				return false
			}
			seen[m.Seq] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: delivery time is never before ReadyAt + transfer time.
func TestDeliveryLowerBoundQuick(t *testing.T) {
	cfg := Config{WidthBytes: 8, ClockDivisor: 5}
	f := func(payload uint8, ready uint8) bool {
		b := New(cfg, 2)
		m := Message{Kind: Broadcast, Src: 0, PayloadBytes: int(payload), ReadyAt: uint64(ready)}
		b.Enqueue(m)
		now := uint64(0)
		for {
			if got, ok := b.Tick(now); ok {
				return now >= m.ReadyAt+cfg.TransferCycles(got.WireBytes())
			}
			now++
			if now > 10000 {
				return false
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
