package bus

import "testing"

// The DataPhase tests pin the phase semantics stall attribution relies
// on (see Network.DataPhase): where a load's data-bearing message sits,
// with the queued/blocked split decided by the binding constraint so
// the answer cannot flip inside a cycle-skipped stretch.

func TestDataMatch(t *testing.T) {
	const addr, dst = 0x100, 2
	cases := []struct {
		name string
		m    Message
		want bool
	}{
		{"broadcast from another node", Message{Kind: Broadcast, Src: 0, Addr: addr}, true},
		{"own broadcast", Message{Kind: Broadcast, Src: dst, Addr: addr}, false},
		{"response to dst", Message{Kind: Response, Src: 0, Dst: dst, Addr: addr, PayloadBytes: 32}, true},
		{"response to other node", Message{Kind: Response, Src: 0, Dst: 3, Addr: addr, PayloadBytes: 32}, false},
		{"own bare read request", Message{Kind: Request, Src: dst, Dst: 0, Addr: addr}, true},
		{"writeback (payload request)", Message{Kind: Request, Src: dst, Dst: 0, Addr: addr, PayloadBytes: 32}, false},
		{"wrong address", Message{Kind: Broadcast, Src: 0, Addr: addr + 8}, false},
		{"retry control traffic", Message{Kind: Response, Src: 0, Dst: dst, Addr: addr, Ctl: CtlRetryResp}, false},
	}
	for _, c := range cases {
		if got := dataMatch(c.m, addr, dst); got != c.want {
			t.Errorf("%s: dataMatch = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBusDataPhase(t *testing.T) {
	b := New(DefaultConfig(), 4)
	if p := b.DataPhase(0x100, 0, 0); p != PhaseAbsent {
		t.Fatalf("empty bus: phase = %v, want absent", p)
	}
	// A lone head waiting out its own broadcast-queue penalty is queued.
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x100, PayloadBytes: 32, ReadyAt: 10})
	b.Tick(0)
	if p := b.DataPhase(0x100, 0, 0); p != PhaseQueued {
		t.Fatalf("head before ReadyAt: phase = %v, want queued", p)
	}
	// The sender itself never matches its own broadcast.
	if p := b.DataPhase(0x100, 1, 0); p != PhaseAbsent {
		t.Fatalf("sender view: phase = %v, want absent", p)
	}
	// Once granted, the message occupies the wire.
	b.Tick(10)
	if p := b.DataPhase(0x100, 0, 10); p != PhaseTransfer {
		t.Fatalf("granted: phase = %v, want transfer", p)
	}
}

func TestBusDataPhaseBlockedVsQueued(t *testing.T) {
	b := New(DefaultConfig(), 4)
	// 32B payload + 8B header = 5 beats at divisor 2 = 10 cycles on the wire.
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x300, PayloadBytes: 32, ReadyAt: 0})
	b.Tick(0) // round-robin grants src 0
	if p := b.DataPhase(0x200, 1, 0); p != PhaseTransfer {
		t.Fatalf("granted message: phase = %v, want transfer", p)
	}
	// src 1's head is ready but lost arbitration: blocked behind traffic.
	if p := b.DataPhase(0x300, 0, 0); p != PhaseBlocked {
		t.Fatalf("ready head behind busy bus: phase = %v, want blocked", p)
	}
	// Deeper in a source queue: blocked regardless of its own readiness.
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x400, PayloadBytes: 32, ReadyAt: 0})
	if p := b.DataPhase(0x400, 0, 0); p != PhaseBlocked {
		t.Fatalf("second in queue: phase = %v, want blocked", p)
	}
	// A head whose ReadyAt outlasts the in-flight transfer (done at 10)
	// is bound by its own penalty, not the contention: queued.
	b.Enqueue(Message{Kind: Broadcast, Src: 2, Addr: 0x500, PayloadBytes: 32, ReadyAt: 1000})
	if p := b.DataPhase(0x500, 0, 0); p != PhaseQueued {
		t.Fatalf("head outlasting transfer: phase = %v, want queued", p)
	}
}

func TestRingDataPhase(t *testing.T) {
	r := NewRing(DefaultRingConfig(), 4)
	if p := r.DataPhase(0x100, 2, 0); p != PhaseAbsent {
		t.Fatalf("empty ring: phase = %v, want absent", p)
	}
	// Sitting uninjected with a free link: its own ReadyAt binds.
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 5})
	if p := r.DataPhase(0x100, 2, 0); p != PhaseQueued {
		t.Fatalf("uninjected, link free: phase = %v, want queued", p)
	}
	// First hop in progress (32B+8B = 5 beats * 2 + 1 hop = 11 cycles).
	r.Tick(5)
	if p := r.DataPhase(0x100, 2, 5); p != PhaseTransfer {
		t.Fatalf("hop in progress: phase = %v, want transfer", p)
	}
	// A second message wanting the same occupied outbound link waits on
	// contention, not on its own penalty: blocked.
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	r.Tick(6)
	if p := r.DataPhase(0x200, 2, 6); p != PhaseBlocked {
		t.Fatalf("busy link: phase = %v, want blocked", p)
	}
}

// TestDataPhaseZeroAllocs: attribution consults DataPhase every cycle a
// head-of-window load waits on the interconnect, so the query must not
// allocate.
func TestDataPhaseZeroAllocs(t *testing.T) {
	b := New(DefaultConfig(), 4)
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x300, PayloadBytes: 32, ReadyAt: 0})
	b.Tick(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		b.DataPhase(0x300, 0, 0)
	}); allocs != 0 {
		t.Fatalf("Bus.DataPhase allocated %.2f times per call", allocs)
	}
	r := NewRing(DefaultRingConfig(), 4)
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 0})
	r.Tick(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.DataPhase(0x100, 2, 0)
	}); allocs != 0 {
		t.Fatalf("Ring.DataPhase allocated %.2f times per call", allocs)
	}
}
