package bus

import "testing"

// The DataPhase tests pin the phase semantics stall attribution relies
// on (see Network.DataPhase): where a load's data-bearing message sits,
// with the queued/blocked split decided by the binding constraint so
// the answer cannot flip inside a cycle-skipped stretch.

func TestDataMatch(t *testing.T) {
	const addr, dst = 0x100, 2
	cases := []struct {
		name string
		m    Message
		want bool
	}{
		{"broadcast from another node", Message{Kind: Broadcast, Src: 0, Addr: addr}, true},
		{"own broadcast", Message{Kind: Broadcast, Src: dst, Addr: addr}, false},
		{"response to dst", Message{Kind: Response, Src: 0, Dst: dst, Addr: addr, PayloadBytes: 32}, true},
		{"response to other node", Message{Kind: Response, Src: 0, Dst: 3, Addr: addr, PayloadBytes: 32}, false},
		{"own bare read request", Message{Kind: Request, Src: dst, Dst: 0, Addr: addr}, true},
		{"writeback (payload request)", Message{Kind: Request, Src: dst, Dst: 0, Addr: addr, PayloadBytes: 32}, false},
		{"wrong address", Message{Kind: Broadcast, Src: 0, Addr: addr + 8}, false},
		{"retry control traffic", Message{Kind: Response, Src: 0, Dst: dst, Addr: addr, Ctl: CtlRetryResp}, false},
	}
	for _, c := range cases {
		if got := dataMatch(c.m, addr, dst); got != c.want {
			t.Errorf("%s: dataMatch = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBusDataPhase(t *testing.T) {
	b := New(DefaultConfig(), 4)
	if p := b.DataPhase(0x100, 0, 0); p != PhaseAbsent {
		t.Fatalf("empty bus: phase = %v, want absent", p)
	}
	// A lone head waiting out its own broadcast-queue penalty is queued.
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x100, PayloadBytes: 32, ReadyAt: 10})
	b.Tick(0)
	if p := b.DataPhase(0x100, 0, 0); p != PhaseQueued {
		t.Fatalf("head before ReadyAt: phase = %v, want queued", p)
	}
	// The sender itself never matches its own broadcast.
	if p := b.DataPhase(0x100, 1, 0); p != PhaseAbsent {
		t.Fatalf("sender view: phase = %v, want absent", p)
	}
	// Once granted, the message occupies the wire.
	b.Tick(10)
	if p := b.DataPhase(0x100, 0, 10); p != PhaseTransfer {
		t.Fatalf("granted: phase = %v, want transfer", p)
	}
}

func TestBusDataPhaseBlockedVsQueued(t *testing.T) {
	b := New(DefaultConfig(), 4)
	// 32B payload + 8B header = 5 beats at divisor 2 = 10 cycles on the wire.
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x300, PayloadBytes: 32, ReadyAt: 0})
	b.Tick(0) // round-robin grants src 0
	if p := b.DataPhase(0x200, 1, 0); p != PhaseTransfer {
		t.Fatalf("granted message: phase = %v, want transfer", p)
	}
	// src 1's head is ready but lost arbitration: blocked behind traffic.
	if p := b.DataPhase(0x300, 0, 0); p != PhaseBlocked {
		t.Fatalf("ready head behind busy bus: phase = %v, want blocked", p)
	}
	// Deeper in a source queue: blocked regardless of its own readiness.
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x400, PayloadBytes: 32, ReadyAt: 0})
	if p := b.DataPhase(0x400, 0, 0); p != PhaseBlocked {
		t.Fatalf("second in queue: phase = %v, want blocked", p)
	}
	// A head whose ReadyAt outlasts the in-flight transfer (done at 10)
	// is bound by its own penalty, not the contention: queued.
	b.Enqueue(Message{Kind: Broadcast, Src: 2, Addr: 0x500, PayloadBytes: 32, ReadyAt: 1000})
	if p := b.DataPhase(0x500, 0, 0); p != PhaseQueued {
		t.Fatalf("head outlasting transfer: phase = %v, want queued", p)
	}
}

func TestRingDataPhase(t *testing.T) {
	r := NewRing(DefaultRingConfig(), 4)
	if p := r.DataPhase(0x100, 2, 0); p != PhaseAbsent {
		t.Fatalf("empty ring: phase = %v, want absent", p)
	}
	// Sitting uninjected with a free link: its own ReadyAt binds.
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 5})
	if p := r.DataPhase(0x100, 2, 0); p != PhaseQueued {
		t.Fatalf("uninjected, link free: phase = %v, want queued", p)
	}
	// First hop in progress (32B+8B = 5 beats * 2 + 1 hop = 11 cycles).
	r.Tick(5)
	if p := r.DataPhase(0x100, 2, 5); p != PhaseTransfer {
		t.Fatalf("hop in progress: phase = %v, want transfer", p)
	}
	// A second message wanting the same occupied outbound link waits on
	// contention, not on its own penalty: blocked.
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	r.Tick(6)
	if p := r.DataPhase(0x200, 2, 6); p != PhaseBlocked {
		t.Fatalf("busy link: phase = %v, want blocked", p)
	}
}

// TestDataPhaseZeroAllocs: attribution consults DataPhase every cycle a
// head-of-window load waits on the interconnect, so the query must not
// allocate.
func TestDataPhaseZeroAllocs(t *testing.T) {
	b := New(DefaultConfig(), 4)
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x300, PayloadBytes: 32, ReadyAt: 0})
	b.Tick(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		b.DataPhase(0x300, 0, 0)
	}); allocs != 0 {
		t.Fatalf("Bus.DataPhase allocated %.2f times per call", allocs)
	}
	r := NewRing(DefaultRingConfig(), 4)
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 0})
	r.Tick(0)
	if allocs := testing.AllocsPerRun(1000, func() {
		r.DataPhase(0x100, 2, 0)
	}); allocs != 0 {
		t.Fatalf("Ring.DataPhase allocated %.2f times per call", allocs)
	}
}

// TestMeshDataPhase mirrors TestRingDataPhase on the multi-hop mesh:
// an uninjected tree whose own readiness binds is queued, hops on the
// wire are transfers, and a tree waiting out another message's link
// occupancy is blocked.
func TestMeshDataPhase(t *testing.T) {
	ms := NewMesh(DefaultLinkConfig(), 9)
	if p := ms.DataPhase(0x100, 8, 0); p != PhaseAbsent {
		t.Fatalf("empty mesh: phase = %v, want absent", p)
	}
	// Sitting uninjected with free links: its own ReadyAt binds.
	ms.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 5})
	if p := ms.DataPhase(0x100, 8, 0); p != PhaseQueued {
		t.Fatalf("uninjected, links free: phase = %v, want queued", p)
	}
	// First hops in progress (32B+8B = 5 beats * 2 + 1 hop = 11 cycles).
	ms.Tick(5)
	if p := ms.DataPhase(0x100, 8, 5); p != PhaseTransfer {
		t.Fatalf("hops in progress: phase = %v, want transfer", p)
	}
	// A second tree wanting the same occupied outbound links waits on
	// contention, not on its own penalty: blocked.
	ms.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32, ReadyAt: 0})
	ms.Tick(6)
	if p := ms.DataPhase(0x200, 8, 6); p != PhaseBlocked {
		t.Fatalf("busy links: phase = %v, want blocked", p)
	}
}

// TestMeshDataPhaseStableUnderSkip is the satellite pin for multi-hop
// attribution: two identical meshes run the same traffic, one ticked
// every cycle and one ticked only at NextDeliveryCycle boundaries with
// the frozen phase replicated across each certified no-op stretch. The
// per-cycle phase traces (observed at a far corner, so messages cross
// Queued -> Blocked -> Transfer over several hops) must be identical —
// phases cannot flip inside a skipped stretch.
func TestMeshDataPhaseStableUnderSkip(t *testing.T) {
	const addr, dst, until = 0x200, 8, 400
	build := func(wrap bool) *Mesh {
		var ms *Mesh
		if wrap {
			ms = NewTorus(DefaultLinkConfig(), 9)
		} else {
			ms = NewMesh(DefaultLinkConfig(), 9)
		}
		// Overlapping trees from the same corner create link contention;
		// staggered ReadyAt exercises the queued phase.
		ms.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 2})
		ms.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: addr, PayloadBytes: 32, ReadyAt: 9})
		ms.Enqueue(Message{Kind: Request, Src: 3, Dst: dst, Addr: addr, ReadyAt: 40})
		return ms
	}
	for _, wrap := range []bool{false, true} {
		polled := build(wrap)
		var pollTrace []MsgPhase
		for now := uint64(0); now <= until; now++ {
			polled.Tick(now)
			pollTrace = append(pollTrace, polled.DataPhase(addr, dst, now))
		}

		skipped := build(wrap)
		var skipTrace []MsgPhase
		for now := uint64(0); now <= until; {
			skipped.Tick(now)
			p := skipped.DataPhase(addr, dst, now)
			next := skipped.NextDeliveryCycle(now)
			if next == NoEvent || next > until+1 {
				next = until + 1
			}
			for ; now < next && now <= until; now++ {
				skipTrace = append(skipTrace, p)
			}
		}
		for c := range pollTrace {
			if pollTrace[c] != skipTrace[c] {
				t.Fatalf("wrap=%v: phase flipped inside a skipped stretch at cycle %d: poll %v, skip %v",
					wrap, c, pollTrace[c], skipTrace[c])
			}
		}
	}
}
