package bus

import "testing"

// PurgeSource on a bus removes only the dead node's unsent queue; a
// transfer already granted the bus completes.
func TestBusPurgeSource(t *testing.T) {
	b := New(Config{WidthBytes: 8, ClockDivisor: 1}, 3)
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32})
	b.Tick(0) // grants node 0's broadcast: it is now on the wire
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 32})
	b.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x300, PayloadBytes: 32})
	b.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x400, PayloadBytes: 32})

	if got := b.SourcePending(0); got != 3 {
		t.Fatalf("SourcePending(0) = %d, want 3 (2 queued + 1 in flight)", got)
	}
	if got := b.PurgeSource(0); got != 2 {
		t.Fatalf("PurgeSource(0) = %d, want 2 (the in-flight transfer survives)", got)
	}
	// Drain: the in-flight 0x100 and node 1's 0x400 still deliver.
	var addrs []uint64
	for now := uint64(1); now < 100 && b.Pending() > 0; now++ {
		if m, ok := b.Tick(now); ok {
			addrs = append(addrs, m.Addr)
		}
	}
	want := []uint64{0x100, 0x400}
	if len(addrs) != len(want) || addrs[0] != want[0] || addrs[1] != want[1] {
		t.Fatalf("delivered %#x, want %#x", addrs, want)
	}
}

// PurgeSource on a ring removes messages that have not started their
// first hop; travelling messages keep circulating to completion.
func TestRingPurgeSource(t *testing.T) {
	r := NewRing(RingConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 1}, 3)
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 8})
	r.Tick(0) // first hop starts: 0x100 is travelling
	r.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x200, PayloadBytes: 8, ReadyAt: 50})
	r.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x300, PayloadBytes: 8})

	if got := r.SourcePending(0); got != 2 {
		t.Fatalf("SourcePending(0) = %d, want 2", got)
	}
	if got := r.PurgeSource(0); got != 1 {
		t.Fatalf("PurgeSource(0) = %d, want 1 (travelling message survives)", got)
	}
	seen := map[uint64]int{}
	for now := uint64(1); now < 200 && r.Pending() > 0; now++ {
		for _, a := range r.Tick(now) {
			seen[a.Msg.Addr]++
		}
	}
	if seen[0x200] != 0 {
		t.Fatal("purged message 0x200 was delivered")
	}
	// Each surviving broadcast lands at both non-source nodes.
	if seen[0x100] != 2 || seen[0x300] != 2 {
		t.Fatalf("arrivals = %v, want 0x100:2 0x300:2", seen)
	}
}

func TestCtlZeroValueIsNone(t *testing.T) {
	var m Message
	if m.Ctl != CtlNone {
		t.Fatal("zero Message must carry CtlNone")
	}
}

// PurgeSource on a mesh removes messages whose broadcast trees have not
// touched the wire; trees with any hop already taken keep flowing to
// every destination — the routers forward them without the dead source.
func TestMeshPurgeSource(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		var ms *Mesh
		if wrap {
			ms = NewTorus(LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 1}, 9)
		} else {
			ms = NewMesh(LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 1}, 9)
		}
		ms.Enqueue(Message{Kind: Broadcast, Src: 4, Addr: 0x100, PayloadBytes: 8})
		ms.Tick(0) // first hops start: 0x100 is travelling
		ms.Enqueue(Message{Kind: Broadcast, Src: 4, Addr: 0x200, PayloadBytes: 8, ReadyAt: 50})
		ms.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x300, PayloadBytes: 8})

		if got := ms.SourcePending(4); got != 2 {
			t.Fatalf("wrap=%v: SourcePending(4) = %d, want 2", wrap, got)
		}
		if got := ms.PurgeSource(4); got != 1 {
			t.Fatalf("wrap=%v: PurgeSource(4) = %d, want 1 (travelling tree survives)", wrap, got)
		}
		if got := ms.SourcePending(4); got != 1 {
			t.Fatalf("wrap=%v: SourcePending(4) after purge = %d, want 1", wrap, got)
		}
		seen := map[uint64]int{}
		for now := uint64(1); now < 500 && ms.Pending() > 0; now++ {
			for _, a := range ms.Tick(now) {
				seen[a.Msg.Addr]++
			}
		}
		if seen[0x200] != 0 {
			t.Fatalf("wrap=%v: purged message 0x200 was delivered", wrap)
		}
		// Each surviving broadcast still lands at all 8 other nodes.
		if seen[0x100] != 8 || seen[0x300] != 8 {
			t.Fatalf("wrap=%v: arrivals = %v, want 0x100:8 0x300:8", wrap, seen)
		}
	}
}
