package bus

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/obs"
)

// Link directions. Every node owns four directed outgoing links,
// indexed node*4+dir; a mesh edge node simply never uses the links that
// would leave the grid, and a torus wraps them around.
const (
	dirXPlus = iota
	dirXMinus
	dirYPlus
	dirYMinus
	numDirs
)

// meshMsg is the per-message header shared by all of a message's tree
// branches: the payload, the liveness refcount, and the column spans the
// dimension-order broadcast tree spawns at every row node (all spawning
// nodes sit in the source's row, so the spans are fixed at enqueue).
type meshMsg struct {
	msg Message
	// branches counts live branches; the message leaves the network when
	// it reaches zero.
	branches int
	// injected marks that some branch has started its first hop (for the
	// one-shot bus.grant observation and for PurgeSource, which drops
	// only messages that have not touched the wire).
	injected bool
	// colPlus/colMinus are the +Y/-Y spans of the column branches a
	// broadcast spawns at each row node (zero for point-to-point).
	colPlus, colMinus int
}

// meshBranch is one branch of a message's route: a point-to-point
// message is a single branch, a broadcast is a dimension-order tree of
// row branches (which spawn column branches at every node they visit)
// plus the source's own column branches. Branches are stored by value;
// the shared header is one allocation per message, made in Enqueue (off
// the hot path).
type meshBranch struct {
	m *meshMsg
	// at is the node the branch sits at (or is travelling toward when
	// inFlight); the next hop uses link at*4+dir.
	at int
	// dir is the direction of the current or next hop. Broadcast
	// branches keep a fixed direction; point-to-point branches recompute
	// it at every hop start (dimension-order: X first, then Y).
	dir uint8
	// readyAt is the cycle the current hop completes (when inFlight) or
	// the earliest departure cycle (when sitting).
	readyAt uint64
	// inFlight marks a hop in progress whose arrival at `at` has not yet
	// been processed.
	inFlight bool
	// remaining counts hops left on this branch.
	remaining int
	// spawn marks a broadcast row branch, which spawns the header's
	// column branches at every node it delivers to.
	spawn bool
}

// Mesh is a 2D mesh (or, with wrap, torus) Network of W×H nodes with
// dimension-order routing. Node i sits at (i mod W, i div W). Each of
// the 4N directed links carries one message at a time, so aggregate
// bandwidth scales with node count while the bisection — unlike the
// ring's single-lap broadcast — keeps worst-case latency at O(W+H)
// rather than O(N). Broadcasts fan out on a dimension-order tree: row
// branches travel ±X from the source, and every row node (source
// included) sprouts ±Y column branches, delivering to each of the other
// N−1 nodes exactly once with no revisits. The torus halves both spans
// by travelling each direction only halfway around.
type Mesh struct {
	cfg  LinkConfig
	n    int
	w, h int
	// wrap distinguishes the torus (true) from the mesh.
	wrap bool
	// linkFree[node*4+dir] is the first cycle that directed link is idle.
	linkFree []uint64
	// flight and next are double-buffered branch sets: Tick drains one
	// and builds the other, because compacting in place would alias the
	// branches it spawns mid-scan.
	flight, next []meshBranch
	// liveMsgs counts messages with surviving branches (Pending) and
	// bySrc the same per source node (SourcePending).
	liveMsgs int
	bySrc    []int
	stats    Stats
	obs      obs.Observer
	// arrivals is the scratch buffer Tick returns; reused so the
	// per-cycle delivery path is allocation-free in steady state.
	arrivals []Arrival
	// hdrPool and hdrMap back the header values CopyStateFrom
	// materialises, reused across copies so prediction scratchpads stay
	// allocation-free in steady state. hdrMap is lookup-only — never
	// iterated — so map order cannot influence the copy. Unused outside
	// CopyStateFrom targets.
	hdrPool []meshMsg
	hdrMap  map[*meshMsg]*meshMsg
}

// meshDims factors n into the squarest W×H grid with W ≤ H: the largest
// divisor of n not exceeding √n. Prime n degenerates to a 1×n line
// (mesh) or ring (torus) — still correct, just without the bisection
// advantage, so experiment configs prefer composite node counts.
func meshDims(n int) (w, h int) {
	w = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return w, n / w
}

// NewMesh builds a 2D mesh of numNodes nodes on the squarest grid that
// factors numNodes. It panics on invalid configuration
// (experiment-setup error).
func NewMesh(cfg LinkConfig, numNodes int) *Mesh { return newMesh(cfg, numNodes, false) }

// NewTorus builds the wraparound variant of NewMesh.
func NewTorus(cfg LinkConfig, numNodes int) *Mesh { return newMesh(cfg, numNodes, true) }

func newMesh(cfg LinkConfig, numNodes int, wrap bool) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if numNodes <= 0 {
		panic("mesh: need at least one node")
	}
	w, h := meshDims(numNodes)
	return &Mesh{
		cfg: cfg, n: numNodes, w: w, h: h, wrap: wrap,
		linkFree: make([]uint64, numNodes*numDirs),
		bySrc:    make([]int, numNodes),
	}
}

// Config returns the link configuration.
func (ms *Mesh) Config() LinkConfig { return ms.cfg }

// Dims returns the grid dimensions (W, H).
func (ms *Mesh) Dims() (int, int) { return ms.w, ms.h }

// Wrap reports whether the grid is a torus.
func (ms *Mesh) Wrap() bool { return ms.wrap }

// NetStats implements Network.
func (ms *Mesh) NetStats() *Stats { return &ms.stats }

// SetObserver attaches an observer emitting a bus.grant event when a
// message's first branch starts its first hop (nil detaches).
func (ms *Mesh) SetObserver(o obs.Observer) { ms.obs = o }

// neighbor returns the node one hop from `at` in direction dir. Branch
// spans guarantee a mesh branch never walks off the grid; the torus
// wraps.
func (ms *Mesh) neighbor(at int, dir uint8) int {
	x, y := at%ms.w, at/ms.w
	switch dir {
	case dirXPlus:
		x++
		if x == ms.w {
			x = 0
		}
	case dirXMinus:
		x--
		if x < 0 {
			x = ms.w - 1
		}
	case dirYPlus:
		y++
		if y == ms.h {
			y = 0
		}
	case dirYMinus:
		y--
		if y < 0 {
			y = ms.h - 1
		}
	}
	return y*ms.w + x
}

// axisDist returns the hop count and direction to close a one-axis
// delta of `to-from` on an axis of `size` nodes: the absolute delta on
// a mesh, the shorter way around on a torus (ties go the plus
// direction).
func (ms *Mesh) axisDist(from, to, size int, plus, minus uint8) (int, uint8) {
	if from == to {
		return 0, plus
	}
	if !ms.wrap {
		if to > from {
			return to - from, plus
		}
		return from - to, minus
	}
	dp := (to - from + size) % size
	dm := size - dp
	if dp <= dm {
		return dp, plus
	}
	return dm, minus
}

// routeDir returns the dimension-order next-hop direction from `at`
// toward dst: X first, then Y.
func (ms *Mesh) routeDir(at, dst int) uint8 {
	dx, dirX := ms.axisDist(at%ms.w, dst%ms.w, ms.w, dirXPlus, dirXMinus)
	if dx != 0 {
		return dirX
	}
	_, dirY := ms.axisDist(at/ms.w, dst/ms.w, ms.h, dirYPlus, dirYMinus)
	return dirY
}

// hopCount returns the dimension-order route length from src to dst.
func (ms *Mesh) hopCount(src, dst int) int {
	dx, _ := ms.axisDist(src%ms.w, dst%ms.w, ms.w, dirXPlus, dirXMinus)
	dy, _ := ms.axisDist(src/ms.w, dst/ms.w, ms.h, dirYPlus, dirYMinus)
	return dx + dy
}

// spans returns the ± branch lengths that cover the size-1 other nodes
// of one axis: everything to each side on a mesh, half each way on a
// torus (the plus branch takes the extra node when size is odd... it
// takes floor(size/2), the minus branch the remaining ceil(size/2)-1).
func (ms *Mesh) spans(pos, size int) (plus, minus int) {
	if !ms.wrap {
		return size - 1 - pos, pos
	}
	return size / 2, size - 1 - size/2
}

// Enqueue implements Network. A point-to-point message becomes one
// dimension-order branch; a broadcast becomes its tree's initial
// branches at the source (±X row branches that will spawn columns, plus
// the source's own ±Y column branches).
func (ms *Mesh) Enqueue(m Message) {
	if m.Src < 0 || m.Src >= ms.n {
		panic(fmt.Sprintf("mesh: bad source %d", m.Src))
	}
	hdr := &meshMsg{msg: m}
	if m.Kind == Broadcast {
		rowPlus, rowMinus := ms.spans(m.Src%ms.w, ms.w)
		hdr.colPlus, hdr.colMinus = ms.spans(m.Src/ms.w, ms.h)
		if rowPlus > 0 {
			hdr.branches++
			ms.flight = append(ms.flight, meshBranch{m: hdr, at: m.Src, dir: dirXPlus, readyAt: m.ReadyAt, remaining: rowPlus, spawn: true})
		}
		if rowMinus > 0 {
			hdr.branches++
			ms.flight = append(ms.flight, meshBranch{m: hdr, at: m.Src, dir: dirXMinus, readyAt: m.ReadyAt, remaining: rowMinus, spawn: true})
		}
		ms.flight = spawnColumns(ms.flight, hdr, m.Src, m.ReadyAt)
	} else {
		if m.Dst == m.Src {
			panic(fmt.Sprintf("mesh: self-send from node %d", m.Src))
		}
		hdr.branches++
		ms.flight = append(ms.flight, meshBranch{m: hdr, at: m.Src, dir: ms.routeDir(m.Src, m.Dst), readyAt: m.ReadyAt, remaining: ms.hopCount(m.Src, m.Dst)})
	}
	if hdr.branches > 0 {
		ms.liveMsgs++
		ms.bySrc[m.Src]++
	}
	ms.stats.TotalQueued.Inc()
	ms.stats.Messages.Inc()
	ms.stats.Bytes.Add(uint64(m.WireBytes()))
	ms.stats.ByKindMsgs[m.Kind].Inc()
	ms.stats.ByKindBytes[m.Kind].Add(uint64(m.WireBytes()))
}

// spawnColumns appends a node's ±Y column branches of a broadcast tree
// to dst and returns it (the header carries the spans, identical for
// every row node). It takes the branch set explicitly because Tick
// spawns into its scan buffer, not ms.flight.
func spawnColumns(dst []meshBranch, hdr *meshMsg, at int, readyAt uint64) []meshBranch {
	if hdr.colPlus > 0 {
		hdr.branches++
		dst = append(dst, meshBranch{m: hdr, at: at, dir: dirYPlus, readyAt: readyAt, remaining: hdr.colPlus})
	}
	if hdr.colMinus > 0 {
		hdr.branches++
		dst = append(dst, meshBranch{m: hdr, at: at, dir: dirYMinus, readyAt: readyAt, remaining: hdr.colMinus})
	}
	return dst
}

// Pending implements Network: messages (not branches) still on the
// interconnect.
func (ms *Mesh) Pending() int { return ms.liveMsgs }

// SourcePending implements Network.
func (ms *Mesh) SourcePending(src int) int { return ms.bySrc[src] }

// PurgeSource implements Network: messages src submitted whose trees
// have not yet touched the wire die with the node (all their branches
// at once); messages with any hop already taken keep flowing — the
// remaining hops are driven by the routers, not the dead source.
func (ms *Mesh) PurgeSource(src int) int {
	n := 0
	kept := ms.flight[:0]
	for _, b := range ms.flight {
		if b.m.msg.Src == src && !b.m.injected {
			b.m.branches--
			if b.m.branches == 0 {
				n++
				ms.liveMsgs--
				ms.bySrc[src]--
			}
			continue
		}
		kept = append(kept, b)
	}
	// Clear dropped tails so stale *meshMsg pointers do not linger in
	// the backing array.
	for i := len(kept); i < len(ms.flight); i++ {
		ms.flight[i] = meshBranch{}
	}
	ms.flight = kept
	return n
}

// NextDeliveryCycle implements Network for the mesh: the minimum over
// all in-flight hops' completion cycles and all sitting branches'
// earliest possible departures (ready and link free). As on the ring
// the value is a safe lower bound — contention may push an actual
// departure later, and a Tick at the returned cycle then simply does
// nothing and the scheduler recomputes.
func (ms *Mesh) NextDeliveryCycle(now uint64) uint64 {
	next := uint64(NoEvent)
	for i := range ms.flight {
		b := &ms.flight[i]
		at := b.readyAt
		if !b.inFlight {
			if free := ms.linkFree[b.at*numDirs+int(b.dir)]; free > at {
				at = free
			}
		}
		if at <= now {
			at = now + 1
		}
		if at < next {
			next = at
		}
	}
	return next
}

// Lookahead implements Network. One header-only hop is the cheapest move
// any branch can make; a message's first delivery, and any link
// occupancy its branches impose on older traffic, is at least that far
// past its ReadyAt.
func (ms *Mesh) Lookahead() uint64 {
	la := ms.cfg.transferCycles(HeaderBytes)
	if la < 1 {
		la = 1
	}
	return la
}

// NewScratch implements Network.
func (ms *Mesh) NewScratch() Network { return newMesh(ms.cfg, ms.n, ms.wrap) }

// CopyStateFrom implements Network for the mesh: replicate link
// occupancy, counters, and every branch, cloning each distinct shared
// header exactly once so sibling branches of one broadcast keep sharing
// a refcounted header in the copy. Header values land in a reused pool
// whose capacity is ensured up front (distinct headers never outnumber
// branches), so the pointers handed out stay stable.
func (ms *Mesh) CopyStateFrom(src Network) {
	s := src.(*Mesh)
	copy(ms.linkFree, s.linkFree)
	copy(ms.bySrc, s.bySrc)
	ms.liveMsgs = s.liveMsgs
	if cap(ms.hdrPool) < len(s.flight) {
		ms.hdrPool = make([]meshMsg, 0, len(s.flight))
	}
	ms.hdrPool = ms.hdrPool[:0]
	if ms.hdrMap == nil {
		ms.hdrMap = make(map[*meshMsg]*meshMsg, len(s.flight))
	}
	clear(ms.hdrMap)
	for i := len(s.flight); i < len(ms.flight); i++ {
		ms.flight[i] = meshBranch{}
	}
	ms.flight = ms.flight[:0]
	for _, b := range s.flight {
		hdr, ok := ms.hdrMap[b.m]
		if !ok {
			ms.hdrPool = append(ms.hdrPool, *b.m)
			hdr = &ms.hdrPool[len(ms.hdrPool)-1]
			ms.hdrMap[b.m] = hdr
		}
		b.m = hdr
		ms.flight = append(ms.flight, b)
	}
}

// DataPhase implements Network for the mesh, mirroring the ring's
// binding-constraint semantics: any branch of a matching message on the
// wire is Transfer; a tree not yet injected whose own readiness is the
// binding constraint (its departure link already free by then) is
// Queued; anything else waits behind other traffic — Blocked. All
// inputs are frozen across any stretch NextDeliveryCycle certifies as
// no-ops, so attribution cannot flip inside a skipped stretch.
//
//dsvet:hotpath
func (ms *Mesh) DataPhase(addr uint64, dst int, now uint64) MsgPhase {
	best := PhaseAbsent
	for i := range ms.flight {
		b := &ms.flight[i]
		if !dataMatch(b.m.msg, addr, dst) {
			continue
		}
		var p MsgPhase
		switch {
		case b.inFlight:
			p = PhaseTransfer
		case !b.m.injected && ms.linkFree[b.at*numDirs+int(b.dir)] <= b.readyAt:
			p = PhaseQueued
		default:
			p = PhaseBlocked
		}
		if p > best {
			best = p
		}
	}
	return best
}

// Tick implements Network. Each branch alternates between completing a
// hop — delivering at the node it reaches and, on row branches,
// spawning that node's column branches — and starting its next hop as
// soon as its outgoing link is free. Spawned branches join the scan of
// the same Tick in deterministic append order, so a column branch may
// start its first hop the same cycle its row parent arrives (the router
// forwards and replicates in one cycle; HopCycles models the latency).
// Distinct links carry distinct branches concurrently. The returned
// slice is only valid until the next call.
//
//dsvet:hotpath
func (ms *Mesh) Tick(now uint64) []Arrival {
	out := ms.arrivals[:0]
	cur := ms.flight
	kept := ms.next[:0]
	for i := 0; i < len(cur); i++ {
		b := cur[i]
		// Complete an in-progress hop whose transfer has finished.
		if b.inFlight && b.readyAt <= now {
			b.inFlight = false
			b.remaining--
			if b.m.msg.Kind == Broadcast {
				// Tree branches deliver at every node they reach and
				// never revisit the source.
				out = append(out, Arrival{Node: b.at, Msg: b.m.msg})
				if b.spawn {
					// Row branch: sprout this row node's column branches.
					// They join cur and are scanned later in this same
					// Tick, in deterministic append order.
					cur = spawnColumns(cur, b.m, b.at, now)
				}
			} else if b.remaining == 0 {
				out = append(out, Arrival{Node: b.at, Msg: b.m.msg})
			}
			if b.remaining == 0 {
				b.m.branches--
				if b.m.branches == 0 {
					ms.liveMsgs--
					ms.bySrc[b.m.msg.Src]--
				}
				continue // branch done
			}
			if b.m.msg.Kind != Broadcast {
				// Dimension-order: recompute the direction at each hop.
				b.dir = ms.routeDir(b.at, b.m.msg.Dst)
			}
		}
		// Start the next hop if sitting, ready, and the link is free.
		if !b.inFlight && b.readyAt <= now {
			if link := b.at*numDirs + int(b.dir); ms.linkFree[link] <= now {
				occ := ms.cfg.transferCycles(b.m.msg.WireBytes())
				ms.linkFree[link] = now + occ
				ms.stats.BusyCycles.Add(occ)
				if !b.m.injected {
					b.m.injected = true
					if ms.obs != nil {
						ms.obs.Event(obs.Event{
							Cycle: now, Node: b.m.msg.Src, Kind: obs.EvBusGrant,
							Addr: b.m.msg.Addr, Arg: uint64(b.m.msg.WireBytes()),
						})
					}
				}
				b.at = ms.neighbor(b.at, b.dir)
				b.readyAt = now + occ
				b.inFlight = true
			}
		}
		kept = append(kept, b)
	}
	// Swap the double buffers; clear the drained one's tail so stale
	// headers are collectable.
	for i := range cur {
		cur[i] = meshBranch{}
	}
	ms.next = cur[:0]
	ms.flight = kept
	ms.arrivals = out
	return out
}
