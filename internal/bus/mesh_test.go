package bus

import (
	"testing"
	"testing/quick"
)

func runMesh(ms *Mesh, until uint64) map[uint64][]Arrival {
	out := map[uint64][]Arrival{}
	for now := uint64(0); now <= until && (ms.Pending() > 0 || now == 0); now++ {
		// Tick's slice is only valid until the next call: copy to retain.
		if arr := ms.Tick(now); len(arr) > 0 {
			out[now] = append([]Arrival(nil), arr...)
		}
	}
	return out
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{9, 3, 3}, {12, 3, 4}, {16, 4, 4}, {32, 4, 8}, {64, 8, 8},
		{128, 8, 16}, {256, 16, 16}, {7, 1, 7},
	}
	for _, c := range cases {
		if w, h := meshDims(c.n); w != c.w || h != c.h {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

// TestMeshBroadcastTree pins the dimension-order broadcast tree on a
// 3x3 mesh: every node but the sender hears the message exactly once,
// and arrival time is proportional to hop distance from the center.
func TestMeshBroadcastTree(t *testing.T) {
	ms := NewMesh(LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}, 9)
	if w, h := ms.Dims(); w != 3 || h != 3 {
		t.Fatalf("dims = %dx%d", w, h)
	}
	// Node 4 is the center of the grid: ids are y*3+x.
	ms.Enqueue(Message{Kind: Broadcast, Src: 4, Addr: 0x100, PayloadBytes: 8})
	byCycle := runMesh(ms, 100)

	seen := map[int]uint64{}
	for cyc, arrs := range byCycle {
		for _, a := range arrs {
			if _, dup := seen[a.Node]; dup {
				t.Fatalf("node %d heard the broadcast twice", a.Node)
			}
			seen[a.Node] = cyc
		}
	}
	if len(seen) != 8 {
		t.Fatalf("broadcast reached %d nodes, want 8: %v", len(seen), seen)
	}
	if _, hitSender := seen[4]; hitSender {
		t.Fatal("broadcast delivered to its sender")
	}
	// 16 wire bytes / 8 wide at divisor 1, zero hop latency: 2 cycles
	// per hop. Direct neighbors (3, 5, 1, 7) hear it at 2; the corners
	// (two hops: row then column) at 4.
	for _, n := range []int{1, 3, 5, 7} {
		if seen[n] != 2 {
			t.Errorf("neighbor %d heard at %d, want 2", n, seen[n])
		}
	}
	for _, n := range []int{0, 2, 6, 8} {
		if seen[n] != 4 {
			t.Errorf("corner %d heard at %d, want 4", n, seen[n])
		}
	}
	if ms.Pending() != 0 {
		t.Fatal("broadcast tree never drained")
	}
}

// TestMeshPointToPointDOR pins dimension-order routing: X first, then
// Y, delivering only at the destination.
func TestMeshPointToPointDOR(t *testing.T) {
	ms := NewMesh(LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}, 9)
	ms.Enqueue(Message{Kind: Request, Src: 0, Dst: 8, Addr: 0x40, PayloadBytes: 8})
	byCycle := runMesh(ms, 100)
	var arrivals []Arrival
	var at uint64
	for cyc, a := range byCycle {
		arrivals = append(arrivals, a...)
		at = cyc
	}
	if len(arrivals) != 1 || arrivals[0].Node != 8 {
		t.Fatalf("arrivals = %+v, want exactly one at node 8", arrivals)
	}
	// Four hops (0->1->2->5->8) at 2 cycles each, back to back.
	if at != 8 {
		t.Fatalf("arrived at cycle %d, want 8", at)
	}
}

// TestTorusWrapsShorterWay: on a 4x4 torus, 0 -> 3 goes one hop -X
// around the seam instead of three hops +X.
func TestTorusWrapsShorterWay(t *testing.T) {
	cfg := LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}
	tor := NewTorus(cfg, 16)
	tor.Enqueue(Message{Kind: Request, Src: 0, Dst: 3, Addr: 0x40, PayloadBytes: 8})
	tByCycle := runMesh(tor, 100)

	mesh := NewMesh(cfg, 16)
	mesh.Enqueue(Message{Kind: Request, Src: 0, Dst: 3, Addr: 0x40, PayloadBytes: 8})
	mByCycle := runMesh(mesh, 100)

	cycleOf := func(byCycle map[uint64][]Arrival) uint64 {
		for cyc, arrs := range byCycle {
			if len(arrs) == 1 && arrs[0].Node == 3 {
				return cyc
			}
		}
		t.Fatalf("no single delivery at node 3: %v", byCycle)
		return 0
	}
	if got, want := cycleOf(tByCycle), uint64(2); got != want {
		t.Errorf("torus delivery at %d, want %d (one wrap hop)", got, want)
	}
	if got, want := cycleOf(mByCycle), uint64(6); got != want {
		t.Errorf("mesh delivery at %d, want %d (three hops)", got, want)
	}
}

// TestTorusBroadcastHalvesSpan: the torus tree travels each direction
// only halfway around, so the worst-case depth is (W+H)/2 hops instead
// of W+H-2.
func TestTorusBroadcastHalvesSpan(t *testing.T) {
	cfg := LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}
	for _, tc := range []struct {
		name  string
		build func() *Mesh
		worst uint64 // latest arrival cycle at 2 cycles/hop
	}{
		{"mesh", func() *Mesh { return NewMesh(cfg, 16) }, 12},  // 3+3 hops from corner 0
		{"torus", func() *Mesh { return NewTorus(cfg, 16) }, 8}, // 2+2 hops
	} {
		ms := tc.build()
		ms.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 8})
		byCycle := runMesh(ms, 200)
		seen := map[int]uint64{}
		last := uint64(0)
		for cyc, arrs := range byCycle {
			for _, a := range arrs {
				if _, dup := seen[a.Node]; dup {
					t.Fatalf("%s: node %d heard twice", tc.name, a.Node)
				}
				seen[a.Node] = cyc
				if cyc > last {
					last = cyc
				}
			}
		}
		if len(seen) != 15 {
			t.Fatalf("%s: reached %d nodes, want 15", tc.name, len(seen))
		}
		if last != tc.worst {
			t.Errorf("%s: slowest arrival at %d, want %d", tc.name, last, tc.worst)
		}
	}
}

func TestMeshLinksCarryConcurrently(t *testing.T) {
	// Disjoint links must not serialize: on a 2x2 mesh, 0->1 uses node
	// 0's +X link and 2->3 uses node 2's +X link.
	cfg := LinkConfig{WidthBytes: 8, ClockDivisor: 4, HopCycles: 0}
	ms := NewMesh(cfg, 4)
	ms.Enqueue(Message{Kind: Request, Src: 0, Dst: 1})
	ms.Enqueue(Message{Kind: Request, Src: 2, Dst: 3})
	byCycle := runMesh(ms, 100)
	var cycles []uint64
	for cyc, arrs := range byCycle {
		for range arrs {
			cycles = append(cycles, cyc)
		}
	}
	if len(cycles) != 2 {
		t.Fatalf("arrivals = %v", byCycle)
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("disjoint links serialized: %v", cycles)
	}

	// The same outgoing link must serialize.
	ms2 := NewMesh(cfg, 4)
	ms2.Enqueue(Message{Kind: Request, Src: 0, Dst: 1})
	ms2.Enqueue(Message{Kind: Request, Src: 0, Dst: 1})
	byCycle = runMesh(ms2, 200)
	cycles = cycles[:0]
	for cyc, arrs := range byCycle {
		for range arrs {
			cycles = append(cycles, cyc)
		}
	}
	if len(cycles) != 2 || cycles[0] == cycles[1] {
		t.Fatalf("same-link messages did not serialize: %v", cycles)
	}
}

func TestMeshHonorsReadyAt(t *testing.T) {
	ms := NewMesh(LinkConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}, 4)
	ms.Enqueue(Message{Kind: Broadcast, Src: 0, ReadyAt: 50})
	byCycle := runMesh(ms, 200)
	for cyc := range byCycle {
		if cyc < 50 {
			t.Fatalf("delivery at %d before ReadyAt", cyc)
		}
	}
	if len(byCycle) == 0 {
		t.Fatal("message never delivered")
	}
}

func TestMeshValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad nodes", func() { NewMesh(DefaultLinkConfig(), 0) })
	mustPanic("bad config", func() { NewMesh(LinkConfig{}, 4) })
	mustPanic("bad src", func() { NewMesh(DefaultLinkConfig(), 4).Enqueue(Message{Src: 9}) })
	mustPanic("self-send", func() {
		NewMesh(DefaultLinkConfig(), 4).Enqueue(Message{Kind: Request, Src: 1, Dst: 1})
	})
}

// TestMeshPendingCountsMessages: Pending and SourcePending count
// messages, not tree branches, so the machine's drain checks and the
// fault layer's diagnostics mean the same thing on every topology.
func TestMeshPendingCountsMessages(t *testing.T) {
	ms := NewMesh(DefaultLinkConfig(), 9)
	ms.Enqueue(Message{Kind: Broadcast, Src: 4, Addr: 0x100, PayloadBytes: 8})
	ms.Enqueue(Message{Kind: Broadcast, Src: 4, Addr: 0x200, PayloadBytes: 8})
	ms.Enqueue(Message{Kind: Request, Src: 0, Dst: 8, Addr: 0x300})
	if got := ms.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	if got := ms.SourcePending(4); got != 2 {
		t.Fatalf("SourcePending(4) = %d, want 2", got)
	}
	if got := ms.SourcePending(0); got != 1 {
		t.Fatalf("SourcePending(0) = %d, want 1", got)
	}
	for now := uint64(0); ms.Pending() > 0; now++ {
		ms.Tick(now)
		if now > 1000 {
			t.Fatal("mesh stuck")
		}
	}
	if got := ms.SourcePending(4) + ms.SourcePending(0); got != 0 {
		t.Fatalf("SourcePending after drain = %d, want 0", got)
	}
}

// Property: on meshes and tori of assorted sizes, every broadcast is
// delivered to exactly n-1 nodes, every point-to-point message exactly
// once at its destination, and the network always drains.
func TestMeshConservationQuick(t *testing.T) {
	f := func(srcs []uint8, dsts []uint8, payload uint8, nSel, wrapSel uint8) bool {
		if len(srcs) > 24 {
			srcs = srcs[:24]
		}
		sizes := []int{2, 4, 6, 9, 12, 16}
		n := sizes[int(nSel)%len(sizes)]
		cfg := LinkConfig{WidthBytes: 4, ClockDivisor: 2, HopCycles: 1}
		var ms *Mesh
		if wrapSel%2 == 0 {
			ms = NewMesh(cfg, n)
		} else {
			ms = NewTorus(cfg, n)
		}
		want := map[uint64]int{}
		for i, s := range srcs {
			src := int(s) % n
			m := Message{Kind: Broadcast, Src: src, Seq: uint64(i), PayloadBytes: int(payload % 64)}
			want[uint64(i)] = n - 1
			if i < len(dsts) {
				if dst := int(dsts[i]) % n; dst != src {
					m = Message{Kind: Request, Src: src, Dst: dst, Seq: uint64(i)}
					want[uint64(i)] = 1
				}
			}
			ms.Enqueue(m)
		}
		deliveries := map[uint64]int{}
		for now := uint64(0); ms.Pending() > 0; now++ {
			for _, a := range ms.Tick(now) {
				deliveries[a.Msg.Seq]++
			}
			if now > 1_000_000 {
				return false // stuck
			}
		}
		for seq, w := range want {
			if deliveries[seq] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMeshNextDeliveryCertifiesNoOps: every Tick strictly before the
// cycle NextDeliveryCycle returns must change nothing — the property
// the machine scheduler's cycle skipping rests on.
func TestMeshNextDeliveryCertifiesNoOps(t *testing.T) {
	for _, wrap := range []bool{false, true} {
		var ms *Mesh
		if wrap {
			ms = NewTorus(DefaultLinkConfig(), 9)
		} else {
			ms = NewMesh(DefaultLinkConfig(), 9)
		}
		ms.Enqueue(Message{Kind: Broadcast, Src: 0, Addr: 0x100, PayloadBytes: 32, ReadyAt: 7})
		ms.Enqueue(Message{Kind: Broadcast, Src: 4, Addr: 0x200, PayloadBytes: 8, ReadyAt: 31})
		ms.Enqueue(Message{Kind: Request, Src: 2, Dst: 6, Addr: 0x300, ReadyAt: 3})
		deliveries := 0
		now := uint64(0)
		for ms.Pending() > 0 {
			if arr := ms.Tick(now); len(arr) > 0 {
				deliveries += len(arr)
			}
			next := ms.NextDeliveryCycle(now)
			if next == NoEvent {
				break
			}
			if next <= now {
				t.Fatalf("wrap=%v: NextDeliveryCycle(%d) = %d, not in the future", wrap, now, next)
			}
			// Ticks strictly before `next` must be no-ops.
			for c := now + 1; c < next; c++ {
				if arr := ms.Tick(c); len(arr) != 0 {
					t.Fatalf("wrap=%v: certified no-op cycle %d delivered %v", wrap, c, arr)
				}
			}
			now = next
			if now > 100_000 {
				t.Fatal("mesh stuck")
			}
		}
		if deliveries != 8+8+1 {
			t.Fatalf("wrap=%v: %d deliveries, want 17", wrap, deliveries)
		}
	}
}
