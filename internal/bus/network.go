package bus

import "github.com/wisc-arch/datascalar/internal/obs"

// Arrival is one message landing at one node. Broadcast messages produce
// one arrival per receiving node; on a bus they all land in the same
// cycle, on a ring they land hop by hop.
type Arrival struct {
	Node int
	Msg  Message
}

// Network abstracts the global interconnect so machines can run over a
// bus or a ring (the paper discusses both: buses make broadcasts free,
// rings offer higher performance with every node observing passing
// messages).
type Network interface {
	// Enqueue submits a message from its source chip.
	Enqueue(m Message)
	// Tick advances to CPU cycle now (strictly increasing) and returns
	// the arrivals completing this cycle.
	Tick(now uint64) []Arrival
	// Pending returns the number of undelivered messages.
	Pending() int
	// SourcePending returns the number of undelivered messages node src
	// currently has on the interconnect (diagnostics; never affects
	// timing).
	SourcePending(src int) int
	// PurgeSource drops every message node src has submitted but not yet
	// begun transferring, returning the count. The fault layer calls it
	// at permanent node death: the dead chip's unsent traffic dies with
	// it, while transfers already on the wire complete.
	PurgeSource(src int) int
	// NextDeliveryCycle returns the earliest future cycle at which Tick
	// could deliver a message or otherwise change interconnect state
	// (NoEvent when empty). Every Tick at a cycle strictly before the
	// returned value is guaranteed to be a no-op, which is what lets the
	// machine scheduler skip idle cycles without altering timing. Call
	// only after Tick(now) has run for the current cycle.
	NextDeliveryCycle(now uint64) uint64
	// NetStats returns the shared traffic counters.
	NetStats() *Stats
	// SetObserver attaches an observability sink for transfer-grant
	// events (nil detaches; observation never affects timing).
	SetObserver(o obs.Observer)
}

// numNodes returns the node count the bus was built for.
func (b *Bus) numNodes() int { return len(b.queues) }

// NetStats implements Network.
func (b *Bus) NetStats() *Stats { return &b.stats }

// TickArrivals implements the Network Tick contract for the bus: a
// completing broadcast arrives at every node but the sender in the same
// cycle (every bus transaction is an implicit broadcast); point-to-point
// messages arrive at their destination. The returned slice is only valid
// until the next call.
func (b *Bus) TickArrivals(now uint64) []Arrival {
	msg, ok := b.Tick(now)
	if !ok {
		return nil
	}
	out := b.arrivals[:0]
	if msg.Kind == Broadcast {
		for n := 0; n < b.numNodes(); n++ {
			if n != msg.Src {
				out = append(out, Arrival{Node: n, Msg: msg})
			}
		}
	} else {
		out = append(out, Arrival{Node: msg.Dst, Msg: msg})
	}
	b.arrivals = out
	return out
}

// busNetwork adapts Bus to the Network interface.
type busNetwork struct{ *Bus }

// NewNetwork builds a bus-backed Network.
func NewNetwork(cfg Config, numNodes int) Network {
	return busNetwork{New(cfg, numNodes)}
}

// Tick implements Network.
func (b busNetwork) Tick(now uint64) []Arrival { return b.TickArrivals(now) }
