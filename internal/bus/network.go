package bus

import "github.com/wisc-arch/datascalar/internal/obs"

// Arrival is one message landing at one node. Broadcast messages produce
// one arrival per receiving node; on a bus they all land in the same
// cycle, on a ring they land hop by hop.
type Arrival struct {
	Node int
	Msg  Message
}

// Network abstracts the global interconnect so machines can run over a
// bus or a ring (the paper discusses both: buses make broadcasts free,
// rings offer higher performance with every node observing passing
// messages).
type Network interface {
	// Enqueue submits a message from its source chip.
	Enqueue(m Message)
	// Tick advances to CPU cycle now (strictly increasing) and returns
	// the arrivals completing this cycle.
	Tick(now uint64) []Arrival
	// Pending returns the number of undelivered messages.
	Pending() int
	// SourcePending returns the number of undelivered messages node src
	// currently has on the interconnect (diagnostics; never affects
	// timing).
	SourcePending(src int) int
	// PurgeSource drops every message node src has submitted but not yet
	// begun transferring, returning the count. The fault layer calls it
	// at permanent node death: the dead chip's unsent traffic dies with
	// it, while transfers already on the wire complete.
	PurgeSource(src int) int
	// NextDeliveryCycle returns the earliest future cycle at which Tick
	// could deliver a message or otherwise change interconnect state
	// (NoEvent when empty). Every Tick at a cycle strictly before the
	// returned value is guaranteed to be a no-op, which is what lets the
	// machine scheduler skip idle cycles without altering timing. Call
	// only after Tick(now) has run for the current cycle.
	NextDeliveryCycle(now uint64) uint64
	// NetStats returns the shared traffic counters.
	NetStats() *Stats
	// SetObserver attaches an observability sink for transfer-grant
	// events (nil detaches; observation never affects timing).
	SetObserver(o obs.Observer)
	// DataPhase reports where the data-bearing message that would satisfy
	// a load of addr at node dst currently sits (PhaseAbsent when no such
	// message is on the interconnect). Purely observational — stall
	// attribution uses it to split waits into producer-side latency,
	// interconnect contention, and wire serialization. Call only after
	// Tick(now) has run for the current cycle; the result is stable across
	// any stretch of cycles NextDeliveryCycle certifies as no-ops, which
	// is what keeps attribution identical under cycle skipping.
	DataPhase(addr uint64, dst int, now uint64) MsgPhase
	// Lookahead returns the minimum wire occupancy of any message: a
	// lower bound, in cycles, on the time between a message becoming
	// eligible to move (its ReadyAt) and the earliest cycle its presence
	// can change any delivery the network makes — its own first delivery
	// takes at least one full transfer, and any older message it displaces
	// is pushed behind that same occupancy. This is the conservative
	// lookahead that makes parallel intra-run simulation sound: deliveries
	// before ReadyAt+Lookahead() are independent of the message entirely.
	// Always at least 1.
	Lookahead() uint64
	// NewScratch returns a fresh, observer-free network of identical
	// shape and configuration, for use as a prediction scratchpad: load it
	// with CopyStateFrom, then Tick it ahead of the real network to learn
	// future deliveries without disturbing real state, stats, or
	// observers.
	NewScratch() Network
	// CopyStateFrom overwrites this network's in-flight message state
	// with src's (which must be the same concrete type and shape).
	// Statistics and observers are deliberately not copied — the copy
	// exists to predict deliveries, not to account for them. Internal
	// storage is reused, so repeated copies are allocation-free in steady
	// state.
	CopyStateFrom(src Network)
}

// MsgPhase classifies the progress of a pending data message for stall
// attribution. The set is closed: dsvet requires every switch over
// MsgPhase to cover all phases or panic in its default.
//
//dsvet:enum
type MsgPhase uint8

const (
	// PhaseAbsent: no matching message is on the interconnect — the
	// producer has not pushed (or even been asked for) the data yet.
	PhaseAbsent MsgPhase = iota
	// PhaseQueued: the message is submitted but its own network-interface
	// or broadcast-queue penalty is the binding constraint.
	PhaseQueued
	// PhaseBlocked: the message is eligible to move but waits behind
	// other traffic (bus arbitration, a busy ring link, or deeper in its
	// source queue).
	PhaseBlocked
	// PhaseTransfer: the message occupies the wire right now.
	PhaseTransfer
)

// dataMatch reports whether m is a data-bearing message that will
// satisfy a load of addr at node dst: an ESP broadcast from another
// node, a point-to-point response to dst, or dst's own outstanding bare
// read request (the request leg of a traditional miss; payload-carrying
// requests are writebacks nobody waits on). Resilience-layer control
// traffic is excluded — retry waits are classified from BSHR state
// before the interconnect is consulted.
func dataMatch(m Message, addr uint64, dst int) bool {
	if m.Ctl != CtlNone || m.Addr != addr {
		return false
	}
	switch m.Kind {
	case Broadcast:
		return m.Src != dst
	case Response:
		return m.Dst == dst
	case Request:
		return m.PayloadBytes == 0 && m.Src == dst
	}
	return false
}

// DataPhase implements Network for the bus. The queued-versus-blocked
// split uses the binding constraint rather than the current cycle where
// possible (ReadyAt versus the in-flight transfer's completion), so the
// answer cannot flip inside a skipped stretch.
//
// DataPhase runs on every stall-classification query; it is
// allocation-free (see the zero-alloc guard in dataphase_test.go).
//
//dsvet:hotpath
func (b *Bus) DataPhase(addr uint64, dst int, now uint64) MsgPhase {
	if b.busy && dataMatch(b.current, addr, dst) {
		return PhaseTransfer
	}
	best := PhaseAbsent
	for _, q := range b.queues {
		for i, m := range q {
			if !dataMatch(m, addr, dst) {
				continue
			}
			p := PhaseBlocked
			if i == 0 {
				// Head of its source queue: its own ReadyAt penalty binds
				// when it outlasts whatever currently occupies the bus.
				horizon := now
				if b.busy && b.doneAt > horizon {
					horizon = b.doneAt
				}
				if m.ReadyAt > horizon {
					p = PhaseQueued
				}
			}
			if p > best {
				best = p
			}
		}
	}
	return best
}

// numNodes returns the node count the bus was built for.
func (b *Bus) numNodes() int { return len(b.queues) }

// NetStats implements Network.
func (b *Bus) NetStats() *Stats { return &b.stats }

// TickArrivals implements the Network Tick contract for the bus: a
// completing broadcast arrives at every node but the sender in the same
// cycle (every bus transaction is an implicit broadcast); point-to-point
// messages arrive at their destination. The returned slice is only valid
// until the next call.
func (b *Bus) TickArrivals(now uint64) []Arrival {
	msg, ok := b.Tick(now)
	if !ok {
		return nil
	}
	out := b.arrivals[:0]
	if msg.Kind == Broadcast {
		for n := 0; n < b.numNodes(); n++ {
			if n != msg.Src {
				out = append(out, Arrival{Node: n, Msg: msg})
			}
		}
	} else {
		out = append(out, Arrival{Node: msg.Dst, Msg: msg})
	}
	b.arrivals = out
	return out
}

// Lookahead implements Network. The cheapest message a bus can carry is
// header-only, and even that occupies the wire for its full transfer
// time before delivering — so no newly enqueued message can affect any
// delivery sooner than one header transfer after it becomes eligible.
// Older queued traffic is never displaced earlier by a new arrival
// (source queues are FIFO and arbitration is round-robin), so this bound
// covers perturbation as well as first delivery.
func (b *Bus) Lookahead() uint64 {
	la := b.cfg.TransferCycles(HeaderBytes)
	if la < 1 {
		la = 1
	}
	return la
}

// CopyStateFrom implements Network for the bus: replicate queues and the
// in-flight transfer, reusing queue storage. Stats and observer stay
// untouched.
func (b *Bus) CopyStateFrom(src Network) {
	s := src.(busNetwork).Bus
	for i := range b.queues {
		b.queues[i] = append(b.queues[i][:0], s.queues[i]...)
	}
	b.rrNext = s.rrNext
	b.busy = s.busy
	b.doneAt = s.doneAt
	b.current = s.current
}

// busNetwork adapts Bus to the Network interface.
type busNetwork struct{ *Bus }

// NewNetwork builds a bus-backed Network.
func NewNetwork(cfg Config, numNodes int) Network {
	return busNetwork{New(cfg, numNodes)}
}

// Tick implements Network.
func (b busNetwork) Tick(now uint64) []Arrival { return b.TickArrivals(now) }

// NewScratch implements Network.
func (b busNetwork) NewScratch() Network { return busNetwork{New(b.cfg, len(b.queues))} }
