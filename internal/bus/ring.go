package bus

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/obs"
)

// LinkConfig describes one point-to-point link of a multi-hop
// interconnect — the unidirectional ring the paper envisions for
// high-performance DataScalar systems ("on a ring, operations are
// observed by all nodes if the sender is responsible for removing its
// own message" — the IEEE/ANSI SCI style), and the 2D mesh and torus
// that extend the same link model to hundreds of nodes.
type LinkConfig struct {
	// WidthBytes is each link's datapath width.
	WidthBytes int
	// ClockDivisor is CPU cycles per link cycle.
	ClockDivisor uint64
	// HopCycles is the per-node forwarding latency added at each hop.
	HopCycles uint64
}

// RingConfig is the historical name for LinkConfig, kept because the
// public facade exported it before the mesh and torus shared the type.
type RingConfig = LinkConfig

// DefaultLinkConfig returns links matching the default bus width at the
// same clock with a one-cycle hop latency.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{WidthBytes: 8, ClockDivisor: 2, HopCycles: 1}
}

// DefaultRingConfig returns DefaultLinkConfig under its historical name.
func DefaultRingConfig() RingConfig { return DefaultLinkConfig() }

// Validate checks structural soundness.
func (c LinkConfig) Validate() error {
	if c.WidthBytes <= 0 {
		return fmt.Errorf("link: width must be positive")
	}
	if c.ClockDivisor == 0 {
		return fmt.Errorf("link: clock divisor must be positive")
	}
	return nil
}

// transferCycles is the link occupancy for one message.
func (c LinkConfig) transferCycles(wireBytes int) uint64 {
	beats := (wireBytes + c.WidthBytes - 1) / c.WidthBytes
	if beats == 0 {
		beats = 1
	}
	return uint64(beats)*c.ClockDivisor + c.HopCycles
}

// ringMsg is one message in flight on the ring.
type ringMsg struct {
	msg Message
	// at is the node the message sits at (or is travelling toward when
	// inFlight); next hop uses link `at`.
	at int
	// readyAt is the cycle the current hop completes (when inFlight) or
	// the earliest departure cycle (when sitting).
	readyAt uint64
	// inFlight marks a hop in progress whose arrival at `at` has not yet
	// been processed.
	inFlight bool
	// injected marks that the message has started its first hop (for the
	// one-shot bus.grant observation; never read by the timing model).
	injected bool
	// remaining counts hops left before removal: a broadcast circles
	// back to its sender; a point-to-point message stops at its
	// destination.
	remaining int
}

// Ring is a unidirectional ring Network. Each link carries at most one
// message at a time; messages advance hop by hop, broadcasts delivering
// at every intermediate node and being removed by their sender, exactly
// the behaviour the paper describes for SCI-style rings. Unlike the bus,
// separate links carry different messages concurrently, so aggregate
// bandwidth scales with node count — the reason the paper prefers rings
// for larger systems — at the cost of multi-hop broadcast latency.
type Ring struct {
	cfg RingConfig
	n   int
	// linkFree[i] is the first cycle link i->i+1 is idle.
	linkFree []uint64
	flight   []*ringMsg
	stats    Stats
	obs      obs.Observer
	// arrivals is the scratch buffer Tick returns; reused so the per-cycle
	// delivery path is allocation-free in steady state.
	arrivals []Arrival
	// pool backs the ringMsg values CopyStateFrom materialises, reused
	// across copies so prediction scratchpads stay allocation-free in
	// steady state. Unused outside CopyStateFrom targets.
	pool []ringMsg
}

// SetObserver attaches an observer emitting a bus.grant event when a
// message starts its first hop (nil detaches).
func (r *Ring) SetObserver(o obs.Observer) { r.obs = o }

// NewRing builds a ring of numNodes nodes. It panics on invalid
// configuration (experiment-setup error).
func NewRing(cfg RingConfig, numNodes int) *Ring {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if numNodes <= 0 {
		panic("ring: need at least one node")
	}
	return &Ring{cfg: cfg, n: numNodes, linkFree: make([]uint64, numNodes)}
}

// Config returns the ring configuration.
func (r *Ring) Config() RingConfig { return r.cfg }

// NetStats implements Network.
func (r *Ring) NetStats() *Stats { return &r.stats }

// Enqueue implements Network.
func (r *Ring) Enqueue(m Message) {
	if m.Src < 0 || m.Src >= r.n {
		panic(fmt.Sprintf("ring: bad source %d", m.Src))
	}
	hops := r.n // broadcast: full circle back to the sender
	if m.Kind != Broadcast {
		hops = (m.Dst - m.Src + r.n) % r.n
		if hops == 0 {
			hops = r.n // self-send degenerates to a full loop; callers avoid it
		}
	}
	r.flight = append(r.flight, &ringMsg{msg: m, at: m.Src, readyAt: m.ReadyAt, remaining: hops})
	r.stats.TotalQueued.Inc()
	r.stats.Messages.Inc()
	r.stats.Bytes.Add(uint64(m.WireBytes()))
	r.stats.ByKindMsgs[m.Kind].Inc()
	r.stats.ByKindBytes[m.Kind].Add(uint64(m.WireBytes()))
}

// Pending implements Network.
func (r *Ring) Pending() int { return len(r.flight) }

// SourcePending implements Network: in-flight messages originated by
// src, wherever they currently sit on the ring.
func (r *Ring) SourcePending(src int) int {
	n := 0
	for _, f := range r.flight {
		if f.msg.Src == src {
			n++
		}
	}
	return n
}

// PurgeSource implements Network: messages src submitted that have not
// yet started their first hop die with the node; messages already
// travelling the ring keep circulating (downstream nodes forward them —
// the sender-strip removal still works because removal counts hops, not
// sender liveness).
func (r *Ring) PurgeSource(src int) int {
	n := 0
	kept := r.flight[:0]
	for _, f := range r.flight {
		if f.msg.Src == src && !f.injected {
			n++
			continue
		}
		kept = append(kept, f)
	}
	// Clear the tail so dropped *ringMsg pointers do not linger in the
	// backing array.
	for i := len(kept); i < len(r.flight); i++ {
		r.flight[i] = nil
	}
	r.flight = kept
	return n
}

// NextDeliveryCycle implements Network for the ring: the minimum over all
// in-flight hops' completion cycles and all sitting messages' earliest
// possible departures (ready and link free). The value is a safe lower
// bound — link contention may push an actual departure later, but a Tick
// at the returned cycle then simply does nothing and the scheduler
// recomputes.
func (r *Ring) NextDeliveryCycle(now uint64) uint64 {
	next := uint64(NoEvent)
	for _, f := range r.flight {
		at := f.readyAt
		if !f.inFlight && r.linkFree[f.at] > at {
			at = r.linkFree[f.at]
		}
		if at <= now {
			at = now + 1
		}
		if at < next {
			next = at
		}
	}
	return next
}

// Lookahead implements Network. One header-only hop is the cheapest move
// any ring message can make, and a message's first delivery (or any link
// occupancy it imposes on older traffic) is at least that far past its
// ReadyAt.
func (r *Ring) Lookahead() uint64 {
	la := r.cfg.transferCycles(HeaderBytes)
	if la < 1 {
		la = 1
	}
	return la
}

// NewScratch implements Network.
func (r *Ring) NewScratch() Network { return NewRing(r.cfg, r.n) }

// CopyStateFrom implements Network for the ring: replicate link
// occupancy and every in-flight message. Message values land in a
// reused pool whose capacity is ensured up front, so the pointers taken
// during the copy stay stable.
func (r *Ring) CopyStateFrom(src Network) {
	s := src.(*Ring)
	copy(r.linkFree, s.linkFree)
	if cap(r.pool) < len(s.flight) {
		r.pool = make([]ringMsg, 0, len(s.flight))
	}
	r.pool = r.pool[:0]
	// Clear any stale pointers beyond the new length before truncating.
	for i := len(s.flight); i < len(r.flight); i++ {
		r.flight[i] = nil
	}
	r.flight = r.flight[:0]
	for _, f := range s.flight {
		r.pool = append(r.pool, *f)
		r.flight = append(r.flight, &r.pool[len(r.pool)-1])
	}
}

// DataPhase implements Network for the ring. The queued-versus-blocked
// split compares each sitting message's own readiness against its
// outgoing link's availability — both frozen during any stretch
// NextDeliveryCycle certifies as no-ops — rather than the current cycle,
// so attribution cannot flip inside a skipped stretch.
//
//dsvet:hotpath
func (r *Ring) DataPhase(addr uint64, dst int, now uint64) MsgPhase {
	best := PhaseAbsent
	for _, f := range r.flight {
		if !dataMatch(f.msg, addr, dst) {
			continue
		}
		var p MsgPhase
		switch {
		case f.inFlight:
			p = PhaseTransfer
		case !f.injected && r.linkFree[f.at] <= f.readyAt:
			// Not yet on the ring and its own injection penalty is the
			// binding constraint.
			p = PhaseQueued
		default:
			// Waiting for a busy link (mid-journey or at injection).
			p = PhaseBlocked
		}
		if p > best {
			best = p
		}
	}
	return best
}

// Tick implements Network. Each message alternates between completing a
// hop (delivering at the node it reaches, when appropriate) and starting
// the next one as soon as its outgoing link is free; distinct links
// carry distinct messages concurrently. The returned slice is only valid
// until the next call.
//
//dsvet:hotpath
func (r *Ring) Tick(now uint64) []Arrival {
	out := r.arrivals[:0]
	kept := r.flight[:0]
	for _, f := range r.flight {
		// Complete an in-progress hop whose transfer has finished.
		if f.inFlight && f.readyAt <= now {
			f.inFlight = false
			f.remaining--
			deliver := false
			if f.msg.Kind == Broadcast {
				deliver = f.at != f.msg.Src
			} else {
				deliver = f.at == f.msg.Dst
			}
			if deliver {
				out = append(out, Arrival{Node: f.at, Msg: f.msg})
			}
			if f.remaining == 0 {
				continue // removed from the ring (sender strip / dst sink)
			}
		}
		// Start the next hop if sitting, ready, and the link is free.
		if !f.inFlight && f.readyAt <= now && r.linkFree[f.at] <= now {
			occ := r.cfg.transferCycles(f.msg.WireBytes())
			r.linkFree[f.at] = now + occ
			r.stats.BusyCycles.Add(occ)
			if !f.injected {
				f.injected = true
				if r.obs != nil {
					r.obs.Event(obs.Event{
						Cycle: now, Node: f.msg.Src, Kind: obs.EvBusGrant,
						Addr: f.msg.Addr, Arg: uint64(f.msg.WireBytes()),
					})
				}
			}
			f.at = (f.at + 1) % r.n
			f.readyAt = now + occ
			f.inFlight = true
		}
		kept = append(kept, f)
	}
	r.flight = kept
	r.arrivals = out
	return out
}
