package bus

import (
	"testing"
	"testing/quick"
)

func runRing(r *Ring, until uint64) map[uint64][]Arrival {
	out := map[uint64][]Arrival{}
	for now := uint64(0); now <= until && (r.Pending() > 0 || now == 0); now++ {
		// Tick's slice is only valid until the next call: copy to retain.
		if arr := r.Tick(now); len(arr) > 0 {
			out[now] = append([]Arrival(nil), arr...)
		}
	}
	return out
}

func TestRingBroadcastVisitsEveryNode(t *testing.T) {
	r := NewRing(RingConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}, 4)
	r.Enqueue(Message{Kind: Broadcast, Src: 1, Addr: 0x100, PayloadBytes: 8})
	byCycle := runRing(r, 100)

	seen := map[int]uint64{}
	for cyc, arrs := range byCycle {
		for _, a := range arrs {
			seen[a.Node] = cyc
		}
	}
	if len(seen) != 3 {
		t.Fatalf("broadcast reached %d nodes, want 3 (all but sender): %v", len(seen), seen)
	}
	if _, hitSender := seen[1]; hitSender {
		t.Fatal("broadcast delivered to its sender")
	}
	// Hop order from node 1: 2, then 3, then 0; 2 beats/hop with these
	// parameters (16 wire bytes / 8 wide at divisor 1).
	if !(seen[2] < seen[3] && seen[3] < seen[0]) {
		t.Fatalf("hop order wrong: %v", seen)
	}
	if r.Pending() != 0 {
		t.Fatal("broadcast not stripped by sender")
	}
}

func TestRingPointToPointStopsAtDst(t *testing.T) {
	r := NewRing(DefaultRingConfig(), 4)
	r.Enqueue(Message{Kind: Request, Src: 0, Dst: 2, Addr: 0x40})
	byCycle := runRing(r, 200)
	var arrivals []Arrival
	for _, a := range byCycle {
		arrivals = append(arrivals, a...)
	}
	if len(arrivals) != 1 || arrivals[0].Node != 2 {
		t.Fatalf("arrivals = %+v, want exactly one at node 2", arrivals)
	}
}

func TestRingLinksCarryConcurrently(t *testing.T) {
	// Two point-to-point messages on disjoint links must not serialize:
	// 0->1 and 2->3 use links 0 and 2.
	cfg := RingConfig{WidthBytes: 8, ClockDivisor: 4, HopCycles: 0}
	r := NewRing(cfg, 4)
	r.Enqueue(Message{Kind: Request, Src: 0, Dst: 1})
	r.Enqueue(Message{Kind: Request, Src: 2, Dst: 3})
	byCycle := runRing(r, 100)
	var cycles []uint64
	for cyc, arrs := range byCycle {
		for range arrs {
			cycles = append(cycles, cyc)
		}
	}
	if len(cycles) != 2 {
		t.Fatalf("arrivals = %v", byCycle)
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("disjoint links serialized: %v", cycles)
	}

	// Same link must serialize: two messages from node 0.
	r2 := NewRing(cfg, 4)
	r2.Enqueue(Message{Kind: Request, Src: 0, Dst: 1})
	r2.Enqueue(Message{Kind: Request, Src: 0, Dst: 1})
	byCycle = runRing(r2, 200)
	cycles = cycles[:0]
	for cyc, arrs := range byCycle {
		for range arrs {
			cycles = append(cycles, cyc)
		}
	}
	if len(cycles) != 2 || cycles[0] == cycles[1] {
		t.Fatalf("same-link messages did not serialize: %v", cycles)
	}
}

func TestRingHonorsReadyAt(t *testing.T) {
	r := NewRing(RingConfig{WidthBytes: 8, ClockDivisor: 1, HopCycles: 0}, 2)
	r.Enqueue(Message{Kind: Broadcast, Src: 0, ReadyAt: 50})
	byCycle := runRing(r, 200)
	for cyc := range byCycle {
		if cyc < 50 {
			t.Fatalf("delivery at %d before ReadyAt", cyc)
		}
	}
	if len(byCycle) == 0 {
		t.Fatal("message never delivered")
	}
}

func TestRingValidation(t *testing.T) {
	if err := (RingConfig{WidthBytes: 0, ClockDivisor: 1}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
	if err := (RingConfig{WidthBytes: 8, ClockDivisor: 0}).Validate(); err == nil {
		t.Error("zero divisor accepted")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad nodes", func() { NewRing(DefaultRingConfig(), 0) })
	mustPanic("bad src", func() { NewRing(DefaultRingConfig(), 2).Enqueue(Message{Src: 9}) })
}

// Property: every broadcast is delivered to exactly n-1 nodes and the
// ring always drains.
func TestRingConservationQuick(t *testing.T) {
	f := func(srcs []uint8, payload uint8) bool {
		if len(srcs) > 24 {
			srcs = srcs[:24]
		}
		const n = 5
		r := NewRing(RingConfig{WidthBytes: 4, ClockDivisor: 2, HopCycles: 1}, n)
		for i, s := range srcs {
			r.Enqueue(Message{
				Kind:         Broadcast,
				Src:          int(s % n),
				Seq:          uint64(i),
				PayloadBytes: int(payload % 64),
			})
		}
		deliveries := map[uint64]int{}
		for now := uint64(0); r.Pending() > 0; now++ {
			for _, a := range r.Tick(now) {
				deliveries[a.Msg.Seq]++
			}
			if now > 1_000_000 {
				return false // stuck
			}
		}
		for i := range srcs {
			if deliveries[uint64(i)] != n-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBusNetworkAdapter(t *testing.T) {
	net := NewNetwork(Config{WidthBytes: 8, ClockDivisor: 1}, 3)
	net.Enqueue(Message{Kind: Broadcast, Src: 0, PayloadBytes: 8})
	net.Enqueue(Message{Kind: Request, Src: 1, Dst: 2})
	var arrivals []Arrival
	for now := uint64(0); net.Pending() > 0; now++ {
		arrivals = append(arrivals, net.Tick(now)...)
		if now > 1000 {
			t.Fatal("bus network stuck")
		}
	}
	// Broadcast reaches nodes 1 and 2; request reaches node 2.
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %+v", arrivals)
	}
	if net.NetStats().Messages.Value() != 2 {
		t.Fatal("stats not shared")
	}
}
