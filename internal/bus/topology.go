package bus

import "fmt"

// TopologyKind selects the interconnect family a machine is built on.
// The paper evaluates a shared bus and sketches SCI-style rings for
// larger systems; the mesh and torus kinds extend that reasoning to the
// hundreds-of-nodes regime where a single serialization point (bus) or
// O(N) broadcast latency (ring) stops scaling. The set is closed: dsvet
// requires every switch over TopologyKind to cover all kinds or panic in
// its default.
//
//dsvet:enum
type TopologyKind uint8

const (
	// TopoBus: one global shared bus; every transaction is an implicit
	// broadcast observed by all nodes in the same cycle.
	TopoBus TopologyKind = iota
	// TopoRing: a unidirectional point-to-point ring; broadcasts are
	// delivered hop by hop and stripped by their sender.
	TopoRing
	// TopoMesh: a 2D mesh with dimension-order routing; broadcasts fan
	// out on a dimension-order tree (row first, columns branching off).
	TopoMesh
	// TopoTorus: the mesh with wraparound links, halving worst-case hop
	// distance on both axes.
	TopoTorus
)

// String names the kind the way the -topology CLI flag spells it.
func (k TopologyKind) String() string {
	switch k {
	case TopoBus:
		return "bus"
	case TopoRing:
		return "ring"
	case TopoMesh:
		return "mesh"
	case TopoTorus:
		return "torus"
	default:
		panic(fmt.Sprintf("bus: unknown TopologyKind %d", uint8(k)))
	}
}

// ParseTopologyKind parses a -topology flag value.
func ParseTopologyKind(s string) (TopologyKind, error) {
	switch s {
	case "bus":
		return TopoBus, nil
	case "ring":
		return TopoRing, nil
	case "mesh":
		return TopoMesh, nil
	case "torus":
		return TopoTorus, nil
	}
	return 0, fmt.Errorf("unknown topology %q (want bus, ring, mesh, or torus)", s)
}

// Topology is the interconnect configuration of a machine: which family
// to build plus the family's parameters. Both parameter sets stay
// populated with defaults so switching Kind is a one-field change; only
// the set the Kind selects affects the build.
type Topology struct {
	// Kind selects the interconnect family.
	Kind TopologyKind
	// Bus parameterizes TopoBus.
	Bus Config
	// Link parameterizes the point-to-point kinds (ring, mesh, torus):
	// per-link width, link clock, and per-hop forwarding latency.
	Link LinkConfig
}

// DefaultTopology returns the paper's baseline: the shared bus, with
// ring/mesh link parameters defaulted so flipping Kind needs no other
// edits.
func DefaultTopology() Topology {
	return Topology{Kind: TopoBus, Bus: DefaultConfig(), Link: DefaultLinkConfig()}
}

// Validate checks the parameters of the selected kind.
func (t Topology) Validate() error {
	switch t.Kind {
	case TopoBus:
		return t.Bus.Validate()
	case TopoRing, TopoMesh, TopoTorus:
		return t.Link.Validate()
	default:
		return fmt.Errorf("bus: unknown topology kind %d", uint8(t.Kind))
	}
}

// Links returns the number of independent transfer resources a
// numNodes-node instance of this kind has: the utilization denominator
// for aggregate busy-cycle stats (one shared bus, one link per ring
// node, four directed links per mesh/torus node).
func (k TopologyKind) Links(numNodes int) int {
	switch k {
	case TopoBus:
		return 1
	case TopoRing:
		return numNodes
	case TopoMesh, TopoTorus:
		return 4 * numNodes
	default:
		panic(fmt.Sprintf("bus: unknown TopologyKind %d", uint8(k)))
	}
}

// Build constructs the Network for numNodes nodes. It panics on invalid
// configuration (experiment-setup error), matching New and NewRing.
func (t Topology) Build(numNodes int) Network {
	switch t.Kind {
	case TopoBus:
		return NewNetwork(t.Bus, numNodes)
	case TopoRing:
		return NewRing(t.Link, numNodes)
	case TopoMesh:
		return NewMesh(t.Link, numNodes)
	case TopoTorus:
		return NewTorus(t.Link, numNodes)
	default:
		panic(fmt.Sprintf("bus: unknown topology kind %d", uint8(t.Kind)))
	}
}
