// Package cache implements the set-associative cache model used by every
// machine in this repository: the traffic analyses of Table 1 (16 KB 2-way
// write-back write-allocate), the timing runs of Figures 7-8 (16 KB
// direct-mapped write-back write-no-allocate, the policy the paper argues
// is superior under ESP), and the traditional baselines.
//
// The model is a tag store only: data contents live in the functional
// emulator. Timing models drive the tag store explicitly — in DataScalar
// nodes the tags are updated at *commit* time (via the Commit Update
// Buffer in internal/core), so this package exposes both a conventional
// Access operation and the lower-level Probe/Fill/Touch primitives that
// commit-time update needs.
package cache

import (
	"fmt"
	"hash/fnv"
	"math/bits"

	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// WritePolicy selects how stores propagate below this cache.
type WritePolicy uint8

const (
	// WriteBack holds dirty lines and emits a writeback on eviction.
	WriteBack WritePolicy = iota
	// WriteThrough propagates every store immediately and never holds
	// dirty lines.
	WriteThrough
)

// String names the policy.
func (w WritePolicy) String() string {
	if w == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// AllocPolicy selects whether store misses allocate a line.
type AllocPolicy uint8

const (
	// WriteAllocate fetches the line on a store miss.
	WriteAllocate AllocPolicy = iota
	// WriteNoAllocate sends the store below without allocating. The paper
	// argues this is the right policy under ESP: with write-allocate a
	// write miss forces an inter-processor message only to overwrite the
	// data just received.
	WriteNoAllocate
)

// String names the policy.
func (a AllocPolicy) String() string {
	if a == WriteNoAllocate {
		return "write-no-allocate"
	}
	return "write-allocate"
}

// Config describes one cache.
type Config struct {
	Name      string
	SizeBytes int
	LineBytes int
	Assoc     int // 1 = direct-mapped
	Write     WritePolicy
	Alloc     AllocPolicy
}

// Validate checks structural soundness.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	case bits.OnesCount(uint(c.SizeBytes)) != 1:
		return fmt.Errorf("cache %s: size %d not a power of two", c.Name, c.SizeBytes)
	case bits.OnesCount(uint(c.LineBytes)) != 1:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Assoc) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by line*assoc", c.Name, c.SizeBytes)
	}
	return nil
}

// NumSets returns the number of sets implied by the geometry.
func (c Config) NumSets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Stats counts cache events.
type Stats struct {
	LoadHits    stats.Counter
	LoadMisses  stats.Counter
	StoreHits   stats.Counter
	StoreMisses stats.Counter
	Writebacks  stats.Counter
	Fills       stats.Counter
	Invalidates stats.Counter
}

// Accesses returns the total access count.
func (s *Stats) Accesses() uint64 {
	return s.LoadHits.Value() + s.LoadMisses.Value() + s.StoreHits.Value() + s.StoreMisses.Value()
}

// Misses returns the total miss count.
func (s *Stats) Misses() uint64 {
	return s.LoadMisses.Value() + s.StoreMisses.Value()
}

// MissRate returns misses/accesses.
func (s *Stats) MissRate() float64 {
	return stats.Ratio{Part: s.Misses(), Whole: s.Accesses()}.Value()
}

type way struct {
	valid bool
	dirty bool
	tag   uint64
	// lru is a per-cache monotonically increasing timestamp; the way with
	// the smallest value in a set is the LRU victim.
	lru uint64
}

// Cache is one level of tag store.
type Cache struct {
	cfg     Config
	sets    [][]way
	tick    uint64
	lineLg2 uint
	setMask uint64
	stats   Stats

	// Observability (nil obs = disabled, zero cost): the owning machine
	// attributes events to a node and supplies its cycle clock.
	obs      obs.Observer
	obsNode  int
	obsClock *uint64
}

// SetObserver attaches an observer emitting fill/writeback/invalidate
// events attributed to node, timestamped through clock (a pointer to the
// owning machine's cycle counter; the cache itself has no notion of
// time). A nil observer detaches.
func (c *Cache) SetObserver(o obs.Observer, node int, clock *uint64) {
	c.obs, c.obsNode, c.obsClock = o, node, clock
}

// obsEvent emits one event when an observer is attached.
func (c *Cache) obsEvent(kind obs.EventKind, addr, arg uint64) {
	if c.obs == nil {
		return
	}
	var cycle uint64
	if c.obsClock != nil {
		cycle = *c.obsClock
	}
	c.obs.Event(obs.Event{Cycle: cycle, Node: c.obsNode, Kind: kind, Addr: addr, Arg: arg})
}

// New builds a cache. It panics on invalid geometry, since geometry is
// always chosen by experiment configuration code.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.NumSets()
	sets := make([][]way, n)
	backing := make([]way, n*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		lineLg2: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask: uint64(n - 1),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the cache's counters.
func (c *Cache) Stats() *Stats { return &c.stats }

// LineAddr returns the line-aligned base of addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) setIndex(addr uint64) uint64 {
	return (addr >> c.lineLg2) & c.setMask
}

func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> c.lineLg2
}

// Result describes the consequences of one cache operation.
type Result struct {
	Hit bool
	// Writeback is set when the operation evicted a dirty line;
	// WritebackAddr is its line address.
	Writeback     bool
	WritebackAddr uint64
	// Evicted is set when any valid line was displaced (dirty or not).
	Evicted     bool
	EvictedAddr uint64
	// Allocated is set when the operation installed a new line.
	Allocated bool
}

// Access performs a conventional lookup-and-update for a load or store:
// hits refresh LRU (and set dirty for write-back stores); misses allocate
// per the policies. This is what the traffic analyses and the traditional
// machine use; DataScalar commit-time updates use Probe/Fill/Touch.
func (c *Cache) Access(addr uint64, store bool) Result {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	c.tick++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if store {
				c.stats.StoreHits.Inc()
				if c.cfg.Write == WriteBack {
					set[i].dirty = true
				}
			} else {
				c.stats.LoadHits.Inc()
			}
			return Result{Hit: true}
		}
	}
	// Miss.
	if store {
		c.stats.StoreMisses.Inc()
		if c.cfg.Alloc == WriteNoAllocate {
			return Result{}
		}
	} else {
		c.stats.LoadMisses.Inc()
	}
	res := c.fillLocked(addr, store && c.cfg.Write == WriteBack)
	res.Hit = false
	return res
}

// Probe reports whether addr hits, without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Touch refreshes the LRU position of addr's line (and optionally marks it
// dirty) if present, reporting whether it was present. DataScalar nodes
// call this at commit time for hits.
func (c *Cache) Touch(addr uint64, markDirty bool) bool {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	c.tick++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if markDirty && c.cfg.Write == WriteBack {
				set[i].dirty = true
			}
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if the set is full, and
// returns eviction consequences. If the line is already present it is
// refreshed instead (no duplicate lines are ever created).
func (c *Cache) Fill(addr uint64, dirty bool) Result {
	if c.Touch(addr, dirty) {
		return Result{Hit: true}
	}
	return c.fillLocked(addr, dirty)
}

func (c *Cache) fillLocked(addr uint64, dirty bool) Result {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	c.tick++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	var res Result
	if set[victim].valid {
		res.Evicted = true
		res.EvictedAddr = set[victim].tag << c.lineLg2
		if set[victim].dirty {
			res.Writeback = true
			res.WritebackAddr = res.EvictedAddr
			c.stats.Writebacks.Inc()
			c.obsEvent(obs.EvCacheWriteback, res.WritebackAddr, 0)
		}
	}
	set[victim] = way{valid: true, dirty: dirty, tag: tag, lru: c.tick}
	res.Allocated = true
	c.stats.Fills.Inc()
	c.obsEvent(obs.EvCacheFill, c.LineAddr(addr), 0)
	return res
}

// Invalidate removes addr's line if present, reporting whether it was
// present and whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.sets[c.setIndex(addr)]
	tag := c.tagOf(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			present, dirty = true, set[i].dirty
			set[i] = way{}
			c.stats.Invalidates.Inc()
			c.obsEvent(obs.EvCacheInvalidate, c.LineAddr(addr), 0)
			return present, dirty
		}
	}
	return false, false
}

// FlushDirty returns the line addresses of all dirty lines and cleans
// them. Machines call this at end of run to account for final writebacks.
func (c *Cache) FlushDirty() []uint64 {
	var out []uint64
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				out = append(out, set[i].tag<<c.lineLg2)
				set[i].dirty = false
				c.stats.Writebacks.Inc()
			}
		}
	}
	return out
}

// Contents returns the set of resident line addresses (for tests).
func (c *Cache) Contents() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				out[set[i].tag<<c.lineLg2] = true
			}
		}
	}
	return out
}

// StateDigest returns a digest of the full replacement-relevant state:
// per set, the resident tags with validity, dirtiness, and recency
// *ordering* (not absolute tick values, which differ across nodes that
// performed different numbers of probes). Two caches with equal digests
// make identical future replacement decisions — the cache-correspondence
// invariant DataScalar nodes must maintain at commit points.
func (c *Cache) StateDigest() uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	order := make([]int, 0, c.cfg.Assoc)
	for si, set := range c.sets {
		put(uint64(si))
		// Sort way indices by recency (oldest first) via selection; assoc
		// is tiny so O(a^2) is fine and allocation-free.
		order = order[:0]
		for i := range set {
			order = append(order, i)
		}
		for i := 0; i < len(order); i++ {
			minI := i
			for j := i + 1; j < len(order); j++ {
				if set[order[j]].lru < set[order[minI]].lru {
					minI = j
				}
			}
			order[i], order[minI] = order[minI], order[i]
		}
		for _, wi := range order {
			w := set[wi]
			if !w.valid {
				put(0)
				continue
			}
			put(1)
			put(w.tag)
			if w.dirty {
				put(1)
			} else {
				put(0)
			}
		}
	}
	return h.Sum64()
}
