package cache

import (
	"testing"
	"testing/quick"
)

func smallDM() *Cache {
	return New(Config{Name: "l1", SizeBytes: 256, LineBytes: 32, Assoc: 1})
}

func small2Way() *Cache {
	return New(Config{Name: "l1", SizeBytes: 256, LineBytes: 32, Assoc: 2})
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "c", SizeBytes: 16384, LineBytes: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.NumSets() != 256 {
		t.Fatalf("NumSets = %d, want 256", good.NumSets())
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 100, LineBytes: 32, Assoc: 1},   // size not pow2
		{SizeBytes: 1024, LineBytes: 24, Assoc: 1},  // line not pow2
		{SizeBytes: 1024, LineBytes: 32, Assoc: 0},  // assoc 0
		{SizeBytes: 1024, LineBytes: 32, Assoc: 33}, // not divisible
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Error("write policy names")
	}
	if WriteAllocate.String() != "write-allocate" || WriteNoAllocate.String() != "write-no-allocate" {
		t.Error("alloc policy names")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := smallDM()
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x1010, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	s := c.Stats()
	if s.LoadHits.Value() != 2 || s.LoadMisses.Value() != 1 {
		t.Fatalf("stats: hits=%d misses=%d", s.LoadHits.Value(), s.LoadMisses.Value())
	}
	if s.MissRate() != 1.0/3 {
		t.Fatalf("miss rate = %v", s.MissRate())
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := smallDM() // 8 sets of 32B
	c.Access(0x0000, false)
	c.Access(0x0100, false) // same set (256 apart), evicts
	if r := c.Access(0x0000, false); r.Hit {
		t.Fatal("conflicting line survived in direct-mapped cache")
	}
}

func TestTwoWayLRU(t *testing.T) {
	c := small2Way() // 4 sets of 2 ways, 32B lines; set stride = 128
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	r := c.Access(d, false)
	if !r.Evicted || r.EvictedAddr != b {
		t.Fatalf("evicted %+v, want b=0x%x", r, b)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatal("LRU victim selection wrong")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := smallDM()
	c.Access(0x0000, true) // store miss, allocate dirty (write-allocate default)
	r := c.Access(0x0100, false)
	if !r.Writeback || r.WritebackAddr != 0x0000 {
		t.Fatalf("no writeback on dirty eviction: %+v", r)
	}
	if c.Stats().Writebacks.Value() != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c := New(Config{Name: "wt", SizeBytes: 256, LineBytes: 32, Assoc: 1, Write: WriteThrough})
	c.Access(0x0000, true)
	r := c.Access(0x0100, false)
	if r.Writeback {
		t.Fatal("write-through cache produced a writeback")
	}
}

func TestWriteNoAllocate(t *testing.T) {
	c := New(Config{Name: "wna", SizeBytes: 256, LineBytes: 32, Assoc: 1, Alloc: WriteNoAllocate})
	r := c.Access(0x0000, true)
	if r.Hit || r.Allocated {
		t.Fatalf("store miss allocated under no-allocate: %+v", r)
	}
	if c.Probe(0x0000) {
		t.Fatal("line resident after no-allocate store miss")
	}
	// Store hit still works and dirties.
	c.Access(0x0040, false)
	c.Access(0x0040, true)
	if c.Stats().StoreHits.Value() != 1 {
		t.Fatal("store hit not counted")
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small2Way()
	a, b, d := uint64(0x0000), uint64(0x0080), uint64(0x0100)
	c.Access(a, false)
	c.Access(b, false)
	for i := 0; i < 10; i++ {
		c.Probe(a) // must not refresh LRU
	}
	r := c.Access(d, false)
	if r.EvictedAddr != a {
		t.Fatalf("probe perturbed LRU: evicted 0x%x, want a", r.EvictedAddr)
	}
	if got := c.Stats().Accesses(); got != 3 {
		t.Fatalf("probes counted as accesses: %d", got)
	}
}

func TestTouchAndFill(t *testing.T) {
	c := small2Way()
	if c.Touch(0x0000, false) {
		t.Fatal("touch hit on empty cache")
	}
	r := c.Fill(0x0000, false)
	if r.Hit || !r.Allocated {
		t.Fatalf("fill = %+v", r)
	}
	if !c.Touch(0x0000, true) {
		t.Fatal("touch missed after fill")
	}
	// Fill of resident line must not duplicate.
	r = c.Fill(0x0000, false)
	if !r.Hit {
		t.Fatal("refill of resident line allocated a duplicate")
	}
	// Dirty via touch causes writeback on eviction.
	c.Fill(0x0080, false)
	r = c.Fill(0x0100, false) // evicts LRU = 0x0000 (dirty via Touch)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Fatalf("expected writeback of 0x0: %+v", r)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallDM()
	c.Access(0x0000, true)
	present, dirty := c.Invalidate(0x0000)
	if !present || !dirty {
		t.Fatalf("invalidate = %v, %v", present, dirty)
	}
	if c.Probe(0x0000) {
		t.Fatal("line present after invalidate")
	}
	present, _ = c.Invalidate(0x0000)
	if present {
		t.Fatal("double invalidate reported present")
	}
}

func TestFlushDirty(t *testing.T) {
	c := small2Way()
	c.Access(0x0000, true)
	c.Access(0x0080, false)
	c.Access(0x0010, true) // same line as 0x0000
	lines := c.FlushDirty()
	if len(lines) != 1 || lines[0] != 0 {
		t.Fatalf("FlushDirty = %v", lines)
	}
	if len(c.FlushDirty()) != 0 {
		t.Fatal("second flush found dirty lines")
	}
}

func TestContents(t *testing.T) {
	c := smallDM()
	c.Access(0x0000, false)
	c.Access(0x0040, false)
	got := c.Contents()
	if len(got) != 2 || !got[0x0000] || !got[0x0040] {
		t.Fatalf("Contents = %v", got)
	}
}

func TestStateDigestCorrespondence(t *testing.T) {
	mk := func() *Cache { return small2Way() }
	a, b := mk(), mk()
	seq := []struct {
		addr  uint64
		store bool
	}{
		{0x0000, false}, {0x0080, true}, {0x0100, false}, {0x0000, false}, {0x0180, true},
	}
	for _, s := range seq {
		a.Access(s.addr, s.store)
		b.Access(s.addr, s.store)
	}
	if a.StateDigest() != b.StateDigest() {
		t.Fatal("identical access sequences produced different digests")
	}
	// Probes must not change the digest (issue-time lookups at different
	// nodes differ; only commit-time updates may affect state).
	d := a.StateDigest()
	a.Probe(0x0000)
	a.Probe(0x4000)
	if a.StateDigest() != d {
		t.Fatal("probe changed state digest")
	}
	// A divergent access must change it.
	a.Access(0x0200, false)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("divergent caches share a digest")
	}
}

func TestStateDigestRecencyOrdering(t *testing.T) {
	// Same resident lines, different recency order -> different digest,
	// because future evictions differ.
	a, b := small2Way(), small2Way()
	a.Access(0x0000, false)
	a.Access(0x0080, false)
	b.Access(0x0080, false)
	b.Access(0x0000, false)
	if a.StateDigest() == b.StateDigest() {
		t.Fatal("digest ignores recency ordering")
	}
}

// Property: after any access sequence, the number of resident lines never
// exceeds capacity, and a fill of X makes Probe(X) true.
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(addrs []uint16, stores []bool) bool {
		c := New(Config{Name: "q", SizeBytes: 512, LineBytes: 32, Assoc: 2, Alloc: WriteAllocate})
		maxLines := 512 / 32
		for i, a := range addrs {
			store := i < len(stores) && stores[i]
			c.Access(uint64(a), store)
			if !store && !c.Probe(uint64(a)) {
				return false // load must leave its line resident
			}
			if len(c.Contents()) > maxLines {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: replaying the same sequence on two caches keeps digests equal
// at every step (determinism).
func TestCacheDeterminismQuick(t *testing.T) {
	f := func(addrs []uint16) bool {
		a := New(Config{Name: "a", SizeBytes: 256, LineBytes: 16, Assoc: 4})
		b := New(Config{Name: "b", SizeBytes: 256, LineBytes: 16, Assoc: 4})
		for _, x := range addrs {
			a.Access(uint64(x), x%3 == 0)
			b.Access(uint64(x), x%3 == 0)
			if a.StateDigest() != b.StateDigest() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineAddr(t *testing.T) {
	c := smallDM()
	if c.LineAddr(0x1234) != 0x1220 {
		t.Fatalf("LineAddr = 0x%x", c.LineAddr(0x1234))
	}
}
