// Package cli holds the small pieces the cmd/ binaries share: the
// process exit-code convention and the fault-injection flag set. Keeping
// them here means every binary classifies failures identically, and the
// in-process CLI tests can assert on the codes.
package cli

import (
	"errors"
	"flag"

	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/fault"
)

// Process exit codes (documented in README.md). Scripts drive the
// simulators, so "the machine detected a fault and halted cleanly" must
// be distinguishable from "the protocol wedged" and from "you typed the
// flags wrong" without parsing stderr.
const (
	// ExitOK: the run completed.
	ExitOK = 0
	// ExitFailure: any error without a more specific class below.
	ExitFailure = 1
	// ExitUsage: bad flags or arguments.
	ExitUsage = 2
	// ExitDeadlock: the commit-progress watchdog fired (*core.DeadlockError).
	ExitDeadlock = 3
	// ExitFault: the machine halted itself with a structured fault
	// report (*fault.Report) — detected fault, no wrong answer published.
	ExitFault = 4
)

// ExitCode classifies err under the convention above.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	var rep *fault.Report
	if errors.As(err, &rep) {
		return ExitFault
	}
	var dl *core.DeadlockError
	if errors.As(err, &dl) {
		return ExitDeadlock
	}
	return ExitFailure
}

// FaultFlags is the -fault-* flag group shared by dsrun and dstiming.
// The zero-valued defaults produce a disabled fault.Config, so binaries
// that register the group but whose users never touch it build no fault
// layer at all.
type FaultFlags struct {
	Seed         uint64
	Drop         float64
	Delay        float64
	DelayMax     uint64
	Flip         float64
	DeadNode     int
	DeathCycle   uint64
	Recover      bool
	RetryTimeout uint64
	MaxRetries   int
	FPInterval   uint64
}

// Register installs the flag group on fs.
func (f *FaultFlags) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&f.Seed, "fault-seed", 1, "fault plan seed (same seed = same injected faults)")
	fs.Float64Var(&f.Drop, "fault-drop", 0, "probability a broadcast arrival is dropped")
	fs.Float64Var(&f.Delay, "fault-delay", 0, "probability a broadcast arrival is delayed")
	fs.Uint64Var(&f.DelayMax, "fault-delay-max", 0, "maximum extra delivery cycles per delayed arrival (0 = default)")
	fs.Float64Var(&f.Flip, "fault-flip", 0, "probability a broadcast payload is corrupted in flight")
	fs.IntVar(&f.DeadNode, "fault-dead-node", 1, "node killed at -fault-death-cycle")
	fs.Uint64Var(&f.DeathCycle, "fault-death-cycle", 0, "cycle at which -fault-dead-node dies permanently (0 = never)")
	fs.BoolVar(&f.Recover, "fault-recover", false, "on owner death, remap its pages and continue degraded instead of halting")
	fs.Uint64Var(&f.RetryTimeout, "fault-retry-timeout", 0, "BSHR wait cycles before a directed retry (0 = default)")
	fs.IntVar(&f.MaxRetries, "fault-retries", 0, "retries before a wait escalates to a fault report (0 = default)")
	fs.Uint64Var(&f.FPInterval, "fault-fp-interval", 0, "memory commits between commit-fingerprint broadcasts (0 = off)")
}

// Config assembles the fault.Config the flags describe.
func (f *FaultFlags) Config() fault.Config {
	return fault.Config{
		Seed:                f.Seed,
		DropRate:            f.Drop,
		DelayRate:           f.Delay,
		DelayMaxCycles:      f.DelayMax,
		FlipRate:            f.Flip,
		DeadNode:            f.DeadNode,
		DeathCycle:          f.DeathCycle,
		Recover:             f.Recover,
		RetryTimeoutCycles:  f.RetryTimeout,
		MaxRetries:          f.MaxRetries,
		FingerprintInterval: f.FPInterval,
	}
}

// Active reports whether the flags request any injection at all.
func (f *FaultFlags) Active() bool { return f.Config().Enabled() }
