package core

import (
	"runtime"
	"testing"
)

// allocStream is streamSum with an outer repeat: long enough that the
// bounded startup transients (miss-episode records until the freelist
// primes, heap/map/queue growth to working-set size, BSHR freelist
// priming) amortize to noise against the steady-state cycles.
const allocStream = `
        .data
arr:    .space 32768          # 4 pages: communicated traffic on 2 nodes
        .text
        li   r6, 12           # outer repeats
outer:  la   r1, arr
        li   r2, 4096         # words
        li   r4, 7
wr:     sd   r4, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, wr
        la   r1, arr
        li   r2, 4096
rd:     ld   r5, 0(r1)
        add  r3, r3, r5
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, rd
        addi r6, r6, -1
        bne  r6, zero, outer
        halt
`

// TestMachineRunSteadyStateAllocs: with no observer attached, the
// machine's inner loop — interconnect ticks, per-node core cycles, the
// next-event scheduler, protocol bookkeeping — must be allocation-free in
// steady state. Startup transients are bounded (see allocStream), so
// amortized allocations per simulated cycle must be ~zero.
func TestMachineRunSteadyStateAllocs(t *testing.T) {
	m := buildMachine(t, allocStream, 2, nil)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := m.Run()
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	allocs := after.Mallocs - before.Mallocs
	perCycle := float64(allocs) / float64(r.Cycles)
	t.Logf("%d allocs over %d cycles = %.4f allocs/cycle", allocs, r.Cycles, perCycle)
	if perCycle > 0.01 {
		t.Fatalf("observer-off Machine.Run allocated %.4f times per cycle (%d allocs over %d cycles); want ~0",
			perCycle, allocs, r.Cycles)
	}
}
