// Package core implements the paper's primary contribution: the
// DataScalar machine. N processor+memory nodes run the same program
// redundantly (SPSD execution); owners of communicated pages broadcast
// loaded lines over the global bus (asynchronous ESP), non-owners wait in
// Broadcast Status Holding Registers (BSHRs), stores complete only at
// owners, and the first-level caches are kept *correspondent* across
// nodes by updating tags only at commit through a Commit Update Buffer,
// with false hits repaired by reparative broadcasts / BSHR squashes and
// false misses folded by miss merging (Section 4 of the paper).
package core

import (
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// BSHRStats counts BSHR activity for the paper's Table 3.
type BSHRStats struct {
	// Allocs counts waiting entries created (a load had to wait for a
	// broadcast).
	Allocs stats.Counter
	// Joins counts loads that merged into an existing waiting entry.
	Joins stats.Counter
	// BufferedHits counts loads that found their data already waiting in
	// the BSHR — the broadcast arrived before the local processor asked,
	// i.e. another node ran ahead (datathreading evidence; the paper's
	// "data found in BSHR" column).
	BufferedHits stats.Counter
	// Arrivals counts broadcasts received from the bus.
	Arrivals stats.Counter
	// Matched counts arrivals that satisfied a waiting entry.
	Matched stats.Counter
	// Buffered counts arrivals stored for a future request.
	Buffered stats.Counter
	// Squashes counts entries/arrivals squashed due to false hits (the
	// paper's "BSHR squashes" column).
	Squashes stats.Counter
	// Overflows counts arrivals buffered beyond the configured capacity.
	// Broadcasts are never dropped — ESP has no re-request path, so a
	// dropped broadcast would deadlock the consumer; real hardware would
	// assert bus backpressure here instead (the paper notes rebroadcast
	// complications for full receive queues). Run-ahead is bounded by the
	// RUU, so the overshoot is small; Overflows and MaxBuffered quantify
	// how much capacity a real implementation would need.
	Overflows stats.Counter
	// MaxWaiting and MaxBuffered are entry-count high-water marks.
	MaxWaiting  int
	MaxBuffered int
}

// Accesses returns the total number of BSHR operations, the denominator
// used for Table 3's squash percentage.
func (s *BSHRStats) Accesses() uint64 {
	return s.Allocs.Value() + s.Joins.Value() + s.BufferedHits.Value() +
		s.Arrivals.Value() + s.Squashes.Value()
}

type bshrEntry struct {
	line uint64
	// waiting entries hold load tokens blocked on the broadcast; buffered
	// entries (waiting == nil, hasData) hold early data instead.
	waiting   []ooo.LoadToken
	hasData   bool
	arrivedAt uint64
	seq       uint64 // insertion order, for earliest-first matching
	// deadline is the cycle this waiting entry's re-request timer fires
	// (0 when the retry path is disabled); retries counts re-requests
	// already sent for it. Both belong to the fault-detection layer and
	// are dead weight on fault-free runs.
	deadline uint64
	retries  int
}

// BSHR implements the broadcast-receiving structure of the paper's
// simulated chip (Figure 5): a queue searched associatively by address.
// An arriving broadcast frees the earliest waiting entry for its address;
// with no waiter it is buffered so a later request sees an on-chip hit.
// Waiting entries are never dropped (that would deadlock the machine);
// buffered entries beyond the capacity evict the oldest buffered entry,
// which is safe — the corresponding load simply misses later.
type BSHR struct {
	entries   []bshrEntry
	bufferCap int
	nextSeq   uint64
	// owed counts, per line, arrivals this node must absorb because a
	// commit-time fill had no local consumer (see Absorb). Owed arrivals
	// are only absorbed when no waiter exists, so a pending load can
	// never starve.
	owed  map[uint64]int
	stats BSHRStats

	// retryTimeout arms a deadline on every waiting entry (0 disables the
	// retry path entirely — the fault-free configuration); retryCap bounds
	// the exponential backoff between re-requests of the same line.
	retryTimeout uint64
	retryCap     uint64
	// expired is the scratch slice Expired hands back (valid until the
	// next Expired call).
	expired []ExpiredWait

	// tokFree recycles the backing arrays of waiting slices whose entry
	// was matched; released is the scratch slice Arrive hands back (valid
	// until the next Arrive — the machine consumes it within the cycle).
	// Together they make the steady-state waiting path allocation-free.
	tokFree  [][]ooo.LoadToken
	released []ooo.LoadToken

	// Observability (nil obs = disabled, zero cost); the owning machine
	// attributes events to a node and supplies its cycle clock.
	obs      obs.Observer
	obsNode  int
	obsClock *uint64
}

// SetObserver attaches an observer emitting BSHR protocol events
// attributed to node, timestamped through clock (a pointer to the owning
// machine's cycle counter). A nil observer detaches.
func (b *BSHR) SetObserver(o obs.Observer, node int, clock *uint64) {
	b.obs, b.obsNode, b.obsClock = o, node, clock
}

// obsEvent emits one event when an observer is attached.
func (b *BSHR) obsEvent(kind obs.EventKind, addr, arg uint64) {
	if b.obs == nil {
		return
	}
	var cycle uint64
	if b.obsClock != nil {
		cycle = *b.obsClock
	}
	b.obs.Event(obs.Event{Cycle: cycle, Node: b.obsNode, Kind: kind, Addr: addr, Arg: arg})
}

// NewBSHR builds a BSHR whose buffered-data capacity is bufferCap
// entries (a soft bound; see BSHRStats.Overflows).
func NewBSHR(bufferCap int) *BSHR {
	if bufferCap <= 0 {
		bufferCap = 1
	}
	return &BSHR{bufferCap: bufferCap, owed: make(map[uint64]int)}
}

// Stats returns the BSHR counters.
func (b *BSHR) Stats() *BSHRStats { return &b.stats }

// SetRetry arms the fault-detection timeout path: every waiting entry
// allocated afterwards gets a deadline now+timeout, re-armed with
// capped exponential backoff by Expired. timeout 0 disables the path
// (the default; fault-free machines never pay for it).
func (b *BSHR) SetRetry(timeout, backoffCap uint64) {
	b.retryTimeout, b.retryCap = timeout, backoffCap
}

// Request records that load tok needs line's data at cycle now. It
// returns (dataReady=true, arrivedAt) when a buffered broadcast already
// holds the data (consumed by this call); otherwise the token waits and
// is released by a future Arrive.
func (b *BSHR) Request(line uint64, tok ooo.LoadToken, now uint64) (dataReady bool, arrivedAt uint64) {
	// Earliest buffered entry for the line, if any.
	if i := b.find(line, true); i >= 0 {
		at := b.entries[i].arrivedAt
		b.remove(i)
		b.stats.BufferedHits.Inc()
		b.obsEvent(obs.EvBSHRFoundBuffered, line, at)
		return true, at
	}
	// Join an existing waiting entry for the line.
	if i := b.find(line, false); i >= 0 {
		b.entries[i].waiting = append(b.entries[i].waiting, tok)
		b.stats.Joins.Inc()
		b.obsEvent(obs.EvBSHRJoin, line, uint64(len(b.entries[i].waiting)))
		return false, 0
	}
	e := bshrEntry{line: line, waiting: b.newWaiting(tok), seq: b.nextSeq}
	if b.retryTimeout != 0 {
		e.deadline = now + b.retryTimeout
	}
	b.entries = append(b.entries, e)
	b.nextSeq++
	b.stats.Allocs.Inc()
	if n := b.numWaiting(); n > b.stats.MaxWaiting {
		b.stats.MaxWaiting = n
	}
	b.obsEvent(obs.EvBSHRAlloc, line, uint64(b.numWaiting()))
	return false, 0
}

// newWaiting returns a one-token waiting slice, reusing the capacity of
// a previously matched entry when one is available.
func (b *BSHR) newWaiting(tok ooo.LoadToken) []ooo.LoadToken {
	if n := len(b.tokFree); n > 0 {
		s := b.tokFree[n-1]
		b.tokFree = b.tokFree[:n-1]
		return append(s[:0], tok)
	}
	return append(make([]ooo.LoadToken, 0, 2), tok)
}

// Arrive delivers a broadcast of line at cycle now. It returns the load
// tokens released (empty when the broadcast was buffered or squashed);
// the returned slice is only valid until the next Arrive call.
//dsvet:hotpath
func (b *BSHR) Arrive(line uint64, now uint64) []ooo.LoadToken {
	b.stats.Arrivals.Inc()
	// Waiting consumers always match first so that no pending load can
	// starve.
	if i := b.find(line, false); i >= 0 {
		toks := b.entries[i].waiting
		b.released = append(b.released[:0], toks...)
		b.tokFree = append(b.tokFree, toks)
		b.remove(i)
		b.stats.Matched.Inc()
		b.obsEvent(obs.EvBSHRMatch, line, uint64(len(b.released)))
		return b.released
	}
	// Absorb arrivals owed from fills that had no local consumer.
	if b.owed[line] > 0 {
		b.owed[line]--
		if b.owed[line] == 0 {
			delete(b.owed, line)
		}
		b.stats.Squashes.Inc()
		b.obsEvent(obs.EvBSHRSquash, line, 0)
		return nil
	}
	// Buffer for a future request. Capacity is a soft bound: see the
	// Overflows documentation.
	if b.numBuffered() >= b.bufferCap {
		b.stats.Overflows.Inc()
	}
	b.entries = append(b.entries, bshrEntry{line: line, hasData: true, arrivedAt: now, seq: b.nextSeq})
	b.nextSeq++
	b.stats.Buffered.Inc()
	if n := b.numBuffered(); n > b.stats.MaxBuffered {
		b.stats.MaxBuffered = n
	}
	b.obsEvent(obs.EvBSHRBuffer, line, uint64(b.numBuffered()))
	return nil
}

// Absorb consumes exactly one arrival of line that this node will not
// use: the caller (the commit-time fill handler) determined that no local
// load claims the broadcast paired with the fill it is committing. A
// buffered copy is removed immediately; otherwise the next arrival with
// no waiting consumer is dropped. Because fills and broadcasts pair
// one-to-one per line (the owner guarantees one broadcast per fill) and
// waiters always match first, absorption can never starve a load.
func (b *BSHR) Absorb(line uint64) {
	if i := b.find(line, true); i >= 0 {
		b.remove(i)
		b.stats.Squashes.Inc()
		b.obsEvent(obs.EvBSHRSquash, line, 0)
		return
	}
	b.owed[line]++
}

// HasWaiter reports whether any load is waiting on line.
func (b *BSHR) HasWaiter(line uint64) bool { return b.find(line, false) >= 0 }

// WaitRetries returns the number of re-requests already sent for line's
// earliest waiting entry (0 when nothing waits or the retry path is
// disarmed). Stall attribution uses it to split BSHR waits between the
// ordinary ESP path and the fault layer's retry/backoff protocol; it
// reads frozen state only, so the answer is stable across skipped
// cycles (retry counts change only at deadlines, which cap every skip).
func (b *BSHR) WaitRetries(line uint64) int {
	if b.retryTimeout == 0 {
		return 0
	}
	if i := b.find(line, false); i >= 0 {
		return b.entries[i].retries
	}
	return 0
}

// ExpiredWait describes one waiting entry whose re-request timer fired.
type ExpiredWait struct {
	Line uint64
	// Retries counts re-requests sent for this entry *before* this
	// expiry (0 on the first timeout).
	Retries int
}

// Expired collects the waiting entries whose deadlines have passed at
// cycle now and re-arms each with capped exponential backoff
// (now + min(timeout<<retries, cap)). The caller turns each into a
// directed re-request or an escalation. Returns nil when the retry path
// is disarmed; the returned slice is valid until the next call.
func (b *BSHR) Expired(now uint64) []ExpiredWait {
	if b.retryTimeout == 0 {
		return nil
	}
	out := b.expired[:0]
	for i := range b.entries {
		e := &b.entries[i]
		if e.hasData || e.deadline > now {
			continue
		}
		out = append(out, ExpiredWait{Line: e.line, Retries: e.retries})
		e.retries++
		back := b.retryTimeout << uint(e.retries)
		if back > b.retryCap || back < b.retryTimeout { // cap, and guard shift overflow
			back = b.retryCap
		}
		e.deadline = now + back
	}
	b.expired = out
	return out
}

// NextDeadline returns the earliest waiting-entry deadline, or NoDeadline
// when the retry path is disarmed or nothing waits. The cycle-skipping
// scheduler caps its jumps here so timeouts fire at the exact cycle the
// polled loop would fire them.
func (b *BSHR) NextDeadline() uint64 {
	if b.retryTimeout == 0 {
		return NoDeadline
	}
	next := uint64(NoDeadline)
	for i := range b.entries {
		e := &b.entries[i]
		if !e.hasData && e.deadline < next {
			next = e.deadline
		}
	}
	return next
}

// NoDeadline is returned by NextDeadline when no timeout is pending.
const NoDeadline = ^uint64(0)

// RearmAll resets every waiting entry's retry count and deadline to
// now+timeout. Called when ownership is remapped after a node death so
// stalled waits re-request their (new) owner promptly instead of sitting
// out the remainder of a long backoff.
func (b *BSHR) RearmAll(now uint64) {
	if b.retryTimeout == 0 {
		return
	}
	for i := range b.entries {
		if e := &b.entries[i]; !e.hasData {
			e.retries = 0
			e.deadline = now + b.retryTimeout
		}
	}
}

// TakeWaiting removes the earliest waiting entry for line and returns its
// tokens (nil when none waits). The recovery path uses it to complete
// stalled loads locally once this node has become the line's owner; the
// returned slice is valid until the next Arrive or TakeWaiting call.
func (b *BSHR) TakeWaiting(line uint64) []ooo.LoadToken {
	i := b.find(line, false)
	if i < 0 {
		return nil
	}
	toks := b.entries[i].waiting
	b.released = append(b.released[:0], toks...)
	b.tokFree = append(b.tokFree, toks)
	b.remove(i)
	return b.released
}

// WaitDetail describes one waiting entry for deadlock diagnostics.
type WaitDetail struct {
	Line     uint64
	Waiters  int
	Retries  int
	Deadline uint64
}

// WaitingDetail returns every waiting entry's line, waiter count, and
// retry state (diagnostics; allocates, called only on error paths).
func (b *BSHR) WaitingDetail() []WaitDetail {
	var out []WaitDetail
	for i := range b.entries {
		e := &b.entries[i]
		if e.hasData {
			continue
		}
		out = append(out, WaitDetail{Line: e.line, Waiters: len(e.waiting), Retries: e.retries, Deadline: e.deadline})
	}
	return out
}

// WaitingLines returns the lines with waiting entries (diagnostics).
func (b *BSHR) WaitingLines() []uint64 {
	var out []uint64
	for i := range b.entries {
		if !b.entries[i].hasData {
			out = append(out, b.entries[i].line)
		}
	}
	return out
}

// BufferedLines returns the lines with buffered data (diagnostics).
func (b *BSHR) BufferedLines() []uint64 {
	var out []uint64
	for i := range b.entries {
		if b.entries[i].hasData {
			out = append(out, b.entries[i].line)
		}
	}
	return out
}

// Waiting returns the number of waiting entries (for watchdog
// diagnostics).
func (b *BSHR) Waiting() int { return b.numWaiting() }

// Buffered returns the number of buffered (early-data) entries (for
// occupancy sampling).
func (b *BSHR) Buffered() int { return b.numBuffered() }

func (b *BSHR) find(line uint64, buffered bool) int {
	best := -1
	for i := range b.entries {
		e := &b.entries[i]
		if e.line != line || e.hasData != buffered {
			continue
		}
		if best < 0 || e.seq < b.entries[best].seq {
			best = i
		}
	}
	return best
}

func (b *BSHR) remove(i int) {
	b.entries = append(b.entries[:i], b.entries[i+1:]...)
}

func (b *BSHR) numWaiting() int {
	n := 0
	for i := range b.entries {
		if !b.entries[i].hasData {
			n++
		}
	}
	return n
}

func (b *BSHR) numBuffered() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].hasData {
			n++
		}
	}
	return n
}
