package core

import (
	"testing"
	"testing/quick"

	"github.com/wisc-arch/datascalar/internal/ooo"
)

func TestBSHRWaitThenArrive(t *testing.T) {
	b := NewBSHR(8)
	ready, _ := b.Request(0x100, 1, 0)
	if ready {
		t.Fatal("request satisfied with empty BSHR")
	}
	toks := b.Arrive(0x100, 50)
	if len(toks) != 1 || toks[0] != 1 {
		t.Fatalf("arrive released %v", toks)
	}
	if b.Waiting() != 0 {
		t.Fatal("entry not freed")
	}
	s := b.Stats()
	if s.Allocs.Value() != 1 || s.Matched.Value() != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBSHRJoinSharesOneArrival(t *testing.T) {
	b := NewBSHR(8)
	b.Request(0x100, 1, 0)
	b.Request(0x100, 2, 0)
	b.Request(0x100, 3, 0)
	if b.Stats().Joins.Value() != 2 {
		t.Fatalf("joins = %d", b.Stats().Joins.Value())
	}
	toks := b.Arrive(0x100, 10)
	if len(toks) != 3 {
		t.Fatalf("released %v", toks)
	}
}

func TestBSHRBufferedHit(t *testing.T) {
	b := NewBSHR(8)
	if toks := b.Arrive(0x200, 30); len(toks) != 0 {
		t.Fatal("unsolicited arrival released tokens")
	}
	ready, at := b.Request(0x200, 7, 0)
	if !ready || at != 30 {
		t.Fatalf("buffered hit = %v, %d", ready, at)
	}
	if b.Stats().BufferedHits.Value() != 1 {
		t.Fatal("buffered hit not counted")
	}
	// Entry consumed: second request waits.
	if ready, _ := b.Request(0x200, 8, 0); ready {
		t.Fatal("buffered entry not consumed")
	}
}

func TestBSHREarliestFirstMatching(t *testing.T) {
	b := NewBSHR(8)
	b.Request(0x100, 1, 0) // first waiting entry
	b.Arrive(0x100, 5)  // matches entry with tok 1
	b.Request(0x100, 2, 0)
	toks := b.Arrive(0x100, 9)
	if len(toks) != 1 || toks[0] != 2 {
		t.Fatalf("second arrival released %v", toks)
	}
}

func TestBSHRAbsorbBuffered(t *testing.T) {
	b := NewBSHR(8)
	b.Arrive(0x300, 1) // buffered
	b.Absorb(0x300)    // removes the buffered copy
	if ready, _ := b.Request(0x300, 1, 0); ready {
		t.Fatal("absorbed buffered entry still served data")
	}
	if b.Stats().Squashes.Value() != 1 {
		t.Fatal("absorb not counted")
	}
}

func TestBSHRAbsorbDefersToNextArrival(t *testing.T) {
	b := NewBSHR(8)
	b.Absorb(0x300) // nothing buffered: owed
	if toks := b.Arrive(0x300, 5); len(toks) != 0 {
		t.Fatal("absorbed arrival released tokens")
	}
	if b.Stats().Squashes.Value() != 1 {
		t.Fatalf("squashes = %d", b.Stats().Squashes.Value())
	}
	// Owed count consumed: the next arrival buffers normally.
	b.Arrive(0x300, 6)
	if ready, _ := b.Request(0x300, 9, 0); !ready {
		t.Fatal("post-absorb arrival lost")
	}
}

func TestBSHRWaiterNeverStarvedByAbsorb(t *testing.T) {
	// An owed absorption must never consume an arrival a waiter needs.
	b := NewBSHR(8)
	b.Absorb(0x400)
	b.Request(0x400, 11, 0)
	toks := b.Arrive(0x400, 3)
	if len(toks) != 1 || toks[0] != 11 {
		t.Fatalf("waiter starved: %v", toks)
	}
}

func TestBSHRBufferOverflowNeverDrops(t *testing.T) {
	b := NewBSHR(2)
	b.Arrive(0x100, 1)
	b.Arrive(0x200, 2)
	b.Arrive(0x300, 3) // beyond capacity: counted, never dropped
	if b.Stats().Overflows.Value() != 1 {
		t.Fatalf("overflows = %d", b.Stats().Overflows.Value())
	}
	// ESP has no re-request path: every buffered broadcast must remain
	// consumable or a future load would wait forever.
	for i, line := range []uint64{0x100, 0x200, 0x300} {
		if ready, _ := b.Request(line, ooo.LoadToken(i), 0); !ready {
			t.Fatalf("buffered broadcast 0x%x lost", line)
		}
	}
	if b.Stats().MaxBuffered != 3 {
		t.Fatalf("MaxBuffered = %d", b.Stats().MaxBuffered)
	}
}

func TestBSHRWaitingNeverDropped(t *testing.T) {
	b := NewBSHR(1)
	for i := 0; i < 10; i++ {
		b.Request(uint64(0x1000+i*64), ooo.LoadToken(i), 0)
	}
	if b.Waiting() != 10 {
		t.Fatalf("waiting = %d, want 10 (capacity applies to buffered only)", b.Waiting())
	}
	// Arrivals can still buffer without touching waiters.
	b.Arrive(0x9000, 1)
	if b.Waiting() != 10 {
		t.Fatal("buffering disturbed waiters")
	}
}

func TestBSHRHasWaiter(t *testing.T) {
	b := NewBSHR(4)
	if b.HasWaiter(0x100) {
		t.Fatal("phantom waiter")
	}
	b.Request(0x100, 1, 0)
	if !b.HasWaiter(0x100) {
		t.Fatal("waiter not visible")
	}
}

// Property: per line, tokens released over any operation sequence equal
// tokens requested minus tokens still waiting (no duplication, no loss).
func TestBSHRTokenConservationQuick(t *testing.T) {
	type op struct {
		Kind byte // 0 request, 1 arrive, 2 squash
		Line byte
	}
	f := func(ops []op) bool {
		b := NewBSHR(4)
		requested := map[uint64]int{}
		released := map[uint64]int{}
		tok := ooo.LoadToken(0)
		for _, o := range ops {
			line := uint64(o.Line%8) * 64
			switch o.Kind % 3 {
			case 0:
				ready, _ := b.Request(line, tok, 0)
				requested[line]++
				if ready {
					released[line]++
				}
				tok++
			case 1:
				released[line] += len(b.Arrive(line, 1))
			case 2:
				b.Absorb(line)
			}
		}
		// Drain: deliver enough arrivals to release all waiters.
		for i := 0; i < len(ops)+8; i++ {
			for l := uint64(0); l < 8; l++ {
				line := l * 64
				if b.HasWaiter(line) {
					released[line] += len(b.Arrive(line, 2))
				}
			}
		}
		if b.Waiting() != 0 {
			return false
		}
		for line, req := range requested {
			if released[line] != req {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
