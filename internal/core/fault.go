package core

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// faultState is the per-machine instance of the fault-injection and
// resilience layer (package fault holds the configuration, plan, and
// report types; this file threads them through the machine). It exists
// only when Config.Fault.Enabled() — a machine without one pays nothing
// on any hot path beyond a nil check.
type faultState struct {
	cfg   fault.Config // defaults applied
	plan  *fault.Plan
	stats fault.Stats
	// report, once set, halts the run with a structured error at the end
	// of the current cycle's fault pass.
	report *fault.Report
	// deferGlobal is set for the duration of a parallel run: workers
	// apply only node-local fault effects (suppression, fingerprint
	// taint, retry service) and the barrier's replay walk re-derives the
	// global side — stats, drop/flip ground truth, the fingerprint
	// ledger — from the same pure injection decisions, in serial order.
	deferGlobal bool

	// Degradation engine: the ordered death schedule and per-node
	// liveness. schedule is fixed at machine construction (a pure
	// function of the plan), nextDeath indexes the first unexecuted
	// entry, and dead/liveCount track the survivors.
	schedule  []fault.Death
	nextDeath int
	dead      []bool
	liveCount int
	// deathIdx maps a dead node to its entry in stats.Deaths (-1 while
	// alive); detected/remapped make detection and recovery re-entrant —
	// each death is detected once and remapped once, independently.
	deathIdx []int
	detected []bool
	remapped []bool
	// replicas names, per re-replicated page, the standby node holding
	// (or receiving) a warm copy; warm records whether the warm-fill
	// actually arrived. A later death of the page's owner remaps onto
	// the standby, so cascading failures stay survivable.
	replicas map[uint64]int
	warm     map[uint64]bool

	// dropped records, per victim node, the cycle each line's delivery
	// was first dropped — the ground truth that lets a later timeout be
	// credited as a *detected* drop. Bookkeeping only: injection
	// decisions never read it.
	dropped []map[uint64]uint64
	// flippedAt records, per victim node, 1 + the earliest uncredited
	// flip-injection cycle (0 = no flip) and the number of uncredited
	// flips, for detection-latency and coverage attribution.
	flippedAt []uint64
	flipCount []uint64
	// ledger collects commit fingerprints per interval index until every
	// live node has reported, then cross-checks them.
	ledger map[uint64]map[int]uint64
}

func newFaultState(cfg fault.Config, nodes int) *faultState {
	fs := &faultState{
		cfg:       cfg,
		plan:      fault.NewPlan(cfg),
		dead:      make([]bool, nodes),
		liveCount: nodes,
		deathIdx:  make([]int, nodes),
		detected:  make([]bool, nodes),
		remapped:  make([]bool, nodes),
		dropped:   make([]map[uint64]uint64, nodes),
		flippedAt: make([]uint64, nodes),
		flipCount: make([]uint64, nodes),
	}
	fs.schedule = fs.plan.Schedule(nodes)
	for i := range fs.deathIdx {
		fs.deathIdx[i] = -1
	}
	for i := range fs.dropped {
		fs.dropped[i] = make(map[uint64]uint64)
	}
	if len(fs.schedule) > 0 {
		fs.replicas = make(map[uint64]int)
		fs.warm = make(map[uint64]bool)
	}
	if cfg.FingerprintInterval != 0 {
		fs.ledger = make(map[uint64]map[int]uint64)
	}
	return fs
}

// minQuorum is the effective minimum live-node count (configured quorum,
// floor 1).
func (fs *faultState) minQuorum() int {
	if fs.cfg.MinQuorum > 1 {
		return fs.cfg.MinQuorum
	}
	return 1
}

// FaultStats exposes the fault layer's counters (nil when the layer is
// disabled). The campaign harness reads it even from runs that halted
// with an error, where no Result is produced.
func (m *Machine) FaultStats() *fault.Stats {
	if m.fault == nil {
		return nil
	}
	return &m.fault.stats
}

// nodeDead reports whether node id has failed permanently.
func (m *Machine) nodeDead(id int) bool { return m.fault != nil && m.fault.dead[id] }

// maybeKill executes every scheduled death the clock has reached: the
// node's core freezes (never cycled again), its unsent interconnect
// traffic is purged, and all future arrivals to it are discarded. A
// kill that drops the live count below the minimum quorum arms a
// ClassQuorumLoss report — graceful degradation ran out of nodes.
func (m *Machine) maybeKill() {
	fs := m.fault
	for fs.nextDeath < len(fs.schedule) && fs.schedule[fs.nextDeath].Cycle <= m.now {
		d := fs.schedule[fs.nextDeath]
		fs.nextDeath++
		if fs.dead[d.Node] {
			continue // defensive: Validate rejects duplicate deaths
		}
		m.killNode(d.Node)
	}
}

// killNode executes one permanent node death at the current cycle.
func (m *Machine) killNode(id int) {
	fs := m.fault
	fs.dead[id] = true
	fs.liveCount--
	purged := m.net.PurgeSource(id)
	if !fs.stats.NodeDied {
		// Legacy scalar view: the first death of the schedule.
		fs.stats.NodeDied = true
		fs.stats.DeadNode = id
		fs.stats.DeathCycle = m.now
		fs.stats.SuccessorNode = -1
	}
	fs.stats.PurgedMessages += purged
	fs.stats.LiveNodes = fs.liveCount
	fs.deathIdx[id] = len(fs.stats.Deaths)
	fs.stats.Deaths = append(fs.stats.Deaths, fault.DeathStats{
		Node:           id,
		Cycle:          m.now,
		PurgedMessages: purged,
		SuccessorNode:  -1,
		CommitsAtDeath: m.nodes[m.firstLive()].core.Committed(),
		LiveAfter:      fs.liveCount,
	})
	if m.obs != nil {
		m.obs.Event(obs.Event{Cycle: m.now, Node: id, Kind: obs.EvFaultDeath, Arg: uint64(purged)})
	}
	m.traceEvent(id, "fault: permanent death, purged %d unsent messages", purged)
	// Fingerprint intervals that were only waiting on the dead node can
	// now be cross-checked among the survivors.
	fs.flushFingerprints(m)
	if fs.liveCount < fs.minQuorum() && fs.report == nil {
		if m.obs != nil {
			m.obs.Event(obs.Event{Cycle: m.now, Node: id, Kind: obs.EvFaultQuorumLoss, Arg: uint64(fs.liveCount)})
		}
		fs.report = &fault.Report{
			Class: fault.ClassQuorumLoss, Node: id, Cycle: m.now,
			Detail: fmt.Sprintf("%d live nodes below minimum quorum %d", fs.liveCount, fs.minQuorum()),
		}
	}
}

// handleFaultArrival applies the fault layer to one delivery under the
// serial loop: the global bookkeeping, then the node-local effect. It
// returns true when the arrival was consumed (resilience control
// traffic) or suppressed (dead receiver, injected drop); false hands
// the arrival to the ordinary broadcast path.
func (m *Machine) handleFaultArrival(arr bus.Arrival) bool {
	fs := m.fault
	if fs.dead[arr.Node] {
		return true // a dead chip neither receives nor responds
	}
	m.faultArrivalGlobal(arr.Node, arr.Msg, m.now)
	return m.faultArrivalLocal(m.nodes[arr.Node], arr.Msg, m.now)
}

// faultArrivalGlobal applies the machine-global side of one delivery at
// a live receiver: injection stats, drop/flip ground truth, retry
// service accounting, the fingerprint ledger, and warm-replica state.
// Under the serial loop it runs with the node-local side in one pass;
// under a parallel run it is the replay walk's half, re-deriving the
// worker's decisions from the same pure function of message identity.
func (m *Machine) faultArrivalGlobal(node int, msg bus.Message, now uint64) {
	fs := m.fault
	if fs.dead[node] {
		return
	}
	switch msg.Ctl {
	case bus.CtlRetryReq:
		fs.stats.RetriesServed++
		return
	case bus.CtlRetryResp:
		return
	case bus.CtlFingerprint:
		fs.recordFingerprint(m, msg.Src, msg.Addr, msg.Seq)
		return
	case bus.CtlWarmFill:
		// The standby's copy of the page is warm from here on: a later
		// death of the owner remaps onto it with the data already local.
		if fs.replicas[prog.PageOf(msg.Addr)] == node {
			fs.warm[prog.PageOf(msg.Addr)] = true
		}
		return
	}
	if msg.Kind != bus.Broadcast {
		return
	}
	if fs.plan.DropArrival(msg.Src, node, msg.Addr, msg.Seq) {
		fs.stats.InjectedDrops++
		if _, seen := fs.dropped[node][msg.Addr]; !seen {
			fs.dropped[node][msg.Addr] = now
		}
		return
	}
	if _, ok := fs.plan.FlipArrival(msg.Src, node, msg.Addr, msg.Seq); ok {
		fs.stats.InjectedFlips++
		if fs.flippedAt[node] == 0 {
			fs.flippedAt[node] = now + 1
		}
		fs.flipCount[node]++
	}
}

// faultArrivalLocal applies the node-local side of one delivery at a
// live receiver: retry service, resend absorption, delivery suppression
// for injected drops, and the fingerprint taint of an injected flip.
// Every effect touches only the receiving node's own state (plus its
// leased network/observer shims), so workers run it inside parallel
// windows. It returns true when the arrival was consumed.
func (m *Machine) faultArrivalLocal(nd *node, msg bus.Message, now uint64) bool {
	fs := m.fault
	switch msg.Ctl {
	case bus.CtlRetryReq:
		m.serveRetry(nd, msg, now)
		return true
	case bus.CtlRetryResp:
		// A directed resend satisfies the waiting BSHR entry exactly like
		// the lost broadcast would have.
		m.traceEvent(nd.id, "fault: retry response line=0x%x from node %d", msg.Addr, msg.Src)
		nd.onBroadcast(msg.Addr, now)
		return true
	case bus.CtlFingerprint:
		return true // ledger-only: handled on the global side
	case bus.CtlWarmFill:
		nd.obsEvent(obs.EvFaultWarmFill, msg.Addr, uint64(msg.Src))
		m.traceEvent(nd.id, "fault: warm fill page=0x%x from node %d", msg.Addr, msg.Src)
		return true
	}
	if msg.Kind != bus.Broadcast {
		return false
	}
	// Injection on ordinary data broadcasts. Control traffic above is
	// assumed reliable (docs/ROBUSTNESS.md): with a capped retry budget,
	// reliable control is what bounds detection time.
	if fs.plan.DropArrival(msg.Src, nd.id, msg.Addr, msg.Seq) {
		nd.obsEvent(obs.EvFaultDrop, msg.Addr, uint64(msg.Src))
		m.traceEvent(nd.id, "fault: dropped delivery line=0x%x from node %d", msg.Addr, msg.Src)
		return true
	}
	if taint, ok := fs.plan.FlipArrival(msg.Src, nd.id, msg.Addr, msg.Seq); ok {
		// The timing model carries no payload (each node's emulator
		// computes every value), so the corruption is modeled as a taint
		// on the victim's commit fingerprint: visible to the fingerprint
		// exchange, invisible otherwise — exactly a silent data error.
		nd.fpAccum ^= taint
		nd.obsEvent(obs.EvFaultFlip, msg.Addr, uint64(msg.Src))
		// Delivery itself proceeds: a flip corrupts data, not arrival.
	}
	return false
}

// serveRetry answers a directed re-request: the addressed node reads the
// line from its local memory (in this timing model every node's local
// memory can source any line — the machine assumes a backing copy, which
// the redundant-execution substrate guarantees functionally) and sends a
// point-to-point resend to the requester. Node-local by construction:
// the enqueue rides the node's own (possibly leased) network.
func (m *Machine) serveRetry(nd *node, msg bus.Message, now uint64) {
	dataAt := nd.dram.Access(now, msg.Addr)
	nd.obsEvent(obs.EvFaultRetryServed, msg.Addr, uint64(msg.Src))
	m.traceEvent(nd.id, "fault: serving retry line=0x%x for node %d", msg.Addr, msg.Src)
	nd.net.Enqueue(bus.Message{
		Kind:         bus.Response,
		Ctl:          bus.CtlRetryResp,
		Src:          nd.id,
		Dst:          msg.Src,
		Addr:         msg.Addr,
		PayloadBytes: m.cfg.L1.LineBytes,
		ReadyAt:      dataAt + m.cfg.BcastQueueCycles,
	})
}

// checkTimeouts runs the BSHR deadline pass for every live node: expired
// waits become re-requests, and exhausted ones escalate to death
// detection (dead owner) or a lost-line report (live owner).
func (m *Machine) checkTimeouts() {
	fs := m.fault
	for _, nd := range m.nodes {
		if fs.dead[nd.id] {
			continue
		}
		for _, ex := range nd.bshr.Expired(m.now) {
			m.onTimeout(nd, ex)
			if fs.report != nil {
				return
			}
		}
	}
}

// onTimeout handles one expired BSHR wait at node nd.
func (m *Machine) onTimeout(nd *node, ex ExpiredWait) {
	fs := m.fault
	fs.stats.Timeouts++
	nd.obsEvent(obs.EvFaultTimeout, ex.Line, uint64(ex.Retries))
	// Ground truth: credit the timeout as a detected drop when this very
	// line's delivery to this node was injected away.
	if at, seen := fs.dropped[nd.id][ex.Line]; seen {
		delete(fs.dropped[nd.id], ex.Line)
		fs.stats.DetectedDrops++
		fs.stats.Detections++
		fs.stats.DetectLatencySum += m.now - at
	}
	owner := m.pt.OwnerOf(ex.Line)
	if owner == nd.id {
		// This node became the line's owner (post-remap successor): the
		// stalled loads complete from local memory.
		m.selfServe(nd, ex.Line)
		return
	}
	if ex.Retries >= fs.cfg.MaxRetries {
		if owner >= 0 && fs.dead[owner] {
			m.onDeathDetected(nd, ex.Line, owner)
			return
		}
		fs.report = &fault.Report{
			Class: fault.ClassLost, Node: owner, Cycle: m.now, Line: ex.Line,
			Detail: fmt.Sprintf("node %d exhausted %d retries against a live owner", nd.id, ex.Retries),
		}
		return
	}
	// Directed re-request. To a dead owner it simply vanishes with the
	// other arrivals — the requester learns of the death only through
	// retry exhaustion, modelling timeout-based failure detection.
	m.sendRetry(nd, ex.Line, owner)
}

// sendRetry enqueues a directed re-request for line to owner.
func (m *Machine) sendRetry(nd *node, line uint64, owner int) {
	m.fault.stats.Retries++
	nd.obsEvent(obs.EvFaultRetry, line, uint64(owner))
	m.traceEvent(nd.id, "fault: retry line=0x%x -> owner %d", line, owner)
	m.net.Enqueue(bus.Message{
		Kind:    bus.Request,
		Ctl:     bus.CtlRetryReq,
		Src:     nd.id,
		Dst:     owner,
		Addr:    line,
		ReadyAt: m.now + m.cfg.BcastQueueCycles,
	})
}

// onDeathDetected escalates a retry-exhausted wait against dead owner
// `dead`: record the per-death detection, then either remap the dead
// node's pages (re-replicating the inherited set so the *next* death is
// survivable too) and continue degraded, or halt with a structured
// report — never a silent wrong answer, never an unexplained watchdog.
// Re-entrant: each death of a multi-death schedule is detected and
// remapped independently, guarded per node.
func (m *Machine) onDeathDetected(nd *node, line uint64, dead int) {
	fs := m.fault
	if !fs.detected[dead] {
		fs.detected[dead] = true
		ds := &fs.stats.Deaths[fs.deathIdx[dead]]
		ds.Detected = true
		ds.DetectedAt = m.now
		ds.DetectLatency = m.now - ds.Cycle
		fs.stats.Detections++
		fs.stats.DetectLatencySum += m.now - ds.Cycle
		if !fs.stats.DeathDetected {
			fs.stats.DeathDetected = true
			fs.stats.DeathDetectedAt = m.now
		}
	}
	if !fs.cfg.Recover {
		fs.report = &fault.Report{
			Class: fault.ClassDeath, Node: dead, Cycle: m.now, Line: line,
			Detail: fmt.Sprintf("owner unresponsive after %d retries", fs.cfg.MaxRetries),
		}
		return
	}
	if !fs.remapped[dead] {
		fs.remapped[dead] = true
		m.remapDead(dead)
	}
	// Serve this wait immediately under the new mapping.
	if owner := m.pt.OwnerOf(line); owner == nd.id {
		m.selfServe(nd, line)
	} else {
		m.sendRetry(nd, line, owner)
	}
}

// remapDead moves every page the dead node owned onto survivors and
// re-replicates the inherited set. Per page: a live standby already
// holding a (warm or in-flight) replica inherits directly; otherwise
// ownership falls to the next live node in ring order. The new owners
// then push warm copies of up to WarmFillMaxPages inherited pages to
// fresh standbys over the interconnect — bounded re-replication traffic
// that makes a subsequent death of the successor survivable with the
// data already in place. Every live node's stalled waits are re-armed so
// they re-request the new owners promptly instead of sitting out long
// backoffs — the act of disseminating the failure verdict.
func (m *Machine) remapDead(dead int) {
	fs := m.fault
	ds := &fs.stats.Deaths[fs.deathIdx[dead]]
	ringSucc := m.successorOf(dead)
	type inherited struct {
		pg    uint64
		owner int
	}
	var moved []inherited
	for _, pg := range m.pt.OwnedPages(dead) {
		succ := ringSucc
		if r, ok := fs.replicas[pg]; ok && !fs.dead[r] {
			succ = r
			if fs.warm[pg] {
				ds.WarmRemaps++
				fs.stats.WarmRemaps++
			}
		}
		delete(fs.replicas, pg)
		delete(fs.warm, pg)
		m.pt.SetOwner(pg, succ)
		moved = append(moved, inherited{pg: pg, owner: succ})
	}
	ds.SuccessorNode = ringSucc
	ds.RemappedPages = len(moved)
	fs.stats.RemappedPages += len(moved)
	if !fs.stats.Degraded {
		fs.stats.Degraded = true
		fs.stats.SuccessorNode = ringSucc
	}
	if m.obs != nil {
		m.obs.Event(obs.Event{Cycle: m.now, Node: ringSucc, Kind: obs.EvFaultRemap, Arg: uint64(len(moved))})
	}
	m.traceEvent(ringSucc, "fault: remapped %d pages from dead node %d", len(moved), dead)
	// Warm-fill: bounded re-replication of the inherited pages. The
	// payload is one line per page — ownership metadata plus the hot
	// line; the backing-copy assumption makes the rest of the page a
	// functional no-op, so the protocol stays cheap by construction.
	if fs.liveCount >= 2 {
		budget := fs.cfg.WarmFillMaxPages
		for _, in := range moved {
			if budget <= 0 {
				break
			}
			standby := m.successorOf(in.owner)
			if standby == in.owner {
				break // one live node: nobody left to replicate onto
			}
			fs.replicas[in.pg] = standby
			fs.warm[in.pg] = false
			addr := in.pg * prog.PageSize
			if m.obs != nil {
				m.obs.Event(obs.Event{Cycle: m.now, Node: in.owner, Kind: obs.EvFaultWarmFill, Addr: addr, Arg: uint64(standby)})
			}
			m.net.Enqueue(bus.Message{
				Kind:         bus.Response,
				Ctl:          bus.CtlWarmFill,
				Src:          in.owner,
				Dst:          standby,
				Addr:         addr,
				PayloadBytes: m.cfg.L1.LineBytes,
				ReadyAt:      m.now + m.cfg.BcastQueueCycles,
			})
			wire := uint64(bus.HeaderBytes + m.cfg.L1.LineBytes)
			ds.WarmFillMsgs++
			ds.WarmFillBytes += wire
			fs.stats.WarmFillMsgs++
			fs.stats.WarmFillBytes += wire
			budget--
		}
	}
	for _, other := range m.nodes {
		if !fs.dead[other.id] {
			other.bshr.RearmAll(m.now)
		}
	}
}

// successorOf picks a dead node's page inheritor: the next live node in
// ring order. With at least one live node it always terminates on one.
func (m *Machine) successorOf(dead int) int {
	for i := 1; i <= m.cfg.Nodes; i++ {
		if n := (dead + i) % m.cfg.Nodes; !m.fault.dead[n] {
			return n
		}
	}
	return dead // unreachable: quorum enforcement keeps >=1 node alive
}

// selfServe completes the stalled loads waiting on line from nd's own
// local memory — nd owns the line now (it is the post-remap successor).
func (m *Machine) selfServe(nd *node, line uint64) {
	toks := nd.bshr.TakeWaiting(line)
	if len(toks) == 0 {
		return
	}
	m.fault.stats.SelfServes++
	dataAt := nd.dram.Access(m.now, line)
	for _, tok := range toks {
		nd.core.CompleteLoad(tok, dataAt)
	}
	// The completions invalidate any sleep certificate the node holds.
	if nd.wake > m.now {
		nd.wake = m.now
	}
	if e, ok := nd.outstanding[line]; ok && e.pending {
		e.pending = false
		e.dataAt = dataAt
	}
	m.traceEvent(nd.id, "fault: self-served line=0x%x as new owner", line)
}

// emitFingerprint broadcasts node n's commit fingerprint at an interval
// boundary and records n's own value in the machine ledger. Under a
// parallel run the ledger/stat side is deferred: the replay drain
// (onDrainEnqueue) re-applies it when the buffered broadcast reaches the
// real interconnect, at the same serial position.
func (fs *faultState) emitFingerprint(n *node, now uint64) {
	idx := n.memCommits / fs.cfg.FingerprintInterval
	n.obsEvent(obs.EvFaultFingerprint, idx, n.fpAccum)
	// The send charges a local-memory read of the fingerprint register
	// before the broadcast-queue penalty, the same path a data broadcast
	// takes. That also keeps the interconnect's sender-floor invariant —
	// every worker-side enqueue stays past the parallel window — intact.
	ready := now + n.cfg.BcastQueueCycles +
		uint64(n.cfg.DRAM.AccessCycles) + uint64(n.cfg.DRAM.BusCycles)
	n.net.Enqueue(bus.Message{
		Kind:         bus.Broadcast,
		Ctl:          bus.CtlFingerprint,
		Src:          n.id,
		Addr:         idx,
		Seq:          n.fpAccum,
		PayloadBytes: 8,
		ReadyAt:      ready,
	})
	if !fs.deferGlobal {
		fs.stats.FPBroadcasts++
		fs.recordFingerprint(n.m, n.id, idx, n.fpAccum)
	}
}

// onDrainEnqueue applies the deferred global side of a worker-buffered
// outbound message as the replay drains it onto the real interconnect:
// the sender-side delay injection stats of a data broadcast, and the
// self-record of a fingerprint broadcast — each at the exact serial
// position the buffered enqueue occupies.
func (fs *faultState) onDrainEnqueue(m *Machine, msg bus.Message) {
	switch msg.Ctl {
	case bus.CtlFingerprint:
		fs.stats.FPBroadcasts++
		fs.recordFingerprint(m, msg.Src, msg.Addr, msg.Seq)
	case bus.CtlNone:
		if msg.Kind == bus.Broadcast {
			if extra := fs.plan.DelayExtra(msg.Src, msg.Addr, msg.Seq); extra != 0 {
				fs.stats.InjectedDelays++
				fs.stats.DelayCycles += extra
			}
		}
	case bus.CtlRetryReq, bus.CtlRetryResp, bus.CtlWarmFill:
		// Retry service is credited at the request's arrival; retry and
		// warm-fill sends are barrier-side and never worker-buffered.
	}
}

// recordFingerprint stores one node's fingerprint for interval idx and
// cross-checks the interval once every live node has reported. A node's
// own value enters at compute time; other nodes' values enter when their
// broadcast first arrives, so detection latency includes the exchange's
// real interconnect delay.
func (fs *faultState) recordFingerprint(m *Machine, src int, idx, fp uint64) {
	if fs.report != nil {
		return
	}
	vals := fs.ledger[idx]
	if vals == nil {
		vals = make(map[int]uint64, len(m.nodes))
		fs.ledger[idx] = vals
	}
	if _, dup := vals[src]; dup {
		return // a ring delivers the same broadcast at several nodes
	}
	vals[src] = fp
	fs.resolveFingerprint(m, idx, vals)
}

// resolveFingerprint cross-checks interval idx once complete: pairwise
// comparison, majority-vote attribution (impossible with two voters),
// and a divergence report on any mismatch.
func (fs *faultState) resolveFingerprint(m *Machine, idx uint64, vals map[int]uint64) {
	for _, nd := range m.nodes {
		if m.nodeDead(nd.id) {
			continue
		}
		if _, ok := vals[nd.id]; !ok {
			return // incomplete: some live node has not reported yet
		}
	}
	delete(fs.ledger, idx)
	// Deterministic node order (never map order).
	var reported []int
	for _, nd := range m.nodes {
		if _, ok := vals[nd.id]; ok {
			reported = append(reported, nd.id)
		}
	}
	n := len(reported)
	fs.stats.FPChecks += uint64(n*(n-1)) / 2
	allEqual := true
	for _, id := range reported[1:] {
		if vals[id] != vals[reported[0]] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return
	}
	fs.stats.FPMismatches++
	// Majority vote: nodes disagreeing with a strict-majority value are
	// the culprits (report the lowest); with no majority — e.g. two
	// nodes — attribution is impossible.
	culprit := -1
	var majority uint64
	best := 0
	for _, id := range reported {
		count := 0
		for _, other := range reported {
			if vals[other] == vals[id] {
				count++
			}
		}
		if count > best {
			best, majority = count, vals[id]
		}
	}
	if 2*best > n {
		for _, id := range reported {
			if vals[id] != majority {
				culprit = id
				break
			}
		}
	}
	// Ground-truth credit: the divergence was caught regardless of
	// whether a majority could name the culprit, so every uncredited
	// injected flip at a reporting victim counts as detected, with
	// latency measured from its victim's earliest uncredited flip.
	for _, id := range reported {
		if fs.flippedAt[id] != 0 {
			fs.stats.DetectedFlips += fs.flipCount[id]
			fs.stats.Detections += fs.flipCount[id]
			fs.stats.DetectLatencySum += fs.flipCount[id] * (m.now - (fs.flippedAt[id] - 1))
			fs.flippedAt[id], fs.flipCount[id] = 0, 0
		}
	}
	if m.obs != nil {
		m.obs.Event(obs.Event{Cycle: m.now, Node: culprit, Kind: obs.EvFaultDivergence, Addr: idx})
	}
	fs.report = &fault.Report{
		Class: fault.ClassDivergence, Node: culprit, Cycle: m.now,
		Detail: fmt.Sprintf("commit fingerprints disagree at interval %d (%d nodes reporting)", idx, n),
	}
}

// flushFingerprints re-evaluates pending intervals after a death: ones
// that were only waiting on the dead node resolve among the survivors.
func (fs *faultState) flushFingerprints(m *Machine) {
	if len(fs.ledger) == 0 {
		return
	}
	idxs := make([]uint64, 0, len(fs.ledger))
	for k := range fs.ledger {
		idxs = append(idxs, k)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, k := range idxs {
		if vals, ok := fs.ledger[k]; ok {
			fs.resolveFingerprint(m, k, vals)
			if fs.report != nil {
				return
			}
		}
	}
}

// minRetryDeadline returns the earliest BSHR deadline across live nodes
// (NoDeadline when nothing waits).
func (m *Machine) minRetryDeadline() uint64 {
	fs := m.fault
	next := uint64(NoDeadline)
	for _, nd := range m.nodes {
		if fs.dead[nd.id] {
			continue
		}
		if d := nd.bshr.NextDeadline(); d < next {
			next = d
		}
	}
	return next
}

// faultNextEvent returns the earliest future cycle at which the fault
// layer must act — the next scheduled death, or a live node's earliest
// BSHR deadline — so the cycle-skipping scheduler never jumps past a
// timeout or a death event. Clamped to m.now so an already-due event
// blocks skipping rather than producing a bogus jump target.
func (m *Machine) faultNextEvent() uint64 {
	fs := m.fault
	next := m.minRetryDeadline()
	if fs.nextDeath < len(fs.schedule) && fs.schedule[fs.nextDeath].Cycle < next {
		next = fs.schedule[fs.nextDeath].Cycle
	}
	if next < m.now {
		next = m.now
	}
	return next
}
