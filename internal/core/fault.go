package core

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// faultState is the per-machine instance of the fault-injection and
// resilience layer (package fault holds the configuration, plan, and
// report types; this file threads them through the machine). It exists
// only when Config.Fault.Enabled() — a machine without one pays nothing
// on any hot path beyond a nil check.
type faultState struct {
	cfg  fault.Config // defaults applied
	plan *fault.Plan
	stats fault.Stats
	// report, once set, halts the run with a structured error at the end
	// of the current cycle's fault pass.
	report *fault.Report

	// dropped records, per victim node, the cycle each line's delivery
	// was first dropped — the ground truth that lets a later timeout be
	// credited as a *detected* drop. Bookkeeping only: injection
	// decisions never read it.
	dropped []map[uint64]uint64
	// flippedAt records, per victim node, 1 + the earliest uncredited
	// flip-injection cycle (0 = no flip) and the number of uncredited
	// flips, for detection-latency and coverage attribution.
	flippedAt []uint64
	flipCount []uint64
	// ledger collects commit fingerprints per interval index until every
	// live node has reported, then cross-checks them.
	ledger map[uint64]map[int]uint64
}

func newFaultState(cfg fault.Config, nodes int) *faultState {
	fs := &faultState{
		cfg:       cfg,
		plan:      fault.NewPlan(cfg),
		dropped:   make([]map[uint64]uint64, nodes),
		flippedAt: make([]uint64, nodes),
		flipCount: make([]uint64, nodes),
	}
	for i := range fs.dropped {
		fs.dropped[i] = make(map[uint64]uint64)
	}
	if cfg.FingerprintInterval != 0 {
		fs.ledger = make(map[uint64]map[int]uint64)
	}
	return fs
}

// FaultStats exposes the fault layer's counters (nil when the layer is
// disabled). The campaign harness reads it even from runs that halted
// with an error, where no Result is produced.
func (m *Machine) FaultStats() *fault.Stats {
	if m.fault == nil {
		return nil
	}
	return &m.fault.stats
}

// deadNode returns the failed node's id, or -1 while every node is live.
func (m *Machine) deadNode() int {
	if m.fault != nil && m.fault.stats.NodeDied {
		return m.fault.cfg.DeadNode
	}
	return -1
}

// nodeDead reports whether node id has failed permanently.
func (m *Machine) nodeDead(id int) bool { return m.deadNode() == id }

// maybeKill executes the configured permanent node death once the clock
// reaches the death cycle: the node's core freezes (never cycled again),
// its unsent interconnect traffic is purged, and all future arrivals to
// it are discarded.
func (m *Machine) maybeKill() {
	fs := m.fault
	if fs.cfg.DeathCycle == 0 || fs.stats.NodeDied || m.now < fs.cfg.DeathCycle {
		return
	}
	dead := fs.cfg.DeadNode
	fs.stats.NodeDied = true
	fs.stats.DeadNode = dead
	fs.stats.DeathCycle = m.now
	fs.stats.SuccessorNode = -1
	fs.stats.PurgedMessages = m.net.PurgeSource(dead)
	if m.obs != nil {
		m.obs.Event(obs.Event{Cycle: m.now, Node: dead, Kind: obs.EvFaultDeath, Arg: uint64(fs.stats.PurgedMessages)})
	}
	m.traceEvent(dead, "fault: permanent death, purged %d unsent messages", fs.stats.PurgedMessages)
	// Fingerprint intervals that were only waiting on the dead node can
	// now be cross-checked among the survivors.
	fs.flushFingerprints(m)
}

// handleFaultArrival applies the fault layer to one delivery. It returns
// true when the arrival was consumed (resilience control traffic) or
// suppressed (dead receiver, injected drop); false hands the arrival to
// the ordinary broadcast path.
func (m *Machine) handleFaultArrival(arr bus.Arrival) bool {
	fs := m.fault
	if fs.stats.NodeDied && arr.Node == fs.cfg.DeadNode {
		return true // a dead chip neither receives nor responds
	}
	msg := arr.Msg
	switch msg.Ctl {
	case bus.CtlRetryReq:
		m.serveRetry(arr.Node, msg)
		return true
	case bus.CtlRetryResp:
		// A directed resend satisfies the waiting BSHR entry exactly like
		// the lost broadcast would have.
		m.traceEvent(arr.Node, "fault: retry response line=0x%x from node %d", msg.Addr, msg.Src)
		m.nodes[arr.Node].onBroadcast(msg.Addr, m.now)
		return true
	case bus.CtlFingerprint:
		fs.recordFingerprint(m, msg.Src, msg.Addr, msg.Seq)
		return true
	}
	if msg.Kind != bus.Broadcast {
		return false
	}
	// Injection on ordinary data broadcasts. Control traffic above is
	// assumed reliable (docs/ROBUSTNESS.md): with a capped retry budget,
	// reliable control is what bounds detection time.
	if fs.plan.DropArrival(msg.Src, arr.Node, msg.Addr, msg.Seq) {
		fs.stats.InjectedDrops++
		if _, seen := fs.dropped[arr.Node][msg.Addr]; !seen {
			fs.dropped[arr.Node][msg.Addr] = m.now
		}
		if m.obs != nil {
			m.obs.Event(obs.Event{Cycle: m.now, Node: arr.Node, Kind: obs.EvFaultDrop, Addr: msg.Addr, Arg: uint64(msg.Src)})
		}
		m.traceEvent(arr.Node, "fault: dropped delivery line=0x%x from node %d", msg.Addr, msg.Src)
		return true
	}
	if taint, ok := fs.plan.FlipArrival(msg.Src, arr.Node, msg.Addr, msg.Seq); ok {
		// The timing model carries no payload (each node's emulator
		// computes every value), so the corruption is modeled as a taint
		// on the victim's commit fingerprint: visible to the fingerprint
		// exchange, invisible otherwise — exactly a silent data error.
		fs.stats.InjectedFlips++
		m.nodes[arr.Node].fpAccum ^= taint
		if fs.flippedAt[arr.Node] == 0 {
			fs.flippedAt[arr.Node] = m.now + 1
		}
		fs.flipCount[arr.Node]++
		if m.obs != nil {
			m.obs.Event(obs.Event{Cycle: m.now, Node: arr.Node, Kind: obs.EvFaultFlip, Addr: msg.Addr, Arg: uint64(msg.Src)})
		}
		// Delivery itself proceeds: a flip corrupts data, not arrival.
	}
	return false
}

// serveRetry answers a directed re-request: the addressed node reads the
// line from its local memory (in this timing model every node's local
// memory can source any line — the machine assumes a backing copy, which
// the redundant-execution substrate guarantees functionally) and sends a
// point-to-point resend to the requester.
func (m *Machine) serveRetry(at int, msg bus.Message) {
	fs := m.fault
	fs.stats.RetriesServed++
	nd := m.nodes[at]
	dataAt := nd.dram.Access(m.now, msg.Addr)
	nd.obsEvent(obs.EvFaultRetryServed, msg.Addr, uint64(msg.Src))
	m.traceEvent(at, "fault: serving retry line=0x%x for node %d", msg.Addr, msg.Src)
	m.net.Enqueue(bus.Message{
		Kind:         bus.Response,
		Ctl:          bus.CtlRetryResp,
		Src:          at,
		Dst:          msg.Src,
		Addr:         msg.Addr,
		PayloadBytes: m.cfg.L1.LineBytes,
		ReadyAt:      dataAt + m.cfg.BcastQueueCycles,
	})
}

// checkTimeouts runs the BSHR deadline pass for every live node: expired
// waits become re-requests, and exhausted ones escalate to death
// detection (dead owner) or a lost-line report (live owner).
func (m *Machine) checkTimeouts() {
	fs := m.fault
	for _, nd := range m.nodes {
		if m.nodeDead(nd.id) {
			continue
		}
		for _, ex := range nd.bshr.Expired(m.now) {
			m.onTimeout(nd, ex)
			if fs.report != nil {
				return
			}
		}
	}
}

// onTimeout handles one expired BSHR wait at node nd.
func (m *Machine) onTimeout(nd *node, ex ExpiredWait) {
	fs := m.fault
	fs.stats.Timeouts++
	nd.obsEvent(obs.EvFaultTimeout, ex.Line, uint64(ex.Retries))
	// Ground truth: credit the timeout as a detected drop when this very
	// line's delivery to this node was injected away.
	if at, seen := fs.dropped[nd.id][ex.Line]; seen {
		delete(fs.dropped[nd.id], ex.Line)
		fs.stats.DetectedDrops++
		fs.stats.Detections++
		fs.stats.DetectLatencySum += m.now - at
	}
	owner := m.pt.OwnerOf(ex.Line)
	if owner == nd.id {
		// This node became the line's owner (post-remap successor): the
		// stalled loads complete from local memory.
		m.selfServe(nd, ex.Line)
		return
	}
	if ex.Retries >= fs.cfg.MaxRetries {
		if owner >= 0 && fs.stats.NodeDied && owner == fs.cfg.DeadNode {
			m.onDeathDetected(nd, ex.Line)
			return
		}
		fs.report = &fault.Report{
			Class: fault.ClassLost, Node: owner, Cycle: m.now, Line: ex.Line,
			Detail: fmt.Sprintf("node %d exhausted %d retries against a live owner", nd.id, ex.Retries),
		}
		return
	}
	// Directed re-request. To a dead owner it simply vanishes with the
	// other arrivals — the requester learns of the death only through
	// retry exhaustion, modelling timeout-based failure detection.
	m.sendRetry(nd, ex.Line, owner)
}

// sendRetry enqueues a directed re-request for line to owner.
func (m *Machine) sendRetry(nd *node, line uint64, owner int) {
	m.fault.stats.Retries++
	nd.obsEvent(obs.EvFaultRetry, line, uint64(owner))
	m.traceEvent(nd.id, "fault: retry line=0x%x -> owner %d", line, owner)
	m.net.Enqueue(bus.Message{
		Kind:    bus.Request,
		Ctl:     bus.CtlRetryReq,
		Src:     nd.id,
		Dst:     owner,
		Addr:    line,
		ReadyAt: m.now + m.cfg.BcastQueueCycles,
	})
}

// onDeathDetected escalates a retry-exhausted wait against the dead
// owner: record the detection, then either remap the dead node's pages
// to a live successor and continue degraded, or halt with a structured
// report — never a silent wrong answer, never an unexplained watchdog.
func (m *Machine) onDeathDetected(nd *node, line uint64) {
	fs := m.fault
	dead := fs.cfg.DeadNode
	if !fs.stats.DeathDetected {
		fs.stats.DeathDetected = true
		fs.stats.DeathDetectedAt = m.now
		fs.stats.Detections++
		fs.stats.DetectLatencySum += m.now - fs.stats.DeathCycle
	}
	if !fs.cfg.Recover {
		fs.report = &fault.Report{
			Class: fault.ClassDeath, Node: dead, Cycle: m.now, Line: line,
			Detail: fmt.Sprintf("owner unresponsive after %d retries", fs.cfg.MaxRetries),
		}
		return
	}
	if !fs.stats.Degraded {
		// Remap once: the dead node's communicated pages move to the next
		// live node (the machine's page table is a private clone, so the
		// mutation is invisible outside this run). Every live node's
		// stalled waits are re-armed so they re-request the new owner
		// promptly instead of sitting out long backoffs — the act of
		// disseminating the failure verdict.
		succ := m.successorOf(dead)
		fs.stats.RemappedPages = m.pt.ReassignOwner(dead, succ)
		fs.stats.SuccessorNode = succ
		fs.stats.Degraded = true
		if m.obs != nil {
			m.obs.Event(obs.Event{Cycle: m.now, Node: succ, Kind: obs.EvFaultRemap, Arg: uint64(fs.stats.RemappedPages)})
		}
		m.traceEvent(succ, "fault: remapped %d pages from dead node %d", fs.stats.RemappedPages, dead)
		for _, other := range m.nodes {
			if !m.nodeDead(other.id) {
				other.bshr.RearmAll(m.now)
			}
		}
	}
	// Serve this wait immediately under the new mapping.
	if owner := m.pt.OwnerOf(line); owner == nd.id {
		m.selfServe(nd, line)
	} else {
		m.sendRetry(nd, line, owner)
	}
}

// successorOf picks the dead node's page inheritor: the next live node
// in ring order.
func (m *Machine) successorOf(dead int) int {
	return (dead + 1) % m.cfg.Nodes
}

// selfServe completes the stalled loads waiting on line from nd's own
// local memory — nd owns the line now (it is the post-remap successor).
func (m *Machine) selfServe(nd *node, line uint64) {
	toks := nd.bshr.TakeWaiting(line)
	if len(toks) == 0 {
		return
	}
	m.fault.stats.SelfServes++
	dataAt := nd.dram.Access(m.now, line)
	for _, tok := range toks {
		nd.core.CompleteLoad(tok, dataAt)
	}
	// The completions invalidate any sleep certificate the node holds.
	if nd.wake > m.now {
		nd.wake = m.now
	}
	if e, ok := nd.outstanding[line]; ok && e.pending {
		e.pending = false
		e.dataAt = dataAt
	}
	m.traceEvent(nd.id, "fault: self-served line=0x%x as new owner", line)
}

// emitFingerprint broadcasts node n's commit fingerprint at an interval
// boundary and records n's own value in the machine ledger.
func (fs *faultState) emitFingerprint(n *node, now uint64) {
	idx := n.memCommits / fs.cfg.FingerprintInterval
	fs.stats.FPBroadcasts++
	n.obsEvent(obs.EvFaultFingerprint, idx, n.fpAccum)
	n.net.Enqueue(bus.Message{
		Kind:         bus.Broadcast,
		Ctl:          bus.CtlFingerprint,
		Src:          n.id,
		Addr:         idx,
		Seq:          n.fpAccum,
		PayloadBytes: 8,
		ReadyAt:      now + n.cfg.BcastQueueCycles,
	})
	fs.recordFingerprint(n.m, n.id, idx, n.fpAccum)
}

// recordFingerprint stores one node's fingerprint for interval idx and
// cross-checks the interval once every live node has reported. A node's
// own value enters at compute time; other nodes' values enter when their
// broadcast first arrives, so detection latency includes the exchange's
// real interconnect delay.
func (fs *faultState) recordFingerprint(m *Machine, src int, idx, fp uint64) {
	if fs.report != nil {
		return
	}
	vals := fs.ledger[idx]
	if vals == nil {
		vals = make(map[int]uint64, len(m.nodes))
		fs.ledger[idx] = vals
	}
	if _, dup := vals[src]; dup {
		return // a ring delivers the same broadcast at several nodes
	}
	vals[src] = fp
	fs.resolveFingerprint(m, idx, vals)
}

// resolveFingerprint cross-checks interval idx once complete: pairwise
// comparison, majority-vote attribution (impossible with two voters),
// and a divergence report on any mismatch.
func (fs *faultState) resolveFingerprint(m *Machine, idx uint64, vals map[int]uint64) {
	for _, nd := range m.nodes {
		if m.nodeDead(nd.id) {
			continue
		}
		if _, ok := vals[nd.id]; !ok {
			return // incomplete: some live node has not reported yet
		}
	}
	delete(fs.ledger, idx)
	// Deterministic node order (never map order).
	var reported []int
	for _, nd := range m.nodes {
		if _, ok := vals[nd.id]; ok {
			reported = append(reported, nd.id)
		}
	}
	n := len(reported)
	fs.stats.FPChecks += uint64(n*(n-1)) / 2
	allEqual := true
	for _, id := range reported[1:] {
		if vals[id] != vals[reported[0]] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return
	}
	fs.stats.FPMismatches++
	// Majority vote: nodes disagreeing with a strict-majority value are
	// the culprits (report the lowest); with no majority — e.g. two
	// nodes — attribution is impossible.
	culprit := -1
	var majority uint64
	best := 0
	for _, id := range reported {
		count := 0
		for _, other := range reported {
			if vals[other] == vals[id] {
				count++
			}
		}
		if count > best {
			best, majority = count, vals[id]
		}
	}
	if 2*best > n {
		for _, id := range reported {
			if vals[id] != majority {
				culprit = id
				break
			}
		}
	}
	// Ground-truth credit: the divergence was caught regardless of
	// whether a majority could name the culprit, so every uncredited
	// injected flip at a reporting victim counts as detected, with
	// latency measured from its victim's earliest uncredited flip.
	for _, id := range reported {
		if fs.flippedAt[id] != 0 {
			fs.stats.DetectedFlips += fs.flipCount[id]
			fs.stats.Detections += fs.flipCount[id]
			fs.stats.DetectLatencySum += fs.flipCount[id] * (m.now - (fs.flippedAt[id] - 1))
			fs.flippedAt[id], fs.flipCount[id] = 0, 0
		}
	}
	if m.obs != nil {
		m.obs.Event(obs.Event{Cycle: m.now, Node: culprit, Kind: obs.EvFaultDivergence, Addr: idx})
	}
	fs.report = &fault.Report{
		Class: fault.ClassDivergence, Node: culprit, Cycle: m.now,
		Detail: fmt.Sprintf("commit fingerprints disagree at interval %d (%d nodes reporting)", idx, n),
	}
}

// flushFingerprints re-evaluates pending intervals after a death: ones
// that were only waiting on the dead node resolve among the survivors.
func (fs *faultState) flushFingerprints(m *Machine) {
	if fs.ledger == nil || len(fs.ledger) == 0 {
		return
	}
	idxs := make([]uint64, 0, len(fs.ledger))
	for k := range fs.ledger {
		idxs = append(idxs, k)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, k := range idxs {
		if vals, ok := fs.ledger[k]; ok {
			fs.resolveFingerprint(m, k, vals)
			if fs.report != nil {
				return
			}
		}
	}
}

// faultNextEvent returns the earliest future cycle at which the fault
// layer must act — the pending death, or a live node's earliest BSHR
// deadline — so the cycle-skipping scheduler never jumps past a timeout
// or the death event. Clamped to m.now so an already-due event blocks
// skipping rather than producing a bogus jump target.
func (m *Machine) faultNextEvent() uint64 {
	fs := m.fault
	next := uint64(NoDeadline)
	if fs.cfg.DeathCycle != 0 && !fs.stats.NodeDied {
		next = fs.cfg.DeathCycle
	}
	for _, nd := range m.nodes {
		if m.nodeDead(nd.id) {
			continue
		}
		if d := nd.bshr.NextDeadline(); d < next {
			next = d
		}
	}
	if next < m.now {
		next = m.now
	}
	return next
}
