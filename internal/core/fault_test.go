package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// gatherLoads reads a multi-page zero-filled array without writing it
// first: every off-node line must arrive by broadcast, making this the
// densest broadcast workload of the three.
const gatherLoads = `
        .data
arr:    .space 32768
        .text
        la   r1, arr
        li   r2, 4096
        li   r3, 0
gather: ld   r5, 0(r1)
        add  r3, r3, r5
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, gather
        halt
`

// faultKernels are the workloads the resilience tests run: they differ
// in access pattern (streaming, dependent chasing, pure gathering) so
// drop recovery is exercised against distinct broadcast behaviours.
var faultKernels = []struct {
	name, src string
	dropRate  float64
}{
	{"streamSum", streamSum, 0.05},
	{"pointerChase", pointerChase, 0.05},
	{"gatherLoads", gatherLoads, 0.05},
}

// archState snapshots the registers that carry each kernel's results.
func archState(m *Machine, node int) [8]uint64 {
	var out [8]uint64
	for i := range out {
		out[i] = m.NodeEmu(node).Reg(uint8(i + 1))
	}
	return out
}

// TestFaultZeroConfigIdentical: a zero fault.Config must behave exactly
// like no fault layer at all — bit-identical Result and observation
// stream (the machine-level half of the zero-rate differential; the sim
// layer repeats it over every harness).
func TestFaultZeroConfigIdentical(t *testing.T) {
	for _, k := range faultKernels {
		t.Run(k.name, func(t *testing.T) {
			run := func(withZero bool) (Result, *obs.Trace) {
				trace := obs.NewTrace()
				m := buildMachine(t, k.src, 2, func(c *Config) {
					c.Observer = trace
					c.SampleInterval = 500
					if withZero {
						c.Fault = fault.Config{} // explicitly zero
					}
				})
				if withZero && m.fault != nil {
					t.Fatal("zero fault.Config built fault state")
				}
				return mustRunMachine(t, m), trace
			}
			base, baseTrace := run(false)
			zero, zeroTrace := run(true)
			if !reflect.DeepEqual(base, zero) {
				t.Fatalf("zero fault config changed the result:\nbase: %+v\nzero: %+v", base, zero)
			}
			if !reflect.DeepEqual(baseTrace, zeroTrace) {
				t.Fatal("zero fault config changed the observation stream")
			}
		})
	}
}

// TestDropRecovery: with transient broadcast drops injected, every
// kernel must still complete with correspondent caches, the same
// committed work, and the same architectural results as the fault-free
// run — the drops are detected by BSHR timeout and repaired by directed
// retries, never silently corrupting anything.
func TestDropRecovery(t *testing.T) {
	for _, k := range faultKernels {
		t.Run(k.name, func(t *testing.T) {
			clean := buildMachine(t, k.src, 2, nil)
			cleanRes := mustRunMachine(t, clean)

			m := buildMachine(t, k.src, 2, func(c *Config) {
				c.Fault = fault.Config{
					Seed:               11,
					DropRate:           k.dropRate,
					RetryTimeoutCycles: 1_000,
					MaxRetries:         4,
				}
			})
			r := mustRunMachine(t, m)
			if r.Fault == nil {
				t.Fatal("fault stats missing")
			}
			if r.Fault.InjectedDrops == 0 {
				t.Fatal("no drops injected (rate/seed too tame for this kernel)")
			}
			if r.Fault.Retries == 0 || r.Fault.RetriesServed == 0 {
				t.Fatalf("drops were not repaired by retries: %+v", r.Fault)
			}
			if r.Fault.DetectedDrops == 0 {
				t.Fatalf("no injected drop was credited as detected: %+v", r.Fault)
			}
			if r.Instructions != cleanRes.Instructions {
				t.Fatalf("committed work changed: %d vs clean %d", r.Instructions, cleanRes.Instructions)
			}
			if got, want := archState(m, 0), archState(clean, 0); got != want {
				t.Fatalf("architectural results corrupted: %v vs clean %v", got, want)
			}
			if r.Fault.MeanDetectLatency() <= 0 {
				t.Fatalf("detection latency not measured: %+v", r.Fault)
			}
		})
	}
}

// TestFaultDeterministicAndSkipInvariant: a seeded faulty run must be
// bit-reproducible, and bit-identical between the cycle-skipping and
// polled schedulers (timeouts and the death cycle are skip barriers).
func TestFaultDeterministicAndSkipInvariant(t *testing.T) {
	cfg := fault.Config{
		Seed:               99,
		DropRate:           0.03,
		DelayRate:          0.05,
		DelayMaxCycles:     300,
		RetryTimeoutCycles: 1_500,
		MaxRetries:         4,
	}
	run := func(noSkip bool) Result {
		m := buildMachine(t, streamSum, 4, func(c *Config) {
			c.Fault = cfg
			c.NoCycleSkip = noSkip
		})
		return mustRunMachine(t, m)
	}
	a, b, polled := run(false), run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	if !reflect.DeepEqual(a, polled) {
		t.Fatalf("cycle skipping changed a faulty run:\nskip:   %+v\npolled: %+v", a, polled)
	}
	if a.Fault.InjectedDrops == 0 || a.Fault.InjectedDelays == 0 {
		t.Fatalf("expected both drops and delays: %+v", a.Fault)
	}
}

// TestDelayOnly: bounded delivery delays alone must never require
// detection — the machine absorbs them as ordinary latency.
func TestDelayOnly(t *testing.T) {
	m := buildMachine(t, pointerChase, 2, func(c *Config) {
		c.Fault = fault.Config{Seed: 5, DelayRate: 0.5, DelayMaxCycles: 100}
	})
	r := mustRunMachine(t, m)
	if r.Fault.InjectedDelays == 0 {
		t.Fatal("no delays injected")
	}
	if r.Fault.DelayCycles == 0 {
		t.Fatal("delay cycles not accounted")
	}
}

// TestDeathRecovery: a permanent owner death mid-run must be detected by
// retry exhaustion and recovered by remapping the dead node's pages to
// the successor; the run finishes degraded with uncorrupted results.
func TestDeathRecovery(t *testing.T) {
	clean := buildMachine(t, streamSum, 2, nil)
	cleanRes := mustRunMachine(t, clean)

	m := buildMachine(t, streamSum, 2, func(c *Config) {
		c.Fault = fault.Config{
			Seed:               1,
			DeadNode:           1,
			DeathCycle:         4_000,
			Recover:            true,
			RetryTimeoutCycles: 500,
			MaxRetries:         2,
		}
	})
	r, err := m.Run()
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !r.CorrespondenceOK {
		t.Fatal("sampled digests from the dead node's live phase must match")
	}
	f := r.Fault
	if f == nil || !f.NodeDied || !f.DeathDetected || !f.Degraded {
		t.Fatalf("death not detected/recovered: %+v", f)
	}
	if f.RemappedPages == 0 || f.SuccessorNode != 0 {
		t.Fatalf("remap missing: %+v", f)
	}
	if f.DeathDetectedAt <= f.DeathCycle {
		t.Fatalf("detection latency impossible: %+v", f)
	}
	if r.Instructions != cleanRes.Instructions {
		t.Fatalf("degraded run committed %d instructions, clean %d", r.Instructions, cleanRes.Instructions)
	}
	if got, want := archState(m, 0), archState(clean, 0); got != want {
		t.Fatalf("architectural results corrupted: %v vs clean %v", got, want)
	}
}

// TestDeathHalt: with recovery off, an owner death must halt with a
// structured death Report — never a silent wrong answer, never a bare
// watchdog.
func TestDeathHalt(t *testing.T) {
	m := buildMachine(t, streamSum, 2, func(c *Config) {
		c.Fault = fault.Config{
			Seed:               1,
			DeadNode:           1,
			DeathCycle:         4_000,
			RetryTimeoutCycles: 500,
			MaxRetries:         2,
		}
	})
	_, err := m.Run()
	var rep *fault.Report
	if !errors.As(err, &rep) {
		t.Fatalf("want *fault.Report, got %v", err)
	}
	if rep.Class != fault.ClassDeath || rep.Node != 1 {
		t.Fatalf("wrong report: %+v", rep)
	}
	if fs := m.FaultStats(); fs == nil || !fs.DeathDetected {
		t.Fatalf("halted run must still expose detection stats: %+v", fs)
	}
}

// TestFingerprintCleanRun: the exchange on a healthy machine produces
// broadcasts and checks but no mismatch, and the run completes with the
// fault-free architectural results (the exchange costs bandwidth, not
// correctness).
func TestFingerprintCleanRun(t *testing.T) {
	m := buildMachine(t, storeHeavy, 2, func(c *Config) {
		c.Fault = fault.Config{Seed: 3, FingerprintInterval: 256}
	})
	r := mustRunMachine(t, m)
	f := r.Fault
	if f.FPBroadcasts == 0 || f.FPChecks == 0 {
		t.Fatalf("exchange never ran: %+v", f)
	}
	if f.FPMismatches != 0 {
		t.Fatalf("false divergence on a healthy run: %+v", f)
	}
}

// TestFlipDetection: a payload corruption is invisible to the protocol
// but must surface as a fingerprint divergence with a structured report.
func TestFlipDetection(t *testing.T) {
	m := buildMachine(t, streamSum, 2, func(c *Config) {
		c.Fault = fault.Config{
			Seed:                21,
			FlipRate:            0.01,
			FingerprintInterval: 128,
		}
	})
	_, err := m.Run()
	var rep *fault.Report
	if !errors.As(err, &rep) {
		t.Fatalf("flip went undetected: err=%v", err)
	}
	if rep.Class != fault.ClassDivergence {
		t.Fatalf("wrong class: %+v", rep)
	}
	fs := m.FaultStats()
	if fs.InjectedFlips == 0 || fs.FPMismatches == 0 {
		t.Fatalf("stats inconsistent with a detected flip: %+v", fs)
	}
}

// TestFlipAttribution: with three voters a single corrupted node is
// outvoted and named in the report (majority attribution), and the
// ground-truth cross-check credits a detected flip with its latency.
func TestFlipAttribution(t *testing.T) {
	m := buildMachine(t, streamSum, 3, func(c *Config) {
		c.Fault = fault.Config{
			Seed:                4,
			FlipRate:            0.002,
			FingerprintInterval: 512,
		}
	})
	_, err := m.Run()
	var rep *fault.Report
	if !errors.As(err, &rep) {
		t.Skipf("seed injected no flip on this kernel: %v", err)
	}
	fs := m.FaultStats()
	if fs.InjectedFlips == 0 {
		t.Fatalf("divergence without injection: %+v", rep)
	}
	if rep.Node >= 0 {
		if fs.DetectedFlips == 0 || fs.MeanDetectLatency() <= 0 {
			t.Fatalf("attributed divergence must credit a detected flip: %+v", fs)
		}
	}
}

// TestDeadlockErrorFormat asserts the enriched watchdog diagnostics:
// the typed error carries per-node pending BSHR tags, interconnect
// queue depth, and last-commit cycles, all rendered in the message.
func TestDeadlockErrorFormat(t *testing.T) {
	m := buildMachine(t, pointerChase, 2, func(c *Config) {
		c.WatchdogCycles = 1 // fires on the first idle stretch
	})
	_, err := m.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want *DeadlockError, got %T: %v", err, err)
	}
	if dl.Cycle == 0 || len(dl.Nodes) != 2 {
		t.Fatalf("bad snapshot: %+v", dl)
	}
	msg := err.Error()
	for _, want := range []string{
		"core: deadlock: no commit progress at cycle",
		"netPending=",
		"node0{committed=",
		"lastCommit=",
		"srcPending=",
		"buffered=",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("deadlock message lacks %q:\n%s", want, msg)
		}
	}
	for _, n := range dl.Nodes {
		if n.ID == 0 && n.Committed == 0 {
			t.Fatal("node 0 snapshot empty")
		}
	}
}

// TestCascadeRecovery: an ordered two-death schedule on four nodes must
// be survived death by death — the first dead owner's pages remap to its
// successor and are re-replicated (warm-fill), so the successor's own
// death is again recoverable — finishing degraded on two nodes with the
// fault-free architectural results.
func TestCascadeRecovery(t *testing.T) {
	clean := buildMachine(t, streamSum, 4, nil)
	cleanRes := mustRunMachine(t, clean)

	m := buildMachine(t, streamSum, 4, func(c *Config) {
		c.Fault = fault.Config{
			Seed:                  9,
			Deaths:                []fault.Death{{Node: 1, Cycle: 3_000}, {Node: 2, Cycle: 12_000}},
			Recover:               true,
			RetryTimeoutCycles:    1_000,
			RetryBackoffCapCycles: 1_000,
			MaxRetries:            2,
		}
	})
	r, err := m.Run()
	if err != nil {
		t.Fatalf("cascade run failed: %v", err)
	}
	f := r.Fault
	if f == nil || len(f.Deaths) != 2 {
		t.Fatalf("want 2 per-death records: %+v", f)
	}
	if f.LiveNodes != 2 {
		t.Fatalf("want 2 survivors, got %d", f.LiveNodes)
	}
	for i, d := range f.Deaths {
		if !d.Detected {
			t.Fatalf("death %d undetected: %+v", i, d)
		}
		if d.DetectLatency == 0 || d.DetectedAt != d.Cycle+d.DetectLatency {
			t.Fatalf("death %d latency inconsistent: %+v", i, d)
		}
		if d.RemappedPages == 0 {
			t.Fatalf("death %d moved no pages: %+v", i, d)
		}
		if d.PostDeathIPC <= 0 {
			t.Fatalf("death %d post-death throughput missing: %+v", i, d)
		}
		if d.LiveAfter != 3-i {
			t.Fatalf("death %d wrong survivor count: %+v", i, d)
		}
	}
	// Node 1's pages go to ring successor 2; node 2's death must find the
	// warm replicas pushed after the first remap.
	if f.Deaths[0].SuccessorNode != 2 || f.Deaths[1].SuccessorNode != 3 {
		t.Fatalf("wrong successors: %+v", f.Deaths)
	}
	if f.WarmFillMsgs == 0 || f.WarmFillBytes == 0 {
		t.Fatalf("no re-replication traffic: %+v", f)
	}
	if f.WarmRemaps == 0 {
		t.Fatalf("second remap never hit a warm replica: %+v", f)
	}
	if !r.CorrespondenceOK {
		t.Fatal("correspondence broken by cascade recovery")
	}
	if r.Instructions != cleanRes.Instructions {
		t.Fatalf("committed work changed: %d vs clean %d", r.Instructions, cleanRes.Instructions)
	}
	if got, want := archState(m, 0), archState(clean, 0); got != want {
		t.Fatalf("architectural results corrupted: %v vs clean %v", got, want)
	}
}

// TestQuorumLoss: a cascade that drains the machine below MinQuorum must
// halt with a structured quorum-loss report at the fatal death's cycle,
// not a watchdog and not a silent answer.
func TestQuorumLoss(t *testing.T) {
	m := buildMachine(t, streamSum, 3, func(c *Config) {
		c.Fault = fault.Config{
			Seed:               9,
			Deaths:             []fault.Death{{Node: 1, Cycle: 3_000}, {Node: 2, Cycle: 12_000}},
			MinQuorum:          2,
			Recover:            true,
			RetryTimeoutCycles: 1_000,
			MaxRetries:         3,
		}
	})
	_, err := m.Run()
	var rep *fault.Report
	if !errors.As(err, &rep) {
		t.Fatalf("want *fault.Report, got %v", err)
	}
	if rep.Class != fault.ClassQuorumLoss || rep.Node != 2 || rep.Cycle != 12_000 {
		t.Fatalf("wrong report: %+v", rep)
	}
	fs := m.FaultStats()
	if fs.LiveNodes != 1 || len(fs.Deaths) != 2 {
		t.Fatalf("stats inconsistent with a quorum loss: %+v", fs)
	}
}

// TestCascadeParallelIdentical: an active multi-death plan must produce
// bit-identical results and observation streams under the conservative
// parallel loop — fault actions are pure functions of message identity,
// so the predict/replay protocol covers them.
func TestCascadeParallelIdentical(t *testing.T) {
	run := func(workers int) (Result, *obs.Trace) {
		trace := obs.NewTrace()
		m := buildMachine(t, streamSum, 4, func(c *Config) {
			c.Observer = trace
			c.SampleInterval = 500
			c.ParallelNodes = workers
			c.Fault = fault.Config{
				Seed:                9,
				Deaths:              []fault.Death{{Node: 1, Cycle: 3_000}, {Node: 2, Cycle: 12_000}},
				Recover:             true,
				DropRate:            0.01,
				FingerprintInterval: 2_048,
				RetryTimeoutCycles:  1_000,
				MaxRetries:          4,
			}
		})
		return mustRunMachine(t, m), trace
	}
	serial, serialTrace := run(1)
	for _, workers := range []int{2, 4} {
		par, parTrace := run(workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallel-%d result diverged:\nserial: %+v\npar:    %+v", workers, serial, par)
		}
		if !reflect.DeepEqual(serialTrace, parTrace) {
			t.Fatalf("parallel-%d observation stream diverged", workers)
		}
	}
}

// TestCascade64Mesh is the acceptance-scale cascade: three sequential
// owner deaths on a 64-node mesh must complete degraded — serially and
// with the nodes partitioned across four workers — with the same
// committed work and architectural results as the fault-free machine.
func TestCascade64Mesh(t *testing.T) {
	const nodes = 64
	mesh := func(c *Config) { c.Topology.Kind = bus.TopoMesh }
	clean := buildMachine(t, streamSum, nodes, mesh)
	cleanRes := mustRunMachine(t, clean)
	if cleanRes.Cycles <= 12_000 {
		t.Fatalf("clean run too short (%d cycles) for the death schedule", cleanRes.Cycles)
	}

	run := func(workers int) (*Machine, Result) {
		m := buildMachine(t, streamSum, nodes, func(c *Config) {
			mesh(c)
			c.ParallelNodes = workers
			c.Fault = fault.Config{
				Seed: 5,
				Deaths: []fault.Death{
					{Node: 1, Cycle: 3_000},
					{Node: 2, Cycle: 7_000},
					{Node: 3, Cycle: 11_000},
				},
				Recover:               true,
				RetryTimeoutCycles:    2_000,
				RetryBackoffCapCycles: 2_000,
				MaxRetries:            6,
			}
		})
		return m, mustRunMachine(t, m)
	}

	m, r := run(1)
	if r.Fault == nil || len(r.Fault.Deaths) != 3 {
		t.Fatalf("want 3 landed deaths, got %+v", r.Fault)
	}
	if r.Fault.LiveNodes != nodes-3 {
		t.Fatalf("live nodes = %d, want %d", r.Fault.LiveNodes, nodes-3)
	}
	if r.Instructions != cleanRes.Instructions {
		t.Fatalf("committed work changed: %d vs clean %d", r.Instructions, cleanRes.Instructions)
	}
	if got, want := archState(m, 0), archState(clean, 0); got != want {
		t.Fatalf("architectural state diverged: %v vs clean %v", got, want)
	}

	_, par := run(4)
	if !reflect.DeepEqual(r, par) {
		t.Fatalf("parallel-4 cascade diverged:\nserial: %+v\npar:    %+v", r, par)
	}
}
