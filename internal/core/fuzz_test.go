package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// The protocol fuzzer: random straight-line memory programs run under a
// deliberately tiny, conflict-prone cache so that lines bounce in and
// out between issue and commit — the regime that produces false hits,
// false misses, reparative broadcasts, and absorb traffic. Every program
// must complete (no protocol deadlock), keep the caches correspondent,
// and leave identical architectural state at every node.

// randomProgram emits a straight-line program of n memory operations over
// `pages` data pages, with register-computed addresses, occasional
// read-modify-write chains, and (when privRegions) private reduction
// regions.
func randomProgram(rng *stats.RNG, n, pages int, privRegions bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "        .data\narea:   .space %d\n        .text\n", pages*8192)
	fmt.Fprintf(&b, "        la   r1, area\n        li   r9, 1\nbench_main:\n")
	inRegion := false
	for i := 0; i < n; i++ {
		// Addresses constrained to the area, 8-aligned, biased toward a
		// small set of conflicting lines.
		var off int
		if rng.Intn(3) == 0 {
			off = rng.Intn(pages*8192/8) * 8 // anywhere
		} else {
			off = (rng.Intn(16)*512 + rng.Intn(4)*8) % (pages * 8192) // conflict-prone
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // load
			fmt.Fprintf(&b, "        li   r2, %d\n", off)
			fmt.Fprintf(&b, "        add  r3, r1, r2\n")
			fmt.Fprintf(&b, "        ld   r4, 0(r3)\n")
			fmt.Fprintf(&b, "        add  r9, r9, r4\n")
		case 4, 5, 6: // store
			fmt.Fprintf(&b, "        li   r2, %d\n", off)
			fmt.Fprintf(&b, "        add  r3, r1, r2\n")
			fmt.Fprintf(&b, "        sd   r9, 0(r3)\n")
		case 7: // read-modify-write (load feeds store)
			fmt.Fprintf(&b, "        li   r2, %d\n", off)
			fmt.Fprintf(&b, "        add  r3, r1, r2\n")
			fmt.Fprintf(&b, "        ld   r4, 0(r3)\n")
			fmt.Fprintf(&b, "        addi r4, r4, 7\n")
			fmt.Fprintf(&b, "        sd   r4, 0(r3)\n")
		case 8: // dependent pointer-ish access: address derived from data
			fmt.Fprintf(&b, "        li   r2, %d\n", off)
			fmt.Fprintf(&b, "        add  r3, r1, r2\n")
			fmt.Fprintf(&b, "        ld   r4, 0(r3)\n")
			fmt.Fprintf(&b, "        andi r4, r4, %d\n", pages*8192-8)
			fmt.Fprintf(&b, "        andi r4, r4, -8\n")
			fmt.Fprintf(&b, "        add  r3, r1, r4\n")
			fmt.Fprintf(&b, "        ld   r5, 0(r3)\n")
			fmt.Fprintf(&b, "        add  r9, r9, r5\n")
		case 9:
			if privRegions && !inRegion && rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "        li   r2, %d\n", off)
				fmt.Fprintf(&b, "        add  r3, r1, r2\n")
				fmt.Fprintf(&b, "        privb 0(r3)\n")
				inRegion = true
			} else if inRegion {
				fmt.Fprintf(&b, "        prive\n")
				inRegion = false
			} else {
				fmt.Fprintf(&b, "        nop\n")
			}
		}
	}
	if inRegion {
		fmt.Fprintf(&b, "        prive\n")
	}
	fmt.Fprintf(&b, "        halt\n")
	return b.String()
}

func fuzzOnce(t *testing.T, seed uint64, nodes int, privRegions, resultComm bool) {
	t.Helper()
	rng := stats.NewRNG(seed)
	src := randomProgram(rng, 120, 4, privRegions)
	p, err := asm.Assemble(fmt.Sprintf("fuzz-%d", seed), src)
	if err != nil {
		t.Fatalf("seed %d: assemble: %v", seed, err)
	}
	pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	cfg := DefaultConfig(nodes)
	cfg.L1.SizeBytes = 512 // conflict-prone: stress the protocol
	cfg.WatchdogCycles = 300_000
	cfg.DigestInterval = 8 // dense correspondence sampling
	cfg.ResultComm = resultComm
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("seed %d (nodes=%d priv=%v rc=%v): %v", seed, nodes, privRegions, resultComm, err)
	}
	if !r.CorrespondenceOK {
		t.Fatalf("seed %d: correspondence violated: %s\nprogram:\n%s",
			seed, m.CorrespondenceReport(), src)
	}
	// Architectural state identical across nodes.
	ref := m.NodeEmu(0)
	for i := 1; i < nodes; i++ {
		em := m.NodeEmu(i)
		for reg := uint8(1); reg < 32; reg++ {
			if em.Reg(reg) != ref.Reg(reg) {
				t.Fatalf("seed %d: node %d r%d = %d, node 0 has %d",
					seed, i, reg, em.Reg(reg), ref.Reg(reg))
			}
		}
	}
}

func TestProtocolFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		fuzzOnce(t, seed, 2, false, false)
	}
}

func TestProtocolFuzzThreeNodes(t *testing.T) {
	// Odd node counts exercise asymmetric ownership splits.
	for seed := uint64(100); seed <= 112; seed++ {
		fuzzOnce(t, seed, 3, false, false)
	}
}

func TestProtocolFuzzWithRegions(t *testing.T) {
	for seed := uint64(200); seed <= 215; seed++ {
		fuzzOnce(t, seed, 2, true, true)
	}
}

func TestProtocolFuzzRegionsInert(t *testing.T) {
	// The same region-bearing programs with result communication off.
	for seed := uint64(200); seed <= 210; seed++ {
		fuzzOnce(t, seed, 2, true, false)
	}
}

func TestProtocolFuzzFourNodesTinyBus(t *testing.T) {
	// A slow, narrow bus maximizes in-flight skew between nodes.
	for seed := uint64(300); seed <= 308; seed++ {
		rng := stats.NewRNG(seed)
		src := randomProgram(rng, 100, 4, false)
		p, err := asm.Assemble("fuzz", src)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := mem.Partition{NumNodes: 4, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(4)
		cfg.L1.SizeBytes = 512
		cfg.Topology.Bus.WidthBytes = 2
		cfg.Topology.Bus.ClockDivisor = 8
		cfg.WatchdogCycles = 500_000
		cfg.DigestInterval = 8
		m, err := NewMachine(cfg, p, pt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.CorrespondenceOK {
			t.Fatalf("seed %d: correspondence violated", seed)
		}
	}
}

func TestProtocolFuzzOnRing(t *testing.T) {
	// The correspondence protocol must hold regardless of interconnect:
	// on a ring, broadcasts reach different nodes at different cycles,
	// widening the issue-time divergence between nodes.
	for seed := uint64(400); seed <= 412; seed++ {
		rng := stats.NewRNG(seed)
		src := randomProgram(rng, 100, 4, false)
		p, err := asm.Assemble("fuzz", src)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := mem.Partition{NumNodes: 3, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(3)
		cfg.L1.SizeBytes = 512
		cfg.Topology.Kind = bus.TopoRing
		cfg.WatchdogCycles = 500_000
		cfg.DigestInterval = 8
		m, err := NewMachine(cfg, p, pt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.CorrespondenceOK {
			t.Fatalf("seed %d: correspondence violated on ring: %s", seed, m.CorrespondenceReport())
		}
	}
}

// fuzzDeathSchedule derives a random ordered multi-death schedule:
// distinct nodes, nonzero spaced cycles, and always at least one
// survivor (running below a configured quorum is still possible — that
// is a legal, structured outcome).
func fuzzDeathSchedule(rng *stats.RNG, nodes int) []fault.Death {
	maxDeaths := nodes - 1
	if maxDeaths > 3 {
		maxDeaths = 3
	}
	k := 1 + rng.Intn(maxDeaths)
	perm := rng.Perm(nodes)
	deaths := make([]fault.Death, k)
	cycle := uint64(1_000 + rng.Intn(8_000))
	for i := range deaths {
		deaths[i] = fault.Death{Node: perm[i], Cycle: cycle}
		cycle += uint64(2_000 + rng.Intn(8_000))
	}
	return deaths
}

// fuzzFaultConfig derives a random-but-valid fault plan from the fuzzer
// RNG: any mix of drops, delays, flips (with or without the fingerprint
// exchange that could catch them), and a mid-run death — legacy single
// or an ordered multi-death schedule.
func fuzzFaultConfig(rng *stats.RNG, nodes int) fault.Config {
	fc := fault.Config{
		Seed:               rng.Uint64(),
		RetryTimeoutCycles: 500 + uint64(rng.Intn(1500)),
		MaxRetries:         2 + rng.Intn(3),
	}
	if rng.Intn(2) == 0 {
		fc.DropRate = float64(rng.Intn(8)) / 100
	}
	if rng.Intn(2) == 0 {
		fc.DelayRate = float64(rng.Intn(20)) / 100
		fc.DelayMaxCycles = uint64(1 + rng.Intn(400))
	}
	if rng.Intn(3) == 0 {
		fc.FlipRate = float64(rng.Intn(3)) / 100
	}
	if rng.Intn(2) == 0 {
		fc.FingerprintInterval = uint64(64 << rng.Intn(4))
	}
	switch rng.Intn(6) {
	case 0, 1: // legacy single death
		fc.DeadNode = rng.Intn(nodes)
		fc.DeathCycle = uint64(1_000 + rng.Intn(20_000))
		fc.Recover = rng.Intn(2) == 0
	case 2: // ordered multi-death schedule
		fc.Deaths = fuzzDeathSchedule(rng, nodes)
		fc.Recover = rng.Intn(2) == 0
		if rng.Intn(2) == 0 {
			fc.MinQuorum = 1 + rng.Intn(nodes)
		}
	}
	return fc
}

// TestProtocolFuzzWithFaults runs random programs under random fault
// plans. Every run must terminate with one of exactly three outcomes —
// clean completion, a structured *fault.Report, or a *DeadlockError —
// never a panic or livelock, and the same seed must reproduce the same
// outcome bit-for-bit. On clean completion the caches must stay
// correspondent and all live nodes must agree architecturally (injected
// faults may cost cycles and retries, never answers).
func TestProtocolFuzzWithFaults(t *testing.T) {
	for seed := uint64(600); seed <= 640; seed++ {
		rng := stats.NewRNG(seed)
		nodes := 2 + rng.Intn(2)
		src := randomProgram(rng, 100, 4, false)
		fc := fuzzFaultConfig(rng, nodes)
		p, err := asm.Assemble("fuzz-fault", src)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		run := func() (*Machine, Result, error) {
			cfg := DefaultConfig(nodes)
			cfg.L1.SizeBytes = 512
			cfg.WatchdogCycles = 2_000_000
			cfg.DigestInterval = 8
			cfg.Fault = fc
			m, err := NewMachine(cfg, p, pt)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			r, err := m.Run()
			return m, r, err
		}
		m, r, err := run()
		if err != nil {
			var rep *fault.Report
			var dl *DeadlockError
			if !errors.As(err, &rep) && !errors.As(err, &dl) {
				t.Fatalf("seed %d: unstructured failure %T: %v\nfault plan: %+v", seed, err, err, fc)
			}
		} else {
			if !r.CorrespondenceOK {
				t.Fatalf("seed %d: correspondence violated under faults: %s\nfault plan: %+v",
					seed, m.CorrespondenceReport(), fc)
			}
			ref := -1
			for i := 0; i < nodes; i++ {
				if m.nodeDead(i) {
					continue
				}
				if ref < 0 {
					ref = i
					continue
				}
				for reg := uint8(1); reg < 32; reg++ {
					if m.NodeEmu(i).Reg(reg) != m.NodeEmu(ref).Reg(reg) {
						t.Fatalf("seed %d: live nodes diverged: node %d r%d = %d, node %d has %d\nfault plan: %+v",
							seed, i, reg, m.NodeEmu(i).Reg(reg), ref, m.NodeEmu(ref).Reg(reg), fc)
					}
				}
			}
		}
		// Same seed, same outcome — the plan must be deterministic.
		_, r2, err2 := run()
		if (err == nil) != (err2 == nil) {
			t.Fatalf("seed %d: outcome flipped between runs: %v vs %v", seed, err, err2)
		}
		if err != nil {
			if err.Error() != err2.Error() {
				t.Fatalf("seed %d: failure not reproducible:\n%v\n%v", seed, err, err2)
			}
		} else if !reflect.DeepEqual(r, r2) {
			t.Fatalf("seed %d: result not reproducible:\n%+v\n%+v", seed, r, r2)
		}
	}
}

// TestProtocolFuzzMultiDeathTopologies runs random programs under
// random ordered multi-death schedules on all four interconnects. Every
// run must terminate in exactly one of three outcomes — clean
// completion, a structured *fault.Report, or a *DeadlockError — with
// the same seed reproducing the same outcome bit-for-bit, and every run
// that completes must leave its survivors with the fault-free
// architectural state: deaths may cost cycles, never answers.
func TestProtocolFuzzMultiDeathTopologies(t *testing.T) {
	for ti, topo := range []bus.TopologyKind{bus.TopoBus, bus.TopoRing, bus.TopoMesh, bus.TopoTorus} {
		topo := topo
		for s := 0; s < 6; s++ {
			seed := uint64(700 + 20*ti + s)
			rng := stats.NewRNG(seed)
			nodes := 3 + rng.Intn(2)
			src := randomProgram(rng, 100, 4, false)
			fc := fault.Config{
				Seed:                  rng.Uint64(),
				Deaths:                fuzzDeathSchedule(rng, nodes),
				Recover:               rng.Intn(3) > 0, // mostly recovering plans
				RetryTimeoutCycles:    500 + uint64(rng.Intn(1500)),
				RetryBackoffCapCycles: 2_000,
				MaxRetries:            2 + rng.Intn(3),
			}
			if rng.Intn(3) == 0 {
				fc.MinQuorum = 1 + rng.Intn(nodes)
			}
			p, err := asm.Assemble("fuzz-cascade", src)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			run := func(f fault.Config) (*Machine, Result, error) {
				cfg := DefaultConfig(nodes)
				cfg.L1.SizeBytes = 512
				cfg.Topology.Kind = topo
				cfg.WatchdogCycles = 2_000_000
				cfg.DigestInterval = 8
				cfg.Fault = f
				m, err := NewMachine(cfg, p, pt)
				if err != nil {
					t.Fatalf("%s seed %d: %v", topo, seed, err)
				}
				r, err := m.Run()
				return m, r, err
			}

			clean, _, err := run(fault.Config{})
			if err != nil {
				t.Fatalf("%s seed %d: fault-free run failed: %v", topo, seed, err)
			}

			m, r, err := run(fc)
			if err != nil {
				var rep *fault.Report
				var dl *DeadlockError
				if !errors.As(err, &rep) && !errors.As(err, &dl) {
					t.Fatalf("%s seed %d: unstructured failure %T: %v\nfault plan: %+v", topo, seed, err, err, fc)
				}
			} else {
				if !r.CorrespondenceOK {
					t.Fatalf("%s seed %d: correspondence violated: %s\nfault plan: %+v",
						topo, seed, m.CorrespondenceReport(), fc)
				}
				for i := 0; i < nodes; i++ {
					if m.nodeDead(i) {
						continue
					}
					for reg := uint8(1); reg < 32; reg++ {
						if got, want := m.NodeEmu(i).Reg(reg), clean.NodeEmu(0).Reg(reg); got != want {
							t.Fatalf("%s seed %d: survivor %d r%d = %d, fault-free run has %d\nfault plan: %+v",
								topo, seed, i, reg, got, want, fc)
						}
					}
				}
			}

			// Same seed, same outcome — bit-reproducible on every topology.
			_, r2, err2 := run(fc)
			if (err == nil) != (err2 == nil) {
				t.Fatalf("%s seed %d: outcome flipped between runs: %v vs %v", topo, seed, err, err2)
			}
			if err != nil {
				if err.Error() != err2.Error() {
					t.Fatalf("%s seed %d: failure not reproducible:\n%v\n%v", topo, seed, err, err2)
				}
			} else if !reflect.DeepEqual(r, r2) {
				t.Fatalf("%s seed %d: result not reproducible:\n%+v\n%+v", topo, seed, r, r2)
			}
		}
	}
}

func TestProtocolFuzzRegionsOnRing(t *testing.T) {
	for seed := uint64(500); seed <= 508; seed++ {
		rng := stats.NewRNG(seed)
		src := randomProgram(rng, 100, 4, true)
		p, err := asm.Assemble("fuzz", src)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := mem.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(2)
		cfg.L1.SizeBytes = 512
		cfg.Topology.Kind = bus.TopoRing
		cfg.ResultComm = true
		cfg.WatchdogCycles = 500_000
		cfg.DigestInterval = 8
		m, err := NewMachine(cfg, p, pt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.CorrespondenceOK {
			t.Fatalf("seed %d: correspondence violated: %s", seed, m.CorrespondenceReport())
		}
	}
}
