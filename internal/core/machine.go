package core

import (
	"fmt"
	"strings"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Config parameterizes a DataScalar machine. DefaultConfig matches the
// paper's simulated implementation (Section 4.2): 8-way 1 GHz out-of-order
// cores with 256 RUU entries, 16 KB direct-mapped single-cycle write-back
// write-no-allocate L1 data caches, 8 ns on-chip memory banks behind a
// 256-bit on-chip bus, and an 8-byte global bus at half the core
// clock, with two-cycle broadcast-queue and BSHR penalties.
type Config struct {
	Nodes int
	Core  ooo.Config
	L1    cache.Config
	DRAM  mem.DRAMConfig
	// Topology selects and parameterizes the interconnect: the paper's
	// global bus (the default), the unidirectional ring of Section 4.4,
	// or the 2D mesh/torus that take the same ESP protocol to hundreds
	// of nodes. Switching families is a one-field change
	// (Topology.Kind); each family's parameters ride along.
	Topology bus.Topology

	// L1HitCycles is the load-to-use latency of an L1 hit.
	L1HitCycles uint64
	// BSHRCycles is the BSHR access latency applied when a load's data is
	// found in (or arrives at) the BSHR.
	BSHRCycles uint64
	// BcastQueueCycles is the penalty between a broadcast being generated
	// and it arbitrating for the global bus.
	BcastQueueCycles uint64
	// BSHRBufferCap bounds buffered (early-arriving) broadcast entries.
	BSHRBufferCap int

	// MaxInstr bounds each node's dynamic instruction count (0 = run to
	// completion).
	MaxInstr uint64
	// FastForwardPC functionally executes each node's emulator up to this
	// PC before timing begins (0 = none), skipping initialization phases
	// — the experiment harness points it at the kernels' bench_main
	// label. All nodes fast-forward identically.
	FastForwardPC uint64
	// WatchdogCycles aborts the run when no node commits for this many
	// cycles (0 = default). A firing watchdog indicates a protocol
	// deadlock — exactly what the cache-correspondence machinery exists
	// to prevent.
	WatchdogCycles uint64
	// DigestInterval samples each node's tag-state digest every that many
	// committed memory operations for the correspondence check (0
	// disables sampling; the final state is always checked).
	DigestInterval uint64
	// TraceLine, when non-zero, records every protocol event touching
	// that line address for post-mortem debugging; the trace is appended
	// to deadlock errors.
	TraceLine uint64
	// Observer receives typed protocol events (broadcasts, BSHR
	// activity, false hits/misses, commit fills, bus grants) and — when
	// SampleInterval is set — interval metric samples. nil disables all
	// observation; every hook guards on nil, so the disabled path does no
	// work and allocates nothing. Observation is read-only: enabling it
	// never changes a cycle count or counter (enforced by test).
	Observer obs.Observer
	// SampleInterval emits one obs.Sample per node to Observer every
	// that many cycles, plus one final partial interval at end of run
	// (0 disables sampling; ignored without an Observer).
	SampleInterval uint64
	// NoCycleSkip forces Run back to pure cycle-by-cycle polling,
	// disabling the next-event scheduler. Results are bit-identical
	// either way (enforced by the differential suite in internal/sim);
	// the flag exists so that equivalence stays testable.
	NoCycleSkip bool
	// Fault configures the deterministic fault-injection and resilience
	// layer (broadcast drops/delays/bit-flips, permanent node death with
	// optional degraded-mode recovery, BSHR timeout/retry detection, and
	// the commit-fingerprint divergence exchange). The zero value is
	// treated exactly like no fault layer at all: the machine builds no
	// fault state and every hot path stays untouched, which the zero-rate
	// differential suite in internal/sim enforces byte-for-byte.
	Fault fault.Config
	// ParallelNodes splits one run's node loop across that many worker
	// goroutines (conservative parallel discrete-event simulation): each
	// worker advances its span of nodes independently up to a
	// synchronization horizon derived from the interconnect's minimum
	// delivery latency (bus.Network.Lookahead), and cross-node messages
	// are exchanged at horizon barriers in a fixed deterministic order.
	// Results, observer event streams, and samples are byte-identical to
	// the serial loop (enforced by the differential suite in
	// internal/sim); see docs/PERFORMANCE.md. 0 or 1 forces today's
	// serial loop; values above Nodes are clamped. Active fault plans
	// run in parallel too — injection decisions are pure functions of
	// message identity, deaths land at window boundaries, and retry
	// deadlines clip the horizon — except plans whose retry timeout or
	// backoff cap is shorter than one window (see faultParallelOK),
	// which fall back to serial, as does TraceLine.
	ParallelNodes int
	// ResultComm enables result communication (paper Section 5.1):
	// PRIVB/PRIVE regions execute only at the node owning their data,
	// with uncached local accesses and no operand broadcasts; other
	// nodes skip the region and receive its results through ordinary ESP
	// when post-region code loads them. With the flag off, the markers
	// are inert and region accesses take the normal broadcast path.
	ResultComm bool
}

// DefaultConfig returns the paper's parameters for an n-node machine.
func DefaultConfig(n int) Config {
	return Config{
		Nodes: n,
		Core:  ooo.DefaultConfig(),
		L1: cache.Config{
			Name:      "dl1",
			SizeBytes: 16 * 1024,
			LineBytes: 32,
			Assoc:     1, // direct-mapped for speed, as in the paper
			Write:     cache.WriteBack,
			Alloc:     cache.WriteNoAllocate,
		},
		DRAM:             mem.DefaultDRAM(),
		Topology:         bus.DefaultTopology(),
		L1HitCycles:      1,
		BSHRCycles:       2,
		BcastQueueCycles: 2,
		BSHRBufferCap:    64,
		DigestInterval:   512,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("core: need at least one node")
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.L1HitCycles == 0 {
		return fmt.Errorf("core: L1 hit latency must be positive")
	}
	if err := c.Fault.ValidateFor(c.Nodes); err != nil {
		return err
	}
	if (c.Fault.DeathCycle != 0 || len(c.Fault.Deaths) > 0 || c.Fault.DeathRate > 0) && c.Nodes < 2 {
		return fmt.Errorf("core: node death needs at least two nodes")
	}
	if c.L1.Alloc != cache.WriteNoAllocate {
		// The correspondence protocol implemented here commits stores
		// without a fill path; write-allocate would need store-miss
		// broadcasts (the paper argues no-allocate is superior under ESP
		// anyway).
		return fmt.Errorf("core: the DataScalar timing model requires a write-no-allocate L1")
	}
	return nil
}

// Result summarizes one DataScalar run.
type Result struct {
	Cycles       uint64
	Instructions uint64 // per node (identical across nodes)
	IPC          float64
	Nodes        []NodeStats
	BSHR         []BSHRStats
	Core         []ooo.Stats
	// CPIStacks is the per-node exhaustive cycle attribution: every one
	// of the machine's Cycles is charged to exactly one leaf cause, so
	// each node's stack sums to Cycles (see docs/OBSERVABILITY.md for the
	// taxonomy). Attribution is always on — it is a pure function of
	// timing state, so it cannot perturb a run.
	CPIStacks []obs.CPIStack
	BusStats  bus.Stats
	// CorrespondenceOK reports whether every sampled tag-state digest
	// matched across nodes (and the final states matched). A permanently
	// dead node is excluded: its state froze mid-run.
	CorrespondenceOK bool
	// Fault carries the fault layer's injection/detection/recovery
	// counters; nil when the layer is disabled, so fault-free results
	// marshal byte-identically to builds that predate the layer.
	Fault *fault.Stats `json:",omitempty"`
}

// Machine is an N-node DataScalar system.
type Machine struct {
	cfg    Config
	pt     *mem.PageTable
	net    bus.Network
	nodes  []*node
	now    uint64
	events []string // TraceLine event log

	// obs mirrors cfg.Observer for nil-guarded hot-path checks; sampler
	// holds the interval-delta state when sampling is enabled.
	obs     obs.Observer
	sampler *samplerState

	// fault is the resilience layer's state; nil when Config.Fault is
	// disabled, and every hook guards on that nil.
	fault *faultState
}

// samplerState tracks previous-interval counter values so samples report
// interval rates rather than cumulative totals. It is observation-only
// state: the timing model never reads it.
type samplerState struct {
	lastCycle uint64
	busBusy   uint64
	nodes     []nodeSampleState
}

type nodeSampleState struct {
	committed   uint64
	broadcasts  uint64
	issueHits   uint64
	issueMisses uint64
	stack       obs.CPIStack
}

// Events returns the TraceLine event log (debugging).
func (m *Machine) Events() []string { return m.events }

func (m *Machine) traceEvent(node int, format string, args ...any) {
	if m.cfg.TraceLine == 0 {
		return // tracing off: no formatting work on the hot path
	}
	m.events = append(m.events, fmt.Sprintf("cycle=%d node=%d ", m.now, node)+fmt.Sprintf(format, args...))
}

// NewMachine builds a DataScalar machine executing program p under the
// given page-table partition. The page table's node count must match the
// configuration.
func NewMachine(cfg Config, p *prog.Program, pt *mem.PageTable) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pt.NumNodes() != cfg.Nodes {
		return nil, fmt.Errorf("core: page table built for %d nodes, machine has %d", pt.NumNodes(), cfg.Nodes)
	}
	var fs *faultState
	if cfg.Fault.Enabled() {
		fs = newFaultState(cfg.Fault.WithDefaults(), cfg.Nodes)
		if len(fs.schedule) > 0 {
			// Recovery remaps ownership; page tables are shared read-only
			// across jobs, so this run works on a private clone.
			pt = pt.Clone()
		}
	}
	net := cfg.Topology.Build(cfg.Nodes)
	m := &Machine{
		cfg:   cfg,
		pt:    pt,
		net:   net,
		obs:   cfg.Observer,
		fault: fs,
	}
	if m.obs != nil {
		net.SetObserver(m.obs)
		if cfg.SampleInterval != 0 {
			m.sampler = &samplerState{nodes: make([]nodeSampleState, cfg.Nodes)}
		}
	}
	// Every node fast-forwards through the identical initialization, so
	// run it once and clone the result per node instead of re-executing
	// up to 200M warmup instructions N times — at N=256 that is the
	// difference between seconds and hours of machine construction.
	// Cloning is bit-exact, so per-node re-execution would build the
	// same machine.
	master, err := emu.New(p)
	if err != nil {
		return nil, err
	}
	if cfg.FastForwardPC != 0 {
		if _, ok, err := master.RunUntilPC(cfg.FastForwardPC, 200_000_000); err != nil {
			return nil, fmt.Errorf("core: fast-forward: %w", err)
		} else if !ok {
			return nil, fmt.Errorf("core: fast-forward never reached pc 0x%x", cfg.FastForwardPC)
		}
	}
	for id := 0; id < cfg.Nodes; id++ {
		em := master
		if id > 0 {
			em = master.Clone()
		}
		nd := &node{
			id:          id,
			cfg:         &m.cfg,
			emu:         em,
			l1:          cache.New(cfg.L1),
			dram:        mem.NewDRAM(cfg.DRAM),
			bshr:        NewBSHR(cfg.BSHRBufferCap),
			pt:          pt,
			net:         m.net,
			outstanding: make(map[uint64]*missEntry),
			inflight:    make(map[ooo.LoadToken]issueInfo),
			digests:     make(map[uint64]uint64),
		}
		nd.m = m
		nd.clock = &m.now
		if fs != nil {
			nd.bshr.SetRetry(fs.cfg.RetryTimeoutCycles, fs.cfg.RetryBackoffCapCycles)
		}
		if m.obs != nil {
			nd.obs = m.obs
			nd.bshr.SetObserver(m.obs, id, &m.now)
			nd.l1.SetObserver(m.obs, id, &m.now)
		}
		var source ooo.Source = ooo.NewEmuSource(em, cfg.MaxInstr)
		if cfg.ResultComm {
			source = &regionSource{
				inner:   source,
				pt:      pt,
				nodeID:  id,
				skipped: &nd.stats.SkippedInstr,
			}
		}
		nd.core = ooo.New(cfg.Core, source, nd)
		m.nodes = append(m.nodes, nd)
	}
	return m, nil
}

// Network returns the machine's interconnect (for stats inspection).
func (m *Machine) Network() bus.Network { return m.net }

// Run executes the program to completion on all nodes, interleaving all
// contexts cycle by cycle (the paper's simulator "switches contexts after
// executing each cycle"). When the configuration allows (the default),
// the loop skips provably idle stretches — cycles where no core can act
// and the interconnect has nothing due — by jumping m.now straight to the
// next event; see docs/PERFORMANCE.md for the invariants that make the
// skipped and polled runs bit-identical.
func (m *Machine) Run() (Result, error) {
	if m.cfg.ParallelNodes > 1 && m.cfg.Nodes > 1 && m.cfg.TraceLine == 0 && m.faultParallelOK() {
		// Conservative parallel intra-run simulation: byte-identical to
		// the loop below (see internal/core/parallel.go and the
		// differential suite in internal/sim). Fault plans run in
		// parallel too — injection is a pure function of message
		// identity, so workers predict faulted deliveries and the replay
		// re-derives the global bookkeeping in serial order; only plans
		// whose retry timing could fire inside a window (see
		// faultParallelOK) and TraceLine stay serial.
		return m.runParallel()
	}
	watchdog := m.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	lastProgress := uint64(0)
	lastTotal := uint64(0)

	for {
		if m.fault != nil {
			m.maybeKill()
		}
		done := true
		for _, nd := range m.nodes {
			if !nd.core.Done() && !m.nodeDead(nd.id) {
				done = false
				break
			}
		}
		if done {
			break
		}

		// Interconnect first: deliveries at cycle t are visible to the
		// cores at t.
		for _, arr := range m.net.Tick(m.now) {
			// An arrival can invalidate the receiving node's sleep
			// certificate (a broadcast or retry response completes a load),
			// so wake it for this cycle. Over-waking is harmless — Cycle on
			// a no-op cycle performs exactly the accounting SkipCycles
			// would — so every arrival rewinds, not just data-bearing ones.
			if nd := m.nodes[arr.Node]; nd.wake > m.now {
				nd.wake = m.now
			}
			if m.fault != nil && m.handleFaultArrival(arr) {
				continue
			}
			if arr.Msg.Kind == bus.Broadcast {
				if m.obs != nil {
					m.obs.Event(obs.Event{
						Cycle: m.now, Node: arr.Node, Kind: obs.EvBroadcastArrived,
						Addr: arr.Msg.Addr, Arg: boolArg(arr.Msg.Reparative),
					})
				}
				m.nodes[arr.Node].onBroadcast(arr.Msg.Addr, m.now)
			}
		}
		var total uint64
		for _, nd := range m.nodes {
			switch {
			case m.nodeDead(nd.id):
				// The core never runs again; the machine charges its share
				// of every remaining cycle so stacks stay exhaustive.
				nd.core.CPIStack().Add(obs.StallDead, 1)
			case nd.core.Done():
				nd.core.CPIStack().Add(obs.StallHalted, 1)
			case !m.cfg.NoCycleSkip && nd.wake > m.now:
				// Asleep: the node's own certificate (set when it last ran)
				// says every Cycle before nd.wake is a no-op apart from its
				// deterministic stall accounting, which SkipCycles replays
				// exactly — the sparse counterpart of skipIdle's time jump.
				// Any event that could invalidate the certificate (a
				// network arrival, a fault-layer self-serve) rewinds wake
				// first, so a sleeping node is provably idle.
				nd.core.SkipCycles(m.now, 1)
			default:
				nd.core.Cycle(m.now)
				if err := nd.core.Err(); err != nil {
					return Result{}, fmt.Errorf("core: node %d: %w", nd.id, err)
				}
				if !m.cfg.NoCycleSkip {
					// Re-certify: sleep until the core's next event. A
					// declined certificate (ok=false) means run again next
					// cycle.
					if next, ok := nd.core.NextEventCycle(m.now + 1); ok {
						nd.wake = next
					} else {
						nd.wake = m.now + 1
					}
				}
			}
			total += nd.core.Committed()
		}
		if m.fault != nil {
			m.checkTimeouts()
			if r := m.fault.report; r != nil {
				return Result{}, r
			}
		}
		if total != lastTotal {
			lastTotal = total
			lastProgress = m.now
		} else if m.now-lastProgress > watchdog {
			return Result{}, m.deadlockError()
		}
		m.now++
		if m.sampler != nil && m.now%m.cfg.SampleInterval == 0 {
			m.emitSamples()
		}
		if !m.cfg.NoCycleSkip {
			m.skipIdle(lastProgress, watchdog)
		}
	}
	if m.sampler != nil && m.now > m.sampler.lastCycle {
		m.emitSamples() // final partial interval
	}

	return m.collect(), nil
}

// skipIdle advances m.now past cycles that are provably no-ops for every
// component, preserving bit-identity with the polled loop:
//
//   - Each live core certifies, via NextEventCycle, that its Cycle calls
//     up to (but excluding) its next event only bump deterministic stall
//     counters; SkipCycles replays those in bulk.
//   - The interconnect certifies, via NextDeliveryCycle, that its Ticks
//     before the returned cycle are no-ops (no delivery, no arbitration,
//     no counter movement), so not calling them changes nothing.
//   - The jump is capped at lastProgress+watchdog+1, the first cycle the
//     polled loop's watchdog could fire, so deadlocks surface with the
//     identical cycle number and message.
//   - Sample boundaries crossed by the jump are replayed in order with
//     m.now set to each boundary; the counters a sample reads are frozen
//     across skipped cycles, so the emitted values match exactly.
//
// Called with m.now = the next cycle to simulate (cycle m.now-1 and its
// network Tick have completed).
func (m *Machine) skipIdle(lastProgress, watchdog uint64) {
	target := lastProgress + watchdog + 1
	if nn := m.net.NextDeliveryCycle(m.now - 1); nn < target {
		target = nn
	}
	if m.fault != nil {
		// Never jump past the pending death cycle or a BSHR timeout; both
		// must fire at the same cycle the polled loop would fire them.
		if fc := m.faultNextEvent(); fc < target {
			target = fc
		}
	}
	if target <= m.now {
		return
	}
	live := false
	for _, nd := range m.nodes {
		if nd.core.Done() || m.nodeDead(nd.id) {
			continue
		}
		live = true
		// The cached wake is the certificate NextEventCycle issued when
		// the node last ran (rewound by any arrival since), so the sparse
		// loop's bookkeeping doubles as the skip computation: no O(nodes)
		// re-certification per skip attempt. A node due now (wake at or
		// before m.now, including the ok=false "run me every cycle" case)
		// blocks the jump.
		if nd.wake <= m.now {
			return
		}
		if nd.wake < target {
			target = nd.wake
		}
	}
	// With every core done the run is over; jumping further would inflate
	// the final cycle count.
	if !live || target <= m.now {
		return
	}
	// Advance in sample-boundary segments: attribution (the CPI stacks)
	// moves across skipped cycles even though every other counter a
	// sample reads is frozen, so each boundary's sample must see exactly
	// the cycles before it — the same partial stacks the polled loop
	// would have accumulated.
	if m.sampler != nil {
		si := m.cfg.SampleInterval
		for b := (m.now/si + 1) * si; b <= target; b += si {
			m.skipAdvance(b - m.now)
			m.now = b
			m.emitSamples()
		}
	}
	m.skipAdvance(target - m.now)
	m.now = target
}

// skipAdvance replays delta skipped cycles into every node's per-cycle
// accounting: live cores via SkipCycles (cycle count, stall counters,
// and the frozen-state CPI bucket), dead and halted nodes via their
// machine-charged buckets — exactly what the polled loop would have
// accumulated over the same cycles.
func (m *Machine) skipAdvance(delta uint64) {
	if delta == 0 {
		return
	}
	for _, nd := range m.nodes {
		switch {
		case m.nodeDead(nd.id):
			nd.core.CPIStack().Add(obs.StallDead, delta)
		case nd.core.Done():
			nd.core.CPIStack().Add(obs.StallHalted, delta)
		default:
			nd.core.SkipCycles(m.now, delta)
		}
	}
}

// emitSamples snapshots every node's interval rates and occupancies at
// the current cycle and delivers them to the observer. It reads counters
// only; the timing model is untouched.
func (m *Machine) emitSamples() {
	s := m.sampler
	interval := m.now - s.lastCycle
	if interval == 0 {
		return
	}
	busBusy := m.net.NetStats().BusyCycles.Value()
	busPct := 100 * float64(busBusy-s.busBusy) / float64(interval)
	for i, nd := range m.nodes {
		prev := &s.nodes[i]
		committed := nd.core.Committed()
		bcast := nd.stats.Broadcasts.Value()
		hits := nd.stats.IssueHits.Value()
		misses := nd.stats.IssueMisses.Value()
		sample := obs.Sample{
			Cycle:          m.now,
			IntervalCycles: interval,
			Node:           nd.id,
			Committed:      committed,
			IPC:            float64(committed-prev.committed) / float64(interval),
			BusBusyPct:     busPct,
			Broadcasts:     bcast - prev.broadcasts,
			BroadcastRate:  1000 * float64(bcast-prev.broadcasts) / float64(interval),
			BSHRWaiting:    nd.bshr.Waiting(),
			BSHRBuffered:   nd.bshr.Buffered(),
		}
		if da, dm := hits-prev.issueHits, misses-prev.issueMisses; da+dm > 0 {
			sample.L1MissRate = float64(dm) / float64(da+dm)
		}
		stack := *nd.core.CPIStack()
		for k := range sample.Stack {
			sample.Stack[k] = stack[k] - prev.stack[k]
		}
		*prev = nodeSampleState{committed: committed, broadcasts: bcast, issueHits: hits, issueMisses: misses, stack: stack}
		m.obs.Sample(sample)
	}
	s.lastCycle = m.now
	s.busBusy = busBusy
}

func boolArg(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// DeadlockError is the typed watchdog abort: full per-node protocol
// state at the moment progress stopped — what each node was waiting on
// (with retry counts when the fault layer is armed), how many messages
// each still had on the interconnect, and when each last committed. The
// CLI maps it to its own exit code, distinct from fault halts.
type DeadlockError struct {
	// Cycle is the cycle the watchdog fired.
	Cycle uint64
	// NetPending is the total undelivered message count.
	NetPending int
	// Nodes is the per-node snapshot, in node order.
	Nodes []DeadlockNode
	// Events is the TraceLine event tail, when tracing was on.
	Events []string
}

// DeadlockNode is one node's state inside a DeadlockError.
type DeadlockNode struct {
	ID          int
	Committed   uint64
	MemCommits  uint64
	LastCommit  uint64 // cycle of the node's most recent commit
	Outstanding int    // open miss episodes (DCUB entries)
	SrcPending  int    // messages this node still has on the interconnect
	Buffered    int    // early-data BSHR entries
	Waiting     []DeadlockWait
}

// DeadlockWait is one pending BSHR tag inside a DeadlockNode.
type DeadlockWait struct {
	Line       uint64
	Owner      int
	Replicated bool
	Waiters    int
	Retries    int
}

// Error implements error.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: deadlock: no commit progress at cycle %d: netPending=%d", e.Cycle, e.NetPending)
	for _, n := range e.Nodes {
		fmt.Fprintf(&b, "\n node%d{committed=%d memCommits=%d lastCommit=%d outstanding=%d srcPending=%d",
			n.ID, n.Committed, n.MemCommits, n.LastCommit, n.Outstanding, n.SrcPending)
		for _, w := range n.Waiting {
			fmt.Fprintf(&b, " wait[0x%x owner=%d repl=%v waiters=%d retries=%d]",
				w.Line, w.Owner, w.Replicated, w.Waiters, w.Retries)
		}
		fmt.Fprintf(&b, " buffered=%d}", n.Buffered)
	}
	for _, ev := range e.Events {
		b.WriteString("\n  " + ev)
	}
	return b.String()
}

func (m *Machine) deadlockError() error {
	e := &DeadlockError{Cycle: m.now, NetPending: m.net.Pending()}
	for _, nd := range m.nodes {
		dn := DeadlockNode{
			ID:          nd.id,
			Committed:   nd.core.Committed(),
			MemCommits:  nd.memCommits,
			LastCommit:  nd.core.LastCommitCycle(),
			Outstanding: len(nd.outstanding),
			SrcPending:  m.net.SourcePending(nd.id),
			Buffered:    nd.bshr.Buffered(),
		}
		for _, w := range nd.bshr.WaitingDetail() {
			dn.Waiting = append(dn.Waiting, DeadlockWait{
				Line:       w.Line,
				Owner:      m.pt.OwnerOf(w.Line),
				Replicated: m.pt.IsReplicated(w.Line),
				Waiters:    w.Waiters,
				Retries:    w.Retries,
			})
		}
		e.Nodes = append(e.Nodes, dn)
	}
	if n := len(m.events); n > 0 {
		start := 0
		if n > 80 {
			start = n - 80
		}
		e.Events = append(e.Events, m.events[start:]...)
	}
	return e
}

func (m *Machine) collect() Result {
	r := Result{
		Cycles:           m.now,
		Instructions:     m.nodes[m.firstLive()].core.Committed(),
		BusStats:         *m.net.NetStats(),
		CorrespondenceOK: m.checkCorrespondence(),
	}
	for _, nd := range m.nodes {
		r.Nodes = append(r.Nodes, nd.stats)
		r.BSHR = append(r.BSHR, *nd.bshr.Stats())
		r.Core = append(r.Core, *nd.core.Stats())
		r.CPIStacks = append(r.CPIStacks, *nd.core.CPIStack())
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	if m.fault != nil {
		// Derive each death's post-death throughput in the canonical
		// stats (FaultStats readers see it too), then deep-copy the
		// per-death slice so the Result snapshot cannot alias live fault
		// state.
		for i := range m.fault.stats.Deaths {
			if d := &m.fault.stats.Deaths[i]; m.now > d.Cycle {
				d.PostDeathIPC = float64(r.Instructions-d.CommitsAtDeath) / float64(m.now-d.Cycle)
			}
		}
		snap := m.fault.stats
		snap.Deaths = append([]fault.DeathStats(nil), snap.Deaths...)
		r.Fault = &snap
	}
	return r
}

// faultParallelOK reports whether the active fault plan (if any) is safe
// for the conservative parallel loop. The requirement: no BSHR deadline
// armed during a window may expire before the window's horizon — i.e.
// RetryTimeoutCycles and the backoff cap must each cover a full window
// (sender floor + interconnect lookahead). Then the single barrier-side
// checkTimeouts pass at each horizon observes exactly the deadlines the
// serial loop's per-cycle pass would, and the two schedules coincide.
func (m *Machine) faultParallelOK() bool {
	if m.fault == nil {
		return true
	}
	w := m.cfg.BcastQueueCycles + uint64(m.cfg.DRAM.AccessCycles) + uint64(m.cfg.DRAM.BusCycles)
	if w < 1 {
		w = 1
	}
	w += m.net.Lookahead()
	return m.fault.cfg.RetryTimeoutCycles >= w && m.fault.cfg.RetryBackoffCapCycles >= w
}

// firstLive returns the lowest-numbered node that has not died (node 0
// on every fault-free machine).
func (m *Machine) firstLive() int {
	for i := range m.nodes {
		if !m.nodeDead(i) {
			return i
		}
	}
	return 0
}

// CorrespondenceReport explains a correspondence failure: per-node
// committed-memory-op counts, and the first sampled milestone whose tag
// digests disagree. Empty when the invariant holds.
func (m *Machine) CorrespondenceReport() string {
	if m.checkCorrespondence() {
		return ""
	}
	out := ""
	ref := m.nodes[0]
	for _, nd := range m.nodes {
		out += fmt.Sprintf("node%d{memCommits=%d finalDigest=%x} ", nd.id, nd.memCommits, nd.l1.StateDigest())
	}
	// Find the smallest mismatching sampled milestone.
	var worst uint64
	found := false
	for k, v := range ref.digests {
		for _, nd := range m.nodes[1:] {
			if ov, ok := nd.digests[k]; ok && ov != v {
				if !found || k < worst {
					worst, found = k, true
				}
			}
		}
	}
	if found {
		out += fmt.Sprintf("first digest mismatch at memCommits=%d", worst)
	}
	return out
}

// checkCorrespondence verifies the protocol invariant: every node's tag
// state is identical at equal committed-memory-op counts. A permanently
// dead node is excluded — its state froze mid-run, but the sampled
// digests it produced while alive must still match.
func (m *Machine) checkCorrespondence() bool {
	ref := m.nodes[m.firstLive()]
	for _, nd := range m.nodes {
		if nd == ref {
			continue
		}
		if !m.nodeDead(nd.id) {
			if nd.memCommits != ref.memCommits {
				return false
			}
			if nd.l1.StateDigest() != ref.l1.StateDigest() {
				return false
			}
		}
		for k, v := range ref.digests {
			if ov, ok := nd.digests[k]; ok && ov != v {
				return false
			}
		}
	}
	return true
}

// NodeEmu returns node i's functional emulator (tests use it to verify
// architectural results).
func (m *Machine) NodeEmu(i int) *emu.Machine { return m.nodes[i].emu }
