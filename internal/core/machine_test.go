package core

import (
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/mem"
)

// streamSum walks a multi-page array summing 64-bit words: sequential
// access with the data set spread across all nodes.
const streamSum = `
        .data
arr:    .space 32768          # 4 pages: touches every node in a 4-node run
        .text
        la   r1, arr
        li   r2, 4096         # words
        li   r3, 0
        li   r4, 7
loop:   sd   r4, 0(r1)        # init on the fly: write then read back later
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        la   r1, arr
        li   r2, 4096
sum:    ld   r5, 0(r1)
        add  r3, r3, r5
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, sum
        halt
`

// pointerChase builds a linked list spanning pages, then walks it:
// dependent accesses whose locality DataScalar turns into datathreads.
const pointerChase = `
        .data
nodes:  .space 32768
        .text
        # Build list: node i at nodes + i*264 points to node i+1 (stride
        # chosen to conflict in a direct-mapped cache occasionally).
        la   r1, nodes
        li   r2, 123          # count
build:  addi r3, r1, 264
        sd   r3, 0(r1)
        mov  r1, r3
        addi r2, r2, -1
        bne  r2, zero, build
        sd   zero, 0(r1)      # terminate
        # Walk it 3 times.
        li   r6, 3
outer:  la   r1, nodes
walk:   ld   r1, 0(r1)
        bne  r1, zero, walk
        addi r6, r6, -1
        bne  r6, zero, outer
        halt
`

// storeHeavy issues almost as many stores as loads, the compress-like
// pattern that gave the paper its biggest win.
const storeHeavy = `
        .data
buf:    .space 32768
        .text
        li   r6, 2            # passes
pass:   la   r1, buf
        li   r2, 4096
st:     sd   r2, 0(r1)
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, st
        addi r6, r6, -1
        bne  r6, zero, pass
        halt
`

func buildMachine(t testing.TB, src string, nodes int, mut func(*Config)) *Machine {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	cfg := DefaultConfig(nodes)
	cfg.WatchdogCycles = 200_000
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

func mustRunMachine(t *testing.T, m *Machine) Result {
	t.Helper()
	r, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !r.CorrespondenceOK {
		t.Fatal("cache correspondence violated")
	}
	return r
}

func TestSingleNodeRuns(t *testing.T) {
	m := buildMachine(t, streamSum, 1, nil)
	r := mustRunMachine(t, m)
	if r.Instructions == 0 || r.IPC <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.BusStats.Messages.Value() != 0 {
		t.Fatalf("single node used the bus: %d messages", r.BusStats.Messages.Value())
	}
	if got := m.NodeEmu(0).Reg(3); got != 7*4096 {
		t.Fatalf("functional sum = %d, want %d", got, 7*4096)
	}
}

func TestTwoNodeStreamSum(t *testing.T) {
	m := buildMachine(t, streamSum, 2, nil)
	r := mustRunMachine(t, m)

	// Functional: both nodes computed the same correct sum.
	for i := 0; i < 2; i++ {
		if got := m.NodeEmu(i).Reg(3); got != 7*4096 {
			t.Fatalf("node %d sum = %d", i, got)
		}
	}
	// Both nodes committed the same instruction count.
	if r.Core[0].Committed != r.Core[1].Committed {
		t.Fatalf("commit counts differ: %d vs %d", r.Core[0].Committed, r.Core[1].Committed)
	}
	// ESP: only broadcasts on the bus, never requests or responses.
	if r.BusStats.ByKindMsgs[bus.Request].Value() != 0 ||
		r.BusStats.ByKindMsgs[bus.Response].Value() != 0 {
		t.Fatal("ESP machine sent request/response traffic")
	}
	if r.BusStats.ByKindMsgs[bus.Broadcast].Value() == 0 {
		t.Fatal("no broadcasts on a distributed data set")
	}
	// Each node broadcast something (data is round-robin across both).
	for i := 0; i < 2; i++ {
		if r.Nodes[i].Broadcasts.Value() == 0 {
			t.Fatalf("node %d never broadcast", i)
		}
	}
}

func TestFourNodePointerChase(t *testing.T) {
	m := buildMachine(t, pointerChase, 4, nil)
	r := mustRunMachine(t, m)
	if r.BusStats.ByKindMsgs[bus.Broadcast].Value() == 0 {
		t.Fatal("no broadcasts")
	}
	// Remote misses must have occurred (the chain crosses pages owned by
	// different nodes).
	var remote uint64
	for _, ns := range r.Nodes {
		remote += ns.RemoteMisses.Value()
	}
	if remote == 0 {
		t.Fatal("no remote misses on a cross-node pointer chase")
	}
}

func TestStoreTrafficEliminated(t *testing.T) {
	m := buildMachine(t, storeHeavy, 2, nil)
	r := mustRunMachine(t, m)
	// Stores complete locally at owners and drop elsewhere: the bus must
	// carry only load broadcasts. The second pass reloads nothing, so
	// broadcast count must be far below the store count.
	var stores uint64
	for _, cs := range r.Core {
		stores += cs.Stores
	}
	if stores == 0 {
		t.Fatal("no stores committed")
	}
	var dropped, local uint64
	for _, ns := range r.Nodes {
		dropped += ns.StoresDropped.Value()
		local += ns.StoresLocal.Value()
	}
	if dropped == 0 {
		t.Fatal("non-owners did not drop stores")
	}
	if local == 0 {
		t.Fatal("owners did not complete stores")
	}
}

func TestDataScalarFasterThanSerializedMemory(t *testing.T) {
	// Sanity: a 2-node DataScalar run of the pointer chase should beat a
	// configuration with a pathologically slow bus (which serializes on
	// every remote operand).
	fast := mustRunMachine(t, buildMachine(t, pointerChase, 2, nil))
	slow := mustRunMachine(t, buildMachine(t, pointerChase, 2, func(c *Config) {
		c.Topology.Bus.ClockDivisor = 100
	}))
	if fast.Cycles >= slow.Cycles {
		t.Fatalf("fast bus %d cycles !< slow bus %d cycles", fast.Cycles, slow.Cycles)
	}
}

func TestReplicationEliminatesBroadcasts(t *testing.T) {
	// Replicating every data page makes all accesses local: zero bus
	// traffic even on two nodes.
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	repl := make(map[uint64]bool)
	for _, pg := range p.Pages() {
		repl[pg] = true
	}
	pt, err := mem.Partition{NumNodes: 2, ReplicateText: true, ReplicatedPages: repl}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.WatchdogCycles = 200_000
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.BusStats.Messages.Value() != 0 {
		t.Fatalf("fully replicated run sent %d messages", r.BusStats.Messages.Value())
	}
	if !r.CorrespondenceOK {
		t.Fatal("correspondence violated")
	}
}

func TestMaxInstrLimit(t *testing.T) {
	m := buildMachine(t, streamSum, 2, func(c *Config) { c.MaxInstr = 500 })
	r := mustRunMachine(t, m)
	if r.Instructions != 500 {
		t.Fatalf("instructions = %d, want 500", r.Instructions)
	}
}

func TestConfigValidation(t *testing.T) {
	p, err := asm.Assemble("t", streamSum)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(2)
	cfg.Nodes = 0
	if _, err := NewMachine(cfg, p, pt); err == nil {
		t.Error("zero nodes accepted")
	}

	cfg = DefaultConfig(4) // mismatched with 2-node page table
	if _, err := NewMachine(cfg, p, pt); err == nil {
		t.Error("node-count mismatch accepted")
	}

	cfg = DefaultConfig(2)
	cfg.L1.Alloc = 0 // write-allocate
	if _, err := NewMachine(cfg, p, pt); err == nil {
		t.Error("write-allocate L1 accepted by timing model")
	}
}

func TestNodeCountScaling(t *testing.T) {
	// The machine must run correctly (not necessarily faster) at 1, 2,
	// and 4 nodes, with correspondence holding at each size.
	for _, n := range []int{1, 2, 4} {
		m := buildMachine(t, streamSum, n, nil)
		r := mustRunMachine(t, m)
		if r.Instructions == 0 {
			t.Fatalf("%d nodes: nothing committed", n)
		}
	}
}

func TestDatathreadingEvidence(t *testing.T) {
	// On the pointer chase, some broadcasts should arrive before the
	// local processor asks (buffered hits) — the "data found in BSHR"
	// phenomenon of Table 3. This is statistical but deterministic for a
	// fixed seed/program.
	m := buildMachine(t, pointerChase, 2, nil)
	r := mustRunMachine(t, m)
	var buffered uint64
	for _, b := range r.BSHR {
		buffered += b.BufferedHits.Value()
	}
	if buffered == 0 {
		t.Log("no buffered BSHR hits on this kernel (acceptable but unexpected)")
	}
}

func TestSegmentedFootprintIsMapped(t *testing.T) {
	// Programs touching stack and globals must have every access mapped
	// (MustLookup would panic otherwise and fail the run).
	src := `
        .data
g:      .space 64
        .text
        addi sp, sp, -32
        li   r1, 5
        sd   r1, 0(sp)
        la   r2, g
        sd   r1, 8(r2)
        ld   r3, 0(sp)
        ld   r4, 8(r2)
        add  r5, r3, r4
        addi sp, sp, 32
        halt
`
	m := buildMachine(t, src, 2, nil)
	r := mustRunMachine(t, m)
	if r.Instructions == 0 {
		t.Fatal("nothing ran")
	}
	if got := m.NodeEmu(0).Reg(5); got != 10 {
		t.Fatalf("r5 = %d", got)
	}
}

func TestNonBusInterconnects(t *testing.T) {
	// The DataScalar machine must run correctly over every multi-hop
	// topology (the paper's envisioned high-performance interconnects):
	// same results, same correspondence guarantee, broadcasts observed
	// by every node as they propagate.
	for _, topo := range []bus.TopologyKind{bus.TopoRing, bus.TopoMesh, bus.TopoTorus} {
		topo := topo
		t.Run(topo.String(), func(t *testing.T) {
			onTopo := func(c *Config) { c.Topology.Kind = topo }
			m := buildMachine(t, streamSum, 4, onTopo)
			r := mustRunMachine(t, m)
			for i := 0; i < 4; i++ {
				if got := m.NodeEmu(i).Reg(3); got != 7*4096 {
					t.Fatalf("node %d sum = %d", i, got)
				}
			}
			if r.BusStats.ByKindMsgs[bus.Broadcast].Value() == 0 {
				t.Fatalf("no broadcasts on the %s", topo)
			}
			// And the pointer chase, which stresses ordering.
			m2 := buildMachine(t, pointerChase, 4, onTopo)
			mustRunMachine(t, m2)
		})
	}
}

func TestTopologiesAllComplete(t *testing.T) {
	// Interconnect choice changes timing, never results: every topology
	// must retire the identical instruction stream.
	onBus := mustRunMachine(t, buildMachine(t, storeHeavy, 2, nil))
	for _, topo := range []bus.TopologyKind{bus.TopoRing, bus.TopoMesh, bus.TopoTorus} {
		onTopo := mustRunMachine(t, buildMachine(t, storeHeavy, 2, func(c *Config) { c.Topology.Kind = topo }))
		if onBus.Instructions != onTopo.Instructions {
			t.Fatalf("%s: instruction counts differ: %d vs %d", topo, onBus.Instructions, onTopo.Instructions)
		}
	}
}

func TestResultReport(t *testing.T) {
	m := buildMachine(t, streamSum, 2, nil)
	r := mustRunMachine(t, m)
	tables := r.Report()
	if len(tables) != 3 {
		t.Fatalf("report tables = %d", len(tables))
	}
	out := ""
	for _, tb := range tables {
		out += tb.String()
	}
	for _, want := range []string{"DataScalar run", "Per-node ESP", "BSHR", "broadcasts", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
