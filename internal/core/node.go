package core

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// NodeStats counts per-node DataScalar events.
type NodeStats struct {
	// Issue-time load classification.
	IssueHits    stats.Counter
	IssueMisses  stats.Counter
	MergedMisses stats.Counter // misses folded into an outstanding line (false-miss folding)
	LocalMisses  stats.Counter // misses served by local memory (replicated or owned)
	RemoteMisses stats.Counter // misses that waited on (or found) a broadcast

	// ESP broadcast activity (owner side).
	Broadcasts     stats.Counter
	LateBroadcasts stats.Counter // reparative broadcasts issued at commit (false hits)

	// Commit-time correspondence events.
	FalseHits   stats.Counter // issue-time hit, commit-time miss
	FalseMisses stats.Counter // issue-time miss, commit-time hit
	Fills       stats.Counter

	// Writeback disposition: ESP never sends write traffic off-chip.
	WritebacksLocal   stats.Counter // dirty victim written to local memory (owner)
	WritebacksDropped stats.Counter // dirty victim dropped (non-owner of a dynamically replicated line)

	StoresLocal   stats.Counter // committed store misses completed in local memory
	StoresDropped stats.Counter // committed store misses dropped (not the owner)

	// Result communication (paper Section 5.1).
	PrivateLoads  stats.Counter // uncached in-region loads executed (owner side)
	PrivateStores stats.Counter // uncached in-region stores executed (owner side)
	SkippedInstr  stats.Counter // instructions skipped as remote private regions
}

// missEntry is a Commit Update Buffer (DCUB) entry: it tracks an
// in-flight cache line. Every issue-time miss to the line merges into it
// instead of generating new traffic (the paper's false-miss folding: "any
// sequence of accesses to the same line will generate only one miss").
// Following the paper — "a DCUB entry is deallocated when the last entry
// in the load/store queue that uses that line is committed" — the entry
// is reference-counted by the attached in-flight loads and freed only
// when the last one commits. Deleting it earlier re-opens a window where
// a later issue to the same line misses and waits on a broadcast the
// owner (whose copy merged into the old episode) never sends: a deadlock.
type missEntry struct {
	line uint64
	// refs counts attached in-flight (issued, uncommitted) loads.
	refs int
	// dataAt is the cycle the line's data is available locally; valid
	// when pending is false.
	dataAt  uint64
	pending bool // waiting for a broadcast (non-owner)
	// local marks an episode served by this node's own memory (replicated
	// or owned page); stall attribution uses it to split known-latency
	// miss service between the local bank and the BSHR tail of a
	// broadcast that already arrived.
	local bool
	// broadcasted records that this node (as owner) has pushed a
	// broadcast that the *next* commit-time fill of this line will
	// consume. The flag is cleared at that fill; if a further fill of the
	// same line commits while the entry lives (the line bounced out and
	// back), the owner must push another broadcast.
	broadcasted bool
	// claimed is the non-owner mirror of broadcasted: this node has
	// consumed (or holds a BSHR waiter that will consume) one arrival,
	// which the next commit-time fill of this line pairs with. A fill
	// that commits unclaimed must absorb its paired arrival instead.
	claimed bool
}

// issueInfo remembers the issue-time event of an in-flight load so the
// commit-time handler can detect false hits and false misses.
type issueInfo struct {
	hit      bool
	attached bool // holds a reference on the line's missEntry
}

// node is one DataScalar chip: core + emulator + L1 tags + local memory +
// BSHR + broadcast queue, sharing the global bus and page table with its
// peers.
type node struct {
	id  int
	cfg *Config
	m   *Machine // for event tracing
	// obs mirrors cfg.Observer (nil = observation disabled). Event
	// emission sits on the issue/commit hot path, so the nil check must
	// be one load — and with a nil observer obsEvent does no work and
	// allocates nothing (verified by benchmark).
	obs obs.Observer
	// clock is the cycle counter events are stamped with: &m.now under
	// the serial loop, the node's private window clock while a parallel
	// run has this node leased to a worker (workers advance nodes past
	// m.now, so a shared stamp would be both wrong and racy).
	clock *uint64

	emu  *emu.Machine
	core *ooo.Core
	l1   *cache.Cache
	dram *mem.DRAM
	bshr *BSHR
	pt   *mem.PageTable
	net  bus.Network

	outstanding map[uint64]*missEntry
	// missFree recycles missEntry records: steady state opens and closes
	// miss episodes constantly, and reuse keeps that off the allocator.
	missFree []*missEntry
	inflight map[ooo.LoadToken]issueInfo

	// bcastSeq numbers this node's broadcasts; the fault plan keys its
	// injection decisions on (src, dst, line, seq), a stable identity
	// independent of delivery cycles or scheduling.
	bcastSeq uint64
	// fpAccum is the running commit fingerprint (a mix over the committed
	// memory-operation address stream), maintained only when the
	// fingerprint exchange is enabled.
	fpAccum uint64

	stats NodeStats

	// wake is the sparse-execution certificate: the next cycle this
	// node's core can do anything beyond its deterministic stall
	// accounting (NextEventCycle's result, cached by Machine.Run after
	// the node's last Cycle). While m.now < wake the machine charges the
	// node via SkipCycles instead of running it, and any event that
	// could invalidate the certificate — a network arrival, a fault
	// self-serve — rewinds wake to the current cycle. Unused (always
	// zero) under NoCycleSkip, which is how the differential suite pins
	// the sparse loop's bit-identity.
	wake uint64

	// Correspondence-invariant sampling: tag state is a pure function of
	// the committed memory-op prefix, which is identical at every node,
	// so digests at equal memCommits counts must be equal.
	memCommits uint64
	digests    map[uint64]uint64 // memCommits -> tag-state digest
}

var _ ooo.MemPort = (*node)(nil)
var _ ooo.LoadClassifier = (*node)(nil)

// ClassifyLoad implements ooo.LoadClassifier: it names the leaf cause
// blocking an in-flight load that heads the window. The answer is a pure
// function of frozen protocol state (the miss episode, the BSHR's retry
// counters, and the interconnect's message positions), so it is constant
// across any stretch the next-event scheduler skips — the property the
// skip/noskip CPI differential relies on.
func (n *node) ClassifyLoad(now uint64, tok ooo.LoadToken, addr uint64) obs.StallKind {
	info, ok := n.inflight[tok]
	if !ok || info.hit {
		// An issue-time hit completing its load-to-use latency.
		return obs.StallExec
	}
	e, ok := n.outstanding[n.l1.LineAddr(addr)]
	if !ok {
		return obs.StallExec
	}
	if !e.pending {
		// Known completion cycle: either the local bank is serving the
		// miss, or a broadcast already landed and the load is paying the
		// BSHR access tail.
		if e.local {
			return obs.StallMemLocal
		}
		return obs.StallMemRemote
	}
	// Still waiting on a remote owner's broadcast.
	if n.bshr.WaitRetries(e.line) > 0 {
		return obs.StallMemRetry
	}
	switch n.net.DataPhase(e.line, n.id, now) {
	case bus.PhaseTransfer:
		return obs.StallESPSerial
	case bus.PhaseBlocked:
		return obs.StallNetContention
	case bus.PhaseQueued, bus.PhaseAbsent:
		// Queued behind the owner's broadcast-queue penalty, or the owner
		// has not even reached the access yet: the remote node is the
		// bottleneck.
		return obs.StallMemRemote
	}
	return obs.StallMemRemote // unreachable: the switch is exhaustive
}

// obsEvent emits one typed protocol event when an observer is attached.
func (n *node) obsEvent(kind obs.EventKind, addr, arg uint64) {
	if n.obs == nil {
		return
	}
	n.obs.Event(obs.Event{Cycle: *n.clock, Node: n.id, Kind: kind, Addr: addr, Arg: arg})
}

// IssueLoad implements ooo.MemPort: the issue-time load path of Figure 5.
func (n *node) IssueLoad(now uint64, tok ooo.LoadToken, addr uint64, size int) (uint64, bool) {
	line := n.l1.LineAddr(addr)
	if n.cfg.TraceLine != 0 && line == n.cfg.TraceLine {
		e := n.outstanding[line]
		n.m.traceEvent(n.id, "issue tok=%d probe=%v entry=%v pending=%v", tok, n.l1.Probe(addr), e != nil, e != nil && e.pending)
	}

	// Merge into an outstanding miss episode if one exists.
	if e, ok := n.outstanding[line]; ok {
		n.stats.IssueMisses.Inc()
		n.stats.MergedMisses.Inc()
		n.obsEvent(obs.EvMissFold, line, uint64(e.refs))
		n.inflight[tok] = issueInfo{hit: false, attached: true}
		e.refs++
		if e.pending {
			// Join the BSHR wait for the episode's broadcast.
			if ready, at := n.bshr.Request(line, tok, now); ready {
				e.pending = false
				e.dataAt = at + n.cfg.BSHRCycles
				return maxU64(now+1, e.dataAt), false
			}
			return 0, true
		}
		return maxU64(now+1, e.dataAt), false
	}

	// Issue-time tag probe against committed state.
	if n.l1.Probe(addr) {
		n.stats.IssueHits.Inc()
		n.inflight[tok] = issueInfo{hit: true}
		return now + n.cfg.L1HitCycles, false
	}
	n.stats.IssueMisses.Inc()
	n.inflight[tok] = issueInfo{hit: false, attached: true}

	var e *missEntry
	if k := len(n.missFree); k > 0 {
		e = n.missFree[k-1]
		n.missFree = n.missFree[:k-1]
		*e = missEntry{line: line, refs: 1}
	} else {
		e = &missEntry{line: line, refs: 1}
	}
	n.outstanding[line] = e

	if n.pt.Owns(addr, n.id) {
		// Local memory has the line (replicated page, or this node owns
		// the communicated page).
		n.stats.LocalMisses.Inc()
		dataAt := n.dram.Access(now+n.cfg.L1HitCycles, line)
		e.dataAt = dataAt
		e.local = true
		if !n.pt.IsReplicated(addr) && n.cfg.Nodes > 1 {
			// ESP: push the line to every other node. The broadcast
			// leaves after the broadcast-queue penalty; this node's own
			// load does not wait for the bus.
			n.broadcast(line, dataAt, false)
			e.broadcasted = true
		}
		return dataAt, false
	}

	// Remote operand: it will arrive by broadcast; no request is ever
	// sent (the ESP data-pushing model).
	n.stats.RemoteMisses.Inc()
	e.pending = true
	e.claimed = true
	if ready, at := n.bshr.Request(line, tok, now); ready {
		// Another node ran ahead and its broadcast is already here: an
		// on-chip hit in the BSHR.
		e.pending = false
		e.dataAt = at + n.cfg.BSHRCycles
		return maxU64(now+1, e.dataAt), false
	}
	return 0, true
}

// CommitLoad implements ooo.MemPort: the commit-time tag update (DCUB
// drain) plus false hit/miss detection.
func (n *node) CommitLoad(now uint64, tok ooo.LoadToken, addr uint64, size int) {
	info, ok := n.inflight[tok]
	if !ok {
		panic(fmt.Sprintf("core: node %d: commit of unknown load token %d", n.id, tok))
	}
	delete(n.inflight, tok)
	line := n.l1.LineAddr(addr)
	if n.cfg.TraceLine != 0 && line == n.cfg.TraceLine {
		n.m.traceEvent(n.id, "commitLoad tok=%d issueHit=%v commitHit=%v memCommits=%d", tok, info.hit, n.l1.Probe(addr), n.memCommits)
	}

	e := n.outstanding[line]

	if n.l1.Probe(addr) {
		// Commit-time hit: refresh recency only.
		n.l1.Touch(addr, false)
		if !info.hit {
			// False miss: the issue-time miss was folded into (or
			// created) an episode whose fill already committed.
			n.stats.FalseMisses.Inc()
			n.obsEvent(obs.EvFalseMiss, line, 0)
		}
		n.release(e, line, info)
		n.afterMemCommit(now, addr)
		return
	}

	// Commit-time miss: this access canonically owns a fill. Every node
	// reaches the same conclusion here (the committed prefix is
	// identical), so every node fills, the owner must have one broadcast
	// in flight for this fill, and non-owners must consume one.
	if info.hit {
		n.stats.FalseHits.Inc()
		n.obsEvent(obs.EvFalseHit, line, 0)
	}
	if n.pt.MustLookup(addr).Kind == mem.Communicated && n.cfg.Nodes > 1 {
		if n.pt.Owns(addr, n.id) {
			if e == nil || !e.broadcasted {
				// No broadcast in flight for this fill (this node saw the
				// access as a hit, or its issue-time episode was already
				// consumed by an earlier fill): push one now, late.
				dataAt := n.dram.Access(now, line)
				n.broadcast(line, dataAt, true)
			} else {
				// The issue-time broadcast covers this fill; a further
				// fill of this line needs a fresh one.
				e.broadcasted = false
			}
		} else if e != nil && e.claimed {
			// A load of ours consumed (or is waiting on) this fill's
			// broadcast; a further fill of this line will need its own.
			e.claimed = false
		} else {
			// No local consumer for this fill's broadcast: absorb it.
			if n.cfg.TraceLine != 0 && line == n.cfg.TraceLine {
				n.m.traceEvent(n.id, "absorb")
			}
			n.bshr.Absorb(line)
		}
	}

	// Install the line (the DCUB-to-cache move). Dirty-victim handling
	// follows ESP: writebacks complete locally at the owner and are
	// dropped elsewhere; nothing crosses the chip boundary.
	n.obsEvent(obs.EvCommitFill, line, 0)
	res := n.l1.Fill(addr, false)
	n.stats.Fills.Inc()
	if res.Writeback {
		n.disposeWriteback(now, res.WritebackAddr)
	}
	n.release(e, line, info)
	n.afterMemCommit(now, addr)
}

// release drops the committing load's reference on its DCUB entry,
// freeing the entry when the last attached load commits (the paper's
// deallocation rule).
func (n *node) release(e *missEntry, line uint64, info issueInfo) {
	if !info.attached || e == nil {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(n.outstanding, line)
		n.missFree = append(n.missFree, e)
	}
}

// afterMemCommit samples the correspondence digest at fixed memory-commit
// milestones and, when the fingerprint exchange is enabled, folds the
// committed access into the node's commit fingerprint (the address
// stream is identical at every node, so the fingerprints must agree).
func (n *node) afterMemCommit(now, addr uint64) {
	n.memCommits++
	if iv := n.cfg.DigestInterval; iv != 0 && n.memCommits%iv == 0 {
		n.digests[n.memCommits] = n.l1.StateDigest()
	}
	if fs := n.m.fault; fs != nil && fs.cfg.FingerprintInterval != 0 {
		n.fpAccum = fault.Mix64(n.fpAccum ^ addr)
		if n.memCommits%fs.cfg.FingerprintInterval == 0 {
			fs.emitFingerprint(n, now)
		}
	}
}

// CommitStore implements ooo.MemPort. Stores reach the cache at commit
// (the paper sends stores to the cache at commit time); under the ESP
// write-no-allocate policy a store miss completes in the owner's local
// memory and is dropped everywhere else, generating no traffic.
func (n *node) CommitStore(now uint64, addr uint64, size int) {
	if !n.l1.Touch(addr, true) { // store hit dirties the line in every node's cache
		if n.pt.Owns(addr, n.id) {
			n.stats.StoresLocal.Inc()
			n.dram.Access(now, n.l1.LineAddr(addr)) // bank occupancy; fire and forget
		} else {
			n.stats.StoresDropped.Inc()
		}
	}
	n.afterMemCommit(now, addr)
}

// UsePrivate implements ooo.PrivatePort: the private path is active only
// when result communication is enabled.
func (n *node) UsePrivate() bool { return n.cfg.ResultComm }

// IssuePrivateLoad implements ooo.PrivatePort: an uncached access to
// local memory. Regions execute only at nodes owning their data (others
// skip them entirely), so local memory always has the operand, no
// broadcast is sent, and no tag state changes — keeping the caches
// correspondent across nodes that did and did not execute the region.
func (n *node) IssuePrivateLoad(now uint64, addr uint64, size int) uint64 {
	n.stats.PrivateLoads.Inc()
	return n.dram.Access(now, n.l1.LineAddr(addr))
}

// CommitPrivateStore implements ooo.PrivatePort: an uncached write to
// local memory; the region's results reach other nodes through ordinary
// ESP broadcasts when next loaded outside the region.
func (n *node) CommitPrivateStore(now uint64, addr uint64, size int) {
	n.stats.PrivateStores.Inc()
	n.dram.Access(now, n.l1.LineAddr(addr))
}

func (n *node) disposeWriteback(now uint64, lineAddr uint64) {
	if n.pt.Owns(lineAddr, n.id) {
		n.stats.WritebacksLocal.Inc()
		n.dram.Access(now, lineAddr)
	} else {
		n.stats.WritebacksDropped.Inc()
	}
}

// broadcast enqueues an ESP push of line onto the global bus, leaving the
// chip after the broadcast-queue penalty.
func (n *node) broadcast(line uint64, readyAt uint64, reparative bool) {
	if n.cfg.TraceLine != 0 && line == n.cfg.TraceLine {
		n.m.traceEvent(n.id, "broadcast readyAt=%d reparative=%v", readyAt, reparative)
	}
	n.stats.Broadcasts.Inc()
	if reparative {
		n.stats.LateBroadcasts.Inc()
	}
	n.obsEvent(obs.EvBroadcastSent, line, boolArg(reparative))
	seq := n.bcastSeq
	n.bcastSeq++
	ready := readyAt + n.cfg.BcastQueueCycles
	if fs := n.m.fault; fs != nil {
		if extra := fs.plan.DelayExtra(n.id, line, seq); extra != 0 {
			if !fs.deferGlobal {
				// Under a parallel run the stat side is re-derived by the
				// replay drain (onDrainEnqueue) at the buffered enqueue's
				// serial position; the timing effect applies here either way.
				fs.stats.InjectedDelays++
				fs.stats.DelayCycles += extra
			}
			n.obsEvent(obs.EvFaultDelay, line, extra)
			ready += extra
		}
	}
	n.net.Enqueue(bus.Message{
		Kind:         bus.Broadcast,
		Src:          n.id,
		Addr:         line,
		PayloadBytes: n.cfg.L1.LineBytes,
		ReadyAt:      ready,
		Seq:          seq,
		Reparative:   reparative,
	})
}

// onBroadcast handles a line arriving from the bus.
func (n *node) onBroadcast(line uint64, now uint64) {
	if n.cfg.TraceLine != 0 && line == n.cfg.TraceLine {
		n.m.traceEvent(n.id, "arrive waiting=%v", n.bshr.HasWaiter(line))
	}
	toks := n.bshr.Arrive(line, now)
	for _, tok := range toks {
		n.core.CompleteLoad(tok, now+n.cfg.BSHRCycles)
	}
	if e, ok := n.outstanding[line]; ok && e.pending {
		e.pending = false
		e.dataAt = now + n.cfg.BSHRCycles
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
