package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// TestObservationDoesNotPerturb is the hard requirement of the
// observability layer: attaching a tracer and a sampler must leave the
// simulation bit-identical — same cycle count, same IPC, same value in
// every protocol counter — across kernels, node counts, and both
// interconnects. reflect.DeepEqual over the full Result covers all of
// it, including the MaxWaiting/MaxBuffered high-water marks.
func TestObservationDoesNotPerturb(t *testing.T) {
	kernels := []struct {
		name, src string
		// expectEvents: storeHeavy is all stores, and ESP sends no write
		// traffic off-chip (write-no-allocate L1, stores complete at
		// owners), so a silent event stream is the correct observation
		// there.
		expectEvents bool
	}{
		{"streamSum", streamSum, true},
		{"pointerChase", pointerChase, true},
		{"storeHeavy", storeHeavy, false},
	}
	topologies := []bus.TopologyKind{bus.TopoBus, bus.TopoRing, bus.TopoMesh, bus.TopoTorus}
	for _, k := range kernels {
		for _, nodes := range []int{1, 2, 4} {
			for _, topo := range topologies {
				topo := topo
				t.Run(fmt.Sprintf("%s/%dnodes/%s", k.name, nodes, topo), func(t *testing.T) {
					base := func(c *Config) {
						c.Topology.Kind = topo
					}
					plain := mustRunMachine(t, buildMachine(t, k.src, nodes, base))

					counts := &obs.Counts{}
					trace := obs.NewTrace()
					metrics := obs.NewMetrics(500)
					observed := mustRunMachine(t, buildMachine(t, k.src, nodes, func(c *Config) {
						base(c)
						c.Observer = obs.Multi(counts, trace, metrics)
						c.SampleInterval = 500
					}))

					if !reflect.DeepEqual(plain, observed) {
						t.Fatalf("observation perturbed the run:\nplain:    %+v\nobserved: %+v", plain, observed)
					}
					if k.expectEvents && counts.Total() == 0 {
						t.Fatal("observer attached but no events emitted")
					}
					if counts.Samples < nodes {
						t.Fatalf("expected at least %d samples (one per node), got %d", nodes, counts.Samples)
					}
					if trace.NumSamples() == 0 {
						t.Fatal("trace sink recorded no samples")
					}
					if k.expectEvents {
						if trace.NumEvents() == 0 {
							t.Fatal("trace sink recorded no events")
						}
						if nodes >= 2 && counts.ByKind[obs.EvBroadcastSent] == 0 {
							t.Fatal("multi-node run emitted no broadcast.sent events")
						}
					}
				})
			}
		}
	}
}

// TestObservedEventsMatchCounters cross-checks the event stream against
// the independently maintained statistics counters: the observer is a
// second witness of the same protocol activity, so the tallies must
// agree exactly.
func TestObservedEventsMatchCounters(t *testing.T) {
	counts := &obs.Counts{}
	r := mustRunMachine(t, buildMachine(t, pointerChase, 2, func(c *Config) {
		c.Observer = counts
	}))

	var allocs, joins, bufHits, matched, buffered, squashes uint64
	var bcasts, falseHits, falseMisses, folds uint64
	for i := range r.BSHR {
		allocs += r.BSHR[i].Allocs.Value()
		joins += r.BSHR[i].Joins.Value()
		bufHits += r.BSHR[i].BufferedHits.Value()
		matched += r.BSHR[i].Matched.Value()
		buffered += r.BSHR[i].Buffered.Value()
		squashes += r.BSHR[i].Squashes.Value()
	}
	for i := range r.Nodes {
		bcasts += r.Nodes[i].Broadcasts.Value()
		falseHits += r.Nodes[i].FalseHits.Value()
		falseMisses += r.Nodes[i].FalseMisses.Value()
		folds += r.Nodes[i].MergedMisses.Value()
	}

	checks := []struct {
		name string
		kind obs.EventKind
		want uint64
	}{
		{"bshr.alloc", obs.EvBSHRAlloc, allocs},
		{"bshr.join", obs.EvBSHRJoin, joins},
		{"bshr.found-buffered", obs.EvBSHRFoundBuffered, bufHits},
		{"bshr.match", obs.EvBSHRMatch, matched},
		{"bshr.buffer", obs.EvBSHRBuffer, buffered},
		{"bshr.squash", obs.EvBSHRSquash, squashes},
		{"broadcast.sent", obs.EvBroadcastSent, bcasts},
		{"correspondence.false-hit", obs.EvFalseHit, falseHits},
		{"correspondence.false-miss", obs.EvFalseMiss, falseMisses},
		{"correspondence.miss-fold", obs.EvMissFold, folds},
	}
	for _, c := range checks {
		if got := counts.ByKind[c.kind]; got != c.want {
			t.Errorf("%s events = %d, counter says %d", c.name, got, c.want)
		}
	}
}

// TestNilObserverEmitNoAlloc proves the nil fast path: with no observer
// attached, the hot-path emission helpers must not allocate at all.
func TestNilObserverEmitNoAlloc(t *testing.T) {
	m := buildMachine(t, streamSum, 2, nil)
	nd := m.nodes[0]
	if nd.obs != nil {
		t.Fatal("machine built without observer has one attached")
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		nd.obsEvent(obs.EvCacheFill, 0x2000, 1)
		nd.bshr.obsEvent(obs.EvBSHRAlloc, 0x2000, 1)
	}); allocs != 0 {
		t.Fatalf("nil-observer emission allocated %.1f times per call", allocs)
	}
}

// BenchmarkNilObserverEmit measures the disabled-observation overhead on
// the node's event helper (a nil check and an early return). Run with
// -benchmem: the expected report is 0 B/op, 0 allocs/op.
func BenchmarkNilObserverEmit(b *testing.B) {
	m := buildMachine(b, streamSum, 2, nil)
	nd := m.nodes[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd.obsEvent(obs.EvCacheFill, uint64(i), 1)
	}
}
