package core

// Conservative parallel intra-run simulation (Config.ParallelNodes > 1).
//
// The serial loop in machine.go interleaves every node cycle by cycle.
// This file advances spans of nodes on worker goroutines instead, in
// windows of W cycles, where W is the conservative lookahead the
// interconnect guarantees:
//
//	W = senderFloor + net.Lookahead()
//
// senderFloor is the minimum delay between a node acting at cycle c and
// any message it sends becoming eligible to move (broadcast-queue
// penalty plus the DRAM access that produces the data: every Enqueue
// the timing model performs carries ReadyAt >= c + senderFloor), and
// Lookahead() bounds how long after becoming eligible a message needs
// before it can deliver anywhere or perturb any older message's
// delivery. Together: nothing a node does during [t, t+W) can change
// any delivery inside that window, so deliveries in the window are a
// pure function of interconnect state at t — and every worker can know
// them in advance.
//
// Each window therefore runs in three phases:
//
//  1. Predict: copy the real interconnect into an observer-free scratch
//     (Network.NewScratch/CopyStateFrom) and tick it across the window,
//     recording every arrival with its cycle and within-cycle position.
//  2. Execute: workers advance their nodes cycle by cycle to the
//     horizon, consuming predicted arrivals at the exact cycles the
//     serial loop would deliver them. The node's interconnect and
//     observer are leased to a per-node shim (parNode) that buffers
//     outbound messages, records stall-attribution queries, and tags
//     observer events with a deterministic (cycle, position) key.
//  3. Replay: the coordinator re-ticks the *real* interconnect through
//     the window serially, feeding each node's buffered messages in at
//     their recorded cycles in node order — reproducing the exact
//     serial interleaving of queue depths, arbitration state, and
//     bus-grant events — while merging the buffered per-node event
//     streams back into the observer in serial order and resolving the
//     recorded stall queries against true interconnect state.
//
// The result — cycle counts, stats, CPI stacks, event streams, samples,
// and error/deadlock reports — is byte-identical to the serial loop,
// enforced by the differential suite in internal/sim and the
// core-level sweep in parallel_test.go. docs/PERFORMANCE.md discusses
// when the parallel loop wins and loses.
//
// This file is the one place in internal/core allowed to use
// goroutines and channels (dsvet goroutine-confinement allowlist).

import (
	"fmt"
	"math"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// cycleTag is the within-cycle event position assigned to events emitted
// during a node's own cycle phase: after every arrival of that cycle.
const cycleTag = int32(math.MaxInt32)

// evRec is one buffered observer event with its deterministic merge key.
type evRec struct {
	cyc uint64
	idx int32
	ev  obs.Event
}

// enqRec is one buffered outbound message.
type enqRec struct {
	cyc uint64
	msg bus.Message
}

// qryRec is one recorded stall-attribution interconnect query
// (bus.Network.DataPhase), answered provisionally during the window and
// resolved against true interconnect state at replay.
type qryRec struct {
	cyc  uint64
	line uint64
}

// predRec is one predicted arrival for one node: the delivery cycle, the
// arrival's position among that cycle's deliveries (the serial loop
// processes them in Tick-returned order), and the message.
type predRec struct {
	cyc uint64
	idx int32
	msg bus.Message
}

// parNode is one node's window-execution state plus the shim leased to
// the node while workers own it: it impersonates the interconnect
// (buffering Enqueues, recording DataPhase queries) and the observer
// (buffering events under deterministic tags).
type parNode struct {
	nd *node
	// now is the node's private clock while leased: obsEvent and the
	// bshr/cache observation paths stamp events through a pointer to it.
	now uint64
	// idx is the within-cycle tag for events emitted right now: the
	// current arrival's position during the arrival phase, cycleTag
	// during the cycle phase.
	idx int32

	enq      []enqRec
	enqHead  int
	qry      []qryRec
	qryHead  int
	events   []evRec
	evHead   int
	preds    []predRec
	predHead int

	// done/doneCycle record the first cycle at whose top the core was
	// observed Done. From that cycle on the worker no longer touches the
	// node; arrivals are deferred to replay, which knows whether the
	// machine executes the cycle at all.
	done      bool
	doneCycle uint64
	// committed/lastProgress drive the watchdog: the serial loop's
	// total-commit comparison is equivalent to tracking, per node, the
	// last cycle its (monotone) commit counter changed.
	committed    uint64
	lastProgress uint64
	// errCycle/err record the first core error in the node's own stream.
	errCycle uint64
	err      error
}

var _ bus.Network = (*parNode)(nil)
var _ obs.Observer = (*parNode)(nil)

// Event implements obs.Observer: buffer under the current tag.
//
//dsvet:hotpath
func (pn *parNode) Event(ev obs.Event) {
	pn.events = append(pn.events, evRec{cyc: pn.now, idx: pn.idx, ev: ev})
}

// Sample implements obs.Observer. Samples are emitted only by the
// machine at barriers, never through a leased node.
func (pn *parNode) Sample(obs.Sample) { panic("core: parallel: sample through node shim") }

// Enqueue implements bus.Network: buffer for replay.
//
//dsvet:hotpath
func (pn *parNode) Enqueue(m bus.Message) {
	pn.enq = append(pn.enq, enqRec{cyc: pn.now, msg: m})
}

// DataPhase implements bus.Network: record the query and answer
// PhaseAbsent provisionally. ClassifyLoad maps PhaseAbsent to
// StallMemRemote, so the window charges StallMemRemote; replay re-runs
// the query against true interconnect state and moves the charge when
// the real phase differs (each query corresponds to exactly one
// CPI-stack charge).
//
//dsvet:hotpath
func (pn *parNode) DataPhase(addr uint64, dst int, now uint64) bus.MsgPhase {
	pn.qry = append(pn.qry, qryRec{cyc: now, line: addr})
	return bus.PhaseAbsent
}

// The remaining bus.Network methods are never reached through a node
// (nodes only Enqueue and query DataPhase; machine-level interconnect
// calls go to the real network).
func (pn *parNode) Tick(uint64) []bus.Arrival { panic("core: parallel: Tick through node shim") }
func (pn *parNode) Pending() int              { panic("core: parallel: Pending through node shim") }
func (pn *parNode) SourcePending(int) int     { panic("core: parallel: SourcePending through node shim") }
func (pn *parNode) PurgeSource(int) int       { panic("core: parallel: PurgeSource through node shim") }
func (pn *parNode) NextDeliveryCycle(uint64) uint64 {
	panic("core: parallel: NextDeliveryCycle through node shim")
}
func (pn *parNode) NetStats() *bus.Stats     { panic("core: parallel: NetStats through node shim") }
func (pn *parNode) SetObserver(obs.Observer) { panic("core: parallel: SetObserver through node shim") }
func (pn *parNode) Lookahead() uint64        { panic("core: parallel: Lookahead through node shim") }
func (pn *parNode) NewScratch() bus.Network  { panic("core: parallel: NewScratch through node shim") }
func (pn *parNode) CopyStateFrom(bus.Network) {
	panic("core: parallel: CopyStateFrom through node shim")
}

// parWindow is one window assignment sent to every worker.
type parWindow struct{ t, h uint64 }

// parWorker owns one contiguous span of nodes.
type parWorker struct {
	m      *Machine
	pnodes []*parNode
	start  chan parWindow
	done   chan struct{}
}

// flatPred is the coordinator's window-wide prediction list, used to
// assert at replay that the real interconnect delivered exactly what
// the scratch predicted (the conservative-lookahead invariant).
type flatPred struct {
	cyc  uint64
	node int
	msg  bus.Message
}

// parRunner coordinates one parallel run.
type parRunner struct {
	m       *Machine
	pnodes  []*parNode
	workers []*parWorker
	scratch bus.Network
	window  uint64
	wpreds  []flatPred
	predCur int
}

// newParRunner builds the per-node shims, leases every node's
// interconnect, clock, and observation paths to them, partitions the
// nodes into contiguous spans, and starts one goroutine per span.
func newParRunner(m *Machine) *parRunner {
	p := &parRunner{
		m:       m,
		scratch: m.net.NewScratch(),
	}
	// senderFloor: every message the timing model enqueues at cycle c has
	// ReadyAt >= c + BcastQueueCycles + the DRAM access producing its
	// data (mem.DRAM.Access never returns before now+AccessCycles+BusCycles).
	senderFloor := m.cfg.BcastQueueCycles + uint64(m.cfg.DRAM.AccessCycles) + uint64(m.cfg.DRAM.BusCycles)
	if senderFloor < 1 {
		senderFloor = 1
	}
	p.window = senderFloor + m.net.Lookahead()
	for _, nd := range m.nodes {
		pn := &parNode{nd: nd}
		nd.net = pn
		nd.clock = &pn.now
		if m.obs != nil {
			nd.obs = pn
			nd.bshr.SetObserver(pn, nd.id, &pn.now)
			nd.l1.SetObserver(pn, nd.id, &pn.now)
		}
		p.pnodes = append(p.pnodes, pn)
	}
	nw := m.cfg.ParallelNodes
	if nw > m.cfg.Nodes {
		nw = m.cfg.Nodes
	}
	for k := 0; k < nw; k++ {
		w := &parWorker{
			m:      m,
			pnodes: p.pnodes[k*m.cfg.Nodes/nw : (k+1)*m.cfg.Nodes/nw],
			start:  make(chan parWindow, 1),
			done:   make(chan struct{}, 1),
		}
		p.workers = append(p.workers, w)
		go w.loop()
	}
	return p
}

// leaseNet points every node's interconnect at its shim (lease=true)
// or back at the real network (lease=false). The barrier's idle skip
// runs with the real network: skipped-stretch stall classification
// (SkipCycles → StallClass → ClassifyLoad → DataPhase) must see true
// interconnect state, exactly as the serial loop's skipIdle does —
// the shim would answer PhaseAbsent and misattribute the stall.
func (p *parRunner) leaseNet(lease bool) {
	for _, pn := range p.pnodes {
		if lease {
			pn.nd.net = pn
		} else {
			pn.nd.net = p.m.net
		}
	}
}

// leaseAll leases (or unleases) every node's interconnect, clock, and
// observation wiring at once. The barrier's fault-timeout pass runs
// fully unleased: its retries, self-serves, and events must hit the real
// network and observer directly at m.now, exactly as the serial loop's
// end-of-cycle checkTimeouts does — buffering them through a shim would
// stamp stale cycles and misplace them in the merged event stream.
func (p *parRunner) leaseAll(lease bool) {
	m := p.m
	for _, pn := range p.pnodes {
		nd := pn.nd
		if lease {
			nd.net = pn
			nd.clock = &pn.now
			if m.obs != nil {
				nd.obs = pn
				nd.bshr.SetObserver(pn, nd.id, &pn.now)
				nd.l1.SetObserver(pn, nd.id, &pn.now)
			}
		} else {
			nd.net = m.net
			nd.clock = &m.now
			if m.obs != nil {
				nd.obs = m.obs
				nd.bshr.SetObserver(m.obs, nd.id, &m.now)
				nd.l1.SetObserver(m.obs, nd.id, &m.now)
			}
		}
	}
}

// shutdown stops the workers and returns every node to the serial
// wiring, so a Machine remains inspectable (and re-runnable serially)
// after a parallel run.
func (p *parRunner) shutdown() {
	for _, w := range p.workers {
		close(w.start)
	}
	m := p.m
	for _, nd := range m.nodes {
		nd.net = m.net
		nd.clock = &m.now
		if m.obs != nil {
			nd.obs = m.obs
			nd.bshr.SetObserver(m.obs, nd.id, &m.now)
			nd.l1.SetObserver(m.obs, nd.id, &m.now)
		}
	}
}

// loop is the worker goroutine body: execute windows until the start
// channel closes.
func (w *parWorker) loop() {
	for win := range w.start {
		w.runWindow(win.t, win.h)
		w.done <- struct{}{}
	}
}

// runWindow advances every node in the worker's span from cycle t up to
// (but excluding) horizon h. Within a window the nodes of a span are
// independent of each other and of every other span — the lookahead
// invariant guarantees nothing sent during the window can be delivered
// inside it — so each node runs to the horizon in turn, which also
// keeps its state hot in cache.
func (w *parWorker) runWindow(t, h uint64) {
	noSkip := w.m.cfg.NoCycleSkip
	obsOn := w.m.obs != nil
	fs := w.m.fault
	for _, pn := range w.pnodes {
		if pn.done {
			continue
		}
		if fs != nil && fs.dead[pn.nd.id] {
			// Dead nodes never run; the barrier charges their StallDead
			// stretch (liveness only changes at window boundaries).
			continue
		}
		nd := pn.nd
		for c := t; c < h; c++ {
			// Done check first, mirroring the serial loop top: a node done
			// at the top of cycle c must not consume cycle-c arrivals here,
			// because whether the machine executes cycle c at all depends
			// on the other spans (replay applies them iff it does).
			if nd.core.Done() {
				pn.done = true
				pn.doneCycle = c
				break
			}
			pn.now = c
			// Arrival phase: consume this cycle's predicted deliveries in
			// their serial order.
			for pn.predHead < len(pn.preds) && pn.preds[pn.predHead].cyc == c {
				pr := &pn.preds[pn.predHead]
				pn.predHead++
				pn.idx = pr.idx
				if nd.wake > c {
					nd.wake = c
				}
				// Node-local fault effects (suppression, retry service,
				// fingerprint taint) are pure functions of message identity,
				// so the worker applies them here; the replay re-derives
				// the global bookkeeping at the same serial position.
				if fs != nil && w.m.faultArrivalLocal(nd, pr.msg, c) {
					continue
				}
				if pr.msg.Kind == bus.Broadcast {
					if obsOn {
						pn.Event(obs.Event{
							Cycle: c, Node: nd.id, Kind: obs.EvBroadcastArrived,
							Addr: pr.msg.Addr, Arg: boolArg(pr.msg.Reparative),
						})
					}
					nd.onBroadcast(pr.msg.Addr, c)
				}
			}
			// Cycle phase.
			pn.idx = cycleTag
			if !noSkip && nd.wake > c {
				nd.core.SkipCycles(c, 1)
			} else {
				nd.core.Cycle(c)
				if err := nd.core.Err(); err != nil {
					pn.errCycle, pn.err = c, err
					break
				}
				if !noSkip {
					if next, ok := nd.core.NextEventCycle(c + 1); ok {
						nd.wake = next
					} else {
						nd.wake = c + 1
					}
				}
			}
			if cm := nd.core.Committed(); cm != pn.committed {
				pn.committed = cm
				pn.lastProgress = c
			}
		}
	}
}

// predict loads the scratch interconnect with the real network's state
// and ticks it across [t, h), distributing predicted arrivals to the
// receiving nodes and recording the full sequence for the replay
// assertion. New messages enqueued during the window cannot deliver or
// perturb deliveries before h (the lookahead invariant), so the scratch
// — which sees none of them — predicts the window's deliveries exactly.
func (p *parRunner) predict(t, h uint64) {
	for _, pn := range p.pnodes {
		pn.enq = pn.enq[:0]
		pn.enqHead = 0
		pn.qry = pn.qry[:0]
		pn.qryHead = 0
		pn.events = pn.events[:0]
		pn.evHead = 0
		pn.preds = pn.preds[:0]
		pn.predHead = 0
	}
	p.wpreds = p.wpreds[:0]
	p.predCur = 0
	p.scratch.CopyStateFrom(p.m.net)
	for c := t; c < h; c++ {
		idx := int32(0)
		for _, arr := range p.scratch.Tick(c) {
			pn := p.pnodes[arr.Node]
			pn.preds = append(pn.preds, predRec{cyc: c, idx: idx, msg: arr.Msg})
			p.wpreds = append(p.wpreds, flatPred{cyc: c, node: arr.Node, msg: arr.Msg})
			idx++
		}
	}
}

// flushEvents merges node events tagged at or before (cyc, idx) into the
// observer, preserving each node's buffer order (tags are monotone per
// node).
func (p *parRunner) flushEvents(pn *parNode, cyc uint64, idx int32) {
	if p.m.obs == nil {
		return
	}
	for pn.evHead < len(pn.events) {
		e := &pn.events[pn.evHead]
		if e.cyc > cyc || (e.cyc == cyc && e.idx > idx) {
			break
		}
		p.m.obs.Event(e.ev)
		pn.evHead++
	}
}

// phaseStall maps a resolved interconnect phase to the stall kind
// ClassifyLoad would have charged for it (node.go keeps the same
// mapping; the switch covers every MsgPhase).
func phaseStall(ph bus.MsgPhase) obs.StallKind {
	switch ph {
	case bus.PhaseTransfer:
		return obs.StallESPSerial
	case bus.PhaseBlocked:
		return obs.StallNetContention
	case bus.PhaseQueued, bus.PhaseAbsent:
		return obs.StallMemRemote
	}
	return obs.StallMemRemote // unreachable: the switch is exhaustive
}

// replayCycle re-runs cycle c against the real interconnect: Tick (live
// bus-grant events), the arrival walk in delivered order (applying
// deferred arrivals to nodes whose workers had already seen them done,
// and merging each node's buffered arrival events at its position),
// then the node phase in id order — buffered Enqueues at their recorded
// cycle, stall-query resolution against true state, and the node's
// cycle-phase events. limitNode cuts the node phase short for the
// partial cycle of a core-error abort (-1: all nodes), mirroring the
// serial loop's immediate return. A real delivery diverging from the
// prediction would mean the lookahead invariant is broken — a simulator
// bug — and panics rather than silently corrupting a deterministic run.
func (p *parRunner) replayCycle(c uint64, limitNode int) {
	m := p.m
	m.now = c
	idx := int32(0)
	for _, arr := range m.net.Tick(c) {
		if p.predCur >= len(p.wpreds) || p.wpreds[p.predCur].cyc != c ||
			p.wpreds[p.predCur].node != arr.Node || p.wpreds[p.predCur].msg != arr.Msg {
			panic(fmt.Sprintf("core: parallel: real delivery diverged from prediction at cycle %d node %d", c, arr.Node))
		}
		p.predCur++
		pn := p.pnodes[arr.Node]
		// Global fault bookkeeping for every delivery, in serial order
		// (the workers applied only the node-local half). A dead
		// receiver's arrivals vanish here, as in the serial loop.
		if m.fault != nil {
			m.faultArrivalGlobal(arr.Node, arr.Msg, c)
		}
		if pn.done && pn.doneCycle <= c {
			// Deferred: the worker left the node at doneCycle; apply the
			// arrival now, through the node's buffer so any observation it
			// emits merges at this exact position.
			pn.now = c
			pn.idx = idx
			if m.fault != nil && m.faultArrivalLocal(pn.nd, arr.Msg, c) {
				// Consumed by the fault layer (a done node still serves
				// retries and absorbs control traffic, like the serial loop).
			} else if arr.Msg.Kind == bus.Broadcast {
				if m.obs != nil {
					pn.Event(obs.Event{
						Cycle: c, Node: arr.Node, Kind: obs.EvBroadcastArrived,
						Addr: arr.Msg.Addr, Arg: boolArg(arr.Msg.Reparative),
					})
				}
				pn.nd.onBroadcast(arr.Msg.Addr, c)
			}
		}
		p.flushEvents(pn, c, idx)
		idx++
	}
	for i, pn := range p.pnodes {
		if limitNode >= 0 && i > limitNode {
			break
		}
		for pn.enqHead < len(pn.enq) && pn.enq[pn.enqHead].cyc == c {
			msg := pn.enq[pn.enqHead].msg
			if m.fault != nil {
				// Deferred global side of the buffered send (delay stats,
				// fingerprint self-record), at its serial position.
				m.fault.onDrainEnqueue(m, msg)
			}
			m.net.Enqueue(msg)
			pn.enqHead++
		}
		for pn.qryHead < len(pn.qry) && pn.qry[pn.qryHead].cyc == c {
			q := &pn.qry[pn.qryHead]
			pn.qryHead++
			if kind := phaseStall(m.net.DataPhase(q.line, i, c)); kind != obs.StallMemRemote {
				st := pn.nd.core.CPIStack()
				st[obs.StallMemRemote]--
				st[kind]++
			}
		}
		p.flushEvents(pn, c, cycleTag)
	}
}

// runParallel is Machine.Run's parallel twin: the same loop structure,
// advanced a window at a time. See the file comment for the protocol.
func (m *Machine) runParallel() (Result, error) {
	watchdog := m.cfg.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	p := newParRunner(m)
	defer p.shutdown()
	if m.fault != nil {
		// Workers apply only node-local fault effects; the global side
		// (stats, ledger, ground truth) is re-derived at replay. Reset on
		// exit so the machine can be inspected or re-run serially.
		m.fault.deferGlobal = true
		defer func() { m.fault.deferGlobal = false }()
	}
	lastProgress := uint64(0)

	for {
		// Scheduled deaths land exactly at window starts (the horizon is
		// clipped to the next death cycle below), so killing here matches
		// the serial loop's cycle-top maybeKill. Workers are idle and the
		// nodes effectively unleased between windows, so the kill acts on
		// real machine state.
		if m.fault != nil {
			m.maybeKill()
		}
		done := true
		for _, nd := range m.nodes {
			if !nd.core.Done() && !m.nodeDead(nd.id) {
				done = false
				break
			}
		}
		if done {
			break
		}

		t := m.now
		h := t + p.window
		// Clip to the first cycle the watchdog could fire, so a deadlock
		// surfaces at the identical cycle, and to the next sample
		// boundary, so samples are emitted exactly at barriers with fully
		// settled state.
		if d := lastProgress + watchdog + 2; d < h {
			h = d
		}
		if m.sampler != nil {
			if nb := (t/m.cfg.SampleInterval + 1) * m.cfg.SampleInterval; nb < h {
				h = nb
			}
		}
		if fs := m.fault; fs != nil {
			if fs.report != nil {
				// A quorum loss armed at this window's kill: the serial
				// loop executes exactly one more cycle before returning.
				h = t + 1
			}
			// Kills must land at window starts; maybeKill above retired
			// everything <= t, so the next scheduled cycle is strictly
			// ahead and a one-cycle window is the worst case.
			if fs.nextDeath < len(fs.schedule) {
				if dc := fs.schedule[fs.nextDeath].Cycle; dc < h {
					h = dc
				}
			}
			// No BSHR deadline may expire strictly inside a window (the
			// faultParallelOK precondition keeps in-window arms past any
			// horizon): clip so the earliest pending deadline expires
			// exactly at the barrier's h-1 timeout pass, where the serial
			// loop's end-of-cycle pass would have caught it.
			if dl := m.minRetryDeadline(); dl != NoDeadline && dl+1 < h {
				h = dl + 1
			}
		}

		p.predict(t, h)
		for _, w := range p.workers {
			w.start <- parWindow{t: t, h: h}
		}
		for _, w := range p.workers {
			<-w.done
		}

		// Barrier: gather completion, progress, and the first core error
		// in serial order (smallest cycle, then smallest node id — the
		// order the serial loop would have hit it).
		errNode := -1
		allDone := true
		for i, pn := range p.pnodes {
			if m.nodeDead(i) {
				continue // a dead node neither errs, finishes, nor progresses
			}
			if pn.err != nil && (errNode < 0 || pn.errCycle < p.pnodes[errNode].errCycle) {
				errNode = i
			}
			if !pn.done {
				allDone = false
			}
			if pn.lastProgress > lastProgress {
				lastProgress = pn.lastProgress
			}
		}
		if errNode >= 0 {
			// The serial loop returns mid-cycle, right after the erring
			// node's Cycle: replay the full cycles before it, then the
			// partial cycle through that node, so the observer stream and
			// the abort cycle match exactly.
			ec := p.pnodes[errNode].errCycle
			for c := t; c < ec; c++ {
				p.replayCycle(c, -1)
			}
			p.replayCycle(ec, errNode)
			m.now = ec
			return Result{}, fmt.Errorf("core: node %d: %w", errNode, p.pnodes[errNode].err)
		}
		// endExec is the exclusive bound on cycles the machine actually
		// executes: the horizon, or — when every node finished inside the
		// window — the first all-done loop top, past which the serial
		// loop never ticks the interconnect.
		endExec := h
		if allDone {
			endExec = t
			for i, pn := range p.pnodes {
				if !m.nodeDead(i) && pn.doneCycle > endExec {
					endExec = pn.doneCycle
				}
			}
		}
		for c := t; c < endExec; c++ {
			p.replayCycle(c, -1)
			if fs := m.fault; fs != nil && fs.report != nil && c < endExec-1 {
				// A divergence surfaced mid-window (fingerprint ledger):
				// the serial loop finishes cycle c and returns. Later
				// cycles the workers over-executed stay unreplayed and
				// unobservable (no events flushed, no net mutation, no
				// global stats), exactly like the core-error abort path.
				m.now = c
				return Result{}, fs.report
			}
		}
		// The serial loop charges StallHalted to every done node — and
		// StallDead to every dead one — on every executed cycle; the
		// workers touch neither, so charge the whole stretch here.
		for i, pn := range p.pnodes {
			if m.nodeDead(i) {
				pn.nd.core.CPIStack().Add(obs.StallDead, endExec-t)
				continue
			}
			if !pn.done || pn.doneCycle >= endExec {
				continue
			}
			from := pn.doneCycle
			if from < t {
				from = t
			}
			pn.nd.core.CPIStack().Add(obs.StallHalted, endExec-from)
		}
		if m.fault != nil && endExec == h {
			// The barrier's single timeout pass at h-1: by the horizon
			// clips, no deadline expired at any earlier executed cycle, so
			// this one pass reproduces the serial loop's per-cycle
			// checkTimeouts schedule. It runs fully unleased — retries and
			// self-serves act on the real interconnect and observer.
			m.now = h - 1
			p.leaseAll(false)
			m.checkTimeouts()
			p.leaseAll(true)
		}
		if m.fault != nil {
			if r := m.fault.report; r != nil {
				m.now = endExec - 1
				return Result{}, r
			}
		}
		if (endExec-1)-lastProgress > watchdog {
			m.now = endExec - 1
			return Result{}, m.deadlockError()
		}
		m.now = endExec
		if m.sampler != nil && m.now%m.cfg.SampleInterval == 0 {
			m.emitSamples()
		}
		if !m.cfg.NoCycleSkip {
			p.leaseNet(false)
			m.skipIdle(lastProgress, watchdog)
			p.leaseNet(true)
		}
	}
	if m.sampler != nil && m.now > m.sampler.lastCycle {
		m.emitSamples() // final partial interval
	}
	return m.collect(), nil
}
