package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// TestParallelBitIdentical is the machine-level contract of conservative
// parallel intra-run simulation: partitioning the nodes across worker
// goroutines must leave the run bit-identical to the serial loop — same
// final cycle count, same value in every counter and CPI stack, and the
// same observation stream (events in the same order with the same
// cycles, samples at the same boundaries with the same contents). The
// sweep crosses kernels, node counts, all four topologies, skip/noskip,
// and worker counts including one that divides the nodes unevenly.
// The -short variant (used by the CI race job) trims the sweep but keeps
// every topology.
func TestParallelBitIdentical(t *testing.T) {
	kernels := []struct{ name, src string }{
		{"streamSum", streamSum},
		{"pointerChase", pointerChase},
		{"storeHeavy", storeHeavy},
	}
	nodeCounts := []int{2, 4}
	workerCounts := []int{2, 3, 4}
	noSkips := []bool{false, true}
	if testing.Short() {
		kernels = kernels[:1]
		nodeCounts = []int{4}
		workerCounts = []int{2, 4}
		noSkips = []bool{false}
	}
	topologies := []bus.TopologyKind{bus.TopoBus, bus.TopoRing, bus.TopoMesh, bus.TopoTorus}
	for _, k := range kernels {
		for _, nodes := range nodeCounts {
			for _, topo := range topologies {
				for _, noSkip := range noSkips {
					t.Run(fmt.Sprintf("%s/%dnodes/%s/noskip=%v", k.name, nodes, topo, noSkip), func(t *testing.T) {
						run := func(parallel int) (Result, *obs.Trace) {
							trace := obs.NewTrace()
							m := buildMachine(t, k.src, nodes, func(c *Config) {
								c.Topology.Kind = topo
								c.NoCycleSkip = noSkip
								c.ParallelNodes = parallel
								c.Observer = trace
								c.SampleInterval = 500
							})
							return mustRunMachine(t, m), trace
						}
						serial, serialTrace := run(1)
						for _, workers := range workerCounts {
							par, parTrace := run(workers)
							if !reflect.DeepEqual(serial, par) {
								t.Fatalf("parallel-nodes=%d changed the result:\nserial:   %+v\nparallel: %+v",
									workers, serial, par)
							}
							if !reflect.DeepEqual(serialTrace, parTrace) {
								t.Fatalf("parallel-nodes=%d changed the observation stream "+
									"(serial: %d events / %d samples, parallel: %d events / %d samples)",
									workers,
									serialTrace.NumEvents(), serialTrace.NumSamples(),
									parTrace.NumEvents(), parTrace.NumSamples())
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelObserverOffBitIdentical pins the observer-free path: with
// no observer attached the parallel loop buffers no events at all, and
// the Result must still match the serial loop exactly.
func TestParallelObserverOffBitIdentical(t *testing.T) {
	for _, topo := range []bus.TopologyKind{bus.TopoBus, bus.TopoMesh} {
		t.Run(topo.String(), func(t *testing.T) {
			run := func(parallel int) Result {
				m := buildMachine(t, streamSum, 4, func(c *Config) {
					c.Topology.Kind = topo
					c.ParallelNodes = parallel
				})
				return mustRunMachine(t, m)
			}
			serial := run(1)
			for _, workers := range []int{2, 4} {
				if par := run(workers); !reflect.DeepEqual(serial, par) {
					t.Fatalf("parallel-nodes=%d changed the observer-free result:\nserial:   %+v\nparallel: %+v",
						workers, serial, par)
				}
			}
		})
	}
}

// TestParallelPreservesDeadlockCycle: a wedged machine must report the
// watchdog deadlock at the identical cycle with the identical snapshot
// whether the nodes run serially or partitioned — the horizon clip at
// the first possible watchdog cycle is what makes this exact.
func TestParallelPreservesDeadlockCycle(t *testing.T) {
	errFor := func(parallel int) error {
		m := buildMachine(t, pointerChase, 2, func(c *Config) {
			c.WatchdogCycles = 1 // fires on the first idle stretch
			c.ParallelNodes = parallel
		})
		_, err := m.Run()
		return err
	}
	serialErr, parErr := errFor(1), errFor(2)
	if serialErr == nil || parErr == nil {
		t.Fatalf("watchdog did not fire: serial=%v parallel=%v", serialErr, parErr)
	}
	if serialErr.Error() != parErr.Error() {
		t.Fatalf("deadlock reports differ:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}

// TestParallelSteadyStateAllocs bounds the partitioned loop's allocation
// behaviour: window buffers, prediction scratch, and the scratch
// interconnect are all reused, so total allocations during a run are
// dominated by warmup (buffer growth to its high-water mark) and must
// not scale with the thousands of windows a full kernel executes.
func TestParallelSteadyStateAllocs(t *testing.T) {
	m := buildMachine(t, streamSum, 4, func(c *Config) {
		c.ParallelNodes = 2
	})
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	// The bound is deliberately loose (warmup growth, goroutine stacks,
	// map resizes) but far below one allocation per simulated window, so
	// a per-window leak fails it immediately.
	if allocs := after.Mallocs - before.Mallocs; allocs > 25_000 {
		t.Fatalf("parallel run allocated %d objects; window state is supposed to be reused", allocs)
	}
}
