package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/mem"
)

// Protocol-scenario tests: small crafted programs that deterministically
// exercise specific arms of the cache-correspondence protocol and assert
// the corresponding statistics, documenting each mechanism beyond what
// the fuzzer's blanket invariants cover.

// thrashProgram ping-pongs between lines that conflict in a small
// direct-mapped cache while a long-latency dependence keeps many accesses
// in flight — the recipe for false hits (a line present at issue is
// evicted by older commits before the access itself commits).
func thrashProgram() string {
	var b strings.Builder
	b.WriteString(`
        .data
area:   .space 32768
        .text
        la   r1, area
        li   r9, 0
bench_main:
`)
	// Interleave accesses to three conflicting lines (0, 512, 1024 under
	// a 512-byte direct-mapped cache) with occasional far pages.
	offs := []int{0, 512, 1024, 0, 8192, 512, 16384, 1024, 0, 512, 24576, 1024}
	for round := 0; round < 60; round++ {
		for _, off := range offs {
			fmt.Fprintf(&b, "        ld   r4, %d(r1)\n", off)
			fmt.Fprintf(&b, "        add  r9, r9, r4\n")
		}
	}
	b.WriteString("        halt\n")
	return b.String()
}

func runThrash(t *testing.T, nodes int) Result {
	t.Helper()
	p, err := asm.Assemble("thrash", thrashProgram())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(nodes)
	cfg.L1.SizeBytes = 512
	cfg.FastForwardPC = p.Labels["bench_main"]
	cfg.WatchdogCycles = 300_000
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.CorrespondenceOK {
		t.Fatal("correspondence violated")
	}
	return r
}

func TestRepairStatisticsUnderThrash(t *testing.T) {
	r := runThrash(t, 2)
	var late, squashes, merged uint64
	for i, ns := range r.Nodes {
		late += ns.LateBroadcasts.Value()
		merged += ns.MergedMisses.Value()
		squashes += r.BSHR[i].Squashes.Value()
	}
	if merged == 0 {
		t.Error("no merged misses (DCUB sharing never observed)")
	}
	if late == 0 {
		t.Error("no late broadcasts (multi-fill episodes never repaired)")
	}
	if squashes == 0 {
		t.Error("no absorbed broadcasts")
	}
}

// falseHitProgram engineers the issue/commit race behind a false hit:
// X is warmed and committed; a conflicting remote line Y is loaded (slow
// to complete, so it commits late); a second load of X has its address
// gated behind a long multiply chain so it *issues* after X's warm-up
// committed (probe hit) but *commits* after Y's fill evicted X — a
// commit-time miss on an issue-time hit. A back-to-back X pair at the
// start of each round produces false misses (the second folds into the
// first's episode and commit-hits).
func falseHitProgram() string {
	var b strings.Builder
	b.WriteString(`
        .data
area:   .space 32768
        .text
        la   r1, area
        li   r9, 0
        li   r10, 3
bench_main:
        li   r20, 120            # rounds
round:  ld   r4, 0(r1)           # X: miss, fill at commit
        ld   r5, 8(r1)           # X again: folds into the episode (false miss)
        mul  r11, r10, r10       # ~5-mul delay chain (~20 cycles)
        mul  r11, r11, r10
        mul  r11, r11, r10
        mul  r11, r11, r10
        mul  r11, r11, r10
        andi r11, r11, 16        # in {0, 16}: stays within line X
        ld   r6, 8192(r1)        # Y: conflicts with X; remote at node 0
        add  r12, r1, r11
        ld   r7, 0(r12)          # X via delayed address: the false-hit victim
        add  r9, r9, r4
        add  r9, r9, r5
        add  r9, r9, r6
        add  r9, r9, r7
        ld   r8, 16384(r1)       # churn another set to vary timing
        add  r9, r9, r8
        addi r20, r20, -1
        bne  r20, zero, round
        halt
`)
	return b.String()
}

func TestFalseHitAndFalseMissArms(t *testing.T) {
	p, err := asm.Assemble("falsehit", falseHitProgram())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.L1.SizeBytes = 512
	cfg.FastForwardPC = p.Labels["bench_main"]
	cfg.WatchdogCycles = 300_000
	// A small window keeps one round's X loads from attaching to the
	// previous round's DCUB entry: the entry must die for the delayed
	// load to probe the cache (and false-hit) instead of merging.
	cfg.Core.RUUSize = 16
	cfg.Core.LSQSize = 8
	cfg.Core.FwdDist = 8
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.CorrespondenceOK {
		t.Fatal("correspondence violated")
	}
	var falseHits, falseMisses uint64
	for _, ns := range r.Nodes {
		falseHits += ns.FalseHits.Value()
		falseMisses += ns.FalseMisses.Value()
	}
	if falseHits == 0 {
		t.Error("engineered false-hit race never fired")
	}
	if falseMisses == 0 {
		t.Error("engineered false-miss fold never fired")
	}
	t.Logf("falseHits=%d falseMisses=%d", falseHits, falseMisses)
}

func TestBroadcastFillPairing(t *testing.T) {
	// Conservation at each node: arrivals are consumed by exactly one of
	// match, buffered(-then-hit), or absorb, and every waiting alloc is
	// eventually satisfied (zero waiters at end — otherwise the run
	// would have deadlocked).
	r := runThrash(t, 4)
	for i, b := range r.BSHR {
		consumed := b.Matched.Value() + b.Squashes.Value() + b.Buffered.Value()
		if b.Arrivals.Value() != consumed {
			t.Errorf("node %d: arrivals %d != matched %d + squashed %d + buffered %d",
				i, b.Arrivals.Value(), b.Matched.Value(), b.Squashes.Value(), b.Buffered.Value())
		}
		if b.Allocs.Value() != b.Matched.Value() {
			// Every waiting entry is freed by exactly one matching
			// arrival (none left at completion).
			t.Errorf("node %d: allocs %d != matched %d", i, b.Allocs.Value(), b.Matched.Value())
		}
	}
}

func TestOwnerBroadcastPerFill(t *testing.T) {
	// Across the whole machine, every commit-time fill of a communicated
	// line at a non-owner consumes one broadcast; total broadcasts sent
	// must therefore be >= the per-node maximum of (bufferedHits +
	// matched arrivals).
	r := runThrash(t, 2)
	var sent uint64
	for _, ns := range r.Nodes {
		sent += ns.Broadcasts.Value()
	}
	for i, b := range r.BSHR {
		needed := b.BufferedHits.Value() + b.Matched.Value()
		if needed > sent {
			t.Errorf("node %d consumed %d broadcasts but only %d were sent", i, needed, sent)
		}
	}
	if sent == 0 {
		t.Fatal("no broadcasts at all")
	}
}

func TestDigestSamplingDisabled(t *testing.T) {
	// DigestInterval = 0 must still verify final-state correspondence.
	p, err := asm.Assemble("thrash", thrashProgram())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: 2, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.DigestInterval = 0
	cfg.FastForwardPC = p.Labels["bench_main"]
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.CorrespondenceOK {
		t.Fatal("final-state correspondence check failed")
	}
	if m.CorrespondenceReport() != "" {
		t.Fatal("report non-empty for a passing run")
	}
}
