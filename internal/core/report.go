package core

import (
	"github.com/wisc-arch/datascalar/internal/stats"
)

// Report renders a run's statistics as human-readable tables: the
// machine summary, then one row per node covering the ESP, correspondence,
// and BSHR counters. cmd/dsrun and downstream users print it after runs.
func (r Result) Report() []*stats.Table {
	summary := stats.NewTable(
		"DataScalar run",
		"cycles", "instructions", "IPC", "correspondence",
		"bus msgs", "bus bytes", "bus busy")
	corr := "ok"
	if !r.CorrespondenceOK {
		corr = "VIOLATED"
	}
	busy := stats.Ratio{Part: r.BusStats.BusyCycles.Value(), Whole: r.Cycles}
	summary.AddRowf(r.Cycles, r.Instructions, r.IPC, corr,
		r.BusStats.Messages.Value(), r.BusStats.Bytes.Value(),
		stats.FormatPercent(busy.Percent()))

	nodes := stats.NewTable(
		"Per-node ESP and correspondence activity",
		"node", "issue hits", "issue misses", "merged", "local", "remote",
		"broadcasts", "late", "false hits", "false misses", "fills")
	for i, ns := range r.Nodes {
		nodes.AddRowf(i,
			ns.IssueHits.Value(), ns.IssueMisses.Value(), ns.MergedMisses.Value(),
			ns.LocalMisses.Value(), ns.RemoteMisses.Value(),
			ns.Broadcasts.Value(), ns.LateBroadcasts.Value(),
			ns.FalseHits.Value(), ns.FalseMisses.Value(), ns.Fills.Value())
	}

	bshr := stats.NewTable(
		"Per-node BSHR activity",
		"node", "waits", "joins", "found waiting", "arrivals", "matched",
		"buffered", "absorbed", "max buffered")
	for i, b := range r.BSHR {
		bshr.AddRowf(i,
			b.Allocs.Value(), b.Joins.Value(), b.BufferedHits.Value(),
			b.Arrivals.Value(), b.Matched.Value(), b.Buffered.Value(),
			b.Squashes.Value(), b.MaxBuffered)
	}

	return []*stats.Table{summary, nodes, bshr}
}
