package core

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// regionSource implements the execution side of result communication
// (paper Section 5.1): "it is possible for a processor to temporarily
// deviate from the ESP model and execute a private computation,
// broadcasting only the result — not the operands — to the other
// processors."
//
// A PRIVB marker names a region and, through its effective address, the
// node owning the region's data. That owner executes the region with
// uncached local accesses and no broadcasts (the ooo.PrivatePort path);
// every other node SKIPS the region's instructions entirely — this
// wrapper drains them from the dynamic stream without dispatching them —
// and picks the results up through ordinary ESP broadcasts the first
// time post-region code loads them. Functional state never diverges:
// the wrapped emulator still executes every instruction; only the timing
// model skips.
//
// Regions whose pages are replicated are executed by every node (there
// is no single owner to delegate to).
// The PRIVB/PRIVE markers themselves are always delivered, even at nodes
// that skip the region body: the out-of-order core treats them as
// store-forwarding barriers, and the barrier must fall at the same
// program position at every node — otherwise a skipping node could
// forward a post-region load from a pre-region store while the owner
// (whose forwarding window contains the region's private stores) does
// not, desynchronizing commit-time cache updates and eliding a broadcast
// the skipper waits on.
type regionSource struct {
	inner   ooo.Source
	pt      *mem.PageTable
	nodeID  int
	skipped *stats.Counter
	// pending holds the region-closing PRIVE to deliver after a skipped
	// body.
	pending *emu.Dyn
}

var _ ooo.Source = (*regionSource)(nil)

// Next implements ooo.Source.
func (s *regionSource) Next() (emu.Dyn, bool, error) {
	if s.pending != nil {
		d := *s.pending
		s.pending = nil
		return d, true, nil
	}
	d, ok, err := s.inner.Next()
	if err != nil || !ok {
		return d, ok, err
	}
	if d.Instr.Op != isa.OpPRIVB {
		return d, true, nil
	}
	if s.pt.IsReplicated(d.EA) || s.pt.Owns(d.EA, s.nodeID) {
		// This node executes the region (as owner, or because the
		// region's data is replicated everywhere).
		return d, true, nil
	}
	// Remote region: drain its body, keeping the closing PRIVE for the
	// next call so both markers reach the core.
	depth := 1
	for depth > 0 {
		nd, ok, err := s.inner.Next()
		if err != nil {
			return emu.Dyn{}, false, err
		}
		if !ok {
			return emu.Dyn{}, false, fmt.Errorf("core: stream ended inside a private region")
		}
		switch nd.Instr.Op {
		case isa.OpPRIVB:
			depth++
		case isa.OpPRIVE:
			depth--
			if depth == 0 {
				s.pending = &nd
				break
			}
		}
		if depth > 0 {
			s.skipped.Inc()
		}
	}
	return d, true, nil
}
