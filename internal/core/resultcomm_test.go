package core

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/mem"
)

// privateReduction sums blocks of an array inside PRIVB/PRIVE regions —
// the paper's "private computation" — then a shared pass reads the
// per-block results. Each region names its block's base address, so the
// block's owner executes it and everyone else skips it.
const privateReduction = `
        .data
blocks: .space 65536             # 8 pages of data, round-robin distributed
        .space 288
sums:   .space 1024              # per-block results (shared)
        .text
        # init blocks with a counter pattern
        la   r1, blocks
        li   r2, 8192
        li   r3, 1
init:   sd   r3, 0(r1)
        addi r3, r3, 1
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, init

bench_main:
        # one region per 8 KB block: sum its 1024 words privately
        la   r10, blocks
        la   r11, sums
        li   r12, 8              # blocks
blk:    privb 0(r10)             # region owner = owner of this block
        li   r2, 1024
        li   r3, 0
        mov  r1, r10
red:    ld   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, red
        sd   r3, 0(r11)          # private result store
        prive
        addi r10, r10, 8192
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, blk

        # shared pass: total the per-block results (ordinary ESP)
        la   r11, sums
        li   r12, 8
        li   r20, 0
tot:    ld   r4, 0(r11)
        add  r20, r20, r4
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, tot
        halt
`

func runResultComm(t *testing.T, nodes int, enable bool) (Result, *Machine) {
	t.Helper()
	p, err := asm.Assemble("rc", privateReduction)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(nodes)
	cfg.WatchdogCycles = 500_000
	cfg.FastForwardPC = p.Labels["bench_main"]
	cfg.ResultComm = enable
	m, err := NewMachine(cfg, p, pt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("resultComm=%v: %v", enable, err)
	}
	if !r.CorrespondenceOK {
		t.Fatalf("resultComm=%v: correspondence violated", enable)
	}
	return r, m
}

func TestResultCommFunctionalEquality(t *testing.T) {
	// The grand total is sum(1..8192) regardless of execution model.
	want := uint64(8192 * 8193 / 2)
	for _, enable := range []bool{false, true} {
		_, m := runResultComm(t, 2, enable)
		for i := 0; i < 2; i++ {
			if got := m.NodeEmu(i).Reg(20); got != want {
				t.Fatalf("resultComm=%v node %d: total = %d, want %d", enable, i, got, want)
			}
		}
	}
}

func TestResultCommEliminatesOperandBroadcasts(t *testing.T) {
	off, _ := runResultComm(t, 2, false)
	on, _ := runResultComm(t, 2, true)

	offB := off.BusStats.Messages.Value()
	onB := on.BusStats.Messages.Value()
	// With regions private, the block operand loads (8 K words = 2048
	// lines) are never broadcast; only the tiny shared result pass is.
	if onB*4 > offB {
		t.Fatalf("broadcasts with result comm = %d, without = %d; want >= 4x reduction", onB, offB)
	}
	if on.Cycles >= off.Cycles {
		t.Fatalf("result comm slower: %d cycles vs %d", on.Cycles, off.Cycles)
	}
}

func TestResultCommSkipsRemoteRegions(t *testing.T) {
	r, _ := runResultComm(t, 2, true)
	var skipped, privLoads, privStores uint64
	for _, ns := range r.Nodes {
		skipped += ns.SkippedInstr.Value()
		privLoads += ns.PrivateLoads.Value()
		privStores += ns.PrivateStores.Value()
	}
	if skipped == 0 {
		t.Fatal("no instructions skipped despite remote private regions")
	}
	if privLoads == 0 || privStores == 0 {
		t.Fatalf("private accesses not used: loads=%d stores=%d", privLoads, privStores)
	}
	// Each node executes only its own blocks: committed counts differ,
	// and the sum of (committed + skipped) equals the full stream length
	// at every node.
	total0 := r.Core[0].Committed + r.Nodes[0].SkippedInstr.Value()
	total1 := r.Core[1].Committed + r.Nodes[1].SkippedInstr.Value()
	if total0 != total1 {
		t.Fatalf("stream accounting differs: %d vs %d", total0, total1)
	}
	if r.Core[0].Committed == total0 {
		t.Fatal("node 0 skipped nothing")
	}
}

func TestResultCommDisabledMarkersInert(t *testing.T) {
	// With ResultComm off, the markers pass through as 1-cycle NOPs and
	// every node commits every instruction.
	r, _ := runResultComm(t, 2, false)
	if r.Core[0].Committed != r.Core[1].Committed {
		t.Fatal("inert markers changed per-node commit counts")
	}
	for _, ns := range r.Nodes {
		if ns.SkippedInstr.Value() != 0 || ns.PrivateLoads.Value() != 0 {
			t.Fatal("private machinery active with ResultComm off")
		}
	}
}

func TestResultCommFourNodes(t *testing.T) {
	r, m := runResultComm(t, 4, true)
	want := uint64(8192 * 8193 / 2)
	for i := 0; i < 4; i++ {
		if got := m.NodeEmu(i).Reg(20); got != want {
			t.Fatalf("node %d total = %d", i, got)
		}
	}
	if !r.CorrespondenceOK {
		t.Fatal("correspondence violated")
	}
}
