package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/obs"
)

// TestCycleSkipBitIdentical is the machine-level contract of the
// next-event scheduler: skipping provably idle cycles must leave the run
// bit-identical to cycle-by-cycle polling — same final cycle count, same
// value in every counter, and (with a sampler attached) the same samples
// at the same cycles with the same contents. reflect.DeepEqual over the
// full Result plus the recorded trace covers all of it.
func TestCycleSkipBitIdentical(t *testing.T) {
	kernels := []struct{ name, src string }{
		{"streamSum", streamSum},
		{"pointerChase", pointerChase},
		{"storeHeavy", storeHeavy},
	}
	topologies := []bus.TopologyKind{bus.TopoBus, bus.TopoRing, bus.TopoMesh, bus.TopoTorus}
	for _, k := range kernels {
		for _, nodes := range []int{1, 2, 4} {
			for _, topo := range topologies {
				topo := topo
				t.Run(fmt.Sprintf("%s/%dnodes/%s", k.name, nodes, topo), func(t *testing.T) {
					run := func(noSkip bool) (Result, *obs.Trace) {
						trace := obs.NewTrace()
						m := buildMachine(t, k.src, nodes, func(c *Config) {
							c.Topology.Kind = topo
							c.NoCycleSkip = noSkip
							c.Observer = trace
							c.SampleInterval = 500
						})
						return mustRunMachine(t, m), trace
					}
					skipped, skippedTrace := run(false)
					polled, polledTrace := run(true)
					if !reflect.DeepEqual(skipped, polled) {
						t.Fatalf("cycle skipping changed the result:\nskip:   %+v\npolled: %+v",
							skipped, polled)
					}
					if !reflect.DeepEqual(skippedTrace, polledTrace) {
						t.Fatalf("cycle skipping changed the observation stream "+
							"(skip: %d events / %d samples, polled: %d events / %d samples)",
							skippedTrace.NumEvents(), skippedTrace.NumSamples(),
							polledTrace.NumEvents(), polledTrace.NumSamples())
					}
				})
			}
		}
	}
}

// TestCycleSkipPreservesDeadlockCycle: a wedged machine must report the
// watchdog deadlock at the identical cycle number whether or not the
// scheduler skips idle stretches.
func TestCycleSkipPreservesDeadlockCycle(t *testing.T) {
	// A single node joined by a second node whose page table entry it can
	// never satisfy would need protocol surgery to wedge; instead, wedge
	// the machine the honest way — a watchdog far shorter than the run.
	errFor := func(noSkip bool) error {
		m := buildMachine(t, pointerChase, 2, func(c *Config) {
			c.NoCycleSkip = noSkip
			c.WatchdogCycles = 1 // fires on the first idle stretch
		})
		_, err := m.Run()
		return err
	}
	skipErr, polledErr := errFor(false), errFor(true)
	if skipErr == nil || polledErr == nil {
		t.Fatalf("watchdog did not fire: skip=%v polled=%v", skipErr, polledErr)
	}
	if skipErr.Error() != polledErr.Error() {
		t.Fatalf("deadlock reports differ:\nskip:   %v\npolled: %v", skipErr, polledErr)
	}
}
