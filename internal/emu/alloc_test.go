package emu

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
)

// allocLoop mixes ALU work, loads, and stores over a few pages so the
// steady-state allocation measurement covers the fetch, execute, and
// memory fast paths together.
const allocLoop = `
        .data
buf:    .space 16384
        .text
        li   r5, 100000000    # effectively infinite for the test
outer:  la   r1, buf
        li   r2, 2048
loop:   sd   r2, 0(r1)
        ld   r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        addi r5, r5, -1
        bne  r5, zero, outer
        halt
`

// TestStepZeroAllocs: the per-instruction hot path — fetch, decode,
// execute, memory access — must not allocate in steady state. Warm the
// machine first so every page it touches exists.
func TestStepZeroAllocs(t *testing.T) {
	p, err := asm.Assemble("t", allocLoop)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := m.Run(20_000); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	if allocs := testing.AllocsPerRun(10_000, func() {
		if _, err := m.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}); allocs != 0 {
		t.Fatalf("emu.Step allocated %.2f times per instruction in steady state", allocs)
	}
}
