// Package emu implements the functional emulator: it executes programs
// architecturally and hands the resulting dynamic instruction stream to the
// timing models.
//
// This is the same functional/timing split SimpleScalar used (and the paper
// inherited): the emulator is the oracle for *what* executes — including
// every effective address — while the timing models (internal/ooo,
// internal/core, internal/traditional) decide *when* things happen and
// where data physically lives. Every DataScalar node runs its own emulator
// instance over the same program, which is exactly the paper's redundant
// SPSD execution.
package emu

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

// Dyn is one executed (committed-path) dynamic instruction. The timing
// models consume a stream of these. Because the paper assumes perfect
// branch prediction, the committed path is also the fetched path.
type Dyn struct {
	Seq    uint64 // dynamic instruction number, starting at 0
	PC     uint64
	Instr  isa.Instr
	EA     uint64 // effective address when Instr is a memory op (or PRIVB)
	NextPC uint64
	Taken  bool // conditional branch outcome
	// Private marks instructions inside a PRIVB/PRIVE result-communication
	// region (paper Section 5.1); the markers themselves are not Private.
	Private bool
}

// Machine is the architectural state of one emulated processor.
type Machine struct {
	prog *prog.Program
	// text mirrors prog.Text so the Step fetch path is one bounds check
	// and an indexed load, with no pointer chase through prog.
	text   []isa.Instr
	r      [isa.NumIntRegs]uint64
	f      [isa.NumFPRegs]float64
	pc     uint64
	mem    *Memory
	halted bool
	icount uint64
	// privDepth tracks open PRIVB/PRIVE result-communication regions.
	privDepth int
}

// New creates a machine with the program loaded: text mapped, data copied
// to DataBase, SP at the top of the stack, GP at DataBase.
func New(p *prog.Program) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		prog: p,
		text: p.Text,
		pc:   p.EntryPC(),
		mem:  NewMemory(),
	}
	m.mem.WriteBytes(prog.DataBase, p.Data)
	m.r[isa.RegSP] = prog.StackTop - 16
	m.r[isa.RegGP] = prog.DataBase
	return m, nil
}

// Clone returns an independent deep copy of the machine: registers,
// PC, counters, and a page-by-page copy of memory, with the immutable
// program and predecoded text shared. Machines that fast-forward
// through the same initialization (every node of a DataScalar machine
// does) clone one fast-forwarded master instead of re-running up to
// hundreds of millions of warmup instructions per node — the change
// that makes N=256 machines constructible in reasonable wall-clock.
func (m *Machine) Clone() *Machine {
	c := *m
	c.mem = m.mem.Clone()
	return &c
}

// Program returns the loaded program.
func (m *Machine) Program() *prog.Program { return m.prog }

// Mem returns the machine's functional memory, usable by workload setup
// code and result checks.
func (m *Machine) Mem() *Memory { return m.mem }

// PC returns the current program counter.
func (m *Machine) PC() uint64 { return m.pc }

// Halted reports whether the machine has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// InstrCount returns the number of instructions executed so far.
func (m *Machine) InstrCount() uint64 { return m.icount }

// Reg returns integer register n.
func (m *Machine) Reg(n uint8) uint64 { return m.r[n] }

// SetReg sets integer register n (writes to r0 are ignored).
func (m *Machine) SetReg(n uint8, v uint64) {
	if n != isa.RegZero {
		m.r[n] = v
	}
}

// FReg returns floating-point register n.
func (m *Machine) FReg(n uint8) float64 { return m.f[n] }

// SetFReg sets floating-point register n.
func (m *Machine) SetFReg(n uint8, v float64) { m.f[n] = v }

// Step executes one instruction and returns its dynamic record.
// Calling Step on a halted machine returns ErrHalted.
//
// Step is allocation-free in steady state (TestStepZeroAllocs);
// dsvet:hotpath keeps it that way statically.
//
//dsvet:hotpath
func (m *Machine) Step() (Dyn, error) {
	if m.halted {
		return Dyn{}, ErrHalted
	}
	// Fast fetch: text occupies [TextBase, TextBase+len*InstrBytes) and
	// TextBase is InstrBytes-aligned, so an in-range aligned PC maps to
	// index (pc-TextBase)/InstrBytes directly. Anything else falls back to
	// PCToIndex, which produces the exact diagnostic it always has.
	var in isa.Instr
	if off := m.pc - prog.TextBase; m.pc >= prog.TextBase &&
		m.pc%isa.InstrBytes == 0 && off/isa.InstrBytes < uint64(len(m.text)) {
		in = m.text[off/isa.InstrBytes]
	} else {
		idx, err := m.prog.PCToIndex(m.pc)
		if err != nil {
			//dsvet:ok hotpath-alloc fetch fault ends the run; allocates at most once
			return Dyn{}, fmt.Errorf("emu: fetch: %w", err)
		}
		in = m.prog.Text[idx]
	}
	d := Dyn{Seq: m.icount, PC: m.pc, Instr: in, NextPC: m.pc + isa.InstrBytes,
		Private: m.privDepth > 0 && in.Op != isa.OpPRIVE}

	if err := m.execute(in, &d); err != nil {
		//dsvet:ok hotpath-alloc execution fault ends the run; allocates at most once
		return Dyn{}, fmt.Errorf("emu: pc 0x%x (%s): %w", m.pc, in, err)
	}
	m.pc = d.NextPC
	m.icount++
	return d, nil
}

// ErrHalted is returned by Step once the program has executed HALT.
var ErrHalted = fmt.Errorf("emu: machine halted")

// Run executes until HALT or until maxInstr instructions have executed
// (0 means no limit). It returns the number of instructions executed.
func (m *Machine) Run(maxInstr uint64) (uint64, error) {
	start := m.icount
	for !m.halted {
		if maxInstr != 0 && m.icount-start >= maxInstr {
			break
		}
		if _, err := m.Step(); err != nil {
			return m.icount - start, err
		}
	}
	return m.icount - start, nil
}

// RunUntilPC executes until the machine is about to fetch pc (i.e. pc is
// the next instruction), until HALT, or until maxInstr instructions have
// run (0 = no limit). It returns the number of instructions executed and
// whether pc was reached. Timing harnesses use it to fast-forward past a
// kernel's initialization phase before attaching the timing model.
func (m *Machine) RunUntilPC(pc uint64, maxInstr uint64) (uint64, bool, error) {
	start := m.icount
	for !m.halted && m.pc != pc {
		if maxInstr != 0 && m.icount-start >= maxInstr {
			return m.icount - start, false, nil
		}
		if _, err := m.Step(); err != nil {
			return m.icount - start, false, err
		}
	}
	return m.icount - start, m.pc == pc, nil
}

func (m *Machine) execute(in isa.Instr, d *Dyn) error {
	r := &m.r
	f := &m.f
	switch in.Op {
	// Integer register-register.
	case isa.OpADD:
		m.SetReg(in.Rd, r[in.Rs1]+r[in.Rs2])
	case isa.OpSUB:
		m.SetReg(in.Rd, r[in.Rs1]-r[in.Rs2])
	case isa.OpMUL:
		m.SetReg(in.Rd, r[in.Rs1]*r[in.Rs2])
	case isa.OpDIV:
		if r[in.Rs2] == 0 {
			// RISC-V semantics: no trap, quotient is all ones.
			m.SetReg(in.Rd, ^uint64(0))
		} else {
			m.SetReg(in.Rd, uint64(int64(r[in.Rs1])/int64(r[in.Rs2])))
		}
	case isa.OpREM:
		if r[in.Rs2] == 0 {
			m.SetReg(in.Rd, r[in.Rs1])
		} else {
			m.SetReg(in.Rd, uint64(int64(r[in.Rs1])%int64(r[in.Rs2])))
		}
	case isa.OpAND:
		m.SetReg(in.Rd, r[in.Rs1]&r[in.Rs2])
	case isa.OpOR:
		m.SetReg(in.Rd, r[in.Rs1]|r[in.Rs2])
	case isa.OpXOR:
		m.SetReg(in.Rd, r[in.Rs1]^r[in.Rs2])
	case isa.OpNOR:
		m.SetReg(in.Rd, ^(r[in.Rs1] | r[in.Rs2]))
	case isa.OpSLL:
		m.SetReg(in.Rd, r[in.Rs1]<<(r[in.Rs2]&63))
	case isa.OpSRL:
		m.SetReg(in.Rd, r[in.Rs1]>>(r[in.Rs2]&63))
	case isa.OpSRA:
		m.SetReg(in.Rd, uint64(int64(r[in.Rs1])>>(r[in.Rs2]&63)))
	case isa.OpSLT:
		m.SetReg(in.Rd, boolTo64(int64(r[in.Rs1]) < int64(r[in.Rs2])))
	case isa.OpSLTU:
		m.SetReg(in.Rd, boolTo64(r[in.Rs1] < r[in.Rs2]))

	// Integer register-immediate.
	case isa.OpADDI:
		m.SetReg(in.Rd, r[in.Rs1]+uint64(in.Imm))
	case isa.OpANDI:
		m.SetReg(in.Rd, r[in.Rs1]&uint64(in.Imm))
	case isa.OpORI:
		m.SetReg(in.Rd, r[in.Rs1]|uint64(in.Imm))
	case isa.OpXORI:
		m.SetReg(in.Rd, r[in.Rs1]^uint64(in.Imm))
	case isa.OpSLLI:
		m.SetReg(in.Rd, r[in.Rs1]<<(uint64(in.Imm)&63))
	case isa.OpSRLI:
		m.SetReg(in.Rd, r[in.Rs1]>>(uint64(in.Imm)&63))
	case isa.OpSRAI:
		m.SetReg(in.Rd, uint64(int64(r[in.Rs1])>>(uint64(in.Imm)&63)))
	case isa.OpSLTI:
		m.SetReg(in.Rd, boolTo64(int64(r[in.Rs1]) < in.Imm))
	case isa.OpLI:
		m.SetReg(in.Rd, uint64(in.Imm))

	// Memory.
	case isa.OpLB, isa.OpLBU, isa.OpLW, isa.OpLWU, isa.OpLD, isa.OpFLD:
		ea := r[in.Rs1] + uint64(in.Imm)
		d.EA = ea
		if err := checkAlign(ea, in.Op.MemBytes()); err != nil {
			return err
		}
		switch in.Op {
		case isa.OpLB:
			m.SetReg(in.Rd, uint64(int64(int8(m.mem.Read8(ea)))))
		case isa.OpLBU:
			m.SetReg(in.Rd, uint64(m.mem.Read8(ea)))
		case isa.OpLW:
			m.SetReg(in.Rd, uint64(int64(int32(m.mem.Read32(ea)))))
		case isa.OpLWU:
			m.SetReg(in.Rd, uint64(m.mem.Read32(ea)))
		case isa.OpLD:
			m.SetReg(in.Rd, m.mem.Read64(ea))
		case isa.OpFLD:
			f[in.Rd] = math.Float64frombits(m.mem.Read64(ea))
		}
	case isa.OpSB, isa.OpSW, isa.OpSD, isa.OpFSD:
		ea := r[in.Rs1] + uint64(in.Imm)
		d.EA = ea
		if err := checkAlign(ea, in.Op.MemBytes()); err != nil {
			return err
		}
		switch in.Op {
		case isa.OpSB:
			m.mem.Write8(ea, byte(r[in.Rs2]))
		case isa.OpSW:
			m.mem.Write32(ea, uint32(r[in.Rs2]))
		case isa.OpSD:
			m.mem.Write64(ea, r[in.Rs2])
		case isa.OpFSD:
			m.mem.Write64(ea, math.Float64bits(f[in.Rs2]))
		}

	// Floating point.
	case isa.OpFADD:
		f[in.Rd] = f[in.Rs1] + f[in.Rs2]
	case isa.OpFSUB:
		f[in.Rd] = f[in.Rs1] - f[in.Rs2]
	case isa.OpFMUL:
		f[in.Rd] = f[in.Rs1] * f[in.Rs2]
	case isa.OpFDIV:
		f[in.Rd] = f[in.Rs1] / f[in.Rs2]
	case isa.OpFNEG:
		f[in.Rd] = -f[in.Rs1]
	case isa.OpFABS:
		f[in.Rd] = math.Abs(f[in.Rs1])
	case isa.OpFSQRT:
		f[in.Rd] = math.Sqrt(f[in.Rs1])
	case isa.OpFMOV:
		f[in.Rd] = f[in.Rs1]
	case isa.OpFCVTDW:
		f[in.Rd] = float64(int64(r[in.Rs1]))
	case isa.OpFCVTWD:
		m.SetReg(in.Rd, uint64(int64(f[in.Rs1])))
	case isa.OpFEQ:
		m.SetReg(in.Rd, boolTo64(f[in.Rs1] == f[in.Rs2]))
	case isa.OpFLT:
		m.SetReg(in.Rd, boolTo64(f[in.Rs1] < f[in.Rs2]))
	case isa.OpFLE:
		m.SetReg(in.Rd, boolTo64(f[in.Rs1] <= f[in.Rs2]))

	// Control.
	case isa.OpBEQ:
		d.Taken = r[in.Rs1] == r[in.Rs2]
	case isa.OpBNE:
		d.Taken = r[in.Rs1] != r[in.Rs2]
	case isa.OpBLT:
		d.Taken = int64(r[in.Rs1]) < int64(r[in.Rs2])
	case isa.OpBGE:
		d.Taken = int64(r[in.Rs1]) >= int64(r[in.Rs2])
	case isa.OpBLTU:
		d.Taken = r[in.Rs1] < r[in.Rs2]
	case isa.OpBGEU:
		d.Taken = r[in.Rs1] >= r[in.Rs2]
	case isa.OpJ:
		d.NextPC = in.Target
	case isa.OpJAL:
		m.SetReg(isa.RegRA, d.PC+isa.InstrBytes)
		d.NextPC = in.Target
	case isa.OpJR:
		d.NextPC = r[in.Rs1]
	case isa.OpJALR:
		next := r[in.Rs1] // read before writing Rd: they may alias
		m.SetReg(in.Rd, d.PC+isa.InstrBytes)
		d.NextPC = next

	case isa.OpNOP:
	case isa.OpHALT:
		if m.privDepth != 0 {
			return fmt.Errorf("halt inside an open privb region")
		}
		m.halted = true

	case isa.OpPRIVB:
		d.EA = r[in.Rs1] + uint64(in.Imm)
		m.privDepth++
	case isa.OpPRIVE:
		if m.privDepth == 0 {
			return fmt.Errorf("prive without matching privb")
		}
		m.privDepth--

	default:
		return fmt.Errorf("unimplemented op %s", in.Op)
	}

	if in.Op.IsBranch() && d.Taken {
		d.NextPC = in.Target
	}
	return nil
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func checkAlign(ea uint64, size int) error {
	if size > 1 && ea%uint64(size) != 0 {
		return fmt.Errorf("misaligned %d-byte access at 0x%x", size, ea)
	}
	return nil
}

// Memory is a sparse, page-granular byte-addressable store. Reads of
// untouched memory return zero.
type Memory struct {
	pages map[uint64][]byte
	// lastPg/lastPage cache the most recently touched page: guest access
	// streams have strong page locality, and the cache turns the common
	// case into a compare instead of a map lookup.
	lastPg   uint64
	lastPage []byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]byte)}
}

// Clone returns an independent deep copy: every touched page is copied,
// so writes through either memory never alias the other.
func (mem *Memory) Clone() *Memory {
	c := &Memory{pages: make(map[uint64][]byte, len(mem.pages))}
	for pg, p := range mem.pages {
		np := make([]byte, len(p))
		copy(np, p)
		c.pages[pg] = np
	}
	return c
}

func (mem *Memory) page(pg uint64, create bool) []byte {
	if pg == mem.lastPg && mem.lastPage != nil {
		return mem.lastPage
	}
	p, ok := mem.pages[pg]
	if !ok && create {
		p = make([]byte, prog.PageSize)
		mem.pages[pg] = p
	}
	if p != nil {
		mem.lastPg, mem.lastPage = pg, p
	}
	return p
}

// Read8 reads one byte.
func (mem *Memory) Read8(addr uint64) byte {
	p := mem.page(prog.PageOf(addr), false)
	if p == nil {
		return 0
	}
	return p[addr%prog.PageSize]
}

// Write8 writes one byte.
func (mem *Memory) Write8(addr uint64, v byte) {
	mem.page(prog.PageOf(addr), true)[addr%prog.PageSize] = v
}

// Read32 reads a little-endian 32-bit value. The address must not straddle
// a page boundary unless 4-byte aligned (callers enforce alignment).
func (mem *Memory) Read32(addr uint64) uint32 {
	off := addr % prog.PageSize
	if off+4 <= prog.PageSize {
		p := mem.page(prog.PageOf(addr), false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off:])
	}
	var b [4]byte
	mem.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Write32 writes a little-endian 32-bit value.
func (mem *Memory) Write32(addr uint64, v uint32) {
	off := addr % prog.PageSize
	if off+4 <= prog.PageSize {
		binary.LittleEndian.PutUint32(mem.page(prog.PageOf(addr), true)[off:], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	mem.WriteBytes(addr, b[:])
}

// Read64 reads a little-endian 64-bit value.
func (mem *Memory) Read64(addr uint64) uint64 {
	off := addr % prog.PageSize
	if off+8 <= prog.PageSize {
		p := mem.page(prog.PageOf(addr), false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var b [8]byte
	mem.ReadBytes(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Write64 writes a little-endian 64-bit value.
func (mem *Memory) Write64(addr uint64, v uint64) {
	off := addr % prog.PageSize
	if off+8 <= prog.PageSize {
		binary.LittleEndian.PutUint64(mem.page(prog.PageOf(addr), true)[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	mem.WriteBytes(addr, b[:])
}

// ReadBytes fills dst from memory starting at addr.
func (mem *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr % prog.PageSize
		n := prog.PageSize - off
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		p := mem.page(prog.PageOf(addr), false)
		if p == nil {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:off+n])
		}
		dst = dst[n:]
		addr += n
	}
}

// WriteBytes copies src into memory starting at addr.
func (mem *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr % prog.PageSize
		n := prog.PageSize - off
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		copy(mem.page(prog.PageOf(addr), true)[off:], src[:n])
		src = src[n:]
		addr += n
	}
}

// ReadFloat64 reads an IEEE 754 double.
func (mem *Memory) ReadFloat64(addr uint64) float64 {
	return math.Float64frombits(mem.Read64(addr))
}

// WriteFloat64 writes an IEEE 754 double.
func (mem *Memory) WriteFloat64(addr uint64, v float64) {
	mem.Write64(addr, math.Float64bits(v))
}

// PageCount returns the number of touched pages (for tests).
func (mem *Memory) PageCount() int { return len(mem.pages) }
