package emu

import (
	"testing"
	"testing/quick"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
)

func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !m.Halted() {
		t.Fatal("program did not halt within 1M instructions")
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
        .text
        li   r1, 6
        li   r2, 7
        mul  r3, r1, r2        # 42
        add  r4, r3, r1        # 48
        sub  r5, r4, r2        # 41
        div  r6, r4, r2        # 6
        rem  r7, r4, r2        # 6
        li   r8, -16
        srai r9, r8, 2         # -4
        srli r10, r8, 60       # 15
        slt  r11, r8, r1       # 1
        sltu r12, r8, r1       # 0 (big unsigned)
        nor  r13, r0, r0       # all ones
        halt
`)
	want := map[uint8]uint64{
		3: 42, 4: 48, 5: 41, 6: 6, 7: 6,
		9:  ^uint64(0) - 3, // -4 as two's complement
		10: 15, 11: 1, 12: 0,
		13: ^uint64(0),
	}
	for reg, v := range want {
		if got := m.Reg(reg); got != v {
			t.Errorf("r%d = %d, want %d", reg, int64(got), int64(v))
		}
	}
}

func TestDivByZeroSemantics(t *testing.T) {
	m := run(t, `
        .text
        li   r1, 100
        li   r2, 0
        div  r3, r1, r2
        rem  r4, r1, r2
        halt
`)
	if m.Reg(3) != ^uint64(0) {
		t.Errorf("div/0 = %x, want all-ones", m.Reg(3))
	}
	if m.Reg(4) != 100 {
		t.Errorf("rem/0 = %d, want dividend", m.Reg(4))
	}
}

func TestR0Hardwired(t *testing.T) {
	m := run(t, `
        .text
        li   r0, 99
        addi r0, r0, 5
        add  r1, r0, r0
        halt
`)
	if m.Reg(0) != 0 || m.Reg(1) != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", m.Reg(0), m.Reg(1))
	}
}

func TestLoadsStores(t *testing.T) {
	m := run(t, `
        .data
buf:    .space 64
vals:   .word 0x1122334455667788
        .text
        la   r1, buf
        li   r2, -1
        sd   r2, 0(r1)
        ld   r3, 0(r1)         # -1
        lw   r4, 0(r1)         # -1 (sign extended)
        lwu  r5, 0(r1)         # 0xffffffff
        lb   r6, 0(r1)         # -1
        lbu  r7, 0(r1)         # 255
        li   r8, 0x12345678
        sw   r8, 8(r1)
        lwu  r9, 8(r1)
        li   r10, 0xab
        sb   r10, 16(r1)
        lbu  r11, 16(r1)
        la   r12, vals
        ld   r13, 0(r12)
        halt
`)
	checks := map[uint8]uint64{
		3:  ^uint64(0),
		4:  ^uint64(0),
		5:  0xffffffff,
		6:  ^uint64(0),
		7:  255,
		9:  0x12345678,
		11: 0xab,
		13: 0x1122334455667788,
	}
	for reg, want := range checks {
		if got := m.Reg(reg); got != want {
			t.Errorf("r%d = 0x%x, want 0x%x", reg, got, want)
		}
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
        .data
a:      .double 2.0
b:      .double 3.0
out:    .space 8
        .text
        la    r1, a
        la    r2, b
        fld   f1, 0(r1)
        fld   f2, 0(r2)
        fadd  f3, f1, f2       # 5
        fmul  f4, f3, f2       # 15
        fsub  f5, f4, f1       # 13
        fdiv  f6, f4, f2       # 5
        fsqrt f7, f1           # sqrt(2)
        fneg  f8, f7
        fabs  f9, f8
        feq   r3, f7, f9       # 1
        flt   r4, f8, f7       # 1
        fle   r5, f3, f6       # 1
        li    r6, 4
        fcvtdw f10, r6         # 4.0
        fcvtwd r7, f4          # 15
        la    r8, out
        fsd   f5, 0(r8)
        fld   f11, 0(r8)
        halt
`)
	if got := m.FReg(3); got != 5 {
		t.Errorf("f3 = %v, want 5", got)
	}
	if got := m.FReg(4); got != 15 {
		t.Errorf("f4 = %v, want 15", got)
	}
	if got := m.FReg(11); got != 13 {
		t.Errorf("f11 (via memory) = %v, want 13", got)
	}
	if m.Reg(3) != 1 || m.Reg(4) != 1 || m.Reg(5) != 1 {
		t.Errorf("fp compares = %d,%d,%d, want 1,1,1", m.Reg(3), m.Reg(4), m.Reg(5))
	}
	if m.Reg(7) != 15 {
		t.Errorf("fcvtwd = %d, want 15", m.Reg(7))
	}
	if m.FReg(10) != 4 {
		t.Errorf("fcvtdw = %v, want 4", m.FReg(10))
	}
}

func TestLoopAndBranches(t *testing.T) {
	// sum 1..10 = 55
	m := run(t, `
        .text
        li   r1, 10
        li   r2, 0
loop:   add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, zero, loop
        halt
`)
	if m.Reg(2) != 55 {
		t.Errorf("sum = %d, want 55", m.Reg(2))
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
        .text
        li   r1, 5
        jal  double
        jal  double
        halt
double: add  r1, r1, r1
        jr   ra
`)
	if m.Reg(1) != 20 {
		t.Errorf("r1 = %d, want 20", m.Reg(1))
	}
}

func TestJALR(t *testing.T) {
	m := run(t, `
        .text
        la   r2, fn
        jalr r3, r2
        halt
fn:     li   r4, 77
        jr   r3
`)
	if m.Reg(4) != 77 {
		t.Errorf("r4 = %d, want 77", m.Reg(4))
	}
}

func TestDynRecords(t *testing.T) {
	p, err := asm.Assemble("t", `
        .data
x:      .word 42
        .text
        la   r1, x
        ld   r2, 0(r1)
        sd   r2, 8(r1)
        beq  r2, r2, done
        nop
done:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var dyns []Dyn
	for !m.Halted() {
		d, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		dyns = append(dyns, d)
	}
	if len(dyns) != 5 {
		t.Fatalf("executed %d instrs, want 5 (branch skips nop)", len(dyns))
	}
	ld := dyns[1]
	if ld.EA != p.Labels["x"] {
		t.Errorf("ld EA = 0x%x, want 0x%x", ld.EA, p.Labels["x"])
	}
	sd := dyns[2]
	if sd.EA != p.Labels["x"]+8 {
		t.Errorf("sd EA = 0x%x", sd.EA)
	}
	br := dyns[3]
	if !br.Taken || br.NextPC != p.Labels["done"] {
		t.Errorf("branch taken=%v next=0x%x", br.Taken, br.NextPC)
	}
	for i, d := range dyns {
		if d.Seq != uint64(i) {
			t.Errorf("dyn %d has seq %d", i, d.Seq)
		}
	}
}

func TestHaltBehaviour(t *testing.T) {
	m := run(t, "\t.text\n\thalt")
	if _, err := m.Step(); err != ErrHalted {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
	if n, err := m.Run(10); n != 0 || err != nil {
		t.Errorf("Run after halt = %d, %v", n, err)
	}
}

func TestMisalignedAccessError(t *testing.T) {
	p, err := asm.Assemble("t", `
        .text
        li   r1, 0x20000001
        ld   r2, 0(r1)
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	p.HeapBytes = prog.PageSize
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Fatal("misaligned load accepted")
	}
}

func TestFetchOutsideText(t *testing.T) {
	p, err := asm.Assemble("t", "\t.text\n\tnop\n\tnop") // no halt: falls off the end
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Fatal("fetch past text accepted")
	}
}

func TestStackAndGlobals(t *testing.T) {
	m := run(t, `
        .text
        addi sp, sp, -16
        li   r1, 42
        sd   r1, 0(sp)
        ld   r2, 0(sp)
        addi sp, sp, 16
        halt
`)
	if m.Reg(2) != 42 {
		t.Errorf("stack round trip = %d", m.Reg(2))
	}
	if m.Reg(isa.RegGP) != prog.DataBase {
		t.Errorf("gp = 0x%x", m.Reg(isa.RegGP))
	}
}

func TestMemoryPrimitives(t *testing.T) {
	mem := NewMemory()
	if mem.Read8(1234) != 0 || mem.Read64(8000) != 0 {
		t.Error("untouched memory not zero")
	}
	mem.Write64(prog.PageSize-8, 0xdeadbeefcafef00d)
	if mem.Read64(prog.PageSize-8) != 0xdeadbeefcafef00d {
		t.Error("page-edge 64-bit round trip failed")
	}
	mem.WriteFloat64(64, 3.25)
	if mem.ReadFloat64(64) != 3.25 {
		t.Error("float round trip failed")
	}
	buf := make([]byte, 3*prog.PageSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	mem.WriteBytes(prog.PageSize/2, buf)
	got := make([]byte, len(buf))
	mem.ReadBytes(prog.PageSize/2, got)
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("cross-page byte %d = %d, want %d", i, got[i], buf[i])
		}
	}
	if mem.PageCount() == 0 {
		t.Error("no pages allocated")
	}
}

// Property: a store followed by a same-size load round-trips for all
// aligned addresses and values.
func TestMemoryRoundTripQuick(t *testing.T) {
	mem := NewMemory()
	f := func(addr uint64, v uint64) bool {
		addr = (addr % (1 << 30)) &^ 7
		mem.Write64(addr, v)
		if mem.Read64(addr) != v {
			return false
		}
		mem.Write32(addr, uint32(v))
		return mem.Read32(addr) == uint32(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: two fresh machines running the same program produce identical
// dynamic streams — the foundation of DataScalar's redundant execution.
func TestRedundantExecutionIdentical(t *testing.T) {
	src := `
        .data
arr:    .space 256
        .text
        la   r1, arr
        li   r2, 32
        li   r3, 1
fill:   sd   r3, 0(r1)
        addi r1, r1, 8
        mul  r3, r3, r3
        addi r3, r3, 1
        addi r2, r2, -1
        bne  r2, zero, fill
        halt
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := New(p)
	m2, _ := New(p)
	for !m1.Halted() {
		d1, err1 := m1.Step()
		d2, err2 := m2.Step()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d1 != d2 {
			t.Fatalf("streams diverged at seq %d: %+v vs %+v", d1.Seq, d1, d2)
		}
	}
	if !m2.Halted() {
		t.Fatal("machines disagree on halt")
	}
}

func TestPrivateRegions(t *testing.T) {
	p, err := asm.Assemble("t", `
        .data
x:      .word 5
        .text
        la   r1, x
        privb 0(r1)
        ld   r2, 0(r1)
        addi r2, r2, 1
        sd   r2, 0(r1)
        prive
        ld   r3, 0(r1)
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var dyns []Dyn
	for !m.Halted() {
		d, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		dyns = append(dyns, d)
	}
	// la, privb, ld, addi, sd, prive, ld, halt
	wantPrivate := []bool{false, false, true, true, true, false, false, false}
	if len(dyns) != len(wantPrivate) {
		t.Fatalf("executed %d instructions", len(dyns))
	}
	for i, w := range wantPrivate {
		if dyns[i].Private != w {
			t.Errorf("instr %d (%s): Private = %v, want %v", i, dyns[i].Instr, dyns[i].Private, w)
		}
	}
	if dyns[1].EA != p.Labels["x"] {
		t.Errorf("privb EA = 0x%x", dyns[1].EA)
	}
	if m.Reg(3) != 6 {
		t.Errorf("functional result = %d, want 6", m.Reg(3))
	}
}

func TestUnbalancedRegionsError(t *testing.T) {
	// prive without privb
	p, err := asm.Assemble("t", "\t.text\n\tprive\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(p)
	if _, err := m.Run(0); err == nil {
		t.Fatal("unmatched prive accepted")
	}
	// halt inside an open region
	p, err = asm.Assemble("t", "\t.text\n\tprivb 0(r1)\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	m, _ = New(p)
	if _, err := m.Run(0); err == nil {
		t.Fatal("halt inside open region accepted")
	}
}

func TestShiftAndLogicRegisterVariants(t *testing.T) {
	m := run(t, `
        .text
        li   r1, 1
        li   r2, 5
        sll  r3, r1, r2        # 32
        li   r4, -64
        srl  r5, r4, r2        # logical shift of two's complement
        sra  r6, r4, r2        # -2
        and  r7, r4, r2        # 0: low six bits of -64 are clear
        or   r8, r1, r2        # 5
        xor  r9, r8, r2        # 0... 5^5 = 0
        slli r10, r2, 60       # shift masking check below
        sll  r11, r2, r10      # shift amount masked to 6 bits
        halt
`)
	if m.Reg(3) != 32 {
		t.Errorf("sll = %d", m.Reg(3))
	}
	if m.Reg(6) != ^uint64(0)-1 {
		t.Errorf("sra = %x", m.Reg(6))
	}
	if m.Reg(5) != (^uint64(0)-63)>>5 {
		t.Errorf("srl = %x", m.Reg(5))
	}
	if m.Reg(7) != 0 || m.Reg(8) != 5 || m.Reg(9) != 0 {
		t.Errorf("logic = %d %d %d", m.Reg(7), m.Reg(8), m.Reg(9))
	}
}

func TestAllBranchVariants(t *testing.T) {
	m := run(t, `
        .text
        li   r1, -1
        li   r2, 1
        li   r9, 0
        blt  r1, r2, a         # signed: taken
        halt
a:      addi r9, r9, 1
        bge  r2, r1, b         # signed: taken
        halt
b:      addi r9, r9, 1
        bltu r2, r1, c         # unsigned: -1 is huge, taken
        halt
c:      addi r9, r9, 1
        bgeu r1, r2, d         # unsigned: taken
        halt
d:      addi r9, r9, 1
        beq  r9, r9, e
        halt
e:      addi r9, r9, 1
        bne  r9, zero, f
        halt
f:      addi r9, r9, 1
        j    done
        halt
done:   halt
`)
	if m.Reg(9) != 6 {
		t.Errorf("branch path count = %d, want 6", m.Reg(9))
	}
}

func TestImmediateLogicOps(t *testing.T) {
	m := run(t, `
        .text
        li   r1, 0xf0
        andi r2, r1, 0x3c      # 0x30
        ori  r3, r1, 0x0f      # 0xff
        xori r4, r1, 0xff      # 0x0f
        slti r5, r1, 0x100     # 1
        slti r6, r1, 0x10      # 0
        halt
`)
	want := map[uint8]uint64{2: 0x30, 3: 0xff, 4: 0x0f, 5: 1, 6: 0}
	for reg, v := range want {
		if m.Reg(reg) != v {
			t.Errorf("r%d = 0x%x, want 0x%x", reg, m.Reg(reg), v)
		}
	}
}

// TestMachineClone: a clone is bit-identical at the point of cloning
// and fully independent afterwards — the property NewMachine relies on
// when it fast-forwards one master and clones it per node.
func TestMachineClone(t *testing.T) {
	p, err := asm.Assemble("t", `
        .text
        li   r1, 0
        li   r2, 10
loop:   add  r1, r1, r2
        addi r2, r2, -1
        bne  r2, r0, loop
        sd   r1, 0(r0)
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(3); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if c.PC() != m.PC() || c.InstrCount() != m.InstrCount() {
		t.Fatalf("clone diverges at birth: pc %#x/%#x icount %d/%d",
			c.PC(), m.PC(), c.InstrCount(), m.InstrCount())
	}
	// Lockstep: both run to halt with identical streams.
	for !m.Halted() {
		dm, errM := m.Step()
		dc, errC := c.Step()
		if errM != nil || errC != nil {
			t.Fatalf("step errors: %v / %v", errM, errC)
		}
		if dm != dc {
			t.Fatalf("clone diverged: %+v vs %+v", dm, dc)
		}
	}
	if !c.Halted() {
		t.Fatal("clone did not halt with the original")
	}
	// Independence: writes through one memory must not leak to the other.
	m2, _ := New(p)
	c2 := m2.Clone()
	m2.Mem().WriteBytes(0x20000, []byte{0xAA})
	var got [1]byte
	c2.Mem().ReadBytes(0x20000, got[:])
	if got[0] != 0 {
		t.Fatal("clone shares pages with its original")
	}
}
