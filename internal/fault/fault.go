// Package fault is the deterministic fault-injection and resilience
// layer of the DataScalar machine. DataScalar's defining property —
// every node redundantly executes the whole program — is the classic
// substrate for fault tolerance, and this package supplies the three
// pieces the machine needs to exploit it:
//
//   - Injection: a seeded Plan decides, as a pure function of stable
//     message identity (never of wall-clock or iteration order), which
//     broadcasts are dropped, delayed, or bit-flipped at which receivers,
//     and when a node dies permanently. Two runs with the same seed make
//     identical decisions regardless of worker count, so fault campaigns
//     are bit-reproducible serial or parallel.
//   - Detection: Config carries the retry/backoff parameters of the BSHR
//     timeout → re-request path and the commit-fingerprint exchange
//     interval; Stats accumulates what detection observed.
//   - Reporting: Report is the structured, typed error a machine halts
//     with when it detects a fault it cannot (or is configured not to)
//     recover from — never a silent wrong answer, never an unexplained
//     watchdog.
//
// The determinism contract (docs/ROBUSTNESS.md): every decision is
// derived by mixing the seed with a fault-class constant and the
// message's stable identity (source, destination, line address, per-node
// broadcast sequence number). Nothing depends on delivery cycles, map
// iteration order, or scheduling, so the same faults hit the same
// messages in every run of the same configuration.
package fault

import (
	"errors"
	"fmt"
	"sort"
)

// Class enumerates the injected fault classes. The set is closed: dsvet
// requires every switch over Class to cover all classes or panic in its
// default.
//
//dsvet:enum
type Class uint8

const (
	// ClassNone marks the absence of a fault (zero value).
	ClassNone Class = iota
	// ClassDrop is a transient broadcast-delivery loss at one receiver.
	ClassDrop
	// ClassDelay is a bounded extra delivery delay on one message.
	ClassDelay
	// ClassFlip is a payload bit-flip observed by one receiver.
	ClassFlip
	// ClassDeath is a permanent node failure at a configured cycle.
	ClassDeath
	// ClassDivergence is a detected cross-node commit-fingerprint
	// mismatch (the detection-side view of ClassFlip, or of a genuine
	// redundant-execution divergence bug).
	ClassDivergence
	// ClassLost marks a line whose retries exhausted against a live
	// owner — delivery could not be repaired within the retry budget.
	ClassLost
	// ClassQuorumLoss marks a death schedule that drove the machine
	// below its configured minimum quorum of live nodes: graceful
	// degradation ran out of nodes to degrade onto.
	ClassQuorumLoss
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassDrop:
		return "drop"
	case ClassDelay:
		return "delay"
	case ClassFlip:
		return "flip"
	case ClassDeath:
		return "death"
	case ClassDivergence:
		return "divergence"
	case ClassLost:
		return "lost"
	case ClassQuorumLoss:
		return "quorum-loss"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// MarshalJSON renders the class by name.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// Death is one entry in an ordered multi-death schedule: node Node
// fails permanently at cycle Cycle. A schedule of several deaths models
// the cascade regime a large machine actually operates in — each death
// remaps and re-replicates the victim's pages so the next death is
// again survivable.
type Death struct {
	Node  int    `json:"node"`
	Cycle uint64 `json:"cycle"`
}

// Config parameterizes the fault layer of one machine. The zero value
// injects nothing and enables nothing: a machine treats a zero Config
// exactly like a nil one (Enabled reports false), which is what makes
// the rate-0 differential suite meaningful.
type Config struct {
	// Seed keys every injection decision. The same seed reproduces the
	// same faults bit-for-bit, serial or parallel.
	Seed uint64

	// DropRate is the probability, per broadcast delivery at each
	// receiving node, that the delivery is silently lost.
	DropRate float64
	// DelayRate is the probability, per broadcast send, that the message
	// is held back an extra 1..DelayMaxCycles cycles before it may
	// arbitrate for the interconnect.
	DelayRate float64
	// DelayMaxCycles bounds the injected extra delay (default 200).
	DelayMaxCycles uint64
	// FlipRate is the probability, per broadcast delivery at each
	// receiving node, that the receiver observes a corrupted payload.
	// The timing model carries no payload data (every node's emulator
	// computes all values itself), so a flip perturbs the victim's
	// commit-fingerprint stream instead — detected, when the fingerprint
	// exchange is enabled, as cross-node divergence.
	FlipRate float64

	// DeadNode, when DeathCycle is non-zero, is the node that fails
	// permanently at DeathCycle: its core freezes, its unsent messages
	// are purged from the interconnect, and it neither sends nor
	// receives anything afterwards.
	DeadNode int
	// DeathCycle is the cycle of the permanent failure (0 = no death).
	DeathCycle uint64
	// Deaths is an ordered multi-death schedule; entries may appear in
	// any order and are executed sorted by (Cycle, Node). It composes
	// with the legacy DeadNode/DeathCycle pair (which acts as one more
	// schedule entry) and with DeathRate-derived random deaths.
	Deaths []Death
	// DeathRate is the per-node probability of a seeded random death;
	// for each node not already in the explicit schedule, the plan mixes
	// the seed with the node's identity to decide whether it dies and,
	// if so, at a deterministic cycle in [1, DeathWindowCycles].
	DeathRate float64
	// DeathWindowCycles bounds where DeathRate-derived deaths land
	// (default 200 000).
	DeathWindowCycles uint64
	// MinQuorum is the minimum number of live nodes the machine may
	// degrade down to (effective minimum 1). A death that drops the live
	// count below MinQuorum halts the run with a ClassQuorumLoss Report
	// instead of continuing degraded.
	MinQuorum int
	// WarmFillMaxPages bounds the re-replication warm-fill per death:
	// after remapping a dead owner's pages onto successors, the new
	// owners push up to this many freshly inherited pages to standby
	// replicas over the broadcast network, so a subsequent death of the
	// successor finds warm copies (default 64).
	WarmFillMaxPages int
	// Recover selects the response to a detected owner death: true
	// remaps the dead node's owned pages onto a surviving successor (a
	// configurable backing copy is assumed, as every node's local memory
	// model can serve any line) and continues degraded; false halts with
	// a structured Report.
	Recover bool

	// RetryTimeoutCycles is how long a BSHR entry waits for its
	// broadcast before the node sends a directed re-request to the
	// line's owner (default 20 000 — far beyond any fault-free wait, so
	// detection never perturbs a healthy run).
	RetryTimeoutCycles uint64
	// RetryBackoffCapCycles caps the exponential backoff between
	// retries of the same line (default 8× RetryTimeoutCycles).
	RetryBackoffCapCycles uint64
	// MaxRetries bounds re-requests per line before the machine
	// escalates: a dead owner triggers recovery or a death Report, a
	// live one a lost-line Report (default 8).
	MaxRetries int

	// FingerprintInterval, when non-zero, makes every node broadcast a
	// fingerprint of its committed memory-operation stream every that
	// many commits; receivers cross-check it against their own stream,
	// turning redundant execution into N-modular divergence detection.
	FingerprintInterval uint64
}

// Enabled reports whether the configuration injects or detects
// anything. A disabled configuration is treated exactly like a nil one:
// the machine builds no fault state and touches no fault hook.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.DelayRate > 0 || c.FlipRate > 0 ||
		c.DeathCycle != 0 || len(c.Deaths) > 0 || c.DeathRate > 0 ||
		c.FingerprintInterval != 0
}

// IsZero reports whether the configuration is the zero value. Deaths
// makes Config non-comparable, so callers that used to compare against
// Config{} (the engine's job-inheritance path) use this instead.
func (c Config) IsZero() bool {
	return c.Seed == 0 && c.DropRate == 0 && c.DelayRate == 0 &&
		c.DelayMaxCycles == 0 && c.FlipRate == 0 &&
		c.DeadNode == 0 && c.DeathCycle == 0 && c.Deaths == nil &&
		c.DeathRate == 0 && c.DeathWindowCycles == 0 &&
		c.MinQuorum == 0 && c.WarmFillMaxPages == 0 && !c.Recover &&
		c.RetryTimeoutCycles == 0 && c.RetryBackoffCapCycles == 0 &&
		c.MaxRetries == 0 && c.FingerprintInterval == 0
}

// Validate checks structural soundness. Every defect is reported as its
// own line-item error (errors.Join), so a contradictory schedule names
// all of its contradictions at once.
func (c Config) Validate() error {
	var errs []error
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", c.DropRate}, {"delay", c.DelayRate}, {"flip", c.FlipRate}, {"death", c.DeathRate}} {
		if r.v < 0 || r.v > 1 {
			errs = append(errs, fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v))
		}
	}
	if c.DeathCycle != 0 && c.DeadNode < 0 {
		errs = append(errs, fmt.Errorf("fault: death cycle set with negative dead node %d", c.DeadNode))
	}
	if c.MaxRetries < 0 {
		errs = append(errs, fmt.Errorf("fault: negative retry budget %d", c.MaxRetries))
	}
	if c.MinQuorum < 0 {
		errs = append(errs, fmt.Errorf("fault: negative minimum quorum %d", c.MinQuorum))
	}
	if c.WarmFillMaxPages < 0 {
		errs = append(errs, fmt.Errorf("fault: negative warm-fill page budget %d", c.WarmFillMaxPages))
	}
	seen := map[int]uint64{}
	if c.DeathCycle != 0 && c.DeadNode >= 0 {
		seen[c.DeadNode] = c.DeathCycle
	}
	for i, d := range c.Deaths {
		if d.Node < 0 {
			errs = append(errs, fmt.Errorf("fault: deaths[%d]: negative node %d", i, d.Node))
		}
		if d.Cycle == 0 {
			errs = append(errs, fmt.Errorf("fault: deaths[%d]: node %d scheduled to die at cycle 0", i, d.Node))
		}
		if prev, dup := seen[d.Node]; dup {
			errs = append(errs, fmt.Errorf("fault: deaths[%d]: node %d already scheduled to die at cycle %d", i, d.Node, prev))
			continue
		}
		seen[d.Node] = d.Cycle
	}
	return errors.Join(errs...)
}

// ValidateFor layers machine-shape checks on Validate: every scheduled
// death must name a node the machine has, and the quorum must be
// satisfiable by the machine at all (a quorum larger than N can never
// be met). A schedule that merely *runs below* quorum is legal — that
// is the ClassQuorumLoss terminal case the machine reports at runtime.
func (c Config) ValidateFor(nodes int) error {
	errs := []error{c.Validate()}
	if c.DeathCycle != 0 && c.DeadNode >= nodes {
		errs = append(errs, fmt.Errorf("fault: dead node %d outside machine of %d nodes", c.DeadNode, nodes))
	}
	for i, d := range c.Deaths {
		if d.Node >= nodes {
			errs = append(errs, fmt.Errorf("fault: deaths[%d]: node %d outside machine of %d nodes", i, d.Node, nodes))
		}
	}
	if c.MinQuorum > nodes {
		errs = append(errs, fmt.Errorf("fault: minimum quorum %d larger than machine of %d nodes", c.MinQuorum, nodes))
	}
	return errors.Join(errs...)
}

// WithDefaults fills the detection parameters left at zero.
func (c Config) WithDefaults() Config {
	if c.DelayMaxCycles == 0 {
		c.DelayMaxCycles = 200
	}
	if c.RetryTimeoutCycles == 0 {
		c.RetryTimeoutCycles = 20_000
	}
	if c.RetryBackoffCapCycles == 0 {
		c.RetryBackoffCapCycles = 8 * c.RetryTimeoutCycles
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.DeathWindowCycles == 0 {
		c.DeathWindowCycles = 200_000
	}
	if c.WarmFillMaxPages == 0 {
		c.WarmFillMaxPages = 64
	}
	return c
}

// Plan makes injection decisions for one machine. It is stateless: every
// method is a pure function of the configuration and its arguments, so a
// Plan may be consulted from any number of concurrently running machines
// (the engine runs jobs in parallel) without coordination.
type Plan struct {
	cfg         Config
	dropThresh  uint64
	delayThresh uint64
	flipThresh  uint64
	deathThresh uint64
}

// NewPlan builds a plan for cfg (defaults already applied by the
// caller). It panics on an invalid configuration: fault plans are
// experiment setup, and a bad one is a harness bug.
func NewPlan(cfg Config) *Plan {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Plan{
		cfg:         cfg,
		dropThresh:  rateThreshold(cfg.DropRate),
		delayThresh: rateThreshold(cfg.DelayRate),
		flipThresh:  rateThreshold(cfg.FlipRate),
		deathThresh: rateThreshold(cfg.DeathRate),
	}
}

// Schedule returns the normalized, ordered death schedule for a machine
// of the given node count: the legacy DeadNode/DeathCycle pair, every
// Deaths entry, and DeathRate-derived random deaths (a pure function of
// seed and node identity, so the schedule is identical serial or
// parallel), sorted by (Cycle, Node). Nodes explicitly scheduled are
// excluded from the random draw.
func (p *Plan) Schedule(nodes int) []Death {
	var sched []Death
	scheduled := make(map[int]bool)
	if p.cfg.DeathCycle != 0 {
		sched = append(sched, Death{Node: p.cfg.DeadNode, Cycle: p.cfg.DeathCycle})
		scheduled[p.cfg.DeadNode] = true
	}
	for _, d := range p.cfg.Deaths {
		sched = append(sched, d)
		scheduled[d.Node] = true
	}
	if p.deathThresh != 0 {
		for n := 0; n < nodes; n++ {
			if scheduled[n] || p.key(ClassDeath, n, -3, 0, 0) >= p.deathThresh {
				continue
			}
			h := mix64(p.key(ClassDeath, n, -4, 0, 0))
			sched = append(sched, Death{Node: n, Cycle: 1 + h%p.cfg.DeathWindowCycles})
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].Cycle != sched[j].Cycle {
			return sched[i].Cycle < sched[j].Cycle
		}
		return sched[i].Node < sched[j].Node
	})
	return sched
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// rateThreshold converts a probability to a 64-bit comparison threshold:
// a uniformly mixed hash below the threshold means "inject".
func rateThreshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return ^uint64(0)
	default:
		return uint64(rate * float64(1<<63) * 2)
	}
}

// Mix64 exposes the decision-mixing function so the machine can fold
// committed-operation identities into its commit fingerprint with the
// same well-distributed construction.
func Mix64(x uint64) uint64 { return mix64(x) }

// mix64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit
// mixing function (the same construction internal/stats.RNG uses).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// key mixes the seed, a class constant, and a message's stable identity
// into one decision hash.
func (p *Plan) key(class Class, src, dst int, addr, seq uint64) uint64 {
	h := p.cfg.Seed ^ (uint64(class) * 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(src)*0xff51afd7ed558ccd)
	h = mix64(h ^ uint64(dst)*0xc4ceb9fe1a85ec53)
	h = mix64(h ^ addr)
	return mix64(h ^ seq)
}

// DropArrival reports whether the delivery of broadcast (src, addr, seq)
// at receiver dst is lost.
func (p *Plan) DropArrival(src, dst int, addr, seq uint64) bool {
	return p.dropThresh != 0 && p.key(ClassDrop, src, dst, addr, seq) < p.dropThresh
}

// DelayExtra returns the extra cycles (0 = none) message (src, addr,
// seq) is held before it may arbitrate for the interconnect.
func (p *Plan) DelayExtra(src int, addr, seq uint64) uint64 {
	if p.delayThresh == 0 || p.key(ClassDelay, src, -1, addr, seq) >= p.delayThresh {
		return 0
	}
	// A second independent mix picks the magnitude in [1, DelayMaxCycles].
	h := mix64(p.key(ClassDelay, src, -2, addr, seq))
	return 1 + h%p.cfg.DelayMaxCycles
}

// FlipArrival returns (taint, true) when receiver dst observes a
// corrupted payload for broadcast (src, addr, seq); taint is the
// deterministic non-zero corruption signature folded into the victim's
// commit fingerprint.
func (p *Plan) FlipArrival(src, dst int, addr, seq uint64) (uint64, bool) {
	if p.flipThresh == 0 || p.key(ClassFlip, src, dst, addr, seq) >= p.flipThresh {
		return 0, false
	}
	taint := p.key(ClassFlip, src, dst, addr, seq^0xdeadbeef)
	if taint == 0 {
		taint = 1
	}
	return taint, true
}

// Stats accumulates the fault layer's injection and detection counters
// for one run; the machine surfaces it as Result.Fault. Plain integers
// (not stats.Counter) keep it trivially JSON-comparable.
type Stats struct {
	// Injection side.
	InjectedDrops  uint64 `json:"injectedDrops"`
	InjectedDelays uint64 `json:"injectedDelays"`
	InjectedFlips  uint64 `json:"injectedFlips"`
	DelayCycles    uint64 `json:"delayCycles"` // total extra cycles injected
	NodeDied       bool   `json:"nodeDied"`
	DeadNode       int    `json:"deadNode"`
	DeathCycle     uint64 `json:"deathCycle"`
	PurgedMessages int    `json:"purgedMessages"` // unsent messages lost with the dead node

	// Detection side.
	Timeouts         uint64 `json:"timeouts"`         // BSHR deadlines that fired
	Retries          uint64 `json:"retries"`          // re-requests sent
	RetriesServed    uint64 `json:"retriesServed"`    // re-requests answered by an owner
	SelfServes       uint64 `json:"selfServes"`       // retries satisfied from local memory (post-remap owner)
	DetectedDrops    uint64 `json:"detectedDrops"`    // timeouts matching an injected drop
	FPBroadcasts     uint64 `json:"fpBroadcasts"`     // fingerprints sent
	FPChecks         uint64 `json:"fpChecks"`         // pairwise fingerprint comparisons
	FPMismatches     uint64 `json:"fpMismatches"`     // comparisons that disagreed
	DetectedFlips    uint64 `json:"detectedFlips"`    // divergences matching an injected flip
	Detections       uint64 `json:"detections"`       // faults detected (drops + flips + death)
	DetectLatencySum uint64 `json:"detectLatencySum"` // cycles from injection to detection, summed

	// Recovery side. The scalar fields summarize the first death (and,
	// for RemappedPages, the total across deaths) so single-death
	// consumers keep working; Deaths carries the full per-death record.
	DeathDetected   bool         `json:"deathDetected"`
	DeathDetectedAt uint64       `json:"deathDetectedAt"`
	RemappedPages   int          `json:"remappedPages"`
	SuccessorNode   int          `json:"successorNode"`
	Degraded        bool         `json:"degraded"` // run finished without at least one dead node
	Deaths          []DeathStats `json:"deaths,omitempty"`
	WarmFillMsgs    uint64       `json:"warmFillMsgs"`  // re-replication messages sent, all deaths
	WarmFillBytes   uint64       `json:"warmFillBytes"` // re-replication traffic, all deaths
	WarmRemaps      int          `json:"warmRemaps"`    // remaps that landed on a warm standby copy
	LiveNodes       int          `json:"liveNodes"`     // nodes still live at end of run (0 = fault layer saw no death)
}

// DeathStats is the per-death entry of a multi-death schedule: when the
// node died, how long detection took, where its pages went, and what
// the warm-fill re-replication cost — the raw material of a survival
// curve.
type DeathStats struct {
	Node           int    `json:"node"`
	Cycle          uint64 `json:"cycle"`
	PurgedMessages int    `json:"purgedMessages"`
	Detected       bool   `json:"detected"`
	DetectedAt     uint64 `json:"detectedAt"`
	DetectLatency  uint64 `json:"detectLatency"`
	SuccessorNode  int    `json:"successorNode"` // first successor a page remapped onto (-1 before detection)
	RemappedPages  int    `json:"remappedPages"`
	WarmRemaps     int    `json:"warmRemaps"`     // pages whose successor already held a warm copy
	WarmFillMsgs   uint64 `json:"warmFillMsgs"`   // re-replication pushes this death triggered
	WarmFillBytes  uint64 `json:"warmFillBytes"`  // bytes of re-replication traffic
	CommitsAtDeath uint64 `json:"commitsAtDeath"` // committed instructions (first live node) when the node died
	LiveAfter      int    `json:"liveAfter"`      // live nodes remaining after this death
	// PostDeathIPC is the survivors' throughput from this death to the end
	// of the run (committed instructions per cycle over that window),
	// filled in at collection time — the y-axis of a survival curve.
	PostDeathIPC float64 `json:"postDeathIPC"`
}

// MeanDetectLatency returns the mean injection-to-detection latency in
// cycles (0 when nothing was detected).
func (s *Stats) MeanDetectLatency() float64 {
	if s.Detections == 0 {
		return 0
	}
	return float64(s.DetectLatencySum) / float64(s.Detections)
}

// Report is the structured error a machine halts with on an
// unrecoverable (or unrecovered-by-configuration) fault. It names the
// faulting node, the fault class, and the detection cycle, so a halted
// run is debuggable from the error alone.
type Report struct {
	// Class is the detected fault class (death, divergence, lost).
	Class Class `json:"class"`
	// Node is the faulting node (-1 when attribution is impossible,
	// e.g. a two-node fingerprint mismatch).
	Node int `json:"node"`
	// Cycle is the detection cycle.
	Cycle uint64 `json:"cycle"`
	// Line is the line address involved, when one is (death and lost).
	Line uint64 `json:"line,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
}

// Error implements error.
func (r *Report) Error() string {
	s := fmt.Sprintf("fault: %s: node %d at cycle %d", r.Class, r.Node, r.Cycle)
	if r.Line != 0 {
		s += fmt.Sprintf(" line 0x%x", r.Line)
	}
	if r.Detail != "" {
		s += ": " + r.Detail
	}
	return s
}
