package fault

import (
	"math"
	"testing"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero Config must be disabled")
	}
	c.RetryTimeoutCycles = 5 // detection knobs alone do not enable injection
	if c.Enabled() {
		t.Fatal("retry tuning alone must not enable the fault layer")
	}
	c.FingerprintInterval = 64
	if !c.Enabled() {
		t.Fatal("fingerprint exchange enables the layer")
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.3, DelayRate: 0.2, FlipRate: 0.1}.WithDefaults()
	a, b := NewPlan(cfg), NewPlan(cfg)
	for seq := uint64(0); seq < 2000; seq++ {
		addr := seq * 32
		if a.DropArrival(0, 1, addr, seq) != b.DropArrival(0, 1, addr, seq) {
			t.Fatalf("drop decision diverged at seq %d", seq)
		}
		if da, db := a.DelayExtra(0, addr, seq), b.DelayExtra(0, addr, seq); da != db {
			t.Fatalf("delay diverged at seq %d: %d vs %d", seq, da, db)
		}
		ta, oka := a.FlipArrival(0, 1, addr, seq)
		tb, okb := b.FlipArrival(0, 1, addr, seq)
		if oka != okb || ta != tb {
			t.Fatalf("flip diverged at seq %d", seq)
		}
	}
}

func TestPlanRates(t *testing.T) {
	// Empirical rates over many trials should be near the configured
	// probability: the mixing function is the only randomness source.
	cfg := Config{Seed: 7, DropRate: 0.25}.WithDefaults()
	p := NewPlan(cfg)
	const n = 50_000
	drops := 0
	for seq := uint64(0); seq < n; seq++ {
		if p.DropArrival(2, 3, seq*64, seq) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("empirical drop rate %.4f, want ~0.25", got)
	}
}

func TestPlanZeroRatesNeverFire(t *testing.T) {
	p := NewPlan(Config{Seed: 9, FingerprintInterval: 32}.WithDefaults())
	for seq := uint64(0); seq < 5000; seq++ {
		if p.DropArrival(0, 1, seq, seq) {
			t.Fatal("rate-0 drop fired")
		}
		if p.DelayExtra(0, seq, seq) != 0 {
			t.Fatal("rate-0 delay fired")
		}
		if _, ok := p.FlipArrival(0, 1, seq, seq); ok {
			t.Fatal("rate-0 flip fired")
		}
	}
}

func TestDelayBounded(t *testing.T) {
	cfg := Config{Seed: 3, DelayRate: 1, DelayMaxCycles: 17}.WithDefaults()
	p := NewPlan(cfg)
	for seq := uint64(0); seq < 5000; seq++ {
		d := p.DelayExtra(1, seq*32, seq)
		if d < 1 || d > 17 {
			t.Fatalf("delay %d outside [1,17]", d)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a := NewPlan(Config{Seed: 1, DropRate: 0.5}.WithDefaults())
	b := NewPlan(Config{Seed: 2, DropRate: 0.5}.WithDefaults())
	same := 0
	const n = 4096
	for seq := uint64(0); seq < n; seq++ {
		if a.DropArrival(0, 1, seq*32, seq) == b.DropArrival(0, 1, seq*32, seq) {
			same++
		}
	}
	// Two independent seeds agree on roughly half the decisions.
	if same < n/3 || same > 2*n/3 {
		t.Fatalf("seeds look correlated: %d/%d identical decisions", same, n)
	}
}

// TestValidate checks every structural line item individually: each
// contradictory schedule must fail with a message naming the defect.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = must pass
	}{
		{"ok-zero", Config{}, ""},
		{"ok-rates", Config{Seed: 1, DropRate: 0.5, DelayRate: 0.1, FlipRate: 0.01}, ""},
		{"ok-schedule", Config{Deaths: []Death{{Node: 1, Cycle: 10}, {Node: 2, Cycle: 20}}}, ""},
		{"drop-rate-high", Config{DropRate: 1.5}, "drop rate 1.5 outside [0,1]"},
		{"drop-rate-negative", Config{DropRate: -0.1}, "drop rate -0.1 outside [0,1]"},
		{"delay-rate-high", Config{DelayRate: 2}, "delay rate 2 outside [0,1]"},
		{"flip-rate-negative", Config{FlipRate: -1}, "flip rate -1 outside [0,1]"},
		{"death-rate-high", Config{DeathRate: 1.1}, "death rate 1.1 outside [0,1]"},
		{"negative-dead-node", Config{DeadNode: -1, DeathCycle: 5}, "negative dead node -1"},
		{"negative-retries", Config{MaxRetries: -2}, "negative retry budget -2"},
		{"negative-quorum", Config{MinQuorum: -3}, "negative minimum quorum -3"},
		{"negative-warm-fill", Config{WarmFillMaxPages: -4}, "negative warm-fill page budget -4"},
		{"death-negative-node", Config{Deaths: []Death{{Node: -1, Cycle: 10}}},
			"deaths[0]: negative node -1"},
		{"death-cycle-zero", Config{Deaths: []Death{{Node: 1, Cycle: 0}}},
			"deaths[0]: node 1 scheduled to die at cycle 0"},
		{"death-duplicate-node", Config{Deaths: []Death{{Node: 1, Cycle: 10}, {Node: 1, Cycle: 20}}},
			"deaths[1]: node 1 already scheduled to die at cycle 10"},
		{"death-duplicates-legacy", Config{DeadNode: 2, DeathCycle: 7, Deaths: []Death{{Node: 2, Cycle: 9}}},
			"deaths[0]: node 2 already scheduled to die at cycle 7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !contains(err.Error(), tc.want) {
				t.Fatalf("error %q lacks %q", err, tc.want)
			}
		})
	}

	// Line-item property: a schedule with several defects reports each
	// one, not just the first.
	err := Config{
		DropRate:  2,
		MinQuorum: -1,
		Deaths:    []Death{{Node: 3, Cycle: 0}, {Node: 3, Cycle: 5}},
	}.Validate()
	if err == nil {
		t.Fatal("multi-defect config validated")
	}
	for _, want := range []string{
		"drop rate 2 outside [0,1]",
		"negative minimum quorum -1",
		"deaths[0]: node 3 scheduled to die at cycle 0",
		"deaths[1]: node 3 already scheduled to die",
	} {
		if !contains(err.Error(), want) {
			t.Errorf("joined error %q lacks line item %q", err, want)
		}
	}
}

// TestValidateFor checks the machine-shape line items: deaths of nodes
// the machine does not have and quorums the machine can never meet.
func TestValidateFor(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		nodes int
		want  string // substring of the error; "" = must pass
	}{
		{"ok", Config{Deaths: []Death{{Node: 3, Cycle: 10}}, MinQuorum: 2}, 4, ""},
		{"legacy-node-out-of-range", Config{DeadNode: 4, DeathCycle: 5}, 4,
			"dead node 4 outside machine of 4 nodes"},
		{"death-node-out-of-range", Config{Deaths: []Death{{Node: 7, Cycle: 10}}}, 4,
			"deaths[0]: node 7 outside machine of 4 nodes"},
		{"quorum-unsatisfiable", Config{MinQuorum: 5}, 4,
			"minimum quorum 5 larger than machine of 4 nodes"},
		// Running *below* quorum is legal configuration — that is the
		// runtime ClassQuorumLoss case, not a setup error.
		{"quorum-lost-at-runtime-ok",
			Config{Deaths: []Death{{Node: 1, Cycle: 10}, {Node: 2, Cycle: 20}}, MinQuorum: 3}, 4, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.ValidateFor(tc.nodes)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !contains(err.Error(), tc.want) {
				t.Fatalf("error %q lacks %q", err, tc.want)
			}
		})
	}

	// ValidateFor folds Validate in: structural and shape defects join.
	err := Config{DropRate: -1, Deaths: []Death{{Node: 9, Cycle: 4}}}.ValidateFor(4)
	for _, want := range []string{"drop rate -1", "node 9 outside machine"} {
		if err == nil || !contains(err.Error(), want) {
			t.Errorf("joined error %v lacks %q", err, want)
		}
	}
}

func TestReportError(t *testing.T) {
	r := &Report{Class: ClassDeath, Node: 2, Cycle: 1234, Line: 0x8000, Detail: "owner unresponsive after 4 retries"}
	msg := r.Error()
	for _, want := range []string{"death", "node 2", "cycle 1234", "0x8000", "4 retries"} {
		if !contains(msg, want) {
			t.Fatalf("report %q lacks %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
