package fault

import (
	"math"
	"testing"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero Config must be disabled")
	}
	c.RetryTimeoutCycles = 5 // detection knobs alone do not enable injection
	if c.Enabled() {
		t.Fatal("retry tuning alone must not enable the fault layer")
	}
	c.FingerprintInterval = 64
	if !c.Enabled() {
		t.Fatal("fingerprint exchange enables the layer")
	}
}

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.3, DelayRate: 0.2, FlipRate: 0.1}.WithDefaults()
	a, b := NewPlan(cfg), NewPlan(cfg)
	for seq := uint64(0); seq < 2000; seq++ {
		addr := seq * 32
		if a.DropArrival(0, 1, addr, seq) != b.DropArrival(0, 1, addr, seq) {
			t.Fatalf("drop decision diverged at seq %d", seq)
		}
		if da, db := a.DelayExtra(0, addr, seq), b.DelayExtra(0, addr, seq); da != db {
			t.Fatalf("delay diverged at seq %d: %d vs %d", seq, da, db)
		}
		ta, oka := a.FlipArrival(0, 1, addr, seq)
		tb, okb := b.FlipArrival(0, 1, addr, seq)
		if oka != okb || ta != tb {
			t.Fatalf("flip diverged at seq %d", seq)
		}
	}
}

func TestPlanRates(t *testing.T) {
	// Empirical rates over many trials should be near the configured
	// probability: the mixing function is the only randomness source.
	cfg := Config{Seed: 7, DropRate: 0.25}.WithDefaults()
	p := NewPlan(cfg)
	const n = 50_000
	drops := 0
	for seq := uint64(0); seq < n; seq++ {
		if p.DropArrival(2, 3, seq*64, seq) {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("empirical drop rate %.4f, want ~0.25", got)
	}
}

func TestPlanZeroRatesNeverFire(t *testing.T) {
	p := NewPlan(Config{Seed: 9, FingerprintInterval: 32}.WithDefaults())
	for seq := uint64(0); seq < 5000; seq++ {
		if p.DropArrival(0, 1, seq, seq) {
			t.Fatal("rate-0 drop fired")
		}
		if p.DelayExtra(0, seq, seq) != 0 {
			t.Fatal("rate-0 delay fired")
		}
		if _, ok := p.FlipArrival(0, 1, seq, seq); ok {
			t.Fatal("rate-0 flip fired")
		}
	}
}

func TestDelayBounded(t *testing.T) {
	cfg := Config{Seed: 3, DelayRate: 1, DelayMaxCycles: 17}.WithDefaults()
	p := NewPlan(cfg)
	for seq := uint64(0); seq < 5000; seq++ {
		d := p.DelayExtra(1, seq*32, seq)
		if d < 1 || d > 17 {
			t.Fatalf("delay %d outside [1,17]", d)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a := NewPlan(Config{Seed: 1, DropRate: 0.5}.WithDefaults())
	b := NewPlan(Config{Seed: 2, DropRate: 0.5}.WithDefaults())
	same := 0
	const n = 4096
	for seq := uint64(0); seq < n; seq++ {
		if a.DropArrival(0, 1, seq*32, seq) == b.DropArrival(0, 1, seq*32, seq) {
			same++
		}
	}
	// Two independent seeds agree on roughly half the decisions.
	if same < n/3 || same > 2*n/3 {
		t.Fatalf("seeds look correlated: %d/%d identical decisions", same, n)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{DropRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 must fail validation")
	}
	if err := (Config{DeadNode: -1, DeathCycle: 5}).Validate(); err == nil {
		t.Fatal("negative dead node with a death cycle must fail")
	}
	if err := (Config{Seed: 1, DropRate: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReportError(t *testing.T) {
	r := &Report{Class: ClassDeath, Node: 2, Cycle: 1234, Line: 0x8000, Detail: "owner unresponsive after 4 retries"}
	msg := r.Error()
	for _, want := range []string{"death", "node 2", "cycle 1234", "0x8000", "4 retries"} {
		if !contains(msg, want) {
			t.Fatalf("report %q lacks %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
