package isa

import (
	"encoding/binary"
	"fmt"
)

// EncodedBytes is the size of one serialized instruction. Serialization is
// used for program-image round-trips (e.g. snapshotting assembled programs
// in tests); the architectural footprint in the simulated address space is
// the separate constant InstrBytes.
const EncodedBytes = 24

// Encode serializes in into a fixed-width little-endian record.
func (in Instr) Encode(dst []byte) error {
	if len(dst) < EncodedBytes {
		return fmt.Errorf("isa: encode buffer too small (%d < %d)", len(dst), EncodedBytes)
	}
	binary.LittleEndian.PutUint16(dst[0:2], uint16(in.Op))
	dst[2] = in.Rd
	dst[3] = in.Rs1
	dst[4] = in.Rs2
	dst[5], dst[6], dst[7] = 0, 0, 0 // reserved
	binary.LittleEndian.PutUint64(dst[8:16], uint64(in.Imm))
	binary.LittleEndian.PutUint64(dst[16:24], in.Target)
	return nil
}

// Decode deserializes one instruction from src, validating the result.
func Decode(src []byte) (Instr, error) {
	if len(src) < EncodedBytes {
		return Instr{}, fmt.Errorf("isa: decode buffer too small (%d < %d)", len(src), EncodedBytes)
	}
	in := Instr{
		Op:     Op(binary.LittleEndian.Uint16(src[0:2])),
		Rd:     src[2],
		Rs1:    src[3],
		Rs2:    src[4],
		Imm:    int64(binary.LittleEndian.Uint64(src[8:16])),
		Target: binary.LittleEndian.Uint64(src[16:24]),
	}
	if err := in.Validate(); err != nil {
		return Instr{}, err
	}
	return in, nil
}

// EncodeText serializes a whole text segment.
func EncodeText(text []Instr) []byte {
	out := make([]byte, len(text)*EncodedBytes)
	for i, in := range text {
		// Encode cannot fail here: the buffer is sized exactly.
		_ = in.Encode(out[i*EncodedBytes:])
	}
	return out
}

// DecodeText deserializes a whole text segment.
func DecodeText(b []byte) ([]Instr, error) {
	if len(b)%EncodedBytes != 0 {
		return nil, fmt.Errorf("isa: text blob length %d not a multiple of %d", len(b), EncodedBytes)
	}
	out := make([]Instr, len(b)/EncodedBytes)
	for i := range out {
		in, err := Decode(b[i*EncodedBytes:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
