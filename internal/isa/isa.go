// Package isa defines the instruction-set architecture executed by the
// simulators in this repository: a 64-bit, MIPS/DLX-flavored RISC with 32
// integer and 32 floating-point registers.
//
// The paper evaluated DataScalar on SimpleScalar, whose ISA is a MIPS
// derivative; this package plays the same role. The DataScalar results do
// not depend on ISA details, only on the dynamic instruction and memory
// reference streams, so the ISA is kept deliberately small while still
// being expressive enough to write the SPEC95-analogue workloads in
// internal/workload.
//
// Conventions:
//   - R0 is hardwired to zero.
//   - R29 is the stack pointer by software convention (alias "sp").
//   - R31 is the link register written by JAL (alias "ra").
//   - Every instruction occupies InstrBytes bytes of the text segment, so
//     instruction-fetch addresses are meaningful for the locality analyses
//     (the paper's Table 2 measures instruction-reference datathreads).
package isa

import "fmt"

// InstrBytes is the architectural footprint of one instruction in the text
// segment. Fetch addresses advance by this much.
const InstrBytes = 8

// NumIntRegs and NumFPRegs are the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Software-convention register numbers.
const (
	RegZero = 0  // hardwired zero
	RegSP   = 29 // stack pointer
	RegGP   = 30 // global pointer
	RegRA   = 31 // link register written by JAL
)

// Op identifies an operation. The zero value is OpInvalid so that
// uninitialized instructions are caught by validation.
type Op uint16

// Operations. Grouped by format; see opInfo for per-op metadata.
const (
	OpInvalid Op = iota

	// Integer register-register.
	OpADD
	OpSUB
	OpMUL
	OpDIV
	OpREM
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU

	// Integer register-immediate.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpLI // load full 64-bit immediate

	// Memory. Loads write Rd; stores read Rs2 (value) and Rs1 (base).
	OpLB
	OpLBU
	OpLW
	OpLWU
	OpLD
	OpSB
	OpSW
	OpSD
	OpFLD // FP load (64-bit), writes Fd
	OpFSD // FP store (64-bit), reads Fs2

	// Floating point (double precision).
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFNEG
	OpFABS
	OpFSQRT
	OpFMOV
	OpFCVTDW // int reg -> fp reg (convert)
	OpFCVTWD // fp reg -> int reg (truncate)
	OpFEQ    // fp compare, writes int Rd (0/1)
	OpFLT
	OpFLE

	// Control.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpJ
	OpJAL
	OpJR
	OpJALR

	// Miscellaneous.
	OpNOP
	OpHALT

	// Result-communication region markers (paper Section 5.1): PRIVB
	// opens a private computation region whose owner is the node holding
	// the page of the marker's effective address; PRIVE closes it.
	// Inside the region, memory accesses bypass the caches at the owner
	// and other DataScalar nodes skip the region's execution entirely,
	// receiving only its results (through later ordinary accesses).
	OpPRIVB
	OpPRIVE

	numOps // sentinel; keep last
)

// Fmt classifies instruction formats, which determines which Instr fields
// are meaningful.
type Fmt uint8

const (
	FmtNone   Fmt = iota // NOP, HALT
	FmtRRR               // rd <- rs1 op rs2
	FmtRRI               // rd <- rs1 op imm
	FmtRI                // rd <- imm (LI)
	FmtLoad              // rd <- mem[rs1+imm]
	FmtStore             // mem[rs1+imm] <- rs2
	FmtFLoad             // fd <- mem[rs1+imm]
	FmtFStore            // mem[rs1+imm] <- fs2
	FmtFRR               // fd <- fs1 op fs2
	FmtFR                // fd <- op fs1
	FmtF2I               // rd <- op fs1 (compare/convert to int)
	FmtI2F               // fd <- op rs1 (convert from int)
	FmtFCmp              // rd <- fs1 cmp fs2
	FmtBranch            // if rs1 cmp rs2 goto target
	FmtJump              // goto target (J), or call (JAL: ra <- pc+8)
	FmtJReg              // goto rs1 (JR), or call via reg (JALR)
	FmtRegion            // region marker with an effective address (PRIVB)
)

// Class groups operations by the functional unit that executes them; the
// out-of-order timing model assigns latency per class.
type Class uint8

const (
	ClassIntALU Class = iota
	ClassIntMul
	ClassIntDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassMisc
	NumClasses
)

// info holds static metadata for one operation.
type info struct {
	name  string
	fmt   Fmt
	class Class
	// memBytes is the access width for loads/stores, 0 otherwise.
	memBytes uint8
}

var opInfo = [numOps]info{
	OpInvalid: {"invalid", FmtNone, ClassMisc, 0},

	OpADD:  {"add", FmtRRR, ClassIntALU, 0},
	OpSUB:  {"sub", FmtRRR, ClassIntALU, 0},
	OpMUL:  {"mul", FmtRRR, ClassIntMul, 0},
	OpDIV:  {"div", FmtRRR, ClassIntDiv, 0},
	OpREM:  {"rem", FmtRRR, ClassIntDiv, 0},
	OpAND:  {"and", FmtRRR, ClassIntALU, 0},
	OpOR:   {"or", FmtRRR, ClassIntALU, 0},
	OpXOR:  {"xor", FmtRRR, ClassIntALU, 0},
	OpNOR:  {"nor", FmtRRR, ClassIntALU, 0},
	OpSLL:  {"sll", FmtRRR, ClassIntALU, 0},
	OpSRL:  {"srl", FmtRRR, ClassIntALU, 0},
	OpSRA:  {"sra", FmtRRR, ClassIntALU, 0},
	OpSLT:  {"slt", FmtRRR, ClassIntALU, 0},
	OpSLTU: {"sltu", FmtRRR, ClassIntALU, 0},

	OpADDI: {"addi", FmtRRI, ClassIntALU, 0},
	OpANDI: {"andi", FmtRRI, ClassIntALU, 0},
	OpORI:  {"ori", FmtRRI, ClassIntALU, 0},
	OpXORI: {"xori", FmtRRI, ClassIntALU, 0},
	OpSLLI: {"slli", FmtRRI, ClassIntALU, 0},
	OpSRLI: {"srli", FmtRRI, ClassIntALU, 0},
	OpSRAI: {"srai", FmtRRI, ClassIntALU, 0},
	OpSLTI: {"slti", FmtRRI, ClassIntALU, 0},
	OpLI:   {"li", FmtRI, ClassIntALU, 0},

	OpLB:  {"lb", FmtLoad, ClassLoad, 1},
	OpLBU: {"lbu", FmtLoad, ClassLoad, 1},
	OpLW:  {"lw", FmtLoad, ClassLoad, 4},
	OpLWU: {"lwu", FmtLoad, ClassLoad, 4},
	OpLD:  {"ld", FmtLoad, ClassLoad, 8},
	OpSB:  {"sb", FmtStore, ClassStore, 1},
	OpSW:  {"sw", FmtStore, ClassStore, 4},
	OpSD:  {"sd", FmtStore, ClassStore, 8},
	OpFLD: {"fld", FmtFLoad, ClassLoad, 8},
	OpFSD: {"fsd", FmtFStore, ClassStore, 8},

	OpFADD:   {"fadd", FmtFRR, ClassFPAdd, 0},
	OpFSUB:   {"fsub", FmtFRR, ClassFPAdd, 0},
	OpFMUL:   {"fmul", FmtFRR, ClassFPMul, 0},
	OpFDIV:   {"fdiv", FmtFRR, ClassFPDiv, 0},
	OpFNEG:   {"fneg", FmtFR, ClassFPAdd, 0},
	OpFABS:   {"fabs", FmtFR, ClassFPAdd, 0},
	OpFSQRT:  {"fsqrt", FmtFR, ClassFPDiv, 0},
	OpFMOV:   {"fmov", FmtFR, ClassFPAdd, 0},
	OpFCVTDW: {"fcvtdw", FmtI2F, ClassFPAdd, 0},
	OpFCVTWD: {"fcvtwd", FmtF2I, ClassFPAdd, 0},
	OpFEQ:    {"feq", FmtFCmp, ClassFPAdd, 0},
	OpFLT:    {"flt", FmtFCmp, ClassFPAdd, 0},
	OpFLE:    {"fle", FmtFCmp, ClassFPAdd, 0},

	OpBEQ:  {"beq", FmtBranch, ClassBranch, 0},
	OpBNE:  {"bne", FmtBranch, ClassBranch, 0},
	OpBLT:  {"blt", FmtBranch, ClassBranch, 0},
	OpBGE:  {"bge", FmtBranch, ClassBranch, 0},
	OpBLTU: {"bltu", FmtBranch, ClassBranch, 0},
	OpBGEU: {"bgeu", FmtBranch, ClassBranch, 0},
	OpJ:    {"j", FmtJump, ClassBranch, 0},
	OpJAL:  {"jal", FmtJump, ClassBranch, 0},
	OpJR:   {"jr", FmtJReg, ClassBranch, 0},
	OpJALR: {"jalr", FmtJReg, ClassBranch, 0},

	OpNOP:  {"nop", FmtNone, ClassMisc, 0},
	OpHALT: {"halt", FmtNone, ClassMisc, 0},

	OpPRIVB: {"privb", FmtRegion, ClassMisc, 0},
	OpPRIVE: {"prive", FmtNone, ClassMisc, 0},
}

// Valid reports whether op is a defined operation (excluding OpInvalid).
func (op Op) Valid() bool { return op > OpInvalid && op < numOps }

// String returns the assembly mnemonic.
func (op Op) String() string {
	if op >= numOps {
		return fmt.Sprintf("op(%d)", uint16(op))
	}
	return opInfo[op].name
}

// Format returns the instruction format.
func (op Op) Format() Fmt {
	if op >= numOps {
		return FmtNone
	}
	return opInfo[op].fmt
}

// Class returns the functional-unit class.
func (op Op) Class() Class {
	if op >= numOps {
		return ClassMisc
	}
	return opInfo[op].class
}

// MemBytes returns the memory access width for loads and stores, 0 for
// other operations.
func (op Op) MemBytes() int {
	if op >= numOps {
		return 0
	}
	return int(opInfo[op].memBytes)
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool {
	f := op.Format()
	return f == FmtLoad || f == FmtFLoad
}

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool {
	f := op.Format()
	return f == FmtStore || f == FmtFStore
}

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op.Format() == FmtBranch }

// IsControl reports whether op can change the PC non-sequentially.
func (op Op) IsControl() bool {
	switch op.Format() {
	case FmtBranch, FmtJump, FmtJReg:
		return true
	}
	return false
}

// IsCall reports whether op is a call: it transfers control while writing
// a return address (JAL writes RA, JALR writes Rd).
func (op Op) IsCall() bool { return op == OpJAL || op == OpJALR }

// FallsThrough reports whether execution can continue at the next
// sequential instruction after op. It is false for unconditional
// non-linking transfers (J, JR) and for HALT. Calls (JAL, JALR) report
// true: the instruction after a call is reachable through the callee's
// return, which is how the static analyses in internal/analysis model
// them.
func (op Op) FallsThrough() bool {
	switch op {
	case OpJ, OpJR, OpHALT:
		return false
	}
	return true
}

// OpByName returns the operation with the given mnemonic, or OpInvalid.
func OpByName(name string) Op {
	return opsByName[name]
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := OpInvalid + 1; op < numOps; op++ {
		m[opInfo[op].name] = op
	}
	return m
}()

// Ops returns all defined operations in numeric order.
func Ops() []Op {
	out := make([]Op, 0, int(numOps)-1)
	for op := OpInvalid + 1; op < numOps; op++ {
		out = append(out, op)
	}
	return out
}

// Instr is one decoded instruction. Field meaning depends on Op.Format():
//
//	FmtRRR:    Rd <- Rs1 op Rs2
//	FmtRRI:    Rd <- Rs1 op Imm
//	FmtRI:     Rd <- Imm
//	FmtLoad:   Rd <- mem[Rs1+Imm]
//	FmtStore:  mem[Rs1+Imm] <- Rs2
//	FmtFLoad:  Fd <- mem[Rs1+Imm]        (Fd aliased onto Rd)
//	FmtFStore: mem[Rs1+Imm] <- Fs2       (Fs2 aliased onto Rs2)
//	FmtFRR:    Fd <- Fs1 op Fs2
//	FmtFR:     Fd <- op Fs1
//	FmtF2I:    Rd <- convert(Fs1)
//	FmtI2F:    Fd <- convert(Rs1)
//	FmtFCmp:   Rd <- Fs1 cmp Fs2
//	FmtBranch: if Rs1 cmp Rs2: pc <- Target
//	FmtJump:   pc <- Target; JAL also Rra <- pc+InstrBytes
//	FmtJReg:   pc <- Rs1; JALR also Rd <- pc+InstrBytes
//
// FP register numbers reuse the Rd/Rs1/Rs2 fields; the format disambiguates
// which file they index.
type Instr struct {
	Op     Op
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Imm    int64
	Target uint64 // absolute byte address for branches/jumps
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch in.Op.Format() {
	case FmtNone:
		return in.Op.String()
	case FmtRRR:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FmtRRI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case FmtRI:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case FmtLoad:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case FmtStore:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case FmtFLoad:
		return fmt.Sprintf("%s f%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
	case FmtFStore:
		return fmt.Sprintf("%s f%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case FmtFRR:
		return fmt.Sprintf("%s f%d, f%d, f%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FmtFR:
		return fmt.Sprintf("%s f%d, f%d", in.Op, in.Rd, in.Rs1)
	case FmtF2I:
		return fmt.Sprintf("%s r%d, f%d", in.Op, in.Rd, in.Rs1)
	case FmtI2F:
		return fmt.Sprintf("%s f%d, r%d", in.Op, in.Rd, in.Rs1)
	case FmtFCmp:
		return fmt.Sprintf("%s r%d, f%d, f%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case FmtRegion:
		return fmt.Sprintf("%s %d(r%d)", in.Op, in.Imm, in.Rs1)
	case FmtBranch:
		return fmt.Sprintf("%s r%d, r%d, 0x%x", in.Op, in.Rs1, in.Rs2, in.Target)
	case FmtJump:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Target)
	case FmtJReg:
		if in.Op == OpJALR {
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Rs1)
		}
		return fmt.Sprintf("%s r%d", in.Op, in.Rs1)
	}
	return fmt.Sprintf("%s ???", in.Op)
}

// Validate checks structural well-formedness: defined op and in-range
// register numbers. It does not check Target reachability, which is the
// loader's job.
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("isa: invalid op %d", in.Op)
	}
	if in.Rd >= NumIntRegs || in.Rs1 >= NumIntRegs || in.Rs2 >= NumIntRegs {
		// FP register numbers share the same 0..31 range.
		return fmt.Errorf("isa: register out of range in %q", in.String())
	}
	return nil
}

// SrcRegs appends to dst the source register operands of in, tagged by
// file, and returns the extended slice. Used by the timing model to build
// dependence edges.
func (in Instr) SrcRegs(dst []RegRef) []RegRef {
	switch in.Op.Format() {
	case FmtRRR:
		dst = append(dst, IntReg(in.Rs1), IntReg(in.Rs2))
	case FmtRRI:
		dst = append(dst, IntReg(in.Rs1))
	case FmtLoad, FmtFLoad:
		dst = append(dst, IntReg(in.Rs1))
	case FmtStore:
		dst = append(dst, IntReg(in.Rs1), IntReg(in.Rs2))
	case FmtFStore:
		dst = append(dst, IntReg(in.Rs1), FPReg(in.Rs2))
	case FmtFRR, FmtFCmp:
		dst = append(dst, FPReg(in.Rs1), FPReg(in.Rs2))
	case FmtFR, FmtF2I:
		dst = append(dst, FPReg(in.Rs1))
	case FmtI2F:
		dst = append(dst, IntReg(in.Rs1))
	case FmtBranch:
		dst = append(dst, IntReg(in.Rs1), IntReg(in.Rs2))
	case FmtJReg, FmtRegion:
		dst = append(dst, IntReg(in.Rs1))
	}
	return dst
}

// DstReg returns the destination register of in and whether it has one.
// Writes to R0 are reported as no destination, matching its hardwired-zero
// semantics.
func (in Instr) DstReg() (RegRef, bool) {
	switch in.Op.Format() {
	case FmtRRR, FmtRRI, FmtRI, FmtLoad, FmtF2I, FmtFCmp:
		if in.Rd == RegZero {
			return RegRef{}, false
		}
		return IntReg(in.Rd), true
	case FmtFLoad, FmtFRR, FmtFR, FmtI2F:
		return FPReg(in.Rd), true
	case FmtJump:
		if in.Op == OpJAL {
			return IntReg(RegRA), true
		}
	case FmtJReg:
		if in.Op == OpJALR {
			if in.Rd == RegZero {
				return RegRef{}, false
			}
			return IntReg(in.Rd), true
		}
	}
	return RegRef{}, false
}

// DstRegRaw is DstReg without the hardwired-zero filtering: it reports the
// architectural destination register even when it is R0 (whose writes are
// discarded). Static analyses use it to flag writes that can never be
// observed; timing models should use DstReg, which reflects the register's
// actual dataflow.
func (in Instr) DstRegRaw() (RegRef, bool) {
	switch in.Op.Format() {
	case FmtRRR, FmtRRI, FmtRI, FmtLoad, FmtF2I, FmtFCmp:
		return IntReg(in.Rd), true
	case FmtFLoad, FmtFRR, FmtFR, FmtI2F:
		return FPReg(in.Rd), true
	case FmtJump:
		if in.Op == OpJAL {
			return IntReg(RegRA), true
		}
	case FmtJReg:
		if in.Op == OpJALR {
			return IntReg(in.Rd), true
		}
	}
	return RegRef{}, false
}

// RegRef names one architectural register in either file. The timing model
// uses it as a map key for dependence tracking.
type RegRef struct {
	FP  bool
	Num uint8
}

// IntReg returns a reference to integer register n.
func IntReg(n uint8) RegRef { return RegRef{FP: false, Num: n} }

// FPReg returns a reference to floating-point register n.
func FPReg(n uint8) RegRef { return RegRef{FP: true, Num: n} }

// String renders the register name.
func (r RegRef) String() string {
	if r.FP {
		return fmt.Sprintf("f%d", r.Num)
	}
	return fmt.Sprintf("r%d", r.Num)
}

// Index returns a dense index in [0, NumIntRegs+NumFPRegs) suitable for
// array-backed scoreboards.
func (r RegRef) Index() int {
	if r.FP {
		return NumIntRegs + int(r.Num)
	}
	return int(r.Num)
}
