package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpMetadataComplete(t *testing.T) {
	for _, op := range Ops() {
		if op.String() == "" || strings.HasPrefix(op.String(), "op(") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if op.IsMem() && op.MemBytes() == 0 {
			t.Errorf("%s: memory op with zero width", op)
		}
		if !op.IsMem() && op.MemBytes() != 0 {
			t.Errorf("%s: non-memory op with width %d", op, op.MemBytes())
		}
	}
}

func TestOpByName(t *testing.T) {
	for _, op := range Ops() {
		if got := OpByName(op.String()); got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if OpByName("bogus") != OpInvalid {
		t.Error("OpByName(bogus) != OpInvalid")
	}
	if OpByName("invalid") != OpInvalid {
		t.Error("the invalid pseudo-mnemonic must not resolve")
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op                   Op
		load, store, br, ctl bool
		memBytes             int
	}{
		{OpLD, true, false, false, false, 8},
		{OpLB, true, false, false, false, 1},
		{OpSW, false, true, false, false, 4},
		{OpFLD, true, false, false, false, 8},
		{OpFSD, false, true, false, false, 8},
		{OpBEQ, false, false, true, true, 0},
		{OpJ, false, false, false, true, 0},
		{OpJR, false, false, false, true, 0},
		{OpADD, false, false, false, false, 0},
		{OpHALT, false, false, false, false, 0},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load {
			t.Errorf("%s IsLoad = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%s IsStore = %v", c.op, c.op.IsStore())
		}
		if c.op.IsBranch() != c.br {
			t.Errorf("%s IsBranch = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsControl() != c.ctl {
			t.Errorf("%s IsControl = %v", c.op, c.op.IsControl())
		}
		if c.op.MemBytes() != c.memBytes {
			t.Errorf("%s MemBytes = %d, want %d", c.op, c.op.MemBytes(), c.memBytes)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpADDI, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Instr{Op: OpLI, Rd: 5, Imm: 99}, "li r5, 99"},
		{Instr{Op: OpLD, Rd: 7, Rs1: 8, Imm: 16}, "ld r7, 16(r8)"},
		{Instr{Op: OpSD, Rs2: 7, Rs1: 8, Imm: 16}, "sd r7, 16(r8)"},
		{Instr{Op: OpFLD, Rd: 3, Rs1: 8, Imm: 8}, "fld f3, 8(r8)"},
		{Instr{Op: OpFSD, Rs2: 3, Rs1: 8}, "fsd f3, 0(r8)"},
		{Instr{Op: OpFADD, Rd: 1, Rs1: 2, Rs2: 3}, "fadd f1, f2, f3"},
		{Instr{Op: OpFMOV, Rd: 1, Rs1: 2}, "fmov f1, f2"},
		{Instr{Op: OpFEQ, Rd: 4, Rs1: 2, Rs2: 3}, "feq r4, f2, f3"},
		{Instr{Op: OpFCVTDW, Rd: 1, Rs1: 9}, "fcvtdw f1, r9"},
		{Instr{Op: OpFCVTWD, Rd: 9, Rs1: 1}, "fcvtwd r9, f1"},
		{Instr{Op: OpBEQ, Rs1: 1, Rs2: 2, Target: 0x100}, "beq r1, r2, 0x100"},
		{Instr{Op: OpJ, Target: 0x80}, "j 0x80"},
		{Instr{Op: OpJR, Rs1: 31}, "jr r31"},
		{Instr{Op: OpJALR, Rd: 1, Rs1: 9}, "jalr r1, r9"},
		{Instr{Op: OpNOP}, "nop"},
		{Instr{Op: OpHALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Instr{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}).Validate(); err != nil {
		t.Errorf("valid instr rejected: %v", err)
	}
	if err := (Instr{}).Validate(); err == nil {
		t.Error("zero instr accepted")
	}
	if err := (Instr{Op: OpADD, Rd: 32}).Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}
	if err := (Instr{Op: numOps}).Validate(); err == nil {
		t.Error("out-of-range op accepted")
	}
}

func TestSrcDstRegs(t *testing.T) {
	srcs := func(in Instr) []RegRef { return in.SrcRegs(nil) }

	in := Instr{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3}
	if got := srcs(in); len(got) != 2 || got[0] != IntReg(2) || got[1] != IntReg(3) {
		t.Errorf("ADD srcs = %v", got)
	}
	if d, ok := in.DstReg(); !ok || d != IntReg(1) {
		t.Errorf("ADD dst = %v, %v", d, ok)
	}

	// Writes to r0 have no architectural destination.
	in = Instr{Op: OpADD, Rd: 0, Rs1: 2, Rs2: 3}
	if _, ok := in.DstReg(); ok {
		t.Error("write to r0 reported as destination")
	}

	in = Instr{Op: OpFSD, Rs1: 8, Rs2: 3}
	if got := srcs(in); len(got) != 2 || got[0] != IntReg(8) || got[1] != FPReg(3) {
		t.Errorf("FSD srcs = %v", got)
	}
	if _, ok := in.DstReg(); ok {
		t.Error("store reported a destination")
	}

	in = Instr{Op: OpFLD, Rd: 3, Rs1: 8}
	if d, ok := in.DstReg(); !ok || d != FPReg(3) {
		t.Errorf("FLD dst = %v, %v", d, ok)
	}

	in = Instr{Op: OpJAL, Target: 0x100}
	if d, ok := in.DstReg(); !ok || d != IntReg(RegRA) {
		t.Errorf("JAL dst = %v, %v", d, ok)
	}

	in = Instr{Op: OpJ, Target: 0x100}
	if _, ok := in.DstReg(); ok {
		t.Error("J reported a destination")
	}

	in = Instr{Op: OpBEQ, Rs1: 4, Rs2: 5}
	if got := srcs(in); len(got) != 2 || got[0] != IntReg(4) || got[1] != IntReg(5) {
		t.Errorf("BEQ srcs = %v", got)
	}

	in = Instr{Op: OpFEQ, Rd: 2, Rs1: 3, Rs2: 4}
	if got := srcs(in); len(got) != 2 || got[0] != FPReg(3) || got[1] != FPReg(4) {
		t.Errorf("FEQ srcs = %v", got)
	}
	if d, ok := in.DstReg(); !ok || d != IntReg(2) {
		t.Errorf("FEQ dst = %v, %v", d, ok)
	}
}

func TestRegRef(t *testing.T) {
	if IntReg(5).String() != "r5" || FPReg(5).String() != "f5" {
		t.Error("RegRef.String wrong")
	}
	seen := map[int]bool{}
	for i := uint8(0); i < NumIntRegs; i++ {
		seen[IntReg(i).Index()] = true
	}
	for i := uint8(0); i < NumFPRegs; i++ {
		seen[FPReg(i).Index()] = true
	}
	if len(seen) != NumIntRegs+NumFPRegs {
		t.Fatalf("Index not dense/unique: %d distinct", len(seen))
	}
	for idx := range seen {
		if idx < 0 || idx >= NumIntRegs+NumFPRegs {
			t.Fatalf("Index out of range: %d", idx)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpLI, Rd: 5, Imm: -1234567890123},
		{Op: OpLD, Rd: 7, Rs1: 8, Imm: 4096},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Target: 0xdeadbeef},
		{Op: OpHALT},
	}
	blob := EncodeText(ins)
	got, err := DecodeText(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ins) {
		t.Fatalf("decoded %d instrs, want %d", len(got), len(ins))
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Errorf("instr %d: got %+v want %+v", i, got[i], ins[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	var b [EncodedBytes]byte // op = 0 = invalid
	if _, err := Decode(b[:]); err == nil {
		t.Error("invalid op accepted")
	}
	if _, err := DecodeText(make([]byte, EncodedBytes+1)); err == nil {
		t.Error("misaligned text blob accepted")
	}
	if err := (Instr{Op: OpNOP}).Encode(make([]byte, 2)); err == nil {
		t.Error("short encode buffer accepted")
	}
}

// Property: any structurally valid instruction round-trips through the
// binary encoding unchanged.
func TestEncodeDecodeQuick(t *testing.T) {
	ops := Ops()
	f := func(opIdx uint16, rd, rs1, rs2 uint8, imm int64, target uint64) bool {
		in := Instr{
			Op:     ops[int(opIdx)%len(ops)],
			Rd:     rd % NumIntRegs,
			Rs1:    rs1 % NumIntRegs,
			Rs2:    rs2 % NumIntRegs,
			Imm:    imm,
			Target: target,
		}
		var buf [EncodedBytes]byte
		if err := in.Encode(buf[:]); err != nil {
			return false
		}
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegionMarkerMetadata(t *testing.T) {
	in := Instr{Op: OpPRIVB, Rs1: 7, Imm: 32}
	if got := in.String(); got != "privb 32(r7)" {
		t.Errorf("privb String = %q", got)
	}
	if got := (Instr{Op: OpPRIVE}).String(); got != "prive" {
		t.Errorf("prive String = %q", got)
	}
	srcs := in.SrcRegs(nil)
	if len(srcs) != 1 || srcs[0] != IntReg(7) {
		t.Errorf("privb srcs = %v", srcs)
	}
	if _, ok := in.DstReg(); ok {
		t.Error("privb has a destination")
	}
	if OpPRIVB.IsMem() || OpPRIVB.IsControl() {
		t.Error("privb misclassified")
	}
	if OpPRIVB.Class() != ClassMisc || OpPRIVE.Class() != ClassMisc {
		t.Error("marker class wrong")
	}
	// Round trip through the binary encoding.
	var buf [EncodedBytes]byte
	if err := in.Encode(buf[:]); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(buf[:])
	if err != nil || out != in {
		t.Fatalf("round trip: %v %+v", err, out)
	}
}

func TestOpStringOutOfRange(t *testing.T) {
	bogus := Op(9999)
	if bogus.Valid() {
		t.Error("bogus op valid")
	}
	if bogus.Format() != FmtNone || bogus.Class() != ClassMisc || bogus.MemBytes() != 0 {
		t.Error("bogus op metadata not defaulted")
	}
}

func TestControlFlowHelpers(t *testing.T) {
	for _, op := range []Op{OpJ, OpJR, OpHALT} {
		if op.FallsThrough() {
			t.Errorf("%s falls through", op)
		}
	}
	for _, op := range []Op{OpADD, OpBEQ, OpJAL, OpJALR, OpNOP, OpLD, OpPRIVB} {
		if !op.FallsThrough() {
			t.Errorf("%s does not fall through", op)
		}
	}
	if !OpJAL.IsCall() || !OpJALR.IsCall() {
		t.Error("JAL/JALR not calls")
	}
	if OpJ.IsCall() || OpJR.IsCall() || OpBEQ.IsCall() {
		t.Error("non-linking transfer classified as call")
	}
}

func TestDstRegRaw(t *testing.T) {
	// Writes to R0 are invisible to DstReg but visible to DstRegRaw.
	in := Instr{Op: OpADD, Rd: RegZero, Rs1: 1, Rs2: 2}
	if _, ok := in.DstReg(); ok {
		t.Error("DstReg reported a write to r0")
	}
	r, ok := in.DstRegRaw()
	if !ok || r != IntReg(RegZero) {
		t.Errorf("DstRegRaw = %v, %v", r, ok)
	}
	// JAL links through RA under both views.
	jal := Instr{Op: OpJAL, Target: 0x10000}
	r, ok = jal.DstRegRaw()
	if !ok || r != IntReg(RegRA) {
		t.Errorf("jal DstRegRaw = %v, %v", r, ok)
	}
	// Branches and stores have no destination at all.
	for _, in := range []Instr{
		{Op: OpBEQ}, {Op: OpSD, Rs1: 1, Rs2: 2}, {Op: OpJ}, {Op: OpJR, Rs1: RegRA}, {Op: OpHALT},
	} {
		if _, ok := in.DstRegRaw(); ok {
			t.Errorf("%s has a raw destination", in.Op)
		}
	}
}
