package mem

import (
	"fmt"
	"math/bits"
)

// DRAMConfig describes one node's on-chip main memory: multiple banks,
// each with a fixed access latency, interleaved at line granularity. The
// paper's target is fast on-chip DRAM ("banks that can be accessed in
// 8 ns" at a 1 GHz core, i.e. 8 cycles) behind a 256-bit on-chip bus
// clocked at processor frequency.
type DRAMConfig struct {
	// AccessCycles is the bank access latency in CPU cycles.
	AccessCycles uint64
	// NumBanks is the number of independently busy banks (power of two).
	NumBanks int
	// InterleaveBytes is the stride at which consecutive addresses move
	// to the next bank (typically the cache line size; power of two).
	InterleaveBytes int
	// BusCycles is the on-chip transfer time per line over the internal
	// memory bus (256-bit bus moving a 32-byte line = 1 cycle).
	BusCycles uint64
}

// Validate checks structural soundness.
func (c DRAMConfig) Validate() error {
	switch {
	case c.AccessCycles == 0:
		return fmt.Errorf("mem: dram access latency must be positive")
	case c.NumBanks <= 0 || bits.OnesCount(uint(c.NumBanks)) != 1:
		return fmt.Errorf("mem: dram banks %d not a positive power of two", c.NumBanks)
	case c.InterleaveBytes <= 0 || bits.OnesCount(uint(c.InterleaveBytes)) != 1:
		return fmt.Errorf("mem: dram interleave %d not a positive power of two", c.InterleaveBytes)
	}
	return nil
}

// DefaultDRAM returns the paper's memory parameters at a 1 GHz core:
// 8-cycle banks, 8-way interleaved at 32-byte lines, 1-cycle on-chip bus.
func DefaultDRAM() DRAMConfig {
	return DRAMConfig{AccessCycles: 8, NumBanks: 8, InterleaveBytes: 32, BusCycles: 1}
}

// DRAM models one node's main-memory timing. It tracks per-bank busy
// windows so that concurrent accesses to one bank queue while accesses to
// distinct banks overlap — the property datathreading exploits when one
// node runs ahead fetching several owned operands.
type DRAM struct {
	cfg      DRAMConfig
	bankFree []uint64 // first cycle each bank is idle
	shift    uint
	mask     uint64
	accesses uint64
	stalls   uint64 // cycles spent waiting for a busy bank, summed
}

// NewDRAM builds the timing model. It panics on invalid configuration,
// which is always an experiment-setup bug.
func NewDRAM(cfg DRAMConfig) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{
		cfg:      cfg,
		bankFree: make([]uint64, cfg.NumBanks),
		shift:    uint(bits.TrailingZeros(uint(cfg.InterleaveBytes))),
		mask:     uint64(cfg.NumBanks - 1),
	}
}

// Config returns the configuration.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// BankOf returns the bank index servicing addr.
func (d *DRAM) BankOf(addr uint64) int {
	return int((addr >> d.shift) & d.mask)
}

// Access schedules a line access beginning no earlier than now and
// returns the cycle at which the data is available at the requester
// (bank access plus on-chip bus transfer).
func (d *DRAM) Access(now uint64, addr uint64) uint64 {
	b := d.BankOf(addr)
	start := now
	if d.bankFree[b] > start {
		d.stalls += d.bankFree[b] - start
		start = d.bankFree[b]
	}
	done := start + d.cfg.AccessCycles
	d.bankFree[b] = done
	d.accesses++
	return done + d.cfg.BusCycles
}

// Accesses returns the total access count.
func (d *DRAM) Accesses() uint64 { return d.accesses }

// StallCycles returns the total cycles accesses spent queued on busy
// banks.
func (d *DRAM) StallCycles() uint64 { return d.stalls }
