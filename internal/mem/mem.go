// Package mem implements the memory-system substrate: the page table that
// records each page as replicated or communicated (with an owner node),
// the partitioning policies that distribute a program's footprint across
// DataScalar nodes, the page-access profiler used to pick replicated
// pages, and the on-chip DRAM bank timing model.
//
// The paper's terminology (Section 2): the address space is divided into a
// *replicated* part mapped into every node's local memory, and a
// *communicated* part distributed among the nodes, each page owned by
// exactly one node. Ownership lives in page-table entries, as in the
// paper's simulated implementation (one replicated bit plus one ownership
// bit per entry).
package mem

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/prog"
)

// PageKind distinguishes replicated from communicated pages.
type PageKind uint8

const (
	// Replicated pages are present in every node's local memory; accesses
	// always complete locally and are never broadcast.
	Replicated PageKind = iota
	// Communicated pages are owned by exactly one node; the owner
	// broadcasts loads and completes stores.
	Communicated
)

// String names the kind.
func (k PageKind) String() string {
	if k == Replicated {
		return "replicated"
	}
	return "communicated"
}

// Entry is one page-table entry.
type Entry struct {
	Kind  PageKind
	Owner int // owning node for communicated pages; -1 for replicated
}

// PageTable maps page numbers to entries. All nodes share one page table
// (they would be identical by construction in hardware).
type PageTable struct {
	entries  map[uint64]Entry
	numNodes int
}

// NewPageTable creates an empty table for a system of numNodes nodes.
func NewPageTable(numNodes int) *PageTable {
	if numNodes <= 0 {
		panic("mem: page table needs at least one node")
	}
	return &PageTable{entries: make(map[uint64]Entry), numNodes: numNodes}
}

// NumNodes returns the node count the table was built for.
func (pt *PageTable) NumNodes() int { return pt.numNodes }

// SetReplicated marks page pg replicated.
func (pt *PageTable) SetReplicated(pg uint64) {
	pt.entries[pg] = Entry{Kind: Replicated, Owner: -1}
}

// SetOwner marks page pg communicated and owned by node.
func (pt *PageTable) SetOwner(pg uint64, node int) {
	if node < 0 || node >= pt.numNodes {
		panic(fmt.Sprintf("mem: owner %d out of range [0,%d)", node, pt.numNodes))
	}
	pt.entries[pg] = Entry{Kind: Communicated, Owner: node}
}

// Lookup returns the entry for the page containing addr.
func (pt *PageTable) Lookup(addr uint64) (Entry, bool) {
	e, ok := pt.entries[prog.PageOf(addr)]
	return e, ok
}

// MustLookup is Lookup for addresses the caller knows are mapped; it
// panics on unmapped pages, which indicates a harness bug (the footprint
// declared by the program did not cover an address it touched).
func (pt *PageTable) MustLookup(addr uint64) Entry {
	e, ok := pt.Lookup(addr)
	if !ok {
		panic(fmt.Sprintf("mem: unmapped address 0x%x (page %d)", addr, prog.PageOf(addr)))
	}
	return e
}

// IsReplicated reports whether addr lies in a replicated page.
func (pt *PageTable) IsReplicated(addr uint64) bool {
	return pt.MustLookup(addr).Kind == Replicated
}

// OwnerOf returns the owner of addr's page, or -1 if replicated.
func (pt *PageTable) OwnerOf(addr uint64) int {
	return pt.MustLookup(addr).Owner
}

// Owns reports whether node owns addr: true for replicated pages (every
// node holds them) and for communicated pages owned by node. This is the
// predicate that decides whether a load completes locally.
func (pt *PageTable) Owns(addr uint64, node int) bool {
	e := pt.MustLookup(addr)
	return e.Kind == Replicated || e.Owner == node
}

// Clone returns a deep copy of the table. The fault layer clones the
// (otherwise shared, read-only) table before a run that may remap
// ownership, so recovery never mutates state other machines see.
func (pt *PageTable) Clone() *PageTable {
	out := NewPageTable(pt.numNodes)
	for pg, e := range pt.entries {
		out.entries[pg] = e
	}
	return out
}

// ReassignOwner transfers every communicated page owned by from to node
// to, returning the number of pages moved. This is the degraded-mode
// recovery step after a permanent node failure: the successor's backing
// copy serves the dead node's share from then on.
func (pt *PageTable) ReassignOwner(from, to int) int {
	if to < 0 || to >= pt.numNodes {
		panic(fmt.Sprintf("mem: successor %d out of range [0,%d)", to, pt.numNodes))
	}
	n := 0
	for pg, e := range pt.entries {
		if e.Kind == Communicated && e.Owner == from {
			e.Owner = to
			pt.entries[pg] = e
			n++
		}
	}
	return n
}

// OwnedPages returns the communicated pages owned by node, ascending.
// The deterministic order is what makes per-page remap and warm-fill
// decisions reproducible across runs and worker counts.
func (pt *PageTable) OwnedPages(node int) []uint64 {
	var out []uint64
	for pg, e := range pt.entries {
		if e.Kind == Communicated && e.Owner == node {
			out = append(out, pg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Pages returns all mapped page numbers, ascending.
func (pt *PageTable) Pages() []uint64 {
	out := make([]uint64, 0, len(pt.entries))
	for pg := range pt.entries {
		out = append(out, pg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountByKind returns (replicated, communicated) page counts.
func (pt *PageTable) CountByKind() (replicated, communicated int) {
	for _, e := range pt.entries {
		if e.Kind == Replicated {
			replicated++
		} else {
			communicated++
		}
	}
	return
}

// NodeBytes returns the local-memory footprint in bytes each node must
// provide: all replicated pages plus that node's share of communicated
// pages. Used for the paper's capacity framing (each node holds 1/N of
// the data set plus replicated pages).
func (pt *PageTable) NodeBytes(node int) uint64 {
	var pages uint64
	for _, e := range pt.entries {
		if e.Kind == Replicated || e.Owner == node {
			pages++
		}
	}
	return pages * prog.PageSize
}

// Partition describes how to split a program's footprint across nodes.
type Partition struct {
	// NumNodes is the node count (>= 1).
	NumNodes int
	// BlockPages is the round-robin distribution granularity in pages
	// (the paper's "distribution block size"; Table 2 sweeps 2..many).
	BlockPages int
	// ReplicateText maps every text page at every node (the paper's
	// timing runs replicate all program text).
	ReplicateText bool
	// ReplicatedPages are additional pages to replicate (chosen by
	// profiling for the Table 2 experiments).
	ReplicatedPages map[uint64]bool
}

// Build constructs the page table for program p under this partition:
// replicated pages as requested, all remaining pages dealt round-robin in
// blocks of BlockPages to nodes 0..NumNodes-1 in ascending page order.
func (pa Partition) Build(p *prog.Program) (*PageTable, error) {
	if pa.NumNodes <= 0 {
		return nil, fmt.Errorf("mem: partition needs >= 1 node")
	}
	block := pa.BlockPages
	if block <= 0 {
		block = 1
	}
	pt := NewPageTable(pa.NumNodes)
	node, inBlock := 0, 0
	for _, pg := range p.Pages() {
		addr := pg * prog.PageSize
		if (pa.ReplicateText && prog.SegmentOf(addr) == prog.SegText) || pa.ReplicatedPages[pg] {
			pt.SetReplicated(pg)
			continue
		}
		pt.SetOwner(pg, node)
		inBlock++
		if inBlock == block {
			inBlock = 0
			node = (node + 1) % pa.NumNodes
		}
	}
	return pt, nil
}

// Profiler counts accesses per page; the replication selector uses it to
// pick the most heavily accessed pages, the paper's Table 2 methodology
// ("running the benchmark, saving the number of accesses to each page,
// sorting the pages by number of accesses, and choosing the most heavily
// accessed pages").
type Profiler struct {
	counts map[uint64]uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{counts: make(map[uint64]uint64)}
}

// Observe records one access to addr.
func (pr *Profiler) Observe(addr uint64) {
	pr.counts[prog.PageOf(addr)]++
}

// Count returns the access count for page pg.
func (pr *Profiler) Count(pg uint64) uint64 { return pr.counts[pg] }

// PagesByHeat returns all observed pages sorted by descending access
// count, ties broken by ascending page number for determinism.
func (pr *Profiler) PagesByHeat() []uint64 {
	out := make([]uint64, 0, len(pr.counts))
	for pg := range pr.counts {
		out = append(out, pg)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := pr.counts[out[i]], pr.counts[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// SelectReplicated picks up to budget of the hottest pages, but never so
// many from one segment that the segment would be wholly replicated when
// limit is respected: the paper caps the distribution so that neither the
// text nor the largest data segment is completely contained at one
// processor. maxPerSeg limits per-segment picks (0 means no limit).
func (pr *Profiler) SelectReplicated(budget int, maxPerSeg map[prog.Segment]int) map[uint64]bool {
	out := make(map[uint64]bool, budget)
	perSeg := make(map[prog.Segment]int)
	for _, pg := range pr.PagesByHeat() {
		if len(out) >= budget {
			break
		}
		seg := prog.SegmentOf(pg * prog.PageSize)
		if maxPerSeg != nil {
			if lim, ok := maxPerSeg[seg]; ok && perSeg[seg] >= lim {
				continue
			}
		}
		out[pg] = true
		perSeg[seg]++
	}
	return out
}

// SegmentCounts returns, per segment, how many of the given pages fall in
// it (used to report Table 2's replicated-page breakdown).
func SegmentCounts(pages map[uint64]bool) map[prog.Segment]int {
	out := make(map[prog.Segment]int)
	for pg := range pages {
		out[prog.SegmentOf(pg*prog.PageSize)]++
	}
	return out
}
