package mem

import (
	"testing"
	"testing/quick"

	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/stats"
)

func TestPageTableBasics(t *testing.T) {
	pt := NewPageTable(4)
	pt.SetReplicated(10)
	pt.SetOwner(11, 2)

	if e, ok := pt.Lookup(10 * prog.PageSize); !ok || e.Kind != Replicated || e.Owner != -1 {
		t.Fatalf("replicated entry = %+v, %v", e, ok)
	}
	if e, ok := pt.Lookup(11*prog.PageSize + 500); !ok || e.Kind != Communicated || e.Owner != 2 {
		t.Fatalf("communicated entry = %+v, %v", e, ok)
	}
	if _, ok := pt.Lookup(99 * prog.PageSize); ok {
		t.Fatal("unmapped page resolved")
	}
	if !pt.IsReplicated(10 * prog.PageSize) {
		t.Fatal("IsReplicated false")
	}
	if pt.OwnerOf(11*prog.PageSize) != 2 {
		t.Fatal("OwnerOf wrong")
	}
	for node := 0; node < 4; node++ {
		if !pt.Owns(10*prog.PageSize, node) {
			t.Errorf("node %d does not own replicated page", node)
		}
		want := node == 2
		if pt.Owns(11*prog.PageSize, node) != want {
			t.Errorf("node %d ownership of page 11 = %v", node, !want)
		}
	}
	r, c := pt.CountByKind()
	if r != 1 || c != 1 {
		t.Fatalf("counts = %d, %d", r, c)
	}
}

func TestPageTablePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero nodes", func() { NewPageTable(0) })
	pt := NewPageTable(2)
	mustPanic("bad owner", func() { pt.SetOwner(1, 5) })
	mustPanic("unmapped MustLookup", func() { pt.MustLookup(0) })
}

func TestNodeBytes(t *testing.T) {
	pt := NewPageTable(2)
	pt.SetReplicated(0)
	pt.SetOwner(1, 0)
	pt.SetOwner(2, 1)
	pt.SetOwner(3, 1)
	if got := pt.NodeBytes(0); got != 2*prog.PageSize {
		t.Errorf("node0 bytes = %d", got)
	}
	if got := pt.NodeBytes(1); got != 3*prog.PageSize {
		t.Errorf("node1 bytes = %d", got)
	}
}

func testProgram(dataPages int) *prog.Program {
	return &prog.Program{
		Name:      "t",
		Text:      []isa.Instr{{Op: isa.OpHALT}},
		Data:      make([]byte, dataPages*prog.PageSize),
		HeapBytes: 0,
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	p := testProgram(8)
	pt, err := Partition{NumNodes: 4, BlockPages: 1, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Text page replicated.
	if !pt.IsReplicated(prog.TextBase) {
		t.Fatal("text page not replicated")
	}
	// Data pages round-robin 0,1,2,3,0,1,2,3.
	for i := 0; i < 8; i++ {
		addr := uint64(prog.DataBase) + uint64(i)*prog.PageSize
		if got := pt.OwnerOf(addr); got != i%4 {
			t.Errorf("data page %d owner = %d, want %d", i, got, i%4)
		}
	}
}

func TestPartitionBlocks(t *testing.T) {
	p := testProgram(8)
	pt, err := Partition{NumNodes: 2, BlockPages: 3, ReplicateText: true}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 1, 1, 0, 0}
	for i, w := range want {
		addr := uint64(prog.DataBase) + uint64(i)*prog.PageSize
		if got := pt.OwnerOf(addr); got != w {
			t.Errorf("page %d owner = %d, want %d", i, got, w)
		}
	}
}

func TestPartitionExplicitReplication(t *testing.T) {
	p := testProgram(4)
	hot := prog.PageOf(prog.DataBase + prog.PageSize) // second data page
	pt, err := Partition{
		NumNodes:        2,
		ReplicateText:   false,
		ReplicatedPages: map[uint64]bool{hot: true},
	}.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.IsReplicated(hot * prog.PageSize) {
		t.Fatal("explicit page not replicated")
	}
	// Text not replicated here: it is distributed like data.
	if pt.MustLookup(prog.TextBase).Kind != Communicated {
		t.Fatal("text replicated despite ReplicateText=false")
	}
	// Replicated pages are skipped by the round-robin, so the remaining
	// pages still alternate owners.
	if pt.OwnerOf(prog.DataBase) == pt.OwnerOf(prog.DataBase+2*prog.PageSize) {
		t.Fatal("round-robin did not skip replicated page")
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := (Partition{NumNodes: 0}).Build(testProgram(1)); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

// Property: every program page is mapped, and communicated pages per node
// differ by at most BlockPages when BlockPages divides evenly.
func TestPartitionCoverageQuick(t *testing.T) {
	f := func(nPages, nNodes, block uint8) bool {
		pages := int(nPages%32) + 1
		nodes := int(nNodes%4) + 1
		bp := int(block%4) + 1
		p := testProgram(pages)
		pt, err := Partition{NumNodes: nodes, BlockPages: bp, ReplicateText: true}.Build(p)
		if err != nil {
			return false
		}
		for _, pg := range p.Pages() {
			if _, ok := pt.Lookup(pg * prog.PageSize); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerHeatOrdering(t *testing.T) {
	pr := NewProfiler()
	hot := uint64(prog.DataBase)
	warm := uint64(prog.DataBase + prog.PageSize)
	cold := uint64(prog.DataBase + 2*prog.PageSize)
	for i := 0; i < 10; i++ {
		pr.Observe(hot + uint64(i)*8)
	}
	for i := 0; i < 5; i++ {
		pr.Observe(warm)
	}
	pr.Observe(cold)
	order := pr.PagesByHeat()
	if len(order) != 3 {
		t.Fatalf("pages = %v", order)
	}
	if order[0] != prog.PageOf(hot) || order[1] != prog.PageOf(warm) || order[2] != prog.PageOf(cold) {
		t.Fatalf("heat order = %v", order)
	}
	if pr.Count(prog.PageOf(hot)) != 10 {
		t.Fatalf("count = %d", pr.Count(prog.PageOf(hot)))
	}
}

func TestProfilerTieBreakDeterminism(t *testing.T) {
	pr := NewProfiler()
	// Three pages with equal counts must sort by page number.
	for i := 2; i >= 0; i-- {
		pr.Observe(uint64(prog.DataBase) + uint64(i)*prog.PageSize)
	}
	order := pr.PagesByHeat()
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("tie-break not ascending: %v", order)
		}
	}
}

func TestSelectReplicated(t *testing.T) {
	pr := NewProfiler()
	// 4 hot text pages, 4 hot data pages (text hotter).
	for i := 0; i < 4; i++ {
		for j := 0; j < 10-i; j++ {
			pr.Observe(uint64(prog.TextBase) + uint64(i)*prog.PageSize)
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5-i; j++ {
			pr.Observe(uint64(prog.DataBase) + uint64(i)*prog.PageSize)
		}
	}
	sel := pr.SelectReplicated(4, map[prog.Segment]int{prog.SegText: 2})
	if len(sel) != 4 {
		t.Fatalf("selected %d pages", len(sel))
	}
	counts := SegmentCounts(sel)
	if counts[prog.SegText] != 2 {
		t.Fatalf("text picks = %d, want capped at 2", counts[prog.SegText])
	}
	if counts[prog.SegGlobal] != 2 {
		t.Fatalf("global picks = %d, want 2", counts[prog.SegGlobal])
	}
}

func TestDRAMBasics(t *testing.T) {
	d := NewDRAM(DRAMConfig{AccessCycles: 8, NumBanks: 2, InterleaveBytes: 32, BusCycles: 1})
	// Two accesses to different banks overlap fully.
	doneA := d.Access(100, 0)  // bank 0
	doneB := d.Access(100, 32) // bank 1
	if doneA != 109 || doneB != 109 {
		t.Fatalf("parallel banks: %d, %d, want 109, 109", doneA, doneB)
	}
	// Same bank queues.
	doneC := d.Access(100, 64) // bank 0 again, free at 108
	if doneC != 117 {
		t.Fatalf("queued access done = %d, want 117", doneC)
	}
	if d.Accesses() != 3 {
		t.Fatalf("accesses = %d", d.Accesses())
	}
	if d.StallCycles() != 8 {
		t.Fatalf("stalls = %d, want 8", d.StallCycles())
	}
}

func TestDRAMBankMapping(t *testing.T) {
	d := NewDRAM(DefaultDRAM())
	if d.BankOf(0) == d.BankOf(32) {
		t.Fatal("adjacent lines in same bank")
	}
	if d.BankOf(0) != d.BankOf(8*32) {
		t.Fatal("bank mapping does not wrap at NumBanks")
	}
}

func TestDRAMValidate(t *testing.T) {
	bad := []DRAMConfig{
		{AccessCycles: 0, NumBanks: 1, InterleaveBytes: 32},
		{AccessCycles: 8, NumBanks: 3, InterleaveBytes: 32},
		{AccessCycles: 8, NumBanks: 4, InterleaveBytes: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad dram config %d accepted", i)
		}
	}
	if err := DefaultDRAM().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// Property: DRAM completion times are monotone per bank and never before
// now + access latency.
func TestDRAMMonotoneQuick(t *testing.T) {
	cfg := DefaultDRAM()
	f := func(addrs []uint16) bool {
		d := NewDRAM(cfg)
		lastPerBank := make(map[int]uint64)
		now := uint64(0)
		for _, a := range addrs {
			done := d.Access(now, uint64(a))
			if done < now+cfg.AccessCycles {
				return false
			}
			b := d.BankOf(uint64(a))
			if done <= lastPerBank[b] {
				return false
			}
			lastPerBank[b] = done
			now += 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionProfileCounts(t *testing.T) {
	tp := NewTransitionProfile()
	p0 := uint64(prog.DataBase)
	p1 := p0 + prog.PageSize
	p2 := p0 + 2*prog.PageSize
	for _, a := range []uint64{p0, p0 + 8, p1, p0, p1, p2} {
		tp.Observe(a)
	}
	if tp.Pages() != 3 {
		t.Fatalf("pages = %d", tp.Pages())
	}
	// Transitions: p0->p1 (x2 as undirected p0-p1 plus p1->p0), p1->p2.
	placement := tp.OptimizePlacement(2, nil)
	// p0 and p1 share the heaviest edge; with capacity ceil(3/2)=2 they
	// must land together, p2 alone.
	if placement[prog.PageOf(p0)] != placement[prog.PageOf(p1)] {
		t.Fatalf("hot pair split: %v", placement)
	}
	if placement[prog.PageOf(p2)] == placement[prog.PageOf(p0)] {
		t.Fatalf("capacity violated: %v", placement)
	}
}

func TestOptimizePlacementBalance(t *testing.T) {
	tp := NewTransitionProfile()
	// A chain across 8 pages: 0-1-2-...-7 with decaying weights.
	base := uint64(prog.DataBase)
	for rep := 0; rep < 4; rep++ {
		for i := uint64(0); i < 8; i++ {
			tp.Observe(base + i*prog.PageSize)
		}
	}
	placement := tp.OptimizePlacement(4, nil)
	load := map[int]int{}
	for _, owner := range placement {
		load[owner]++
		if owner < 0 || owner >= 4 {
			t.Fatalf("owner out of range: %v", placement)
		}
	}
	for n, l := range load {
		if l > 2 {
			t.Fatalf("node %d owns %d pages (cap 2): %v", n, l, placement)
		}
	}
	// Chain neighbors should pair up: count same-owner adjacent pairs.
	same := 0
	for i := uint64(0); i < 7; i++ {
		if placement[prog.PageOf(base+i*prog.PageSize)] == placement[prog.PageOf(base+(i+1)*prog.PageSize)] {
			same++
		}
	}
	if same < 3 {
		t.Fatalf("only %d/7 adjacent pairs co-located", same)
	}
}

func TestOptimizePlacementRespectsFixed(t *testing.T) {
	tp := NewTransitionProfile()
	base := uint64(prog.DataBase)
	for i := uint64(0); i < 4; i++ {
		tp.Observe(base + i*prog.PageSize)
	}
	fixed := map[uint64]bool{prog.PageOf(base): true}
	placement := tp.OptimizePlacement(2, fixed)
	if _, ok := placement[prog.PageOf(base)]; ok {
		t.Fatal("fixed page placed")
	}
}

func TestOptimizePlacementDeterminism(t *testing.T) {
	mk := func() map[uint64]int {
		tp := NewTransitionProfile()
		r := stats.NewRNG(42)
		base := uint64(prog.DataBase)
		for i := 0; i < 5000; i++ {
			tp.Observe(base + uint64(r.Intn(16))*prog.PageSize)
		}
		return tp.OptimizePlacement(4, nil)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for pg, owner := range a {
		if b[pg] != owner {
			t.Fatalf("nondeterministic placement at page %d", pg)
		}
	}
}

func TestBuildOptimized(t *testing.T) {
	all := []uint64{10, 11, 12, 13}
	placement := map[uint64]int{10: 1, 11: 1}
	repl := map[uint64]bool{13: true}
	pt := BuildOptimized(all, placement, repl, 2)
	if pt.OwnerOf(10*prog.PageSize) != 1 || pt.OwnerOf(11*prog.PageSize) != 1 {
		t.Fatal("placement ignored")
	}
	if !pt.IsReplicated(13 * prog.PageSize) {
		t.Fatal("replication ignored")
	}
	// Page 12 (cold) dealt round-robin starting at node 0.
	if pt.OwnerOf(12*prog.PageSize) != 0 {
		t.Fatalf("cold page owner = %d", pt.OwnerOf(12*prog.PageSize))
	}
}

func TestPlaceStaticAffinityClusters(t *testing.T) {
	// Two lockstep "arrays" of 4 pages each: page 10+i pairs with page
	// 20+i. Clustering must co-locate aligned pairs and balance nodes.
	touches := map[uint64]uint64{}
	edges := map[[2]uint64]uint64{}
	for i := uint64(0); i < 4; i++ {
		touches[10+i] = 100
		touches[20+i] = 100
		edges[[2]uint64{10 + i, 20 + i}] = 50
	}
	pl := PlaceStaticAffinity(touches, edges, 4, nil)
	if len(pl) != 8 {
		t.Fatalf("placed %d pages, want 8", len(pl))
	}
	counts := map[int]int{}
	for i := uint64(0); i < 4; i++ {
		if pl[10+i] != pl[20+i] {
			t.Errorf("pair %d split: node %d vs %d", i, pl[10+i], pl[20+i])
		}
		counts[pl[10+i]]++
	}
	for n, c := range counts {
		if c != 1 {
			t.Errorf("node %d owns %d pairs, want 1", n, c)
		}
	}
}

func TestPlaceStaticAffinityRespectsFixed(t *testing.T) {
	touches := map[uint64]uint64{1: 10, 2: 10, 3: 10}
	edges := map[[2]uint64]uint64{{1, 2}: 5, {2, 3}: 5}
	pl := PlaceStaticAffinity(touches, edges, 2, map[uint64]bool{2: true})
	if _, ok := pl[2]; ok {
		t.Fatalf("fixed page placed: %v", pl)
	}
	if len(pl) != 2 {
		t.Fatalf("placed %d pages, want 2", len(pl))
	}
}
