package mem

import (
	"sort"

	"github.com/wisc-arch/datascalar/internal/prog"
)

// Profile-guided page placement. The paper observes that DataScalar
// "would benefit from special support to increase datathread length or
// raise the number of datathreads executing concurrently"; ownership
// assignment is the softest such support. Round-robin distribution
// ignores the reference stream, so consecutive misses hop nodes as often
// as not; placing pages that are referenced consecutively on the same
// node lengthens datathreads without any hardware change.
//
// TransitionProfile counts, for each ordered page pair (a, b), how often
// a miss to a page of b directly followed a miss to a page of a. The
// optimizer then groups pages into N balanced clusters, greedily merging
// across the heaviest transition edges — a capacity-bounded variant of
// greedy graph clustering.

// TransitionProfile accumulates page-to-page transition counts from a
// miss stream.
type TransitionProfile struct {
	prev    uint64
	started bool
	counts  map[[2]uint64]uint64
	pages   map[uint64]uint64 // page -> total touches
}

// NewTransitionProfile returns an empty profile.
func NewTransitionProfile() *TransitionProfile {
	return &TransitionProfile{
		counts: make(map[[2]uint64]uint64),
		pages:  make(map[uint64]uint64),
	}
}

// Observe feeds the next miss address.
func (t *TransitionProfile) Observe(addr uint64) {
	pg := prog.PageOf(addr)
	t.pages[pg]++
	if t.started && t.prev != pg {
		key := [2]uint64{t.prev, pg}
		if t.prev > pg {
			key = [2]uint64{pg, t.prev}
		}
		t.counts[key]++
	}
	t.prev, t.started = pg, true
}

// Pages returns the number of distinct pages observed.
func (t *TransitionProfile) Pages() int { return len(t.pages) }

// edge is one undirected transition edge.
type edge struct {
	a, b   uint64
	weight uint64
}

// OptimizePlacement assigns every observed page an owner in [0, nodes)
// such that heavy transition edges tend to stay within one node while
// page counts stay balanced (no node owns more than ceil(P/nodes)+slack
// pages — capacity is the DataScalar constraint: each node's memory holds
// 1/N of the data set).
//
// Pages in `fixed` (e.g. replicated pages) are skipped. The result maps
// page -> owner for the caller to feed into a PageTable.
func (t *TransitionProfile) OptimizePlacement(nodes int, fixed map[uint64]bool) map[uint64]int {
	return clusterPlacement(t.pages, t.counts, nodes, fixed)
}

// PlaceStaticAffinity is the profile-free twin of OptimizePlacement: it
// clusters pages across the heaviest edges of a statically-estimated
// affinity graph (see internal/analysis.PageAffinity) instead of a
// measured miss stream. touches maps page -> estimated reference weight;
// edges maps normalized (low, high) page pairs -> estimated transition
// weight. Same balancing and determinism guarantees as
// OptimizePlacement.
func PlaceStaticAffinity(touches map[uint64]uint64, edges map[[2]uint64]uint64, nodes int, fixed map[uint64]bool) map[uint64]int {
	return clusterPlacement(touches, edges, nodes, fixed)
}

// clusterPlacement is the clustering core shared by profile-guided and
// static-affinity placement: capacity-bounded union-find over edges in
// descending weight order, then balanced bin packing of the clusters.
func clusterPlacement(touches map[uint64]uint64, counts map[[2]uint64]uint64, nodes int, fixed map[uint64]bool) map[uint64]int {
	if nodes < 1 {
		nodes = 1
	}
	// Collect movable pages deterministically.
	var pages []uint64
	for pg := range touches {
		if !fixed[pg] {
			pages = append(pages, pg)
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	if len(pages) == 0 {
		return map[uint64]int{}
	}
	cap := (len(pages) + nodes - 1) / nodes

	// Union-find clusters bounded by capacity.
	parent := make(map[uint64]uint64, len(pages))
	size := make(map[uint64]int, len(pages))
	for _, pg := range pages {
		parent[pg] = pg
		size[pg] = 1
	}
	var find func(uint64) uint64
	find = func(x uint64) uint64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	// Edges sorted by descending weight, ties broken by page numbers for
	// determinism.
	var edges []edge
	for key, w := range counts {
		if fixed[key[0]] || fixed[key[1]] {
			continue
		}
		if _, ok := parent[key[0]]; !ok {
			continue
		}
		if _, ok := parent[key[1]]; !ok {
			continue
		}
		edges = append(edges, edge{a: key[0], b: key[1], weight: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight > edges[j].weight
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb || size[ra]+size[rb] > cap {
			continue
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}

	// Pack clusters onto nodes, largest first, onto the least-loaded
	// node (balanced bin packing).
	clusters := make(map[uint64][]uint64)
	for _, pg := range pages {
		r := find(pg)
		clusters[r] = append(clusters[r], pg)
	}
	var roots []uint64
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if len(clusters[roots[i]]) != len(clusters[roots[j]]) {
			return len(clusters[roots[i]]) > len(clusters[roots[j]])
		}
		return roots[i] < roots[j]
	})
	load := make([]int, nodes)
	out := make(map[uint64]int, len(pages))
	for _, r := range roots {
		best := 0
		for n := 1; n < nodes; n++ {
			if load[n] < load[best] {
				best = n
			}
		}
		for _, pg := range clusters[r] {
			out[pg] = best
		}
		load[best] += len(clusters[r])
	}
	return out
}

// BuildOptimized builds a page table whose communicated pages follow the
// optimized placement, with any page absent from the placement (cold
// pages the profile never saw) dealt round-robin, and pages in
// replicated present at every node.
func BuildOptimized(allPages []uint64, placement map[uint64]int, replicated map[uint64]bool, nodes int) *PageTable {
	pt := NewPageTable(nodes)
	rr := 0
	for _, pg := range allPages {
		switch {
		case replicated[pg]:
			pt.SetReplicated(pg)
		default:
			if owner, ok := placement[pg]; ok {
				pt.SetOwner(pg, owner)
			} else {
				pt.SetOwner(pg, rr%nodes)
				rr++
			}
		}
	}
	return pt
}
