// Package mmm models the Massive Memory Machine, the synchronous ESP
// ancestor DataScalar builds on (paper Section 2, Figure 1): minicomputers
// in lock-step on a global broadcast bus, each owning a fraction of
// memory. The owner of each successive operand broadcasts it; when the
// next operand lives elsewhere, a *lead change* stalls every machine while
// the new lead catches up.
//
// The model reproduces Figure 1's timeline and quantifies what the
// DataScalar paper improves: synchronous ESP sustains exactly one
// datathread, so every ownership transition costs the full catch-up
// penalty, whereas asynchronous ESP (internal/core) overlaps datathreads
// across nodes.
package mmm

import "fmt"

// Config parameterizes the MMM.
type Config struct {
	// Processors is the machine count.
	Processors int
	// BroadcastDelay is the lag (in bus cycles) between the lead machine
	// and the others; a lead change stalls this many cycles while the new
	// lead catches up. Figure 1's example uses 2.
	BroadcastDelay uint64
}

// DefaultConfig returns Figure 1's parameters: 3 machines, delay 2.
func DefaultConfig() Config { return Config{Processors: 3, BroadcastDelay: 2} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Processors <= 0 {
		return fmt.Errorf("mmm: need at least one processor")
	}
	return nil
}

// Event records one word's broadcast in the simulated timeline.
type Event struct {
	Word       uint64
	Owner      int
	ReceivedAt uint64 // cycle at which every machine holds the word
	LeadChange bool   // this word triggered a lead change
}

// Result summarizes a run.
type Result struct {
	Timeline    []Event
	Cycles      uint64
	LeadChanges int
	// Datathreads is the number of maximal runs of consecutive
	// same-owner references (the MMM exploits exactly one at a time).
	Datathreads int
	// IdealCycles is the time with zero lead-change penalty (one word
	// per cycle): the bound asynchronous ESP approaches when datathreads
	// fully overlap.
	IdealCycles uint64
}

// Simulate runs the reference string through the machine. owner maps each
// word to its owning processor; words absent from the map default to
// processor 0.
func Simulate(cfg Config, refs []uint64, owner map[uint64]int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var r Result
	if len(refs) == 0 {
		return r, nil
	}
	ownerOf := func(w uint64) (int, error) {
		o := owner[w]
		if o < 0 || o >= cfg.Processors {
			return 0, fmt.Errorf("mmm: word %d owned by out-of-range processor %d", w, o)
		}
		return o, nil
	}

	lead, err := ownerOf(refs[0])
	if err != nil {
		return Result{}, err
	}
	t := uint64(0)
	r.Datathreads = 1
	for i, w := range refs {
		o, err := ownerOf(w)
		if err != nil {
			return Result{}, err
		}
		change := o != lead
		if change {
			// All machines stall while the new lead catches up.
			t += cfg.BroadcastDelay
			lead = o
			r.LeadChanges++
			r.Datathreads++
		}
		t++
		r.Timeline = append(r.Timeline, Event{Word: w, Owner: o, ReceivedAt: t, LeadChange: change})
		_ = i
	}
	r.Cycles = t
	r.IdealCycles = uint64(len(refs))
	return r, nil
}

// MeanDatathreadLength returns the mean run length of same-owner
// references in the timeline.
func (r Result) MeanDatathreadLength() float64 {
	if r.Datathreads == 0 {
		return 0
	}
	return float64(len(r.Timeline)) / float64(r.Datathreads)
}

// Slowdown returns actual cycles over the zero-penalty ideal.
func (r Result) Slowdown() float64 {
	if r.IdealCycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.IdealCycles)
}

// RoundRobinOwnership distributes words w in [0,n) across p processors in
// blocks of blockSize, the analogue of the page-distribution policy.
func RoundRobinOwnership(n uint64, p int, blockSize uint64) map[uint64]int {
	if blockSize == 0 {
		blockSize = 1
	}
	out := make(map[uint64]int, n)
	for w := uint64(0); w < n; w++ {
		out[w] = int(w/blockSize) % p
	}
	return out
}

// Figure1Reference returns the paper's Figure 1 example: words w1..w9
// (numbered 1-9), with w5, w6, w7 in machine 1 (zero-indexed) and all
// others in machine 0.
func Figure1Reference() (refs []uint64, owner map[uint64]int) {
	owner = make(map[uint64]int)
	for w := uint64(1); w <= 9; w++ {
		refs = append(refs, w)
		if w >= 5 && w <= 7 {
			owner[w] = 1
		} else {
			owner[w] = 0
		}
	}
	return refs, owner
}
