package mmm

import (
	"testing"
	"testing/quick"
)

func TestFigure1Timeline(t *testing.T) {
	refs, owner := Figure1Reference()
	r, err := Simulate(DefaultConfig(), refs, owner)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 1: w1-w4 at cycles 1-4, lead change, w5-w7 at 7-9,
	// lead change, w8-w9 at 12-13.
	want := []uint64{1, 2, 3, 4, 7, 8, 9, 12, 13}
	if len(r.Timeline) != len(want) {
		t.Fatalf("timeline length %d", len(r.Timeline))
	}
	for i, ev := range r.Timeline {
		if ev.ReceivedAt != want[i] {
			t.Errorf("w%d received at %d, want %d", i+1, ev.ReceivedAt, want[i])
		}
	}
	if r.LeadChanges != 2 {
		t.Errorf("lead changes = %d, want 2", r.LeadChanges)
	}
	if r.Datathreads != 3 {
		t.Errorf("datathreads = %d, want 3 (w1-w4, w5-w7, w8-w9)", r.Datathreads)
	}
	if r.Cycles != 13 || r.IdealCycles != 9 {
		t.Errorf("cycles = %d ideal = %d", r.Cycles, r.IdealCycles)
	}
	if got := r.MeanDatathreadLength(); got != 3 {
		t.Errorf("mean datathread = %v, want 3", got)
	}
	if r.Slowdown() <= 1 {
		t.Errorf("slowdown = %v, want > 1", r.Slowdown())
	}
}

func TestSingleOwnerNoStalls(t *testing.T) {
	refs := []uint64{1, 2, 3, 4, 5}
	owner := map[uint64]int{}
	r, err := Simulate(Config{Processors: 2, BroadcastDelay: 5}, refs, owner)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 5 || r.LeadChanges != 0 || r.Datathreads != 1 {
		t.Fatalf("result = %+v", r)
	}
	if r.Slowdown() != 1 {
		t.Fatalf("slowdown = %v", r.Slowdown())
	}
}

func TestAlternatingOwnersWorstCase(t *testing.T) {
	refs := []uint64{0, 1, 0, 1, 0, 1}
	owner := map[uint64]int{0: 0, 1: 1}
	r, err := Simulate(Config{Processors: 2, BroadcastDelay: 2}, refs, owner)
	if err != nil {
		t.Fatal(err)
	}
	if r.LeadChanges != 5 {
		t.Fatalf("lead changes = %d", r.LeadChanges)
	}
	if r.Cycles != uint64(len(refs))+5*2 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
}

func TestEmptyReferenceString(t *testing.T) {
	r, err := Simulate(DefaultConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 0 || len(r.Timeline) != 0 || r.MeanDatathreadLength() != 0 {
		t.Fatalf("empty run = %+v", r)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Simulate(Config{Processors: 0}, []uint64{1}, nil); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := Simulate(Config{Processors: 2}, []uint64{1}, map[uint64]int{1: 7}); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestRoundRobinOwnership(t *testing.T) {
	o := RoundRobinOwnership(8, 2, 2)
	want := []int{0, 0, 1, 1, 0, 0, 1, 1}
	for w, exp := range want {
		if o[uint64(w)] != exp {
			t.Errorf("word %d owner = %d, want %d", w, o[uint64(w)], exp)
		}
	}
	// Zero block size defaults to 1.
	o = RoundRobinOwnership(4, 2, 0)
	if o[0] == o[1] {
		t.Error("block size 0 did not default to per-word distribution")
	}
}

// Property: cycles = refs + leadChanges*delay, and timeline is strictly
// increasing.
func TestCycleAccountingQuick(t *testing.T) {
	f := func(words []uint8, delay uint8, procs uint8) bool {
		p := int(procs%4) + 1
		refs := make([]uint64, len(words))
		owner := map[uint64]int{}
		for i, w := range words {
			refs[i] = uint64(w)
			owner[uint64(w)] = int(w) % p
		}
		cfg := Config{Processors: p, BroadcastDelay: uint64(delay % 8)}
		r, err := Simulate(cfg, refs, owner)
		if err != nil {
			return false
		}
		if r.Cycles != uint64(len(refs))+uint64(r.LeadChanges)*cfg.BroadcastDelay {
			return false
		}
		var last uint64
		for _, ev := range r.Timeline {
			if ev.ReceivedAt <= last {
				return false
			}
			last = ev.ReceivedAt
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
