package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// StallKind is one leaf cause in the cycle-attribution taxonomy: every
// simulated cycle of every node is attributed to exactly one kind, so
// per-node stacks always sum to the machine's total cycle count (the
// exhaustiveness invariant, enforced by test in internal/sim).
//
// Attribution is head-of-window (oldest-instruction) based, the standard
// CPI-stack methodology: a cycle in which the node commits at least one
// instruction counts as useful work; otherwise the cycle is charged to
// whatever is blocking the oldest instruction (or, with an empty window,
// to the front end). See docs/OBSERVABILITY.md for the full taxonomy.
//
// The taxonomy is closed: dsvet requires every switch over StallKind to
// cover all kinds or panic in its default, so adding a bucket fails
// lint until every consumer is updated.
//
//dsvet:enum
type StallKind uint8

const (
	// StallCommit: the node committed at least one instruction this
	// cycle — useful work, the "base" segment of the CPI stack.
	StallCommit StallKind = iota
	// StallExec: the oldest instruction is executing (ALU latency, a
	// cache-hit load in flight, or a completed result waiting its turn) —
	// pipeline-fill cycles that are not attributable to any machine
	// resource shortage.
	StallExec
	// StallFetch: the front end is stalled on an instruction-cache miss
	// and the window has drained empty.
	StallFetch
	// StallEmptyWindow: the window is empty with no I-fetch outstanding
	// (dispatch just flushed, or start-of-run warmup).
	StallEmptyWindow
	// StallRUUFull: dispatch is blocked because the register update unit
	// (reorder window) is full while the oldest instruction makes no
	// progress.
	StallRUUFull
	// StallLSQFull: dispatch is blocked on a full load/store queue.
	StallLSQFull
	// StallMemLocal: the oldest instruction is a load waiting on this
	// node's own memory hierarchy (local L1 miss to the on-chip bank).
	StallMemLocal
	// StallMemRemote: the oldest instruction is a load waiting in the
	// BSHR for a remote owner that has not yet pushed the line (the
	// owner-side access + broadcast-queue latency of asynchronous ESP).
	StallMemRemote
	// StallMemRetry: the oldest instruction is a load whose BSHR wait
	// timed out and is now in the fault layer's retry/backoff protocol.
	StallMemRetry
	// StallNetContention: the data the oldest load needs is ready at its
	// producer but queued behind other traffic (bus arbitration loss, or
	// a busy ring link).
	StallNetContention
	// StallESPSerial: the data the oldest load needs is on the wire right
	// now — the unavoidable serialization of the broadcast interconnect
	// (for the traditional machine: request/response wire occupancy).
	StallESPSerial
	// StallDead: the node has been killed by the fault layer; every
	// subsequent machine cycle is charged here.
	StallDead
	// StallHalted: the node finished its program and idles while the
	// rest of the machine drains.
	StallHalted

	// NumStallKinds is the number of leaf causes.
	NumStallKinds = iota
)

var stallNames = [NumStallKinds]string{
	StallCommit:        "commit",
	StallExec:          "exec",
	StallFetch:         "fetch.icache",
	StallEmptyWindow:   "frontend.empty",
	StallRUUFull:       "window.ruu-full",
	StallLSQFull:       "window.lsq-full",
	StallMemLocal:      "bshr.local-miss",
	StallMemRemote:     "bshr.remote-owner",
	StallMemRetry:      "bshr.retry-backoff",
	StallNetContention: "net.contention",
	StallESPSerial:     "esp.serialization",
	StallDead:          "node.dead",
	StallHalted:        "node.halted",
}

// String names the stall kind (the dotted taxonomy used in artifacts).
func (k StallKind) String() string {
	if int(k) < len(stallNames) {
		return stallNames[k]
	}
	return fmt.Sprintf("stall(%d)", uint8(k))
}

// MarshalJSON renders the kind as its taxonomy name.
func (k StallKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// StallKindByName resolves a taxonomy name back to its kind (for reading
// serialized CPI stacks).
func StallKindByName(name string) (StallKind, bool) {
	for k, n := range stallNames {
		if n == name {
			return StallKind(k), true
		}
	}
	return 0, false
}

// StallKindNames returns the taxonomy names in canonical (stack) order.
func StallKindNames() []string {
	out := make([]string, NumStallKinds)
	copy(out, stallNames[:])
	return out
}

// CPIStack is one node's exhaustive cycle attribution: Stack[k] cycles
// were charged to cause k, and the buckets sum exactly to the cycles the
// node was simulated for. It is a fixed array so per-cycle accumulation
// never allocates.
type CPIStack [NumStallKinds]uint64

// Add charges n cycles to cause k.
func (s *CPIStack) Add(k StallKind, n uint64) { s[k] += n }

// Total returns the sum over all buckets — by the exhaustiveness
// invariant, the node's total simulated cycles.
func (s CPIStack) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// Share returns bucket k's fraction of the total (0 when empty).
func (s CPIStack) Share(k StallKind) float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s[k]) / float64(t)
}

// MarshalJSON renders the stack as an object keyed by taxonomy name, in
// canonical stack order (Go maps would sort keys; the fixed order keeps
// artifacts byte-stable and human-scannable top-down).
func (s CPIStack) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	for k := 0; k < NumStallKinds; k++ {
		if k > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"%s":%d`, stallNames[k], s[k])
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON reads the object form back; unknown bucket names are an
// error so artifact version skew fails loudly rather than silently
// dropping cycles.
func (s *CPIStack) UnmarshalJSON(data []byte) error {
	var raw map[string]uint64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*s = CPIStack{}
	// Walk the keys in sorted order so the error for version skew names
	// the same bucket on every run regardless of map iteration order.
	names := make([]string, 0, len(raw))
	for name := range raw {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k, ok := StallKindByName(name)
		if !ok {
			return fmt.Errorf("obs: unknown CPI bucket %q", name)
		}
		s[k] = raw[name]
	}
	return nil
}

// SumStacks adds per-node stacks into one machine-wide stack.
func SumStacks(stacks []CPIStack) CPIStack {
	var out CPIStack
	for _, s := range stacks {
		for k, v := range s {
			out[k] += v
		}
	}
	return out
}

// CPISection is the cpiStack section of the metrics artifact: the run's
// committed instruction count and the per-node cycle-attribution stacks.
type CPISection struct {
	Instructions uint64     `json:"instructions"`
	Nodes        []CPIStack `json:"nodes"`
}
