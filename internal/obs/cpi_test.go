package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestStallKindNamesCoverEveryKind(t *testing.T) {
	names := StallKindNames()
	if len(names) != NumStallKinds {
		t.Fatalf("got %d names for %d kinds", len(names), NumStallKinds)
	}
	seen := make(map[string]bool, len(names))
	for k := StallKind(0); k < NumStallKinds; k++ {
		n := k.String()
		if n == "" || strings.HasPrefix(n, "stall(") {
			t.Errorf("kind %d has no taxonomy name", k)
		}
		if seen[n] {
			t.Errorf("duplicate taxonomy name %q", n)
		}
		seen[n] = true
		back, ok := StallKindByName(n)
		if !ok || back != k {
			t.Errorf("StallKindByName(%q) = %v, %v; want %v, true", n, back, ok, k)
		}
	}
	if _, ok := StallKindByName("no-such-bucket"); ok {
		t.Error("StallKindByName accepted an unknown name")
	}
	if got := StallKind(200).String(); got != "stall(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestCPIStackJSONOrderAndRoundTrip(t *testing.T) {
	var s CPIStack
	for k := StallKind(0); k < NumStallKinds; k++ {
		s[k] = uint64(k) * 7
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// Keys must appear in canonical stack order, not map order.
	pos := -1
	for _, name := range StallKindNames() {
		i := strings.Index(string(data), `"`+name+`"`)
		if i < 0 {
			t.Fatalf("bucket %q missing from %s", name, data)
		}
		if i < pos {
			t.Fatalf("bucket %q out of canonical order in %s", name, data)
		}
		pos = i
	}
	var back CPIStack
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: got %v, want %v", back, s)
	}
}

func TestCPIStackUnmarshalUnknownBucket(t *testing.T) {
	var s CPIStack
	err := json.Unmarshal([]byte(`{"commit": 5, "mystery.bucket": 1}`), &s)
	if err == nil || !strings.Contains(err.Error(), "mystery.bucket") {
		t.Fatalf("unknown bucket must fail loudly, got err = %v", err)
	}
}

func TestCPIStackTotalShareSum(t *testing.T) {
	var a, b CPIStack
	a.Add(StallCommit, 75)
	a.Add(StallMemRemote, 25)
	b.Add(StallCommit, 50)
	b.Add(StallESPSerial, 50)
	if got := a.Total(); got != 100 {
		t.Fatalf("Total = %d, want 100", got)
	}
	if got := a.Share(StallMemRemote); got != 0.25 {
		t.Fatalf("Share = %v, want 0.25", got)
	}
	if got := (CPIStack{}).Share(StallCommit); got != 0 {
		t.Fatalf("empty stack Share = %v, want 0", got)
	}
	m := SumStacks([]CPIStack{a, b})
	if m[StallCommit] != 125 || m[StallMemRemote] != 25 || m[StallESPSerial] != 50 {
		t.Fatalf("SumStacks = %v", m)
	}
	if m.Total() != a.Total()+b.Total() {
		t.Fatalf("machine total %d != node totals %d", m.Total(), a.Total()+b.Total())
	}
}
