package obs

import (
	"encoding/json"
	"io"
	"os"
)

// Metrics is an Observer that collects the interval sample time series
// (ignoring individual protocol events) and serializes it, together with
// a final counter snapshot, as a JSON run artifact — the machine-readable
// companion to core.Result.Report()'s text tables.
type Metrics struct {
	interval uint64
	samples  []Sample
	// intervals counts distinct sample cycles incrementally: the sampler
	// emits every node's sample for one boundary before moving to the
	// next, so a new interval is exactly a sample whose cycle differs
	// from the previous one's. Kept at Sample time so NumIntervals never
	// rescans (or allocates over) the whole series.
	intervals int
	lastCycle uint64
	cpi       *CPISection
}

// NewMetrics returns a metrics collector; interval is recorded in the
// output for self-description (the machine's SampleInterval).
func NewMetrics(interval uint64) *Metrics { return &Metrics{interval: interval} }

// Event implements Observer (metrics ignore individual events).
func (m *Metrics) Event(Event) {}

// Sample implements Observer.
func (m *Metrics) Sample(s Sample) {
	if m.intervals == 0 || s.Cycle != m.lastCycle {
		m.intervals++
		m.lastCycle = s.Cycle
	}
	m.samples = append(m.samples, s)
}

// Samples returns the collected time series.
func (m *Metrics) Samples() []Sample { return m.samples }

// NumIntervals returns the number of distinct sampled intervals (sample
// count divided across nodes).
func (m *Metrics) NumIntervals() int { return m.intervals }

// SetCPIStacks attaches the run's final cycle-attribution stacks (one per
// node) so the artifact carries a cpiStack section; instructions is the
// run's committed instruction count, the denominator for per-bucket CPI
// contributions.
func (m *Metrics) SetCPIStacks(stacks []CPIStack, instructions uint64) {
	m.cpi = &CPISection{Instructions: instructions, Nodes: stacks}
}

// MetricsFile is the serialized metrics artifact: the sampling interval,
// the per-node interval time series, and a final snapshot of every stats
// counter (callers pass the run's Result, whose counters — including the
// MaxBuffered/MaxWaiting high-water marks absent from the text report —
// all marshal to JSON).
type MetricsFile struct {
	IntervalCycles uint64      `json:"intervalCycles"`
	Samples        []Sample    `json:"samples"`
	CPIStack       *CPISection `json:"cpiStack,omitempty"`
	Final          any         `json:"final"`
}

// WriteTo serializes the collected series plus the final counter
// snapshot as indented JSON.
func (m *Metrics) WriteTo(w io.Writer, final any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsFile{
		IntervalCycles: m.interval,
		Samples:        m.samples,
		CPIStack:       m.cpi,
		Final:          final,
	})
}

// WriteFile writes the metrics artifact to path.
func (m *Metrics) WriteFile(path string, final any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteTo(f, final); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
