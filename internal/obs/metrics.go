package obs

import (
	"encoding/json"
	"io"
	"os"
)

// Metrics is an Observer that collects the interval sample time series
// (ignoring individual protocol events) and serializes it, together with
// a final counter snapshot, as a JSON run artifact — the machine-readable
// companion to core.Result.Report()'s text tables.
type Metrics struct {
	interval uint64
	samples  []Sample
}

// NewMetrics returns a metrics collector; interval is recorded in the
// output for self-description (the machine's SampleInterval).
func NewMetrics(interval uint64) *Metrics { return &Metrics{interval: interval} }

// Event implements Observer (metrics ignore individual events).
func (m *Metrics) Event(Event) {}

// Sample implements Observer.
func (m *Metrics) Sample(s Sample) { m.samples = append(m.samples, s) }

// Samples returns the collected time series.
func (m *Metrics) Samples() []Sample { return m.samples }

// NumIntervals returns the number of distinct sampled intervals (sample
// count divided across nodes).
func (m *Metrics) NumIntervals() int {
	seen := make(map[uint64]bool)
	for _, s := range m.samples {
		seen[s.Cycle] = true
	}
	return len(seen)
}

// MetricsFile is the serialized metrics artifact: the sampling interval,
// the per-node interval time series, and a final snapshot of every stats
// counter (callers pass the run's Result, whose counters — including the
// MaxBuffered/MaxWaiting high-water marks absent from the text report —
// all marshal to JSON).
type MetricsFile struct {
	IntervalCycles uint64   `json:"intervalCycles"`
	Samples        []Sample `json:"samples"`
	Final          any      `json:"final"`
}

// WriteTo serializes the collected series plus the final counter
// snapshot as indented JSON.
func (m *Metrics) WriteTo(w io.Writer, final any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsFile{
		IntervalCycles: m.interval,
		Samples:        m.samples,
		Final:          final,
	})
}

// WriteFile writes the metrics artifact to path.
func (m *Metrics) WriteFile(path string, final any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteTo(f, final); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
