// Package obs is the structured observability layer threaded through the
// simulator: typed protocol events, interval metric samples, and the
// sinks that turn them into machine-readable run artifacts (a
// Chrome-trace-event JSON loadable in Perfetto, and a JSON metrics time
// series).
//
// Observation is strictly read-only and provably non-perturbing: every
// hook site guards on a nil Observer and emits value-typed events, so a
// run with observation enabled produces bit-identical cycle counts and
// protocol counters to a run without it (enforced by test in
// internal/core), and a nil observer adds no allocation to any hot path.
package obs

import (
	"fmt"
)

// EventKind enumerates the typed protocol events the simulator emits.
// The set is closed: dsvet requires every switch over EventKind to
// cover all kinds or panic in its default.
//
//dsvet:enum
type EventKind uint8

const (
	// EvBroadcastSent: a node pushed an ESP broadcast of a line
	// (Arg = 1 when reparative, i.e. a late commit-time repair).
	EvBroadcastSent EventKind = iota
	// EvBroadcastArrived: a broadcast landed at a receiving node.
	EvBroadcastArrived
	// EvBSHRAlloc: a load allocated a waiting BSHR entry.
	EvBSHRAlloc
	// EvBSHRJoin: a load merged into an existing waiting BSHR entry.
	EvBSHRJoin
	// EvBSHRFoundBuffered: a load found its data already buffered in the
	// BSHR — the broadcast beat the local processor (datathreading).
	EvBSHRFoundBuffered
	// EvBSHRMatch: an arrival satisfied waiting entries (Arg = tokens
	// released).
	EvBSHRMatch
	// EvBSHRBuffer: an arrival was buffered for a future request
	// (Arg = buffered occupancy after insertion).
	EvBSHRBuffer
	// EvBSHRSquash: an arrival or buffered entry was squashed
	// (false-hit repair / absorption of an unconsumed broadcast).
	EvBSHRSquash
	// EvFalseHit: issue-time hit, commit-time miss.
	EvFalseHit
	// EvFalseMiss: issue-time miss, commit-time hit.
	EvFalseMiss
	// EvMissFold: an issue-time miss folded into an outstanding line
	// (the paper's false-miss folding).
	EvMissFold
	// EvCommitFill: the commit-update drain installed a line in the L1
	// (the DCUB-to-cache move).
	EvCommitFill
	// EvCacheFill: the tag store installed a line (any machine).
	EvCacheFill
	// EvCacheWriteback: a fill evicted a dirty victim (Addr = victim
	// line).
	EvCacheWriteback
	// EvCacheInvalidate: a line was invalidated.
	EvCacheInvalidate
	// EvBusGrant: the interconnect granted (bus) or injected (ring) a
	// message (Arg = wire bytes; Node = source).
	EvBusGrant
	// EvBusDeliver: a point-to-point message arrived at its destination
	// (traditional machine request/response traffic; Arg = message kind).
	EvBusDeliver
	// EvFaultDrop: the fault layer dropped a broadcast delivery at this
	// node (Addr = line; Arg = source node).
	EvFaultDrop
	// EvFaultDelay: the fault layer held a broadcast back before it could
	// arbitrate (Addr = line; Arg = extra cycles).
	EvFaultDelay
	// EvFaultFlip: the fault layer corrupted a delivery's payload as seen
	// by this node (Addr = line; Arg = source node).
	EvFaultFlip
	// EvFaultDeath: a node failed permanently (Arg = messages purged).
	EvFaultDeath
	// EvFaultTimeout: a BSHR wait exceeded its deadline (Addr = line;
	// Arg = retries already spent).
	EvFaultTimeout
	// EvFaultRetry: a node re-requested a timed-out line from its owner
	// (Addr = line; Arg = owner node).
	EvFaultRetry
	// EvFaultRetryServed: an owner answered a re-request with a directed
	// resend (Addr = line; Arg = requesting node).
	EvFaultRetryServed
	// EvFaultFingerprint: a node broadcast its commit fingerprint
	// (Addr = interval index; Arg = fingerprint value).
	EvFaultFingerprint
	// EvFaultDivergence: the fingerprint exchange detected a cross-node
	// divergence (Addr = interval index; Node = attributed culprit or -1).
	EvFaultDivergence
	// EvFaultRemap: a dead owner's pages were remapped to a successor
	// (Node = successor; Arg = pages moved).
	EvFaultRemap
	// EvFaultWarmFill: a page's new owner pushed a warm copy to a
	// standby replica, or the standby absorbed it (Addr = page base;
	// Arg = peer node).
	EvFaultWarmFill
	// EvFaultQuorumLoss: a death drove the live-node count below the
	// configured minimum quorum (Arg = live nodes remaining).
	EvFaultQuorumLoss

	// numEventKinds stays untyped (explicit iota) so it never reads as
	// an extra enumerator to dsvet's exhaustive-switch check.
	numEventKinds = iota
)

var eventNames = [numEventKinds]string{
	EvBroadcastSent:     "broadcast.sent",
	EvBroadcastArrived:  "broadcast.arrived",
	EvBSHRAlloc:         "bshr.alloc",
	EvBSHRJoin:          "bshr.join",
	EvBSHRFoundBuffered: "bshr.found-buffered",
	EvBSHRMatch:         "bshr.match",
	EvBSHRBuffer:        "bshr.buffer",
	EvBSHRSquash:        "bshr.squash",
	EvFalseHit:          "correspondence.false-hit",
	EvFalseMiss:         "correspondence.false-miss",
	EvMissFold:          "correspondence.miss-fold",
	EvCommitFill:        "commit.fill",
	EvCacheFill:         "cache.fill",
	EvCacheWriteback:    "cache.writeback",
	EvCacheInvalidate:   "cache.invalidate",
	EvBusGrant:          "bus.grant",
	EvBusDeliver:        "bus.deliver",
	EvFaultDrop:         "fault.drop",
	EvFaultDelay:        "fault.delay",
	EvFaultFlip:         "fault.flip",
	EvFaultDeath:        "fault.death",
	EvFaultTimeout:      "fault.timeout",
	EvFaultRetry:        "fault.retry",
	EvFaultRetryServed:  "fault.retry-served",
	EvFaultFingerprint:  "fault.fingerprint",
	EvFaultDivergence:   "fault.divergence",
	EvFaultRemap:        "fault.remap",
	EvFaultWarmFill:     "fault.warm-fill",
	EvFaultQuorumLoss:   "fault.quorum-loss",
}

// String names the event kind (the dotted taxonomy used in traces).
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// MarshalJSON renders the kind as its taxonomy name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// NumEventKinds returns the number of defined event kinds.
func NumEventKinds() int { return int(numEventKinds) }

// Event is one typed protocol event. It is passed by value everywhere so
// that emission never allocates.
type Event struct {
	Cycle uint64    `json:"cycle"`
	Node  int       `json:"node"`
	Kind  EventKind `json:"kind"`
	// Addr is the line (or message) address the event concerns.
	Addr uint64 `json:"addr"`
	// Arg is a kind-specific detail (reparative flag, wire bytes,
	// released-token count, ...). See the kind's documentation.
	Arg uint64 `json:"arg"`
}

// Sample is one interval snapshot of one node's rates and occupancies,
// emitted by the machine's sampler every SampleInterval cycles (plus a
// final partial interval at end of run).
type Sample struct {
	// Cycle is the cycle at the end of the sampled interval.
	Cycle uint64 `json:"cycle"`
	// IntervalCycles is the interval's length (the final sample may be
	// shorter than the configured interval).
	IntervalCycles uint64 `json:"intervalCycles"`
	Node           int    `json:"node"`
	// Committed is the node's cumulative committed instruction count.
	Committed uint64 `json:"committed"`
	// IPC is the interval IPC (committed this interval / interval
	// cycles).
	IPC float64 `json:"ipc"`
	// BusBusyPct is the interconnect's busy percentage over the interval
	// (global, so identical across nodes in one interval).
	BusBusyPct float64 `json:"busBusyPct"`
	// Broadcasts is the number of ESP broadcasts this node pushed during
	// the interval.
	Broadcasts uint64 `json:"broadcasts"`
	// BroadcastRate is Broadcasts per thousand cycles.
	BroadcastRate float64 `json:"broadcastRatePerKCycle"`
	// BSHRWaiting and BSHRBuffered are the node's instantaneous BSHR
	// occupancies at the sample point.
	BSHRWaiting  int `json:"bshrWaiting"`
	BSHRBuffered int `json:"bshrBuffered"`
	// L1MissRate is the interval issue-time miss rate (issue misses /
	// issue accesses during the interval).
	L1MissRate float64 `json:"l1MissRate"`
	// Stack is the node's cycle attribution over this interval (bucket
	// deltas, not cumulative): by the exhaustiveness invariant its total
	// equals IntervalCycles.
	Stack CPIStack `json:"cpiStack"`
}

// Observer receives protocol events and interval samples. A nil Observer
// disables all observation at zero cost; hook sites must guard on nil
// before constructing an Event. Implementations must treat events as
// read-only telemetry: they see simulator state mid-cycle and must never
// mutate it.
type Observer interface {
	// Event delivers one protocol event.
	Event(e Event)
	// Sample delivers one interval metric sample.
	Sample(s Sample)
}

// multi fans events and samples out to several sinks.
type multi []Observer

func (m multi) Event(e Event) {
	for _, o := range m {
		o.Event(e)
	}
}

func (m multi) Sample(s Sample) {
	for _, o := range m {
		o.Sample(s)
	}
}

// Multi combines observers into one, dropping nils. It returns nil when
// none remain (preserving the nil fast path) and the observer itself
// when exactly one remains.
func Multi(obs ...Observer) Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Counts is a minimal Observer that tallies events by kind and counts
// samples; tests and quick diagnostics use it.
type Counts struct {
	ByKind  [numEventKinds]uint64
	Samples int
}

// Event implements Observer.
func (c *Counts) Event(e Event) {
	if int(e.Kind) < len(c.ByKind) {
		c.ByKind[e.Kind]++
	}
}

// Sample implements Observer.
func (c *Counts) Sample(Sample) { c.Samples++ }

// Total returns the total event count across kinds.
func (c *Counts) Total() uint64 {
	var n uint64
	for _, v := range c.ByKind {
		n += v
	}
	return n
}
