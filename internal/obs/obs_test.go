package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEventKindNames(t *testing.T) {
	seen := make(map[string]bool)
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("kind %d has no taxonomy name", k)
		}
		if seen[name] {
			t.Errorf("duplicate taxonomy name %q", name)
		}
		seen[name] = true
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		if string(b) != `"`+name+`"` {
			t.Errorf("kind %d marshals as %s, want %q", k, b, name)
		}
	}
	if got := EventKind(200).String(); got != "event(200)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	c := &Counts{}
	if got := Multi(nil, c); got != Observer(c) {
		t.Error("Multi with one non-nil should return it directly")
	}
	c2 := &Counts{}
	m := Multi(c, c2)
	m.Event(Event{Kind: EvCacheFill})
	m.Sample(Sample{})
	for i, obs := range []*Counts{c, c2} {
		if obs.ByKind[EvCacheFill] != 1 || obs.Samples != 1 {
			t.Errorf("observer %d: events=%d samples=%d, want 1/1",
				i, obs.ByKind[EvCacheFill], obs.Samples)
		}
	}
	if c.Total() != 1 {
		t.Errorf("Total() = %d, want 1", c.Total())
	}
}

// TestTraceChromeFormat checks the trace file is structurally what
// Perfetto expects: a traceEvents array with process/thread metadata,
// thread-scoped instants for protocol events, and counter entries for
// samples.
func TestTraceChromeFormat(t *testing.T) {
	tr := NewTrace()
	tr.Event(Event{Cycle: 10, Node: 0, Kind: EvBroadcastSent, Addr: 0x2000, Arg: 0})
	tr.Event(Event{Cycle: 14, Node: 1, Kind: EvBSHRAlloc, Addr: 0x2000, Arg: 1})
	tr.Sample(Sample{Cycle: 500, IntervalCycles: 500, Node: 0, IPC: 1.5, BusBusyPct: 12})
	tr.Sample(Sample{Cycle: 500, IntervalCycles: 500, Node: 1, IPC: 1.4})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}

	byPh := make(map[string]int)
	names := make(map[string]bool)
	for _, e := range file.TraceEvents {
		ph, _ := e["ph"].(string)
		byPh[ph]++
		if name, ok := e["name"].(string); ok {
			names[name] = true
		}
		if ph == "i" {
			if s, _ := e["s"].(string); s != "t" {
				t.Errorf("instant event %v not thread-scoped", e["name"])
			}
		}
	}
	if byPh["M"] < 3 { // process_name + 2 thread_names
		t.Errorf("want >=3 metadata events, got %d", byPh["M"])
	}
	if byPh["i"] != 2 {
		t.Errorf("want 2 instant events, got %d", byPh["i"])
	}
	if byPh["C"] == 0 {
		t.Error("no counter events emitted for samples")
	}
	for _, want := range []string{
		"process_name", "thread_name", "broadcast.sent", "bshr.alloc",
		"bus busy %", "IPC node0", "IPC node1", "BSHR occupancy node1",
	} {
		if !names[want] {
			t.Errorf("trace is missing %q entries", want)
		}
	}
}

func TestMetricsFile(t *testing.T) {
	m := NewMetrics(1000)
	m.Sample(Sample{Cycle: 1000, IntervalCycles: 1000, Node: 0, IPC: 2})
	m.Sample(Sample{Cycle: 1000, IntervalCycles: 1000, Node: 1, IPC: 1.8})
	m.Sample(Sample{Cycle: 2000, IntervalCycles: 1000, Node: 0, IPC: 2.1})
	m.Sample(Sample{Cycle: 2000, IntervalCycles: 1000, Node: 1, IPC: 1.9})
	m.Event(Event{Kind: EvCacheFill}) // ignored
	if got := m.NumIntervals(); got != 2 {
		t.Fatalf("NumIntervals = %d, want 2", got)
	}

	var buf bytes.Buffer
	final := map[string]any{"cycles": 2048}
	if err := m.WriteTo(&buf, final); err != nil {
		t.Fatal(err)
	}
	var file MetricsFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	if file.IntervalCycles != 1000 || len(file.Samples) != 4 {
		t.Fatalf("round trip: interval=%d samples=%d", file.IntervalCycles, len(file.Samples))
	}
	if file.Samples[0].IPC != 2 {
		t.Errorf("sample IPC round trip = %v", file.Samples[0].IPC)
	}
	if file.Final == nil {
		t.Error("final snapshot missing")
	}
}
