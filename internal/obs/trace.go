package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Trace is an Observer that records every event and sample and renders
// them in the Chrome trace-event JSON format, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Each node gets its own
// event track (a "thread"); interval samples become counter tracks for
// bus busy %, per-node IPC, broadcast rate, and BSHR occupancy.
//
// One simulated cycle maps to one microsecond of trace time (the trace
// format's native unit), so the Perfetto timeline reads directly in
// cycles.
type Trace struct {
	events  []Event
	samples []Sample
	maxNode int
}

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return &Trace{} }

// Event implements Observer.
func (t *Trace) Event(e Event) {
	t.events = append(t.events, e)
	if e.Node > t.maxNode {
		t.maxNode = e.Node
	}
}

// Sample implements Observer.
func (t *Trace) Sample(s Sample) {
	t.samples = append(t.samples, s)
	if s.Node > t.maxNode {
		t.maxNode = s.Node
	}
}

// NumEvents returns the number of recorded events.
func (t *Trace) NumEvents() int { return len(t.events) }

// NumSamples returns the number of recorded samples.
func (t *Trace) NumSamples() int { return len(t.samples) }

// chromeEvent is one entry of the trace-event JSON format.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level object Perfetto expects.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

const tracePid = 0

// WriteChromeTrace renders the recorded events and samples as
// trace-event JSON.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	out := chromeFile{TraceEvents: make([]chromeEvent, 0, len(t.events)+5*len(t.samples)+t.maxNode+2)}

	// Metadata: name the process and one thread per node.
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "datascalar"},
	})
	for n := 0; n <= t.maxNode; n++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: n,
			Args: map[string]any{"name": fmt.Sprintf("node%d", n)},
		})
	}

	// Protocol events: thread-scoped instants on the emitting node's
	// track.
	for _, e := range t.events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(),
			Ph:   "i",
			Ts:   e.Cycle,
			Pid:  tracePid,
			Tid:  e.Node,
			S:    "t",
			Args: map[string]any{
				"addr": fmt.Sprintf("0x%x", e.Addr),
				"arg":  e.Arg,
			},
		})
	}

	// Counter tracks from the interval samples. Bus busy is global, so
	// emit it once per interval (on the node-0 sample); the rest are
	// per-node.
	for _, s := range t.samples {
		if s.Node == 0 {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "bus busy %", Ph: "C", Ts: s.Cycle, Pid: tracePid,
				Args: map[string]any{"busy": s.BusBusyPct},
			})
		}
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: fmt.Sprintf("IPC node%d", s.Node), Ph: "C", Ts: s.Cycle, Pid: tracePid,
				Args: map[string]any{"ipc": s.IPC},
			},
			chromeEvent{
				Name: fmt.Sprintf("BSHR occupancy node%d", s.Node), Ph: "C", Ts: s.Cycle, Pid: tracePid,
				Args: map[string]any{"waiting": s.BSHRWaiting, "buffered": s.BSHRBuffered},
			},
			chromeEvent{
				Name: fmt.Sprintf("broadcasts/kcycle node%d", s.Node), Ph: "C", Ts: s.Cycle, Pid: tracePid,
				Args: map[string]any{"rate": s.BroadcastRate},
			},
			chromeEvent{
				Name: fmt.Sprintf("CPI stack node%d", s.Node), Ph: "C", Ts: s.Cycle, Pid: tracePid,
				Args: cpiCounterArgs(s.Stack),
			})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// cpiCounterArgs renders an interval's bucket deltas as one Perfetto
// counter series per stall kind; Perfetto stacks the series, so the
// track reads as a per-interval CPI stack over time.
func cpiCounterArgs(st CPIStack) map[string]any {
	args := make(map[string]any, NumStallKinds)
	for k := StallKind(0); k < NumStallKinds; k++ {
		args[k.String()] = st[k]
	}
	return args
}

// WriteChromeTraceFile writes the trace to path.
func (t *Trace) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
