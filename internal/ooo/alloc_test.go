package ooo

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/obs"
)

// allocKernel mixes loads, stores, ALU ops, and branches so the
// steady-state alloc guards exercise dispatch, issue, completion, and
// commit together; FixedLatencyMem keeps the completion heap busy.
const allocKernel = `
        .data
buf:    .space 16384
        .text
        li   r5, 100000000    # effectively infinite for the test
outer:  la   r1, buf
        li   r2, 2048
loop:   sd   r2, 0(r1)
        ld   r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        addi r5, r5, -1
        bne  r5, zero, outer
        halt
`

// TestCycleZeroAllocs: the per-cycle core path — dispatch, issue,
// completion, commit, including the ring-buffer RUU and the hand-rolled
// heaps — must not allocate in steady state.
func TestCycleZeroAllocs(t *testing.T) {
	c, _ := coreFor(t, allocKernel, FixedLatencyMem{Cycles: 20}, nil)
	now := uint64(0)
	for ; now < 50_000; now++ { // warmup: grow heaps, wakeup slices, maps
		c.Cycle(now)
		if c.Err() != nil || c.Done() {
			t.Fatalf("warmup ended early: err=%v done=%v", c.Err(), c.Done())
		}
	}
	if allocs := testing.AllocsPerRun(20_000, func() {
		c.Cycle(now)
		now++
	}); allocs != 0 {
		t.Fatalf("ooo.Core.Cycle allocated %.3f times per cycle in steady state", allocs)
	}
}

// classifyingMem is FixedLatencyMem plus the LoadClassifier hook the
// timing machines install, so the alloc guard below proves the cycle
// attribution path itself adds no allocations.
type classifyingMem struct{ FixedLatencyMem }

func (classifyingMem) ClassifyLoad(uint64, LoadToken, uint64) obs.StallKind {
	return obs.StallMemRemote
}

// TestCycleZeroAllocsWithClassifier mirrors TestCycleZeroAllocs with a
// memory port that refines load-stall attribution, and checks the hook
// actually ran and the CPI stack stayed exhaustive. Its loads read a
// buffer disjoint from the stores: a store-forwarded load never reaches
// memory, so allocKernel's loads would bypass the classifier entirely.
func TestCycleZeroAllocsWithClassifier(t *testing.T) {
	src := `
        .data
dst:    .space 16384
buf:    .space 16384
        .text
        li   r5, 100000000    # effectively infinite for the test
outer:  la   r1, dst
        la   r6, buf
        li   r2, 2048
loop:   sd   r2, 0(r1)
        ld   r3, 0(r6)
        add  r4, r4, r3
        addi r1, r1, 8
        addi r6, r6, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        addi r5, r5, -1
        bne  r5, zero, outer
        halt
`
	c, _ := coreFor(t, src, classifyingMem{FixedLatencyMem{Cycles: 20}}, nil)
	now := uint64(0)
	for ; now < 50_000; now++ {
		c.Cycle(now)
		if c.Err() != nil || c.Done() {
			t.Fatalf("warmup ended early: err=%v done=%v", c.Err(), c.Done())
		}
	}
	if allocs := testing.AllocsPerRun(20_000, func() {
		c.Cycle(now)
		now++
	}); allocs != 0 {
		t.Fatalf("ooo.Core.Cycle with LoadClassifier allocated %.3f times per cycle", allocs)
	}
	if c.CPIStack()[obs.StallMemRemote] == 0 {
		t.Fatal("classifier was never consulted: bshr.remote-owner bucket is empty")
	}
	if got := c.CPIStack().Total(); got != now {
		t.Fatalf("CPI stack total = %d, want %d (one bucket per cycle)", got, now)
	}
}

// TestSkipCyclesZeroAllocs: the event-driven scheduler calls SkipCycles
// for every certified no-op stretch, so the accounting bump — cycle
// count, stall counter, CPI bucket — must not allocate. Delta 0
// exercises the full path without drifting the frozen-state accounting.
func TestSkipCyclesZeroAllocs(t *testing.T) {
	c, _ := coreFor(t, allocKernel, FixedLatencyMem{Cycles: 20}, nil)
	now := uint64(0)
	for ; now < 1_000; now++ {
		c.Cycle(now)
		if c.Err() != nil || c.Done() {
			t.Fatalf("warmup ended early: err=%v done=%v", c.Err(), c.Done())
		}
	}
	if allocs := testing.AllocsPerRun(10_000, func() {
		c.SkipCycles(now, 0)
	}); allocs != 0 {
		t.Fatalf("ooo.Core.SkipCycles allocated %.3f times per call", allocs)
	}
}
