package ooo

import (
	"testing"
)

// TestCycleZeroAllocs: the per-cycle core path — dispatch, issue,
// completion, commit, including the ring-buffer RUU and the hand-rolled
// heaps — must not allocate in steady state. The kernel mixes loads,
// stores, ALU ops, and branches; FixedLatencyMem keeps the completion
// heap busy.
func TestCycleZeroAllocs(t *testing.T) {
	src := `
        .data
buf:    .space 16384
        .text
        li   r5, 100000000    # effectively infinite for the test
outer:  la   r1, buf
        li   r2, 2048
loop:   sd   r2, 0(r1)
        ld   r3, 0(r1)
        add  r4, r4, r3
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, loop
        addi r5, r5, -1
        bne  r5, zero, outer
        halt
`
	c, _ := coreFor(t, src, FixedLatencyMem{Cycles: 20}, nil)
	now := uint64(0)
	for ; now < 50_000; now++ { // warmup: grow heaps, wakeup slices, maps
		c.Cycle(now)
		if c.Err() != nil || c.Done() {
			t.Fatalf("warmup ended early: err=%v done=%v", c.Err(), c.Done())
		}
	}
	if allocs := testing.AllocsPerRun(20_000, func() {
		c.Cycle(now)
		now++
	}); allocs != 0 {
		t.Fatalf("ooo.Core.Cycle allocated %.3f times per cycle in steady state", allocs)
	}
}
