// Package ooo implements the out-of-order core timing model shared by
// every machine: a Register Update Unit (RUU) instruction window, a
// load/store queue with store-to-load forwarding, configurable issue and
// commit widths, per-class operation latencies, and perfect branch
// prediction — the paper's processor model (8-way issue, 256-entry RUU,
// LSQ of half the RUU size, loads access the cache at issue time, stores
// at commit time).
//
// The core is memory-system agnostic: loads and committed memory
// operations are delegated to a MemPort, which the DataScalar node
// (internal/core), the traditional machine (internal/traditional), and
// the perfect-cache baseline implement differently. The MemPort contract
// is the key to the paper's cache-correspondence protocol: the core calls
// CommitLoad/CommitStore in architectural program order, which is
// identical at every node, so commit-time cache updates stay correspondent
// however differently the nodes issued.
package ooo

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/wisc-arch/datascalar/internal/cache"

	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/isa"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// NoEvent is the NextEventCycle sentinel for "no self-scheduled event":
// the core cannot act again until an external completion arrives.
const NoEvent = math.MaxUint64

// Source supplies the committed-path dynamic instruction stream (perfect
// branch prediction makes the fetched path equal the committed path).
type Source interface {
	// Next returns the next dynamic instruction, or ok=false at program
	// end.
	Next() (d emu.Dyn, ok bool, err error)
}

// LoadToken identifies an in-flight load for completion callbacks; it is
// the load's dynamic sequence number.
type LoadToken uint64

// MemPort is the memory system seen by one core.
type MemPort interface {
	// IssueLoad is called when a (non-forwarded) load issues. It returns
	// the cycle the data will be ready, or pending=true if the latency is
	// unknown (e.g. the operand must arrive by broadcast); a pending load
	// is finished later via Core.CompleteLoad.
	IssueLoad(now uint64, tok LoadToken, addr uint64, size int) (doneAt uint64, pending bool)
	// CommitLoad is called, in program order, when a non-forwarded load
	// commits. Implementations update commit-time cache state here. tok
	// is the same token passed to IssueLoad, so implementations can match
	// commit-time against issue-time events (false hit/miss detection).
	CommitLoad(now uint64, tok LoadToken, addr uint64, size int)
	// CommitStore is called, in program order, when a store commits.
	CommitStore(now uint64, addr uint64, size int)
}

// LoadClassifier is the optional MemPort extension cycle attribution
// consults when the oldest instruction in the window is a load inside
// the memory system: it names the leaf cause currently blocking that
// load (local-miss service, a remote owner that has not pushed yet, the
// retry/backoff protocol, interconnect contention, or wire
// serialization; StallExec for a plain cache hit in flight). The answer
// must be a pure function of simulator state that stays constant across
// any stretch of cycles the machine's next-event scheduler certifies as
// no-ops — that is what keeps CPI stacks bit-identical with cycle
// skipping on and off. Ports that do not implement it charge in-flight
// loads to StallExec.
type LoadClassifier interface {
	ClassifyLoad(now uint64, tok LoadToken, addr uint64) obs.StallKind
}

// PrivatePort is the optional MemPort extension for result-communication
// regions (paper Section 5.1). When the port implements it and
// UsePrivate reports true, memory operations flagged Private bypass the
// ordinary cache path: private loads complete via IssuePrivateLoad with
// no commit-time bookkeeping, and private stores commit via
// CommitPrivateStore. Ports that leave UsePrivate false (or do not
// implement the interface) see private operations as ordinary ones.
type PrivatePort interface {
	// UsePrivate reports whether private handling is enabled.
	UsePrivate() bool
	// IssuePrivateLoad returns the completion cycle of an uncached
	// private load.
	IssuePrivateLoad(now uint64, addr uint64, size int) uint64
	// CommitPrivateStore completes an uncached private store.
	CommitPrivateStore(now uint64, addr uint64, size int)
}

// Config holds the core parameters.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	// FwdDist is the maximum program-order distance (in dynamic
	// instructions) across which a store forwards to a load. The decision
	// is made purely from program order so that every DataScalar node
	// makes the same one; see the package comment.
	FwdDist uint64
	// ICache, when non-nil, models a fetch-side instruction cache: a
	// fetch miss stalls dispatch for IFetchMissCycles while the line is
	// filled from local memory. Program text is replicated at every
	// DataScalar node (and held on-chip by the baseline), so instruction
	// fills are always local and never generate interconnect traffic —
	// which is why the default configuration (nil) models fetch as
	// perfect, like the paper's evaluation effectively does once text is
	// replicated.
	ICache *cache.Config
	// IFetchMissCycles is the dispatch stall charged per I-cache miss.
	IFetchMissCycles uint64
	// Latency is the execution latency per functional-unit class; the
	// ClassLoad entry is unused (the MemPort decides load latency) and
	// ClassStore is the commit-readiness latency.
	Latency [isa.NumClasses]uint64
	// NoCycleSkip forces the standalone Run driver back to strict
	// cycle-by-cycle polling, disabling next-event cycle skipping. Results
	// are bit-identical either way (the differential suite proves it);
	// the flag exists for that differential testing and for debugging.
	NoCycleSkip bool
}

// DefaultConfig returns the paper's core: 8-way fetch/issue/commit, 256
// RUU entries, a 128-entry LSQ, and conventional latencies.
func DefaultConfig() Config {
	var lat [isa.NumClasses]uint64
	lat[isa.ClassIntALU] = 1
	lat[isa.ClassIntMul] = 3
	lat[isa.ClassIntDiv] = 12
	lat[isa.ClassFPAdd] = 2
	lat[isa.ClassFPMul] = 4
	lat[isa.ClassFPDiv] = 12
	lat[isa.ClassLoad] = 1
	lat[isa.ClassStore] = 1
	lat[isa.ClassBranch] = 1
	lat[isa.ClassMisc] = 1
	return Config{
		FetchWidth:  8,
		IssueWidth:  8,
		CommitWidth: 8,
		RUUSize:     256,
		LSQSize:     128,
		FwdDist:     128,
		Latency:     lat,
	}
}

// Validate checks structural soundness.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("ooo: widths must be positive")
	}
	if c.RUUSize <= 0 || c.LSQSize <= 0 {
		return fmt.Errorf("ooo: RUU and LSQ sizes must be positive")
	}
	return nil
}

// Stats counts core events.
type Stats struct {
	Cycles      uint64
	Committed   uint64
	Loads       uint64
	Stores      uint64
	FwdLoads    uint64 // loads satisfied by store forwarding
	PendingLds  uint64 // loads that issued with unknown latency
	WindowFullC uint64 // cycles dispatch stalled on a full RUU
	LSQFullC    uint64 // cycles dispatch stalled on a full LSQ
	IFetchMiss  uint64 // instruction-cache misses (when an I-cache is configured)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	return stats.Ratio{Part: s.Committed, Whole: s.Cycles}.Value()
}

type uopState uint8

const (
	stDispatched uopState = iota
	stIssued
	stCompleted
)

type uop struct {
	seq    uint64
	dyn    emu.Dyn
	state  uopState
	doneAt uint64
	// waiting counts distinct unresolved producers. Consumers to notify
	// at completion live in the producer's wakeup bitmap row (Core.wake),
	// one bit per RUU slot, so a consumer with several dependences on the
	// same producer costs one bit and one waiting count.
	waiting int
	// fwdFrom is the store this load forwards from (by seq), or 0 with
	// fwd=false.
	fwdFrom uint64
	fwd     bool
	inLSQ   bool
}

// completion-event heap ordered by (doneAt, seq). The heap is hand-rolled
// rather than container/heap so pushes never box the event into an
// interface — Cycle runs once per simulated cycle per core, and the two
// heap pushes per instruction were the core's dominant allocation source.
// The (at, seq) order is total, so the pop sequence is identical to the
// container/heap implementation it replaces.
type compEvent struct {
	at  uint64
	seq uint64
}
type compHeap []compEvent

func compLess(a, b compEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *compHeap) push(e compEvent) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !compLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *compHeap) pop() compEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && compLess(s[l], s[min]) {
			min = l
		}
		if r < n && compLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// The ready set is a bitmap over RUU slots rather than a heap of seqs:
// one bit per slot, scanned with math/bits.TrailingZeros64. The window
// always holds the contiguous seq range [head, nextSeq), so slot order
// starting from head%RUUSize and wrapping IS seq order — a circular
// first-set-bit scan pops the oldest ready instruction without any heap
// discipline, and set/clear are single OR/AND-NOT word ops. (The heap
// this replaced survives in readyselect_bench_test.go as the
// BenchmarkReadySelect baseline.)

// Core is one out-of-order processor.
type Core struct {
	cfg  Config
	src  Source
	mem  MemPort
	priv PrivatePort    // non-nil when mem implements PrivatePort
	cls  LoadClassifier // non-nil when mem implements LoadClassifier

	// ruu is the RUU as a ring buffer: the window always holds the
	// contiguous seq range [head, nextSeq), so uop seq lives at slot
	// seq % RUUSize and slot reuse preallocates every uop (and its wakeup
	// slice) exactly once — the map of pointers this replaces allocated
	// per dispatched instruction.
	ruu     []uop
	head    uint64 // oldest seq in window (commit pointer)
	nextSeq uint64 // next seq to dispatch
	lsqUsed int

	lastWriter [isa.NumIntRegs + isa.NumFPRegs]struct {
		seq   uint64
		valid bool
	}
	// lastStore maps 8-byte-aligned chunk -> last store touching it.
	lastStore map[uint64]storeRef

	comp compHeap
	// readyBits has one bit per RUU slot: set iff that slot holds a
	// dispatched uop with waiting == 0 that has not yet issued. readyCount
	// mirrors the population count so emptiness checks are O(1).
	readyBits  []uint64
	readyCount int
	// wake is the wakeup matrix: row p (wakeWords words starting at
	// p*wakeWords) is producer slot p's consumer set, one bit per consumer
	// slot. complete() drains and zeroes a row; admit() zeroes the
	// recycled slot's row defensively.
	wake      []uint64
	wakeWords int

	srcDone bool
	err     error
	// skid holds one instruction fetched past a full LSQ or a fetch
	// miss, redelivered before the next stream pull.
	skid    emu.Dyn
	hasSkid bool
	// icache models the fetch path when configured.
	icache          *cache.Cache
	fetchStallUntil uint64

	stats          Stats
	lastCommitAt   uint64
	regRefsScratch []isa.RegRef

	// stack is the core's exhaustive cycle attribution: Cycle and
	// SkipCycles charge every counted cycle to exactly one bucket, so
	// stack.Total() == stats.Cycles at all times (machines top the stack
	// up for cycles they never hand the core — dead or halted nodes).
	// Always on: attribution is a pure function of timing state, so it
	// cannot perturb a run, and the fixed array never allocates.
	stack obs.CPIStack
}

// lookup returns the in-window uop with the given seq, or nil when seq
// has already committed (or was never dispatched). The window is the
// contiguous range [head, nextSeq), so a range check replaces the map
// probe.
func (c *Core) lookup(seq uint64) *uop {
	if seq < c.head || seq >= c.nextSeq {
		return nil
	}
	return &c.ruu[seq%uint64(len(c.ruu))]
}

// windowLen returns the current RUU occupancy.
func (c *Core) windowLen() int { return int(c.nextSeq - c.head) }

// setReady marks the uop in slot as ready to issue. The caller guarantees
// the bit is currently clear: a dispatched uop reaches waiting == 0
// exactly once, and admit only calls this for a freshly claimed slot.
//
//dsvet:hotpath
func (c *Core) setReady(slot uint64) {
	c.readyBits[slot>>6] |= 1 << (slot & 63)
	c.readyCount++
}

// popReadySlot removes and returns the oldest ready slot. Oldest means
// smallest seq: the window is the contiguous range [head, nextSeq), so a
// circular scan of slots starting at head%RUUSize visits uops in seq
// order, and the first set bit is the oldest ready instruction. The
// caller guarantees readyCount > 0.
//
//dsvet:hotpath
func (c *Core) popReadySlot() uint64 {
	start := c.head % uint64(len(c.ruu))
	wi := int(start >> 6)
	off := start & 63
	// Bits at or above the head position in the head word come first...
	if w := c.readyBits[wi] &^ (1<<off - 1); w != 0 {
		b := uint64(bits.TrailingZeros64(w))
		slot := uint64(wi)<<6 | b
		c.readyBits[wi] &^= 1 << b
		c.readyCount--
		return slot
	}
	// ...then the remaining words circularly, with the head word's low
	// bits (slots that wrapped past the end of the ring) checked last.
	nw := len(c.readyBits)
	for i := 1; i <= nw; i++ {
		j := wi + i
		if j >= nw {
			j -= nw
		}
		w := c.readyBits[j]
		if j == wi {
			w &= 1<<off - 1
		}
		if w != 0 {
			b := uint64(bits.TrailingZeros64(w))
			slot := uint64(j)<<6 | b
			c.readyBits[j] &^= 1 << b
			c.readyCount--
			return slot
		}
	}
	panic("ooo: popReadySlot with empty ready set")
}

// addDep records that u must wait for producer p to complete, by setting
// u's bit in p's wakeup row. A bit already set means u already depends on
// p through another operand (rs1 == rs2, or a register plus a memory
// dependence on the same store); one completion satisfies every such
// dependence at once, so waiting is counted per distinct producer.
//
//dsvet:hotpath
func (c *Core) addDep(p, u *uop) {
	us := u.seq % uint64(len(c.ruu))
	w := &c.wake[(p.seq%uint64(len(c.ruu)))*uint64(c.wakeWords)+us>>6]
	bit := uint64(1) << (us & 63)
	if *w&bit == 0 {
		*w |= bit
		u.waiting++
	}
}

type storeRef struct {
	seq  uint64
	addr uint64
	size int
	// private marks stores inside a result-communication region. They
	// must never forward to non-private loads: at DataScalar nodes that
	// skip the region, the store is absent from the stream and cannot
	// forward, so the owner forwarding would elide a broadcast the
	// skippers are waiting on.
	private bool
}

// New creates a core pulling instructions from src with memory system
// mem. It panics on invalid configuration.
func New(cfg Config, src Source, mem MemPort) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nw := (cfg.RUUSize + 63) / 64
	c := &Core{
		cfg:       cfg,
		src:       src,
		mem:       mem,
		ruu:       make([]uop, cfg.RUUSize),
		lastStore: make(map[uint64]storeRef),
		readyBits: make([]uint64, nw),
		wake:      make([]uint64, cfg.RUUSize*nw),
		wakeWords: nw,
	}
	if p, ok := mem.(PrivatePort); ok {
		c.priv = p
	}
	if lc, ok := mem.(LoadClassifier); ok {
		c.cls = lc
	}
	if cfg.ICache != nil {
		c.icache = cache.New(*cfg.ICache)
	}
	return c
}

// isPrivate reports whether u takes the result-communication private
// path.
func (c *Core) isPrivate(u *uop) bool {
	return u.dyn.Private && c.priv != nil && c.priv.UsePrivate()
}

// Stats returns the core counters.
func (c *Core) Stats() *Stats { return &c.stats }

// Err returns the first stream error encountered, if any.
func (c *Core) Err() error { return c.err }

// Done reports whether the program has fully committed.
func (c *Core) Done() bool {
	return c.srcDone && c.head == c.nextSeq
}

// Committed returns the number of committed instructions.
func (c *Core) Committed() uint64 { return c.stats.Committed }

// LastCommitCycle returns the cycle of the most recent commit, for
// deadlock watchdogs.
func (c *Core) LastCommitCycle() uint64 { return c.lastCommitAt }

// CompleteLoad finishes a pending load. The machine calls this when the
// operand arrives (e.g. by broadcast); at must be >= the current cycle.
func (c *Core) CompleteLoad(tok LoadToken, at uint64) {
	u := c.lookup(uint64(tok))
	if u == nil || u.state != stIssued {
		// The load may have been satisfied already (e.g. duplicate
		// completion); ignore.
		return
	}
	u.doneAt = at
	c.comp.push(compEvent{at: at, seq: u.seq})
}

// Cycle advances the core one clock. Stage order within a cycle:
// completions, commit, issue, dispatch — so a value produced this cycle
// wakes consumers next cycle, and commit frees window slots for this
// cycle's dispatch. Every cycle is charged to exactly one CPI bucket:
// commit when at least one instruction retired, otherwise whatever
// StallClass names as blocking the oldest instruction.
//
// Cycle is allocation-free in steady state (TestCycleZeroAllocs);
// dsvet:hotpath keeps it that way statically.
//
//dsvet:hotpath
func (c *Core) Cycle(now uint64) {
	c.stats.Cycles++
	committed0 := c.stats.Committed
	c.complete(now)
	c.commit(now)
	c.issue(now)
	c.dispatch(now)
	if c.stats.Committed > committed0 {
		c.stack[obs.StallCommit]++
	} else {
		c.stack[c.StallClass(now)]++
	}
}

// CPIStack returns the core's cycle-attribution stack. Machines use the
// pointer both to read the stack into results and to top it up for
// machine cycles the core never ran (dead or halted nodes), keeping the
// exhaustiveness invariant stack.Total() == machine cycles.
func (c *Core) CPIStack() *obs.CPIStack { return &c.stack }

// StallClass names the leaf cause blocking the core this cycle, for
// cycles that committed nothing. It is a pure function of core (and,
// through LoadClassifier, memory-system) state: inside any stretch of
// cycles NextEventCycle certifies as no-ops the answer is constant,
// which is what lets SkipCycles attribute a whole stretch in one call
// and keeps CPI stacks bit-identical with cycle skipping on and off.
//
// Precedence when several conditions hold: a halted core is just done;
// an empty window is the front end's fault (I-cache miss in flight, or
// fill transient); a memory-bound oldest instruction charges the memory
// system even when the window has backed up full behind it (the
// backpressure is a symptom, the miss is the cause); only then do the
// window-resource stalls (RUU, LSQ) and the fetch stall claim the
// cycle; everything left is pipeline execution latency.
func (c *Core) StallClass(now uint64) obs.StallKind {
	if c.Done() {
		return obs.StallHalted
	}
	if c.windowLen() == 0 {
		if c.hasSkid && c.icache != nil && now < c.fetchStallUntil {
			return obs.StallFetch
		}
		return obs.StallEmptyWindow
	}
	u := c.lookup(c.head)
	if u.state == stIssued {
		op := u.dyn.Instr.Op
		if op.IsLoad() && !u.fwd && !c.isPrivate(u) && c.cls != nil {
			return c.cls.ClassifyLoad(now, LoadToken(u.seq), u.dyn.EA)
		}
	}
	if !c.srcDone {
		switch {
		case c.windowLen() >= c.cfg.RUUSize:
			return obs.StallRUUFull
		case c.hasSkid && c.skid.Instr.Op.IsMem() && c.lsqUsed >= c.cfg.LSQSize:
			return obs.StallLSQFull
		case c.hasSkid && c.icache != nil && now < c.fetchStallUntil:
			return obs.StallFetch
		}
	}
	return obs.StallExec
}

// NextEventCycle reports when the core can next change state. It returns
// (next, true) when Cycle(t) is provably a no-op for every t in
// [now, next) — apart from the deterministic per-cycle stall counters,
// which SkipCycles replays in bulk — so a scheduler may jump straight to
// next. It returns (_, false) when the core might act at now itself, in
// which case the caller must run the cycle normally. next == NoEvent
// means the core has no self-scheduled event and can only be woken
// externally (CompleteLoad from a broadcast or bus response).
//
// The stage-by-stage argument, mirroring Cycle's order:
//
//   - complete: acts only when the completion heap's head is due
//     (comp[0].at <= t); the earliest such t is comp[0].at.
//   - commit: acts only when the window head is completed — a state that
//     can only be produced by an earlier complete, which is an event.
//   - issue: acts only when the ready heap is non-empty; entries are only
//     added by admit (dispatch) or complete, both events.
//   - dispatch: with the source drained it is a pure no-op. With a full
//     RUU it increments WindowFullC and returns; with the skid buffer
//     holding a memory op against a full LSQ it increments LSQFullC and
//     returns — both replayed exactly by SkipCycles. A fetch-stalled skid
//     (I-cache miss in flight) is a pure no-op until fetchStallUntil.
//     In every other state dispatch would pull the source or admit the
//     skid, which is progress, so the core is not skippable.
func (c *Core) NextEventCycle(now uint64) (uint64, bool) {
	// Commit possible this cycle?
	if u := c.lookup(c.head); u != nil && u.state == stCompleted {
		return now, false
	}
	if c.readyCount > 0 {
		return now, false
	}
	next := uint64(NoEvent)
	if len(c.comp) > 0 {
		if c.comp[0].at <= now {
			return now, false
		}
		next = c.comp[0].at
	}
	if !c.srcDone {
		switch {
		case c.windowLen() >= c.cfg.RUUSize:
			// Window-full stall: counted by SkipCycles, freed only by a
			// completion or external wakeup (already folded into next).
		case c.hasSkid && c.skid.Instr.Op.IsMem() && c.lsqUsed >= c.cfg.LSQSize:
			// LSQ-full stall: likewise.
		case c.hasSkid && c.icache != nil && now < c.fetchStallUntil:
			if c.fetchStallUntil < next {
				next = c.fetchStallUntil
			}
		default:
			// Dispatch would fetch or admit: the core can act now.
			return now, false
		}
	}
	return next, true
}

// SkipCycles advances the core's per-cycle accounting over delta cycles
// starting at now that a scheduler proved (via NextEventCycle) to be
// no-ops: the active cycle count, whichever dispatch stall counter the
// frozen state would have incremented each cycle, and the CPI bucket
// StallClass names — constant across the stretch precisely because the
// state is frozen. Calling it with the core in any other state breaks
// bit-identity with the polled loop.
//
//dsvet:hotpath
func (c *Core) SkipCycles(now, delta uint64) {
	c.stats.Cycles += delta
	c.stack[c.StallClass(now)] += delta
	if c.srcDone {
		return
	}
	if c.windowLen() >= c.cfg.RUUSize {
		c.stats.WindowFullC += delta
	} else if c.hasSkid && c.skid.Instr.Op.IsMem() && c.lsqUsed >= c.cfg.LSQSize {
		c.stats.LSQFullC += delta
	}
}

func (c *Core) complete(now uint64) {
	for len(c.comp) > 0 && c.comp[0].at <= now {
		ev := c.comp.pop()
		u := c.lookup(ev.seq)
		if u == nil || u.state == stCompleted || u.doneAt != ev.at {
			continue // stale event
		}
		u.state = stCompleted
		// Drain the producer's wakeup row: each set bit is a distinct
		// consumer slot. Slot-scan order differs from seq order, but the
		// effects (waiting decrements, ready-bit sets) commute, and the
		// ready bitmap pops in seq order regardless of set order.
		row := c.wake[(ev.seq%uint64(len(c.ruu)))*uint64(c.wakeWords):]
		for wi := 0; wi < c.wakeWords; wi++ {
			w := row[wi]
			if w == 0 {
				continue
			}
			row[wi] = 0
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				d := &c.ruu[wi<<6|b]
				d.waiting--
				if d.waiting == 0 && d.state == stDispatched {
					c.setReady(uint64(wi<<6 | b))
				}
			}
		}
	}
}

func (c *Core) commit(now uint64) {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		u := c.lookup(c.head)
		if u == nil || u.state != stCompleted {
			return
		}
		op := u.dyn.Instr.Op
		if op.IsMem() && !u.fwd {
			switch {
			case c.isPrivate(u):
				// Private accesses bypass the caches entirely; only
				// stores need a commit action (the write to local
				// memory), and no correspondence bookkeeping happens.
				if op.IsStore() {
					c.priv.CommitPrivateStore(now, u.dyn.EA, op.MemBytes())
				}
			case op.IsStore():
				c.mem.CommitStore(now, u.dyn.EA, op.MemBytes())
			default:
				c.mem.CommitLoad(now, LoadToken(u.seq), u.dyn.EA, op.MemBytes())
			}
		}
		if u.inLSQ {
			c.lsqUsed--
		}
		c.head++
		c.stats.Committed++
		c.lastCommitAt = now
	}
}

func (c *Core) issue(now uint64) {
	for n := 0; n < c.cfg.IssueWidth && c.readyCount > 0; n++ {
		u := &c.ruu[c.popReadySlot()]
		seq := u.seq
		u.state = stIssued
		op := u.dyn.Instr.Op
		switch {
		case op.IsLoad() && !u.fwd && c.isPrivate(u):
			c.stats.Loads++
			u.doneAt = c.priv.IssuePrivateLoad(now, u.dyn.EA, op.MemBytes())
		case op.IsLoad() && !u.fwd:
			c.stats.Loads++
			done, pending := c.mem.IssueLoad(now, LoadToken(seq), u.dyn.EA, op.MemBytes())
			if pending {
				c.stats.PendingLds++
				continue // completion arrives via CompleteLoad
			}
			u.doneAt = done
		case op.IsLoad() && u.fwd:
			c.stats.Loads++
			c.stats.FwdLoads++
			u.doneAt = now + 1
		case op.IsStore():
			c.stats.Stores++
			u.doneAt = now + c.cfg.Latency[isa.ClassStore]
		default:
			u.doneAt = now + c.cfg.Latency[op.Class()]
		}
		c.comp.push(compEvent{at: u.doneAt, seq: seq})
	}
}

func (c *Core) dispatch(now uint64) {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.srcDone {
			return
		}
		if c.windowLen() >= c.cfg.RUUSize {
			c.stats.WindowFullC++
			return
		}
		// Peek memory-op LSQ capacity: we must know the instruction to
		// check, so fetch then possibly stall next cycle instead; to keep
		// the model simple we check after fetch and absorb one overshoot
		// by holding the instruction in a one-entry skid buffer.
		d, ok, err := c.nextDyn()
		if err != nil {
			c.err = err
			c.srcDone = true
			return
		}
		if !ok {
			c.srcDone = true
			return
		}
		if d.Instr.Op.IsMem() && c.lsqUsed >= c.cfg.LSQSize {
			c.stats.LSQFullC++
			c.pushback(d)
			return
		}
		if c.icache != nil {
			if now < c.fetchStallUntil {
				c.pushback(d)
				return
			}
			if !c.icache.Access(d.PC, false).Hit {
				// Fill from local memory; dispatch resumes when the line
				// arrives. The instruction itself dispatches then.
				c.stats.IFetchMiss++
				c.fetchStallUntil = now + c.cfg.IFetchMissCycles
				c.pushback(d)
				return
			}
		}
		c.admit(now, d)
	}
}

func (c *Core) pushback(d emu.Dyn) {
	c.skid = d
	c.hasSkid = true
}

func (c *Core) nextDyn() (emu.Dyn, bool, error) {
	if c.hasSkid {
		c.hasSkid = false
		return c.skid, true, nil
	}
	return c.src.Next()
}

func (c *Core) admit(now uint64, d emu.Dyn) {
	// Claim the next ring slot and zero its wakeup row. complete()
	// already zeroed it when the slot's previous occupant finished, so
	// this is defensive — but a stale bit would silently corrupt a
	// waiting count, and wakeWords stores per admit are noise next to the
	// map work below.
	slot := c.nextSeq % uint64(len(c.ruu))
	u := &c.ruu[slot]
	*u = uop{seq: c.nextSeq, dyn: d}
	row := c.wake[slot*uint64(c.wakeWords):]
	for wi := 0; wi < c.wakeWords; wi++ {
		row[wi] = 0
	}
	c.nextSeq++

	// Register dependences.
	c.regRefsScratch = d.Instr.SrcRegs(c.regRefsScratch[:0])
	for _, ref := range c.regRefsScratch {
		lw := c.lastWriter[ref.Index()]
		if !lw.valid {
			continue
		}
		if p := c.lookup(lw.seq); p != nil && p.state != stCompleted {
			c.addDep(p, u)
		}
	}

	op := d.Instr.Op
	if op.IsMem() {
		u.inLSQ = true
		c.lsqUsed++
		c.memDeps(u)
	}
	if op == isa.OpPRIVB || op == isa.OpPRIVE {
		// Region markers are store-forwarding barriers: no load may
		// forward across one. DataScalar nodes that skip a region body
		// still dispatch its markers, so the barrier falls at the same
		// program position everywhere and forwarding decisions stay
		// identical across nodes (see internal/core/resultcomm.go).
		clear(c.lastStore)
	}

	// Record destination writer after reading sources (handles rd==rs).
	if dst, ok := d.Instr.DstReg(); ok {
		c.lastWriter[dst.Index()] = struct {
			seq   uint64
			valid bool
		}{u.seq, true}
	}

	if u.waiting == 0 {
		c.setReady(slot)
	}
}

// pruneStores bounds lastStore. A ref more than FwdDist seqs old can
// never influence a forwarding decision (memDeps requires
// u.seq-ref.seq <= FwdDist and every future load has u.seq >= nextSeq),
// so stale entries are dead weight; on streaming stores they would grow
// the map — and its allocations — without bound. Sweeping only when the
// map is well past its live-entry bound (each store covers at most two
// chunks) keeps the amortized cost O(1) per store.
func (c *Core) pruneStores() {
	if uint64(len(c.lastStore)) < 4*c.cfg.FwdDist+64 {
		return
	}
	for chunk, ref := range c.lastStore {
		if ref.seq+c.cfg.FwdDist < c.nextSeq {
			delete(c.lastStore, chunk)
		}
	}
}

// memDeps establishes load/store ordering. Stores record their footprint;
// loads forward from a containing recent store (adding a dependence on
// it) or, on partial overlap, depend on the store conservatively.
// The forwarding decision uses only program-order information (seq
// distance), never node-local timing, so all DataScalar nodes decide
// identically.
func (c *Core) memDeps(u *uop) {
	op := u.dyn.Instr.Op
	lo := u.dyn.EA &^ 7
	hi := (u.dyn.EA + uint64(op.MemBytes()) - 1) &^ 7
	if op.IsStore() {
		ref := storeRef{seq: u.seq, addr: u.dyn.EA, size: op.MemBytes(), private: u.dyn.Private}
		for chunk := lo; ; chunk += 8 {
			c.lastStore[chunk] = ref
			if chunk == hi {
				break
			}
		}
		c.pruneStores()
		return
	}
	// Load: find the youngest older store overlapping any chunk.
	var best storeRef
	found := false
	for chunk := lo; ; chunk += 8 {
		if ref, ok := c.lastStore[chunk]; ok && ref.seq < u.seq {
			if overlaps(ref.addr, ref.size, u.dyn.EA, op.MemBytes()) {
				if !found || ref.seq > best.seq {
					best, found = ref, true
				}
			}
		}
		if chunk == hi {
			break
		}
	}
	if !found || u.seq-best.seq > c.cfg.FwdDist {
		return
	}
	contains := best.addr <= u.dyn.EA &&
		best.addr+uint64(best.size) >= u.dyn.EA+uint64(op.MemBytes())
	if p := c.lookup(best.seq); p != nil && p.state != stCompleted {
		c.addDep(p, u)
	}
	if contains && !(best.private && !u.dyn.Private) {
		u.fwd = true
		u.fwdFrom = best.seq
	}
	// Partial overlap: the dependence alone orders the load after the
	// store's completion; the load then accesses memory normally.
}

func overlaps(aAddr uint64, aSize int, bAddr uint64, bSize int) bool {
	return aAddr < bAddr+uint64(bSize) && bAddr < aAddr+uint64(aSize)
}
