package ooo

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/emu"
	"github.com/wisc-arch/datascalar/internal/isa"
)

// recordingMem wraps a MemPort and records every call for assertions.
type recordingMem struct {
	inner      MemPort
	issueAddrs []uint64
	commits    []struct {
		store bool
		addr  uint64
	}
}

func (r *recordingMem) IssueLoad(now uint64, tok LoadToken, addr uint64, size int) (uint64, bool) {
	r.issueAddrs = append(r.issueAddrs, addr)
	return r.inner.IssueLoad(now, tok, addr, size)
}
func (r *recordingMem) CommitLoad(now uint64, tok LoadToken, addr uint64, size int) {
	r.commits = append(r.commits, struct {
		store bool
		addr  uint64
	}{false, addr})
	r.inner.CommitLoad(now, tok, addr, size)
}
func (r *recordingMem) CommitStore(now uint64, addr uint64, size int) {
	r.commits = append(r.commits, struct {
		store bool
		addr  uint64
	}{true, addr})
	r.inner.CommitStore(now, addr, size)
}

func coreFor(t *testing.T, src string, mem MemPort, mut func(*Config)) (*Core, *emu.Machine) {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := emu.New(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg, NewEmuSource(m, 0), mem), m
}

func mustRun(t *testing.T, c *Core) uint64 {
	t.Helper()
	cycles, err := Run(c, 100_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return cycles
}

func TestIndependentALUThroughput(t *testing.T) {
	// 64 independent LIs + halt: with 8-wide everything, IPC should be
	// well above 4.
	src := "\t.text\n"
	for i := 0; i < 64; i++ {
		src += "\tli r1, 1\n"
	}
	src += "\thalt\n"
	c, _ := coreFor(t, src, PerfectMem{}, nil)
	cycles := mustRun(t, c)
	ipc := float64(c.Committed()) / float64(cycles)
	if ipc < 4 {
		t.Fatalf("independent ALU IPC = %.2f, want >= 4 (cycles=%d committed=%d)",
			ipc, cycles, c.Committed())
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// 64 dependent adds must take at least 64 cycles.
	src := "\t.text\n\tli r1, 0\n"
	for i := 0; i < 64; i++ {
		src += "\taddi r1, r1, 1\n"
	}
	src += "\thalt\n"
	c, m := coreFor(t, src, PerfectMem{}, nil)
	cycles := mustRun(t, c)
	if cycles < 64 {
		t.Fatalf("dependent chain finished in %d cycles", cycles)
	}
	if m.Reg(1) != 64 {
		t.Fatalf("functional result r1 = %d", m.Reg(1))
	}
}

func TestMulDivLatencies(t *testing.T) {
	// A chain of 8 dependent MULs at latency 3 needs >= 24 cycles.
	src := "\t.text\n\tli r1, 1\n\tli r2, 3\n"
	for i := 0; i < 8; i++ {
		src += "\tmul r1, r1, r2\n"
	}
	src += "\thalt\n"
	c, _ := coreFor(t, src, PerfectMem{}, nil)
	cycles := mustRun(t, c)
	if cycles < 24 {
		t.Fatalf("mul chain = %d cycles, want >= 24", cycles)
	}
}

func TestLoadLatencyExposedOnDependentChain(t *testing.T) {
	// Pointer-chase: each load's address depends on the previous load.
	// With 20-cycle memory, 8 chained loads need >= 160 cycles.
	src := `
        .data
p0:     .word p1
p1:     .word p2
p2:     .word p3
p3:     .word p4
p4:     .word p5
p5:     .word p6
p6:     .word p7
p7:     .word p0
        .text
        la   r1, p0
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        ld   r1, 0(r1)
        halt
`
	c, _ := coreFor(t, src, FixedLatencyMem{Cycles: 20}, nil)
	cycles := mustRun(t, c)
	if cycles < 160 {
		t.Fatalf("chained loads = %d cycles, want >= 160", cycles)
	}

	// Independent loads with the same latency overlap: much faster.
	src2 := `
        .data
arr:    .space 128
        .text
        la   r1, arr
        ld   r2, 0(r1)
        ld   r3, 8(r1)
        ld   r4, 16(r1)
        ld   r5, 24(r1)
        ld   r6, 32(r1)
        ld   r7, 40(r1)
        ld   r8, 48(r1)
        ld   r9, 56(r1)
        halt
`
	c2, _ := coreFor(t, src2, FixedLatencyMem{Cycles: 20}, nil)
	cycles2 := mustRun(t, c2)
	if cycles2 >= 100 {
		t.Fatalf("independent loads = %d cycles, want < 100 (overlap)", cycles2)
	}
}

func TestStoreForwarding(t *testing.T) {
	src := `
        .data
x:      .space 8
        .text
        la   r1, x
        li   r2, 42
        sd   r2, 0(r1)
        ld   r3, 0(r1)
        halt
`
	rec := &recordingMem{inner: FixedLatencyMem{Cycles: 50}}
	c, m := coreFor(t, src, rec, nil)
	cycles := mustRun(t, c)
	if len(rec.issueAddrs) != 0 {
		t.Fatalf("forwarded load issued to memory: %v", rec.issueAddrs)
	}
	if c.Stats().FwdLoads != 1 {
		t.Fatalf("FwdLoads = %d", c.Stats().FwdLoads)
	}
	if cycles > 30 {
		t.Fatalf("forwarded load run took %d cycles (memory is 50)", cycles)
	}
	if m.Reg(3) != 42 {
		t.Fatalf("functional r3 = %d", m.Reg(3))
	}
	// Forwarded load must not reach commit-time memory either.
	for _, cm := range rec.commits {
		if !cm.store {
			t.Fatalf("forwarded load committed to memory: %+v", rec.commits)
		}
	}
}

func TestPartialOverlapNotForwarded(t *testing.T) {
	// 4-byte store, 8-byte load over it: cannot forward, must access
	// memory after the store resolves.
	src := `
        .data
x:      .space 8
        .text
        la   r1, x
        li   r2, 7
        sw   r2, 0(r1)
        ld   r3, 0(r1)
        halt
`
	rec := &recordingMem{inner: FixedLatencyMem{Cycles: 10}}
	c, _ := coreFor(t, src, rec, nil)
	mustRun(t, c)
	if len(rec.issueAddrs) != 1 {
		t.Fatalf("partial-overlap load issues = %v, want one memory access", rec.issueAddrs)
	}
	if c.Stats().FwdLoads != 0 {
		t.Fatal("partial overlap forwarded")
	}
}

func TestForwardDistanceLimit(t *testing.T) {
	// With FwdDist = 2, a store 3+ instructions earlier cannot forward.
	src := `
        .data
x:      .space 8
        .text
        la   r1, x
        li   r2, 9
        sd   r2, 0(r1)
        nop
        nop
        nop
        ld   r3, 0(r1)
        halt
`
	rec := &recordingMem{inner: FixedLatencyMem{Cycles: 5}}
	c, _ := coreFor(t, src, rec, func(cfg *Config) { cfg.FwdDist = 2 })
	mustRun(t, c)
	if c.Stats().FwdLoads != 0 {
		t.Fatal("forwarding crossed the distance limit")
	}
	if len(rec.issueAddrs) != 1 {
		t.Fatalf("issues = %d, want 1", len(rec.issueAddrs))
	}
}

func TestCommitOrderAndAddresses(t *testing.T) {
	src := `
        .data
a:      .space 32
        .text
        la   r1, a
        li   r2, 5
        sd   r2, 0(r1)
        ld   r3, 8(r1)
        sd   r2, 16(r1)
        ld   r4, 24(r1)
        halt
`
	rec := &recordingMem{inner: FixedLatencyMem{Cycles: 3}}
	c, m := coreFor(t, src, rec, nil)
	mustRun(t, c)
	base := m.Program().Labels["a"]
	want := []struct {
		store bool
		addr  uint64
	}{
		{true, base}, {false, base + 8}, {true, base + 16}, {false, base + 24},
	}
	if len(rec.commits) != len(want) {
		t.Fatalf("commits = %+v", rec.commits)
	}
	for i, w := range want {
		if rec.commits[i] != w {
			t.Fatalf("commit %d = %+v, want %+v", i, rec.commits[i], w)
		}
	}
}

// pendingMem leaves every load pending and completes it manually.
type pendingMem struct {
	pending []LoadToken
}

func (p *pendingMem) IssueLoad(_ uint64, tok LoadToken, _ uint64, _ int) (uint64, bool) {
	p.pending = append(p.pending, tok)
	return 0, true
}
func (p *pendingMem) CommitLoad(uint64, LoadToken, uint64, int) {}
func (p *pendingMem) CommitStore(uint64, uint64, int)           {}

func TestPendingLoadCompletion(t *testing.T) {
	src := `
        .data
x:      .word 11
        .text
        la   r1, x
        ld   r2, 0(r1)
        addi r3, r2, 1
        halt
`
	pm := &pendingMem{}
	c, _ := coreFor(t, src, pm, nil)
	now := uint64(0)
	for !c.Done() && now < 10_000 {
		c.Cycle(now)
		// Complete any pending load 7 cycles after we see it.
		for _, tok := range pm.pending {
			c.CompleteLoad(tok, now+7)
		}
		pm.pending = pm.pending[:0]
		now++
	}
	if !c.Done() {
		t.Fatalf("core did not finish; committed %d", c.Committed())
	}
	if c.Stats().PendingLds != 1 {
		t.Fatalf("PendingLds = %d", c.Stats().PendingLds)
	}
}

func TestDuplicateCompletionIgnored(t *testing.T) {
	src := "\t.data\nx:\t.word 1\n\t.text\n\tla r1, x\n\tld r2, 0(r1)\n\thalt\n"
	pm := &pendingMem{}
	c, _ := coreFor(t, src, pm, nil)
	now := uint64(0)
	completed := false
	for !c.Done() && now < 1000 {
		c.Cycle(now)
		if len(pm.pending) > 0 && !completed {
			tok := pm.pending[0]
			c.CompleteLoad(tok, now+3)
			c.CompleteLoad(tok, now+5) // duplicate must be harmless
			completed = true
		}
		now++
	}
	if !c.Done() {
		t.Fatal("did not finish")
	}
}

func TestSmallWindowStalls(t *testing.T) {
	src := "\t.text\n"
	for i := 0; i < 32; i++ {
		src += "\tli r1, 1\n"
	}
	src += "\thalt\n"
	c, _ := coreFor(t, src, PerfectMem{}, func(cfg *Config) {
		cfg.RUUSize = 4
		cfg.LSQSize = 2
	})
	mustRun(t, c)
	if c.Stats().WindowFullC == 0 {
		t.Fatal("tiny window never filled")
	}
}

func TestLSQFullStalls(t *testing.T) {
	src := "\t.data\nbuf: .space 512\n\t.text\n\tla r1, buf\n"
	for i := 0; i < 32; i++ {
		src += "\tld r2, 0(r1)\n"
	}
	src += "\thalt\n"
	c, _ := coreFor(t, src, FixedLatencyMem{Cycles: 40}, func(cfg *Config) {
		cfg.LSQSize = 2
	})
	mustRun(t, c)
	if c.Stats().LSQFullC == 0 {
		t.Fatal("tiny LSQ never filled")
	}
}

func TestStatsAndDone(t *testing.T) {
	src := `
        .data
x:      .space 16
        .text
        la   r1, x
        ld   r2, 0(r1)
        sd   r2, 8(r1)
        halt
`
	c, _ := coreFor(t, src, FixedLatencyMem{Cycles: 2}, nil)
	mustRun(t, c)
	s := c.Stats()
	if s.Loads != 1 || s.Stores != 1 {
		t.Fatalf("loads=%d stores=%d", s.Loads, s.Stores)
	}
	if s.Committed != 4 {
		t.Fatalf("committed = %d", s.Committed)
	}
	if !c.Done() {
		t.Fatal("not done")
	}
	if s.IPC() <= 0 {
		t.Fatal("IPC not positive")
	}
}

func TestPerfectVsSlowMemoryIPC(t *testing.T) {
	// The same memory-bound kernel must have strictly higher IPC under
	// PerfectMem than under slow memory.
	src := "\t.data\nbuf: .space 4096\n\t.text\n\tla r1, buf\n\tli r2, 64\n" +
		"loop:\tld r3, 0(r1)\n\tadd r4, r4, r3\n\taddi r1, r1, 8\n\taddi r2, r2, -1\n\tbne r2, zero, loop\n\thalt\n"
	cPerfect, _ := coreFor(t, src, PerfectMem{}, nil)
	cycP := mustRun(t, cPerfect)
	cSlow, _ := coreFor(t, src, FixedLatencyMem{Cycles: 100}, nil)
	cycS := mustRun(t, cSlow)
	if cycP >= cycS {
		t.Fatalf("perfect %d cycles !< slow %d cycles", cycP, cycS)
	}
}

func TestEmuSourceLimit(t *testing.T) {
	src := "\t.text\nl:\tnop\n\tj l\n" // infinite loop
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.New(p)
	s := NewEmuSource(m, 100)
	n := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("limited source yielded %d", n)
	}
}

func TestSliceSource(t *testing.T) {
	dyns := []emu.Dyn{
		{Seq: 0, Instr: isa.Instr{Op: isa.OpNOP}},
		{Seq: 1, Instr: isa.Instr{Op: isa.OpNOP}},
	}
	s := NewSliceSource(dyns)
	for i := 0; i < 2; i++ {
		d, ok, err := s.Next()
		if err != nil || !ok || d.Seq != uint64(i) {
			t.Fatalf("slice source step %d: %+v %v %v", i, d, ok, err)
		}
	}
	if _, ok, _ := s.Next(); ok {
		t.Fatal("slice source did not end")
	}
}

func TestWatchdogFires(t *testing.T) {
	// A memory that never completes loads must trip the watchdog.
	src := "\t.data\nx: .word 1\n\t.text\n\tla r1, x\n\tld r2, 0(r1)\n\thalt\n"
	pm := &pendingMem{}
	c, _ := coreFor(t, src, pm, nil)
	if _, err := Run(c, 50); err == nil {
		t.Fatal("watchdog did not fire on stuck load")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.IssueWidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero issue width accepted")
	}
	bad = DefaultConfig()
	bad.RUUSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero RUU accepted")
	}
}

func TestICacheStallsFetch(t *testing.T) {
	// A loop whose body spans several lines: with a tiny I-cache the
	// first traversal misses per line; later iterations hit. Compare
	// against no I-cache.
	src := "\t.text\n\tli r1, 50\nloop:\n"
	for i := 0; i < 16; i++ {
		src += "\tli r2, 1\n"
	}
	src += "\taddi r1, r1, -1\n\tbne r1, zero, loop\n\thalt\n"

	mkCfg := func(withIC bool) Config {
		cfg := DefaultConfig()
		if withIC {
			ic := cache.Config{Name: "il1", SizeBytes: 1024, LineBytes: 32, Assoc: 1}
			cfg.ICache = &ic
			cfg.IFetchMissCycles = 10
		}
		return cfg
	}

	run := func(withIC bool) (uint64, uint64) {
		p, err := asm.Assemble("t", src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.New(p)
		if err != nil {
			t.Fatal(err)
		}
		c := New(mkCfg(withIC), NewEmuSource(m, 0), PerfectMem{})
		cycles := mustRun(t, c)
		return cycles, c.Stats().IFetchMiss
	}

	cycNo, missNo := run(false)
	cycIC, missIC := run(true)
	if missNo != 0 {
		t.Fatalf("misses without I-cache = %d", missNo)
	}
	if missIC == 0 {
		t.Fatal("no I-cache misses recorded")
	}
	if cycIC <= cycNo {
		t.Fatalf("I-cache did not cost cycles: %d vs %d", cycIC, cycNo)
	}
	// The loop body fits in 1 KB, so misses are bounded by the touched
	// lines (cold misses only), not per-iteration.
	if missIC > 8 {
		t.Fatalf("I-cache thrashing on a resident loop: %d misses", missIC)
	}
}
