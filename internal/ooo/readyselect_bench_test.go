package ooo

import (
	"testing"

	"github.com/wisc-arch/datascalar/internal/stats"
)

// readyHeap is the binary min-heap of seqs the ready bitmap replaced,
// resurrected verbatim so BenchmarkReadySelect keeps measuring the two
// schemes against each other. Both sides do the identical logical work:
// mark a scattered batch of window slots ready, then drain them in
// oldest-first order.
type readyHeap []uint64

func (h *readyHeap) push(v uint64) {
	s := append(*h, v)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[i] >= s[parent] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *readyHeap) pop() uint64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l] < s[min] {
			min = l
		}
		if r < n && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	*h = s
	return top
}

// readyWorkload is a deterministic steady-state issue pattern: batches
// of seqs, scattered within the window the way wakeups land (dependents
// of different producers complete out of order), with the window base
// sliding forward batch to batch like a committing RUU.
type readyWorkload struct {
	batches [][]uint64 // seqs to mark ready, per batch
	bases   []uint64   // window head at each batch
	window  int
}

func makeReadyWorkload(window, batchLen, batches int) readyWorkload {
	rng := stats.NewRNG(0x9d5)
	w := readyWorkload{window: window}
	base := uint64(0)
	for b := 0; b < batches; b++ {
		perm := rng.Perm(window)
		batch := make([]uint64, 0, batchLen)
		for _, p := range perm[:batchLen] {
			batch = append(batch, base+uint64(p))
		}
		w.batches = append(w.batches, batch)
		w.bases = append(w.bases, base)
		base += uint64(batchLen) // commit the drained batch; window slides
	}
	return w
}

// BenchmarkReadySelect compares the replaced seq-ordered min-heap
// against the slot-bitmap ready set on identical mark/drain traffic at
// the default 256-entry window. The bitmap's win is what motivated the
// swap: set/clear are single word ops and oldest-first selection is a
// short TrailingZeros64 scan from the head slot, with zero data
// movement; the heap pays O(log n) swaps on both push and pop.
func BenchmarkReadySelect(b *testing.B) {
	const (
		window   = 256 // DefaultConfig().RUUSize
		batchLen = 16
		batches  = 64
	)
	w := makeReadyWorkload(window, batchLen, batches)

	b.Run("heap", func(b *testing.B) {
		h := make(readyHeap, 0, window)
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for _, batch := range w.batches {
				for _, seq := range batch {
					h.push(seq)
				}
				for len(h) > 0 {
					sink += h.pop()
				}
			}
		}
		benchSink = sink
	})

	b.Run("bitmap", func(b *testing.B) {
		// Drive the real Core bit operations: setReady/popReadySlot only
		// touch readyBits, readyCount, head, and the ruu length.
		c := &Core{
			ruu:       make([]uop, window),
			readyBits: make([]uint64, window/64),
		}
		b.ReportAllocs()
		b.ResetTimer()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for bi, batch := range w.batches {
				c.head = w.bases[bi]
				for _, seq := range batch {
					c.setReady(seq % window)
				}
				for c.readyCount > 0 {
					sink += c.popReadySlot()
				}
			}
		}
		benchSink = sink
	})
}

// benchSink keeps the compiler from eliding the selection loops.
var benchSink uint64
