package ooo

import "fmt"

// Run drives a standalone core (one whose MemPort never leaves loads
// pending, or completes them internally) until the program commits fully.
// watchdog aborts the run if no instruction commits for that many cycles
// (0 uses a generous default); a firing watchdog indicates a model
// deadlock and is always a bug.
func Run(c *Core, watchdog uint64) (cycles uint64, err error) {
	if watchdog == 0 {
		watchdog = 1_000_000
	}
	now := uint64(0)
	lastCommitted := uint64(0)
	lastProgress := uint64(0)
	for !c.Done() {
		// Jump over provably idle stretches (see NextEventCycle). The
		// target is capped so a wedged core still trips the watchdog at
		// the exact cycle the polled loop would have.
		if !c.cfg.NoCycleSkip {
			if next, ok := c.NextEventCycle(now); ok && next > now {
				if limit := lastProgress + watchdog + 1; next > limit {
					next = limit
				}
				c.SkipCycles(now, next-now)
				now = next
			}
		}
		c.Cycle(now)
		if c.Err() != nil {
			return now, c.Err()
		}
		if c.Committed() != lastCommitted {
			lastCommitted = c.Committed()
			lastProgress = now
		} else if now-lastProgress > watchdog {
			return now, fmt.Errorf("ooo: no commit progress for %d cycles at cycle %d (committed %d)",
				watchdog, now, c.Committed())
		}
		now++
	}
	return now, nil
}
