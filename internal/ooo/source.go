package ooo

import (
	"github.com/wisc-arch/datascalar/internal/emu"
)

// EmuSource adapts a functional emulator to the Source interface,
// optionally bounded to a maximum instruction count (the paper runs each
// benchmark "for N instructions or to completion, whichever came first").
type EmuSource struct {
	m     *emu.Machine
	limit uint64 // 0 = unlimited
	count uint64
}

// NewEmuSource wraps machine m, stopping after limit instructions
// (0 means run to completion).
func NewEmuSource(m *emu.Machine, limit uint64) *EmuSource {
	return &EmuSource{m: m, limit: limit}
}

// Next implements Source.
func (s *EmuSource) Next() (emu.Dyn, bool, error) {
	if s.m.Halted() || (s.limit != 0 && s.count >= s.limit) {
		return emu.Dyn{}, false, nil
	}
	d, err := s.m.Step()
	if err != nil {
		if err == emu.ErrHalted {
			return emu.Dyn{}, false, nil
		}
		return emu.Dyn{}, false, err
	}
	s.count++
	return d, true, nil
}

// Machine returns the wrapped emulator.
func (s *EmuSource) Machine() *emu.Machine { return s.m }

// SliceSource replays a pre-recorded dynamic stream; tests use it to
// drive the core with hand-built schedules.
type SliceSource struct {
	dyns []emu.Dyn
	pos  int
}

// NewSliceSource wraps a recorded stream.
func NewSliceSource(dyns []emu.Dyn) *SliceSource { return &SliceSource{dyns: dyns} }

// Next implements Source.
func (s *SliceSource) Next() (emu.Dyn, bool, error) {
	if s.pos >= len(s.dyns) {
		return emu.Dyn{}, false, nil
	}
	d := s.dyns[s.pos]
	s.pos++
	return d, true, nil
}

// PerfectMem is the paper's "perfect data cache" baseline: every load
// completes in a single cycle and commits are free.
type PerfectMem struct{}

// IssueLoad implements MemPort.
func (PerfectMem) IssueLoad(now uint64, _ LoadToken, _ uint64, _ int) (uint64, bool) {
	return now + 1, false
}

// CommitLoad implements MemPort.
func (PerfectMem) CommitLoad(uint64, LoadToken, uint64, int) {}

// CommitStore implements MemPort.
func (PerfectMem) CommitStore(uint64, uint64, int) {}

// FixedLatencyMem completes every load after a fixed latency; tests and
// simple models use it.
type FixedLatencyMem struct {
	Cycles uint64
}

// IssueLoad implements MemPort.
func (m FixedLatencyMem) IssueLoad(now uint64, _ LoadToken, _ uint64, _ int) (uint64, bool) {
	return now + m.Cycles, false
}

// CommitLoad implements MemPort.
func (FixedLatencyMem) CommitLoad(uint64, LoadToken, uint64, int) {}

// CommitStore implements MemPort.
func (FixedLatencyMem) CommitStore(uint64, uint64, int) {}
