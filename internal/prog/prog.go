// Package prog defines the program image the emulator loads and the
// simulated virtual address-space layout shared by every model.
//
// Layout (matching the segment classes the paper's Table 2 reports —
// text, globals, heap, stack):
//
//	0x0001_0000  text    (instructions, InstrBytes each)
//	0x1000_0000  globals (assembled .data)
//	0x2000_0000  heap    (workload-managed; grows up)
//	0x3000_0000  stack   (grows down from StackTop)
//
// Pages are PageSize bytes (8 KB, the granularity the paper replicates and
// distributes at).
package prog

import (
	"fmt"
	"sort"

	"github.com/wisc-arch/datascalar/internal/isa"
)

// Address-space layout constants.
const (
	PageSize  = 8192 // 8 KB pages, as in the paper's Table 2
	TextBase  = 0x0001_0000
	DataBase  = 0x1000_0000
	HeapBase  = 0x2000_0000
	StackTop  = 0x3000_0000
	StackBase = StackTop - 1<<20 // 1 MB default stack reservation
)

// Segment classifies an address range, mirroring the paper's text / global
// / heap / stack breakdown.
type Segment uint8

const (
	SegText Segment = iota
	SegGlobal
	SegHeap
	SegStack
	NumSegments
)

// String names the segment.
func (s Segment) String() string {
	switch s {
	case SegText:
		return "text"
	case SegGlobal:
		return "global"
	case SegHeap:
		return "heap"
	case SegStack:
		return "stack"
	}
	return fmt.Sprintf("segment(%d)", uint8(s))
}

// SegmentOf classifies a virtual address.
func SegmentOf(addr uint64) Segment {
	switch {
	case addr < DataBase:
		return SegText
	case addr < HeapBase:
		return SegGlobal
	case addr < StackBase:
		return SegHeap
	default:
		return SegStack
	}
}

// PageOf returns the page number containing addr.
func PageOf(addr uint64) uint64 { return addr / PageSize }

// PageBase returns the first address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

// Program is a fully linked executable image.
type Program struct {
	Name string

	// Text is the instruction stream; instruction i lives at architectural
	// address TextBase + i*isa.InstrBytes.
	Text []isa.Instr

	// Data is the initialized globals image, loaded at DataBase.
	Data []byte

	// Entry is the starting PC. It defaults to TextBase.
	Entry uint64

	// HeapBytes is the amount of heap the workload will touch, declared up
	// front so the loader can build page tables for the whole footprint.
	HeapBytes uint64

	// StackBytes is the stack reservation (<= StackTop-StackBase).
	StackBytes uint64

	// Labels maps symbol names to addresses (text labels to instruction
	// addresses, data labels to DataBase-relative absolute addresses).
	Labels map[string]uint64

	// Lines, when non-nil, records the 1-based source line of each Text
	// instruction (parallel to Text). The assembler fills it so
	// diagnostics from internal/analysis can point back into the .s
	// source; programs built directly may leave it nil.
	Lines []int
}

// LineOf returns the source line of instruction i, or 0 when no line
// information is available.
func (p *Program) LineOf(i int) int {
	if i < 0 || i >= len(p.Lines) {
		return 0
	}
	return p.Lines[i]
}

// TextEnd returns one past the last text address.
func (p *Program) TextEnd() uint64 {
	return TextBase + uint64(len(p.Text))*isa.InstrBytes
}

// DataEnd returns one past the last initialized-data address.
func (p *Program) DataEnd() uint64 {
	return DataBase + uint64(len(p.Data))
}

// PCToIndex converts a text address to an instruction index.
func (p *Program) PCToIndex(pc uint64) (int, error) {
	if pc < TextBase || pc >= p.TextEnd() {
		return 0, fmt.Errorf("prog: pc 0x%x outside text [0x%x, 0x%x)", pc, uint64(TextBase), p.TextEnd())
	}
	off := pc - TextBase
	if off%isa.InstrBytes != 0 {
		return 0, fmt.Errorf("prog: pc 0x%x not instruction-aligned", pc)
	}
	return int(off / isa.InstrBytes), nil
}

// IndexToPC converts an instruction index to a text address.
func IndexToPC(i int) uint64 { return TextBase + uint64(i)*isa.InstrBytes }

// Validate checks that the image is structurally sound: entry in text,
// every instruction valid, every control-flow target inside text and
// aligned, and footprint within layout bounds.
func (p *Program) Validate() error {
	if len(p.Text) == 0 {
		return fmt.Errorf("prog %s: empty text", p.Name)
	}
	entry := p.Entry
	if entry == 0 {
		entry = TextBase
	}
	if _, err := p.PCToIndex(entry); err != nil {
		return fmt.Errorf("prog %s: bad entry: %w", p.Name, err)
	}
	if p.TextEnd() > DataBase {
		return fmt.Errorf("prog %s: text overflows into data segment", p.Name)
	}
	if p.DataEnd() > HeapBase {
		return fmt.Errorf("prog %s: data overflows into heap segment", p.Name)
	}
	if p.HeapBytes > StackBase-HeapBase {
		return fmt.Errorf("prog %s: heap reservation too large", p.Name)
	}
	if p.StackBytes > StackTop-StackBase {
		return fmt.Errorf("prog %s: stack reservation too large", p.Name)
	}
	if p.Lines != nil && len(p.Lines) != len(p.Text) {
		return fmt.Errorf("prog %s: %d line records for %d instructions", p.Name, len(p.Lines), len(p.Text))
	}
	for i, in := range p.Text {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("prog %s: instr %d: %w", p.Name, i, err)
		}
		if in.Op.IsControl() && in.Op.Format() != isa.FmtJReg {
			if _, err := p.PCToIndex(in.Target); err != nil {
				return fmt.Errorf("prog %s: instr %d (%s): bad target: %w", p.Name, i, in, err)
			}
		}
	}
	return nil
}

// EntryPC returns the starting PC, applying the TextBase default.
func (p *Program) EntryPC() uint64 {
	if p.Entry == 0 {
		return TextBase
	}
	return p.Entry
}

// Pages returns the sorted list of all page numbers the program can touch:
// text, initialized data, declared heap, and declared stack. This is the
// footprint the memory system builds page tables for.
func (p *Program) Pages() []uint64 {
	set := make(map[uint64]struct{})
	addRange := func(base, length uint64) {
		if length == 0 {
			return
		}
		for pg := PageOf(base); pg <= PageOf(base+length-1); pg++ {
			set[pg] = struct{}{}
		}
	}
	addRange(TextBase, uint64(len(p.Text))*isa.InstrBytes)
	addRange(DataBase, uint64(len(p.Data)))
	addRange(HeapBase, p.HeapBytes)
	stack := p.StackBytes
	if stack == 0 {
		stack = 64 * 1024 // default working stack
	}
	addRange(StackTop-stack, stack)
	out := make([]uint64, 0, len(set))
	for pg := range set {
		out = append(out, pg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SegmentPages returns the program's pages grouped by segment, each group
// sorted ascending.
func (p *Program) SegmentPages() map[Segment][]uint64 {
	out := make(map[Segment][]uint64)
	for _, pg := range p.Pages() {
		seg := SegmentOf(pg * PageSize)
		out[seg] = append(out[seg], pg)
	}
	return out
}
