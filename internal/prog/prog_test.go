package prog

import (
	"testing"
	"testing/quick"

	"github.com/wisc-arch/datascalar/internal/isa"
)

func TestSegmentOf(t *testing.T) {
	cases := []struct {
		addr uint64
		want Segment
	}{
		{TextBase, SegText},
		{TextBase + 1234, SegText},
		{DataBase, SegGlobal},
		{HeapBase - 1, SegGlobal},
		{HeapBase, SegHeap},
		{StackBase - 1, SegHeap},
		{StackBase, SegStack},
		{StackTop - 8, SegStack},
	}
	for _, c := range cases {
		if got := SegmentOf(c.addr); got != c.want {
			t.Errorf("SegmentOf(0x%x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestSegmentString(t *testing.T) {
	names := map[Segment]string{SegText: "text", SegGlobal: "global", SegHeap: "heap", SegStack: "stack"}
	for seg, want := range names {
		if seg.String() != want {
			t.Errorf("%d.String() = %q, want %q", seg, seg.String(), want)
		}
	}
}

func TestPageHelpers(t *testing.T) {
	if PageOf(0) != 0 || PageOf(PageSize-1) != 0 || PageOf(PageSize) != 1 {
		t.Error("PageOf wrong at boundaries")
	}
	if PageBase(PageSize+17) != PageSize {
		t.Errorf("PageBase = 0x%x", PageBase(PageSize+17))
	}
}

func validProgram() *Program {
	return &Program{
		Name: "test",
		Text: []isa.Instr{
			{Op: isa.OpLI, Rd: 1, Imm: 5},
			{Op: isa.OpBEQ, Rs1: 1, Rs2: 0, Target: IndexToPC(2)},
			{Op: isa.OpHALT},
		},
		Data:      make([]byte, 100),
		HeapBytes: 4 * PageSize,
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]func(*Program){
		"empty text":    func(p *Program) { p.Text = nil },
		"bad entry":     func(p *Program) { p.Entry = TextBase + 3 },
		"entry outside": func(p *Program) { p.Entry = DataBase },
		"bad instr":     func(p *Program) { p.Text[0] = isa.Instr{} },
		"bad target":    func(p *Program) { p.Text[1].Target = 0 },
		"huge heap":     func(p *Program) { p.HeapBytes = StackBase - HeapBase + 1 },
		"huge stack":    func(p *Program) { p.StackBytes = StackTop - StackBase + 1 },
	}
	for name, mutate := range cases {
		p := validProgram()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	p := validProgram()
	for i := range p.Text {
		pc := IndexToPC(i)
		got, err := p.PCToIndex(pc)
		if err != nil || got != i {
			t.Errorf("round trip %d -> 0x%x -> %d (%v)", i, pc, got, err)
		}
	}
	if _, err := p.PCToIndex(TextBase - isa.InstrBytes); err == nil {
		t.Error("pc below text accepted")
	}
	if _, err := p.PCToIndex(p.TextEnd()); err == nil {
		t.Error("pc past text accepted")
	}
}

func TestEntryPCDefault(t *testing.T) {
	p := validProgram()
	if p.EntryPC() != TextBase {
		t.Errorf("default entry = 0x%x", p.EntryPC())
	}
	p.Entry = IndexToPC(1)
	if p.EntryPC() != IndexToPC(1) {
		t.Errorf("explicit entry = 0x%x", p.EntryPC())
	}
}

func TestPagesCoverFootprint(t *testing.T) {
	p := validProgram()
	p.Data = make([]byte, 3*PageSize+10)
	p.HeapBytes = 2 * PageSize
	p.StackBytes = PageSize
	pages := p.Pages()

	want := map[uint64]bool{}
	for _, addr := range []uint64{
		TextBase,
		DataBase, DataBase + PageSize, DataBase + 2*PageSize, DataBase + 3*PageSize,
		HeapBase, HeapBase + PageSize,
		StackTop - PageSize,
	} {
		want[PageOf(addr)] = true
	}
	got := map[uint64]bool{}
	for _, pg := range pages {
		got[pg] = true
	}
	for pg := range want {
		if !got[pg] {
			t.Errorf("missing page %d (0x%x)", pg, pg*PageSize)
		}
	}
	// Sorted and unique.
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			t.Fatalf("pages not sorted/unique at %d: %v", i, pages)
		}
	}
}

func TestSegmentPages(t *testing.T) {
	p := validProgram()
	p.StackBytes = PageSize
	groups := p.SegmentPages()
	if len(groups[SegText]) == 0 || len(groups[SegGlobal]) == 0 ||
		len(groups[SegHeap]) == 0 || len(groups[SegStack]) == 0 {
		t.Fatalf("segment groups incomplete: %v", groups)
	}
	for seg, pgs := range groups {
		for _, pg := range pgs {
			if SegmentOf(pg*PageSize) != seg {
				t.Errorf("page %d misclassified in %v", pg, seg)
			}
		}
	}
}

// Property: every address maps to exactly one segment and PageBase is
// idempotent and aligned.
func TestAddressPropsQuick(t *testing.T) {
	f := func(addr uint64) bool {
		addr %= StackTop
		seg := SegmentOf(addr)
		if seg >= NumSegments {
			return false
		}
		b := PageBase(addr)
		return b%PageSize == 0 && PageBase(b) == b && PageOf(addr) == b/PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
