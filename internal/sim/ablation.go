package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/analysis"
	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/mmm"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/trace"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// This file holds the ablation studies DESIGN.md §6 calls out: design
// choices the paper discusses but does not (or only partially)
// evaluates. Each ablation isolates one mechanism of the DataScalar
// design and measures its contribution. Like every harness, the
// ablations enumerate their sweeps as engine jobs, so they parallelize
// under Options.Parallel with bit-identical results.

// ---------------------------------------------------------------------------
// Ablation 1: bus versus ring interconnect (paper Section 4.4).

// InterconnectRow compares one benchmark across interconnects at one node
// count.
type InterconnectRow struct {
	Benchmark string
	Nodes     int
	BusIPC    float64
	RingIPC   float64
}

// InterconnectResult holds the interconnect ablation.
type InterconnectResult struct {
	Rows []InterconnectRow
}

// Table renders the ablation.
func (r InterconnectResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: DataScalar IPC on a global bus vs a unidirectional ring",
		"benchmark", "nodes", "bus IPC", "ring IPC")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Nodes, row.BusIPC, row.RingIPC)
	}
	return t
}

// AblationInterconnect compares the default global bus against a ring of
// equal link width and clock. The paper argues buses make broadcast free
// but do not scale, while rings scale aggregate bandwidth at the cost of
// multi-hop broadcast latency; the crossover should appear as node count
// grows.
func AblationInterconnect(ctx context.Context, opts Options) (InterconnectResult, error) {
	opts = opts.withDefaults()
	var out InterconnectResult
	names := []string{"compress", "mgrid"}
	nodeCounts := []int{2, 4}
	var jobs []Job
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: missing workload %s", name)
		}
		for _, nodes := range nodeCounts {
			jobs = append(jobs,
				Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes, MaxInstr: opts.TimingInstr},
				Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes, MaxInstr: opts.TimingInstr, Topology: bus.TopoRing},
			)
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	for i := 0; i < len(res); i += 2 {
		out.Rows = append(out.Rows, InterconnectRow{
			Benchmark: jobs[i].Workload.Name,
			Nodes:     jobs[i].Nodes,
			BusIPC:    res[i].IPC(),
			RingIPC:   res[i+1].IPC(),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablation 2: write-allocate versus write-no-allocate under ESP
// (paper Section 4.2 argues no-allocate is superior: "a write miss
// requires sending an inter-processor message, only to overwrite the
// received data").

// WritePolicyRow compares the traffic both policies generate.
type WritePolicyRow struct {
	Benchmark string
	// ESPBytes per policy: under write-allocate every store miss forces
	// a broadcast of a line that is about to be overwritten.
	AllocESPBytes   uint64
	NoAllocESPBytes uint64
	// Saved is the fraction of ESP bytes no-allocate avoids.
	Saved float64
}

// WritePolicyResult holds the write-policy ablation.
type WritePolicyResult struct {
	Rows []WritePolicyRow
}

// Table renders the ablation.
func (r WritePolicyResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: ESP broadcast bytes under write-allocate vs write-no-allocate",
		"benchmark", "write-allocate", "write-no-allocate", "saved")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			fmt.Sprintf("%d", row.AllocESPBytes),
			fmt.Sprintf("%d", row.NoAllocESPBytes),
			stats.FormatPercent(row.Saved*100))
	}
	return t
}

// AblationWritePolicy measures, at the reference-trace level, the ESP
// broadcast traffic generated under each store-miss policy for the
// store-heavy benchmarks. Write-allocate turns every store miss into a
// line broadcast whose payload is immediately overwritten — the waste
// the paper's chosen write-no-allocate policy avoids. The eight
// (benchmark, policy) measurements are independent analysis units.
func AblationWritePolicy(ctx context.Context, opts Options) (WritePolicyResult, error) {
	opts = opts.withDefaults()
	var out WritePolicyResult
	names := []string{"compress", "vortex", "swim", "wave5"}
	policies := []cache.AllocPolicy{cache.WriteAllocate, cache.WriteNoAllocate}
	bytes, err := runIndexed(ctx, opts.Parallel, len(names)*len(policies), func(i int) (uint64, error) {
		name := names[i/len(policies)]
		w, ok := workload.ByName(name)
		if !ok {
			return 0, fmt.Errorf("sim: missing workload %s", name)
		}
		pr, err := prepare(w, opts.Scale)
		if err != nil {
			return 0, err
		}
		cfg := trace.DefaultTrafficConfig()
		cfg.L1.Alloc = policies[i%len(policies)]
		a := trace.NewTrafficAnalyzer(cfg)
		err = trace.ForEachRefFrom(pr.p, pr.ff, opts.RefInstr, false, func(ref trace.Ref) error {
			return a.Observe(ref)
		})
		if err != nil {
			return 0, err
		}
		return a.Finish().ESPBytes, nil
	})
	if err != nil {
		return out, err
	}
	for i, name := range names {
		allocB, noAllocB := bytes[2*i], bytes[2*i+1]
		row := WritePolicyRow{Benchmark: name, AllocESPBytes: allocB, NoAllocESPBytes: noAllocB}
		if allocB > 0 {
			row.Saved = 1 - float64(noAllocB)/float64(allocB)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablation 3: synchronous versus asynchronous ESP (the MMM's single
// datathread versus DataScalar's concurrent ones, paper Sections 2-3).

// SyncESPRow compares one benchmark's miss stream under lock-step ESP
// against the measured asynchronous machine.
type SyncESPRow struct {
	Benchmark string
	// Misses in the analyzed stream.
	Misses uint64
	// SyncCycles is the synchronous-ESP (MMM) cost of the stream: one
	// transfer per miss plus a full catch-up stall at every ownership
	// change.
	SyncCycles uint64
	// IdealCycles is the zero-stall transfer-bound floor.
	IdealCycles uint64
	// Slowdown = SyncCycles / IdealCycles: what lock-step costs; the
	// asynchronous machine's datathreading exists to reclaim this gap.
	Slowdown float64
	// LeadChanges along the stream.
	LeadChanges int
}

// SyncESPResult holds the ablation.
type SyncESPResult struct {
	Rows []SyncESPRow
}

// Table renders the ablation.
func (r SyncESPResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: synchronous (lock-step) ESP cost of each benchmark's miss stream",
		"benchmark", "misses", "lead changes", "sync cycles", "ideal", "slowdown")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Misses, row.LeadChanges,
			row.SyncCycles, row.IdealCycles, stats.Round2(row.Slowdown))
	}
	return t
}

// AblationSyncESP replays each timing benchmark's cache-filtered miss
// stream through the synchronous Massive Memory Machine model: every
// ownership transition stalls all processors for the catch-up delay,
// because lock-step ESP sustains exactly one datathread. The slowdown
// column is the gap asynchronous ESP (the DataScalar machine) closes by
// running datathreads concurrently.
func AblationSyncESP(ctx context.Context, opts Options) (SyncESPResult, error) {
	opts = opts.withDefaults()
	var out SyncESPResult
	ws := workload.TimingSet()
	rows, err := runIndexed(ctx, opts.Parallel, len(ws), func(i int) (SyncESPRow, error) {
		pr, err := prepare(ws[i], opts.Scale)
		if err != nil {
			return SyncESPRow{}, err
		}
		pt, err := defaultPartition(pr.p, 4)
		if err != nil {
			return SyncESPRow{}, err
		}
		filter := trace.DefaultMissFilter()
		var refs []uint64
		owner := make(map[uint64]int)
		err = trace.ForEachRefFrom(pr.p, pr.ff, opts.RefInstr, false, func(ref trace.Ref) error {
			if !filter.Observe(ref) {
				return nil
			}
			line := ref.Addr &^ 31
			refs = append(refs, line)
			if o := pt.OwnerOf(line); o >= 0 {
				owner[line] = o
			}
			return nil
		})
		if err != nil {
			return SyncESPRow{}, err
		}
		res, err := mmm.Simulate(mmm.Config{Processors: 4, BroadcastDelay: 8}, refs, owner)
		if err != nil {
			return SyncESPRow{}, err
		}
		return SyncESPRow{
			Benchmark:   pr.w.Name,
			Misses:      uint64(len(refs)),
			SyncCycles:  res.Cycles,
			IdealCycles: res.IdealCycles,
			Slowdown:    res.Slowdown(),
			LeadChanges: res.LeadChanges,
		}, nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablation 4: result communication (paper Section 5.1).

// ResultCommRow compares a private-region workload with the optimization
// on and off.
type ResultCommRow struct {
	Nodes          int
	OffIPC         float64
	OnIPC          float64
	OffBroadcasts  uint64
	OnBroadcasts   uint64
	SkippedPerNode float64
}

// ResultCommResult holds the ablation.
type ResultCommResult struct {
	Rows []ResultCommRow
}

// Table renders the ablation.
func (r ResultCommResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: result communication on a private block-reduction workload",
		"nodes", "IPC off", "IPC on", "broadcasts off", "broadcasts on", "skipped instr/node")
	for _, row := range r.Rows {
		t.AddRowf(row.Nodes, row.OffIPC, row.OnIPC,
			row.OffBroadcasts, row.OnBroadcasts, stats.Round1(row.SkippedPerNode))
	}
	return t
}

// resultCommKernel is a block-wise reduction with PRIVB/PRIVE regions:
// the canonical private computation the paper describes — each block's
// owner reduces it locally and only the per-block results are ever
// communicated.
func resultCommKernel() string {
	return `
        .data
blocks: .space 131072            # 16 pages, round-robin distributed
        .space 288
sums:   .space 1024
        .text
        la   r1, blocks
        li   r2, 16384
        li   r3, 1
init:   sd   r3, 0(r1)
        addi r3, r3, 3
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, init
bench_main:
        la   r10, blocks
        la   r11, sums
        li   r12, 16
blk:    privb 0(r10)
        li   r2, 1024
        li   r3, 0
        mov  r1, r10
red:    ld   r4, 0(r1)
        add  r3, r3, r4
        addi r1, r1, 8
        addi r2, r2, -1
        bne  r2, zero, red
        sd   r3, 0(r11)
        prive
        addi r10, r10, 8192
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, blk
        la   r11, sums
        li   r12, 16
        li   r20, 0
tot:    ld   r4, 0(r11)
        add  r20, r20, r4
        addi r11, r11, 8
        addi r12, r12, -1
        bne  r12, zero, tot
        halt
`
}

// AblationResultComm measures the paper's Section 5.1 optimization on the
// block-reduction workload at two and four nodes.
func AblationResultComm(ctx context.Context, opts Options) (ResultCommResult, error) {
	opts = opts.withDefaults()
	var out ResultCommResult
	p, err := asm.Assemble("resultcomm", resultCommKernel())
	if err != nil {
		return out, err
	}
	w := workloadStub("resultcomm")
	commOn := func(cfg *core.Config) { cfg.ResultComm = true }
	nodeCounts := []int{2, 4}
	var jobs []Job
	for _, nodes := range nodeCounts {
		jobs = append(jobs,
			Job{Workload: w, Program: p, Kind: KindDS, Nodes: nodes},
			Job{Workload: w, Program: p, Kind: KindDS, Nodes: nodes, DSMut: commOn},
		)
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	for i, nodes := range nodeCounts {
		off, on := res[2*i].DS, res[2*i+1].DS
		var skipped uint64
		for _, ns := range on.Nodes {
			skipped += ns.SkippedInstr.Value()
		}
		out.Rows = append(out.Rows, ResultCommRow{
			Nodes:          nodes,
			OffIPC:         off.IPC,
			OnIPC:          on.IPC,
			OffBroadcasts:  off.BusStats.ByKindMsgs[bus.Broadcast].Value(),
			OnBroadcasts:   on.BusStats.ByKindMsgs[bus.Broadcast].Value(),
			SkippedPerNode: float64(skipped) / float64(nodes),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablation 5: BSHR and broadcast-queue latencies.

// LatencyRow is one (bshr, queue) latency point.
type LatencyRow struct {
	BSHRCycles       uint64
	BcastQueueCycles uint64
	IPC              float64
}

// LatencyResult holds the latency ablation.
type LatencyResult struct {
	Benchmark string
	Rows      []LatencyRow
}

// Table renders the ablation.
func (r LatencyResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: BSHR / broadcast-queue latencies (%s, 2 nodes)", r.Benchmark),
		"BSHR cycles", "bcast-queue cycles", "IPC")
	for _, row := range r.Rows {
		t.AddRowf(row.BSHRCycles, row.BcastQueueCycles, row.IPC)
	}
	return t
}

// AblationLatencies sweeps the two DataScalar-specific structure
// latencies the paper fixes by assumption (2-cycle broadcast queue,
// BSHR access) to show how sensitive the design is to them.
func AblationLatencies(ctx context.Context, opts Options) (LatencyResult, error) {
	opts = opts.withDefaults()
	out := LatencyResult{Benchmark: "compress"}
	w, ok := workload.ByName("compress")
	if !ok {
		return out, fmt.Errorf("sim: missing compress")
	}
	points := []struct{ bshr, q uint64 }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16},
	}
	jobs := make([]Job, len(points))
	for i, point := range points {
		point := point
		jobs[i] = Job{
			Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: 2, MaxInstr: opts.SweepInstr,
			DSMut: func(cfg *core.Config) {
				cfg.BSHRCycles = point.bshr
				cfg.BcastQueueCycles = point.q
			},
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	for i, point := range points {
		out.Rows = append(out.Rows, LatencyRow{
			BSHRCycles:       point.bshr,
			BcastQueueCycles: point.q,
			IPC:              res[i].IPC(),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Ablation 6: profile-guided page placement (the paper's "special support
// to increase datathread length", Section 3.2).

// PlacementRow compares round-robin distribution, profile-guided
// placement, and static-affinity placement (internal/analysis, no
// profiling run) on one benchmark.
type PlacementRow struct {
	Benchmark string
	// Mean datathread length over the miss stream under each placement.
	RRThreadMean, OptThreadMean, StaticThreadMean float64
	// Broadcasts per 1000 committed instructions under each placement
	// (default bus). Replication is identical across the three, so this
	// isolates how placement shifts work between owned and remote pages.
	RRBcastPerK, OptBcastPerK, StaticBcastPerK float64
	// DataScalar 4-node IPC under each placement, at the default bus.
	RRIPC, OptIPC, StaticIPC float64
	// The same comparison under a 4x slower global bus, where broadcast
	// latency is exposed and datathread length actually pays.
	RRIPCSlow, OptIPCSlow, StaticIPCSlow float64
}

// PlacementResult holds the placement ablation.
type PlacementResult struct {
	Rows []PlacementRow
}

// Table renders the ablation.
func (r PlacementResult) Table() *stats.Table {
	t := stats.NewTable(
		"Ablation: round-robin vs profile-guided vs static-affinity page placement (4 nodes)",
		"benchmark", "thread RR", "thread opt", "thread static",
		"bcast/1k RR", "bcast/1k opt", "bcast/1k static",
		"IPC RR", "IPC opt", "IPC static",
		"IPC RR slow", "IPC opt slow", "IPC static slow")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark,
			stats.Round1(row.RRThreadMean), stats.Round1(row.OptThreadMean), stats.Round1(row.StaticThreadMean),
			stats.Round1(row.RRBcastPerK), stats.Round1(row.OptBcastPerK), stats.Round1(row.StaticBcastPerK),
			row.RRIPC, row.OptIPC, row.StaticIPC,
			row.RRIPCSlow, row.OptIPCSlow, row.StaticIPCSlow)
	}
	return t
}

// bcastPerK returns broadcasts per 1000 committed instructions across
// all nodes of a run.
func bcastPerK(r core.Result) float64 {
	if r.Instructions == 0 {
		return 0
	}
	var total uint64
	for i := range r.Nodes {
		total += r.Nodes[i].Broadcasts.Value()
	}
	return 1000 * float64(total) / float64(r.Instructions)
}

// placementPlan is one benchmark's stage-one output: the three page
// tables to race and the analysis-side datathread means.
type placementPlan struct {
	pr                          prepared
	rrPT, optPT, staticPT       *mem.PageTable
	rrMean, optMean, staticMean float64
}

// AblationPlacement profiles each benchmark's miss-stream page
// transitions, clusters pages that miss consecutively onto the same node
// (capacity-balanced), and measures the effect on datathread length and
// DataScalar IPC against the paper's round-robin distribution. This is
// the software side of the paper's observation that "programs would
// benefit from special support to increase datathread length".
//
// Two engine phases: stage one builds the three placements per benchmark
// (profiling + static analysis, independent per benchmark); stage two
// races the six timing runs per benchmark as one flat job batch.
func AblationPlacement(ctx context.Context, opts Options) (PlacementResult, error) {
	opts = opts.withDefaults()
	const nodes = 4
	var out PlacementResult
	// swim/applu are streaming (their loads pipeline regardless of
	// placement, so only thread length moves); gcc/li chase dependent
	// pointers, where fewer ownership transitions shorten the serialized
	// crossing chain and IPC can move too.
	names := []string{"swim", "applu", "gcc", "li"}
	plans, err := runIndexed(ctx, opts.Parallel, len(names), func(i int) (placementPlan, error) {
		return placementPlanFor(names[i], nodes, opts)
	})
	if err != nil {
		return out, err
	}

	slowBus := func(cfg *core.Config) { cfg.Topology.Bus.ClockDivisor = 8 }
	var jobs []Job
	for _, plan := range plans {
		// Six timing runs per benchmark: the three placements at the
		// default bus, then the same three under the 4x slower bus.
		for _, pt := range []*mem.PageTable{plan.rrPT, plan.optPT, plan.staticPT} {
			jobs = append(jobs, Job{
				Workload: plan.pr.w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes,
				MaxInstr: opts.TimingInstr, PageTable: pt,
			})
		}
		for _, pt := range []*mem.PageTable{plan.rrPT, plan.optPT, plan.staticPT} {
			jobs = append(jobs, Job{
				Workload: plan.pr.w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes,
				MaxInstr: opts.TimingInstr, PageTable: pt, DSMut: slowBus,
			})
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	for i, plan := range plans {
		rr, opt, static := res[6*i].DS, res[6*i+1].DS, res[6*i+2].DS
		rrSlow, optSlow, staticSlow := res[6*i+3].DS, res[6*i+4].DS, res[6*i+5].DS
		out.Rows = append(out.Rows, PlacementRow{
			Benchmark:        names[i],
			RRThreadMean:     plan.rrMean,
			OptThreadMean:    plan.optMean,
			StaticThreadMean: plan.staticMean,
			RRBcastPerK:      bcastPerK(rr),
			OptBcastPerK:     bcastPerK(opt),
			StaticBcastPerK:  bcastPerK(static),
			RRIPC:            rr.IPC,
			OptIPC:           opt.IPC,
			StaticIPC:        static.IPC,
			RRIPCSlow:        rrSlow.IPC,
			OptIPCSlow:       optSlow.IPC,
			StaticIPCSlow:    staticSlow.IPC,
		})
	}
	return out, nil
}

// placementPlanFor builds one benchmark's three candidate placements and
// their analysis-side datathread means.
func placementPlanFor(name string, nodes int, opts Options) (placementPlan, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return placementPlan{}, fmt.Errorf("sim: missing workload %s", name)
	}
	pr, err := prepare(w, opts.Scale)
	if err != nil {
		return placementPlan{}, err
	}

	// Profile page transitions over the cache-filtered miss stream.
	tp := mem.NewTransitionProfile()
	filter := trace.DefaultMissFilter()
	err = trace.ForEachRefFrom(pr.p, pr.ff, opts.RefInstr, false, func(ref trace.Ref) error {
		if filter.Observe(ref) {
			tp.Observe(ref.Addr)
		}
		return nil
	})
	if err != nil {
		return placementPlan{}, err
	}

	// Fixed set: text pages stay replicated, as in the timing runs.
	fixed := map[uint64]bool{}
	for _, pg := range pr.p.Pages() {
		if prog.SegmentOf(pg*prog.PageSize) == prog.SegText {
			fixed[pg] = true
		}
	}
	placement := tp.OptimizePlacement(nodes, fixed)
	optPT := mem.BuildOptimized(pr.p.Pages(), placement, fixed, nodes)
	rrPT, err := defaultPartition(pr.p, nodes)
	if err != nil {
		return placementPlan{}, err
	}

	// Static-affinity placement: same clustering, but the transition
	// graph comes from interval analysis of the binary instead of a
	// profiling run.
	aff := analysis.ComputePageAffinity(pr.p)
	staticPlacement := mem.PlaceStaticAffinity(aff.Touches, aff.Edges, nodes, fixed)
	staticPT := mem.BuildOptimized(pr.p.Pages(), staticPlacement, fixed, nodes)

	threadMean := func(pt *mem.PageTable) (float64, error) {
		f := trace.DefaultMissFilter()
		an := trace.NewDatathreadAnalyzer(pt)
		err := trace.ForEachRefFrom(pr.p, pr.ff, opts.RefInstr, false, func(ref trace.Ref) error {
			if f.Observe(ref) {
				an.Observe(ref.Addr, false)
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		return an.Finish().AllMean, nil
	}
	plan := placementPlan{pr: pr, rrPT: rrPT, optPT: optPT, staticPT: staticPT}
	if plan.rrMean, err = threadMean(rrPT); err != nil {
		return placementPlan{}, err
	}
	if plan.optMean, err = threadMean(optPT); err != nil {
		return placementPlan{}, err
	}
	if plan.staticMean, err = threadMean(staticPT); err != nil {
		return placementPlan{}, err
	}
	return plan, nil
}

// ---------------------------------------------------------------------------
// Ablation 7: static replication fraction (paper Section 3). Replicated
// pages complete every access locally at every node, trading capacity
// (each node must hold a copy) for eliminated broadcasts.

// ReplicationPoint measures one replication budget.
type ReplicationPoint struct {
	// Fraction of data pages replicated (hottest first).
	Fraction float64
	// ReplicatedPages actually chosen.
	ReplicatedPages int
	IPC             float64
	Broadcasts      uint64
	// NodeKB is the per-node memory footprint this replication level
	// costs (replicated pages count at every node).
	NodeKB uint64
}

// ReplicationRow is one benchmark's sweep.
type ReplicationRow struct {
	Benchmark string
	Points    []ReplicationPoint
}

// ReplicationResult holds the sweep.
type ReplicationResult struct {
	Nodes int
	Rows  []ReplicationRow
}

// Table renders the sweep.
func (r ReplicationResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation: static replication fraction (%d nodes, hottest pages first)", r.Nodes),
		"benchmark", "replicated", "pages", "IPC", "broadcasts", "KB/node")
	for _, row := range r.Rows {
		for _, p := range row.Points {
			t.AddRowf(row.Benchmark, stats.FormatPercent(p.Fraction*100),
				p.ReplicatedPages, p.IPC, p.Broadcasts, p.NodeKB)
		}
	}
	return t
}

// replicationFractions are the swept budgets.
var replicationFractions = []float64{0, 0.125, 0.25, 0.5}

// replicationPlan is one benchmark's stage-one output: the page table
// and chosen page count per swept fraction.
type replicationPlan struct {
	pr     prepared
	pts    []*mem.PageTable
	counts []int
}

// AblationReplication sweeps the fraction of (hottest-first) data pages
// statically replicated at every node, measuring the broadcast traffic
// eliminated and the capacity paid — the paper's Section 3 replication
// trade-off quantified. The timing runs of Figure 7 replicate nothing
// ("we did not statically replicate any data pages"), making this the
// other end of the design space.
func AblationReplication(ctx context.Context, opts Options) (ReplicationResult, error) {
	opts = opts.withDefaults()
	const nodes = 4
	out := ReplicationResult{Nodes: nodes}
	names := []string{"compress", "li"}
	plans, err := runIndexed(ctx, opts.Parallel, len(names), func(i int) (replicationPlan, error) {
		return replicationPlanFor(names[i], nodes, opts)
	})
	if err != nil {
		return out, err
	}

	var jobs []Job
	for _, plan := range plans {
		for _, pt := range plan.pts {
			jobs = append(jobs, Job{
				Workload: plan.pr.w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes,
				MaxInstr: opts.TimingInstr, PageTable: pt,
			})
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	i := 0
	for pi, plan := range plans {
		row := ReplicationRow{Benchmark: names[pi]}
		for fi, frac := range replicationFractions {
			r := res[i].DS
			i++
			row.Points = append(row.Points, ReplicationPoint{
				Fraction:        frac,
				ReplicatedPages: plan.counts[fi],
				IPC:             r.IPC,
				Broadcasts:      r.BusStats.ByKindMsgs[bus.Broadcast].Value(),
				NodeKB:          plan.pts[fi].NodeBytes(0) / 1024,
			})
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// replicationPlanFor profiles one benchmark's page heat and builds the
// page table for each swept replication fraction.
func replicationPlanFor(name string, nodes int, opts Options) (replicationPlan, error) {
	w, ok := workload.ByName(name)
	if !ok {
		return replicationPlan{}, fmt.Errorf("sim: missing workload %s", name)
	}
	pr, err := prepare(w, opts.Scale)
	if err != nil {
		return replicationPlan{}, err
	}

	// Page heat over the steady-state reference stream.
	profiler := mem.NewProfiler()
	if err := trace.ProfilePagesFrom(pr.p, pr.ff, opts.RefInstr, profiler.Observe); err != nil {
		return replicationPlan{}, err
	}
	var dataPages []uint64
	for _, pg := range profiler.PagesByHeat() {
		if prog.SegmentOf(pg*prog.PageSize) != prog.SegText {
			dataPages = append(dataPages, pg)
		}
	}

	plan := replicationPlan{pr: pr}
	for _, frac := range replicationFractions {
		n := int(frac * float64(len(dataPages)))
		repl := make(map[uint64]bool, n)
		for _, pg := range dataPages[:n] {
			repl[pg] = true
		}
		pt, err := mem.Partition{
			NumNodes:        nodes,
			BlockPages:      1,
			ReplicateText:   true,
			ReplicatedPages: repl,
		}.Build(pr.p)
		if err != nil {
			return replicationPlan{}, err
		}
		plan.pts = append(plan.pts, pt)
		plan.counts = append(plan.counts, n)
	}
	return plan, nil
}
