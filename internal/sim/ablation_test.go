package sim

import (
	"context"
	"testing"
)

func TestAblationInterconnect(t *testing.T) {
	opts := testOpts()
	res, err := AblationInterconnect(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BusIPC <= 0 || row.RingIPC <= 0 {
			t.Fatalf("non-positive IPC: %+v", row)
		}
	}
	t.Logf("\n%s", res.Table().String())
}

func TestAblationWritePolicy(t *testing.T) {
	res, err := AblationWritePolicy(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The paper's claim: no-allocate never broadcasts more than
		// write-allocate under ESP, and saves substantially on the
		// store-heavy codes.
		if row.NoAllocESPBytes > row.AllocESPBytes {
			t.Errorf("%s: no-allocate broadcast more bytes (%d > %d)",
				row.Benchmark, row.NoAllocESPBytes, row.AllocESPBytes)
		}
	}
	saved := map[string]float64{}
	for _, row := range res.Rows {
		saved[row.Benchmark] = row.Saved
	}
	if saved["compress"] <= 0 {
		t.Errorf("compress saved nothing under no-allocate: %+v", saved)
	}
	t.Logf("\n%s", res.Table().String())
}

func TestAblationSyncESP(t *testing.T) {
	res, err := AblationSyncESP(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Misses == 0 {
			t.Errorf("%s: empty miss stream", row.Benchmark)
			continue
		}
		if row.Slowdown < 1 {
			t.Errorf("%s: sync slowdown %.2f < 1", row.Benchmark, row.Slowdown)
		}
	}
	t.Logf("\n%s", res.Table().String())
}

func TestAblationResultComm(t *testing.T) {
	res, err := AblationResultComm(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OnBroadcasts >= row.OffBroadcasts {
			t.Errorf("%d nodes: result comm did not reduce broadcasts (%d vs %d)",
				row.Nodes, row.OnBroadcasts, row.OffBroadcasts)
		}
		if row.SkippedPerNode == 0 {
			t.Errorf("%d nodes: nothing skipped", row.Nodes)
		}
	}
	t.Logf("\n%s", res.Table().String())
}

func TestAblationLatencies(t *testing.T) {
	res, err := AblationLatencies(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Higher structure latencies must not raise IPC.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.IPC > first.IPC*1.05 {
		t.Errorf("16-cycle structures faster than 1-cycle: %.2f vs %.2f", last.IPC, first.IPC)
	}
	t.Logf("\n%s", res.Table().String())
}

func TestAblationPlacement(t *testing.T) {
	res, err := AblationPlacement(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	rows := map[string]PlacementRow{}
	for _, row := range res.Rows {
		rows[row.Benchmark] = row
		if row.RRThreadMean <= 0 || row.OptThreadMean <= 0 || row.StaticThreadMean <= 0 {
			t.Fatalf("%s: empty thread means: %+v", row.Benchmark, row)
		}
		if row.RRBcastPerK <= 0 {
			t.Fatalf("%s: no broadcasts recorded: %+v", row.Benchmark, row)
		}
	}
	// Structured interleaved streams must see large thread-length gains;
	// uniformly random pointer graphs (gcc, li) have no clusterable
	// structure, and the optimizer must at least not hurt them. The
	// static-affinity placement sees the same structure without a
	// profiling run, so it is held to the same 2x bar on the regular
	// codes.
	for _, name := range []string{"swim", "applu"} {
		r := rows[name]
		if r.OptThreadMean < r.RRThreadMean*2 {
			t.Errorf("%s: thread mean %.1f -> %.1f, want >= 2x", name, r.RRThreadMean, r.OptThreadMean)
		}
		if r.StaticThreadMean < r.RRThreadMean*2 {
			t.Errorf("%s: static thread mean %.1f -> %.1f, want >= 2x", name, r.RRThreadMean, r.StaticThreadMean)
		}
	}
	for _, row := range res.Rows {
		if row.OptThreadMean < row.RRThreadMean*0.9 {
			t.Errorf("%s: placement shortened threads (%.1f -> %.1f)",
				row.Benchmark, row.RRThreadMean, row.OptThreadMean)
		}
		if row.StaticThreadMean < row.RRThreadMean*0.9 {
			t.Errorf("%s: static placement shortened threads (%.1f -> %.1f)",
				row.Benchmark, row.RRThreadMean, row.StaticThreadMean)
		}
		if row.OptIPC < row.RRIPC*0.95 || row.OptIPCSlow < row.RRIPCSlow*0.95 {
			t.Errorf("%s: placement cost IPC: %+v", row.Benchmark, row)
		}
		if row.StaticIPC < row.RRIPC*0.95 || row.StaticIPCSlow < row.RRIPCSlow*0.95 {
			t.Errorf("%s: static placement cost IPC: %+v", row.Benchmark, row)
		}
		// Placement moves ownership, not replication: the broadcast rate
		// must stay essentially unchanged across the three placements.
		if diff := row.StaticBcastPerK - row.RRBcastPerK; diff > row.RRBcastPerK*0.05 || -diff > row.RRBcastPerK*0.05 {
			t.Errorf("%s: static placement moved broadcast rate: %+v", row.Benchmark, row)
		}
	}
	t.Logf("\n%s", res.Table().String())
}

func TestCostEffectiveness(t *testing.T) {
	if got := Costup(1, 0.3); got != 1 {
		t.Fatalf("single-node costup = %v, want 1", got)
	}
	if got := Costup(4, 0.25); got != 1.75 {
		t.Fatalf("costup(4, 0.25) = %v, want 1.75", got)
	}
	// Clamping.
	if Costup(2, -1) != 1 || Costup(2, 2) != 2 {
		t.Fatal("procFrac clamping broken")
	}

	opts := testOpts()
	opts.TimingInstr = 200_000
	f7, err := Figure7(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	res := CostEffectiveness(f7)
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (6 benchmarks x 2 node counts)", len(res.Rows))
	}
	// The paper's point: when memory dominates cost (small processor
	// fraction), several benchmarks must be cost-effective despite
	// sub-linear speedups; at 4 nodes compress (the big win) must
	// qualify at the 10% share.
	effective10 := 0
	for _, row := range res.Rows {
		if row.Effective10 {
			effective10++
		}
		if row.Benchmark == "compress" && row.Nodes == 4 && !row.Effective10 {
			t.Errorf("compress@4 not cost-effective at 10%% processor share: %+v", row)
		}
	}
	if effective10 == 0 {
		t.Error("nothing cost-effective even with memory-dominated cost")
	}
	t.Logf("\n%s", res.Table().String())
}

func TestScaling(t *testing.T) {
	opts := testOpts()
	res, err := Scaling(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Points) != 6 {
			t.Fatalf("%s: %d points", row.Benchmark, len(row.Points))
		}
		if row.Points[5].Nodes != 256 {
			t.Fatalf("%s: sweep tops out at %d nodes", row.Benchmark, row.Points[5].Nodes)
		}
		for _, p := range row.Points {
			if p.DSBus <= 0 || p.DSRing <= 0 || p.DSMesh <= 0 || p.DSTorus <= 0 || p.Trad <= 0 {
				t.Fatalf("%s@%d: non-positive IPC %+v", row.Benchmark, p.Nodes, p)
			}
			if p.OwnerCompute <= 0 {
				t.Fatalf("%s@%d: owner-compute model empty: %+v", row.Benchmark, p.Nodes, p)
			}
			if p.BusUtil < 0 || p.BusUtil > 1 {
				t.Fatalf("%s@%d: bus util %v", row.Benchmark, p.Nodes, p.BusUtil)
			}
			if p.MeshUtil < 0 || p.MeshUtil > 1 {
				t.Fatalf("%s@%d: mesh util %v", row.Benchmark, p.Nodes, p.MeshUtil)
			}
		}
		// DataScalar on the bus must degrade less from 2 to 8 nodes than
		// the traditional machine (the paper's finer-grain claim,
		// extended).
		dsDrop := row.Points[0].DSBus - row.Points[2].DSBus
		tradDrop := row.Points[0].Trad - row.Points[2].Trad
		if dsDrop > tradDrop {
			t.Errorf("%s: DS 2->8 drop %.2f exceeds traditional's %.2f",
				row.Benchmark, dsDrop, tradDrop)
		}
	}
	t.Logf("\n%s", res.Table().String())
}

func TestAblationReplication(t *testing.T) {
	res, err := AblationReplication(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Points) != 4 {
			t.Fatalf("%s: %d points", row.Benchmark, len(row.Points))
		}
		base := row.Points[0]
		last := row.Points[len(row.Points)-1]
		// Replicating hot pages must strictly reduce broadcasts and
		// cost capacity.
		if last.Broadcasts >= base.Broadcasts {
			t.Errorf("%s: 50%% replication did not cut broadcasts (%d -> %d)",
				row.Benchmark, base.Broadcasts, last.Broadcasts)
		}
		if last.NodeKB <= base.NodeKB {
			t.Errorf("%s: replication cost no capacity", row.Benchmark)
		}
		// And must not hurt IPC.
		if last.IPC < base.IPC*0.97 {
			t.Errorf("%s: replication hurt IPC (%.2f -> %.2f)",
				row.Benchmark, base.IPC, last.IPC)
		}
	}
	t.Logf("\n%s", res.Table().String())
}
