package sim

import (
	"github.com/wisc-arch/datascalar/internal/stats"
)

// Cost-effectiveness analysis (paper Section 4.4). The paper invokes
// Wood and Hill's criterion: a parallel system is cost-effective when
// its *costup* — total system cost relative to the uniprocessor — is
// smaller than its speedup. A DataScalar system replicates processing
// logic but not memory capacity, so when memory dominates system cost
// the costup stays near one and even modest speedups qualify ("DataScalar
// architectures could thus be cost-effective, even though the speedups
// they provide are much less than linear").

// CostRow evaluates one benchmark at one node count.
type CostRow struct {
	Benchmark string
	Nodes     int
	// Speedup of the DataScalar system over the traditional system with
	// the same memory split.
	Speedup float64
	// Costup per processor-to-total-cost fraction: the DataScalar system
	// adds (Nodes-1) extra processors to a system whose base cost is one
	// processor plus all memory.
	CostupProc10, CostupProc30, CostupProc50 float64
	// CostEffective reports speedup > costup at each processor-cost
	// fraction.
	Effective10, Effective30, Effective50 bool
}

// CostResult holds the analysis.
type CostResult struct {
	Rows []CostRow
}

// Table renders the analysis.
func (r CostResult) Table() *stats.Table {
	t := stats.NewTable(
		"Cost-effectiveness (Wood-Hill): speedup vs costup as processor cost share varies",
		"benchmark", "nodes", "speedup",
		"costup p=10%", "ok", "costup p=30%", "ok", "costup p=50%", "ok")
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Nodes, stats.Round2(row.Speedup),
			stats.Round2(row.CostupProc10), mark(row.Effective10),
			stats.Round2(row.CostupProc30), mark(row.Effective30),
			stats.Round2(row.CostupProc50), mark(row.Effective50))
	}
	return t
}

// Costup computes the Wood-Hill costup for an n-node DataScalar system
// versus a uniprocessor with the same total memory: the base system
// costs procFrac (one processor) + (1-procFrac) (all memory); DataScalar
// adds n-1 more processors while the memory total is unchanged.
func Costup(n int, procFrac float64) float64 {
	if procFrac < 0 {
		procFrac = 0
	}
	if procFrac > 1 {
		procFrac = 1
	}
	return (float64(n)*procFrac + (1 - procFrac)) / 1.0
}

// CostEffectiveness derives the analysis from a Figure 7 result: the
// DataScalar speedup at each node count is its IPC over the traditional
// machine with the matching on-chip fraction, and the costup is computed
// at processor cost shares of 10%, 30%, and 50% of the single-node
// system.
func CostEffectiveness(f7 Figure7Result) CostResult {
	var out CostResult
	add := func(bench string, nodes int, speedup float64) {
		row := CostRow{
			Benchmark:    bench,
			Nodes:        nodes,
			Speedup:      speedup,
			CostupProc10: Costup(nodes, 0.10),
			CostupProc30: Costup(nodes, 0.30),
			CostupProc50: Costup(nodes, 0.50),
		}
		row.Effective10 = speedup > row.CostupProc10
		row.Effective30 = speedup > row.CostupProc30
		row.Effective50 = speedup > row.CostupProc50
		out.Rows = append(out.Rows, row)
	}
	for _, r := range f7.Rows {
		if r.Trad2IPC > 0 {
			add(r.Benchmark, 2, r.DS2IPC/r.Trad2IPC)
		}
		if r.Trad4IPC > 0 {
			add(r.Benchmark, 4, r.DS4IPC/r.Trad4IPC)
		}
	}
	return out
}
