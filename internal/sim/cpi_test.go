package sim

import (
	"context"
	"testing"

	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// checkExhaustive asserts the CPI-stack invariant for one profile: every
// cycle of every node is attributed to exactly one leaf bucket, so each
// node's stack sums to the run's cycles and the machine stack sums to
// cycles times nodes.
func checkExhaustive(t *testing.T, prof CPIProfileResult) {
	t.Helper()
	if len(prof.Rows) == 0 {
		t.Fatal("profile has no rows")
	}
	for _, row := range prof.Rows {
		if len(row.Stacks) != row.Nodes {
			t.Errorf("%s/%s: %d stacks for %d nodes", row.Benchmark, row.System, len(row.Stacks), row.Nodes)
			continue
		}
		for i, st := range row.Stacks {
			if got := st.Total(); got != row.Cycles {
				t.Errorf("%s/%s node %d: stack total = %d, want cycles = %d (leak of %d cycles)",
					row.Benchmark, row.System, i, got, row.Cycles, int64(row.Cycles)-int64(got))
			}
		}
		if got, want := row.Machine().Total(), row.Cycles*uint64(row.Nodes); got != want {
			t.Errorf("%s/%s: machine total = %d, want %d", row.Benchmark, row.System, got, want)
		}
	}
}

// TestCPIStackExhaustive is the tentpole invariant made executable: for
// every Figure 7 system, with the next-event scheduler both on and off,
// per-node bucket sums must equal total cycles — no cycle unattributed,
// none double-counted.
func TestCPIStackExhaustive(t *testing.T) {
	for _, noSkip := range []bool{false, true} {
		name := "skip"
		if noSkip {
			name = "noskip"
		}
		t.Run(name, func(t *testing.T) {
			opts := detOpts(0)
			opts.NoCycleSkip = noSkip
			prof, err := CPIProfile(context.Background(), opts, []string{"compress"})
			if err != nil {
				t.Fatal(err)
			}
			checkExhaustive(t, prof)
		})
	}
}

// TestCPIStackNodeDeath: when a node dies mid-run and the survivors
// recover, the dead node's frozen cycles must land in node.dead and the
// exhaustiveness invariant must survive the fault path.
func TestCPIStackNodeDeath(t *testing.T) {
	w, ok := workload.ByName("compress")
	if !ok {
		t.Fatal("compress workload missing")
	}
	res, err := runJobs(context.Background(), detOpts(0), []Job{{
		Workload: w, Scale: 1, Kind: KindDS, Nodes: 2, MaxInstr: 30_000,
		Fault: fault.Config{DeadNode: 1, DeathCycle: 5_000, Recover: true,
			RetryTimeoutCycles: 1_000, MaxRetries: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0].DS
	if len(r.CPIStacks) != 2 {
		t.Fatalf("got %d stacks, want 2", len(r.CPIStacks))
	}
	for i, st := range r.CPIStacks {
		if got := st.Total(); got != r.Cycles {
			t.Errorf("node %d: stack total = %d, want cycles = %d", i, got, r.Cycles)
		}
	}
	dead := r.CPIStacks[1][obs.StallDead]
	if dead == 0 {
		t.Fatal("dead node charged nothing to node.dead")
	}
	// The node froze at cycle 5000; everything after must be node.dead.
	if want := r.Cycles - 5_000; dead != want {
		t.Errorf("node.dead = %d cycles, want %d (cycles after death)", dead, want)
	}
	if live := r.CPIStacks[0][obs.StallDead]; live != 0 {
		t.Errorf("surviving node charged %d cycles to node.dead", live)
	}
}
