package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/traditional"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// This file is the experiment engine every harness runs on. A harness
// enumerates Jobs — fully independent, deterministic simulations — and
// runJobs executes them on a bounded worker pool, assembling results
// strictly in job order so the output of a sweep is bit-identical at any
// Options.Parallel setting (enforced by TestHarnessesDeterministicUnderParallelism).

// MachineKind selects the timing model a Job runs.
type MachineKind uint8

// The three systems the paper's evaluation compares.
const (
	// KindDS is the n-node DataScalar machine (the paper's contribution).
	KindDS MachineKind = iota
	// KindTraditional is the request/response baseline with 1/n of
	// memory on-chip.
	KindTraditional
	// KindPerfect is the perfect-data-cache upper bound.
	KindPerfect
)

// String names the kind.
func (k MachineKind) String() string {
	switch k {
	case KindDS:
		return "DS"
	case KindTraditional:
		return "traditional"
	case KindPerfect:
		return "perfect"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Job describes one independent timing simulation: which workload, which
// machine, at what size, under what configuration twist. Jobs carry no
// run state and are safe to copy; everything a job references (the
// assembled Program, an explicit PageTable, a RingConfig reached through
// a mutator) is read-only to the machines, so any number of jobs may run
// concurrently.
type Job struct {
	// Workload is the registry benchmark to run, prepared (assembled and
	// bench_main-located) through the memoized cache at Scale.
	Workload workload.Workload
	// Scale is the workload scale factor (values < 1 mean 1).
	Scale int
	// Program, when non-nil, overrides Workload with a pre-assembled
	// image (the synthetic Figure 3 / result-communication kernels);
	// Workload then only labels results and errors.
	Program *prog.Program

	// Kind selects the machine; Nodes is the DS node or traditional chip
	// count (ignored for KindPerfect).
	Kind  MachineKind
	Nodes int
	// MaxInstr bounds the measured instructions (0 = run to completion).
	MaxInstr uint64

	// Topology selects the interconnect family for KindDS and
	// KindTraditional machines (the zero value is the paper's global
	// bus). It is stamped onto the config before the mutators run, so a
	// DSMut can still adjust the selected family's parameters.
	Topology bus.TopologyKind

	// PageTable, when non-nil, replaces the default single-page
	// round-robin partition (profile-guided placement, replication
	// sweeps). KindDS only.
	PageTable *mem.PageTable
	// DSMut / TradMut adjust the machine configuration after defaults
	// are applied; the matching one for Kind is used. Mutators must be
	// pure functions of the config (they run on worker goroutines).
	DSMut   func(*core.Config)
	TradMut func(*traditional.Config)

	// Observer, when non-nil, receives this job's protocol events and
	// interval samples; it is combined with any observer a mutator
	// installs. Per-job observers keep tracing coherent under
	// concurrency: each job's events go to its own sink.
	Observer obs.Observer
	// NoCycleSkip disables the next-event scheduler for this job's
	// machine (stamped from Options.NoCycleSkip by runJobs).
	NoCycleSkip bool
	// ParallelNodes partitions a KindDS machine's nodes across worker
	// goroutines inside the run (core.Config.ParallelNodes). Jobs that
	// leave it zero inherit Options.ParallelNodes from runJobs; 0 or 1
	// is the serial node loop. Results are bit-identical either way.
	ParallelNodes int

	// Fault is the deterministic fault plan injected into a KindDS
	// machine (see internal/fault). The zero value builds no fault layer
	// at all, so ordinary jobs are untouched. Jobs that leave it zero
	// inherit Options.Fault from runJobs.
	Fault fault.Config
	// CaptureFailure embeds a structured failure (*fault.Report or
	// *core.DeadlockError) in the JobResult instead of failing the whole
	// sweep — campaign harnesses treat those as outcomes, not errors.
	// Unstructured errors still abort the sweep.
	CaptureFailure bool
}

// JobResult is one Job's outcome. Kind mirrors the job; DS is set for
// KindDS, Trad for KindTraditional and KindPerfect.
type JobResult struct {
	Kind MachineKind
	DS   core.Result
	Trad traditional.Result

	// Failure is the structured failure of a CaptureFailure job whose
	// machine halted (*fault.Report on a detected fault, or
	// *core.DeadlockError from the watchdog); nil when the run completed.
	Failure error `json:"-"`
	// FaultStats carries the DS fault counters even when the run halted
	// (DS.Fault covers only completed runs); nil without a fault layer.
	FaultStats *fault.Stats `json:",omitempty"`
}

// IPC returns the run's IPC regardless of machine kind.
func (r JobResult) IPC() float64 {
	if r.Kind == KindDS {
		return r.DS.IPC
	}
	return r.Trad.IPC
}

// prepare resolves the job's program image.
func (j Job) prepare() (prepared, error) {
	if j.Program != nil {
		return prepareProgram(j.Workload, j.Program)
	}
	return prepare(j.Workload, j.Scale)
}

// run executes the job to completion. It is the single copy of the
// machine-construction plumbing every harness previously hand-rolled.
func (j Job) run() (JobResult, error) {
	pr, err := j.prepare()
	if err != nil {
		return JobResult{}, err
	}
	out := JobResult{Kind: j.Kind}
	switch j.Kind {
	case KindDS:
		out.DS, out.FaultStats, err = j.runDS(pr)
		if err != nil && j.CaptureFailure && isStructuredFailure(err) {
			out.Failure, err = err, nil
		}
	case KindTraditional:
		out.Trad, err = j.runTrad(pr)
	case KindPerfect:
		out.Trad, err = j.runPerfect(pr)
	default:
		err = fmt.Errorf("sim: unknown machine kind %d", j.Kind)
	}
	if err != nil {
		return JobResult{}, err
	}
	return out, nil
}

// isStructuredFailure reports whether err is a resilience outcome a
// campaign can classify rather than a harness defect.
func isStructuredFailure(err error) bool {
	var rep *fault.Report
	var dl *core.DeadlockError
	return errors.As(err, &rep) || errors.As(err, &dl)
}

// runDS runs an n-node DataScalar machine; without an explicit PageTable
// it uses the paper's default partition (round-robin single-page
// distribution, replicated text). The fault stats pointer is returned
// separately from the Result so halted runs still expose their counters.
func (j Job) runDS(pr prepared) (core.Result, *fault.Stats, error) {
	pt := j.PageTable
	if pt == nil {
		var err error
		pt, err = defaultPartition(pr.p, j.Nodes)
		if err != nil {
			return core.Result{}, nil, err
		}
	}
	cfg := core.DefaultConfig(j.Nodes)
	cfg.Topology.Kind = j.Topology
	cfg.MaxInstr = j.MaxInstr
	cfg.FastForwardPC = pr.ff
	cfg.NoCycleSkip = j.NoCycleSkip
	cfg.ParallelNodes = j.ParallelNodes
	cfg.Fault = j.Fault
	if j.DSMut != nil {
		j.DSMut(&cfg)
	}
	cfg.Observer = obs.Multi(cfg.Observer, j.Observer)
	m, err := core.NewMachine(cfg, pr.p, pt)
	if err != nil {
		return core.Result{}, nil, err
	}
	r, err := m.Run()
	if err != nil {
		return core.Result{}, m.FaultStats(), fmt.Errorf("sim: %s DS%d: %w", pr.w.Name, j.Nodes, err)
	}
	if !r.CorrespondenceOK {
		return core.Result{}, m.FaultStats(), fmt.Errorf("sim: %s DS%d: cache correspondence violated", pr.w.Name, j.Nodes)
	}
	return r, m.FaultStats(), nil
}

// runTrad runs the traditional baseline with 1/Nodes of memory on-chip.
func (j Job) runTrad(pr prepared) (traditional.Result, error) {
	pt, err := defaultPartition(pr.p, j.Nodes)
	if err != nil {
		return traditional.Result{}, err
	}
	cfg := traditional.DefaultConfig(j.Nodes)
	cfg.Topology.Kind = j.Topology
	cfg.MaxInstr = j.MaxInstr
	cfg.FastForwardPC = pr.ff
	cfg.NoCycleSkip = j.NoCycleSkip
	if j.TradMut != nil {
		j.TradMut(&cfg)
	}
	cfg.Observer = obs.Multi(cfg.Observer, j.Observer)
	m, err := traditional.NewMachine(cfg, pr.p, pt)
	if err != nil {
		return traditional.Result{}, err
	}
	r, err := m.Run()
	if err != nil {
		return traditional.Result{}, fmt.Errorf("sim: %s trad/%d: %w", pr.w.Name, j.Nodes, err)
	}
	return r, nil
}

// runPerfect runs the perfect-data-cache baseline.
func (j Job) runPerfect(pr prepared) (traditional.Result, error) {
	cfg := traditional.DefaultConfig(2)
	cfg.Core.NoCycleSkip = j.NoCycleSkip
	if j.TradMut != nil {
		j.TradMut(&cfg)
	}
	r, err := traditional.RunPerfect(cfg.Core, pr.p, j.MaxInstr, pr.ff)
	if err != nil {
		return traditional.Result{}, fmt.Errorf("sim: %s perfect: %w", pr.w.Name, err)
	}
	return r, nil
}

// defaultPartition builds the paper's default memory partition: all data
// pages dealt round-robin one page at a time, text replicated at every
// node.
func defaultPartition(p *prog.Program, nodes int) (*mem.PageTable, error) {
	return mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(p)
}

// runJobs executes jobs on a worker pool bounded by opts.Parallel
// (already defaulted) and returns their results in job order. Every job
// is deterministic and independent, so the assembled slice — and
// therefore every table and JSON artifact built from it — is
// bit-identical to a serial run.
func runJobs(ctx context.Context, opts Options, jobs []Job) ([]JobResult, error) {
	return runIndexed(ctx, opts.Parallel, len(jobs), func(i int) (JobResult, error) {
		j := jobs[i]
		j.NoCycleSkip = opts.NoCycleSkip
		if j.ParallelNodes == 0 {
			j.ParallelNodes = opts.ParallelNodes
		}
		if j.Fault.IsZero() {
			j.Fault = opts.Fault
		}
		if j.Topology == bus.TopoBus {
			j.Topology = opts.Topology
		}
		return j.run()
	})
}

// runIndexed runs fn(0..n-1) on up to `workers` goroutines (<= 0 means
// GOMAXPROCS) and collects results in index order. On failure it returns
// the error of the lowest failing index — exactly the error a serial
// run returns, because workers claim indexes in ascending order and
// always finish what they claim: any recorded failure implies every
// smaller index was also claimed and ran to completion. A cancelled
// context stops the sweep at the next job boundary and returns ctx.Err().
func runIndexed[T any](ctx context.Context, workers, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil || failed() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Workload preparation, memoized.

// prepared bundles a workload's assembled program with its benchmark-main
// fast-forward point. A prepared value is immutable after construction
// and safe to share across concurrent jobs: machines copy the program
// image into their own memory at load and only ever read the Program.
type prepared struct {
	w  workload.Workload
	p  *prog.Program
	ff uint64
}

type prepKey struct {
	name  string
	scale int
}

type prepEntry struct {
	once sync.Once
	pr   prepared
	err  error
}

var prepCache sync.Map // prepKey -> *prepEntry

// prepare assembles workload w at the given scale and locates its
// bench_main fast-forward point, memoized per (workload, scale) so a
// sweep touching the same kernel at hundreds of points assembles it once
// per process. The registry is immutable after init, so the key fully
// determines the result.
func prepare(w workload.Workload, scale int) (prepared, error) {
	if scale < 1 {
		scale = 1
	}
	e, _ := prepCache.LoadOrStore(prepKey{w.Name, scale}, &prepEntry{})
	entry := e.(*prepEntry)
	entry.once.Do(func() {
		entry.pr, entry.err = prepareUncached(w, scale)
	})
	return entry.pr, entry.err
}

func prepareUncached(w workload.Workload, scale int) (prepared, error) {
	p, err := w.Program(scale)
	if err != nil {
		return prepared{}, err
	}
	return prepareProgram(w, p)
}

// prepareProgram wraps a pre-assembled image (synthetic kernels bypass
// the cache — their sources are built inline, not in the registry).
func prepareProgram(w workload.Workload, p *prog.Program) (prepared, error) {
	ff, ok := p.Labels["bench_main"]
	if !ok {
		name := w.Name
		if name == "" {
			name = p.Name
		}
		return prepared{}, fmt.Errorf("sim: workload %s lacks a bench_main label", name)
	}
	return prepared{w: w, p: p, ff: ff}, nil
}
