package sim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/wisc-arch/datascalar/internal/bus"
)

// detOpts are deliberately tiny: the determinism suite runs every
// harness twice (serial and 4-way parallel), so each run must be cheap.
func detOpts(parallel int) Options {
	return Options{
		Scale:       1,
		TimingInstr: 30_000,
		RefInstr:    100_000,
		SweepInstr:  10_000,
		Parallel:    parallel,
	}
}

// harnesses enumerates every experiment runner behind one uniform
// signature so the determinism and cancellation suites cover all of
// them.
var harnesses = []struct {
	name string
	// cheap harnesses stay in -short (race CI) runs; the heavy timing
	// sweeps only run in full mode.
	cheap bool
	run   func(ctx context.Context, opts Options) (any, error)
}{
	{"Table1", true, func(ctx context.Context, o Options) (any, error) { return Table1(ctx, o) }},
	{"Table2", true, func(ctx context.Context, o Options) (any, error) { return Table2(ctx, o) }},
	{"Figure7", false, func(ctx context.Context, o Options) (any, error) { return Figure7(ctx, o) }},
	{"Figure8", false, func(ctx context.Context, o Options) (any, error) { return Figure8(ctx, o) }},
	{"Scaling", false, func(ctx context.Context, o Options) (any, error) { return Scaling(ctx, o) }},
	{"MeasuredTraffic", false, func(ctx context.Context, o Options) (any, error) {
		return MeasuredTraffic(ctx, o, 8, bus.TopoMesh)
	}},
	{"AblationInterconnect", false, func(ctx context.Context, o Options) (any, error) { return AblationInterconnect(ctx, o) }},
	{"AblationWritePolicy", true, func(ctx context.Context, o Options) (any, error) { return AblationWritePolicy(ctx, o) }},
	{"AblationSyncESP", true, func(ctx context.Context, o Options) (any, error) { return AblationSyncESP(ctx, o) }},
	{"AblationResultComm", false, func(ctx context.Context, o Options) (any, error) { return AblationResultComm(ctx, o) }},
	{"AblationLatencies", false, func(ctx context.Context, o Options) (any, error) { return AblationLatencies(ctx, o) }},
	{"AblationPlacement", false, func(ctx context.Context, o Options) (any, error) { return AblationPlacement(ctx, o) }},
	{"AblationReplication", false, func(ctx context.Context, o Options) (any, error) { return AblationReplication(ctx, o) }},
	{"FaultCampaign", false, func(ctx context.Context, o Options) (any, error) {
		return FaultCampaign(ctx, o, FaultCampaignConfig{Workloads: []string{"compress"}, Seeds: 1})
	}},
	{"CPIProfile", true, func(ctx context.Context, o Options) (any, error) {
		return CPIProfile(ctx, o, []string{"compress", "mgrid"})
	}},
}

// TestHarnessesDeterministicUnderParallelism is the engine's ordering
// guarantee made executable: every harness must produce bit-identical
// structured results — and byte-identical JSON artifacts — at
// Parallel: 1 and Parallel: 4.
func TestHarnessesDeterministicUnderParallelism(t *testing.T) {
	for _, h := range harnesses {
		h := h
		t.Run(h.name, func(t *testing.T) {
			if testing.Short() && !h.cheap {
				t.Skip("heavy timing sweep skipped in short mode")
			}
			t.Parallel()
			serial, err := h.run(context.Background(), detOpts(1))
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallel, err := h.run(context.Background(), detOpts(4))
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("results differ between -parallel 1 and 4:\nserial:   %+v\nparallel: %+v",
					serial, parallel)
			}
			var sj, pj bytes.Buffer
			if err := WriteJSON(&sj, serial); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&pj, parallel); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
				t.Fatal("JSON artifacts differ between -parallel 1 and 4")
			}
		})
	}
}

// TestHarnessesHonorCancellation: a cancelled context must stop every
// harness before (or promptly after) it starts and surface ctx.Err().
func TestHarnessesHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, h := range harnesses {
		for _, parallel := range []int{1, 4} {
			_, err := h.run(ctx, detOpts(parallel))
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s (parallel=%d): err = %v, want context.Canceled", h.name, parallel, err)
			}
		}
	}
}

// TestRunIndexedOrdering: results land in index order regardless of
// completion order.
func TestRunIndexedOrdering(t *testing.T) {
	const n = 64
	out, err := runIndexed(context.Background(), 8, n, func(i int) (int, error) {
		// Later indexes finish first, exercising out-of-order completion.
		time.Sleep(time.Duration((n-i)%5) * time.Millisecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestRunIndexedRunsJobsConcurrently proves the pool genuinely overlaps
// jobs: eight 100 ms jobs on eight workers must finish in far less than
// the 800 ms a serialized pool would need. (Sleeps overlap even on one
// CPU, so this holds regardless of host core count.)
func TestRunIndexedRunsJobsConcurrently(t *testing.T) {
	const n, workers = 8, 8
	start := time.Now()
	_, err := runIndexed(context.Background(), workers, n, func(i int) (int, error) {
		time.Sleep(100 * time.Millisecond)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("8 x 100ms jobs on 8 workers took %v; pool is serialized", elapsed)
	}
}

// TestRunIndexedErrorDeterminism: the reported error must always be the
// lowest failing index's — the one a serial run would return — no matter
// how workers interleave.
func TestRunIndexedErrorDeterminism(t *testing.T) {
	const n, firstBad = 100, 7
	for round := 0; round < 20; round++ {
		_, err := runIndexed(context.Background(), 8, n, func(i int) (int, error) {
			if i >= firstBad {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != fmt.Sprintf("job %d failed", firstBad) {
			t.Fatalf("round %d: err = %v, want job %d's", round, err, firstBad)
		}
	}
}

// TestRunIndexedCancellationStopsClaiming: after cancellation no new
// jobs are claimed; only the handful already in flight may finish.
func TestRunIndexedCancellationStopsClaiming(t *testing.T) {
	const n, workers = 1000, 8
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	_, err := runIndexed(ctx, workers, n, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker can claim at most one job after cancellation wins the
	// race with its pre-claim check.
	if c := calls.Load(); c > 2*workers {
		t.Fatalf("%d jobs ran after prompt cancellation (cap %d)", c, 2*workers)
	}
}

// TestRunIndexedSerialPath covers the workers<=1 fast path and the
// degenerate sizes.
func TestRunIndexedSerialPath(t *testing.T) {
	out, err := runIndexed(context.Background(), 1, 3, func(i int) (int, error) { return i + 1, nil })
	if err != nil || !reflect.DeepEqual(out, []int{1, 2, 3}) {
		t.Fatalf("serial: %v %v", out, err)
	}
	out, err = runIndexed(context.Background(), 0, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty: %v %v", out, err)
	}
	wantErr := errors.New("boom")
	_, err = runIndexed(context.Background(), 1, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, wantErr
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("serial error path: %v", err)
	}
}

// TestJobResultIPC: the kind-dispatched accessor the harness assemblies
// rely on.
func TestJobResultIPC(t *testing.T) {
	r := JobResult{Kind: KindDS}
	r.DS.IPC, r.Trad.IPC = 2.5, 1.5
	if r.IPC() != 2.5 {
		t.Fatalf("DS IPC = %v", r.IPC())
	}
	r.Kind = KindPerfect
	if r.IPC() != 1.5 {
		t.Fatalf("perfect IPC = %v", r.IPC())
	}
	for k, want := range map[MachineKind]string{
		KindDS: "DS", KindTraditional: "traditional", KindPerfect: "perfect",
	} {
		if k.String() != want {
			t.Fatalf("String(%d) = %q", k, k.String())
		}
	}
}
