package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
)

// campaignConfig is a grid small enough for CI whose outcomes are
// nevertheless pinned: each scenario is tuned so its class resolves the
// same way on every seed (drops always detected and retried, blind
// flips always silent, death always mid-run).
func campaignConfig() FaultCampaignConfig {
	retry := fault.Config{RetryTimeoutCycles: 1_000, MaxRetries: 6}
	return FaultCampaignConfig{
		Workloads: []string{"compress", "mgrid"},
		Seeds:     2,
		Nodes:     2,
		MaxInstr:  40_000,
		Scenarios: []FaultScenario{
			{Name: "drop", Class: fault.ClassDrop, Rate: 0.05,
				Base: withRates(retry, 0.05, 0, 0)},
			{Name: "delay", Class: fault.ClassDelay, Rate: 0.2,
				Base: fault.Config{DelayRate: 0.2, DelayMaxCycles: 150}},
			{Name: "flip-fp", Class: fault.ClassFlip, Rate: 0.01,
				Base: fault.Config{FlipRate: 0.01, FingerprintInterval: 128}},
			{Name: "flip-blind", Class: fault.ClassFlip, Rate: 0.01,
				Base: fault.Config{FlipRate: 0.01}},
			{Name: "death-recover", Class: fault.ClassDeath,
				Base: fault.Config{DeadNode: 1, DeathCycle: 5_000, Recover: true,
					RetryTimeoutCycles: 1_000, MaxRetries: 3}},
			{Name: "death-halt", Class: fault.ClassDeath,
				Base: fault.Config{DeadNode: 1, DeathCycle: 5_000,
					RetryTimeoutCycles: 1_000, MaxRetries: 3}},
		},
	}
}

func summaryByName(t *testing.T, r FaultCampaignResult, name string) FaultScenarioSummary {
	t.Helper()
	for _, s := range r.Summaries {
		if s.Scenario == name {
			return s
		}
	}
	t.Fatalf("no summary for scenario %q", name)
	return FaultScenarioSummary{}
}

// TestFaultCampaignOutcomes runs the pinned grid and checks each fault
// class lands in its designed outcome: no scenario may ever produce a
// silent wrong answer except the deliberately blind one, and nothing may
// wedge into the watchdog.
func TestFaultCampaignOutcomes(t *testing.T) {
	r, err := FaultCampaign(context.Background(), detOpts(0), campaignConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r.Summaries {
		if s.Watchdog != 0 {
			t.Errorf("%s: %d runs hit the watchdog instead of detection", s.Scenario, s.Watchdog)
		}
		if s.Scenario != "flip-blind" && s.Corrupt != 0 {
			t.Errorf("%s: %d silently corrupted runs", s.Scenario, s.Corrupt)
		}
	}

	drop := summaryByName(t, r, "drop")
	if drop.Clean != drop.Runs {
		t.Errorf("drop: want all %d runs clean, got %+v", drop.Runs, drop)
	}
	if drop.Coverage <= 0 || drop.MeanDetectLatency <= 0 {
		t.Errorf("drop: no detection metrics: %+v", drop)
	}

	delay := summaryByName(t, r, "delay")
	if delay.Clean != delay.Runs {
		t.Errorf("delay: want all runs clean, got %+v", delay)
	}

	fp := summaryByName(t, r, "flip-fp")
	if fp.Halted == 0 {
		t.Errorf("flip-fp: fingerprint exchange never halted a corrupted run: %+v", fp)
	}

	blind := summaryByName(t, r, "flip-blind")
	if blind.Corrupt == 0 {
		t.Errorf("flip-blind: expected silent corruption without the exchange: %+v", blind)
	}

	rec := summaryByName(t, r, "death-recover")
	if rec.Recover != rec.Runs {
		t.Errorf("death-recover: want all %d runs recovered, got %+v", rec.Runs, rec)
	}

	halt := summaryByName(t, r, "death-halt")
	if halt.Halted != halt.Runs {
		t.Errorf("death-halt: want all %d runs halted-clean, got %+v", halt.Runs, halt)
	}

	// Per-run plausibility: recovered runs kept their baseline for the
	// overhead metric, halted runs carry the report text.
	for _, run := range r.Runs {
		switch run.Outcome {
		case OutcomeHalted, OutcomeWatchdog:
			if run.Detail == "" {
				t.Errorf("%s/%s: halted without a report", run.Workload, run.Scenario)
			}
		default:
			if run.Cycles == 0 {
				t.Errorf("%s/%s: completed run has no cycle count", run.Workload, run.Scenario)
			}
		}
		if run.Stats == nil {
			t.Errorf("%s/%s: missing fault stats", run.Workload, run.Scenario)
		}
	}
	if r.Table().NumRows() != len(r.Summaries) {
		t.Error("summary table row count mismatch")
	}
}

// TestFaultCampaignDeterministic: the same campaign config must yield a
// byte-identical JSON artifact serially and on a 4-way pool — seeded
// fault plans may not leak any scheduling nondeterminism.
func TestFaultCampaignDeterministic(t *testing.T) {
	cc := campaignConfig()
	var artifacts [][]byte
	var results []FaultCampaignResult
	for _, par := range []int{1, 4} {
		r, err := FaultCampaign(context.Background(), detOpts(par), cc)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, buf.Bytes())
		results = append(results, r)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("campaign results differ between -parallel 1 and 4")
	}
	if !bytes.Equal(artifacts[0], artifacts[1]) {
		t.Fatal("campaign JSON artifacts differ between -parallel 1 and 4")
	}
}

// TestCascadeCampaign64Mesh is the scale acceptance test for graceful
// degradation: a three-deep sequential-death cascade on a 64-node mesh
// must complete degraded at every depth (a monotone survival curve at
// 100%), and the whole campaign must produce a byte-identical JSON
// artifact when each run's nodes are partitioned across four worker
// goroutines — fault recovery and intra-run parallelism compose.
func TestCascadeCampaign64Mesh(t *testing.T) {
	cc := FaultCampaignConfig{
		Workloads: []string{"compress"},
		Seeds:     1,
		Nodes:     64,
		MaxInstr:  20_000,
		Topology:  bus.TopoMesh,
		Deaths:    3,
	}
	run := func(parallelNodes int) (FaultCampaignResult, []byte) {
		c := cc
		c.ParallelNodes = parallelNodes
		r, err := FaultCampaign(context.Background(), detOpts(1), c)
		if err != nil {
			t.Fatalf("parallel-nodes=%d: %v", parallelNodes, err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, r); err != nil {
			t.Fatalf("parallel-nodes=%d: %v", parallelNodes, err)
		}
		return r, buf.Bytes()
	}

	serial, serialJSON := run(1)
	if len(serial.Survival) != 3 {
		t.Fatalf("survival curve has %d points, want 3", len(serial.Survival))
	}
	for i, p := range serial.Survival {
		if p.Deaths != i+1 || p.Runs != 1 || p.Survived != 1 || p.Rate != 1 {
			t.Errorf("survival point %d: %+v", i, p)
		}
	}
	for _, r := range serial.Runs {
		if r.Outcome != OutcomeRecovered {
			t.Errorf("%s/%s: outcome %s, want recovered (%s)",
				r.Workload, r.Scenario, r.Outcome, r.Detail)
		}
		if r.Stats == nil || len(r.Stats.Deaths) == 0 {
			t.Errorf("%s/%s: no deaths landed", r.Workload, r.Scenario)
		}
	}
	if tb := serial.SurvivalTable(); tb == nil || tb.NumRows() != 3 {
		t.Error("survival table missing or wrong size")
	}

	par, parJSON := run(4)
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel-nodes=4 changed the cascade campaign result")
	}
	if !bytes.Equal(serialJSON, parJSON) {
		t.Fatal("parallel-nodes=4 changed the cascade campaign JSON artifact")
	}
}
