package sim

import (
	"context"
	"errors"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// The fault-injection campaign harness: a sweep over (workload × fault
// scenario × seed) that runs each DataScalar simulation under a seeded
// fault plan, classifies the outcome, and aggregates detection coverage,
// detection latency, and retry overhead per scenario. Like every other
// harness it runs on the experiment engine, so a campaign is
// bit-reproducible at any Options.Parallel setting.

// FaultScenario is one fault class at one intensity. Base carries the
// class-specific knobs; the campaign stamps a distinct seed per run.
type FaultScenario struct {
	Name  string      `json:"name"`
	Class fault.Class `json:"class"`
	// Rate is the scenario's headline intensity (events per eligible
	// arrival for drops/delays/flips; unused for death scenarios).
	Rate float64      `json:"rate"`
	Base fault.Config `json:"base"`
}

// DefaultFaultScenarios is the standard campaign grid: transient drops
// at two rates, delivery jitter, payload corruption under the
// fingerprint exchange, and a permanent node death with and without
// recovery.
func DefaultFaultScenarios() []FaultScenario {
	retry := fault.Config{RetryTimeoutCycles: 2_000, MaxRetries: 6}
	death := fault.Config{
		DeadNode: 1, DeathCycle: 30_000,
		RetryTimeoutCycles: 2_000, MaxRetries: 4,
	}
	return []FaultScenario{
		{Name: "drop-1%", Class: fault.ClassDrop, Rate: 0.01,
			Base: withRates(retry, 0.01, 0, 0)},
		{Name: "drop-5%", Class: fault.ClassDrop, Rate: 0.05,
			Base: withRates(retry, 0.05, 0, 0)},
		{Name: "delay-10%", Class: fault.ClassDelay, Rate: 0.10,
			Base: fault.Config{DelayRate: 0.10, DelayMaxCycles: 200}},
		{Name: "flip-fp", Class: fault.ClassFlip, Rate: 0.002,
			Base: fault.Config{FlipRate: 0.002, FingerprintInterval: 256}},
		{Name: "flip-blind", Class: fault.ClassFlip, Rate: 0.002,
			Base: fault.Config{FlipRate: 0.002}},
		{Name: "death-recover", Class: fault.ClassDeath, Rate: 0,
			Base: withRecover(death, true)},
		{Name: "death-halt", Class: fault.ClassDeath, Rate: 0,
			Base: withRecover(death, false)},
	}
}

func withRates(c fault.Config, drop, delay, flip float64) fault.Config {
	c.DropRate, c.DelayRate, c.FlipRate = drop, delay, flip
	return c
}

func withRecover(c fault.Config, rec bool) fault.Config {
	c.Recover = rec
	return c
}

// Cascade schedule shape: the first death lands after the machine has
// warmed up, and successors are spaced far enough apart that detection
// (MaxRetries × the backoff-capped timeout) and re-replication complete
// between deaths — each death in the sequence tests a freshly remapped
// ownership map, not a half-recovered one.
const (
	cascadeFirstDeathCycle = 4_000
	cascadeDeathSpacing    = 8_000
)

// CascadeScenarios builds the sequential-death scenario family:
// cascade-k kills nodes 1..k in ring order at spaced cycles with
// recovery enabled, so the campaign measures how deep a death sequence
// the re-replication path survives. Every scenario needs a machine of
// at least depth+1 nodes.
func CascadeScenarios(depth int) []FaultScenario {
	out := make([]FaultScenario, 0, depth)
	for k := 1; k <= depth; k++ {
		deaths := make([]fault.Death, k)
		for j := range deaths {
			deaths[j] = fault.Death{
				Node:  j + 1,
				Cycle: cascadeFirstDeathCycle + uint64(j)*cascadeDeathSpacing,
			}
		}
		out = append(out, FaultScenario{
			Name:  fmt.Sprintf("cascade-%d", k),
			Class: fault.ClassDeath,
			Base: fault.Config{
				Deaths:  deaths,
				Recover: true,
				// The backoff cap keeps detection latency bounded so the
				// next death in the schedule always hits a remapped machine.
				RetryTimeoutCycles:    1_000,
				RetryBackoffCapCycles: 1_000,
				MaxRetries:            4,
			},
		})
	}
	return out
}

// FaultCampaignConfig bounds a campaign. Zero fields take defaults.
type FaultCampaignConfig struct {
	// Workloads names the registry benchmarks to inject into (default:
	// compress, mgrid, go — one integer, one floating-point, one
	// pointer-heavy timing kernel).
	Workloads []string
	// Scenarios is the fault grid (default: DefaultFaultScenarios).
	Scenarios []FaultScenario
	// Seeds is the number of distinct fault seeds per (workload,
	// scenario) cell (default 3).
	Seeds int
	// Nodes is the DataScalar machine size (default 2, or Deaths+1 for
	// cascade campaigns).
	Nodes int
	// MaxInstr bounds each run's measured instructions (default
	// Options.SweepInstr).
	MaxInstr uint64
	// Topology selects the interconnect for every run, baseline
	// included (default bus).
	Topology bus.TopologyKind
	// ParallelNodes partitions each run's nodes across worker
	// goroutines (core.Config.ParallelNodes); results are bit-identical
	// at any setting.
	ParallelNodes int
	// Deaths, when positive, replaces the default scenario grid with
	// the cascade family CascadeScenarios(Deaths) — sequential owner
	// deaths of increasing depth, reported as a survival curve.
	// Ignored when Scenarios is set explicitly.
	Deaths int
}

func (c FaultCampaignConfig) withDefaults(opts Options) FaultCampaignConfig {
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"compress", "mgrid", "go"}
	}
	if len(c.Scenarios) == 0 {
		if c.Deaths > 0 {
			c.Scenarios = CascadeScenarios(c.Deaths)
		} else {
			c.Scenarios = DefaultFaultScenarios()
		}
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Nodes <= 0 {
		c.Nodes = 2
		if c.Deaths > 0 {
			c.Nodes = c.Deaths + 1
		}
	}
	if c.MaxInstr == 0 {
		c.MaxInstr = opts.SweepInstr
	}
	return c
}

// Campaign outcome classes.
const (
	// OutcomeClean: the run completed with nothing to detect left
	// undetected.
	OutcomeClean = "clean"
	// OutcomeRecovered: a node died and the machine finished degraded on
	// the survivors.
	OutcomeRecovered = "recovered"
	// OutcomeHalted: the machine stopped itself with a structured
	// fault.Report — detected, no wrong answer published.
	OutcomeHalted = "halted-clean"
	// OutcomeCorrupted: the run completed but carried injected payload
	// corruption it never detected — the silent failure the detection
	// layers exist to prevent.
	OutcomeCorrupted = "corrupted"
	// OutcomeWatchdog: the deadlock watchdog fired — the fault wedged
	// the protocol instead of being detected and explained.
	OutcomeWatchdog = "watchdog"
)

// FaultRun is one simulation of the campaign grid.
type FaultRun struct {
	Workload string      `json:"workload"`
	Scenario string      `json:"scenario"`
	Class    fault.Class `json:"class"`
	Seed     uint64      `json:"seed"`
	Outcome  string      `json:"outcome"`
	// Cycles is the run length (0 for halted/watchdog runs);
	// BaselineCycles the fault-free run of the same workload.
	Cycles         uint64 `json:"cycles"`
	BaselineCycles uint64 `json:"baseline_cycles"`
	// OverheadPct is the slowdown over the fault-free baseline, percent
	// (completed runs only).
	OverheadPct float64 `json:"overhead_pct"`
	// Injected counts detectable injected faults (drops + flips + death);
	// Detected how many of them the machine caught.
	Injected uint64 `json:"injected"`
	Detected uint64 `json:"detected"`
	// MeanDetectLatency is the mean cycles from injection to detection.
	MeanDetectLatency float64 `json:"mean_detect_latency"`
	Retries           uint64  `json:"retries"`
	// Detail is the structured failure text for halted/watchdog runs.
	Detail string       `json:"detail,omitempty"`
	Stats  *fault.Stats `json:"stats,omitempty"`
}

// FaultScenarioSummary aggregates one scenario across workloads and
// seeds.
type FaultScenarioSummary struct {
	Scenario string      `json:"scenario"`
	Class    fault.Class `json:"class"`
	Rate     float64     `json:"rate"`
	Runs     int         `json:"runs"`
	Clean    int         `json:"clean"`
	Recover  int         `json:"recovered"`
	Halted   int         `json:"halted_clean"`
	Corrupt  int         `json:"corrupted"`
	Watchdog int         `json:"watchdog"`
	// Coverage is detected/injected over the whole scenario (1 when
	// nothing detectable was injected).
	Coverage float64 `json:"coverage"`
	// MeanDetectLatency is detection-weighted, in cycles.
	MeanDetectLatency float64 `json:"mean_detect_latency"`
	// MeanOverheadPct averages the slowdown of completed runs.
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
}

// SurvivalPoint is one x-position of a survival curve: of the runs
// scheduled for this many deaths, how many finished their work degraded
// instead of halting or wedging, and how fast the final survivor set
// ran.
type SurvivalPoint struct {
	// Deaths is the scheduled cascade depth (the scenario's plan), and
	// MeanDeathsSeen the mean deaths that actually landed before the
	// runs ended — lower when a run finishes ahead of a late death.
	Deaths         int     `json:"deaths"`
	MeanDeathsSeen float64 `json:"mean_deaths_seen"`
	Runs           int     `json:"runs"`
	Survived       int     `json:"survived"`
	// Rate is Survived/Runs.
	Rate float64 `json:"rate"`
	// MeanPostDeathIPC averages the survivors' throughput after the last
	// death that landed (DeathStats.PostDeathIPC), over surviving runs
	// that saw at least one death.
	MeanPostDeathIPC float64 `json:"mean_post_death_ipc"`
	// MeanOverheadPct averages the slowdown of surviving runs over the
	// fault-free baseline.
	MeanOverheadPct float64 `json:"mean_overhead_pct"`
}

// FaultCampaignResult is the whole campaign. Execution details that do
// not change the numbers (worker counts) are deliberately absent, so
// the artifact is byte-identical at any -parallel / -parallel-nodes
// setting.
type FaultCampaignResult struct {
	Nodes     int                    `json:"nodes"`
	MaxInstr  uint64                 `json:"max_instr"`
	Topology  string                 `json:"topology"`
	Runs      []FaultRun             `json:"runs"`
	Summaries []FaultScenarioSummary `json:"summaries"`
	// Survival is the survival curve over cascade scenarios (those with
	// a multi-death schedule), one point per scheduled depth; empty for
	// campaigns without cascade scenarios.
	Survival []SurvivalPoint `json:"survival,omitempty"`
}

// Table renders the per-scenario summary.
func (r FaultCampaignResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Fault campaign: %d-node DataScalar, %d runs", r.Nodes, len(r.Runs)),
		"scenario", "class", "runs", "clean", "recovered", "halted", "corrupted",
		"watchdog", "coverage", "detect lat (cyc)", "overhead")
	for _, s := range r.Summaries {
		t.AddRow(s.Scenario, s.Class.String(),
			fmt.Sprintf("%d", s.Runs), fmt.Sprintf("%d", s.Clean),
			fmt.Sprintf("%d", s.Recover), fmt.Sprintf("%d", s.Halted),
			fmt.Sprintf("%d", s.Corrupt), fmt.Sprintf("%d", s.Watchdog),
			stats.FormatPercent(s.Coverage*100),
			fmt.Sprintf("%.0f", s.MeanDetectLatency),
			stats.FormatPercent1(s.MeanOverheadPct))
	}
	return t
}

// SurvivalTable renders the survival curve; nil when the campaign had
// no cascade scenarios.
func (r FaultCampaignResult) SurvivalTable() *stats.Table {
	if len(r.Survival) == 0 {
		return nil
	}
	t := stats.NewTable(
		fmt.Sprintf("Survival curve: %d-node DataScalar on %s", r.Nodes, r.Topology),
		"deaths", "seen", "runs", "survived", "rate", "post-death IPC", "overhead")
	for _, p := range r.Survival {
		t.AddRow(fmt.Sprintf("%d", p.Deaths),
			fmt.Sprintf("%.1f", p.MeanDeathsSeen),
			fmt.Sprintf("%d", p.Runs), fmt.Sprintf("%d", p.Survived),
			stats.FormatPercent(p.Rate*100),
			fmt.Sprintf("%.3f", p.MeanPostDeathIPC),
			stats.FormatPercent1(p.MeanOverheadPct))
	}
	return t
}

// FaultCampaign runs the campaign: a fault-free baseline per workload,
// then every (workload × scenario × seed) cell with CaptureFailure so
// detected halts and watchdog aborts become classified outcomes instead
// of sweep errors. Campaigns are deterministic: seeds derive from grid
// position alone, so the same config reproduces the same table bit for
// bit, serial or parallel.
func FaultCampaign(ctx context.Context, opts Options, cc FaultCampaignConfig) (FaultCampaignResult, error) {
	opts = opts.withDefaults()
	opts.Fault = fault.Config{} // baselines must stay fault-free
	cc = cc.withDefaults(opts)

	var out FaultCampaignResult
	out.Nodes = cc.Nodes
	out.MaxInstr = cc.MaxInstr
	out.Topology = cc.Topology.String()

	ws := make([]workload.Workload, len(cc.Workloads))
	for i, name := range cc.Workloads {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: fault campaign: unknown workload %q", name)
		}
		ws[i] = w
	}

	// Phase 1: fault-free baselines for the overhead denominator.
	base := make([]Job, len(ws))
	for i, w := range ws {
		base[i] = Job{Workload: w, Scale: opts.Scale, Kind: KindDS,
			Nodes: cc.Nodes, MaxInstr: cc.MaxInstr,
			Topology: cc.Topology, ParallelNodes: cc.ParallelNodes}
	}
	baseRes, err := runJobs(ctx, opts, base)
	if err != nil {
		return out, err
	}

	// Phase 2: the grid.
	type cell struct {
		wi, si int
		seed   uint64
	}
	var cells []cell
	var jobs []Job
	for wi, w := range ws {
		for si, sc := range cc.Scenarios {
			for k := 0; k < cc.Seeds; k++ {
				fc := sc.Base
				fc.Seed = fault.Mix64(uint64(wi+1)<<40 | uint64(si+1)<<16 | uint64(k+1))
				cells = append(cells, cell{wi, si, fc.Seed})
				jobs = append(jobs, Job{Workload: w, Scale: opts.Scale,
					Kind: KindDS, Nodes: cc.Nodes, MaxInstr: cc.MaxInstr,
					Topology: cc.Topology, ParallelNodes: cc.ParallelNodes,
					Fault: fc, CaptureFailure: true})
			}
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}

	for i, c := range cells {
		sc := cc.Scenarios[c.si]
		run := FaultRun{
			Workload: ws[c.wi].Name, Scenario: sc.Name, Class: sc.Class,
			Seed:           c.seed,
			BaselineCycles: baseRes[c.wi].DS.Cycles,
			Stats:          res[i].FaultStats,
		}
		run.Outcome = classifyFaultOutcome(res[i])
		if res[i].Failure != nil {
			run.Detail = res[i].Failure.Error()
		} else {
			run.Cycles = res[i].DS.Cycles
			if run.BaselineCycles > 0 && run.Cycles > run.BaselineCycles {
				run.OverheadPct = 100 * float64(run.Cycles-run.BaselineCycles) /
					float64(run.BaselineCycles)
			}
		}
		if st := res[i].FaultStats; st != nil {
			run.Injected = st.InjectedDrops + st.InjectedFlips
			run.Detected = st.DetectedDrops + st.DetectedFlips
			if len(st.Deaths) > 0 {
				run.Injected += uint64(len(st.Deaths))
				for _, d := range st.Deaths {
					if d.Detected {
						run.Detected++
					}
				}
			} else {
				if st.NodeDied {
					run.Injected++
				}
				if st.DeathDetected {
					run.Detected++
				}
			}
			run.MeanDetectLatency = st.MeanDetectLatency()
			run.Retries = st.Retries
		}
		out.Runs = append(out.Runs, run)
	}

	for si, sc := range cc.Scenarios {
		s := FaultScenarioSummary{Scenario: sc.Name, Class: sc.Class, Rate: sc.Rate}
		var injected, detected, latSum, detections uint64
		var overheadSum float64
		var completed int
		for i, c := range cells {
			if c.si != si {
				continue
			}
			run := out.Runs[i]
			s.Runs++
			switch run.Outcome {
			case OutcomeClean:
				s.Clean++
			case OutcomeRecovered:
				s.Recover++
			case OutcomeHalted:
				s.Halted++
			case OutcomeCorrupted:
				s.Corrupt++
			case OutcomeWatchdog:
				s.Watchdog++
			}
			injected += run.Injected
			detected += run.Detected
			if st := run.Stats; st != nil {
				latSum += st.DetectLatencySum
				detections += st.Detections
			}
			if run.Cycles > 0 {
				overheadSum += run.OverheadPct
				completed++
			}
		}
		s.Coverage = 1
		if injected > 0 {
			s.Coverage = float64(detected) / float64(injected)
		}
		if detections > 0 {
			s.MeanDetectLatency = float64(latSum) / float64(detections)
		}
		if completed > 0 {
			s.MeanOverheadPct = overheadSum / float64(completed)
		}
		out.Summaries = append(out.Summaries, s)
	}

	// Survival curve: one point per cascade scenario (scheduled
	// multi-death plans), in scenario order, which CascadeScenarios
	// emits by increasing depth.
	for si, sc := range cc.Scenarios {
		depth := len(sc.Base.Deaths)
		if depth == 0 {
			continue
		}
		p := SurvivalPoint{Deaths: depth}
		var seen int
		var ipcSum float64
		var ipcRuns int
		var overheadSum float64
		for i, c := range cells {
			if c.si != si {
				continue
			}
			run := out.Runs[i]
			p.Runs++
			if st := run.Stats; st != nil {
				seen += len(st.Deaths)
			}
			if run.Outcome != OutcomeClean && run.Outcome != OutcomeRecovered {
				continue
			}
			p.Survived++
			overheadSum += run.OverheadPct
			if st := run.Stats; st != nil && len(st.Deaths) > 0 {
				if ipc := st.Deaths[len(st.Deaths)-1].PostDeathIPC; ipc > 0 {
					ipcSum += ipc
					ipcRuns++
				}
			}
		}
		if p.Runs > 0 {
			p.MeanDeathsSeen = float64(seen) / float64(p.Runs)
			p.Rate = float64(p.Survived) / float64(p.Runs)
		}
		if ipcRuns > 0 {
			p.MeanPostDeathIPC = ipcSum / float64(ipcRuns)
		}
		if p.Survived > 0 {
			p.MeanOverheadPct = overheadSum / float64(p.Survived)
		}
		out.Survival = append(out.Survival, p)
	}
	return out, nil
}

// classifyFaultOutcome maps one captured job result to its campaign
// outcome class.
func classifyFaultOutcome(r JobResult) string {
	if r.Failure != nil {
		var rep *fault.Report
		if errors.As(r.Failure, &rep) {
			return OutcomeHalted
		}
		var dl *core.DeadlockError
		if errors.As(r.Failure, &dl) {
			return OutcomeWatchdog
		}
		return OutcomeWatchdog // unreachable: CaptureFailure only keeps the two
	}
	st := r.FaultStats
	if st == nil {
		return OutcomeClean
	}
	if st.InjectedFlips > 0 && st.DetectedFlips == 0 {
		return OutcomeCorrupted
	}
	// A completed run with any landed death finished degraded — even when
	// no survivor ever referenced the dead owner's pages, so detection
	// (and Degraded) never triggered.
	if st.Degraded || len(st.Deaths) > 0 {
		return OutcomeRecovered
	}
	return OutcomeClean
}
