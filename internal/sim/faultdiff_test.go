package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"github.com/wisc-arch/datascalar/internal/fault"
)

// TestFaultZeroRateDifferential is the sim-level half of the zero-rate
// guarantee: an Options.Fault whose injection knobs are all zero (here
// with retry tuning set, so the struct is non-zero but Enabled() is
// false) must leave every harness's structured result — and its JSON
// artifact — byte-identical to a run with no fault configuration at
// all, serially and on a 4-way pool. The fault layer may not perturb a
// healthy machine by existing.
func TestFaultZeroRateDifferential(t *testing.T) {
	variants := []struct {
		name  string
		fault fault.Config
		par   int
	}{
		{"none/serial", fault.Config{}, 1},
		{"none/parallel4", fault.Config{}, 4},
		{"zero-rate/serial", fault.Config{RetryTimeoutCycles: 777, MaxRetries: 3}, 1},
		{"zero-rate/parallel4", fault.Config{RetryTimeoutCycles: 777, MaxRetries: 3}, 4},
	}
	for _, h := range harnesses {
		h := h
		if h.name == "FaultCampaign" {
			continue // injects by design; covered by its own determinism test
		}
		t.Run(h.name, func(t *testing.T) {
			if testing.Short() && !h.cheap {
				t.Skip("heavy timing sweep skipped in short mode")
			}
			t.Parallel()
			var ref any
			var refJSON []byte
			for _, v := range variants {
				opts := detOpts(v.par)
				opts.Fault = v.fault
				res, err := h.run(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				var buf bytes.Buffer
				if err := WriteJSON(&buf, res); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if ref == nil {
					ref, refJSON = res, buf.Bytes()
					continue
				}
				if !reflect.DeepEqual(ref, res) {
					t.Fatalf("results differ between %s and %s", variants[0].name, v.name)
				}
				if !bytes.Equal(refJSON, buf.Bytes()) {
					t.Fatalf("JSON artifacts differ between %s and %s", variants[0].name, v.name)
				}
			}
		})
	}
}
