package sim

import (
	"context"

	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Figure7Row is one benchmark's IPC across the five systems the paper
// compares: a perfect data cache, DataScalar at two and four nodes, and
// traditional machines with one half and one quarter of memory on-chip.
type Figure7Row struct {
	Benchmark  string
	PerfectIPC float64
	DS2IPC     float64
	DS4IPC     float64
	Trad2IPC   float64 // 1/2 memory on-chip
	Trad4IPC   float64 // 1/4 memory on-chip
	DS2Detail  core.Result
	DS4Detail  core.Result
	Instr      uint64
}

// Figure7Result holds the timing comparison.
type Figure7Result struct {
	Rows []Figure7Row
}

// Table renders IPCs in the layout of the paper's Figure 7 bar chart.
func (r Figure7Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 7: Timing simulation DataScalar results (IPC)",
		"benchmark", "perfect", "DS 2-node", "DS 4-node", "trad 1/2", "trad 1/4")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.PerfectIPC, row.DS2IPC, row.DS4IPC,
			row.Trad2IPC, row.Trad4IPC)
	}
	return t
}

// Figure7 reproduces the paper's timing comparison over the six timing
// benchmarks (applu, compress, go, mgrid, turb3d, wave5): identical
// processors, with the DataScalar runs distributing all data pages
// round-robin (no static data replication, text replicated, as in the
// paper) and the traditional runs holding the matching fraction of
// memory on-chip.
func Figure7(ctx context.Context, opts Options) (Figure7Result, error) {
	opts = opts.withDefaults()
	var out Figure7Result
	ws := workload.TimingSet()
	var jobs []Job
	for _, w := range ws {
		// Five systems per benchmark: perfect, DS2, DS4, trad 1/2, trad 1/4.
		jobs = append(jobs,
			Job{Workload: w, Scale: opts.Scale, Kind: KindPerfect, MaxInstr: opts.TimingInstr},
			Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: 2, MaxInstr: opts.TimingInstr},
			Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: 4, MaxInstr: opts.TimingInstr},
			Job{Workload: w, Scale: opts.Scale, Kind: KindTraditional, Nodes: 2, MaxInstr: opts.TimingInstr},
			Job{Workload: w, Scale: opts.Scale, Kind: KindTraditional, Nodes: 4, MaxInstr: opts.TimingInstr},
		)
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	for i, w := range ws {
		perfect, ds2, ds4, t2, t4 := res[5*i], res[5*i+1], res[5*i+2], res[5*i+3], res[5*i+4]
		out.Rows = append(out.Rows, Figure7Row{
			Benchmark:  w.Name,
			PerfectIPC: perfect.IPC(),
			Instr:      perfect.Trad.Instructions,
			DS2IPC:     ds2.IPC(),
			DS2Detail:  ds2.DS,
			DS4IPC:     ds4.IPC(),
			DS4Detail:  ds4.DS,
			Trad2IPC:   t2.IPC(),
			Trad4IPC:   t4.IPC(),
		})
	}
	return out, nil
}

// Table3Row is one benchmark's broadcast statistics (paper Table 3),
// derived from the DataScalar timing runs: the arithmetic mean over all
// nodes of the late-broadcast fraction, the BSHR squash fraction, and the
// fraction of remote accesses that found their data already waiting in
// the BSHR (datathreading evidence).
type Table3Row struct {
	Benchmark string
	// Late2/Late4: late (commit-time) broadcasts as a fraction of all
	// broadcasts, at 2 and 4 nodes.
	Late2, Late4 float64
	// Squash2/Squash4: squashed arrivals as a fraction of BSHR accesses.
	Squash2, Squash4 float64
	// Found2/Found4: remote accesses whose data was waiting in the BSHR.
	Found2, Found4 float64
}

// Table3Result holds the broadcast statistics.
type Table3Result struct {
	Rows []Table3Row
}

// Table renders the statistics in the paper's Table 3 layout.
func (r Table3Result) Table() *stats.Table {
	t := stats.NewTable(
		"Table 3: DataScalar broadcast statistics (mean over nodes; 2 / 4 nodes)",
		"benchmark", "late bcast (2)", "late bcast (4)",
		"BSHR squash (2)", "BSHR squash (4)", "in BSHR (2)", "in BSHR (4)")
	for _, row := range r.Rows {
		t.AddRow(row.Benchmark,
			stats.FormatPercent1(row.Late2*100), stats.FormatPercent1(row.Late4*100),
			stats.FormatPercent1(row.Squash2*100), stats.FormatPercent1(row.Squash4*100),
			stats.FormatPercent1(row.Found2*100), stats.FormatPercent1(row.Found4*100))
	}
	return t
}

// Table3 derives the paper's Table 3 from a Figure 7 result.
func Table3(f7 Figure7Result) Table3Result {
	var out Table3Result
	for _, row := range f7.Rows {
		out.Rows = append(out.Rows, Table3Row{
			Benchmark: row.Benchmark,
			Late2:     lateFraction(row.DS2Detail),
			Late4:     lateFraction(row.DS4Detail),
			Squash2:   squashFraction(row.DS2Detail),
			Squash4:   squashFraction(row.DS4Detail),
			Found2:    foundFraction(row.DS2Detail),
			Found4:    foundFraction(row.DS4Detail),
		})
	}
	return out
}

func lateFraction(r core.Result) float64 {
	var late, total uint64
	for _, n := range r.Nodes {
		late += n.LateBroadcasts.Value()
		total += n.Broadcasts.Value()
	}
	return stats.Ratio{Part: late, Whole: total}.Value()
}

func squashFraction(r core.Result) float64 {
	var squash, accesses uint64
	for _, b := range r.BSHR {
		squash += b.Squashes.Value()
		accesses += b.Accesses()
	}
	return stats.Ratio{Part: squash, Whole: accesses}.Value()
}

func foundFraction(r core.Result) float64 {
	var found, remote uint64
	for i := range r.BSHR {
		found += r.BSHR[i].BufferedHits.Value()
		remote += r.Nodes[i].RemoteMisses.Value()
	}
	return stats.Ratio{Part: found, Whole: remote}.Value()
}
