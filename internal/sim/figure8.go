package sim

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/traditional"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Figure8Param identifies one swept parameter of the sensitivity
// analysis.
type Figure8Param string

// The five parameters the paper sweeps in Figure 8.
const (
	ParamCacheKB  Figure8Param = "cache size (KB)"
	ParamMemNs    Figure8Param = "memory access time (cycles)"
	ParamBusClock Figure8Param = "bus clock (proc. cycles)"
	ParamBusWidth Figure8Param = "bus width (bytes)"
	ParamRUU      Figure8Param = "RUU entries"
)

// Figure8Point is one (parameter value, five IPCs) sample.
type Figure8Point struct {
	Value   int
	Perfect float64
	DS2     float64
	DS4     float64
	Trad2   float64
	Trad4   float64
}

// Figure8Series is one parameter's sweep for one benchmark.
type Figure8Series struct {
	Benchmark string
	Param     Figure8Param
	Points    []Figure8Point
}

// Figure8Result holds the whole sensitivity analysis.
type Figure8Result struct {
	Series []Figure8Series
}

// Tables renders one table per (benchmark, parameter) series.
func (r Figure8Result) Tables() []*stats.Table {
	var out []*stats.Table
	for _, s := range r.Series {
		t := stats.NewTable(
			fmt.Sprintf("Figure 8: %s — IPC vs %s", s.Benchmark, s.Param),
			string(s.Param), "perfect", "DS 2-node", "DS 4-node", "trad 1/2", "trad 1/4")
		for _, p := range s.Points {
			t.AddRowf(p.Value, p.Perfect, p.DS2, p.DS4, p.Trad2, p.Trad4)
		}
		out = append(out, t)
	}
	return out
}

// Figure8Sweeps returns the default parameter values, matching the axes
// of the paper's plots.
func Figure8Sweeps() map[Figure8Param][]int {
	return map[Figure8Param][]int{
		ParamCacheKB:  {4, 8, 16, 32, 64},
		ParamMemNs:    {4, 8, 16, 32, 64},
		ParamBusClock: {1, 2, 4, 8, 16},
		ParamBusWidth: {2, 4, 8, 16, 32},
		ParamRUU:      {32, 64, 128, 256, 512},
	}
}

// Figure8Order fixes the rendering order of the sweeps.
var Figure8Order = []Figure8Param{
	ParamCacheKB, ParamMemNs, ParamBusClock, ParamBusWidth, ParamRUU,
}

// Figure8 reproduces the paper's sensitivity analysis on the go and
// compress analogues: every parameter is swept one at a time around the
// default configuration, measuring the same five systems as Figure 7.
func Figure8(opts Options) (Figure8Result, error) {
	opts = opts.withDefaults()
	var out Figure8Result
	sweeps := Figure8Sweeps()
	for _, name := range []string{"go", "compress"} {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: missing workload %s", name)
		}
		pr, err := prepare(w, opts.Scale)
		if err != nil {
			return out, err
		}
		for _, param := range Figure8Order {
			series := Figure8Series{Benchmark: name, Param: param}
			for _, v := range sweeps[param] {
				pt, err := figure8Point(pr, param, v, opts.SweepInstr)
				if err != nil {
					return out, fmt.Errorf("sim: figure8 %s %s=%d: %w", name, param, v, err)
				}
				series.Points = append(series.Points, pt)
			}
			out.Series = append(out.Series, series)
		}
	}
	return out, nil
}

func figure8Point(pr prepared, param Figure8Param, v int, maxInstr uint64) (Figure8Point, error) {
	pt := Figure8Point{Value: v}

	dsMut := func(cfg *core.Config) { applyDSParam(cfg, param, v) }
	tradMut := func(cfg *traditional.Config) { applyTradParam(cfg, param, v) }

	perfect, err := runPerfect(pr, maxInstr, tradMut)
	if err != nil {
		return pt, err
	}
	pt.Perfect = perfect.IPC

	ds2, err := runDS(pr, 2, maxInstr, dsMut)
	if err != nil {
		return pt, err
	}
	pt.DS2 = ds2.IPC

	ds4, err := runDS(pr, 4, maxInstr, dsMut)
	if err != nil {
		return pt, err
	}
	pt.DS4 = ds4.IPC

	t2, err := runTrad(pr, 2, maxInstr, tradMut)
	if err != nil {
		return pt, err
	}
	pt.Trad2 = t2.IPC

	t4, err := runTrad(pr, 4, maxInstr, tradMut)
	if err != nil {
		return pt, err
	}
	pt.Trad4 = t4.IPC

	return pt, nil
}

func applyDSParam(cfg *core.Config, param Figure8Param, v int) {
	switch param {
	case ParamCacheKB:
		cfg.L1.SizeBytes = v * 1024
	case ParamMemNs:
		cfg.DRAM.AccessCycles = uint64(v)
	case ParamBusClock:
		cfg.Bus.ClockDivisor = uint64(v)
	case ParamBusWidth:
		cfg.Bus.WidthBytes = v
	case ParamRUU:
		cfg.Core.RUUSize = v
		cfg.Core.LSQSize = v / 2
		if cfg.Core.LSQSize < 1 {
			cfg.Core.LSQSize = 1
		}
		cfg.Core.FwdDist = uint64(cfg.Core.LSQSize)
	}
}

func applyTradParam(cfg *traditional.Config, param Figure8Param, v int) {
	switch param {
	case ParamCacheKB:
		cfg.L1.SizeBytes = v * 1024
	case ParamMemNs:
		cfg.DRAM.AccessCycles = uint64(v)
	case ParamBusClock:
		cfg.Bus.ClockDivisor = uint64(v)
	case ParamBusWidth:
		cfg.Bus.WidthBytes = v
	case ParamRUU:
		cfg.Core.RUUSize = v
		cfg.Core.LSQSize = v / 2
		if cfg.Core.LSQSize < 1 {
			cfg.Core.LSQSize = 1
		}
		cfg.Core.FwdDist = uint64(cfg.Core.LSQSize)
	}
}
