package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/cache"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/ooo"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/traditional"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Figure8Param identifies one swept parameter of the sensitivity
// analysis.
type Figure8Param string

// The five parameters the paper sweeps in Figure 8.
const (
	ParamCacheKB  Figure8Param = "cache size (KB)"
	ParamMemNs    Figure8Param = "memory access time (cycles)"
	ParamBusClock Figure8Param = "bus clock (proc. cycles)"
	ParamBusWidth Figure8Param = "bus width (bytes)"
	ParamRUU      Figure8Param = "RUU entries"
)

// Figure8Point is one (parameter value, five IPCs) sample. DSN and
// TradN are the larger systems of the grid — the paper's four-node
// pair, or whatever size Figure8At was given.
type Figure8Point struct {
	Value   int
	Perfect float64
	DS2     float64
	DSN     float64
	Trad2   float64
	TradN   float64
}

// Figure8Series is one parameter's sweep for one benchmark.
type Figure8Series struct {
	Benchmark string
	Param     Figure8Param
	Points    []Figure8Point
}

// Figure8Result holds the whole sensitivity analysis. Nodes is the
// size of the larger DS/traditional pair (the paper's is 4).
type Figure8Result struct {
	Nodes  int
	Series []Figure8Series
}

// Tables renders one table per (benchmark, parameter) series.
func (r Figure8Result) Tables() []*stats.Table {
	n := r.Nodes
	if n == 0 {
		n = 4
	}
	var out []*stats.Table
	for _, s := range r.Series {
		t := stats.NewTable(
			fmt.Sprintf("Figure 8: %s — IPC vs %s", s.Benchmark, s.Param),
			string(s.Param), "perfect", "DS 2-node", fmt.Sprintf("DS %d-node", n),
			"trad 1/2", fmt.Sprintf("trad 1/%d", n))
		for _, p := range s.Points {
			t.AddRowf(p.Value, p.Perfect, p.DS2, p.DSN, p.Trad2, p.TradN)
		}
		out = append(out, t)
	}
	return out
}

// Figure8Sweeps returns the default parameter values, matching the axes
// of the paper's plots.
func Figure8Sweeps() map[Figure8Param][]int {
	return map[Figure8Param][]int{
		ParamCacheKB:  {4, 8, 16, 32, 64},
		ParamMemNs:    {4, 8, 16, 32, 64},
		ParamBusClock: {1, 2, 4, 8, 16},
		ParamBusWidth: {2, 4, 8, 16, 32},
		ParamRUU:      {32, 64, 128, 256, 512},
	}
}

// Figure8Order fixes the rendering order of the sweeps.
var Figure8Order = []Figure8Param{
	ParamCacheKB, ParamMemNs, ParamBusClock, ParamBusWidth, ParamRUU,
}

// figure8Benchmarks are the two analogues the paper sweeps.
var figure8Benchmarks = []string{"go", "compress"}

// Figure8 reproduces the paper's sensitivity analysis on the go and
// compress analogues: every parameter is swept one at a time around the
// default configuration, measuring the same five systems as Figure 7.
// The full grid — 2 benchmarks x 5 parameters x 5 values x 5 systems =
// 250 independent timing runs — is enumerated as one job batch.
func Figure8(ctx context.Context, opts Options) (Figure8Result, error) {
	return Figure8At(ctx, opts, 4)
}

// Figure8At runs the Figure 8 sweep with the larger DS/traditional pair
// at nodes instead of the paper's four, so the sensitivity analysis can
// be repeated on bigger machines (combine with Options.Topology for
// mesh/torus sweeps). nodes must be at least 2.
func Figure8At(ctx context.Context, opts Options, nodes int) (Figure8Result, error) {
	opts = opts.withDefaults()
	out := Figure8Result{Nodes: nodes}
	if nodes < 2 {
		return out, fmt.Errorf("sim: figure 8: nodes %d < 2", nodes)
	}
	sweeps := Figure8Sweeps()
	var jobs []Job
	for _, name := range figure8Benchmarks {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: missing workload %s", name)
		}
		for _, param := range Figure8Order {
			for _, v := range sweeps[param] {
				jobs = append(jobs, figure8Jobs(w, opts, param, v, nodes)...)
			}
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	i := 0
	for range figure8Benchmarks {
		for _, param := range Figure8Order {
			series := Figure8Series{Benchmark: jobs[i].Workload.Name, Param: param}
			for _, v := range sweeps[param] {
				series.Points = append(series.Points, Figure8Point{
					Value:   v,
					Perfect: res[i].IPC(),
					DS2:     res[i+1].IPC(),
					DSN:     res[i+2].IPC(),
					Trad2:   res[i+3].IPC(),
					TradN:   res[i+4].IPC(),
				})
				i += 5
			}
			out.Series = append(out.Series, series)
		}
	}
	return out, nil
}

// figure8Jobs enumerates one sweep point's five systems in Figure 7
// order: perfect, DS2, DS-n, trad 1/2, trad 1/n.
func figure8Jobs(w workload.Workload, opts Options, param Figure8Param, v, n int) []Job {
	dsMut := func(cfg *core.Config) { applyDSParam(cfg, param, v) }
	tradMut := func(cfg *traditional.Config) { applyTradParam(cfg, param, v) }
	base := Job{Workload: w, Scale: opts.Scale, MaxInstr: opts.SweepInstr, DSMut: dsMut, TradMut: tradMut}
	jobs := make([]Job, 5)
	for i, sys := range []struct {
		kind  MachineKind
		nodes int
	}{
		{KindPerfect, 0}, {KindDS, 2}, {KindDS, n}, {KindTraditional, 2}, {KindTraditional, n},
	} {
		j := base
		j.Kind, j.Nodes = sys.kind, sys.nodes
		jobs[i] = j
	}
	return jobs
}

// applyParam applies one sweep value to the sub-configurations both
// machine kinds share; the DS- and traditional-specific appliers below
// only select the fields. The RUU sweep scales the LSQ (clamped to at
// least one entry) and the store-forwarding distance with it, as the
// paper's single RUU axis implies.
func applyParam(param Figure8Param, v int, l1 *cache.Config, dram *mem.DRAMConfig, b *bus.Config, c *ooo.Config) {
	switch param {
	case ParamCacheKB:
		l1.SizeBytes = v * 1024
	case ParamMemNs:
		dram.AccessCycles = uint64(v)
	case ParamBusClock:
		b.ClockDivisor = uint64(v)
	case ParamBusWidth:
		b.WidthBytes = v
	case ParamRUU:
		c.RUUSize = v
		c.LSQSize = v / 2
		if c.LSQSize < 1 {
			c.LSQSize = 1
		}
		c.FwdDist = uint64(c.LSQSize)
	}
}

func applyDSParam(cfg *core.Config, param Figure8Param, v int) {
	applyParam(param, v, &cfg.L1, &cfg.DRAM, &cfg.Topology.Bus, &cfg.Core)
}

func applyTradParam(cfg *traditional.Config, param Figure8Param, v int) {
	applyParam(param, v, &cfg.L1, &cfg.DRAM, &cfg.Topology.Bus, &cfg.Core)
}
