package sim

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/asm"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/mmm"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/traditional"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// workloadStub names a synthetic (non-registry) program for harness
// bookkeeping.
func workloadStub(name string) workload.Workload {
	return workload.Workload{Name: name}
}

// Figure1 reproduces the paper's Figure 1: the synchronous ESP Massive
// Memory Machine timeline for the reference string w1..w9 with w5-w7 on
// machine 1 and the rest on machine 0.
func Figure1() (mmm.Result, *stats.Table, error) {
	refs, owner := mmm.Figure1Reference()
	res, err := mmm.Simulate(mmm.DefaultConfig(), refs, owner)
	if err != nil {
		return res, nil, err
	}
	t := stats.NewTable(
		"Figure 1: Operation of the ESP Massive Memory Machine",
		"word", "owner", "received at cycle", "lead change")
	for _, ev := range res.Timeline {
		lc := ""
		if ev.LeadChange {
			lc = "yes"
		}
		t.AddRowf(fmt.Sprintf("w%d", ev.Word), ev.Owner, ev.ReceivedAt, lc)
	}
	return res, t, nil
}

// Figure3Result compares serialized off-chip crossings for a dependent
// four-operand chain where x1..x3 live on one memory chip and x4 on
// another (paper Figure 3): the DataScalar system pipelines the
// broadcasts of the co-located operands and pays two serialized
// crossings; the traditional system pays a request/response pair per
// operand, eight crossings.
type Figure3Result struct {
	// Analytic crossing counts, as in the figure.
	DSCrossings   int
	TradCrossings int
	// Measured cycles per chain traversal on the timing models.
	DSCyclesPerLap   float64
	TradCyclesPerLap float64
}

// Table renders the comparison.
func (r Figure3Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 3: Serialized off-chip accesses for a dependent 4-operand chain",
		"system", "serialized crossings", "measured cycles/lap")
	t.AddRowf("DataScalar (pipelined broadcasts)", r.DSCrossings, stats.Round1(r.DSCyclesPerLap))
	t.AddRowf("Traditional (request/response per operand)", r.TradCrossings, stats.Round1(r.TradCyclesPerLap))
	return t
}

// CountCrossings computes the figure's serialized off-chip access counts
// for a dependent operand chain. chainOwners holds each operand's owning
// chip in dependence order; cpuChip is the traditional CPU chip.
//
// DataScalar pays one serialized crossing per ownership transition along
// the chain (a datathread migration) plus one for the final operand's
// broadcast. The traditional system pays two crossings (request and
// response) for every operand not in the CPU chip's local memory.
func CountCrossings(chainOwners []int, cpuChip int) (ds, trad int) {
	if len(chainOwners) == 0 {
		return 0, 0
	}
	for i := 1; i < len(chainOwners); i++ {
		if chainOwners[i] != chainOwners[i-1] {
			ds++
		}
	}
	ds++ // final operand's broadcast
	for _, o := range chainOwners {
		if o != cpuChip {
			trad += 2
		}
	}
	return ds, trad
}

// figure3Source builds the microbenchmark: a pointer chain with x1..x3 in
// the second data page and x4 in the third, walked repeatedly. With
// single-page round-robin distribution over four chips, x1..x3 land on
// chip 1 and x4 on chip 2 — neither on the traditional CPU chip 0,
// matching the figure's placement. The operands sit 512 bytes apart so
// that under the shrunken 512-byte direct-mapped L1 used for this
// experiment every access conflicts and goes to memory each lap.
func figure3Source(laps int) string {
	return fmt.Sprintf(`
        .data
        .space %[1]d             # page 0: padding owned by chip 0
x1:     .word x2
        .space 504
x2:     .word x3
        .space 504
x3:     .word x4                 # x1..x3 share page 1
        .space %[2]d
x4:     .word x1                 # x4 alone on page 2
        .text
bench_main:
        li   r2, %[3]d
        la   r1, x1
lap:    ld   r1, 0(r1)           # x1 -> x2
        ld   r1, 0(r1)           # x2 -> x3
        ld   r1, 0(r1)           # x3 -> x4
        ld   r1, 0(r1)           # x4 -> x1
        addi r2, r2, -1
        bne  r2, zero, lap
        halt
`, prog.PageSize, prog.PageSize-(2*512+8), laps)
}

// Figure3 runs the microbenchmark on a 4-node DataScalar machine and the
// matching 4-chip traditional machine and reports both the analytic
// crossing counts and the measured cycles per chain traversal.
func Figure3() (Figure3Result, error) {
	const laps = 2000
	var out Figure3Result
	out.DSCrossings, out.TradCrossings = CountCrossings([]int{1, 1, 1, 2}, 0)

	p, err := asm.Assemble("figure3", figure3Source(laps))
	if err != nil {
		return out, err
	}
	w := workloadStub("figure3")

	ds, err := Job{
		Workload: w, Program: p, Kind: KindDS, Nodes: 4,
		DSMut: func(cfg *core.Config) { cfg.L1.SizeBytes = 512 },
	}.run()
	if err != nil {
		return out, err
	}
	out.DSCyclesPerLap = float64(ds.DS.Cycles) / laps

	tr, err := Job{
		Workload: w, Program: p, Kind: KindTraditional, Nodes: 4,
		TradMut: func(cfg *traditional.Config) { cfg.L1.SizeBytes = 512 },
	}.run()
	if err != nil {
		return out, err
	}
	out.TradCyclesPerLap = float64(tr.Trad.Cycles) / laps
	return out, nil
}
