package sim

import (
	"encoding/json"
	"io"
	"os"
)

// WriteJSON serializes v as indented JSON to w. Every experiment result
// in this package (Table1Result, Figure7Result, ...) and every machine
// Result serializes cleanly — stats.Counter marshals as its bare count —
// so harness outputs can feed plotting or regression tooling directly.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteJSONFile writes v as indented JSON to path ("-" means stdout).
func WriteJSONFile(path string, v any) error {
	if path == "-" {
		return WriteJSON(os.Stdout, v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
