package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Measured interconnect traffic at a chosen machine size and topology:
// the timing-set counterpart of Table 1's analytic traffic accounting.
// Table 1 prices the reference stream under idealized ESP; this harness
// runs the actual machine and reports what the chosen interconnect
// carried — the numbers dstraffic prints when -nodes/-topology ask for
// a concrete machine rather than the model.

// MeasuredTrafficRow is one benchmark's measured interconnect traffic.
type MeasuredTrafficRow struct {
	Benchmark  string
	Broadcasts uint64
	Messages   uint64
	Bytes      uint64
	// LinkUtil is aggregate busy cycles over all of the topology's
	// transfer resources (Topology.Links) for the run's duration.
	LinkUtil float64
	IPC      float64
}

// MeasuredTrafficResult holds the sweep.
type MeasuredTrafficResult struct {
	Nodes    int
	Topology string
	Rows     []MeasuredTrafficRow
}

// Table renders the measurement.
func (r MeasuredTrafficResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Measured interconnect traffic: DS %d nodes on %s", r.Nodes, r.Topology),
		"benchmark", "broadcasts", "messages", "bytes", "link util", "IPC")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.Broadcasts, row.Messages, row.Bytes,
			stats.FormatPercent(row.LinkUtil*100), row.IPC)
	}
	return t
}

// MeasuredTraffic runs each timing benchmark on a DS machine of the
// given size and topology and reports the interconnect traffic it
// actually carried. The instruction budget scales down with node count
// exactly as the Scaling harness's points do.
func MeasuredTraffic(ctx context.Context, opts Options, nodes int, topo bus.TopologyKind) (MeasuredTrafficResult, error) {
	opts = opts.withDefaults()
	out := MeasuredTrafficResult{Nodes: nodes, Topology: topo.String()}
	ws := workload.TimingSet()
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes,
			MaxInstr: scalingInstr(opts.TimingInstr, nodes), Topology: topo}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	links := topo.Links(nodes)
	for i, w := range ws {
		r := res[i].DS
		row := MeasuredTrafficRow{
			Benchmark:  w.Name,
			Broadcasts: r.BusStats.ByKindMsgs[bus.Broadcast].Value(),
			Messages:   r.BusStats.Messages.Value(),
			Bytes:      r.BusStats.Bytes.Value(),
			IPC:        r.IPC,
		}
		if r.Cycles > 0 {
			row.LinkUtil = float64(r.BusStats.BusyCycles.Value()) /
				(float64(r.Cycles) * float64(links))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
