package sim

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// pardiffJob builds the standard 4-node DataScalar job the intra-run
// parallelism differential runs: ParallelNodes is left zero so the run
// exercises the Options.ParallelNodes inheritance path in runJobs.
func pardiffJob(t *testing.T, kernel string, topo bus.TopologyKind, f fault.Config) Job {
	t.Helper()
	w, ok := workload.ByName(kernel)
	if !ok {
		t.Fatalf("workload %s missing", kernel)
	}
	return Job{
		Workload: w, Scale: 1, Kind: KindDS, Nodes: 4, MaxInstr: 25_000,
		Topology: topo, Fault: f,
	}
}

// TestParallelNodesDifferential is the sim-level guarantee behind
// Options.ParallelNodes: partitioning the nodes of each DataScalar run
// across worker goroutines must leave the structured JobResult — and
// the JSON artifact built from it — byte-identical to the serial node
// loop. The sweep crosses kernels, all four topologies, the next-event
// scheduler on and off, and a no-fault versus inert (zero-rate) fault
// plan; -short (the CI race job) trims the grid but keeps every
// topology.
func TestParallelNodesDifferential(t *testing.T) {
	kernels := []string{"compress", "swim", "li"}
	noSkips := []bool{false, true}
	faultPlans := []struct {
		name string
		cfg  fault.Config
	}{
		{"nofault", fault.Config{}},
		{"inertfault", fault.Config{RetryTimeoutCycles: 777, MaxRetries: 3}},
	}
	if testing.Short() {
		kernels = kernels[:1]
		noSkips = noSkips[:1]
		faultPlans = faultPlans[:1]
	}
	for _, kernel := range kernels {
		for _, topo := range []bus.TopologyKind{bus.TopoBus, bus.TopoRing, bus.TopoMesh, bus.TopoTorus} {
			for _, noSkip := range noSkips {
				for _, fp := range faultPlans {
					kernel, topo, noSkip, fp := kernel, topo, noSkip, fp
					t.Run(fmt.Sprintf("%s/%s/noskip=%v/%s", kernel, topo, noSkip, fp.name), func(t *testing.T) {
						t.Parallel()
						run := func(parallelNodes int) ([]JobResult, []byte) {
							opts := detOpts(1)
							opts.NoCycleSkip = noSkip
							opts.ParallelNodes = parallelNodes
							res, err := runJobs(context.Background(), opts.withDefaults(),
								[]Job{pardiffJob(t, kernel, topo, fp.cfg)})
							if err != nil {
								t.Fatalf("parallel-nodes=%d: %v", parallelNodes, err)
							}
							var buf bytes.Buffer
							if err := WriteJSON(&buf, res); err != nil {
								t.Fatalf("parallel-nodes=%d: %v", parallelNodes, err)
							}
							return res, buf.Bytes()
						}
						serial, serialJSON := run(1)
						for _, pn := range []int{2, 4} {
							par, parJSON := run(pn)
							if !reflect.DeepEqual(serial, par) {
								t.Fatalf("parallel-nodes=%d changed the result:\nserial:   %+v\nparallel: %+v",
									pn, serial, par)
							}
							if !bytes.Equal(serialJSON, parJSON) {
								t.Fatalf("parallel-nodes=%d changed the JSON artifact", pn)
							}
						}
					})
				}
			}
		}
	}
}

// TestParallelNodesActiveFaultDifferential extends the differential to
// an *active* fault plan — a mid-run death with recovery. Fault
// injection is a pure function of message identity and all global fault
// bookkeeping is re-derived on the replay side, so the full
// architectural outcome — fault counters, recovery trajectory, CPI
// stacks — must be bit-identical at any ParallelNodes setting. (The
// conservative gate only falls back to the serial loop when the plan's
// retry deadlines are shorter than a window; this plan's are not.)
func TestParallelNodesActiveFaultDifferential(t *testing.T) {
	plan := fault.Config{DeadNode: 1, DeathCycle: 5_000, Recover: true,
		RetryTimeoutCycles: 1_000, MaxRetries: 3}
	run := func(parallelNodes int) []JobResult {
		opts := detOpts(1)
		opts.ParallelNodes = parallelNodes
		res, err := runJobs(context.Background(), opts.withDefaults(),
			[]Job{pardiffJob(t, "compress", bus.TopoBus, plan)})
		if err != nil {
			t.Fatalf("parallel-nodes=%d: %v", parallelNodes, err)
		}
		return res
	}
	serial := run(1)
	if serial[0].FaultStats == nil {
		t.Fatal("active fault plan built no fault layer")
	}
	if !serial[0].FaultStats.Degraded {
		t.Fatal("death plan never degraded the machine")
	}
	for _, pn := range []int{2, 4} {
		if par := run(pn); !reflect.DeepEqual(serial, par) {
			t.Fatalf("parallel-nodes=%d changed an active-fault run:\nserial:   %+v\nparallel: %+v",
				pn, serial, par)
		}
	}
}
