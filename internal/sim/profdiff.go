package sim

import (
	"fmt"
	"math"

	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/stats"
)

// This file is the CPI-profile comparator behind `dsprof -diff`: it
// diffs two dsprof artifacts bucket by bucket and flags regressions
// against configurable thresholds. The simulator is deterministic, so
// any difference at all is a real behavioral change — the thresholds
// only decide which changes are large enough to fail a CI gate.

// CPIDiffOptions bound what counts as a regression.
type CPIDiffOptions struct {
	// Threshold is the relative per-bucket growth that fails: a bucket
	// regresses when new > old*(1+Threshold). Zero means the default 10%.
	Threshold float64
	// MinShare ignores noise buckets: growth in a bucket holding less
	// than this share of total cycles in BOTH runs never regresses
	// (total cycles are always gated regardless). Zero means the
	// default 2%.
	MinShare float64
}

func (o CPIDiffOptions) withDefaults() CPIDiffOptions {
	if o.Threshold == 0 {
		o.Threshold = 0.10
	}
	if o.MinShare == 0 {
		o.MinShare = 0.02
	}
	return o
}

// CPIDiffEntry is one changed bucket of one (benchmark, system) row.
// The pseudo-buckets "total" and "instructions" compare the row's cycle
// and instruction counts.
type CPIDiffEntry struct {
	Benchmark string
	System    string
	Bucket    string
	Old, New  uint64
	// Delta is the relative change (new-old)/old; +Inf when old is 0.
	Delta float64
	// Regressed marks entries that fail the gate.
	Regressed bool
}

// CPIDiffResult is the comparison outcome. OK reports whether the gate
// passes: no regressed entries and no rows missing from the new
// profile.
type CPIDiffResult struct {
	// Entries lists every bucket whose count changed (regressed or
	// not), in artifact order.
	Entries []CPIDiffEntry
	// Missing lists "benchmark/system" rows present in the old profile
	// but absent from the new one — lost coverage fails the gate.
	Missing []string
	// Added lists rows only the new profile has (informational).
	Added       []string
	Regressions int
}

// OK reports whether the comparison passes the regression gate.
func (r CPIDiffResult) OK() bool { return r.Regressions == 0 && len(r.Missing) == 0 }

// Table renders the changed buckets with their verdicts.
func (r CPIDiffResult) Table() *stats.Table {
	t := stats.NewTable("CPI profile diff (old -> new)",
		"benchmark", "system", "bucket", "old", "new", "delta", "verdict")
	for _, e := range r.Entries {
		delta := "new"
		if !math.IsInf(e.Delta, 1) {
			delta = fmt.Sprintf("%+.1f%%", e.Delta*100)
		}
		verdict := "ok"
		if e.Regressed {
			verdict = "REGRESSED"
		}
		t.AddRowf(e.Benchmark, e.System, e.Bucket, e.Old, e.New, delta, verdict)
	}
	return t
}

// CompareCPIProfiles diffs two dsprof artifacts. Profiles generated
// with different parameters (instruction budget, scale) are not
// comparable and return an error.
func CompareCPIProfiles(old, cur CPIProfileResult, o CPIDiffOptions) (CPIDiffResult, error) {
	o = o.withDefaults()
	var out CPIDiffResult
	if old.Instr != cur.Instr || old.Scale != cur.Scale {
		return out, fmt.Errorf("sim: profiles not comparable: old is %d instr at scale %d, new is %d instr at scale %d",
			old.Instr, old.Scale, cur.Instr, cur.Scale)
	}
	type key struct{ bench, system string }
	newRows := make(map[key]CPIProfileRow, len(cur.Rows))
	for _, row := range cur.Rows {
		newRows[key{row.Benchmark, row.System}] = row
	}
	matched := make(map[key]bool, len(old.Rows))
	for _, or := range old.Rows {
		k := key{or.Benchmark, or.System}
		nr, ok := newRows[k]
		if !ok {
			out.Missing = append(out.Missing, or.Benchmark+"/"+or.System)
			continue
		}
		matched[k] = true
		om, nm := or.Machine(), nr.Machine()
		oTotal, nTotal := om.Total(), nm.Total()
		add := func(bucket string, ov, nv uint64, regressed bool) {
			if ov == nv {
				return
			}
			delta := math.Inf(1)
			if ov != 0 {
				delta = (float64(nv) - float64(ov)) / float64(ov)
			}
			if regressed {
				out.Regressions++
			}
			out.Entries = append(out.Entries, CPIDiffEntry{
				Benchmark: or.Benchmark, System: or.System, Bucket: bucket,
				Old: ov, New: nv, Delta: delta, Regressed: regressed,
			})
		}
		// Instruction-count drift means the runs did different work;
		// that is never a tolerable regression, it demands a new
		// baseline.
		add("instructions", or.Instructions, nr.Instructions,
			or.Instructions != nr.Instructions)
		add("total", oTotal, nTotal,
			float64(nTotal) > float64(oTotal)*(1+o.Threshold))
		for k := obs.StallKind(0); k < obs.NumStallKinds; k++ {
			ov, nv := om[k], nm[k]
			material := om.Share(k) >= o.MinShare || nm.Share(k) >= o.MinShare
			add(k.String(), ov, nv,
				material && float64(nv) > float64(ov)*(1+o.Threshold))
		}
	}
	for _, row := range cur.Rows {
		if !matched[key{row.Benchmark, row.System}] {
			out.Added = append(out.Added, row.Benchmark+"/"+row.System)
		}
	}
	return out, nil
}
