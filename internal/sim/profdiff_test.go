package sim

import (
	"strings"
	"testing"

	"github.com/wisc-arch/datascalar/internal/obs"
)

// diffProfile builds a tiny hand-made profile so the comparator tests
// control every bucket exactly.
func diffProfile(commit, remote uint64) CPIProfileResult {
	var st obs.CPIStack
	st[obs.StallCommit] = commit
	st[obs.StallMemRemote] = remote
	return CPIProfileResult{
		Instr: 1_000, Scale: 1,
		Rows: []CPIProfileRow{{
			Benchmark: "compress", System: "DS2", Nodes: 1,
			Cycles: commit + remote, Instructions: 1_000,
			Stacks: []obs.CPIStack{st},
		}},
	}
}

func TestCompareCPIProfilesIdentical(t *testing.T) {
	p := diffProfile(900, 100)
	d, err := CompareCPIProfiles(p, p, CPIDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() || len(d.Entries) != 0 || len(d.Missing) != 0 || len(d.Added) != 0 {
		t.Fatalf("identical profiles: %+v", d)
	}
}

func TestCompareCPIProfilesRegression(t *testing.T) {
	old, cur := diffProfile(900, 100), diffProfile(900, 150)
	d, err := CompareCPIProfiles(old, cur, CPIDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("+50%% in a 10%% bucket must regress: %+v", d)
	}
	var hit bool
	for _, e := range d.Entries {
		if e.Bucket == obs.StallMemRemote.String() {
			hit = true
			if !e.Regressed {
				t.Errorf("bshr.remote-owner entry not marked regressed: %+v", e)
			}
			if e.Old != 100 || e.New != 150 || e.Delta != 0.5 {
				t.Errorf("entry = %+v, want old=100 new=150 delta=0.5", e)
			}
		}
		// Total grew 1050/1000 = +5%, inside the 10% threshold.
		if e.Bucket == "total" && e.Regressed {
			t.Errorf("total +5%% regressed under 10%% threshold: %+v", e)
		}
	}
	if !hit {
		t.Fatal("no entry for the inflated bucket")
	}
}

func TestCompareCPIProfilesMinShareFilter(t *testing.T) {
	// The remote bucket holds 0.5%/0.75% of cycles: below the 2% floor
	// in both runs, so +50% growth is noise, not a regression.
	old, cur := diffProfile(9_950, 50), diffProfile(9_950, 75)
	d, err := CompareCPIProfiles(old, cur, CPIDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("sub-MinShare bucket growth regressed: %+v", d)
	}
	if len(d.Entries) == 0 {
		t.Fatal("changed bucket must still be listed (informational)")
	}
	// Tightening MinShare makes the same change fail.
	d, err = CompareCPIProfiles(old, cur, CPIDiffOptions{MinShare: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("MinShare 0.1%% must gate the same growth: %+v", d)
	}
}

func TestCompareCPIProfilesInstructionDrift(t *testing.T) {
	old := diffProfile(900, 100)
	cur := diffProfile(900, 100)
	cur.Rows[0].Instructions = 999 // fewer instructions, even fewer cycles
	d, err := CompareCPIProfiles(old, cur, CPIDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("instruction-count drift must fail the gate: %+v", d)
	}
}

func TestCompareCPIProfilesMissingRow(t *testing.T) {
	old := diffProfile(900, 100)
	old.Rows = append(old.Rows, CPIProfileRow{
		Benchmark: "mgrid", System: "DS2", Nodes: 1,
		Cycles: 100, Instructions: 1_000, Stacks: []obs.CPIStack{{}},
	})
	cur := diffProfile(900, 100)
	cur.Rows[0].System = "DS4" // renames the row: one missing, one added
	d, err := CompareCPIProfiles(old, cur, CPIDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("missing rows must fail the gate: %+v", d)
	}
	if len(d.Missing) != 2 || len(d.Added) != 1 {
		t.Fatalf("missing = %v, added = %v; want 2 missing, 1 added", d.Missing, d.Added)
	}
}

func TestCompareCPIProfilesIncomparable(t *testing.T) {
	old, cur := diffProfile(900, 100), diffProfile(900, 100)
	cur.Instr = 2_000
	if _, err := CompareCPIProfiles(old, cur, CPIDiffOptions{}); err == nil {
		t.Fatal("differing instruction budgets must be an error, not a diff")
	}
	cur = diffProfile(900, 100)
	cur.Scale = 2
	if _, err := CompareCPIProfiles(old, cur, CPIDiffOptions{}); err == nil {
		t.Fatal("differing scales must be an error, not a diff")
	}
}

func TestCPIDiffTableRendersVerdicts(t *testing.T) {
	d, err := CompareCPIProfiles(diffProfile(900, 100), diffProfile(900, 150), CPIDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := d.Table().String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "+50.0%") {
		t.Fatalf("diff table missing verdict or delta:\n%s", out)
	}
}
