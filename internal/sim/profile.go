package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/obs"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// This file is the CPI-profile harness behind cmd/dsprof: it runs a set
// of workloads across the paper's five systems and collects each run's
// exhaustive cycle-attribution stacks (see internal/obs and
// docs/OBSERVABILITY.md). Because every simulation is deterministic, the
// resulting artifact is bit-reproducible across machines and worker
// counts, which is what lets CompareCPIProfiles (profdiff.go) serve as
// an exact cross-run regression gate in CI.

// cpiSystems are the systems profiled per benchmark, matching Figure 7's
// comparison: the perfect-cache bound, DataScalar at two and four nodes,
// and traditional machines with one half and one quarter of memory
// on-chip.
var cpiSystems = []struct {
	label string
	kind  MachineKind
	nodes int
}{
	{"perfect", KindPerfect, 0},
	{"DS2", KindDS, 2},
	{"DS4", KindDS, 4},
	{"trad2", KindTraditional, 2},
	{"trad4", KindTraditional, 4},
}

// CPIProfileRow is one (benchmark, system) measurement: total cycles,
// committed instructions, and the per-node cycle-attribution stacks
// (single-entry for the one-core systems). Every stack sums exactly to
// Cycles — the exhaustiveness invariant.
type CPIProfileRow struct {
	Benchmark    string
	System       string
	Nodes        int
	Cycles       uint64
	Instructions uint64
	Stacks       []obs.CPIStack
}

// Machine returns the machine-wide stack (per-node stacks summed).
func (r CPIProfileRow) Machine() obs.CPIStack { return obs.SumStacks(r.Stacks) }

// CPI returns the row's cycles per committed instruction.
func (r CPIProfileRow) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// CPIProfileResult is the dsprof artifact: the generation parameters
// (so a comparator can refuse to diff incomparable artifacts) plus one
// row per (benchmark, system).
type CPIProfileResult struct {
	Instr uint64
	Scale int
	Rows  []CPIProfileRow
}

// CPIProfile measures CPI stacks for the named workloads (empty = the
// six timing benchmarks) across the five Figure 7 systems.
func CPIProfile(ctx context.Context, opts Options, names []string) (CPIProfileResult, error) {
	opts = opts.withDefaults()
	out := CPIProfileResult{Instr: opts.TimingInstr, Scale: opts.Scale}
	ws, err := resolveWorkloads(names)
	if err != nil {
		return out, err
	}
	var jobs []Job
	for _, w := range ws {
		for _, s := range cpiSystems {
			jobs = append(jobs, Job{
				Workload: w, Scale: opts.Scale, Kind: s.kind,
				Nodes: s.nodes, MaxInstr: opts.TimingInstr,
			})
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	for i, w := range ws {
		for si, s := range cpiSystems {
			r := res[i*len(cpiSystems)+si]
			row := CPIProfileRow{Benchmark: w.Name, System: s.label, Nodes: s.nodes}
			if s.kind == KindDS {
				row.Cycles = r.DS.Cycles
				row.Instructions = r.DS.Instructions
				row.Stacks = r.DS.CPIStacks
			} else {
				row.Nodes = 1
				row.Cycles = r.Trad.Cycles
				row.Instructions = r.Trad.Instructions
				row.Stacks = []obs.CPIStack{r.Trad.CPIStack}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// resolveWorkloads maps registry names to workloads; an empty list means
// the paper's timing set.
func resolveWorkloads(names []string) ([]workload.Workload, error) {
	if len(names) == 0 {
		return workload.TimingSet(), nil
	}
	ws := make([]workload.Workload, 0, len(names))
	for _, n := range names {
		w, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("sim: unknown workload %q", n)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// Tables renders one table per benchmark: stall buckets down the rows,
// systems across the columns (with one column per node for the
// DataScalar machines, then the machine-wide aggregate), and absolute
// cycles and CPI in the trailing rows.
func (r CPIProfileResult) Tables() []*stats.Table {
	var order []string
	byBench := map[string][]CPIProfileRow{}
	for _, row := range r.Rows {
		if _, ok := byBench[row.Benchmark]; !ok {
			order = append(order, row.Benchmark)
		}
		byBench[row.Benchmark] = append(byBench[row.Benchmark], row)
	}
	tables := make([]*stats.Table, 0, len(order))
	for _, bench := range order {
		rows := byBench[bench]
		header := []string{"bucket"}
		for _, row := range rows {
			if len(row.Stacks) > 1 {
				for n := range row.Stacks {
					header = append(header, fmt.Sprintf("%s:n%d", row.System, n))
				}
			}
			header = append(header, row.System)
		}
		t := stats.NewTable(
			fmt.Sprintf("CPI stack: %s (%d instr; %% of cycles)", bench, r.Instr),
			header...)
		for k := obs.StallKind(0); k < obs.NumStallKinds; k++ {
			cells := []string{k.String()}
			for _, row := range rows {
				m := row.Machine()
				if len(row.Stacks) > 1 {
					for _, st := range row.Stacks {
						cells = append(cells, stats.FormatPercent1(st.Share(k)*100))
					}
				}
				cells = append(cells, stats.FormatPercent1(m.Share(k)*100))
			}
			t.AddRow(cells...)
		}
		cyc := []string{"cycles"}
		cpi := []string{"CPI"}
		for _, row := range rows {
			cols := 1
			if len(row.Stacks) > 1 {
				cols += len(row.Stacks)
			}
			for c := 0; c < cols; c++ {
				cyc = append(cyc, fmt.Sprintf("%d", row.Cycles))
				cpi = append(cpi, stats.FormatFloat(row.CPI()))
			}
		}
		t.AddRow(cyc...)
		t.AddRow(cpi...)
		tables = append(tables, t)
	}
	return tables
}

// CPITable renders a single machine's CPI stack: stall buckets down the
// rows, one share column per node, the machine-wide share, and the
// bucket's contribution to CPI (mean node cycles per committed
// instruction). It backs the -cpi flag of dsrun and dstiming.
func CPITable(title string, stacks []obs.CPIStack, instructions uint64) *stats.Table {
	header := []string{"bucket"}
	for n := range stacks {
		header = append(header, fmt.Sprintf("node%d", n))
	}
	header = append(header, "machine", "CPI")
	t := stats.NewTable(title, header...)
	machine := obs.SumStacks(stacks)
	nodes := uint64(len(stacks))
	for k := obs.StallKind(0); k < obs.NumStallKinds; k++ {
		cells := []string{k.String()}
		for _, st := range stacks {
			cells = append(cells, stats.FormatPercent1(st.Share(k)*100))
		}
		cpi := 0.0
		if instructions > 0 && nodes > 0 {
			cpi = float64(machine[k]) / float64(nodes) / float64(instructions)
		}
		cells = append(cells, stats.FormatPercent1(machine.Share(k)*100), stats.FormatFloat(cpi))
		t.AddRow(cells...)
	}
	total := []string{"total"}
	for _, st := range stacks {
		total = append(total, fmt.Sprintf("%d", st.Total()))
	}
	cpi := 0.0
	if instructions > 0 && nodes > 0 {
		cpi = float64(machine.Total()) / float64(nodes) / float64(instructions)
	}
	total = append(total, fmt.Sprintf("%d", machine.Total()), stats.FormatFloat(cpi))
	t.AddRow(total...)
	return t
}
