package sim

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Node-count scaling beyond the paper's evaluation. The paper measures
// two and four nodes and argues DataScalar "deals with a finer-grain
// distribution of memory better" than request/response systems; this
// experiment extends the sweep to eight nodes on both interconnects,
// where the single shared bus begins to saturate under the broadcast
// stream and the ring's per-link concurrency starts to matter — the
// regime the paper's Section 4.4 interconnect discussion anticipates.

// ScalingPoint is one (nodes, system) IPC sample.
type ScalingPoint struct {
	Nodes    int
	DSBus    float64
	DSRing   float64
	Trad     float64
	BusUtil  float64 // DS bus busy fraction
	RingUtil float64 // DS ring aggregate link busy fraction
}

// ScalingRow is one benchmark's sweep.
type ScalingRow struct {
	Benchmark string
	Points    []ScalingPoint
}

// ScalingResult holds the experiment.
type ScalingResult struct {
	Rows []ScalingRow
}

// Table renders the sweep.
func (r ScalingResult) Table() *stats.Table {
	t := stats.NewTable(
		"Extension: node-count scaling (IPC; DS on bus and ring vs traditional)",
		"benchmark", "nodes", "DS bus", "DS ring", "trad 1/n", "bus util")
	for _, row := range r.Rows {
		for _, p := range row.Points {
			t.AddRowf(row.Benchmark, p.Nodes, p.DSBus, p.DSRing, p.Trad,
				stats.FormatPercent(p.BusUtil*100))
		}
	}
	return t
}

// Scaling sweeps node counts 2, 4, 8 over two contrasting benchmarks:
// compress (write-heavy, DataScalar's best case) and mgrid (bandwidth-
// hungry stencil).
func Scaling(opts Options) (ScalingResult, error) {
	opts = opts.withDefaults()
	var out ScalingResult
	ringCfg := bus.DefaultRingConfig()
	for _, name := range []string{"compress", "mgrid"} {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: missing workload %s", name)
		}
		pr, err := prepare(w, opts.Scale)
		if err != nil {
			return out, err
		}
		row := ScalingRow{Benchmark: name}
		for _, nodes := range []int{2, 4, 8} {
			onBus, err := runDS(pr, nodes, opts.TimingInstr, nil)
			if err != nil {
				return out, err
			}
			onRing, err := runDS(pr, nodes, opts.TimingInstr, func(cfg *core.Config) {
				cfg.Ring = &ringCfg
			})
			if err != nil {
				return out, err
			}
			trad, err := runTrad(pr, nodes, opts.TimingInstr, nil)
			if err != nil {
				return out, err
			}
			pt := ScalingPoint{
				Nodes:  nodes,
				DSBus:  onBus.IPC,
				DSRing: onRing.IPC,
				Trad:   trad.IPC,
			}
			if onBus.Cycles > 0 {
				pt.BusUtil = float64(onBus.BusStats.BusyCycles.Value()) / float64(onBus.Cycles)
			}
			if onRing.Cycles > 0 {
				// Aggregate link-busy over nodes links.
				pt.RingUtil = float64(onRing.BusStats.BusyCycles.Value()) /
					(float64(onRing.Cycles) * float64(nodes))
			}
			row.Points = append(row.Points, pt)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
