package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Node-count scaling beyond the paper's evaluation. The paper measures
// two and four nodes and argues DataScalar "deals with a finer-grain
// distribution of memory better" than request/response systems; this
// experiment extends the sweep to eight nodes on both interconnects,
// where the single shared bus begins to saturate under the broadcast
// stream and the ring's per-link concurrency starts to matter — the
// regime the paper's Section 4.4 interconnect discussion anticipates.

// ScalingPoint is one (nodes, system) IPC sample.
type ScalingPoint struct {
	Nodes    int
	DSBus    float64
	DSRing   float64
	Trad     float64
	BusUtil  float64 // DS bus busy fraction
	RingUtil float64 // DS ring aggregate link busy fraction
}

// ScalingRow is one benchmark's sweep.
type ScalingRow struct {
	Benchmark string
	Points    []ScalingPoint
}

// ScalingResult holds the experiment.
type ScalingResult struct {
	Rows []ScalingRow
}

// Table renders the sweep.
func (r ScalingResult) Table() *stats.Table {
	t := stats.NewTable(
		"Extension: node-count scaling (IPC; DS on bus and ring vs traditional)",
		"benchmark", "nodes", "DS bus", "DS ring", "trad 1/n", "bus util")
	for _, row := range r.Rows {
		for _, p := range row.Points {
			t.AddRowf(row.Benchmark, p.Nodes, p.DSBus, p.DSRing, p.Trad,
				stats.FormatPercent(p.BusUtil*100))
		}
	}
	return t
}

// Scaling sweeps node counts 2, 4, 8 over two contrasting benchmarks:
// compress (write-heavy, DataScalar's best case) and mgrid (bandwidth-
// hungry stencil).
func Scaling(ctx context.Context, opts Options) (ScalingResult, error) {
	opts = opts.withDefaults()
	var out ScalingResult
	ringCfg := bus.DefaultRingConfig()
	onRing := func(cfg *core.Config) { cfg.Ring = &ringCfg }
	names := []string{"compress", "mgrid"}
	nodeCounts := []int{2, 4, 8}
	var jobs []Job
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: missing workload %s", name)
		}
		for _, nodes := range nodeCounts {
			jobs = append(jobs,
				Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes, MaxInstr: opts.TimingInstr},
				Job{Workload: w, Scale: opts.Scale, Kind: KindDS, Nodes: nodes, MaxInstr: opts.TimingInstr, DSMut: onRing},
				Job{Workload: w, Scale: opts.Scale, Kind: KindTraditional, Nodes: nodes, MaxInstr: opts.TimingInstr},
			)
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	i := 0
	for _, name := range names {
		row := ScalingRow{Benchmark: name}
		for _, nodes := range nodeCounts {
			busRun, ringRun, trad := res[i].DS, res[i+1].DS, res[i+2].Trad
			i += 3
			pt := ScalingPoint{
				Nodes:  nodes,
				DSBus:  busRun.IPC,
				DSRing: ringRun.IPC,
				Trad:   trad.IPC,
			}
			if busRun.Cycles > 0 {
				pt.BusUtil = float64(busRun.BusStats.BusyCycles.Value()) / float64(busRun.Cycles)
			}
			if ringRun.Cycles > 0 {
				// Aggregate link-busy over nodes links.
				pt.RingUtil = float64(ringRun.BusStats.BusyCycles.Value()) /
					(float64(ringRun.Cycles) * float64(nodes))
			}
			row.Points = append(row.Points, pt)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
