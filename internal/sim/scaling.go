package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/trace"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Node-count scaling beyond the paper's evaluation. The paper measures
// two and four nodes and argues DataScalar "deals with a finer-grain
// distribution of memory better" than request/response systems; this
// experiment extends the sweep to 256 nodes across all four interconnect
// topologies. The single shared bus saturates under the broadcast stream
// as N grows; the ring's per-link concurrency defers that; the 2D mesh
// and torus shrink the broadcast diameter to O(sqrt(N)) — the regime the
// paper's Section 4.4 interconnect discussion anticipates. An analytic
// owner-compute point (compute migrates to the data, Dalorex-style,
// instead of data broadcasting to the compute) bounds what abandoning
// redundant execution altogether would buy at each size.

// scalingNodeCounts is the sweep: the paper's sizes, then the sparse
// large-N regime the topology layer exists for.
var scalingNodeCounts = []int{2, 4, 8, 32, 128, 256}

// scalingTopologies are the DS interconnects compared at every point, in
// column order.
var scalingTopologies = []bus.TopologyKind{bus.TopoBus, bus.TopoRing, bus.TopoMesh, bus.TopoTorus}

// scalingInstr scales the measured instruction budget down with the node
// count so a 256-node point costs roughly what an 8-node point does
// (simulation work grows with N x instructions). Points at or below
// eight nodes keep the full budget and stay comparable to the paper's
// tables.
func scalingInstr(timingInstr uint64, nodes int) uint64 {
	if nodes <= 8 {
		return timingInstr
	}
	budget := timingInstr * 8 / uint64(nodes)
	if budget < 1024 {
		budget = 1024
	}
	return budget
}

// ScalingPoint is one node count's IPC samples across systems.
type ScalingPoint struct {
	Nodes   int
	DSBus   float64
	DSRing  float64
	DSMesh  float64
	DSTorus float64
	Trad    float64
	// OwnerCompute is the analytic Dalorex-style owner-compute IPC: the
	// program runs once (no redundant execution), computation migrates
	// over the mesh to each operand's owner, and every ownership
	// transition in the miss stream pays a task-descriptor hop chain.
	// It is a model, not a simulation — the precedent is CountCrossings.
	OwnerCompute float64
	BusUtil      float64 // DS bus busy fraction
	MeshUtil     float64 // DS mesh aggregate link busy fraction
}

// ScalingRow is one benchmark's sweep.
type ScalingRow struct {
	Benchmark string
	Points    []ScalingPoint
}

// ScalingResult holds the experiment.
type ScalingResult struct {
	Rows []ScalingRow
}

// Table renders the sweep.
func (r ScalingResult) Table() *stats.Table {
	t := stats.NewTable(
		"Extension: node-count scaling (IPC; DS on four topologies vs traditional and analytic owner-compute)",
		"benchmark", "nodes", "DS bus", "DS ring", "DS mesh", "DS torus", "trad 1/n", "owner-compute", "bus util")
	for _, row := range r.Rows {
		for _, p := range row.Points {
			t.AddRowf(row.Benchmark, p.Nodes, p.DSBus, p.DSRing, p.DSMesh, p.DSTorus,
				p.Trad, p.OwnerCompute, stats.FormatPercent(p.BusUtil*100))
		}
	}
	return t
}

// ownerComputeIPC prices the owner-compute alternative for one
// (benchmark, node count) pair: replay the miss-filtered reference
// stream over the N-node partition, count ownership transitions, and
// charge each one a 16-byte task-descriptor migration over the mesh at
// the default link clocking, on top of the perfect-cache compute floor.
func ownerComputeIPC(pr prepared, refInstr uint64, nodes int, perfectIPC float64) (float64, error) {
	pt, err := defaultPartition(pr.p, nodes)
	if err != nil {
		return 0, err
	}
	filter := trace.DefaultMissFilter()
	var instrs, transitions uint64
	last := -1
	err = trace.ForEachRefFrom(pr.p, pr.ff, refInstr, true, func(ref trace.Ref) error {
		miss := filter.Observe(ref)
		if ref.Instr {
			instrs++
			return nil
		}
		if !miss {
			return nil
		}
		if o := pt.OwnerOf(ref.Addr &^ 31); o >= 0 && o != last {
			if last >= 0 {
				transitions++
			}
			last = o
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if instrs == 0 || perfectIPC <= 0 {
		return 0, fmt.Errorf("sim: owner-compute model needs a non-empty trace and perfect IPC")
	}
	// Expected dimension-order hop count between uniformly placed owners
	// on the W x H mesh: E|dx| + E|dy| for independent uniform
	// coordinates.
	w, h := bus.NewMesh(bus.DefaultLinkConfig(), nodes).Dims()
	avgHops := float64(w*w-1)/(3*float64(w)) + float64(h*h-1)/(3*float64(h))
	// Per-hop cost of a 16-byte task descriptor at the default link.
	link := bus.DefaultLinkConfig()
	flits := uint64((16 + link.WidthBytes - 1) / link.WidthBytes)
	hopCost := float64(link.HopCycles + flits*link.ClockDivisor)
	cycles := float64(instrs)/perfectIPC + float64(transitions)*avgHops*hopCost
	return float64(instrs) / cycles, nil
}

// Scaling sweeps node counts 2..256 over two contrasting benchmarks:
// compress (write-heavy, DataScalar's best case) and mgrid (bandwidth-
// hungry stencil). Each point runs the DS machine on all four
// topologies plus the traditional baseline, and adds the analytic
// owner-compute bound.
func Scaling(ctx context.Context, opts Options) (ScalingResult, error) {
	opts = opts.withDefaults()
	var out ScalingResult
	names := []string{"compress", "mgrid"}
	perJob := len(scalingTopologies) + 1 // four DS runs + traditional
	var jobs []Job
	for _, name := range names {
		w, ok := workload.ByName(name)
		if !ok {
			return out, fmt.Errorf("sim: missing workload %s", name)
		}
		// One perfect-cache run per benchmark anchors the owner-compute
		// model's compute floor.
		jobs = append(jobs, Job{Workload: w, Scale: opts.Scale, Kind: KindPerfect, MaxInstr: opts.TimingInstr})
		for _, nodes := range scalingNodeCounts {
			instr := scalingInstr(opts.TimingInstr, nodes)
			for _, topo := range scalingTopologies {
				jobs = append(jobs, Job{Workload: w, Scale: opts.Scale, Kind: KindDS,
					Nodes: nodes, MaxInstr: instr, Topology: topo})
			}
			jobs = append(jobs, Job{Workload: w, Scale: opts.Scale, Kind: KindTraditional,
				Nodes: nodes, MaxInstr: instr})
		}
	}
	res, err := runJobs(ctx, opts, jobs)
	if err != nil {
		return out, err
	}
	perBench := 1 + len(scalingNodeCounts)*perJob
	// The owner-compute replays are pure trace analyses; run them on the
	// same worker pool, one per (benchmark, node count).
	ownerIPC, err := runIndexed(ctx, opts.Parallel, len(names)*len(scalingNodeCounts), func(i int) (float64, error) {
		name := names[i/len(scalingNodeCounts)]
		nodes := scalingNodeCounts[i%len(scalingNodeCounts)]
		w, _ := workload.ByName(name)
		pr, err := prepare(w, opts.Scale)
		if err != nil {
			return 0, err
		}
		perfect := res[(i/len(scalingNodeCounts))*perBench].Trad.IPC
		return ownerComputeIPC(pr, opts.RefInstr, nodes, perfect)
	})
	if err != nil {
		return out, err
	}
	for bi, name := range names {
		row := ScalingRow{Benchmark: name}
		base := bi*perBench + 1
		for ni, nodes := range scalingNodeCounts {
			i := base + ni*perJob
			busRun, ringRun := res[i].DS, res[i+1].DS
			meshRun, torusRun := res[i+2].DS, res[i+3].DS
			trad := res[i+4].Trad
			pt := ScalingPoint{
				Nodes:        nodes,
				DSBus:        busRun.IPC,
				DSRing:       ringRun.IPC,
				DSMesh:       meshRun.IPC,
				DSTorus:      torusRun.IPC,
				Trad:         trad.IPC,
				OwnerCompute: ownerIPC[bi*len(scalingNodeCounts)+ni],
			}
			if busRun.Cycles > 0 {
				pt.BusUtil = float64(busRun.BusStats.BusyCycles.Value()) / float64(busRun.Cycles)
			}
			if meshRun.Cycles > 0 {
				// Aggregate link-busy over the mesh's 4N directed links.
				pt.MeshUtil = float64(meshRun.BusStats.BusyCycles.Value()) /
					(float64(meshRun.Cycles) * float64(4*nodes))
			}
			row.Points = append(row.Points, pt)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
