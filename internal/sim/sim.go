// Package sim contains the experiment harnesses that regenerate every
// table and figure in the paper's evaluation: Table 1 (ESP traffic
// reduction), Table 2 (datathread lengths), Figure 7 (timing comparison),
// Table 3 (broadcast statistics), Figure 8 (sensitivity analysis), and
// the Figure 1 / Figure 3 illustrative experiments. Each harness returns
// structured results plus a rendered text table, and cmd/ binaries and
// the repository-level benchmarks are thin wrappers around them.
package sim

import (
	"fmt"

	"github.com/wisc-arch/datascalar/internal/core"
	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/traditional"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Options bound experiment cost. The defaults reproduce the shipped
// EXPERIMENTS.md numbers in a few minutes on a laptop; the paper ran
// 100 M instructions per benchmark on 1997 hardware, so absolute numbers
// differ while shapes hold (see DESIGN.md §4).
type Options struct {
	// Scale multiplies each kernel's main-loop trip counts.
	Scale int
	// TimingInstr bounds the measured instructions of each timing run
	// (Figures 7, Table 3), counted after fast-forwarding initialization.
	TimingInstr uint64
	// RefInstr bounds the reference-trace analyses (Tables 1 and 2).
	RefInstr uint64
	// SweepInstr bounds each point of the Figure 8 sensitivity sweeps.
	SweepInstr uint64
}

// DefaultOptions returns the standard experiment sizes.
func DefaultOptions() Options {
	return Options{
		Scale:       1,
		TimingInstr: 300_000,
		RefInstr:    2_000_000,
		SweepInstr:  150_000,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.TimingInstr == 0 {
		o.TimingInstr = d.TimingInstr
	}
	if o.RefInstr == 0 {
		o.RefInstr = d.RefInstr
	}
	if o.SweepInstr == 0 {
		o.SweepInstr = d.SweepInstr
	}
	return o
}

// prepared bundles a workload's assembled program with its benchmark-main
// fast-forward point.
type prepared struct {
	w  workload.Workload
	p  *prog.Program
	ff uint64
}

func prepare(w workload.Workload, scale int) (prepared, error) {
	p, err := w.Program(scale)
	if err != nil {
		return prepared{}, err
	}
	ff, ok := p.Labels["bench_main"]
	if !ok {
		return prepared{}, fmt.Errorf("sim: workload %s lacks a bench_main label", w.Name)
	}
	return prepared{w: w, p: p, ff: ff}, nil
}

// runDS runs an n-node DataScalar machine with the paper's default
// configuration (round-robin single-page distribution, replicated text).
func runDS(pr prepared, nodes int, maxInstr uint64, mut func(*core.Config)) (core.Result, error) {
	pt, err := mem.Partition{NumNodes: nodes, BlockPages: 1, ReplicateText: true}.Build(pr.p)
	if err != nil {
		return core.Result{}, err
	}
	return runDSWithPT(pr, pt, nodes, maxInstr, mut)
}

// runDSWithPT runs a DataScalar machine under an explicit page table.
func runDSWithPT(pr prepared, pt *mem.PageTable, nodes int, maxInstr uint64, mut func(*core.Config)) (core.Result, error) {
	cfg := core.DefaultConfig(nodes)
	cfg.MaxInstr = maxInstr
	cfg.FastForwardPC = pr.ff
	if mut != nil {
		mut(&cfg)
	}
	m, err := core.NewMachine(cfg, pr.p, pt)
	if err != nil {
		return core.Result{}, err
	}
	r, err := m.Run()
	if err != nil {
		return core.Result{}, fmt.Errorf("sim: %s DS%d: %w", pr.w.Name, nodes, err)
	}
	if !r.CorrespondenceOK {
		return core.Result{}, fmt.Errorf("sim: %s DS%d: cache correspondence violated", pr.w.Name, nodes)
	}
	return r, nil
}

// runTrad runs the traditional baseline with 1/chips of memory on-chip.
func runTrad(pr prepared, chips int, maxInstr uint64, mut func(*traditional.Config)) (traditional.Result, error) {
	pt, err := mem.Partition{NumNodes: chips, BlockPages: 1, ReplicateText: true}.Build(pr.p)
	if err != nil {
		return traditional.Result{}, err
	}
	cfg := traditional.DefaultConfig(chips)
	cfg.MaxInstr = maxInstr
	cfg.FastForwardPC = pr.ff
	if mut != nil {
		mut(&cfg)
	}
	m, err := traditional.NewMachine(cfg, pr.p, pt)
	if err != nil {
		return traditional.Result{}, err
	}
	r, err := m.Run()
	if err != nil {
		return traditional.Result{}, fmt.Errorf("sim: %s trad/%d: %w", pr.w.Name, chips, err)
	}
	return r, nil
}

// runPerfect runs the perfect-data-cache baseline.
func runPerfect(pr prepared, maxInstr uint64, mut func(*traditional.Config)) (traditional.Result, error) {
	cfg := traditional.DefaultConfig(2)
	if mut != nil {
		mut(&cfg)
	}
	r, err := traditional.RunPerfect(cfg.Core, pr.p, maxInstr, pr.ff)
	if err != nil {
		return traditional.Result{}, fmt.Errorf("sim: %s perfect: %w", pr.w.Name, err)
	}
	return r, nil
}
