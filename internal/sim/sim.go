// Package sim contains the experiment harnesses that regenerate every
// table and figure in the paper's evaluation: Table 1 (ESP traffic
// reduction), Table 2 (datathread lengths), Figure 7 (timing comparison),
// Table 3 (broadcast statistics), Figure 8 (sensitivity analysis), and
// the Figure 1 / Figure 3 illustrative experiments. Each harness returns
// structured results plus a rendered text table, and cmd/ binaries and
// the repository-level benchmarks are thin wrappers around them.
//
// Every harness enumerates its sweep as Jobs and executes them on the
// experiment engine (engine.go): a bounded worker pool that assembles
// results strictly in job order, so harness output is bit-identical at
// any Options.Parallel setting and a cancelled context stops a sweep at
// the next job boundary.
package sim

import (
	"runtime"

	"github.com/wisc-arch/datascalar/internal/bus"
	"github.com/wisc-arch/datascalar/internal/fault"
)

// Options bound experiment cost. The defaults reproduce the shipped
// EXPERIMENTS.md numbers in a few minutes on a laptop; the paper ran
// 100 M instructions per benchmark on 1997 hardware, so absolute numbers
// differ while shapes hold (see DESIGN.md §4).
type Options struct {
	// Scale multiplies each kernel's main-loop trip counts.
	Scale int
	// TimingInstr bounds the measured instructions of each timing run
	// (Figures 7, Table 3), counted after fast-forwarding initialization.
	TimingInstr uint64
	// RefInstr bounds the reference-trace analyses (Tables 1 and 2).
	RefInstr uint64
	// SweepInstr bounds each point of the Figure 8 sensitivity sweeps.
	SweepInstr uint64
	// Parallel bounds the worker pool the harnesses run their jobs on:
	// 1 runs everything serially, 0 (or negative) means GOMAXPROCS.
	// Results are bit-identical at every setting — each simulation is
	// deterministic and the engine assembles results in job order.
	Parallel int
	// ParallelNodes partitions the nodes of every DataScalar machine
	// whose job does not pin its own count across that many worker
	// goroutines inside a single run (conservative intra-run
	// parallelism; see docs/PERFORMANCE.md). 0 or 1 keeps the serial
	// node loop. Results are bit-identical at every setting — the
	// differential suite in pardiff_test.go enforces it — so the knob
	// trades wall-clock for cores, never accuracy. Independent of
	// Parallel: that bounds concurrent jobs, this bounds goroutines
	// inside each job, and the two multiply.
	ParallelNodes int
	// NoCycleSkip runs every timing simulation with the next-event
	// scheduler disabled (pure cycle-by-cycle polling). Results are
	// bit-identical either way — the differential suite in engine_test.go
	// enforces it — so the flag exists only to keep that equivalence
	// testable.
	NoCycleSkip bool
	// Fault is a deterministic fault plan applied to every DataScalar
	// job whose own Fault field is zero (see internal/fault). The zero
	// value injects nothing and builds no fault layer, so every harness
	// output stays byte-identical to a build without the fault subsystem
	// (enforced by the zero-rate differential in faultdiff_test.go).
	Fault fault.Config
	// Topology is the interconnect applied to every timing job that does
	// not pin its own (the -topology CLI flag). The zero value is the
	// paper's shared bus. Harnesses that sweep topologies explicitly
	// (Scaling) pin every job, except that a bus job is indistinguishable
	// from an unpinned one — a non-bus Topology therefore moves those
	// columns too, so topology-sweeping harnesses are run with the zero
	// value.
	Topology bus.TopologyKind
}

// DefaultOptions returns the standard experiment sizes.
func DefaultOptions() Options {
	return Options{
		Scale:       1,
		TimingInstr: 300_000,
		RefInstr:    2_000_000,
		SweepInstr:  150_000,
		Parallel:    runtime.GOMAXPROCS(0),
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Scale <= 0 {
		o.Scale = d.Scale
	}
	if o.TimingInstr == 0 {
		o.TimingInstr = d.TimingInstr
	}
	if o.RefInstr == 0 {
		o.RefInstr = d.RefInstr
	}
	if o.SweepInstr == 0 {
		o.SweepInstr = d.SweepInstr
	}
	if o.Parallel <= 0 {
		o.Parallel = d.Parallel
	}
	return o
}
