package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// Small experiment sizes keep the suite fast; cmd/ binaries and the
// repository benchmarks use the full defaults.
func testOpts() Options {
	return Options{
		Scale:       1,
		TimingInstr: 80_000,
		RefInstr:    400_000,
		SweepInstr:  50_000,
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	res, err := Table1(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Detail.Misses == 0 {
			t.Errorf("%s: no misses", row.Benchmark)
			continue
		}
		// Every request disappears, so transaction reduction is at least
		// 50% (the paper's floor).
		if row.TransactionsEliminated < 0.5 {
			t.Errorf("%s: transactions eliminated %.2f < 0.5",
				row.Benchmark, row.TransactionsEliminated)
		}
		if row.TrafficEliminated <= 0 || row.TrafficEliminated >= 0.9 {
			t.Errorf("%s: traffic eliminated %.2f outside (0, 0.9)",
				row.Benchmark, row.TrafficEliminated)
		}
	}
	out := res.Table().String()
	for _, want := range []string{"Table 1", "compress", "Traffic", "Transactions"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	res, err := Table2(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 || res.Nodes != 4 {
		t.Fatalf("rows = %d nodes = %d", len(res.Rows), res.Nodes)
	}
	rows := map[string]Table2Row{}
	threaded := 0
	for _, row := range res.Rows {
		rows[row.Benchmark] = row
		if row.ReplTotal == 0 {
			t.Errorf("%s: nothing replicated", row.Benchmark)
		}
		if row.DistKB <= 0 {
			t.Errorf("%s: bad distribution size", row.Benchmark)
		}
		if row.Threads > 0 {
			threaded++
			if row.AllMean < 1 {
				t.Errorf("%s: all-refs datathread mean %.2f < 1", row.Benchmark, row.AllMean)
			}
		}
	}
	// Most benchmarks must actually exercise cross-node datathreads
	// (fpppp's working set legitimately fits under replication).
	if threaded < 11 {
		t.Errorf("only %d/14 benchmarks produced datathreads", threaded)
	}
	// Paper shape: a random gather/scatter code (wave5) cannot sustain
	// long data threads, while replication produces non-trivial
	// replicated-reference runs somewhere in the suite.
	if w5 := rows["wave5"]; w5.Threads > 0 && w5.DataMean > 8 {
		t.Errorf("wave5 random access shows %.1f-long data threads", w5.DataMean)
	}
	anyRepl := false
	for _, row := range res.Rows {
		if row.ReplMean >= 1 {
			anyRepl = true
		}
	}
	if !anyRepl {
		t.Error("no benchmark shows replicated-reference runs")
	}
	t.Logf("\n%s", res.Table().String())
}

func TestFigure7AndTable3ShapesHold(t *testing.T) {
	opts := testOpts()
	opts.TimingInstr = 250_000
	res, err := Figure7(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	rows := map[string]Figure7Row{}
	for _, row := range res.Rows {
		rows[row.Benchmark] = row
		// Perfect cache is an upper bound for every system.
		for name, ipc := range map[string]float64{
			"DS2": row.DS2IPC, "DS4": row.DS4IPC,
			"T2": row.Trad2IPC, "T4": row.Trad4IPC,
		} {
			if ipc > row.PerfectIPC*1.02 { // 2% slack for cycle-count edge effects
				t.Errorf("%s: %s IPC %.2f exceeds perfect %.2f",
					row.Benchmark, name, ipc, row.PerfectIPC)
			}
			if ipc <= 0 {
				t.Errorf("%s: %s IPC = %.2f", row.Benchmark, name, ipc)
			}
		}
	}

	// compress is the paper's biggest DataScalar win (write elimination).
	c := rows["compress"]
	if c.DS2IPC <= c.Trad2IPC {
		t.Errorf("compress: DS2 %.2f !> trad-1/2 %.2f", c.DS2IPC, c.Trad2IPC)
	}
	if c.DS4IPC <= c.Trad4IPC {
		t.Errorf("compress: DS4 %.2f !> trad-1/4 %.2f", c.DS4IPC, c.Trad4IPC)
	}

	// The paper's headline scaling claim: DataScalar degrades far less
	// than traditional when memory is split four ways instead of two.
	var dsDrop, tradDrop float64
	for _, row := range res.Rows {
		dsDrop += row.DS2IPC - row.DS4IPC
		tradDrop += row.Trad2IPC - row.Trad4IPC
	}
	if dsDrop >= tradDrop {
		t.Errorf("DataScalar 2->4 IPC drop (%.2f) not smaller than traditional's (%.2f)",
			dsDrop, tradDrop)
	}

	// At the finer 1/4 split, DataScalar should win on at least five of
	// the six benchmarks (the paper reports 9%+ gains at four nodes).
	wins := 0
	for _, row := range res.Rows {
		if row.DS4IPC > row.Trad4IPC {
			wins++
		}
	}
	if wins < 5 {
		t.Errorf("DS4 beats trad-1/4 on only %d/6 benchmarks", wins)
	}

	checkTable3(t, res)
}

func checkTable3(t *testing.T, f7 Figure7Result) {
	t.Helper()
	res := Table3(f7)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	anyLate, anyFound := false, false
	for _, row := range res.Rows {
		for name, v := range map[string]float64{
			"late2": row.Late2, "late4": row.Late4,
			"squash2": row.Squash2, "squash4": row.Squash4,
			"found2": row.Found2, "found4": row.Found4,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: %s = %.2f outside [0,1]", row.Benchmark, name, v)
			}
		}
		if row.Late2 > 0 || row.Late4 > 0 {
			anyLate = true
		}
		if row.Found2 > 0 || row.Found4 > 0 {
			anyFound = true
		}
	}
	if !anyLate {
		t.Error("no benchmark shows late broadcasts (correspondence repair never exercised)")
	}
	if !anyFound {
		t.Error("no benchmark found data waiting in the BSHR (no datathreading evidence)")
	}
	out := res.Table().String()
	if !strings.Contains(out, "Table 3") {
		t.Error("table render missing title")
	}
}

func TestFigure8ShapeHolds(t *testing.T) {
	opts := testOpts()
	opts.SweepInstr = 40_000
	res, err := Figure8(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks x 5 parameters.
	if len(res.Series) != 10 {
		t.Fatalf("series = %d, want 10", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 5 {
			t.Fatalf("%s/%s: %d points", s.Benchmark, s.Param, len(s.Points))
		}
		for _, p := range s.Points {
			if p.DS2 <= 0 || p.Trad2 <= 0 || p.Perfect <= 0 {
				t.Fatalf("%s/%s@%d: non-positive IPC %+v", s.Benchmark, s.Param, p.Value, p)
			}
		}
		switch s.Param {
		case ParamMemNs:
			// Slower memory must not speed anything up.
			first, last := s.Points[0], s.Points[len(s.Points)-1]
			if last.DS2 > first.DS2*1.05 || last.Trad2 > first.Trad2*1.05 {
				t.Errorf("%s: slower memory raised IPC (%+v -> %+v)", s.Benchmark, first, last)
			}
		case ParamBusClock:
			// A slower global bus must not help either system.
			first, last := s.Points[0], s.Points[len(s.Points)-1]
			if last.DS2 > first.DS2*1.05 || last.Trad2 > first.Trad2*1.05 {
				t.Errorf("%s: slower bus raised IPC", s.Benchmark)
			}
		}
	}
	if got := len(res.Tables()); got != 10 {
		t.Fatalf("rendered %d tables", got)
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	res, table, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 13 || res.LeadChanges != 2 || res.Datathreads != 3 {
		t.Fatalf("figure 1 result = %+v", res)
	}
	if !strings.Contains(table.String(), "w5") {
		t.Error("table missing w5")
	}
}

func TestFigure3MatchesPaper(t *testing.T) {
	res, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if res.DSCrossings != 2 || res.TradCrossings != 8 {
		t.Fatalf("crossings = %d vs %d, want 2 vs 8", res.DSCrossings, res.TradCrossings)
	}
	if res.DSCyclesPerLap >= res.TradCyclesPerLap {
		t.Errorf("DataScalar %.1f cycles/lap not faster than traditional %.1f",
			res.DSCyclesPerLap, res.TradCyclesPerLap)
	}
}

func TestCountCrossings(t *testing.T) {
	cases := []struct {
		owners   []int
		cpu      int
		ds, trad int
	}{
		{[]int{1, 1, 1, 2}, 0, 2, 8},
		{[]int{0, 0, 0, 0}, 0, 1, 0}, // all local to CPU chip; DS still broadcasts the last
		{[]int{1, 2, 1, 2}, 0, 4, 8}, // worst-case migration
		{nil, 0, 0, 0},
	}
	for _, c := range cases {
		ds, trad := CountCrossings(c.owners, c.cpu)
		if ds != c.ds || trad != c.trad {
			t.Errorf("CountCrossings(%v) = %d,%d want %d,%d", c.owners, ds, trad, c.ds, c.trad)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if !reflect.DeepEqual(o, d) {
		t.Fatalf("withDefaults() = %+v, want %+v", o, d)
	}
	custom := Options{Scale: 2}.withDefaults()
	if custom.Scale != 2 || custom.TimingInstr != d.TimingInstr {
		t.Fatalf("partial defaults wrong: %+v", custom)
	}
}
