package sim

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestCycleSkipDifferential is the end-to-end guarantee behind
// Options.NoCycleSkip: every harness must produce bit-identical
// structured results — and byte-identical JSON artifacts — with the
// next-event scheduler on and off, serially and on a 4-way pool. The
// four variants cross cycle skipping with parallelism so a scheduler bug
// that only shows under worker interleaving still fails here.
func TestCycleSkipDifferential(t *testing.T) {
	variants := []struct {
		name   string
		noSkip bool
		par    int
	}{
		{"skip/serial", false, 1},
		{"skip/parallel4", false, 4},
		{"noskip/serial", true, 1},
		{"noskip/parallel4", true, 4},
	}
	for _, h := range harnesses {
		h := h
		t.Run(h.name, func(t *testing.T) {
			if testing.Short() && !h.cheap {
				t.Skip("heavy timing sweep skipped in short mode")
			}
			t.Parallel()
			var ref any
			var refJSON []byte
			for _, v := range variants {
				opts := detOpts(v.par)
				opts.NoCycleSkip = v.noSkip
				res, err := h.run(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				var buf bytes.Buffer
				if err := WriteJSON(&buf, res); err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if ref == nil {
					ref, refJSON = res, buf.Bytes()
					continue
				}
				if !reflect.DeepEqual(ref, res) {
					t.Fatalf("results differ between %s and %s:\n%s: %+v\n%s: %+v",
						variants[0].name, v.name, variants[0].name, ref, v.name, res)
				}
				if !bytes.Equal(refJSON, buf.Bytes()) {
					t.Fatalf("JSON artifacts differ between %s and %s", variants[0].name, v.name)
				}
			}
		})
	}
}
