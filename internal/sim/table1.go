package sim

import (
	"context"

	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/trace"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Table1Row is one benchmark's ESP traffic reduction (paper Table 1).
type Table1Row struct {
	Benchmark string
	// TrafficEliminated is the fraction of off-chip bytes ESP removes.
	TrafficEliminated float64
	// TransactionsEliminated is the fraction of off-chip transactions
	// removed (>= 0.5 whenever writebacks exist, since every request
	// disappears).
	TransactionsEliminated float64
	Detail                 trace.TrafficResult
}

// Table1Result holds the whole experiment.
type Table1Result struct {
	Rows []Table1Row
}

// Table renders the result in the paper's layout.
func (r Table1Result) Table() *stats.Table {
	t := stats.NewTable(
		"Table 1: Off-chip data traffic reduced by ESP",
		"quantity", "tomcatv", "swim", "hydro2d", "mgrid", "applu", "m88ksim",
		"turb3d", "gcc", "compress", "li", "perl", "fpppp", "wave5", "vortex")
	traffic := []string{"Traffic"}
	txns := []string{"Transactions"}
	for _, row := range r.Rows {
		traffic = append(traffic, stats.FormatPercent(row.TrafficEliminated*100))
		txns = append(txns, stats.FormatPercent(row.TransactionsEliminated*100))
	}
	t.AddRow(traffic...)
	t.AddRow(txns...)
	return t
}

// Table1 reproduces the paper's Table 1: each SPEC95-analogue's data
// reference stream is filtered through the paper's 16 KB two-way
// write-back write-allocate L1, and the surviving miss traffic is
// accounted under a conventional request/response system versus ESP.
func Table1(ctx context.Context, opts Options) (Table1Result, error) {
	opts = opts.withDefaults()
	var out Table1Result
	ws := workload.Table1Order()
	rows, err := runIndexed(ctx, opts.Parallel, len(ws), func(i int) (Table1Row, error) {
		pr, err := prepare(ws[i], opts.Scale)
		if err != nil {
			return Table1Row{}, err
		}
		// Measure from the kernel's steady state (bench_main), as the
		// timing runs do; initialization is setup the SPEC originals did
		// through file I/O.
		a := trace.NewTrafficAnalyzer(trace.DefaultTrafficConfig())
		err = trace.ForEachRefFrom(pr.p, pr.ff, opts.RefInstr, false, func(ref trace.Ref) error {
			return a.Observe(ref)
		})
		if err != nil {
			return Table1Row{}, err
		}
		res := a.Finish()
		return Table1Row{
			Benchmark:              pr.w.Name,
			TrafficEliminated:      res.TrafficEliminated(),
			TransactionsEliminated: res.TransactionsEliminated(),
			Detail:                 res,
		}, nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}
