package sim

import (
	"context"
	"fmt"

	"github.com/wisc-arch/datascalar/internal/mem"
	"github.com/wisc-arch/datascalar/internal/prog"
	"github.com/wisc-arch/datascalar/internal/stats"
	"github.com/wisc-arch/datascalar/internal/trace"
	"github.com/wisc-arch/datascalar/internal/workload"
)

// Table2Row is one benchmark's datathread measurement (paper Table 2).
type Table2Row struct {
	Benchmark string
	// DistKB is the round-robin distribution block size in kilobytes.
	DistKB int
	// Replicated page counts per segment, as in the paper's columns.
	ReplText, ReplGlobal, ReplHeap, ReplStack, ReplTotal int
	// Datathread length approximations (arithmetic means).
	AllMean, TextMean, DataMean, ReplMean float64
	// Threads is the number of completed datathreads over all misses
	// (0 when every miss lands on replicated or single-node memory).
	Threads uint64
}

// Table2Result holds the whole experiment.
type Table2Result struct {
	Nodes int
	Rows  []Table2Row
}

// Table renders the result in the paper's layout.
func (r Table2Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Table 2: Approximate datathread measurements for a %d-processor system", r.Nodes),
		"benchmark", "dist(KB)", "text", "global", "heap", "stack", "total",
		"all", "text-refs", "data-refs", "repl")
	for _, row := range r.Rows {
		t.AddRowf(row.Benchmark, row.DistKB,
			row.ReplText, row.ReplGlobal, row.ReplHeap, row.ReplStack, row.ReplTotal,
			stats.Round1(row.AllMean), stats.Round1(row.TextMean),
			stats.Round1(row.DataMean), stats.Round1(row.ReplMean))
	}
	return t
}

// Table2 reproduces the paper's Table 2 methodology for a four-processor
// system: profile page heat over a run, replicate the most heavily
// accessed pages (capped so no segment is wholly replicated), distribute
// the communicated pages round-robin in the largest blocks that keep both
// the text and the largest data segment spread over multiple processors,
// then measure mean datathread lengths over the cache-filtered miss
// stream.
func Table2(ctx context.Context, opts Options) (Table2Result, error) {
	opts = opts.withDefaults()
	const nodes = 4
	out := Table2Result{Nodes: nodes}
	ws := workload.Table1Order()
	rows, err := runIndexed(ctx, opts.Parallel, len(ws), func(i int) (Table2Row, error) {
		pr, err := prepare(ws[i], opts.Scale)
		if err != nil {
			return Table2Row{}, err
		}
		row, err := table2One(pr, nodes, opts.RefInstr)
		if err != nil {
			return Table2Row{}, fmt.Errorf("sim: table2 %s: %w", ws[i].Name, err)
		}
		return row, nil
	})
	if err != nil {
		return out, err
	}
	out.Rows = rows
	return out, nil
}

func table2One(pr prepared, nodes int, refInstr uint64) (Table2Row, error) {
	// Pass 1: page-heat profile over all steady-state references.
	profiler := mem.NewProfiler()
	if err := trace.ProfilePagesFrom(pr.p, pr.ff, refInstr, profiler.Observe); err != nil {
		return Table2Row{}, err
	}

	// Segment page counts determine the replication caps and the
	// distribution block size.
	segPages := pr.p.SegmentPages()
	largestData := 0
	for _, seg := range []prog.Segment{prog.SegGlobal, prog.SegHeap, prog.SegStack} {
		if n := len(segPages[seg]); n > largestData {
			largestData = n
		}
	}

	// Replicate up to a quarter of all pages, hottest first, but never
	// more than half of any segment (the paper prevents any segment from
	// being completely contained at one processor).
	totalPages := len(pr.p.Pages())
	budget := totalPages / 4
	if budget < 1 {
		budget = 1
	}
	caps := make(map[prog.Segment]int)
	for seg, pages := range segPages {
		c := len(pages) / 2
		if c < 1 {
			c = 1
		}
		caps[seg] = c
	}
	replicated := profiler.SelectReplicated(budget, caps)

	// Distribution block size: as large as possible while the largest
	// data segment still spreads over every node (the paper maximizes
	// the block size while keeping it below 1/2 of the text and of the
	// largest data segment; our kernels' text is a single page — SPEC95
	// binaries had hundreds — so only the data constraint binds).
	blockPages := largestData / (2 * nodes)
	if blockPages < 1 {
		blockPages = 1
	}

	pt, err := mem.Partition{
		NumNodes:        nodes,
		BlockPages:      blockPages,
		ReplicateText:   false, // Table 2 replicates by heat, not blanket
		ReplicatedPages: replicated,
	}.Build(pr.p)
	if err != nil {
		return Table2Row{}, err
	}

	// Pass 2: datathread analysis over the cache-filtered miss stream.
	filter := trace.DefaultMissFilter()
	an := trace.NewDatathreadAnalyzer(pt)
	err = trace.ForEachRefFrom(pr.p, pr.ff, refInstr, true, func(ref trace.Ref) error {
		if filter.Observe(ref) {
			an.Observe(ref.Addr, ref.Instr)
		}
		return nil
	})
	if err != nil {
		return Table2Row{}, err
	}
	res := an.Finish()

	counts := mem.SegmentCounts(replicated)
	return Table2Row{
		Benchmark:  pr.w.Name,
		DistKB:     blockPages * prog.PageSize / 1024,
		ReplText:   counts[prog.SegText],
		ReplGlobal: counts[prog.SegGlobal],
		ReplHeap:   counts[prog.SegHeap],
		ReplStack:  counts[prog.SegStack],
		ReplTotal:  len(replicated),
		AllMean:    res.AllMean,
		TextMean:   res.TextMean,
		DataMean:   res.DataMean,
		ReplMean:   res.ReplMean,
		Threads:    res.Threads,
	}, nil
}
