package stats

// RNG is a SplitMix64 pseudo-random generator. Workload input generation
// uses it instead of math/rand so that every experiment is reproducible
// bit-for-bit across Go releases (math/rand's stream is not guaranteed
// stable, and math/rand/v2 seeds differently across platforms' int sizes).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills dst with pseudo-random bytes.
func (r *RNG) Bytes(dst []byte) {
	for i := 0; i < len(dst); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = byte(v >> (8 * j))
		}
	}
}
