// Package stats provides the statistics primitives shared by every
// simulator component: named counters, scalar accumulators, histograms,
// and deterministic pseudo-random number generation for workload inputs.
//
// All simulated state in this repository is deterministic; stats exists so
// that experiment harnesses can collect and render results without each
// model reinventing bookkeeping.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// MarshalJSON renders the counter as its bare count, so stats structs
// (NodeStats, BSHRStats, bus.Stats, ...) serialize to plain numeric JSON
// in run artifacts.
func (c Counter) MarshalJSON() ([]byte, error) {
	return strconv.AppendUint(nil, c.n, 10), nil
}

// UnmarshalJSON parses a bare count.
func (c *Counter) UnmarshalJSON(b []byte) error {
	n, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("stats: counter: %w", err)
	}
	c.n = n
	return nil
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Mean is an online arithmetic mean over observed samples.
type Mean struct {
	sum   float64
	count uint64
}

// Observe adds one sample.
func (m *Mean) Observe(v float64) {
	m.sum += v
	m.count++
}

// ObserveN adds a sample with weight n (equivalent to n samples of value v).
func (m *Mean) ObserveN(v float64, n uint64) {
	m.sum += v * float64(n)
	m.count += n
}

// Count returns the number of samples observed.
func (m *Mean) Count() uint64 { return m.count }

// Sum returns the running sum of samples.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the arithmetic mean, or 0 if no samples were observed.
func (m *Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Ratio expresses a part/whole relationship between two counts.
type Ratio struct {
	Part  uint64
	Whole uint64
}

// Value returns Part/Whole, or 0 when Whole is zero.
func (r Ratio) Value() float64 {
	if r.Whole == 0 {
		return 0
	}
	return float64(r.Part) / float64(r.Whole)
}

// Percent returns the ratio scaled to 0-100.
func (r Ratio) Percent() float64 { return r.Value() * 100 }

// Histogram is a fixed-bucket histogram over non-negative integer samples.
// Samples beyond the last bucket boundary accumulate in an overflow bucket.
type Histogram struct {
	bounds []uint64 // ascending upper bounds (inclusive) per bucket
	counts []uint64 // len(bounds)+1; final entry is overflow
	total  uint64
	sum    uint64
	max    uint64
}

// NewHistogram creates a histogram with the given ascending inclusive upper
// bounds. It panics if bounds is empty or not strictly ascending, since
// histogram shape is always a programming decision, not runtime input.
func NewHistogram(bounds ...uint64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[idx]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of samples observed.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest sample observed.
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of all samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Bucket returns the count in bucket i (the last index is overflow).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// NumBuckets returns the number of buckets including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// String renders the histogram compactly for logs.
func (h *Histogram) String() string {
	var b strings.Builder
	lo := uint64(0)
	for i, bound := range h.bounds {
		fmt.Fprintf(&b, "[%d..%d]=%d ", lo, bound, h.counts[i])
		lo = bound + 1
	}
	fmt.Fprintf(&b, "[%d..]=%d", lo, h.counts[len(h.bounds)])
	return b.String()
}

// RunLength accumulates the arithmetic mean length of runs of consecutive
// equal keys in a stream, the statistic behind the paper's datathread-length
// approximation (Table 2): a run ends when the key changes.
type RunLength struct {
	cur     uint64 // current run key
	len     uint64 // current run length
	started bool
	runs    Mean
}

// Observe feeds the next element's key into the run tracker.
func (r *RunLength) Observe(key uint64) {
	if r.started && key == r.cur {
		r.len++
		return
	}
	if r.started {
		r.runs.Observe(float64(r.len))
	}
	r.cur, r.len, r.started = key, 1, true
}

// Flush terminates the in-progress run, if any. Call once at end of stream.
func (r *RunLength) Flush() {
	if r.started && r.len > 0 {
		r.runs.Observe(float64(r.len))
		r.len = 0
		r.started = false
	}
}

// Mean returns the arithmetic mean run length over completed runs.
func (r *RunLength) Mean() float64 { return r.runs.Value() }

// Runs returns the number of completed runs.
func (r *RunLength) Runs() uint64 { return r.runs.Count() }

// Round1 rounds to one decimal place; table renderers use it so that output
// is stable across platforms.
func Round1(v float64) float64 { return math.Round(v*10) / 10 }

// Round2 rounds to two decimal places.
func Round2(v float64) float64 { return math.Round(v*100) / 100 }
