package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d, want 0", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatalf("empty mean = %v, want 0", m.Value())
	}
	m.Observe(2)
	m.Observe(4)
	if got := m.Value(); got != 3 {
		t.Fatalf("mean = %v, want 3", got)
	}
	m.ObserveN(10, 2)
	// samples: 2, 4, 10, 10 -> mean 6.5
	if got := m.Value(); got != 6.5 {
		t.Fatalf("mean = %v, want 6.5", got)
	}
	if m.Count() != 4 {
		t.Fatalf("count = %d, want 4", m.Count())
	}
}

func TestRatio(t *testing.T) {
	if got := (Ratio{}).Value(); got != 0 {
		t.Fatalf("empty ratio = %v, want 0", got)
	}
	r := Ratio{Part: 1, Whole: 4}
	if r.Value() != 0.25 {
		t.Fatalf("ratio = %v, want 0.25", r.Value())
	}
	if r.Percent() != 25 {
		t.Fatalf("percent = %v, want 25", r.Percent())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 4, 16)
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // [0..1]={0,1} [2..4]={2,4} [5..16]={5,16} overflow={17,1000}
	if h.NumBuckets() != len(want) {
		t.Fatalf("buckets = %d, want %d", h.NumBuckets(), len(want))
	}
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	if got := h.Mean(); got != (0+1+2+4+5+16+17+1000)/8.0 {
		t.Fatalf("mean = %v", got)
	}
	if !strings.Contains(h.String(), "[2..4]=2") {
		t.Fatalf("String() = %q, missing bucket", h.String())
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewHistogram() })
	mustPanic("descending", func() { NewHistogram(4, 2) })
}

func TestRunLength(t *testing.T) {
	var r RunLength
	for _, k := range []uint64{1, 1, 1, 2, 2, 3, 1, 1} {
		r.Observe(k)
	}
	r.Flush()
	// runs: 3, 2, 1, 2 -> mean 2.0
	if got := r.Mean(); got != 2 {
		t.Fatalf("mean run = %v, want 2", got)
	}
	if r.Runs() != 4 {
		t.Fatalf("runs = %d, want 4", r.Runs())
	}
}

func TestRunLengthEmptyAndDoubleFlush(t *testing.T) {
	var r RunLength
	r.Flush()
	if r.Runs() != 0 || r.Mean() != 0 {
		t.Fatalf("empty run tracker: runs=%d mean=%v", r.Runs(), r.Mean())
	}
	r.Observe(7)
	r.Flush()
	r.Flush() // second flush must not add a run
	if r.Runs() != 1 {
		t.Fatalf("runs = %d, want 1", r.Runs())
	}
}

// Property: total run length equals number of observations.
func TestRunLengthConservation(t *testing.T) {
	f := func(keys []uint8) bool {
		var r RunLength
		for _, k := range keys {
			r.Observe(uint64(k % 4))
		}
		r.Flush()
		return uint64(len(keys)) == uint64(r.Mean()*float64(r.Runs())+0.5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples across buckets.
func TestHistogramConservation(t *testing.T) {
	f := func(samples []uint16) bool {
		h := NewHistogram(1, 2, 4, 8, 16, 32, 64)
		var n uint64
		for _, s := range samples {
			h.Observe(uint64(s))
			n++
		}
		var sum uint64
		for i := 0; i < h.NumBuckets(); i++ {
			sum += h.Bucket(i)
		}
		return sum == n && h.Total() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(54321)
	same := 0
	a = NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed RNGs matched %d/1000 draws", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBytes(t *testing.T) {
	r := NewRNG(11)
	b := make([]byte, 37)
	r.Bytes(b)
	zero := 0
	for _, x := range b {
		if x == 0 {
			zero++
		}
	}
	if zero == len(b) {
		t.Fatal("Bytes produced all zeros")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X: demo", "bench", "ipc", "pct")
	tb.AddRowf("compress", 1.25, FormatPercent(33.4))
	tb.AddRow("go", "0.90")
	out := tb.String()
	for _, want := range []string{"Table X: demo", "bench", "compress", "1.25", "33%", "go", "0.90"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
}

func TestRounding(t *testing.T) {
	if Round1(1.25) != 1.3 && Round1(1.25) != 1.2 {
		// math.Round ties away from zero: 1.25*10=12.5 -> 13 -> 1.3
		t.Fatalf("Round1(1.25) = %v", Round1(1.25))
	}
	if Round1(3.14159) != 3.1 {
		t.Fatalf("Round1 = %v, want 3.1", Round1(3.14159))
	}
	if Round2(3.14159) != 3.14 {
		t.Fatalf("Round2 = %v, want 3.14", Round2(3.14159))
	}
	if FormatFloat(2.5) != "2.50" {
		t.Fatalf("FormatFloat = %q", FormatFloat(2.5))
	}
}
