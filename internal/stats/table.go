package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table renders aligned fixed-width text tables in the style of the paper's
// result tables. Experiment harnesses and cmd/ binaries use it so all
// reproduced tables share one look.
type Table struct {
	header []string
	rows   [][]string
	title  string
	// err records the first row/header width mismatch (see AddRow).
	err error
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row. Missing cells render empty. Passing more cells
// than the table has headers is a caller bug: the extras used to vanish
// silently, so the mismatch is now returned AND recorded (see Err) —
// harnesses that ignore the return value still fail loudly when they
// serialize the table. The row is stored truncated to the header width
// either way, keeping text rendering stable.
func (t *Table) AddRow(cells ...string) error {
	var err error
	if len(cells) > len(t.header) {
		err = fmt.Errorf("stats: table %q: row has %d cells for %d header columns",
			t.title, len(cells), len(t.header))
		if t.err == nil {
			t.err = err
		}
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return err
}

// AddRowf appends a row built from formatted values; each value is rendered
// with %v except floats, which use a compact fixed-point form. Like
// AddRow, it returns (and records) a mismatch error when given more
// cells than the table has headers.
func (t *Table) AddRowf(cells ...any) error {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, FormatFloat(v))
		case float32:
			row = append(row, FormatFloat(float64(v)))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	return t.AddRow(row...)
}

// Err returns the first row/header width mismatch recorded by AddRow, or
// nil when every row fit.
func (t *Table) Err() error { return t.err }

// FormatFloat renders a float with two decimals, trimming to a compact form
// for whole numbers (e.g. 3 -> "3.00", 0.5 -> "0.50").
func FormatFloat(v float64) string {
	return fmt.Sprintf("%.2f", v)
}

// FormatPercent renders a 0-100 percentage with no decimals, like the
// paper's tables ("27%").
func FormatPercent(v float64) string {
	return fmt.Sprintf("%.0f%%", v)
}

// FormatPercent1 renders a 0-100 percentage with one decimal, for
// statistics that are often well under one percent.
func FormatPercent1(v float64) string {
	return fmt.Sprintf("%.1f%%", v)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if t.title != "" {
		fmt.Fprintln(w, t.title)
	}
	fmt.Fprintln(w, line(t.header))
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		fmt.Fprintln(w, line(row))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// WriteCSV writes the table as RFC-4180 CSV (header row first, no title
// line), for scripted consumption of reproduced results. It fails if any
// AddRow call overflowed the header width (see Err): silently shipping a
// truncated dataset is worse than no dataset.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.err != nil {
		return t.err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
